// Figure 8: sharing dispatch CDFs on the New York workload (700 taxis,
// θ = 5 km). Expected shape: STD-P/T outperform RAII, SARP and ILP on
// all three metrics (the paper's Section VI-D) -- RAII's index is lossy,
// SARP's insertion is myopic, and ILP's heuristic fallback underpacks.
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace o2o;
  bench::PaperParams params;
  // 30-minute patience keeps the per-frame batch (and the O(|R|^3) group
  // enumeration) bounded on the state-scale workload.
  params.cancel_timeout_seconds = 1800.0;

  trace::CityModel model = trace::CityModel::new_york();
  trace::GenerationOptions gen;
  gen.duration_seconds = 1.5 * 3600.0;  // rush-hour window
  gen.start_hour = 7.5;
  gen.seed = 20160108;
  const trace::Trace city = trace::generate(model, gen);

  trace::FleetOptions fleet_options;
  fleet_options.taxi_count = 700;
  fleet_options.seed = 42;
  const auto fleet = trace::make_fleet(model.region, fleet_options);

  std::printf("# Fig. 8 -- sharing dispatch, New York workload\n");
  std::printf("# requests=%zu taxis=%d theta=%.1f km\n", city.size(),
              fleet_options.taxi_count, params.theta_km);

  const auto reports =
      bench::run_roster(city, fleet, bench::sharing_roster(params), params);

  bench::print_cdf_table("Fig. 8(a) dispatch delay CDF", "delay_min", reports,
                         &sim::SimulationReport::delay_cdf, 0.0, 30.0, 31);
  bench::print_cdf_table("Fig. 8(b) passenger dissatisfaction CDF", "km", reports,
                         &sim::SimulationReport::passenger_cdf, 0.0, 14.0, 29);
  bench::print_cdf_table("Fig. 8(c) taxi dissatisfaction CDF", "km", reports,
                         &sim::SimulationReport::taxi_cdf, -25.0, 10.0, 36);
  bench::print_summary(reports);
  return 0;
}
