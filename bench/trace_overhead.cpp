// A/B harness for the observability layer: runs identical dispatch
// frames with tracing off and on (full TraceSink frame lifecycle) and
// reports the relative wall-time overhead. The acceptance budget is
// small -- the hot-path cost per report site is one atomic load and a
// branch when off, a thread-local bump when on.
//
//   ./build/bench/trace_overhead [--quick] [--check] [--threshold=PCT]
//                                [--requests=N]
//
// --check exits non-zero when the measured overhead exceeds the
// threshold (default 5%), which is how CI consumes this binary; the CI
// job is non-blocking but fails loudly. Timings interleave the two arms
// rep by rep and keep the per-arm minimum, the usual defence against
// frequency drift on shared runners.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string_view>
#include <vector>

#include "core/dispatch_config.h"
#include "core/sharing.h"
#include "geo/backend.h"
#include "obs/obs.h"
#include "sim/report_io.h"
#include "util/rng.h"

#include <iostream>

namespace {

using namespace o2o;

// Resolved through the backend factory; the default spec is the paper's
// Euclidean surface. kBackend owns the oracle kOracle refers to.
const geo::DistanceBackend kBackend = geo::make_distance_oracle({});
const geo::DistanceOracle& kOracle = *kBackend.oracle;

std::vector<trace::Request> make_city_requests(std::size_t count, std::uint64_t seed) {
  constexpr double kExtentKm = 40.0;
  Rng rng(seed);
  std::vector<trace::Request> requests;
  requests.reserve(count);
  for (std::size_t r = 0; r < count; ++r) {
    trace::Request request;
    request.id = static_cast<trace::RequestId>(r);
    request.pickup = {rng.uniform(0, kExtentKm), rng.uniform(0, kExtentKm)};
    const double angle = rng.uniform(0.0, 6.283185307179586);
    const double trip = rng.uniform(1.0, 4.0);
    request.dropoff = {request.pickup.x + trip * std::cos(angle),
                       request.pickup.y + trip * std::sin(angle)};
    requests.push_back(request);
  }
  return requests;
}

std::vector<trace::Taxi> make_fleet(int count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<trace::Taxi> taxis;
  taxis.reserve(static_cast<std::size_t>(count));
  for (int t = 0; t < count; ++t) {
    trace::Taxi taxi;
    taxi.id = t;
    taxi.location = {rng.uniform(0, 40), rng.uniform(0, 40)};
    taxis.push_back(taxi);
  }
  return taxis;
}

core::SharingParams sharing_params() {
  return DispatchConfig{}
      .with_passenger_threshold_km(2.0)
      .with_taxi_threshold_score(8.0)
      .with_detour_threshold_km(2.0)
      .with_candidate_taxis_per_unit(8)
      .sharing_params();
}

/// One full sharing dispatch frame (grouping + packing + matching).
double run_frames_seconds(const std::vector<trace::Taxi>& taxis,
                          const std::vector<trace::Request>& requests,
                          const core::SharingParams& params, int frames,
                          obs::TraceSink* sink) {
  const auto start = std::chrono::steady_clock::now();
  for (int f = 0; f < frames; ++f) {
    if (sink != nullptr) sink->begin_frame(static_cast<std::uint64_t>(f), 0.0);
    const core::SharingOutcome outcome =
        core::dispatch_sharing(taxis, requests, kOracle, params);
    if (sink != nullptr) sink->end_frame();
    // Keep the result alive so the whole frame cannot be elided.
    if (outcome.assignments.size() == static_cast<std::size_t>(-1)) std::abort();
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool check = false;
  double threshold_pct = 5.0;
  std::size_t requests_override = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--check") {
      check = true;
    } else if (arg.rfind("--threshold=", 0) == 0) {
      threshold_pct = std::atof(arg.substr(12).data());
    } else if (arg.rfind("--requests=", 0) == 0) {
      requests_override = static_cast<std::size_t>(std::atol(arg.substr(11).data()));
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  const std::size_t n_requests =
      requests_override != 0 ? requests_override : (quick ? 500 : 1000);
  const int frames_per_batch = quick ? 2 : 4;
  const int reps = quick ? 5 : 9;

  const auto requests = make_city_requests(n_requests, 24);
  const auto taxis = make_fleet(700, 25);
  const core::SharingParams params = sharing_params();

  // Warm both arms (thread pool spin-up, allocator, oracle caches).
  run_frames_seconds(taxis, requests, params, 1, nullptr);
  {
    obs::TraceSink warm_sink(obs::TraceOptions{.enabled = true, .per_frame = false});
    obs::Activation guard(warm_sink);
    run_frames_seconds(taxis, requests, params, 1, &warm_sink);
  }

  double best_off = std::numeric_limits<double>::infinity();
  double best_on = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    best_off = std::min(best_off,
                        run_frames_seconds(taxis, requests, params, frames_per_batch,
                                           nullptr));
    obs::TraceSink sink(obs::TraceOptions{.enabled = true, .per_frame = false});
    obs::Activation guard(sink);
    best_on = std::min(best_on, run_frames_seconds(taxis, requests, params,
                                                   frames_per_batch, &sink));
  }

  const double per_frame_off_ms = best_off / frames_per_batch * 1e3;
  const double per_frame_on_ms = best_on / frames_per_batch * 1e3;
  const double overhead_pct = (best_on / best_off - 1.0) * 100.0;
  std::printf("trace_overhead: %zu requests x 700 taxis, %d frames/batch, %d reps\n",
              n_requests, frames_per_batch, reps);
  std::printf("  tracing off: %8.3f ms/frame\n", per_frame_off_ms);
  std::printf("  tracing on:  %8.3f ms/frame\n", per_frame_on_ms);
  std::printf("  overhead:    %+7.2f %% (threshold %.1f %%)\n", overhead_pct,
              threshold_pct);

  // One extra traced batch with per-frame retention feeds the stage
  // breakdown table (EXPERIMENTS.md): where the frame time actually goes.
  {
    obs::TraceSink sink(obs::TraceOptions{.enabled = true});
    obs::Activation guard(sink);
    run_frames_seconds(taxis, requests, params, frames_per_batch, &sink);
    std::printf("\n");
    sim::write_trace_summary(std::cout, sink.frames());
  }

  if (check && overhead_pct > threshold_pct) {
    std::fprintf(stderr, "FAIL: tracing overhead %.2f%% exceeds %.2f%%\n", overhead_pct,
                 threshold_pct);
    return 1;
  }
  return 0;
}
