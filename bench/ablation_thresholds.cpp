// Ablation: the dummy positions (reservation thresholds) are the only
// free parameters of the stable dispatch model -- the paper introduces
// them ("dummy preference order entries are used if D(t,r.s) and
// D(t,r.s) - αD(r.s,r.d) are larger than thresholds") without fixing
// values. This bench sweeps both thresholds on the Boston workload and
// shows the served/satisfaction trade-off they control:
// tighter taxi thresholds -> better taxi dissatisfaction, more
// cancellations; tighter passenger thresholds -> shorter pick-ups,
// fewer served.
#include <cstdio>
#include <limits>

#include "bench/common.h"

int main() {
  using namespace o2o;
  constexpr double kInf = std::numeric_limits<double>::infinity();

  trace::CityModel model = trace::CityModel::boston();
  trace::GenerationOptions gen;
  gen.duration_seconds = 4.0 * 3600.0;
  gen.start_hour = 10.0;
  gen.seed = 20120901;
  const trace::Trace city = trace::generate(model, gen);

  trace::FleetOptions fleet_options;
  fleet_options.taxi_count = 200;
  fleet_options.seed = 42;
  const auto fleet = trace::make_fleet(model.region, fleet_options);

  std::printf("# Threshold ablation -- NSTD-P on the Boston workload (%zu requests)\n",
              city.size());

  std::printf(
      "\n## taxi reservation threshold sweep (passenger threshold = 10 km)\n"
      "taxi_threshold,served,cancelled,mean_delay_min,mean_passenger_km,mean_taxi_km\n");
  for (const double threshold : {-1.0, 0.0, 1.0, 2.0, 4.0, kInf}) {
    bench::PaperParams params;
    params.taxi_threshold_score = threshold;
    const DispatchConfig config = bench::dispatch_config(params);
    const auto dispatcher = make_nstd_p(config);
    sim::Simulator simulator(city, fleet, bench::oracle(), config.simulation());
    const auto report = simulator.run(*dispatcher);
    std::printf("%g,%zu,%zu,%.3f,%.3f,%.3f\n", threshold, report.served,
                report.cancelled, report.delay_stats.mean(),
                report.passenger_stats.mean(), report.taxi_stats.mean());
  }

  std::printf(
      "\n## passenger reservation threshold sweep (taxi threshold = 1 km)\n"
      "passenger_threshold_km,served,cancelled,mean_delay_min,mean_passenger_km,"
      "mean_taxi_km\n");
  for (const double threshold : {2.0, 4.0, 6.0, 10.0, 14.0, kInf}) {
    bench::PaperParams params;
    params.passenger_threshold_km = threshold;
    const DispatchConfig config = bench::dispatch_config(params);
    const auto dispatcher = make_nstd_p(config);
    sim::Simulator simulator(city, fleet, bench::oracle(), config.simulation());
    const auto report = simulator.run(*dispatcher);
    std::printf("%g,%zu,%zu,%.3f,%.3f,%.3f\n", threshold, report.served,
                report.cancelled, report.delay_stats.mean(),
                report.passenger_stats.mean(), report.taxi_stats.mean());
  }
  return 0;
}
