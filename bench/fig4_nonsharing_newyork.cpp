// Figure 4: CDFs of dispatch delay (a), passenger dissatisfaction (b),
// and taxi dissatisfaction (c) for non-sharing dispatch on the New York
// workload with 700 taxis.
//
// The paper's trace covers January 2016 (1.44M requests); this bench
// simulates a representative rush-hour window of the calibrated
// synthetic New York model at the paper's fleet size. Expected shape:
// Greedy/MinCost lead on (a)/(b); NSTD-P/T lead decisively on (c).
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace o2o;
  bench::PaperParams params;

  trace::CityModel model = trace::CityModel::new_york();
  trace::GenerationOptions gen;
  gen.duration_seconds = 2.0 * 3600.0;  // 10 am - 12 pm window
  gen.start_hour = 10.0;
  gen.seed = 20160101;
  const trace::Trace city = trace::generate(model, gen);

  trace::FleetOptions fleet_options;
  fleet_options.taxi_count = 700;  // the paper's New York fleet
  fleet_options.seed = 42;
  const auto fleet = trace::make_fleet(model.region, fleet_options);

  std::printf("# Fig. 4 -- non-sharing dispatch, New York workload\n");
  std::printf("# requests=%zu taxis=%d window=10am-12pm\n", city.size(),
              fleet_options.taxi_count);

  const auto reports =
      bench::run_roster(city, fleet, bench::nonsharing_roster(params), params);

  bench::print_cdf_table("Fig. 4(a) dispatch delay CDF", "delay_min", reports,
                         &sim::SimulationReport::delay_cdf, 0.0, 30.0, 31);
  bench::print_cdf_table("Fig. 4(b) passenger dissatisfaction CDF", "km", reports,
                         &sim::SimulationReport::passenger_cdf, 0.0, 12.0, 25);
  bench::print_cdf_table("Fig. 4(c) taxi dissatisfaction CDF", "km", reports,
                         &sim::SimulationReport::taxi_cdf, -15.0, 12.0, 28);
  bench::print_summary(reports);
  return 0;
}
