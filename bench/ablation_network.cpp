// Ablation: the distance substrate. The paper models the city as a
// Euclidean surface; this bench re-runs the non-sharing comparison with
// D(.,.) supplied by (a) straight-line distance, (b) a circuity-scaled
// oracle (the standard 1.3x road-distance approximation), (c) true
// shortest paths priced by cached Dijkstra trees, and (d) the same
// shortest paths priced by a contraction hierarchy -- in cases (c) and
// (d) the taxis also *drive* along the network's shortest paths, so
// distances, travel times and metrics are all road-consistent. The
// qualitative ordering of the algorithms should survive the change of
// substrate, and the CH arm should reproduce the Dijkstra arm (same
// metric, different engine) -- that is what this bench checks.
//
//   ./build/bench/ablation_network [--graph=CITY.gr,CITY.co | --graph=CITY.osm]
//
// Without --graph the road arms run on a synthetic 21x21 jittered street
// grid with 15% of redundant segments closed; with --graph they run on
// the imported city graph (every arm resolved through the pluggable
// distance-backend factory, see geo/backend.h).
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "geo/backend.h"
#include "geo/road_network.h"

int main(int argc, char** argv) {
  using namespace o2o;
  bench::PaperParams params;

  std::string graph_arg;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--graph=", 8) == 0) {
      graph_arg = arg + 8;
    } else {
      std::fprintf(stderr, "usage: ablation_network [--graph=GR,CO|--graph=X.osm]\n");
      return 2;
    }
  }

  trace::CityModel model = trace::CityModel::boston();
  trace::GenerationOptions gen;
  gen.duration_seconds = 2.0 * 3600.0;
  gen.start_hour = 10.0;
  gen.seed = 31;
  const trace::Trace city = trace::generate(model, gen);

  trace::FleetOptions fleet_options;
  fleet_options.taxi_count = 150;
  fleet_options.seed = 42;
  const auto fleet = trace::make_fleet(model.region, fleet_options);

  // The road substrate: an imported city graph when --graph is given,
  // otherwise a 21x21 street grid laid over the [-10,10]^2 region,
  // jittered, with 15% of redundant segments closed.
  geo::DistanceBackendSpec road_source;
  road_source.kind = geo::DistanceBackendKind::kDijkstra;
  if (graph_arg.empty()) {
    road_source.network = std::make_shared<geo::RoadNetwork>(
        geo::RoadNetwork::make_grid_city(21, 21, 1.0, 0.15, 0.15, 9, {-10.0, -10.0}));
  } else if (!geo::parse_distance_backend("dijkstra:" + graph_arg, &road_source)) {
    std::fprintf(stderr, "unrecognized --graph source: %s\n", graph_arg.c_str());
    return 2;
  }

  struct NamedBackend {
    const char* name;
    geo::DistanceBackend backend;
    bool drive_network;  ///< drive along the network's shortest paths
  };
  std::vector<NamedBackend> arms;
  try {
    arms.push_back({"euclidean", geo::make_distance_oracle({}), false});
    geo::DistanceBackendSpec circuity;
    circuity.kind = geo::DistanceBackendKind::kCircuity;
    circuity.circuity_factor = 1.3;
    arms.push_back({"circuity_1.3", geo::make_distance_oracle(circuity), false});
    arms.push_back({"road_dijkstra", geo::make_distance_oracle(road_source), true});
    // The CH arm prices the identical graph through the contraction
    // hierarchy: the adopted network is shared, so the hierarchy is
    // built over bitwise the same edges the Dijkstra arm prices.
    geo::DistanceBackendSpec ch = road_source;
    ch.kind = geo::DistanceBackendKind::kContractionHierarchy;
    ch.network = arms.back().backend.network;
    ch.dimacs_gr.clear();
    ch.dimacs_co.clear();
    ch.osm_xml.clear();
    arms.push_back({"road_ch", geo::make_distance_oracle(ch), true});
  } catch (const std::exception& error) {
    std::fprintf(stderr, "cannot resolve backend: %s\n", error.what());
    return 2;
  }

  std::printf("# Distance-substrate ablation -- Boston workload (%zu requests, %d taxis)\n",
              city.size(), fleet_options.taxi_count);
  const auto& road = *arms[2].backend.network;
  std::printf("# road graph: %zu nodes / %zu edges, fingerprint %016llx%s\n",
              road.node_count(), road.edge_count(),
              static_cast<unsigned long long>(arms[2].backend.graph_fingerprint),
              graph_arg.empty() ? " (synthetic grid)" : "");
  std::printf(
      "\noracle,algorithm,served,cancelled,mean_delay_min,mean_passenger_km,"
      "mean_taxi_km,total_driven_km\n");
  for (const NamedBackend& named : arms) {
    for (auto& dispatcher : bench::nonsharing_roster(params)) {
      sim::SimulatorConfig config = bench::simulator_config(params);
      config.road_network = named.drive_network ? named.backend.network.get() : nullptr;
      sim::Simulator simulator(city, fleet, *named.backend.oracle, config);
      const auto report = simulator.run(*dispatcher);
      std::printf("%s,%s,%zu,%zu,%.3f,%.3f,%.3f,%.1f\n", named.name,
                  report.dispatcher_name.c_str(), report.served, report.cancelled,
                  report.delay_stats.mean(), report.passenger_stats.mean(),
                  report.taxi_stats.mean(), report.total_taxi_distance_km);
    }
  }
  return 0;
}
