// Ablation: the distance substrate. The paper models the city as a
// Euclidean surface; this bench re-runs the non-sharing comparison with
// D(.,.) supplied by (a) straight-line distance, (b) a circuity-scaled
// oracle (the standard 1.3x road-distance approximation), and (c) true
// shortest paths on a perturbed-grid road network with street closures
// -- in case (c) the taxis also *drive* along the network's shortest
// paths, so distances, travel times and metrics are all road-consistent.
// The qualitative ordering of the algorithms should survive the change
// of substrate -- that is what this bench checks.
#include <cstdio>
#include <memory>

#include "bench/common.h"
#include "geo/road_network.h"

int main() {
  using namespace o2o;
  bench::PaperParams params;

  trace::CityModel model = trace::CityModel::boston();
  trace::GenerationOptions gen;
  gen.duration_seconds = 2.0 * 3600.0;
  gen.start_hour = 10.0;
  gen.seed = 31;
  const trace::Trace city = trace::generate(model, gen);

  trace::FleetOptions fleet_options;
  fleet_options.taxi_count = 150;
  fleet_options.seed = 42;
  const auto fleet = trace::make_fleet(model.region, fleet_options);

  // A 21x21 street grid laid over the [-10,10]^2 region, jittered, with
  // 15% of redundant segments closed.
  const geo::RoadNetwork network =
      geo::RoadNetwork::make_grid_city(21, 21, 1.0, 0.15, 0.15, 9, {-10.0, -10.0});

  const geo::EuclideanOracle euclidean;
  const geo::CircuityOracle circuity(1.3);
  const geo::NetworkOracle road(network, 4096);

  struct NamedOracle {
    const char* name;
    const geo::DistanceOracle* oracle;
    const geo::RoadNetwork* movement;  ///< non-null: drive along the network
  };
  const NamedOracle oracles[] = {{"euclidean", &euclidean, nullptr},
                                 {"circuity_1.3", &circuity, nullptr},
                                 {"road_network", &road, &network}};

  std::printf("# Distance-substrate ablation -- Boston workload (%zu requests, %d taxis)\n",
              city.size(), fleet_options.taxi_count);
  std::printf(
      "\noracle,algorithm,served,cancelled,mean_delay_min,mean_passenger_km,"
      "mean_taxi_km,total_driven_km\n");
  for (const NamedOracle& named : oracles) {
    for (auto& dispatcher : bench::nonsharing_roster(params)) {
      sim::SimulatorConfig config = bench::simulator_config(params);
      config.road_network = named.movement;
      sim::Simulator simulator(city, fleet, *named.oracle, config);
      const auto report = simulator.run(*dispatcher);
      std::printf("%s,%s,%zu,%zu,%.3f,%.3f,%.3f,%.1f\n", named.name,
                  report.dispatcher_name.c_str(), report.served, report.cancelled,
                  report.delay_stats.mean(), report.passenger_stats.mean(),
                  report.taxi_stats.mean(), report.total_taxi_distance_km);
    }
  }
  return 0;
}
