// Ablation: what Eq. 1 maximizes. The paper packs for *count* of shared
// subsets; a company might instead maximize pooled riders or driven-km
// savings. Same local-search solver, different weights -- this bench
// measures the downstream effect on the dispatch metrics.
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace o2o;
  bench::PaperParams params;

  trace::CityModel model = trace::CityModel::boston();
  trace::GenerationOptions gen;
  gen.duration_seconds = 3.0 * 3600.0;
  gen.start_hour = 7.0;
  gen.seed = 20120908;
  const trace::Trace city = trace::generate(model, gen);

  trace::FleetOptions fleet_options;
  fleet_options.taxi_count = 160;  // scarcity makes packing choices matter
  fleet_options.seed = 42;
  const auto fleet = trace::make_fleet(model.region, fleet_options);

  std::printf("# Packing-objective ablation -- STD-P, Boston rush (%zu requests, %d taxis)\n",
              city.size(), fleet_options.taxi_count);
  std::printf(
      "\nobjective,served,cancelled,shared_rides,mean_delay_min,mean_passenger_km,"
      "mean_taxi_km,total_distance_km\n");

  struct NamedObjective {
    const char* name;
    core::PackingObjective objective;
  };
  const NamedObjective objectives[] = {
      {"count (Eq. 1)", core::PackingObjective::kCount},
      {"riders", core::PackingObjective::kRiders},
      {"savings", core::PackingObjective::kSavings}};
  for (const NamedObjective& named : objectives) {
    const DispatchConfig config =
        bench::dispatch_config(params).with_packing_objective(named.objective);
    const auto dispatcher = make_std_p(config);
    sim::Simulator simulator(city, fleet, bench::oracle(), config.simulation());
    const auto report = simulator.run(*dispatcher);
    std::printf("%s,%zu,%zu,%zu,%.3f,%.3f,%.3f,%.1f\n", named.name, report.served,
                report.cancelled, report.shared_rides, report.delay_stats.mean(),
                report.passenger_stats.mean(), report.taxi_stats.mean(),
                report.total_taxi_distance_km);
  }
  return 0;
}
