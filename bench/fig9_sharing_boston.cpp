// Figure 9: sharing dispatch CDFs on the Boston workload (200 taxis,
// θ = 5 km). Same roster as Fig. 8; the compact region lowers both
// dissatisfaction scales relative to New York.
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace o2o;
  bench::PaperParams params;

  trace::CityModel model = trace::CityModel::boston();
  trace::GenerationOptions gen;
  gen.duration_seconds = 3.0 * 3600.0;
  gen.start_hour = 7.0;
  gen.seed = 20120908;
  const trace::Trace city = trace::generate(model, gen);

  trace::FleetOptions fleet_options;
  fleet_options.taxi_count = 200;
  fleet_options.seed = 42;
  const auto fleet = trace::make_fleet(model.region, fleet_options);

  std::printf("# Fig. 9 -- sharing dispatch, Boston workload\n");
  std::printf("# requests=%zu taxis=%d theta=%.1f km\n", city.size(),
              fleet_options.taxi_count, params.theta_km);

  const auto reports =
      bench::run_roster(city, fleet, bench::sharing_roster(params), params);

  bench::print_cdf_table("Fig. 9(a) dispatch delay CDF", "delay_min", reports,
                         &sim::SimulationReport::delay_cdf, 0.0, 30.0, 31);
  bench::print_cdf_table("Fig. 9(b) passenger dissatisfaction CDF", "km", reports,
                         &sim::SimulationReport::passenger_cdf, 0.0, 10.0, 21);
  bench::print_cdf_table("Fig. 9(c) taxi dissatisfaction CDF", "km", reports,
                         &sim::SimulationReport::taxi_cdf, -18.0, 8.0, 27);
  bench::print_summary(reports);
  return 0;
}
