// Figure 7: average dispatch delay (a), passenger dissatisfaction (b)
// and taxi dissatisfaction (c) on the Boston workload by clock time over
// one full day (3-hour buckets, 200 taxis). Expected shape: 9 am and
// 6 pm commute peaks raise delay and passenger dissatisfaction and lower
// (improve) nothing -- taxi dissatisfaction worsens less for NSTD.
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace o2o;
  bench::PaperParams params;

  trace::CityModel model = trace::CityModel::boston();
  trace::GenerationOptions gen;
  gen.duration_seconds = 24.0 * 3600.0;
  gen.start_hour = 0.0;  // trace time == clock time
  gen.seed = 77;
  const trace::Trace city = trace::generate(model, gen);

  trace::FleetOptions fleet_options;
  fleet_options.taxi_count = 200;
  fleet_options.seed = 42;
  const auto fleet = trace::make_fleet(model.region, fleet_options);

  std::printf("# Fig. 7 -- non-sharing dispatch vs clock time, Boston workload\n");
  std::printf("# requests=%zu taxis=%d full day, 3h buckets\n", city.size(),
              fleet_options.taxi_count);

  const auto reports =
      bench::run_roster(city, fleet, bench::nonsharing_roster(params), params);

  bench::print_hourly_table("Fig. 7(a) average dispatch delay (min) by clock time",
                            reports, &sim::SimulationReport::hourly_delay);
  bench::print_hourly_table(
      "Fig. 7(b) average passenger dissatisfaction (km) by clock time", reports,
      &sim::SimulationReport::hourly_passenger);
  bench::print_hourly_table(
      "Fig. 7(c) average taxi dissatisfaction (km) by clock time", reports,
      &sim::SimulationReport::hourly_taxi);
  bench::print_summary(reports);
  return 0;
}
