// Figure 5: non-sharing dispatch CDFs on the Boston workload (200
// taxis). Compared with Fig. 4, the Boston region is compact, so both
// dissatisfaction metrics sit lower and the NSTD variants are no longer
// outpaced on dispatch delay (they decline distant dispatches and let
// passengers wait for nearby busy taxis instead).
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace o2o;
  bench::PaperParams params;

  trace::CityModel model = trace::CityModel::boston();
  trace::GenerationOptions gen;
  gen.duration_seconds = 4.0 * 3600.0;  // 10 am - 2 pm window
  gen.start_hour = 10.0;
  gen.seed = 20120901;
  const trace::Trace city = trace::generate(model, gen);

  trace::FleetOptions fleet_options;
  fleet_options.taxi_count = 200;  // the paper's Boston fleet
  fleet_options.seed = 42;
  const auto fleet = trace::make_fleet(model.region, fleet_options);

  std::printf("# Fig. 5 -- non-sharing dispatch, Boston workload\n");
  std::printf("# requests=%zu taxis=%d window=10am-2pm\n", city.size(),
              fleet_options.taxi_count);

  const auto reports =
      bench::run_roster(city, fleet, bench::nonsharing_roster(params), params);

  bench::print_cdf_table("Fig. 5(a) dispatch delay CDF", "delay_min", reports,
                         &sim::SimulationReport::delay_cdf, 0.0, 30.0, 31);
  bench::print_cdf_table("Fig. 5(b) passenger dissatisfaction CDF", "km", reports,
                         &sim::SimulationReport::passenger_cdf, 0.0, 8.0, 17);
  bench::print_cdf_table("Fig. 5(c) taxi dissatisfaction CDF", "km", reports,
                         &sim::SimulationReport::taxi_cdf, -10.0, 8.0, 19);
  bench::print_summary(reports);
  return 0;
}
