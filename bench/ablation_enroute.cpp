// Ablation: the STD+ en-route extension (beyond the paper -- its
// UberPool-style future work). Unserved requests may join *busy* taxis
// when the insertion satisfies both sides' reservation thresholds and
// every affected rider's θ-detour. Measures how much service volume the
// extension recovers and what it costs the satisfaction metrics.
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace o2o;
  bench::PaperParams params;

  trace::CityModel model = trace::CityModel::boston();
  trace::GenerationOptions gen;
  gen.duration_seconds = 3.0 * 3600.0;
  gen.start_hour = 7.0;  // rush: scarcity makes en-route insertion matter
  gen.seed = 20120908;
  const trace::Trace city = trace::generate(model, gen);

  std::printf("# En-route extension ablation -- Boston rush (%zu requests)\n",
              city.size());
  std::printf(
      "\ntaxis,algorithm,served,cancelled,shared_rides,mean_delay_min,"
      "mean_passenger_km,mean_taxi_km\n");
  for (const int taxis : {120, 200}) {
    trace::FleetOptions fleet_options;
    fleet_options.taxi_count = taxis;
    fleet_options.seed = 42;
    const auto fleet = trace::make_fleet(model.region, fleet_options);

    for (const bool extended : {false, true}) {
      const DispatchConfig config =
          bench::dispatch_config(params).with_enroute_extension(extended);
      const auto dispatcher = make_std_p(config);
      sim::Simulator simulator(city, fleet, bench::oracle(), config.simulation());
      const auto report = simulator.run(*dispatcher);
      std::printf("%d,%s,%zu,%zu,%zu,%.3f,%.3f,%.3f\n", taxis,
                  report.dispatcher_name.c_str(), report.served, report.cancelled,
                  report.shared_rides, report.delay_stats.mean(),
                  report.passenger_stats.mean(), report.taxi_stats.mean());
    }
  }
  return 0;
}
