// Shared harness for the figure-reproduction benches: builds the paper's
// algorithm roster (Section VI-B), runs each over a trace, and prints the
// CDF series / averages the figures plot. Output is CSV-like so the
// tables can be piped straight into a plotting tool.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "baselines/ilp.h"
#include "baselines/nonsharing.h"
#include "baselines/raii.h"
#include "baselines/sarp.h"
#include "core/dispatch_config.h"
#include "core/dispatchers.h"
#include "geo/backend.h"
#include "sim/simulator.h"
#include "trace/fleet.h"
#include "trace/synthetic.h"

namespace o2o::bench {

/// Evaluation constants from Section VI: α = β = 1, θ = 5 km, 20 km/h,
/// one-minute frames. The reservation thresholds (dummy positions) are
/// not numerically specified in the paper; these values express "no taxi
/// from the other side of town / no ride that loses money big" and are
/// held fixed across every experiment.
struct PaperParams {
  double alpha = 1.0;
  double beta = 1.0;
  double theta_km = 5.0;
  /// Passengers will not wait for a taxi farther than this.
  double passenger_threshold_km = 10.0;
  /// Drivers refuse rides whose approach distance exceeds the trip's
  /// fare-weighted payoff by more than this slack (score <= threshold).
  double taxi_threshold_score = 2.0;
  double cancel_timeout_seconds = 3600.0;
};

inline core::PreferenceParams preference_params(const PaperParams& p) {
  core::PreferenceParams params;
  params.alpha = p.alpha;
  params.beta = p.beta;
  params.passenger_threshold_km = p.passenger_threshold_km;
  params.taxi_threshold_score = p.taxi_threshold_score;
  return params;
}

/// The PaperParams bundle as a DispatchConfig -- the single source the
/// stable-dispatcher roster entries AND the simulator are built from
/// (the .simulation() section replaces the old separate SimulatorConfig).
/// The sharing knobs are harmless on the non-sharing dispatchers (their
/// projection drops them). City-scale performance knobs (documented in
/// DESIGN.md): riders whose pick-ups are farther apart than 2θ are not
/// considered for pooling, and each unit ranks only its 24 nearest taxis.
inline DispatchConfig dispatch_config(const PaperParams& p) {
  return DispatchConfig{}
      .with_alpha(p.alpha)
      .with_beta(p.beta)
      .with_passenger_threshold_km(p.passenger_threshold_km)
      .with_taxi_threshold_score(p.taxi_threshold_score)
      .with_detour_threshold_km(p.theta_km)
      .with_pickup_radius_km(2.0 * p.theta_km)
      .with_candidate_taxis_per_unit(24)
      .with_frame_seconds(60.0)
      .with_speed_kmh(20.0)
      .with_cancel_timeout_seconds(p.cancel_timeout_seconds);
}

/// The non-sharing roster of Fig. 4-7: NSTD-P, NSTD-T, Greedy, MinCost,
/// MinMax.
inline std::vector<std::unique_ptr<sim::Dispatcher>> nonsharing_roster(
    const PaperParams& p) {
  std::vector<std::unique_ptr<sim::Dispatcher>> roster;
  const DispatchConfig config = dispatch_config(p);
  roster.push_back(make_nstd_p(config));
  roster.push_back(make_nstd_t(config));
  roster.push_back(std::make_unique<baselines::NonSharingBaseline>(
      baselines::NonSharingPolicy::kGreedy));
  roster.push_back(std::make_unique<baselines::NonSharingBaseline>(
      baselines::NonSharingPolicy::kMinCost));
  roster.push_back(std::make_unique<baselines::NonSharingBaseline>(
      baselines::NonSharingPolicy::kMinMax));
  return roster;
}

/// The sharing roster of Fig. 8-9: STD-P, STD-T, RAII, SARP, ILP.
inline std::vector<std::unique_ptr<sim::Dispatcher>> sharing_roster(const PaperParams& p) {
  std::vector<std::unique_ptr<sim::Dispatcher>> roster;
  const DispatchConfig config = dispatch_config(p);
  roster.push_back(make_std_p(config));
  roster.push_back(make_std_t(config));
  baselines::RaiiOptions raii;
  raii.search_radius_km = p.passenger_threshold_km;
  raii.detour_threshold_km = p.theta_km;
  raii.max_wait_km = p.passenger_threshold_km;
  raii.use_busy_taxis = false;
  roster.push_back(std::make_unique<baselines::RaiiDispatcher>(raii));
  baselines::SarpOptions sarp;
  sarp.detour_threshold_km = p.theta_km;
  sarp.max_pickup_km = p.passenger_threshold_km;
  roster.push_back(std::make_unique<baselines::SarpDispatcher>(sarp));
  baselines::IlpOptions ilp;
  ilp.grouping.detour_threshold_km = p.theta_km;
  ilp.grouping.pickup_radius_km = 2.0 * p.theta_km;
  ilp.max_pickup_km = p.passenger_threshold_km;
  roster.push_back(std::make_unique<baselines::IlpDispatcher>(ilp));
  return roster;
}

inline sim::SimulatorConfig simulator_config(const PaperParams& p) {
  return dispatch_config(p).simulation();
}

/// The distance oracle used by all figure benches, resolved through the
/// pluggable backend factory. The default spec is the Euclidean surface
/// (matching the paper's city model); benches that take a --backend flag
/// resolve their own geo::DistanceBackend instead.
inline const geo::DistanceOracle& oracle() {
  static const geo::DistanceBackend backend =
      geo::make_distance_oracle(geo::DistanceBackendSpec{});
  return *backend.oracle;
}

/// Runs every dispatcher in `roster` over the same trace and fleet.
std::vector<sim::SimulationReport> run_roster(
    const trace::Trace& trace, const std::vector<trace::Taxi>& fleet,
    std::vector<std::unique_ptr<sim::Dispatcher>> roster, const PaperParams& params,
    bool verbose = true);

/// Prints one CDF table (Figs. 4, 5, 8, 9 panels): header row of
/// algorithm names, then `points` rows "x, F_1(x), ..., F_n(x)".
void print_cdf_table(const std::string& title, const std::string& x_label,
                     const std::vector<sim::SimulationReport>& reports,
                     const metrics::CdfBuilder sim::SimulationReport::* cdf, double lo,
                     double hi, int points);

/// Prints per-algorithm summary lines (served/cancelled counts, metric
/// means) -- the quick-look version of each figure.
void print_summary(const std::vector<sim::SimulationReport>& reports);

/// Prints the hourly-bucket table (Fig. 7 panels).
void print_hourly_table(const std::string& title,
                        const std::vector<sim::SimulationReport>& reports,
                        const metrics::HourlyBuckets sim::SimulationReport::* buckets);

}  // namespace o2o::bench
