// Plain-timer harness for the contraction-hierarchy backend: CH
// preprocessing cost, cold point-query latency vs the Dijkstra-tree
// NetworkOracle on the same graph, and warm many-to-many row throughput.
// The headline number is the cold point-query speedup -- a CH upward
// search settles a sliver of the graph where a cold NetworkOracle query
// must run a full Dijkstra to build its source tree. DESIGN.md's
// acceptance bar is >= 10x at city scale.
//
//   ./build/bench/micro_ch [--quick]
//
// --quick shrinks the graph and the query counts so CI can run the
// harness as a smoke test in a few seconds.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "geo/ch/ch_oracle.h"
#include "geo/ch/contraction_hierarchy.h"
#include "geo/road_network.h"
#include "util/contracts.h"
#include "util/rng.h"

using namespace o2o;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

std::vector<geo::Point> random_points(std::size_t count, double extent_km,
                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<geo::Point> points;
  points.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    points.push_back({rng.uniform(0.0, extent_km), rng.uniform(0.0, extent_km)});
  }
  return points;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: micro_ch [--quick]\n");
      return 2;
    }
  }

  // A city-scale jittered street grid with closures (the same generator
  // the ablations use). 100x100 = 10k intersections; --quick trims to
  // 30x30 so the smoke run finishes in seconds.
  const int side = quick ? 30 : 100;
  const std::size_t cold_queries = quick ? 64 : 256;
  const std::size_t m2m_rows = quick ? 32 : 128;
  const std::size_t m2m_targets = 64;
  const double cell_km = 0.4;
  const geo::RoadNetwork network =
      geo::RoadNetwork::make_grid_city(side, side, cell_km, 0.15, 0.15, 7, {0.0, 0.0});
  const double extent_km = cell_km * (side - 1);
  std::printf("micro_ch: %zu nodes / %zu edges (%dx%d grid)\n", network.node_count(),
              network.edge_count(), side, side);

  // --- Preprocessing -------------------------------------------------------
  const auto build_start = std::chrono::steady_clock::now();
  geo::ContractionHierarchy ch = geo::ContractionHierarchy::build(network);
  const double build_seconds = seconds_since(build_start);
  std::printf("preprocess: %.3f s, %zu shortcuts, %zu upward edges\n", build_seconds,
              ch.shortcut_count(), ch.upward_edge_count());

  // --- Cold point queries --------------------------------------------------
  // Distinct random endpoints per query, fresh oracles: every query
  // misses the tree/space caches, so this is the latency a frame pays
  // the first time it prices a new source.
  const auto sources = random_points(cold_queries, extent_km, 11);
  const auto targets = random_points(cold_queries, extent_km, 12);

  const geo::NetworkOracle dijkstra(network, network.node_count());
  const auto dijkstra_start = std::chrono::steady_clock::now();
  double dijkstra_sum = 0.0;
  for (std::size_t i = 0; i < cold_queries; ++i) {
    dijkstra_sum += dijkstra.distance(sources[i], targets[i]);
  }
  const double dijkstra_cold_us = seconds_since(dijkstra_start) * 1e6 / cold_queries;

  const geo::CHOracle ch_oracle(network, std::move(ch), network.node_count());
  const auto ch_start = std::chrono::steady_clock::now();
  double ch_sum = 0.0;
  for (std::size_t i = 0; i < cold_queries; ++i) {
    ch_sum += ch_oracle.distance(sources[i], targets[i]);
  }
  const double ch_cold_us = seconds_since(ch_start) * 1e6 / cold_queries;

  // The two engines price the same metric; a disagreement here means a
  // broken hierarchy, not a slow one.
  O2O_ENSURES(std::abs(dijkstra_sum - ch_sum) <= 1e-6 * std::abs(dijkstra_sum));

  std::printf("cold point query: dijkstra %.1f us, ch %.1f us  (speedup %.1fx)\n",
              dijkstra_cold_us, ch_cold_us, dijkstra_cold_us / ch_cold_us);

  // --- Warm many-to-many rows ----------------------------------------------
  // One distances_from row per source against a fixed target set, after
  // the caches have seen every endpoint once -- the steady-state shape
  // of a dispatch frame's cost-matrix fill.
  const auto row_sources = random_points(m2m_rows, extent_km, 21);
  const auto row_targets = random_points(m2m_targets, extent_km, 22);
  std::vector<double> row(m2m_targets);

  const auto run_rows = [&](const geo::DistanceOracle& oracle) {
    for (const geo::Point& s : row_sources) {
      oracle.distances_from_into(s, row_targets, row.data());  // warm-up pass
    }
    const auto start = std::chrono::steady_clock::now();
    for (const geo::Point& s : row_sources) {
      oracle.distances_from_into(s, row_targets, row.data());
    }
    return seconds_since(start) * 1e6 / m2m_rows;
  };
  const double dijkstra_row_us = run_rows(dijkstra);
  const double ch_row_us = run_rows(ch_oracle);
  std::printf("warm %zu-target row: dijkstra %.1f us, ch %.1f us\n", m2m_targets,
              dijkstra_row_us, ch_row_us);
  return 0;
}
