#include "bench/common.h"

#include <cstdio>

#include "util/stopwatch.h"

namespace o2o::bench {

std::vector<sim::SimulationReport> run_roster(
    const trace::Trace& trace, const std::vector<trace::Taxi>& fleet,
    std::vector<std::unique_ptr<sim::Dispatcher>> roster, const PaperParams& params,
    bool verbose) {
  std::vector<sim::SimulationReport> reports;
  reports.reserve(roster.size());
  for (auto& dispatcher : roster) {
    Stopwatch stopwatch;
    sim::Simulator simulator(trace, fleet, oracle(), simulator_config(params));
    reports.push_back(simulator.run(*dispatcher));
    if (verbose) {
      std::fprintf(stderr, "# %-8s simulated in %.1f s wall\n",
                   reports.back().dispatcher_name.c_str(), stopwatch.elapsed_seconds());
    }
  }
  return reports;
}

void print_cdf_table(const std::string& title, const std::string& x_label,
                     const std::vector<sim::SimulationReport>& reports,
                     const metrics::CdfBuilder sim::SimulationReport::* cdf, double lo,
                     double hi, int points) {
  std::printf("\n## %s\n", title.c_str());
  std::printf("%s", x_label.c_str());
  for (const auto& report : reports) std::printf(",%s", report.dispatcher_name.c_str());
  std::printf("\n");
  for (int i = 0; i < points; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) / (points - 1);
    std::printf("%.2f", x);
    for (const auto& report : reports) {
      const metrics::CdfBuilder& builder = report.*cdf;
      std::printf(",%.4f", builder.empty() ? 0.0 : builder.cdf_at(x));
    }
    std::printf("\n");
  }
}

void print_summary(const std::vector<sim::SimulationReport>& reports) {
  std::printf(
      "\n## summary\nalgorithm,served,cancelled,shared_rides,mean_delay_min,"
      "mean_passenger_km,mean_taxi_km,total_distance_km\n");
  for (const auto& report : reports) {
    std::printf("%s,%zu,%zu,%zu,%.3f,%.3f,%.3f,%.1f\n",
                report.dispatcher_name.c_str(), report.served, report.cancelled,
                report.shared_rides, report.delay_stats.mean(),
                report.passenger_stats.mean(), report.taxi_stats.mean(),
                report.total_taxi_distance_km);
  }
}

void print_hourly_table(const std::string& title,
                        const std::vector<sim::SimulationReport>& reports,
                        const metrics::HourlyBuckets sim::SimulationReport::* buckets) {
  std::printf("\n## %s\nclock_hour", title.c_str());
  for (const auto& report : reports) std::printf(",%s", report.dispatcher_name.c_str());
  std::printf("\n");
  if (reports.empty()) return;
  const std::size_t bucket_count = (reports.front().*buckets).bucket_count();
  for (std::size_t b = 0; b < bucket_count; ++b) {
    std::printf("%d", (reports.front().*buckets).bucket_start_hour(b));
    for (const auto& report : reports) {
      const metrics::StreamingStats& stats = (report.*buckets).bucket(b);
      std::printf(",%.3f", stats.count() == 0 ? 0.0 : stats.mean());
    }
    std::printf("\n");
  }
}

}  // namespace o2o::bench
