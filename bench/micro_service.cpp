// Plain-timer harness for the streaming service stack: how much latency
// do the api conversion layer and the wire codec + ingestion ring add on
// top of a raw batch dispatch call, and what frame rate does each path
// sustain at city-scale frame sizes?
//
//   ./build/bench/micro_service [--quick] [--frames=N] [--dispatcher=KIND]
//
// Three arms, identical frame content:
//   batch    raw Dispatcher::dispatch on a hand-built DispatchContext
//   session  DispatchSession::dispatch (api structs in, api structs out)
//   service  full wire path: encode ndjson -> decode -> ingestion ring ->
//            session -> encode response -> decode
// Reported per arm and frame size: frames/sec plus p50/p99 frame latency
// over the run (first frame included — cold caches are part of life).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "core/dispatch_config.h"
#include "geo/backend.h"
#include "index/spatial_grid.h"
#include "service/api.h"
#include "service/codec.h"
#include "service/service.h"
#include "service/session.h"
#include "sim/dispatcher.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace {

using namespace o2o;

// Resolved through the backend factory; the default spec is the paper's
// Euclidean surface. kBackend owns the oracle kOracle refers to.
const geo::DistanceBackend kBackend = geo::make_distance_oracle({});
const geo::DistanceOracle& kOracle = *kBackend.oracle;

constexpr double kExtentKm = 40.0;

std::vector<trace::Request> make_requests(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<trace::Request> requests;
  requests.reserve(count);
  for (std::size_t r = 0; r < count; ++r) {
    trace::Request request;
    request.id = static_cast<trace::RequestId>(r);
    request.time_seconds = static_cast<double>(r % 60);
    request.pickup = {rng.uniform(0, kExtentKm), rng.uniform(0, kExtentKm)};
    const double angle = rng.uniform(0.0, 6.283185307179586);
    const double trip = rng.uniform(1.0, 4.0);
    request.dropoff = {request.pickup.x + trip * std::cos(angle),
                       request.pickup.y + trip * std::sin(angle)};
    requests.push_back(request);
  }
  return requests;
}

std::vector<trace::Taxi> make_taxis(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<trace::Taxi> taxis;
  taxis.reserve(count);
  for (std::size_t t = 0; t < count; ++t) {
    trace::Taxi taxi;
    taxi.id = static_cast<trace::TaxiId>(t);
    taxi.location = {rng.uniform(0, kExtentKm), rng.uniform(0, kExtentKm)};
    taxis.push_back(taxi);
  }
  return taxis;
}

DispatchConfig bench_config() {
  return DispatchConfig{}
      .with_passenger_threshold_km(3.0)
      .with_taxi_threshold_score(6.0)
      .with_detour_threshold_km(2.0);
}

api::FrameRequest to_api_frame(const std::vector<trace::Request>& requests,
                               const std::vector<trace::Taxi>& taxis) {
  api::FrameRequest frame;
  frame.frame = 0;
  frame.timestamp = 60.0;
  frame.orders.reserve(requests.size());
  for (const trace::Request& request : requests) {
    api::Order order;
    order.order_id = request.id;
    order.timestamp = request.time_seconds;
    order.start = request.pickup;
    order.finish = request.dropoff;
    order.seats = request.seats;
    frame.orders.push_back(order);
  }
  frame.drivers.reserve(taxis.size());
  for (const trace::Taxi& taxi : taxis) {
    api::Driver driver;
    driver.driver_id = taxi.id;
    driver.location = taxi.location;
    driver.seats = taxi.seats;
    frame.drivers.push_back(driver);
  }
  return frame;
}

struct ArmResult {
  double frames_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::size_t assignments = 0;  ///< sanity: all arms must agree
};

ArmResult summarize(std::vector<double> latencies_ms, std::size_t assignments) {
  ArmResult result;
  double total_ms = 0.0;
  for (const double ms : latencies_ms) total_ms += ms;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  const std::size_t n = latencies_ms.size();
  result.frames_per_sec = n / (total_ms / 1e3);
  result.p50_ms = latencies_ms[n / 2];
  result.p99_ms = latencies_ms[std::min(n - 1, (n * 99) / 100)];
  result.assignments = assignments;
  return result;
}

template <typename FrameFn>
ArmResult run_arm(int frames, FrameFn&& run_frame) {
  std::vector<double> latencies_ms;
  latencies_ms.reserve(static_cast<std::size_t>(frames));
  std::size_t assignments = 0;
  for (int f = 0; f < frames; ++f) {
    const auto start = std::chrono::steady_clock::now();
    assignments = run_frame();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    latencies_ms.push_back(std::chrono::duration<double, std::milli>(elapsed).count());
  }
  return summarize(std::move(latencies_ms), assignments);
}

ArmResult bench_batch(const std::string& kind, const std::vector<trace::Request>& requests,
                      const std::vector<trace::Taxi>& taxis, int frames) {
  const DispatchConfig config = bench_config();
  const auto dispatcher = make_dispatcher(kind, config);
  O2O_EXPECTS(dispatcher != nullptr);
  return run_arm(frames, [&] {
    // Grid construction is part of the frame, as in the simulator.
    index::SpatialGrid grid(taxis, config.simulation().idle_grid_cell_km);
    sim::DispatchContext context;
    context.now_seconds = 60.0;
    context.idle_taxis = taxis;
    context.pending = requests;
    context.oracle = &kOracle;
    context.idle_grid = &grid;
    std::size_t assigned = 0;
    for (const auto& assignment : dispatcher->dispatch(context)) {
      assigned += assignment.requests.size();
    }
    return assigned;
  });
}

ArmResult bench_session(const std::string& kind, const api::FrameRequest& frame,
                        int frames) {
  service::DispatchSession session(kind, bench_config(), kOracle);
  return run_arm(frames, [&] {
    std::size_t assigned = 0;
    const auto response = session.dispatch(frame);
    for (const auto& assignment : response->assignments) {
      assigned += assignment.order_ids.size();
    }
    return assigned;
  });
}

ArmResult bench_service(const std::string& kind, const api::FrameRequest& frame,
                        int frames) {
  DispatchConfig config = bench_config().with_ingest_capacity(1u << 16);
  service::StreamingService svc(kind, config, kOracle);
  return run_arm(frames, [&] {
    for (const std::string& line : service::encode_frame_events(frame)) {
      const auto event = service::decode_event(line);
      O2O_EXPECTS(event.has_value());
      svc.submit(*event);
    }
    const auto response = svc.next_response();
    O2O_EXPECTS(response.has_value());
    const auto decoded = service::decode_response(service::encode_response(*response));
    O2O_EXPECTS(decoded.has_value());
    std::size_t assigned = 0;
    for (const auto& assignment : decoded->assignments) {
      assigned += assignment.order_ids.size();
    }
    return assigned;
  });
}

void print_arm(const char* arm, std::size_t orders, const ArmResult& result) {
  std::printf("  %-8s orders=%5zu  %8.1f frames/s  p50=%8.3f ms  p99=%8.3f ms  "
              "(assigned %zu)\n",
              arm, orders, result.frames_per_sec, result.p50_ms, result.p99_ms,
              result.assignments);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  int frames = 50;
  std::string kind = "nstd-p";
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(arg, "--frames=", 9) == 0) {
      frames = std::atoi(arg + 9);
    } else if (std::strncmp(arg, "--dispatcher=", 13) == 0) {
      kind = arg + 13;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      return 2;
    }
  }
  if (quick) frames = std::min(frames, 8);
  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{1000} : std::vector<std::size_t>{1000, 2000, 5000};

  std::printf("micro_service: %s, %d frames per arm\n", kind.c_str(), frames);
  for (const std::size_t orders : sizes) {
    const std::size_t taxis = orders / 2;
    const auto requests = make_requests(orders, 7001);
    const auto fleet = make_taxis(taxis, 7002);
    const api::FrameRequest frame = to_api_frame(requests, fleet);

    const ArmResult batch = bench_batch(kind, requests, fleet, frames);
    const ArmResult session = bench_session(kind, frame, frames);
    const ArmResult service = bench_service(kind, frame, frames);
    print_arm("batch", orders, batch);
    print_arm("session", orders, session);
    print_arm("service", orders, service);
    if (batch.assignments != session.assignments ||
        session.assignments != service.assignments) {
      std::fprintf(stderr, "ARM DISAGREEMENT at %zu orders: batch=%zu session=%zu "
                           "service=%zu\n",
                   orders, batch.assignments, session.assignments,
                   service.assignments);
      return 1;
    }
    const double codec_overhead_pct =
        (service.p50_ms - session.p50_ms) / session.p50_ms * 100.0;
    std::printf("  codec+ring p50 overhead vs session: %+.1f%%\n\n",
                codec_overhead_pct);
  }
  return 0;
}
