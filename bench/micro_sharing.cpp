// Micro-benchmarks for the sharing pipeline: shared-route optimization
// (exhaustive vs Held-Karp DP), feasible-group enumeration (pair-pruned
// vs exhaustive triples), the three set-packing solvers, and city-scale
// before/after comparisons of the grid-pruned enumeration engine against
// the dense serial scan (the EXPERIMENTS.md table).
//
// Run with --quick for the CI smoke subset: the dense city-scale
// reference arms (minutes of single-iteration work) are filtered out and
// the measurement time per benchmark is cut down.
// `--frames N` switches to the perturbed-frame mode: consecutive frames
// with `--churn X` request churn (default 0.15) share one GroupCache,
// reporting the cold (first) frame against the warm mean -- the
// cross-frame persistence numbers in EXPERIMENTS.md.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "core/dispatch_config.h"
#include "core/sharing.h"
#include "geo/backend.h"
#include "index/spatial_grid.h"
#include "obs/obs.h"
#include "packing/group_enum.h"
#include "packing/groups.h"
#include "packing/set_packing.h"
#include "routing/optimizer.h"
#include "util/rng.h"

namespace {

using namespace o2o;

// Resolved through the backend factory; the default spec is the paper's
// Euclidean surface. kBackend owns the oracle kOracle refers to.
const geo::DistanceBackend kBackend = geo::make_distance_oracle({});
const geo::DistanceOracle& kOracle = *kBackend.oracle;

std::vector<trace::Request> make_requests(std::size_t count, std::uint64_t seed,
                                          double extent = 6.0) {
  Rng rng(seed);
  std::vector<trace::Request> requests;
  for (std::size_t r = 0; r < count; ++r) {
    trace::Request request;
    request.id = static_cast<trace::RequestId>(r);
    request.pickup = {rng.uniform(0, extent), rng.uniform(0, extent)};
    request.dropoff = {rng.uniform(0, extent) + extent, rng.uniform(0, extent)};
    requests.push_back(request);
  }
  return requests;
}

void BM_RouteExhaustive(benchmark::State& state) {
  const auto riders = make_requests(static_cast<std::size_t>(state.range(0)), 11);
  const geo::Point start{0, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::optimal_route_exhaustive(riders, kOracle, start));
  }
}
BENCHMARK(BM_RouteExhaustive)->DenseRange(1, 4);

void BM_RouteDp(benchmark::State& state) {
  const auto riders = make_requests(static_cast<std::size_t>(state.range(0)), 12);
  const geo::Point start{0, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::optimal_route_dp(riders, kOracle, start));
  }
}
BENCHMARK(BM_RouteDp)->DenseRange(1, 7);

void BM_AnchoredSolverReuse(benchmark::State& state) {
  // The dispatcher's hot path: one group probed against many taxis.
  const auto riders = make_requests(3, 13);
  const routing::AnchoredRouteSolver solver(riders, kOracle);
  Rng rng(14);
  for (auto _ : state) {
    const geo::Point start{rng.uniform(0, 12), rng.uniform(0, 12)};
    benchmark::DoNotOptimize(solver.best_length(start));
  }
}
BENCHMARK(BM_AnchoredSolverReuse);

void BM_GroupEnumerationPruned(benchmark::State& state) {
  const auto requests = make_requests(static_cast<std::size_t>(state.range(0)), 15);
  packing::GroupOptions options;
  options.detour_threshold_km = 5.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        packing::enumerate_share_groups(requests, kOracle, options));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GroupEnumerationPruned)->Range(16, 128)->Complexity();

void BM_GroupEnumerationExhaustive(benchmark::State& state) {
  const auto requests = make_requests(static_cast<std::size_t>(state.range(0)), 15);
  packing::GroupOptions options;
  options.detour_threshold_km = 5.0;
  options.grow_triples_from_pairs = false;  // the paper's plain O(R^3)
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        packing::enumerate_share_groups(requests, kOracle, options));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GroupEnumerationExhaustive)->Range(16, 64)->Complexity();

packing::SetPackingProblem make_packing_problem(std::size_t requests,
                                                std::uint64_t seed) {
  const auto pool = make_requests(requests, seed);
  packing::GroupOptions options;
  options.detour_threshold_km = 5.0;
  packing::SetPackingProblem problem;
  problem.universe_size = requests;
  for (const auto& group : packing::enumerate_share_groups(pool, kOracle, options)) {
    auto members = group.member_indices;
    std::sort(members.begin(), members.end());
    problem.sets.push_back(std::move(members));
  }
  return problem;
}

void BM_SetPackingGreedy(benchmark::State& state) {
  const auto problem = make_packing_problem(static_cast<std::size_t>(state.range(0)), 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(packing::solve_greedy(problem));
  }
  state.counters["sets"] = static_cast<double>(problem.sets.size());
}
BENCHMARK(BM_SetPackingGreedy)->Range(16, 128);

void BM_SetPackingLocalSearch(benchmark::State& state) {
  const auto problem = make_packing_problem(static_cast<std::size_t>(state.range(0)), 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(packing::solve_local_search(problem));
  }
  state.counters["sets"] = static_cast<double>(problem.sets.size());
}
BENCHMARK(BM_SetPackingLocalSearch)->Range(16, 128);

void BM_SetPackingExact(benchmark::State& state) {
  // Exact branch & bound only fits small pools.
  auto problem = make_packing_problem(10, 17);
  if (problem.sets.size() > 26) problem.sets.resize(26);
  for (auto _ : state) {
    benchmark::DoNotOptimize(packing::solve_exact(problem));
  }
  state.counters["sets"] = static_cast<double>(problem.sets.size());
}
BENCHMARK(BM_SetPackingExact);

void BM_DispatchSharingFrame(benchmark::State& state) {
  // One full Algorithm-3 frame: grouping + packing + stable matching.
  const auto requests = make_requests(static_cast<std::size_t>(state.range(0)), 18);
  Rng rng(19);
  std::vector<trace::Taxi> taxis;
  for (int t = 0; t < state.range(1); ++t) {
    trace::Taxi taxi;
    taxi.id = t;
    taxi.location = {rng.uniform(0, 12), rng.uniform(0, 12)};
    taxis.push_back(taxi);
  }
  core::SharingParams params;
  params.preference.passenger_threshold_km = 12.0;
  params.preference.taxi_threshold_score = 8.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::dispatch_sharing(taxis, requests, kOracle, params));
  }
}
BENCHMARK(BM_DispatchSharingFrame)->Args({32, 64})->Args({64, 128})->Args({64, 256});

// ---------------------------------------------------------------------------
// City-scale before/after: requests over a 40x40 km region with 1-4 km
// trips, the regime where the derived pick-up radius (θ/2 + direct)
// prunes the vast majority of the O(R^2) pair candidates. The "Dense"
// arms run the serial reference scan (GroupOptions::parallel = false) --
// the engine's behaviour before this optimisation -- and are pinned to
// one iteration because they evaluate every pair.

std::vector<trace::Request> make_city_requests(std::size_t count, std::uint64_t seed) {
  constexpr double kExtentKm = 40.0;
  Rng rng(seed);
  std::vector<trace::Request> requests;
  requests.reserve(count);
  for (std::size_t r = 0; r < count; ++r) {
    trace::Request request;
    request.id = static_cast<trace::RequestId>(r);
    request.pickup = {rng.uniform(0, kExtentKm), rng.uniform(0, kExtentKm)};
    const double angle = rng.uniform(0.0, 6.283185307179586);
    const double trip = rng.uniform(1.0, 4.0);
    request.dropoff = {request.pickup.x + trip * std::cos(angle),
                       request.pickup.y + trip * std::sin(angle)};
    requests.push_back(request);
  }
  return requests;
}

packing::GroupOptions city_group_options(bool parallel) {
  packing::GroupOptions options;
  options.detour_threshold_km = 2.0;  // half the shortest trip in the mix
  options.parallel = parallel;
  return options;
}

void city_enumeration(benchmark::State& state, bool parallel) {
  const auto requests = make_city_requests(static_cast<std::size_t>(state.range(0)), 23);
  const packing::GroupOptions options = city_group_options(parallel);
  std::size_t groups = 0;
  for (auto _ : state) {
    const auto enumerated = packing::enumerate_share_groups(requests, kOracle, options);
    groups = enumerated.size();
    benchmark::DoNotOptimize(enumerated);
  }
  state.counters["groups"] = static_cast<double>(groups);
}

void BM_CityEnumerationPruned(benchmark::State& state) { city_enumeration(state, true); }
BENCHMARK(BM_CityEnumerationPruned)
    ->Arg(1000)
    ->Arg(2000)
    ->Arg(5000)
    ->Unit(benchmark::kMillisecond);

void BM_CityEnumerationDense(benchmark::State& state) { city_enumeration(state, false); }
BENCHMARK(BM_CityEnumerationDense)
    ->Arg(1000)
    ->Arg(2000)
    ->Arg(5000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_CityPackRequests(benchmark::State& state) {
  // Stages 1-2 only (enumeration + set packing): isolates how much of the
  // frame the matching stage costs on top.
  const auto requests = make_city_requests(static_cast<std::size_t>(state.range(0)), 24);
  core::SharingParams params;
  params.grouping = city_group_options(true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::pack_requests(requests, kOracle, params));
  }
}
BENCHMARK(BM_CityPackRequests)->Arg(1000)->Arg(2000)->Unit(benchmark::kMillisecond);

core::SharingParams city_sharing_params(bool parallel) {
  core::SharingParams params;
  params.grouping = city_group_options(parallel);
  params.preference.passenger_threshold_km = 2.0;
  params.preference.taxi_threshold_score = 8.0;
  params.candidate_taxis_per_unit = 8;
  return params;
}

void city_frame(benchmark::State& state, bool parallel) {
  const auto requests = make_city_requests(static_cast<std::size_t>(state.range(0)), 24);
  Rng rng(25);
  std::vector<trace::Taxi> taxis;
  for (int t = 0; t < 700; ++t) {  // the paper's New York fleet size
    trace::Taxi taxi;
    taxi.id = t;
    taxi.location = {rng.uniform(0, 40), rng.uniform(0, 40)};
    taxis.push_back(taxi);
  }
  const core::SharingParams params = city_sharing_params(parallel);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::dispatch_sharing(taxis, requests, kOracle, params));
  }
}

void BM_CitySharingFramePruned(benchmark::State& state) { city_frame(state, true); }
BENCHMARK(BM_CitySharingFramePruned)
    ->Arg(1000)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);

void BM_CitySharingFrameTraced(benchmark::State& state) {
  // Same frame as BM_CitySharingFramePruned but with a live TraceSink and
  // the full per-frame lifecycle -- the delta against the pruned arm is
  // the observability layer's overhead (budget: < 2%).
  const auto requests = make_city_requests(static_cast<std::size_t>(state.range(0)), 24);
  Rng rng(25);
  std::vector<trace::Taxi> taxis;
  for (int t = 0; t < 700; ++t) {
    trace::Taxi taxi;
    taxi.id = t;
    taxi.location = {rng.uniform(0, 40), rng.uniform(0, 40)};
    taxis.push_back(taxi);
  }
  const core::SharingParams params = city_sharing_params(true);
  obs::TraceSink sink(obs::TraceOptions{.enabled = true, .per_frame = false});
  obs::Activation guard(sink);
  std::uint64_t frame = 0;
  for (auto _ : state) {
    sink.begin_frame(frame++, 0.0);
    benchmark::DoNotOptimize(core::dispatch_sharing(taxis, requests, kOracle, params));
    sink.end_frame();
  }
  state.counters["proposals"] = static_cast<double>(
      sink.aggregate().counters[static_cast<std::size_t>(obs::Counter::kProposals)]);
}
BENCHMARK(BM_CitySharingFrameTraced)
    ->Arg(1000)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);

void BM_CitySharingFrameDense(benchmark::State& state) { city_frame(state, false); }
BENCHMARK(BM_CitySharingFrameDense)
    ->Arg(1000)
    ->Arg(2000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Perturbed-frame mode (--frames N): the simulator's steady state, where
// consecutive frames mostly overlap. Frame 0 enumerates cold; each later
// frame drops a `--churn` fraction of the requests (preserving order,
// like the FIFO pending queue), edits one rider in place, appends fresh
// arrivals, and
// re-enumerates against the same GroupCache. Warm frames replay most
// pair/triple verdicts instead of re-running optimal_route.

std::vector<trace::Request> perturb_frame(std::vector<trace::Request> requests,
                                          Rng& rng, trace::RequestId& next_id,
                                          double extent_km, double churn_rate) {
  std::vector<trace::Request> next;
  next.reserve(requests.size());
  for (const trace::Request& request : requests) {
    if (rng.uniform(0.0, 1.0) >= churn_rate) next.push_back(request);
  }
  if (!next.empty()) next.front().pickup.x += 0.05;
  const std::size_t arrivals = requests.size() - next.size();
  for (std::size_t added = 0; added < arrivals; ++added) {
    trace::Request request;
    request.id = next_id++;
    request.pickup = {rng.uniform(0.0, extent_km), rng.uniform(0.0, extent_km)};
    const double angle = rng.uniform(0.0, 6.283185307179586);
    const double trip = rng.uniform(1.0, 4.0);
    request.dropoff = {request.pickup.x + trip * std::cos(angle),
                       request.pickup.y + trip * std::sin(angle)};
    next.push_back(request);
  }
  return next;
}

// Full-dispatch A/B over the same perturbed frame stream: a persistent
// STD-P dispatcher driven through hand-built DispatchContexts, once with
// the incremental frame engine off (persist_candidates / parallel_exact /
// warm_start_da all false -- the cross-frame verdict cache stays on, so
// the baseline is the engine before this PR) and once with it on.
// Matched requests deliberately stay in the stream (the streaming
// re-dispatch shape where warm-start hints can fire); the fleet is a
// fixed idle set, so the simulator-side grid patching is covered by the
// sim_incremental_grid differential test, not here.

struct DispatchArmResult {
  double cold_ms = 0.0;
  double warm_mean_ms = 0.0;
  /// Stage times and counters summed over the warm frames only.
  obs::FrameTrace warm;
  int warm_frames = 0;
};

DispatchArmResult run_dispatch_arm(bool incremental, int frames, std::size_t size,
                                   double churn_rate) {
  constexpr double kExtentKm = 40.0;
  const DispatchConfig config = DispatchConfig{}
                                    .with_detour_threshold_km(2.0)
                                    .with_passenger_threshold_km(2.0)
                                    .with_taxi_threshold_score(8.0)
                                    .with_candidate_taxis_per_unit(8)
                                    .with_persist_candidates(incremental)
                                    .with_parallel_exact(incremental)
                                    .with_warm_start_da(incremental);
  const auto dispatcher = make_std_p(config);

  Rng rng(25);
  std::vector<trace::Taxi> taxis;
  for (int t = 0; t < 700; ++t) {
    trace::Taxi taxi;
    taxi.id = t;
    taxi.location = {rng.uniform(0, kExtentKm), rng.uniform(0, kExtentKm)};
    taxis.push_back(taxi);
  }

  auto requests = make_city_requests(size, 29);
  packing::GroupCache cache;
  Rng churn(31);
  trace::RequestId next_id = static_cast<trace::RequestId>(size);

  obs::TraceSink sink(obs::TraceOptions{.enabled = true});
  obs::Activation guard(sink);
  DispatchArmResult result;
  double warm_total_ms = 0.0;
  for (int frame = 0; frame < frames; ++frame) {
    const index::SpatialGrid grid(std::span<const trace::Taxi>(taxis), 1.0);
    sim::DispatchContext context;
    context.now_seconds = frame * 60.0;
    context.idle_taxis = taxis;
    context.pending = requests;
    context.oracle = &kOracle;
    context.idle_grid = &grid;
    context.trace = &sink;
    context.group_cache = &cache;
    sink.begin_frame(static_cast<std::uint64_t>(frame), context.now_seconds);
    const auto start = std::chrono::steady_clock::now();
    const auto assignments = dispatcher->dispatch(context);
    const double ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                  start)
            .count();
    benchmark::DoNotOptimize(assignments.size());
    sink.end_frame();
    if (frame == 0) {
      result.cold_ms = ms;
    } else {
      warm_total_ms += ms;
    }
    requests = perturb_frame(std::move(requests), churn, next_id, kExtentKm, churn_rate);
  }
  for (const obs::FrameTrace& trace : sink.frames()) {
    if (trace.frame == 0) continue;
    ++result.warm_frames;
    for (std::size_t i = 0; i < obs::kStageCount; ++i) {
      result.warm.stage_ns[i] += trace.stage_ns[i];
    }
    for (std::size_t i = 0; i < obs::kCounterCount; ++i) {
      result.warm.counters[i] += trace.counters[i];
    }
  }
  result.warm_mean_ms =
      frames > 1 ? warm_total_ms / static_cast<double>(frames - 1) : 0.0;
  return result;
}

void print_dispatch_ab(int frames, const std::vector<std::size_t>& sizes,
                       double churn_rate) {
  const auto stage_ms = [](const DispatchArmResult& r, obs::Stage stage) {
    if (r.warm_frames == 0) return 0.0;
    return static_cast<double>(r.warm.stage_ns[static_cast<std::size_t>(stage)]) / 1e6 /
           static_cast<double>(r.warm_frames);
  };
  const auto counter = [](const DispatchArmResult& r, obs::Counter c) {
    return static_cast<unsigned long long>(
        r.warm.counters[static_cast<std::size_t>(c)]);
  };
  std::printf("\nFull STD-P dispatch frames, 700 idle taxis (~%.0f%% churn/frame)\n",
              churn_rate * 100.0);
  std::printf("Warm-frame stage means in ms; counters summed over warm frames.\n");
  std::printf("%-10s %-12s %-9s %-10s %-9s %-8s %-9s %-8s %-7s %-9s %-10s\n",
              "requests", "arm", "cold_ms", "warm_mean", "match_ms", "cand_ms",
              "exact_ms", "reused", "seeds", "batches", "proposals");
  for (const std::size_t size : sizes) {
    for (const bool incremental : {false, true}) {
      const DispatchArmResult r = run_dispatch_arm(incremental, frames, size, churn_rate);
      std::printf("%-10zu %-12s %-9.2f %-10.2f %-9.2f %-8.2f %-9.2f %-8llu %-7llu "
                  "%-9llu %-10llu\n",
                  size, incremental ? "incremental" : "cold", r.cold_ms, r.warm_mean_ms,
                  stage_ms(r, obs::Stage::kStableMatching),
                  stage_ms(r, obs::Stage::kCandidateGen),
                  stage_ms(r, obs::Stage::kExactEval),
                  counter(r, obs::Counter::kCandidatesReused),
                  counter(r, obs::Counter::kDaWarmSeeds),
                  counter(r, obs::Counter::kExactParallelBatches),
                  counter(r, obs::Counter::kProposals));
    }
  }
}

int run_frames_mode(int frames, bool quick, double churn_rate) {
  constexpr double kExtentKm = 40.0;
  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{500} : std::vector<std::size_t>{1000, 2000, 5000};
  std::printf("Perturbed-frame enumeration (~%.0f%% churn/frame, persistent GroupCache)\n",
              churn_rate * 100.0);
  std::printf("%-10s %-8s %-12s %-12s %-10s %-14s %-8s\n", "requests", "frames",
              "cold_ms", "warm_mean", "hits", "revalidations", "groups");
  for (const std::size_t size : sizes) {
    auto requests = make_city_requests(size, 29);
    const packing::GroupOptions options = city_group_options(true);
    packing::GroupCache cache;
    Rng churn(31);
    trace::RequestId next_id = static_cast<trace::RequestId>(size);
    double cold_ms = 0.0;
    double warm_total_ms = 0.0;
    std::size_t groups = 0;
    for (int frame = 0; frame < frames; ++frame) {
      const auto start = std::chrono::steady_clock::now();
      const auto enumerated =
          packing::enumerate_share_groups(requests, kOracle, options, 4, &cache);
      const double ms =
          std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                    start)
              .count();
      groups = enumerated.size();
      if (frame == 0) {
        cold_ms = ms;
      } else {
        warm_total_ms += ms;
      }
      requests = perturb_frame(std::move(requests), churn, next_id, kExtentKm, churn_rate);
    }
    const double warm_mean =
        frames > 1 ? warm_total_ms / static_cast<double>(frames - 1) : 0.0;
    std::printf("%-10zu %-8d %-12.2f %-12.2f %-10llu %-14llu %-8zu\n", size, frames,
                cold_ms, warm_mean,
                static_cast<unsigned long long>(cache.stats().hits),
                static_cast<unsigned long long>(cache.stats().stores), groups);
  }
  print_dispatch_ab(frames, sizes, churn_rate);
  return 0;
}

}  // namespace

// Custom main: `--quick` rewrites the flag set for the CI smoke run --
// everything but the single-iteration dense reference arms and the
// 5000-request pruned arm, at a reduced per-benchmark measurement time.
int main(int argc, char** argv) {
  bool quick = false;
  int frames = 0;
  double churn_rate = 0.15;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc) + 2);
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--quick") {
      quick = true;
      continue;
    }
    if (arg == "--frames" && i + 1 < argc) {
      frames = std::atoi(argv[++i]);
      continue;
    }
    if (arg.rfind("--frames=", 0) == 0) {
      frames = std::atoi(argv[i] + 9);
      continue;
    }
    if (arg == "--churn" && i + 1 < argc) {
      churn_rate = std::atof(argv[++i]);
      continue;
    }
    if (arg.rfind("--churn=", 0) == 0) {
      churn_rate = std::atof(argv[i] + 8);
      continue;
    }
    args.push_back(argv[i]);
  }
  if (frames > 0) return run_frames_mode(frames, quick, churn_rate);
  static std::string filter =
      "--benchmark_filter=-BM_City.*Dense.*|BM_CityEnumerationPruned/5000";
  static std::string min_time = "--benchmark_min_time=0.05";
  if (quick) {
    args.push_back(filter.data());
    args.push_back(min_time.data());
  }
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
