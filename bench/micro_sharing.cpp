// Micro-benchmarks for the sharing pipeline: shared-route optimization
// (exhaustive vs Held-Karp DP), feasible-group enumeration (pair-pruned
// vs exhaustive triples), and the three set-packing solvers.
#include <benchmark/benchmark.h>

#include "core/sharing.h"
#include "packing/groups.h"
#include "packing/set_packing.h"
#include "routing/optimizer.h"
#include "util/rng.h"

namespace {

using namespace o2o;

const geo::EuclideanOracle kOracle;

std::vector<trace::Request> make_requests(std::size_t count, std::uint64_t seed,
                                          double extent = 6.0) {
  Rng rng(seed);
  std::vector<trace::Request> requests;
  for (std::size_t r = 0; r < count; ++r) {
    trace::Request request;
    request.id = static_cast<trace::RequestId>(r);
    request.pickup = {rng.uniform(0, extent), rng.uniform(0, extent)};
    request.dropoff = {rng.uniform(0, extent) + extent, rng.uniform(0, extent)};
    requests.push_back(request);
  }
  return requests;
}

void BM_RouteExhaustive(benchmark::State& state) {
  const auto riders = make_requests(static_cast<std::size_t>(state.range(0)), 11);
  const geo::Point start{0, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::optimal_route_exhaustive(riders, kOracle, start));
  }
}
BENCHMARK(BM_RouteExhaustive)->DenseRange(1, 4);

void BM_RouteDp(benchmark::State& state) {
  const auto riders = make_requests(static_cast<std::size_t>(state.range(0)), 12);
  const geo::Point start{0, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::optimal_route_dp(riders, kOracle, start));
  }
}
BENCHMARK(BM_RouteDp)->DenseRange(1, 7);

void BM_AnchoredSolverReuse(benchmark::State& state) {
  // The dispatcher's hot path: one group probed against many taxis.
  const auto riders = make_requests(3, 13);
  const routing::AnchoredRouteSolver solver(riders, kOracle);
  Rng rng(14);
  for (auto _ : state) {
    const geo::Point start{rng.uniform(0, 12), rng.uniform(0, 12)};
    benchmark::DoNotOptimize(solver.best_length(start));
  }
}
BENCHMARK(BM_AnchoredSolverReuse);

void BM_GroupEnumerationPruned(benchmark::State& state) {
  const auto requests = make_requests(static_cast<std::size_t>(state.range(0)), 15);
  packing::GroupOptions options;
  options.detour_threshold_km = 5.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        packing::enumerate_share_groups(requests, kOracle, options));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GroupEnumerationPruned)->Range(16, 128)->Complexity();

void BM_GroupEnumerationExhaustive(benchmark::State& state) {
  const auto requests = make_requests(static_cast<std::size_t>(state.range(0)), 15);
  packing::GroupOptions options;
  options.detour_threshold_km = 5.0;
  options.grow_triples_from_pairs = false;  // the paper's plain O(R^3)
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        packing::enumerate_share_groups(requests, kOracle, options));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GroupEnumerationExhaustive)->Range(16, 64)->Complexity();

packing::SetPackingProblem make_packing_problem(std::size_t requests,
                                                std::uint64_t seed) {
  const auto pool = make_requests(requests, seed);
  packing::GroupOptions options;
  options.detour_threshold_km = 5.0;
  packing::SetPackingProblem problem;
  problem.universe_size = requests;
  for (const auto& group : packing::enumerate_share_groups(pool, kOracle, options)) {
    auto members = group.member_indices;
    std::sort(members.begin(), members.end());
    problem.sets.push_back(std::move(members));
  }
  return problem;
}

void BM_SetPackingGreedy(benchmark::State& state) {
  const auto problem = make_packing_problem(static_cast<std::size_t>(state.range(0)), 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(packing::solve_greedy(problem));
  }
  state.counters["sets"] = static_cast<double>(problem.sets.size());
}
BENCHMARK(BM_SetPackingGreedy)->Range(16, 128);

void BM_SetPackingLocalSearch(benchmark::State& state) {
  const auto problem = make_packing_problem(static_cast<std::size_t>(state.range(0)), 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(packing::solve_local_search(problem));
  }
  state.counters["sets"] = static_cast<double>(problem.sets.size());
}
BENCHMARK(BM_SetPackingLocalSearch)->Range(16, 128);

void BM_SetPackingExact(benchmark::State& state) {
  // Exact branch & bound only fits small pools.
  auto problem = make_packing_problem(10, 17);
  if (problem.sets.size() > 26) problem.sets.resize(26);
  for (auto _ : state) {
    benchmark::DoNotOptimize(packing::solve_exact(problem));
  }
  state.counters["sets"] = static_cast<double>(problem.sets.size());
}
BENCHMARK(BM_SetPackingExact);

void BM_DispatchSharingFrame(benchmark::State& state) {
  // One full Algorithm-3 frame: grouping + packing + stable matching.
  const auto requests = make_requests(static_cast<std::size_t>(state.range(0)), 18);
  Rng rng(19);
  std::vector<trace::Taxi> taxis;
  for (int t = 0; t < state.range(1); ++t) {
    trace::Taxi taxi;
    taxi.id = t;
    taxi.location = {rng.uniform(0, 12), rng.uniform(0, 12)};
    taxis.push_back(taxi);
  }
  core::SharingParams params;
  params.preference.passenger_threshold_km = 12.0;
  params.preference.taxi_threshold_score = 8.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::dispatch_sharing(taxis, requests, kOracle, params));
  }
}
BENCHMARK(BM_DispatchSharingFrame)->Args({32, 64})->Args({64, 128})->Args({64, 256});

}  // namespace

BENCHMARK_MAIN();
