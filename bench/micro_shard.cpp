// Micro-benchmarks for the component-sharded stable dispatch engine
// (core/shard_engine.h): serial-vs-sharded A/B on city-scale frames for
// deferred acceptance on both proposal sides and for the NSTD-T
// enumeration path, plus the cost of the union-find extraction itself.
//
// Two geometries, same 40x40 km city:
//   * hotspot -- demand concentrated in an 8x8 grid of neighbourhood
//     centres spaced farther apart than the passenger threshold, so the
//     candidate graph decomposes into one component per hotspot (the
//     regime sharding is built for);
//   * uniform -- requests and taxis spread evenly, which percolates into
//     a single giant component under the same threshold (the degenerate
//     case: sharding must not cost anything when there is nothing to
//     shard).
//
// The serial arms run ShardOptions::parallel = false, which routes to
// the exact legacy pass (global deferred acceptance / global Algorithm-2
// enumeration with the taxi-proposing fallback) -- the engine's
// behaviour before this change. Run with --quick for the CI smoke
// subset (the 2000x10000 arms are filtered out).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/preferences.h"
#include "core/shard_engine.h"
#include "geo/backend.h"
#include "util/rng.h"

namespace {

using namespace o2o;

// Resolved through the backend factory; the default spec is the paper's
// Euclidean surface. kBackend owns the oracle kOracle refers to.
const geo::DistanceBackend kBackend = geo::make_distance_oracle({});
const geo::DistanceOracle& kOracle = *kBackend.oracle;

struct CityFrame {
  std::vector<trace::Taxi> taxis;
  std::vector<trace::Request> requests;
};

constexpr double kTwoPi = 6.283185307179586;

trace::Request make_request(Rng& rng, std::size_t id, geo::Point pickup) {
  trace::Request request;
  request.id = static_cast<trace::RequestId>(id);
  request.pickup = pickup;
  const double angle = rng.uniform(0.0, kTwoPi);
  const double trip = rng.uniform(1.0, 4.0);
  request.dropoff = {pickup.x + trip * std::cos(angle),
                     pickup.y + trip * std::sin(angle)};
  return request;
}

/// Demand hotspots: an 8x8 grid of neighbourhood centres 5 km apart,
/// every agent within 0.8 km of its centre. With a 2 km passenger
/// threshold the closest cross-hotspot pair sits 3.4 km apart, so each
/// hotspot is its own connected component.
CityFrame hotspot_frame(std::size_t requests, std::size_t taxis, std::uint64_t seed) {
  constexpr std::size_t kGrid = 8;
  constexpr double kSpacingKm = 5.0;
  constexpr double kRadiusKm = 0.8;
  Rng rng(seed);
  const auto hotspot_point = [&rng](std::size_t i) {
    const std::size_t h = i % (kGrid * kGrid);
    const geo::Point center{2.5 + kSpacingKm * static_cast<double>(h % kGrid),
                            2.5 + kSpacingKm * static_cast<double>(h / kGrid)};
    const double angle = rng.uniform(0.0, kTwoPi);
    const double radius = rng.uniform(0.0, kRadiusKm);
    return geo::Point{center.x + radius * std::cos(angle),
                      center.y + radius * std::sin(angle)};
  };
  CityFrame frame;
  for (std::size_t t = 0; t < taxis; ++t) {
    frame.taxis.push_back({static_cast<trace::TaxiId>(t), hotspot_point(t), 4});
  }
  for (std::size_t r = 0; r < requests; ++r) {
    frame.requests.push_back(make_request(rng, r, hotspot_point(r)));
  }
  return frame;
}

/// Uniform spread over the full 40x40 km region: under the same 2 km
/// threshold the candidate graph percolates into one giant component.
CityFrame uniform_frame(std::size_t requests, std::size_t taxis, std::uint64_t seed) {
  constexpr double kExtentKm = 40.0;
  Rng rng(seed);
  CityFrame frame;
  for (std::size_t t = 0; t < taxis; ++t) {
    frame.taxis.push_back({static_cast<trace::TaxiId>(t),
                           {rng.uniform(0, kExtentKm), rng.uniform(0, kExtentKm)},
                           4});
  }
  for (std::size_t r = 0; r < requests; ++r) {
    frame.requests.push_back(make_request(
        rng, r, {rng.uniform(0, kExtentKm), rng.uniform(0, kExtentKm)}));
  }
  return frame;
}

core::PreferenceParams city_params() {
  core::PreferenceParams params;
  params.passenger_threshold_km = 2.0;
  params.taxi_threshold_score = 8.0;
  return params;
}

core::PreferenceProfile profile_of(const CityFrame& frame) {
  return core::build_nonsharing_profile(frame.taxis, frame.requests, kOracle,
                                        city_params());
}

void report_partition(benchmark::State& state, const core::PreferenceProfile& profile) {
  const core::ComponentPartition partition = core::extract_components(profile);
  state.counters["components"] = static_cast<double>(partition.components.size());
  state.counters["largest"] =
      static_cast<double>(partition.largest_component_requests);
}

void BM_ComponentExtract(benchmark::State& state) {
  const core::PreferenceProfile profile = profile_of(hotspot_frame(
      static_cast<std::size_t>(state.range(0)),
      static_cast<std::size_t>(state.range(1)), 31));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::extract_components(profile));
  }
  report_partition(state, profile);
}
BENCHMARK(BM_ComponentExtract)
    ->Args({500, 2500})
    ->Args({2000, 10000})
    ->Unit(benchmark::kMillisecond);

void stable_match_arm(benchmark::State& state, const CityFrame& frame,
                      core::ProposalSide side, bool parallel) {
  const core::PreferenceProfile profile = profile_of(frame);
  core::ShardOptions options;
  options.parallel = parallel;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::sharded_gale_shapley(profile, side, options));
  }
  report_partition(state, profile);
}

CityFrame hotspot_of(benchmark::State& state) {
  return hotspot_frame(static_cast<std::size_t>(state.range(0)),
                       static_cast<std::size_t>(state.range(1)), 31);
}

void BM_PassengerMatchSerial(benchmark::State& state) {
  stable_match_arm(state, hotspot_of(state), core::ProposalSide::kPassengers, false);
}
void BM_PassengerMatchSharded(benchmark::State& state) {
  stable_match_arm(state, hotspot_of(state), core::ProposalSide::kPassengers, true);
}
void BM_TaxiMatchSerial(benchmark::State& state) {
  stable_match_arm(state, hotspot_of(state), core::ProposalSide::kTaxis, false);
}
void BM_TaxiMatchSharded(benchmark::State& state) {
  stable_match_arm(state, hotspot_of(state), core::ProposalSide::kTaxis, true);
}
BENCHMARK(BM_PassengerMatchSerial)
    ->Args({500, 2500})
    ->Args({2000, 10000})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PassengerMatchSharded)
    ->Args({500, 2500})
    ->Args({2000, 10000})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TaxiMatchSerial)
    ->Args({500, 2500})
    ->Args({2000, 10000})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TaxiMatchSharded)
    ->Args({500, 2500})
    ->Args({2000, 10000})
    ->Unit(benchmark::kMillisecond);

// The giant-component control: sharding has nothing to split, so the
// sharded arm must track the serial one (extraction overhead only).
void BM_UniformMatchSerial(benchmark::State& state) {
  stable_match_arm(state,
                   uniform_frame(static_cast<std::size_t>(state.range(0)),
                                 static_cast<std::size_t>(state.range(1)), 33),
                   core::ProposalSide::kPassengers, false);
}
void BM_UniformMatchSharded(benchmark::State& state) {
  stable_match_arm(state,
                   uniform_frame(static_cast<std::size_t>(state.range(0)),
                                 static_cast<std::size_t>(state.range(1)), 33),
                   core::ProposalSide::kPassengers, true);
}
BENCHMARK(BM_UniformMatchSerial)
    ->Args({2000, 10000})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_UniformMatchSharded)
    ->Args({2000, 10000})
    ->Unit(benchmark::kMillisecond);

// The NSTD-T path: Algorithm-2 enumeration + taxi-best selection. The
// serial arm enumerates the *global* lattice, paying O(R + T) per
// BreakDispatch attempt across the whole city; the sharded arm pays per
// component. This is the engine's algorithmic win -- it holds even on a
// single core, on top of the thread-level one.
void enumeration_arm(benchmark::State& state, bool parallel) {
  const core::PreferenceProfile profile = profile_of(hotspot_of(state));
  core::ShardOptions options;
  options.parallel = parallel;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::sharded_taxi_optimal_via_enumeration(profile, 512, options));
  }
  report_partition(state, profile);
}

void BM_TaxiOptimalEnumSerial(benchmark::State& state) { enumeration_arm(state, false); }
void BM_TaxiOptimalEnumSharded(benchmark::State& state) { enumeration_arm(state, true); }
BENCHMARK(BM_TaxiOptimalEnumSerial)
    ->Args({500, 2500})
    ->Args({2000, 10000})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TaxiOptimalEnumSharded)
    ->Args({500, 2500})
    ->Args({2000, 10000})
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main: `--quick` keeps only the 500x2500 arms at a reduced
// per-benchmark measurement time -- the CI smoke subset.
int main(int argc, char** argv) {
  bool quick = false;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc) + 2);
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--quick") {
      quick = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  static std::string filter = "--benchmark_filter=-.*/2000/10000";
  static std::string min_time = "--benchmark_min_time=0.05";
  if (quick) {
    args.push_back(filter.data());
    args.push_back(min_time.data());
  }
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
