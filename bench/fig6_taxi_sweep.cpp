// Figure 6: average dispatch delay (a), passenger dissatisfaction (b)
// and taxi dissatisfaction (c) on the Boston workload as the fleet size
// varies. Expected shape: fewer taxis -> larger delay and passenger
// dissatisfaction for everyone; the NSTD variants' taxi-dissatisfaction
// advantage *widens* when taxis are scarce (taxis get to choose).
#include <cstdio>
#include <vector>

#include "bench/common.h"

int main() {
  using namespace o2o;
  bench::PaperParams params;

  trace::CityModel model = trace::CityModel::boston();
  trace::GenerationOptions gen;
  gen.duration_seconds = 3.0 * 3600.0;
  gen.start_hour = 7.0;
  gen.seed = 612;
  const trace::Trace city = trace::generate(model, gen);

  const std::vector<int> fleet_sizes{100, 150, 200, 250, 300};
  std::printf("# Fig. 6 -- non-sharing dispatch vs fleet size, Boston workload\n");
  std::printf("# requests=%zu window=7am-10am fleets=", city.size());
  for (int n : fleet_sizes) std::printf("%d ", n);
  std::printf("\n");

  // collected[metric] rows: fleet size x algorithms
  std::vector<std::string> names;
  std::vector<std::vector<double>> delay_rows, passenger_rows, taxi_rows;
  for (int taxis : fleet_sizes) {
    trace::FleetOptions fleet_options;
    fleet_options.taxi_count = taxis;
    fleet_options.seed = 42;
    const auto fleet = trace::make_fleet(model.region, fleet_options);
    const auto reports =
        bench::run_roster(city, fleet, bench::nonsharing_roster(params), params);
    if (names.empty()) {
      for (const auto& report : reports) names.push_back(report.dispatcher_name);
    }
    std::vector<double> delays, passengers, taxis_row;
    for (const auto& report : reports) {
      delays.push_back(report.delay_stats.mean());
      passengers.push_back(report.passenger_stats.mean());
      taxis_row.push_back(report.taxi_stats.mean());
    }
    delay_rows.push_back(delays);
    passenger_rows.push_back(passengers);
    taxi_rows.push_back(taxis_row);
  }

  const auto print_table = [&](const char* title,
                               const std::vector<std::vector<double>>& rows) {
    std::printf("\n## %s\ntaxis", title);
    for (const auto& name : names) std::printf(",%s", name.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < fleet_sizes.size(); ++i) {
      std::printf("%d", fleet_sizes[i]);
      for (double value : rows[i]) std::printf(",%.3f", value);
      std::printf("\n");
    }
  };
  print_table("Fig. 6(a) average dispatch delay (min)", delay_rows);
  print_table("Fig. 6(b) average passenger dissatisfaction (km)", passenger_rows);
  print_table("Fig. 6(c) average taxi dissatisfaction (km)", taxi_rows);
  return 0;
}
