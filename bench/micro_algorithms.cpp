// Micro-benchmarks for the matching substrates and the paper's
// algorithms, including the two ablations DESIGN.md calls out:
//   * NSTD-T via taxi-proposing deferred acceptance vs via Algorithm 2
//     enumeration + selector (identical output, very different cost);
//   * full preference lists vs capped lists (preference construction
//     dominates at city scale).
#include <benchmark/benchmark.h>

#include "core/all_stable.h"
#include "core/dispatchers.h"
#include "core/selectors.h"
#include "geo/backend.h"
#include "index/spatial_grid.h"
#include "matching/bottleneck.h"
#include "matching/greedy.h"
#include "matching/hungarian.h"
#include "util/rng.h"

namespace {

using namespace o2o;

// Resolved through the backend factory; the default spec is the paper's
// Euclidean surface. kBackend owns the oracle kOracle refers to.
const geo::DistanceBackend kBackend = geo::make_distance_oracle({});
const geo::DistanceOracle& kOracle = *kBackend.oracle;

struct Instance {
  std::vector<trace::Taxi> taxis;
  std::vector<trace::Request> requests;
};

Instance make_instance(std::size_t requests, std::size_t taxis, std::uint64_t seed) {
  Rng rng(seed);
  Instance instance;
  for (std::size_t t = 0; t < taxis; ++t) {
    trace::Taxi taxi;
    taxi.id = static_cast<trace::TaxiId>(t);
    taxi.location = {rng.uniform(0, 20), rng.uniform(0, 20)};
    instance.taxis.push_back(taxi);
  }
  for (std::size_t r = 0; r < requests; ++r) {
    trace::Request request;
    request.id = static_cast<trace::RequestId>(r);
    request.pickup = {rng.uniform(0, 20), rng.uniform(0, 20)};
    request.dropoff = {rng.uniform(0, 20), rng.uniform(0, 20)};
    instance.requests.push_back(request);
  }
  return instance;
}

matching::CostMatrix make_costs(const Instance& instance) {
  matching::CostMatrix costs(instance.requests.size(), instance.taxis.size());
  for (std::size_t r = 0; r < instance.requests.size(); ++r) {
    for (std::size_t t = 0; t < instance.taxis.size(); ++t) {
      costs.at(r, t) =
          kOracle.distance(instance.taxis[t].location, instance.requests[r].pickup);
    }
  }
  return costs;
}

void BM_BuildPreferenceProfile(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Instance instance = make_instance(n, n, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_nonsharing_profile(
        instance.taxis, instance.requests, kOracle, core::PreferenceParams{}));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BuildPreferenceProfile)->Range(32, 512)->Complexity();

void BM_BuildCappedPreferenceProfile(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Instance instance = make_instance(n, n, 1);
  core::PreferenceParams params;
  params.list_cap = 16;  // the ablation: keep each side's 16 best
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        build_nonsharing_profile(instance.taxis, instance.requests, kOracle, params));
  }
}
BENCHMARK(BM_BuildCappedPreferenceProfile)->Range(32, 512);

// The sparse-vs-dense head-to-head at city scale: a 20x20 km region, a
// 2 km passenger threshold, and far more taxis than requests. The dense
// path scores every (request, taxi) pair; the pruned path only touches
// taxis the grid returns within the threshold.
void BM_BuildProfileDenseAtScale(benchmark::State& state) {
  const Instance instance =
      make_instance(static_cast<std::size_t>(state.range(0)),
                    static_cast<std::size_t>(state.range(1)), 5);
  core::PreferenceParams params;
  params.passenger_threshold_km = 2.0;
  params.spatial_prune = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        build_nonsharing_profile(instance.taxis, instance.requests, kOracle, params));
  }
}
BENCHMARK(BM_BuildProfileDenseAtScale)
    ->Args({200, 2000})
    ->Args({1000, 10000})
    ->Unit(benchmark::kMillisecond);

void BM_BuildProfileSparseAtScale(benchmark::State& state) {
  const Instance instance =
      make_instance(static_cast<std::size_t>(state.range(0)),
                    static_cast<std::size_t>(state.range(1)), 5);
  core::PreferenceParams params;
  params.passenger_threshold_km = 2.0;  // spatial_prune defaults to true
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        build_nonsharing_profile(instance.taxis, instance.requests, kOracle, params));
  }
}
BENCHMARK(BM_BuildProfileSparseAtScale)
    ->Args({200, 2000})
    ->Args({1000, 10000})
    ->Unit(benchmark::kMillisecond);

void BM_BuildProfileSparsePrebuiltGrid(benchmark::State& state) {
  // The simulator's situation: the idle-taxi grid already exists when the
  // dispatch frame fires, so construction amortises to pure queries.
  const Instance instance =
      make_instance(static_cast<std::size_t>(state.range(0)),
                    static_cast<std::size_t>(state.range(1)), 5);
  const index::SpatialGrid grid(std::span<const trace::Taxi>(instance.taxis), 1.0);
  core::PreferenceParams params;
  params.passenger_threshold_km = 2.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_nonsharing_profile(instance.taxis, instance.requests,
                                                      kOracle, params, &grid));
  }
}
BENCHMARK(BM_BuildProfileSparsePrebuiltGrid)
    ->Args({200, 2000})
    ->Args({1000, 10000})
    ->Unit(benchmark::kMillisecond);

void BM_GaleShapleyRequests(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Instance instance = make_instance(n, n, 2);
  const auto profile = build_nonsharing_profile(instance.taxis, instance.requests,
                                                kOracle, core::PreferenceParams{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::gale_shapley_requests(profile));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_GaleShapleyRequests)->Range(32, 1024)->Complexity();

void BM_GaleShapleyTaxis(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Instance instance = make_instance(n, n, 3);
  const auto profile = build_nonsharing_profile(instance.taxis, instance.requests,
                                                kOracle, core::PreferenceParams{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::gale_shapley_taxis(profile));
  }
}
BENCHMARK(BM_GaleShapleyTaxis)->Range(32, 1024);

void BM_TaxiOptimalViaEnumeration(benchmark::State& state) {
  // Ablation: the paper's route to NSTD-T (Algorithm 2 + selector).
  const auto n = static_cast<std::size_t>(state.range(0));
  const Instance instance = make_instance(n, n, 4);
  core::PreferenceParams params;
  params.passenger_threshold_km = 6.0;  // keep the lattice small
  params.taxi_threshold_score = 3.0;
  const auto profile =
      build_nonsharing_profile(instance.taxis, instance.requests, kOracle, params);
  for (auto _ : state) {
    const auto all = core::enumerate_all_stable(profile);
    benchmark::DoNotOptimize(core::select_taxi_optimal(all.matchings, profile));
  }
}
BENCHMARK(BM_TaxiOptimalViaEnumeration)->Range(8, 64);

void BM_Hungarian(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto costs = make_costs(make_instance(n, n, 5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(matching::solve_min_cost(costs));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Hungarian)->Range(32, 512)->Complexity();

void BM_Bottleneck(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto costs = make_costs(make_instance(n, n, 6));
  for (auto _ : state) {
    benchmark::DoNotOptimize(matching::solve_min_max(costs));
  }
}
BENCHMARK(BM_Bottleneck)->Range(32, 512);

void BM_GreedyMatching(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto costs = make_costs(make_instance(n, n, 7));
  for (auto _ : state) {
    benchmark::DoNotOptimize(matching::solve_greedy(costs));
  }
}
BENCHMARK(BM_GreedyMatching)->Range(32, 512);

}  // namespace

BENCHMARK_MAIN();
