// Micro-benchmarks for the road-network distance engine:
//   * point-to-point shortest_path (bounded bidirectional Dijkstra) vs a
//     full single-source tree per query;
//   * oracle query throughput cold vs warm cache, and under concurrent
//     callers (the sharded cache is the contended structure);
//   * per-row pricing pointwise vs the bulk distances_from/distances_to
//     APIs;
//   * the headline: network-backed 1k x 10k preference-profile
//     construction through the engine vs the pre-PR serial oracle
//     (unsharded forward-tree cache, no snap memo, no bulk calls,
//     capabilities().concurrent_queries == false).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/preferences.h"
#include "geo/road_network.h"
#include "util/rng.h"

namespace {

using namespace o2o;

// 1681 intersections over the same 20x20 km region the instance uses.
const geo::RoadNetwork& bench_city() {
  static const geo::RoadNetwork city = geo::RoadNetwork::make_grid_city(
      41, 41, 0.5, /*jitter_km=*/0.1, /*closure_fraction=*/0.1, /*seed=*/17);
  return city;
}

struct Instance {
  std::vector<trace::Taxi> taxis;
  std::vector<trace::Request> requests;
};

Instance make_instance(std::size_t requests, std::size_t taxis, std::uint64_t seed) {
  Rng rng(seed);
  Instance instance;
  for (std::size_t t = 0; t < taxis; ++t) {
    trace::Taxi taxi;
    taxi.id = static_cast<trace::TaxiId>(t);
    taxi.location = {rng.uniform(0, 20), rng.uniform(0, 20)};
    instance.taxis.push_back(taxi);
  }
  for (std::size_t r = 0; r < requests; ++r) {
    trace::Request request;
    request.id = static_cast<trace::RequestId>(r);
    request.pickup = {rng.uniform(0, 20), rng.uniform(0, 20)};
    request.dropoff = {rng.uniform(0, 20), rng.uniform(0, 20)};
    instance.requests.push_back(request);
  }
  return instance;
}

std::vector<geo::Point> random_points(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<geo::Point> points;
  points.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    points.push_back({rng.uniform(0, 20), rng.uniform(0, 20)});
  }
  return points;
}

/// The pre-PR NetworkOracle, kept verbatim as the baseline: one
/// unsynchronized map of forward trees with evict-oldest-half, a fresh
/// nearest-node search per endpoint per query, no bulk overrides, and no
/// concurrent queries — so profile construction runs serially.
class LegacyNetworkOracle final : public geo::DistanceOracle {
 public:
  explicit LegacyNetworkOracle(const geo::RoadNetwork& network,
                               std::size_t cache_capacity = 1024)
      : network_(network), cache_capacity_(cache_capacity) {}

  double distance(const geo::Point& a, const geo::Point& b) const override {
    const geo::NodeId from = network_.nearest_node(a);
    const geo::NodeId to = network_.nearest_node(b);
    const double snap_a = geo::euclidean_distance(a, network_.node_position(from));
    const double snap_b = geo::euclidean_distance(b, network_.node_position(to));
    if (from == to) return geo::euclidean_distance(a, b);
    const double network_leg = tree_for(from)[static_cast<std::size_t>(to)];
    return snap_a + network_leg + snap_b;
  }

  Capabilities capabilities() const noexcept override {
    return {.concurrent_queries = false, .symmetric_distances = false};
  }

 private:
  const std::vector<double>& tree_for(geo::NodeId source) const {
    const auto it = cache_.find(source);
    if (it != cache_.end()) return it->second;
    if (cache_.size() >= cache_capacity_) {
      const std::size_t keep_from = cache_order_.size() / 2;
      for (std::size_t i = 0; i < keep_from; ++i) cache_.erase(cache_order_[i]);
      cache_order_.erase(cache_order_.begin(),
                         cache_order_.begin() + static_cast<std::ptrdiff_t>(keep_from));
    }
    cache_order_.push_back(source);
    return cache_.emplace(source, network_.shortest_paths_from(source)).first->second;
  }

  const geo::RoadNetwork& network_;
  std::size_t cache_capacity_;
  mutable std::unordered_map<geo::NodeId, std::vector<double>> cache_;
  mutable std::vector<geo::NodeId> cache_order_;
};

// --- point-to-point: bounded bidirectional search vs a full tree ---------

void BM_ShortestPathBidirectional(benchmark::State& state) {
  const geo::RoadNetwork& city = bench_city();
  Rng rng(23);
  const auto n = static_cast<std::int64_t>(city.node_count());
  for (auto _ : state) {
    const auto s = static_cast<geo::NodeId>(rng.uniform_int(0, n - 1));
    const auto t = static_cast<geo::NodeId>(rng.uniform_int(0, n - 1));
    benchmark::DoNotOptimize(city.shortest_path(s, t));
  }
}
BENCHMARK(BM_ShortestPathBidirectional)->Unit(benchmark::kMicrosecond);

void BM_ShortestPathFullTree(benchmark::State& state) {
  const geo::RoadNetwork& city = bench_city();
  Rng rng(23);
  const auto n = static_cast<std::int64_t>(city.node_count());
  for (auto _ : state) {
    const auto s = static_cast<geo::NodeId>(rng.uniform_int(0, n - 1));
    const auto t = static_cast<geo::NodeId>(rng.uniform_int(0, n - 1));
    benchmark::DoNotOptimize(city.shortest_paths_from(s)[static_cast<std::size_t>(t)]);
  }
}
BENCHMARK(BM_ShortestPathFullTree)->Unit(benchmark::kMicrosecond);

// --- oracle throughput: cold vs warm cache -------------------------------

void BM_OracleQueriesColdCache(benchmark::State& state) {
  const std::vector<geo::Point> points = random_points(257, 29);
  for (auto _ : state) {
    // A fresh oracle per iteration: every tree and snap is a miss.
    const geo::NetworkOracle oracle(bench_city(), /*cache_capacity=*/4096);
    for (std::size_t i = 0; i + 1 < points.size(); ++i) {
      benchmark::DoNotOptimize(oracle.distance(points[i], points[i + 1]));
    }
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_OracleQueriesColdCache)->Unit(benchmark::kMillisecond);

void BM_OracleQueriesWarmCache(benchmark::State& state) {
  const std::vector<geo::Point> points = random_points(257, 29);
  const geo::NetworkOracle oracle(bench_city(), /*cache_capacity=*/4096);
  for (std::size_t i = 0; i + 1 < points.size(); ++i) {
    (void)oracle.distance(points[i], points[i + 1]);  // prewarm
  }
  for (auto _ : state) {
    for (std::size_t i = 0; i + 1 < points.size(); ++i) {
      benchmark::DoNotOptimize(oracle.distance(points[i], points[i + 1]));
    }
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_OracleQueriesWarmCache)->Unit(benchmark::kMicrosecond);

// --- serial vs concurrent query throughput -------------------------------

void BM_ConcurrentQueries(benchmark::State& state) {
  // Shared oracle, per-thread query stream; ->Threads(k) races the
  // sharded cache from k callers. items/s is the comparable number.
  static const geo::NetworkOracle oracle(bench_city(), /*cache_capacity=*/4096);
  const std::vector<geo::Point> points =
      random_points(257, 31 + static_cast<std::uint64_t>(state.thread_index()));
  oracle.prepare_frame(points);
  for (auto _ : state) {
    for (std::size_t i = 0; i + 1 < points.size(); ++i) {
      benchmark::DoNotOptimize(oracle.distance(points[i], points[i + 1]));
    }
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_ConcurrentQueries)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

// --- one row of the dispatch hot path: pointwise vs bulk -----------------

void BM_RowPointwise(benchmark::State& state) {
  const geo::NetworkOracle oracle(bench_city(), /*cache_capacity=*/4096);
  const std::vector<geo::Point> sources = random_points(256, 37);
  const geo::Point pickup{10.0, 10.0};
  (void)oracle.distances_to(sources, pickup);  // prewarm trees + snaps
  for (auto _ : state) {
    double sum = 0.0;
    for (const geo::Point& source : sources) {
      sum += oracle.distance(source, pickup);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_RowPointwise)->Unit(benchmark::kMicrosecond);

void BM_RowBulkDistancesFrom(benchmark::State& state) {
  const geo::NetworkOracle oracle(bench_city(), /*cache_capacity=*/4096);
  const std::vector<geo::Point> targets = random_points(256, 37);
  const geo::Point source{10.0, 10.0};
  (void)oracle.distances_from(source, targets);  // prewarm
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.distances_from(source, targets));
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_RowBulkDistancesFrom)->Unit(benchmark::kMicrosecond);

void BM_RowBulkDistancesTo(benchmark::State& state) {
  const geo::NetworkOracle oracle(bench_city(), /*cache_capacity=*/4096);
  const std::vector<geo::Point> sources = random_points(256, 37);
  const geo::Point pickup{10.0, 10.0};
  (void)oracle.distances_to(sources, pickup);  // prewarm
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.distances_to(sources, pickup));
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_RowBulkDistancesTo)->Unit(benchmark::kMicrosecond);

// --- the headline: network-backed profile construction -------------------
//
// Same instance, same sparse pruning parameters; the only variable is the
// oracle engine, each at its shipped default configuration. The pre-PR
// oracle defaults to a 1024-tree cache — smaller than this instance's
// working set (~1681 distinct taxi nodes + ~875 pickup nodes), so its
// evict-oldest-half policy thrashes and queries repeatedly pay full
// Dijkstra builds. The engine's default auto-sizes the cache to the frame
// working set, so after the prewarm build every tree read is a hit.
// PrePrBigCache isolates the policy from the sizing: the legacy oracle
// given a cache big enough to never evict.

core::PreferenceParams profile_params() {
  core::PreferenceParams params;
  params.passenger_threshold_km = 2.0;
  return params;
}

void BM_BuildProfileNetworkPrePr(benchmark::State& state) {
  const Instance instance =
      make_instance(static_cast<std::size_t>(state.range(0)),
                    static_cast<std::size_t>(state.range(1)), 5);
  const LegacyNetworkOracle oracle(bench_city());  // shipped default: 1024 trees
  (void)build_nonsharing_profile(instance.taxis, instance.requests, oracle,
                                 profile_params());
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_nonsharing_profile(instance.taxis, instance.requests,
                                                      oracle, profile_params()));
  }
}
BENCHMARK(BM_BuildProfileNetworkPrePr)
    ->Args({200, 2000})
    ->Args({1000, 10000})
    ->Unit(benchmark::kMillisecond);

void BM_BuildProfileNetworkPrePrBigCache(benchmark::State& state) {
  const Instance instance =
      make_instance(static_cast<std::size_t>(state.range(0)),
                    static_cast<std::size_t>(state.range(1)), 5);
  const LegacyNetworkOracle oracle(bench_city(), /*cache_capacity=*/4096);
  (void)build_nonsharing_profile(instance.taxis, instance.requests, oracle,
                                 profile_params());
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_nonsharing_profile(instance.taxis, instance.requests,
                                                      oracle, profile_params()));
  }
}
BENCHMARK(BM_BuildProfileNetworkPrePrBigCache)
    ->Args({200, 2000})
    ->Args({1000, 10000})
    ->Unit(benchmark::kMillisecond);

void BM_BuildProfileNetworkEngine(benchmark::State& state) {
  const Instance instance =
      make_instance(static_cast<std::size_t>(state.range(0)),
                    static_cast<std::size_t>(state.range(1)), 5);
  const geo::NetworkOracle oracle(bench_city());  // default: auto-sized cache
  (void)build_nonsharing_profile(instance.taxis, instance.requests, oracle,
                                 profile_params());
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_nonsharing_profile(instance.taxis, instance.requests,
                                                      oracle, profile_params()));
  }
}
BENCHMARK(BM_BuildProfileNetworkEngine)
    ->Args({200, 2000})
    ->Args({1000, 10000})
    ->Unit(benchmark::kMillisecond);

void BM_BuildProfileNetworkEngineColdEachFrame(benchmark::State& state) {
  // Worst case for the engine: every frame pays all tree builds + snaps.
  const Instance instance =
      make_instance(static_cast<std::size_t>(state.range(0)),
                    static_cast<std::size_t>(state.range(1)), 5);
  for (auto _ : state) {
    const geo::NetworkOracle oracle(bench_city(), /*cache_capacity=*/4096);
    benchmark::DoNotOptimize(build_nonsharing_profile(instance.taxis, instance.requests,
                                                      oracle, profile_params()));
  }
}
BENCHMARK(BM_BuildProfileNetworkEngineColdEachFrame)
    ->Args({1000, 10000})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
