// trace_tools: workload-side utilities --
//   generate   synthesize a calibrated city trace and write canonical CSV
//   stats      load a canonical CSV and print its demand profile
//   convert    parse a New York TLC / Boston lat-lon CSV into canonical km CSV
//
//   ./build/examples/trace_tools generate boston 6.0 42 > boston.csv
//   ./build/examples/trace_tools stats < boston.csv
//   ./build/examples/trace_tools convert nyc < yellow_tripdata.csv > ny.csv
#include <cstdio>
#include <cstring>
#include <iostream>

#include <cmath>

#include "geo/backend.h"
#include "geo/distance_oracle.h"
#include "metrics/histogram.h"
#include "metrics/summary.h"
#include "trace/csv_trace.h"
#include "trace/synthetic.h"
#include "util/strings.h"

using namespace o2o;

namespace {

int cmd_generate(int argc, char** argv) {
  const std::string which = argc > 2 ? argv[2] : "boston";
  const double hours = argc > 3 ? std::atof(argv[3]) : 24.0;
  const std::uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1;
  const trace::CityModel model =
      which == "newyork" ? trace::CityModel::new_york() : trace::CityModel::boston();
  trace::GenerationOptions options;
  options.duration_seconds = hours * 3600.0;
  options.seed = seed;
  const trace::Trace city = trace::generate(model, options);
  std::fprintf(stderr, "generated %zu requests over %.1f h for %s (seed %llu)\n",
               city.size(), hours, model.name.c_str(),
               static_cast<unsigned long long>(seed));
  trace::save_canonical_csv(std::cout, city);
  return 0;
}

int cmd_stats(int, char**) {
  const trace::Trace city = trace::load_canonical_csv(std::cin, "stdin");
  if (city.empty()) {
    std::fprintf(stderr, "no parseable requests on stdin\n");
    return 1;
  }
  std::printf("requests: %zu\n", city.size());
  std::printf("duration: %.2f h\n", city.duration_seconds() / 3600.0);
  std::printf("mean rate: %.1f requests/hour\n", city.mean_rate_per_hour());
  std::printf("region: [%.1f, %.1f] x [%.1f, %.1f] km\n", city.region().lo.x,
              city.region().hi.x, city.region().lo.y, city.region().hi.y);

  const geo::DistanceBackend backend = geo::make_distance_oracle({});
  const geo::DistanceOracle& oracle = *backend.oracle;
  metrics::StreamingStats trips;
  for (const trace::Request& r : city.requests()) {
    trips.add(oracle.distance(r.pickup, r.dropoff));
  }
  std::printf("trip length: mean %.2f km (min %.2f, max %.2f)\n", trips.mean(),
              trips.min(), trips.max());

  metrics::Histogram by_hour(0.0, 24.0, 24);
  for (const trace::Request& r : city.requests()) {
    by_hour.add(r.time_seconds / 3600.0 -
                24.0 * std::floor(r.time_seconds / 86400.0));
  }
  std::printf("demand profile (requests per clock hour):\n");
  for (std::size_t h = 0; h < 24; ++h) {
    std::printf("  %02zu:00 %6zu  ", h, by_hour.count(h));
    const int bars = static_cast<int>(60.0 * by_hour.fraction(h));
    for (int b = 0; b < bars; ++b) std::printf("#");
    std::printf("\n");
  }
  return 0;
}

int cmd_convert(int argc, char** argv) {
  const std::string which = argc > 2 ? argv[2] : "nyc";
  const trace::CsvSchema schema =
      which == "boston" ? trace::CsvSchema::boston() : trace::CsvSchema::nyc_tlc();
  const trace::Trace city = trace::load_latlon_csv(std::cin, schema);
  std::fprintf(stderr, "parsed %zu requests under the %s schema\n", city.size(),
               schema.name.c_str());
  trace::save_canonical_csv(std::cout, city);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string command = argc > 1 ? argv[1] : "";
  if (command == "generate") return cmd_generate(argc, argv);
  if (command == "stats") return cmd_stats(argc, argv);
  if (command == "convert") return cmd_convert(argc, argv);
  std::fprintf(stderr,
               "usage: trace_tools generate [boston|newyork] [hours] [seed]\n"
               "       trace_tools stats    < canonical.csv\n"
               "       trace_tools convert  [nyc|boston] < raw.csv\n");
  return 2;
}
