// city_day: simulate a full day of Boston-scale dispatching and compare
// the stable dispatcher against a baseline, with the frame length and
// cancellation-timeout ablations DESIGN.md calls out.
//
//   ./build/examples/city_day [taxis] [rate_scale] [seed] \
//       [--trace-json=FILE] [--trace-csv=FILE] [--trace-summary] [--sharing] \
//       [--backend=SPEC]
//
// `--backend=` selects the distance backend through the pluggable
// factory grammar (see geo/backend.h): euclid (default), manhattan,
// circuity[:F], dijkstra:CITY.gr,CITY.co, ch:CITY.gr,CITY.co[,HIER.o2och],
// or the .osm variants. Network-backed runs price every leg on the
// imported road graph, and exported traces carry the graph fingerprint /
// CH artifact hash in their config snapshot.
//
// The trace flags run the headline stable dispatch with a TraceSink
// attached and export the per-frame observability records (stage
// timings, counters, gauge peaks) as JSON / CSV, or print the
// human-readable per-stage summary table. `--sharing` swaps the headline
// run to the ride-sharing stable dispatcher, which exercises the group
// enumeration pipeline and so populates its counters (cone_rejects,
// simd_batches, simd_batch_occupancy, cache_hits, cache_revalidations)
// in the summary.
//
// Prints a per-3-hour table (the Fig. 7 view) and an ablation of the
// batching interval.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "baselines/nonsharing.h"
#include "core/dispatch_config.h"
#include "geo/backend.h"
#include "sim/report_io.h"
#include "sim/simulator.h"
#include "trace/fleet.h"
#include "trace/synthetic.h"

using namespace o2o;

namespace {

DispatchConfig tuned_config() {
  return DispatchConfig{}.with_passenger_threshold_km(10.0).with_taxi_threshold_score(1.0);
}

sim::SimulationReport run_once(const trace::Trace& city,
                               const std::vector<trace::Taxi>& fleet,
                               const geo::DistanceOracle& oracle,
                               sim::Dispatcher& dispatcher, double frame_seconds,
                               double timeout_seconds,
                               obs::TraceSink* sink = nullptr) {
  const DispatchConfig config = tuned_config()
                                    .with_frame_seconds(frame_seconds)
                                    .with_cancel_timeout_seconds(timeout_seconds)
                                    .with_trace_sink(sink);
  sim::Simulator simulator(city, fleet, oracle, config.simulation());
  return simulator.run(dispatcher);
}

void print_report_line(const sim::SimulationReport& report) {
  std::printf("  %-8s served=%5zu cancelled=%4zu delay=%6.2f min  passenger=%5.2f km  "
              "taxi=%6.2f km  driven=%8.1f km\n",
              report.dispatcher_name.c_str(), report.served, report.cancelled,
              report.delay_stats.mean(), report.passenger_stats.mean(),
              report.taxi_stats.mean(), report.total_taxi_distance_km);
}

/// --flag=value style option; returns true and fills `value` on match.
bool parse_option(const char* arg, const char* name, std::string& value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  value = arg + len + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int taxis = 200;
  double rate_scale = 1.0;
  std::uint64_t seed = 1234;
  std::string trace_json_path;
  std::string trace_csv_path;
  std::string backend_text;
  bool trace_summary = false;
  bool sharing = false;

  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (parse_option(arg, "--trace-json", trace_json_path)) continue;
    if (parse_option(arg, "--trace-csv", trace_csv_path)) continue;
    if (parse_option(arg, "--backend", backend_text)) continue;
    if (std::strcmp(arg, "--trace-summary") == 0) {
      trace_summary = true;
      continue;
    }
    if (std::strcmp(arg, "--sharing") == 0) {
      sharing = true;
      continue;
    }
    switch (positional++) {
      case 0: taxis = std::atoi(arg); break;
      case 1: rate_scale = std::atof(arg); break;
      case 2: seed = std::strtoull(arg, nullptr, 10); break;
      default:
        std::fprintf(stderr, "unknown argument: %s\n", arg);
        return 2;
    }
  }
  const bool tracing = trace_summary || !trace_json_path.empty() || !trace_csv_path.empty();

  geo::DistanceBackendSpec backend_spec;
  if (!backend_text.empty() &&
      !geo::parse_distance_backend(backend_text, &backend_spec)) {
    std::fprintf(stderr, "unrecognized --backend spec: %s\n", backend_text.c_str());
    return 2;
  }
  geo::DistanceBackend backend;
  try {
    backend = geo::make_distance_oracle(backend_spec);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "cannot resolve --backend: %s\n", error.what());
    return 2;
  }

  trace::CityModel model = trace::CityModel::boston();
  trace::GenerationOptions gen;
  gen.duration_seconds = 24.0 * 3600.0;
  gen.rate_scale = rate_scale;
  gen.seed = seed;
  const trace::Trace city = trace::generate(model, gen);

  trace::FleetOptions fleet_options;
  fleet_options.taxi_count = taxis;
  const auto fleet = trace::make_fleet(model.region, fleet_options);

  std::printf("city_day: %zu requests over 24 h, %d taxis (rate x%.2f, seed %llu)\n",
              city.size(), taxis, rate_scale,
              static_cast<unsigned long long>(seed));
  std::printf("distance backend: %s",
              std::string(geo::distance_backend_name(backend.spec.kind)).c_str());
  if (backend.graph_fingerprint != 0) {
    std::printf(" (graph %016llx, %zu nodes)",
                static_cast<unsigned long long>(backend.graph_fingerprint),
                backend.network->node_count());
  }
  std::printf("\n\n");

  const DispatchConfig config = tuned_config();
  const auto stable = sharing ? make_std_p(config) : make_nstd_p(config);
  baselines::NonSharingBaseline greedy(baselines::NonSharingPolicy::kGreedy);
  baselines::NonSharingBaseline min_cost(baselines::NonSharingPolicy::kMinCost);

  // Inert unless handed to the simulator below: collection only happens
  // between begin_frame/end_frame while the sink is activated.
  obs::TraceSink sink(obs::TraceOptions{.enabled = true});
  obs::TraceSink* headline_sink = tracing ? &sink : nullptr;

  std::printf("one-minute frames, 30-minute passenger patience:\n");
  const auto stable_report = run_once(city, fleet, *backend.oracle, *stable, 60.0, 1800.0, headline_sink);
  const auto greedy_report = run_once(city, fleet, *backend.oracle, greedy, 60.0, 1800.0);
  const auto mincost_report = run_once(city, fleet, *backend.oracle, min_cost, 60.0, 1800.0);
  print_report_line(stable_report);
  print_report_line(greedy_report);
  print_report_line(mincost_report);

  if (headline_sink != nullptr) {
    if (!trace_json_path.empty()) {
      std::ofstream out(trace_json_path);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", trace_json_path.c_str());
        return 1;
      }
      // Wrapped form: the full DispatchConfig::describe() snapshot rides
      // along so archived traces carry their provenance, including the
      // distance backend and its graph fingerprint / CH artifact hash.
      const DispatchConfig headline = tuned_config()
                                          .with_frame_seconds(60.0)
                                          .with_cancel_timeout_seconds(1800.0)
                                          .with_distance_backend(backend);
      sim::write_frame_traces_json(out, headline_sink->frames(), headline.describe());
      std::printf("\nwrote %zu frame traces to %s\n", headline_sink->frames().size(),
                  trace_json_path.c_str());
    }
    if (!trace_csv_path.empty()) {
      std::ofstream out(trace_csv_path);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", trace_csv_path.c_str());
        return 1;
      }
      sim::write_frame_traces_csv(out, headline_sink->frames());
      std::printf("\nwrote %zu frame traces to %s\n", headline_sink->frames().size(),
                  trace_csv_path.c_str());
    }
    if (trace_summary) {
      std::printf("\n");
      sim::write_trace_summary(std::cout, headline_sink->frames());
    }
  }

  std::printf("\nby clock time (3 h buckets) -- mean taxi dissatisfaction (km):\n  hour ");
  for (std::size_t b = 0; b < stable_report.hourly_taxi.bucket_count(); ++b) {
    std::printf("%8d", stable_report.hourly_taxi.bucket_start_hour(b));
  }
  for (const auto* report : {&stable_report, &greedy_report, &mincost_report}) {
    std::printf("\n  %-8s", report->dispatcher_name.c_str());
    for (std::size_t b = 0; b < report->hourly_taxi.bucket_count(); ++b) {
      const auto& stats = report->hourly_taxi.bucket(b);
      std::printf("%8.2f", stats.count() == 0 ? 0.0 : stats.mean());
    }
  }

  std::printf("\n\nablation -- batching interval (stable dispatch):\n");
  for (const double frame : {30.0, 60.0, 120.0, 300.0}) {
    const auto report = run_once(city, fleet, *backend.oracle, *stable, frame, 1800.0);
    std::printf("  frame=%5.0fs  served=%5zu  delay=%6.2f min  taxi=%6.2f km\n", frame,
                report.served, report.delay_stats.mean(), report.taxi_stats.mean());
  }

  std::printf("\nablation -- passenger patience (stable dispatch):\n");
  for (const double timeout : {600.0, 1800.0, 3600.0}) {
    const auto report = run_once(city, fleet, *backend.oracle, *stable, 60.0, timeout);
    std::printf("  patience=%5.0fs  served=%5zu  cancelled=%5zu  delay=%6.2f min\n",
                timeout, report.served, report.cancelled, report.delay_stats.mean());
  }
  return 0;
}
