// city_day: simulate a full day of Boston-scale dispatching and compare
// the stable dispatcher against a baseline, with the frame length and
// cancellation-timeout ablations DESIGN.md calls out.
//
//   ./build/examples/city_day [taxis] [rate_scale] [seed]
//
// Prints a per-3-hour table (the Fig. 7 view) and an ablation of the
// batching interval.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "baselines/nonsharing.h"
#include "core/dispatchers.h"
#include "sim/simulator.h"
#include "trace/fleet.h"
#include "trace/synthetic.h"

using namespace o2o;

namespace {

const geo::EuclideanOracle kOracle;

core::PreferenceParams tuned_preferences() {
  core::PreferenceParams params;
  params.passenger_threshold_km = 10.0;
  params.taxi_threshold_score = 1.0;
  return params;
}

sim::SimulationReport run_once(const trace::Trace& city,
                               const std::vector<trace::Taxi>& fleet,
                               sim::Dispatcher& dispatcher, double frame_seconds,
                               double timeout_seconds) {
  sim::SimulatorConfig config;
  config.frame_seconds = frame_seconds;
  config.cancel_timeout_seconds = timeout_seconds;
  sim::Simulator simulator(city, fleet, kOracle, config);
  return simulator.run(dispatcher);
}

void print_report_line(const sim::SimulationReport& report) {
  std::printf("  %-8s served=%5zu cancelled=%4zu delay=%6.2f min  passenger=%5.2f km  "
              "taxi=%6.2f km  driven=%8.1f km\n",
              report.dispatcher_name.c_str(), report.served, report.cancelled,
              report.delay_stats.mean(), report.passenger_stats.mean(),
              report.taxi_stats.mean(), report.total_taxi_distance_km);
}

}  // namespace

int main(int argc, char** argv) {
  const int taxis = argc > 1 ? std::atoi(argv[1]) : 200;
  const double rate_scale = argc > 2 ? std::atof(argv[2]) : 1.0;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1234;

  trace::CityModel model = trace::CityModel::boston();
  trace::GenerationOptions gen;
  gen.duration_seconds = 24.0 * 3600.0;
  gen.rate_scale = rate_scale;
  gen.seed = seed;
  const trace::Trace city = trace::generate(model, gen);

  trace::FleetOptions fleet_options;
  fleet_options.taxi_count = taxis;
  const auto fleet = trace::make_fleet(model.region, fleet_options);

  std::printf("city_day: %zu requests over 24 h, %d taxis (rate x%.2f, seed %llu)\n\n",
              city.size(), taxis, rate_scale,
              static_cast<unsigned long long>(seed));

  core::StableDispatcherOptions stable_options;
  stable_options.preference = tuned_preferences();
  core::StableDispatcher stable(stable_options);
  baselines::NonSharingBaseline greedy(baselines::NonSharingPolicy::kGreedy);
  baselines::NonSharingBaseline min_cost(baselines::NonSharingPolicy::kMinCost);

  std::printf("one-minute frames, 30-minute passenger patience:\n");
  const auto stable_report = run_once(city, fleet, stable, 60.0, 1800.0);
  const auto greedy_report = run_once(city, fleet, greedy, 60.0, 1800.0);
  const auto mincost_report = run_once(city, fleet, min_cost, 60.0, 1800.0);
  print_report_line(stable_report);
  print_report_line(greedy_report);
  print_report_line(mincost_report);

  std::printf("\nby clock time (3 h buckets) -- mean taxi dissatisfaction (km):\n  hour ");
  for (std::size_t b = 0; b < stable_report.hourly_taxi.bucket_count(); ++b) {
    std::printf("%8d", stable_report.hourly_taxi.bucket_start_hour(b));
  }
  for (const auto* report : {&stable_report, &greedy_report, &mincost_report}) {
    std::printf("\n  %-8s", report->dispatcher_name.c_str());
    for (std::size_t b = 0; b < report->hourly_taxi.bucket_count(); ++b) {
      const auto& stats = report->hourly_taxi.bucket(b);
      std::printf("%8.2f", stats.count() == 0 ? 0.0 : stats.mean());
    }
  }

  std::printf("\n\nablation -- batching interval (stable dispatch):\n");
  for (const double frame : {30.0, 60.0, 120.0, 300.0}) {
    const auto report = run_once(city, fleet, stable, frame, 1800.0);
    std::printf("  frame=%5.0fs  served=%5zu  delay=%6.2f min  taxi=%6.2f km\n", frame,
                report.served, report.delay_stats.mean(), report.taxi_stats.mean());
  }

  std::printf("\nablation -- passenger patience (stable dispatch):\n");
  for (const double timeout : {600.0, 1800.0, 3600.0}) {
    const auto report = run_once(city, fleet, stable, 60.0, timeout);
    std::printf("  patience=%5.0fs  served=%5zu  cancelled=%5zu  delay=%6.2f min\n",
                timeout, report.served, report.cancelled, report.delay_stats.mean());
  }
  return 0;
}
