// stability_lab: explore the structure of the stable-schedule lattice.
//
// Three investigations:
//   1. How many stable schedules does a dispatch frame actually have?
//      (Geometric, distance-driven preferences almost always yield a
//      *unique* stable schedule -- which is why NSTD-P and NSTD-T
//      coincide on city workloads; adversarial preference structure is
//      needed for rich lattices.)
//   2. The generalized median schedules between NSTD-P and NSTD-T on an
//      instance with a large lattice.
//   3. Weak stability under ties: how much the matched count varies with
//      tie-breaking when many taxis wait at the same stands.
//
//   ./build/examples/stability_lab
#include <cstdio>

#include "core/all_stable.h"
#include "core/median.h"
#include "core/selectors.h"
#include "core/ties.h"
#include "geo/backend.h"
#include "util/rng.h"

using namespace o2o;

namespace {

// Resolved through the backend factory; the default spec is the paper's
// Euclidean surface. kBackend owns the oracle kOracle refers to.
const geo::DistanceBackend kBackend = geo::make_distance_oracle({});
const geo::DistanceOracle& kOracle = *kBackend.oracle;

/// The classic maximal-lattice construction: request r's best taxi is r,
/// then r+1, ...; taxi t's best request is t+1, then t+2, ... Every
/// rotation r -> (r + j) mod n is stable, so the lattice has n schedules.
core::PreferenceProfile rotational_latin_square(std::size_t n) {
  std::vector<std::vector<double>> passenger(n, std::vector<double>(n));
  std::vector<std::vector<double>> taxi(n, std::vector<double>(n));
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t t = 0; t < n; ++t) {
      passenger[r][t] = static_cast<double>((t + n - r) % n);
      taxi[r][t] = static_cast<double>((r + n - t - 1) % n);
    }
  }
  return core::PreferenceProfile::from_scores(std::move(passenger), std::move(taxi), n);
}

void lattice_census() {
  std::printf("1) lattice sizes across instance families (30 instances each)\n");
  Rng rng(1);

  const auto census = [&](const char* label, auto make_profile) {
    std::size_t unique = 0, small = 0, large = 0, max_size = 0;
    for (int trial = 0; trial < 30; ++trial) {
      const core::PreferenceProfile profile = make_profile();
      core::AllStableOptions options;
      options.max_matchings = 64;
      const auto all = core::enumerate_all_stable(profile, options);
      max_size = std::max(max_size, all.matchings.size());
      if (all.matchings.size() == 1) {
        ++unique;
      } else if (all.matchings.size() <= 4) {
        ++small;
      } else {
        ++large;
      }
    }
    std::printf("   %-28s unique: %2zu   2-4: %2zu   5+: %2zu   (max %zu)\n", label,
                unique, small, large, max_size);
  };

  census("geometric dispatch frames", [&] {
    std::vector<trace::Taxi> taxis;
    std::vector<trace::Request> requests;
    for (int t = 0; t < 20; ++t) {
      taxis.push_back({t, {rng.uniform(0, 20), rng.uniform(0, 20)}, 4});
    }
    for (int r = 0; r < 25; ++r) {
      trace::Request q;
      q.id = r;
      q.pickup = {rng.uniform(0, 20), rng.uniform(0, 20)};
      q.dropoff = {rng.uniform(0, 20), rng.uniform(0, 20)};
      requests.push_back(q);
    }
    return core::build_nonsharing_profile(taxis, requests, kOracle,
                                          core::PreferenceParams{});
  });

  census("independent random scores", [&] {
    std::vector<std::vector<double>> passenger(8, std::vector<double>(8));
    std::vector<std::vector<double>> taxi(8, std::vector<double>(8));
    for (auto* m : {&passenger, &taxi}) {
      for (auto& row : *m) {
        for (double& v : row) v = rng.uniform(0, 1);
      }
    }
    return core::PreferenceProfile::from_scores(passenger, taxi, 8);
  });

  census("adversarial latin squares", [&] {
    return rotational_latin_square(6);
  });
}

void median_walk() {
  std::printf("\n2) the generalized-median walk from NSTD-P to NSTD-T (6x6 rotational)\n");
  const auto profile = rotational_latin_square(6);
  const auto all = core::enumerate_all_stable(profile);
  std::printf("   stable schedules: %zu\n", all.matchings.size());
  for (std::size_t k = 0; k < all.matchings.size(); ++k) {
    const auto median = core::generalized_median(all.matchings, profile, k);
    const auto eval = core::evaluate(profile, median);
    std::printf("   k=%zu  passenger_total=%5.1f  taxi_total=%5.1f%s\n", k,
                eval.passenger_total, eval.taxi_total,
                k == (all.matchings.size() - 1) / 2 ? "   <- median schedule" : "");
  }
}

void tie_break_variance() {
  std::printf("\n3) ties: matched count across tie-breaks (taxis at shared stands)\n");
  // Two taxi stands, three taxis each. "Picky" riders only accept stand
  // A (stand B is beyond their patience); "flexible" riders are exactly
  // indifferent between the stands. A tie-break that lets flexible
  // riders grab stand A starves picky riders while stand B sits unused
  // -- the matched count depends on the tie-break (Iwama et al. [14]).
  core::TiedScores scores;
  const std::size_t taxis = 6, requests = 6;
  scores.passenger.assign(requests, std::vector<double>(taxis, 1.0));
  scores.taxi.assign(requests, std::vector<double>(taxis, 1.0));
  for (std::size_t r = 0; r < 3; ++r) {      // picky riders
    for (std::size_t t = 3; t < 6; ++t) {    // stand B
      scores.passenger[r][t] = core::kUnacceptable;
      scores.taxi[r][t] = core::kUnacceptable;
    }
  }
  std::size_t lo = requests + 1, hi = 0;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    const auto matching =
        core::gale_shapley_requests(core::break_ties(scores, seed));
    lo = std::min(lo, matching.matched_count());
    hi = std::max(hi, matching.matched_count());
  }
  const auto best = core::max_cardinality_weakly_stable(scores, 32, 7);
  std::printf("   16 random tie-breaks matched between %zu and %zu of %zu requests\n",
              lo, hi, requests);
  std::printf("   multi-restart heuristic matched %zu (seed %llu)\n", best.matched,
              static_cast<unsigned long long>(best.seed));
}

}  // namespace

int main() {
  std::printf("stability_lab -- the structure of stable dispatch schedules\n\n");
  lattice_census();
  median_walk();
  tie_break_variance();
  return 0;
}
