// Quickstart: the paper's Fig. 1 scenario end to end.
//
// Two passenger requests, two taxis. The company's minimum-total-distance
// schedule (S2) leaves a passenger and a driver who would rather have
// each other -- it is unstable. The library computes the stable schedule
// (Algorithm 1), verifies stability, and enumerates the full lattice of
// stable schedules (Algorithm 2).
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "core/all_stable.h"
#include "core/selectors.h"
#include "geo/backend.h"
#include "geo/distance_oracle.h"
#include "matching/hungarian.h"

using namespace o2o;

namespace {

void print_schedule(const char* label, const core::Matching& schedule) {
  std::printf("%s:", label);
  for (std::size_t r = 0; r < schedule.request_to_taxi.size(); ++r) {
    if (schedule.request_to_taxi[r] == core::kDummy) {
      std::printf("  r%zu->unserved", r);
    } else {
      std::printf("  r%zu->t%d", r, schedule.request_to_taxi[r]);
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("O2O stable taxi dispatch -- quickstart (Fig. 1 of the paper)\n\n");

  // The city: two requests and two taxis on the Euclidean plane (the
  // default spec of the pluggable distance-backend factory).
  const geo::DistanceBackend backend = geo::make_distance_oracle({});
  const geo::DistanceOracle& oracle = *backend.oracle;
  std::vector<trace::Taxi> taxis(2);
  taxis[0] = {0, {2.0, 0.0}, 4};   // t0
  taxis[1] = {1, {-3.0, 0.0}, 4};  // t1
  std::vector<trace::Request> requests(2);
  requests[0] = {0, 0.0, {0.0, 0.0}, {0.0, 4.0}, 1};  // r0, 4 km trip
  requests[1] = {1, 0.0, {7.0, 0.0}, {7.0, 4.0}, 1};  // r1, 4 km trip

  std::printf("pick-up distances:  D(t0,r0)=%.0f  D(t1,r0)=%.0f  D(t0,r1)=%.0f  D(t1,r1)=%.0f\n",
              oracle.distance(taxis[0].location, requests[0].pickup),
              oracle.distance(taxis[1].location, requests[0].pickup),
              oracle.distance(taxis[0].location, requests[1].pickup),
              oracle.distance(taxis[1].location, requests[1].pickup));

  // 1. The company's min-total-distance schedule (the "S2" of Fig. 1).
  matching::CostMatrix costs(2, 2);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t t = 0; t < 2; ++t) {
      costs.at(r, t) = oracle.distance(taxis[t].location, requests[r].pickup);
    }
  }
  const matching::Assignment min_cost = matching::solve_min_cost(costs);
  std::printf("\nmin-cost matching picks:   r0->t%d  r1->t%d  (total %.0f km)\n",
              min_cost[0], min_cost[1], matching::assignment_cost(costs, min_cost));

  // 2. The stable schedule (Algorithm 1, passenger-proposing).
  const core::PreferenceProfile profile = core::build_nonsharing_profile(
      taxis, requests, oracle, core::PreferenceParams{});
  const core::Matching stable = core::gale_shapley_requests(profile);
  print_schedule("stable schedule (NSTD-P)", stable);
  std::printf("stable?  %s\n", core::is_stable(profile, stable) ? "yes" : "no");

  // 3. Why the min-cost schedule is rejected: its blocking pair.
  const core::Matching s2 = core::make_matching(
      {min_cost[0], min_cost[1]}, profile.taxi_count());
  const auto blocks = core::blocking_pairs(profile, s2);
  for (const auto& [r, t] : blocks) {
    std::printf("min-cost schedule is blocked by (r%zu, t%zu): "
                "they prefer each other over their assigned partners\n", r, t);
  }

  // 4. The whole lattice of stable schedules (Algorithm 2) and the
  //    company's pick.
  const core::AllStableResult all = core::enumerate_all_stable(profile);
  std::printf("\nall stable schedules: %zu\n", all.matchings.size());
  for (std::size_t i = 0; i < all.matchings.size(); ++i) {
    const auto eval = core::evaluate(profile, all.matchings[i]);
    std::printf("  [%zu] passenger_total=%.1f km, taxi_total=%.1f km  ", i,
                eval.passenger_total, eval.taxi_total);
    print_schedule("", all.matchings[i]);
  }
  const core::Matching& taxi_best = core::select_taxi_optimal(all.matchings, profile);
  print_schedule("taxi-optimal pick (NSTD-T)", taxi_best);
  return 0;
}
