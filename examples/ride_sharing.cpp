// ride_sharing: a walk through Algorithm 3 on a readable scenario --
// feasible group enumeration, maximum set packing, the sharing
// preference scores, and the final stable dispatch -- then a head-to-head
// against the SARP insertion baseline on the same frame.
//
//   ./build/examples/ride_sharing
#include <cstdio>

#include "baselines/sarp.h"
#include "core/sharing.h"
#include "geo/backend.h"
#include "packing/groups.h"
#include "routing/route.h"

using namespace o2o;

namespace {

// Resolved through the backend factory; the default spec is the paper's
// Euclidean surface. kBackend owns the oracle kOracle refers to.
const geo::DistanceBackend kBackend = geo::make_distance_oracle({});
const geo::DistanceOracle& kOracle = *kBackend.oracle;

void print_route(const routing::Route& route) {
  if (route.start.has_value()) {
    std::printf("    taxi(%.1f,%.1f)", route.start->x, route.start->y);
  }
  for (const routing::Stop& stop : route.stops) {
    std::printf(" -> %s r%d (%.1f,%.1f)", stop.is_pickup ? "pick" : "drop", stop.request,
                stop.point.x, stop.point.y);
  }
  std::printf("   [%.2f km]\n", routing::route_length(route, kOracle));
}

}  // namespace

int main() {
  std::printf("O2O sharing dispatch -- Algorithm 3 walkthrough\n\n");

  // Morning commute into the centre: three nearby riders heading the same
  // way, one rider going the opposite direction, one distant rider.
  std::vector<trace::Request> requests(5);
  requests[0] = {0, 0.0, {0.0, 0.0}, {8.0, 0.0}, 1};
  requests[1] = {1, 0.0, {0.5, 0.3}, {8.5, 0.3}, 1};
  requests[2] = {2, 0.0, {1.0, -0.3}, {7.5, -0.3}, 2};
  requests[3] = {3, 0.0, {7.0, 2.0}, {-1.0, 2.0}, 1};  // opposite direction
  requests[4] = {4, 0.0, {30.0, 30.0}, {36.0, 30.0}, 1};  // far away

  std::vector<trace::Taxi> taxis(3);
  taxis[0] = {0, {-1.0, 0.0}, 4};
  taxis[1] = {1, {8.0, 2.5}, 4};
  taxis[2] = {2, {29.0, 29.0}, 4};

  core::SharingParams params;
  params.grouping.detour_threshold_km = 5.0;  // the paper's θ

  // Stage 1: all feasible share groups (|c_k| <= 3, detour <= θ).
  const auto groups = packing::enumerate_share_groups(requests, kOracle, params.grouping);
  std::printf("feasible share groups (θ = %.0f km): %zu\n", params.grouping.detour_threshold_km,
              groups.size());
  for (const auto& group : groups) {
    std::printf("  {");
    for (std::size_t m : group.member_indices) std::printf(" r%zu", m);
    std::printf(" }  pooled=%.2f km, direct-sum=%.2f km, worst detour=%.2f km\n",
                group.pooled_length_km, group.direct_sum_km, group.max_detour_km);
  }

  // Stage 2: maximum set packing (Eqs. 1-3).
  const core::SharingUnits units = core::pack_requests(requests, kOracle, params);
  std::printf("\npacked units (groups packed: %zu of %zu feasible):\n", units.packed_groups,
              units.feasible_groups);
  for (const auto& unit : units.units) {
    std::printf("  unit {");
    for (std::size_t m : unit) std::printf(" r%zu", m);
    std::printf(" }\n");
  }

  // Stage 3: stable matching of units to taxis.
  const core::SharingOutcome outcome =
      core::dispatch_sharing(taxis, requests, kOracle, params);
  std::printf("\nstable sharing dispatch (STD-P):\n");
  for (const auto& assignment : outcome.assignments) {
    std::printf("  taxi t%zu serves", assignment.taxi_index);
    for (std::size_t r : assignment.request_indices) std::printf(" r%zu", r);
    std::printf("  (passenger score %.2f km, taxi score %.2f km)\n",
                assignment.passenger_score, assignment.taxi_score);
    print_route(assignment.route);
  }
  for (std::size_t r : outcome.unserved_request_indices) {
    std::printf("  r%zu is unserved this frame\n", r);
  }

  // Head-to-head: SARP's insertion heuristic on the same frame.
  std::printf("\nSARP on the same frame:\n");
  baselines::SarpDispatcher sarp;
  sim::DispatchContext context;
  context.idle_taxis = taxis;
  context.pending = requests;
  context.oracle = &kOracle;
  for (const auto& assignment : sarp.dispatch(context)) {
    std::printf("  taxi t%d serves", assignment.taxi);
    for (trace::RequestId id : assignment.requests) std::printf(" r%d", id);
    std::printf("\n");
    print_route(assignment.route);
  }
  return 0;
}
