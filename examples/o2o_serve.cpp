// o2o_serve: the streaming dispatch service as a process.
//
//   ./build/examples/o2o_serve [mode] [--dispatcher=KIND] [--sharing]
//       [--pipeline-depth=N] [--ingest-capacity=N]
//       [--distance-backend=SPEC] [taxis rate_scale seed]
//
// `--distance-backend=` picks the distance function through the pluggable
// backend factory (geo/backend.h): euclid (default), manhattan,
// circuity[:F], dijkstra:CITY.gr,CITY.co, ch:CITY.gr,CITY.co[,HIER.o2och],
// or the .osm variants. `--print-config` echoes the resolved backend kind
// plus its graph fingerprint and CH artifact hash, so a deployment's
// distance function is auditable from the config snapshot alone.
//
// Modes (pick one):
//   --stdio            serve ndjson frames on stdin/stdout (default)
//   --tcp=PORT         serve one ndjson client over TCP on PORT
//   --replay           in-process differential: stream a synthetic day
//                      through the full wire codec + ingestion ring and
//                      diff the report against the batch Simulator;
//                      exits nonzero on any mismatch
//   --replay-connect=REQ,RESP
//                      drive a *remote* server through a pair of pipes
//                      (e.g. mkfifo): frame events are written to REQ,
//                      responses read from RESP, and the resulting
//                      report is diffed against the batch run
//   --print-config     print the api version and the full
//                      DispatchConfig::describe() snapshot, then exit
//
// Wire protocol (ndjson, one JSON object per line):
//   -> {"v":1,"event":"order","order_id":N,"timestamp":S,...}
//   -> {"v":1,"event":"driver","driver_id":N,"location":[x,y],...}
//   -> {"v":1,"event":"end_frame","frame":F,"timestamp":S}
//   <- {"v":1,"event":"frame_response","frame":F,"timestamp":S,
//       "assignments":[...]}
// The end_frame barrier closes a frame; the matcher replies with one
// frame_response per valid barrier. Clients resend the full pending-order
// and fleet state every frame (the protocol is stateless per frame).
// Malformed input is never fatal: undecodable lines are dropped with a
// stderr note, and a frame with duplicate order/driver ids is discarded
// whole (no frame_response; counted as frames_rejected).
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/dispatch_config.h"
#include "geo/backend.h"
#include "service/api.h"
#include "service/codec.h"
#include "service/replay.h"
#include "service/service.h"
#include "service/session.h"
#include "sim/simulator.h"
#include "trace/fleet.h"
#include "trace/synthetic.h"

using namespace o2o;

namespace {

DispatchConfig tuned_config() {
  return DispatchConfig{}.with_passenger_threshold_km(10.0).with_taxi_threshold_score(1.0);
}

/// --flag=value style option; returns true and fills `value` on match.
bool parse_option(const char* arg, const char* name, std::string& value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  value = arg + len + 1;
  return true;
}

// ---------------------------------------------------------------------------
// Line-delimited I/O over raw file descriptors (works for pipes, FIFOs,
// stdio, and sockets alike).
// ---------------------------------------------------------------------------

class LineChannel {
 public:
  LineChannel(int read_fd, int write_fd) : read_fd_(read_fd), write_fd_(write_fd) {}

  /// Reads one '\n'-terminated line (terminator stripped). Returns false
  /// on EOF with no buffered data.
  bool read_line(std::string& line) {
    line.clear();
    while (true) {
      const std::size_t newline = buffer_.find('\n', scan_from_);
      if (newline != std::string::npos) {
        line.assign(buffer_, 0, newline);
        buffer_.erase(0, newline + 1);
        scan_from_ = 0;
        return true;
      }
      scan_from_ = buffer_.size();
      char chunk[4096];
      const ssize_t got = ::read(read_fd_, chunk, sizeof(chunk));
      if (got < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (got == 0) {
        if (buffer_.empty()) return false;
        line.swap(buffer_);
        scan_from_ = 0;
        return true;  // unterminated trailing line
      }
      buffer_.append(chunk, static_cast<std::size_t>(got));
    }
  }

  bool write_line(const std::string& line) {
    std::string framed = line;
    framed.push_back('\n');
    std::size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t wrote = ::write(write_fd_, framed.data() + sent, framed.size() - sent);
      if (wrote < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<std::size_t>(wrote);
    }
    return true;
  }

 private:
  int read_fd_;
  int write_fd_;
  std::string buffer_;
  std::size_t scan_from_ = 0;
};

// ---------------------------------------------------------------------------
// Server: reader thread ingests ndjson events into the ring while the
// matcher thread answers frames — frame t+1 streams in while frame t is
// still matching.
// ---------------------------------------------------------------------------

int run_server(LineChannel& channel, const std::string& kind,
               const DispatchConfig& config, const geo::DistanceOracle& oracle) {
  service::StreamingService svc(kind, config, oracle);

  std::thread reader([&svc, &channel] {
    std::string line;
    while (channel.read_line(line)) {
      if (line.empty()) continue;
      service::CodecError error;
      const auto event = service::decode_event(line, &error);
      if (!event) {
        std::fprintf(stderr, "o2o_serve: dropping bad event: %s\n",
                     error.message.c_str());
        continue;
      }
      svc.submit(*event);
    }
    svc.close();
  });

  std::uint64_t frames = 0;
  while (const auto response = svc.next_response()) {
    ++frames;
    if (!channel.write_line(service::encode_response(*response))) {
      std::fprintf(stderr, "o2o_serve: write failed, shutting down\n");
      break;
    }
  }
  reader.join();
  std::fprintf(stderr, "o2o_serve: served %llu frames\n",
               static_cast<unsigned long long>(frames));
  return 0;
}

int run_tcp(int port, const std::string& kind, const DispatchConfig& config,
            const geo::DistanceOracle& oracle) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("o2o_serve: socket");
    return 1;
  }
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    std::perror("o2o_serve: bind");
    ::close(listener);
    return 1;
  }
  if (::listen(listener, 1) < 0) {
    std::perror("o2o_serve: listen");
    ::close(listener);
    return 1;
  }
  std::fprintf(stderr, "o2o_serve: listening on 127.0.0.1:%d\n", port);
  const int client = ::accept(listener, nullptr, nullptr);
  ::close(listener);
  if (client < 0) {
    std::perror("o2o_serve: accept");
    return 1;
  }
  LineChannel channel(client, client);
  const int rc = run_server(channel, kind, config, oracle);
  ::close(client);
  return rc;
}

// ---------------------------------------------------------------------------
// Replay: differential streamed-vs-batch run.
// ---------------------------------------------------------------------------

/// ServeFrameFn that pushes every frame through the wire codec AND the
/// lock-free ingestion ring: encode each event line, decode it, submit
/// to the service, then collect + round-trip the response. This is the
/// exact event path a remote client exercises, in process.
service::ServeFrameFn streamed_codec_server(service::StreamingService& svc) {
  return [&svc](const api::FrameRequest& request) {
    for (const std::string& line : service::encode_frame_events(request)) {
      service::CodecError error;
      const auto event = service::decode_event(line, &error);
      if (!event) {
        std::fprintf(stderr, "o2o_serve: codec error: %s\n", error.message.c_str());
        std::abort();
      }
      svc.submit(*event);
    }
    const auto response = svc.next_response();
    if (!response) {
      std::fprintf(stderr, "o2o_serve: service closed mid-replay\n");
      std::abort();
    }
    const auto decoded =
        service::decode_response(service::encode_response(*response));
    if (!decoded) {
      std::fprintf(stderr, "o2o_serve: response failed codec round trip\n");
      std::abort();
    }
    return *decoded;
  };
}

/// ServeFrameFn that drives a remote ndjson server through `channel`.
service::ServeFrameFn remote_server(LineChannel& channel) {
  return [&channel](const api::FrameRequest& request) {
    for (const std::string& line : service::encode_frame_events(request)) {
      if (!channel.write_line(line)) {
        std::fprintf(stderr, "o2o_serve: request write failed\n");
        std::abort();
      }
    }
    std::string line;
    if (!channel.read_line(line)) {
      std::fprintf(stderr, "o2o_serve: server hung up mid-frame\n");
      std::abort();
    }
    service::CodecError error;
    const auto response = service::decode_response(line, &error);
    if (!response) {
      std::fprintf(stderr, "o2o_serve: bad response: %s\n", error.message.c_str());
      std::abort();
    }
    return *response;
  };
}

/// Field-by-field report diff; every divergence is printed. Returns the
/// number of mismatched fields (0 == bit-identical).
int diff_reports(const sim::SimulationReport& batch,
                 const sim::SimulationReport& streamed) {
  int mismatches = 0;
  const auto check_u = [&](const char* what, std::size_t a, std::size_t b) {
    if (a == b) return;
    ++mismatches;
    std::fprintf(stderr, "  %s: batch=%zu streamed=%zu\n", what, a, b);
  };
  const auto check_d = [&](const char* what, double a, double b) {
    if (a == b) return;  // bitwise-equal doubles compare equal exactly
    ++mismatches;
    std::fprintf(stderr, "  %s: batch=%.17g streamed=%.17g\n", what, a, b);
  };
  check_u("served", batch.served, streamed.served);
  check_u("cancelled", batch.cancelled, streamed.cancelled);
  check_d("total_taxi_distance_km", batch.total_taxi_distance_km,
          streamed.total_taxi_distance_km);
  check_u("request_count", batch.requests.size(), streamed.requests.size());
  const std::size_t n = std::min(batch.requests.size(), streamed.requests.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto& a = batch.requests[i];
    const auto& b = streamed.requests[i];
    if (a.id == b.id && a.dispatch_time == b.dispatch_time &&
        a.pickup_time == b.pickup_time && a.dropoff_time == b.dropoff_time &&
        a.dispatch_delay_minutes == b.dispatch_delay_minutes &&
        a.passenger_dissatisfaction_km == b.passenger_dissatisfaction_km &&
        a.shared == b.shared && a.cancelled == b.cancelled) {
      continue;
    }
    ++mismatches;
    std::fprintf(stderr,
                 "  request %lld: batch(dispatch=%.17g pickup=%.17g shared=%d "
                 "cancelled=%d) vs streamed(dispatch=%.17g pickup=%.17g shared=%d "
                 "cancelled=%d)\n",
                 static_cast<long long>(a.id), a.dispatch_time, a.pickup_time,
                 a.shared ? 1 : 0, a.cancelled ? 1 : 0, b.dispatch_time, b.pickup_time,
                 b.shared ? 1 : 0, b.cancelled ? 1 : 0);
  }
  return mismatches;
}

struct ReplayDay {
  trace::Trace city;
  std::vector<trace::Taxi> fleet;
};

ReplayDay make_day(int taxis, double rate_scale, std::uint64_t seed) {
  trace::CityModel model = trace::CityModel::boston();
  trace::GenerationOptions gen;
  gen.duration_seconds = 4.0 * 3600.0;
  gen.rate_scale = rate_scale;
  gen.seed = seed;
  trace::FleetOptions fleet_options;
  fleet_options.taxi_count = taxis;
  return ReplayDay{trace::generate(model, gen),
                   trace::make_fleet(model.region, fleet_options)};
}

int run_replay(const std::string& kind, const DispatchConfig& config,
               const geo::DistanceOracle& oracle, int taxis, double rate_scale,
               std::uint64_t seed, LineChannel* remote) {
  const ReplayDay day = make_day(taxis, rate_scale, seed);
  std::fprintf(stderr,
               "o2o_serve: replaying %zu requests / %d taxis through %s (%s)\n",
               day.city.size(), taxis, remote ? "remote server" : "in-process service",
               kind.c_str());

  sim::Simulator batch_sim(day.city, day.fleet, oracle, config.simulation());
  const auto dispatcher = make_dispatcher(kind, config);
  const sim::SimulationReport batch = batch_sim.run(*dispatcher);

  service::ReplayResult streamed;
  if (remote != nullptr) {
    streamed = service::replay_day(day.city, day.fleet, oracle, config,
                                   remote_server(*remote), kind);
  } else {
    service::StreamingService svc(kind, config, oracle);
    streamed = service::replay_day(day.city, day.fleet, oracle, config,
                                   streamed_codec_server(svc), kind);
  }

  const int mismatches = diff_reports(batch, streamed.report);
  std::fprintf(stderr,
               "o2o_serve: %llu frames served, %d mismatches -- %s\n",
               static_cast<unsigned long long>(streamed.frames_served), mismatches,
               mismatches == 0 ? "streamed run is bit-identical to batch" : "FAILED");
  return mismatches == 0 ? 0 : 1;
}

void print_config(const std::string& kind, const DispatchConfig& config) {
  std::printf("o2o_serve api v%d.%d, dispatcher %s\n", api::kApiVersionMajor,
              api::kApiVersionMinor, kind.c_str());
  for (const auto& [key, value] : config.describe()) {
    std::printf("  %s=%s\n", key.c_str(), value.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  enum class Mode { kStdio, kTcp, kReplay, kReplayConnect, kPrintConfig };
  Mode mode = Mode::kStdio;
  std::string kind = "nstd-p";
  int tcp_port = 0;
  std::string connect_paths;
  int taxis = 60;
  double rate_scale = 0.5;
  std::uint64_t seed = 4242;
  DispatchConfig config = tuned_config();
  geo::DistanceBackendSpec backend_spec;

  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::string value;
    if (std::strcmp(arg, "--stdio") == 0) {
      mode = Mode::kStdio;
    } else if (parse_option(arg, "--tcp", value)) {
      mode = Mode::kTcp;
      tcp_port = std::atoi(value.c_str());
    } else if (std::strcmp(arg, "--replay") == 0) {
      mode = Mode::kReplay;
    } else if (parse_option(arg, "--replay-connect", value)) {
      mode = Mode::kReplayConnect;
      connect_paths = value;
    } else if (std::strcmp(arg, "--print-config") == 0) {
      mode = Mode::kPrintConfig;
    } else if (parse_option(arg, "--dispatcher", value)) {
      kind = value;
    } else if (std::strcmp(arg, "--sharing") == 0) {
      kind = "std-p";
    } else if (parse_option(arg, "--pipeline-depth", value)) {
      config = config.with_pipeline_depth(static_cast<std::size_t>(std::atoll(value.c_str())));
    } else if (parse_option(arg, "--ingest-capacity", value)) {
      config = config.with_ingest_capacity(static_cast<std::size_t>(std::atoll(value.c_str())));
    } else if (parse_option(arg, "--distance-backend", value)) {
      if (!geo::parse_distance_backend(value, &backend_spec)) {
        std::fprintf(stderr, "o2o_serve: unrecognized --distance-backend spec: %s\n",
                     value.c_str());
        return 2;
      }
    } else {
      switch (positional++) {
        case 0: taxis = std::atoi(arg); break;
        case 1: rate_scale = std::atof(arg); break;
        case 2: seed = std::strtoull(arg, nullptr, 10); break;
        default:
          std::fprintf(stderr, "unknown argument: %s\n", arg);
          return 2;
      }
    }
  }

  // Resolve the distance backend up front: --print-config then reports
  // the graph fingerprint / CH artifact hash the server would serve with.
  geo::DistanceBackend backend;
  try {
    backend = geo::make_distance_oracle(backend_spec);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "o2o_serve: cannot resolve --distance-backend: %s\n",
                 error.what());
    return 2;
  }
  config = config.with_distance_backend(backend);

  const auto errors = config.validate();
  if (!errors.empty()) {
    for (const auto& error : errors) {
      std::fprintf(stderr, "o2o_serve: bad config: %s\n", error.message.c_str());
    }
    return 2;
  }

  switch (mode) {
    case Mode::kPrintConfig:
      print_config(kind, config);
      return 0;
    case Mode::kStdio: {
      LineChannel channel(STDIN_FILENO, STDOUT_FILENO);
      return run_server(channel, kind, config, *backend.oracle);
    }
    case Mode::kTcp:
      return run_tcp(tcp_port, kind, config, *backend.oracle);
    case Mode::kReplay:
      return run_replay(kind, config, *backend.oracle, taxis, rate_scale, seed,
                        nullptr);
    case Mode::kReplayConnect: {
      const std::size_t comma = connect_paths.find(',');
      if (comma == std::string::npos) {
        std::fprintf(stderr, "--replay-connect wants REQ,RESP paths\n");
        return 2;
      }
      const std::string req = connect_paths.substr(0, comma);
      const std::string resp = connect_paths.substr(comma + 1);
      // FIFO open order matters: the server opens REQ (its stdin) first,
      // so open REQ for writing first to unblock it, then RESP.
      const int wfd = ::open(req.c_str(), O_WRONLY);
      if (wfd < 0) {
        std::perror("o2o_serve: open REQ");
        return 1;
      }
      const int rfd = ::open(resp.c_str(), O_RDONLY);
      if (rfd < 0) {
        std::perror("o2o_serve: open RESP");
        ::close(wfd);
        return 1;
      }
      LineChannel channel(rfd, wfd);
      const int rc = run_replay(kind, config, *backend.oracle, taxis, rate_scale,
                                seed, &channel);
      ::close(wfd);
      ::close(rfd);
      return rc;
    }
  }
  return 0;
}
