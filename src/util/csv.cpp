#include "util/csv.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/contracts.h"
#include "util/strings.h"

namespace o2o {

CsvRow parse_csv_line(std::string_view line, char sep) {
  CsvRow fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"' && current.empty()) {
      in_quotes = true;
    } else if (c == sep) {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

std::string format_csv_line(const CsvRow& row, char sep) {
  std::string line;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) line += sep;
    const std::string& field = row[i];
    const bool needs_quotes = field.find(sep) != std::string::npos ||
                              field.find('"') != std::string::npos ||
                              field.find('\n') != std::string::npos;
    if (!needs_quotes) {
      line += field;
      continue;
    }
    line += '"';
    for (char c : field) {
      if (c == '"') line += '"';
      line += c;
    }
    line += '"';
  }
  return line;
}

CsvTable CsvTable::read(std::istream& in, bool has_header, char sep) {
  CsvTable table;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    CsvRow row = parse_csv_line(line, sep);
    if (first && has_header) {
      table.header_ = std::move(row);
      first = false;
      continue;
    }
    first = false;
    table.rows_.push_back(std::move(row));
  }
  table.build_index();
  return table;
}

CsvTable CsvTable::read_file(const std::string& path, bool has_header, char sep) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open CSV file: " + path);
  return read(in, has_header, sep);
}

CsvTable CsvTable::parse(std::string_view text, bool has_header, char sep) {
  std::istringstream in{std::string(text)};
  return read(in, has_header, sep);
}

int CsvTable::column(std::string_view name) const noexcept {
  const auto it = column_index_.find(std::string(trim(name)));
  return it == column_index_.end() ? -1 : it->second;
}

const std::string& CsvTable::field(std::size_t row, int col) const {
  O2O_EXPECTS(row < rows_.size());
  O2O_EXPECTS(col >= 0);
  static const std::string kEmpty;
  const CsvRow& record = rows_[row];
  if (static_cast<std::size_t>(col) >= record.size()) return kEmpty;
  return record[static_cast<std::size_t>(col)];
}

void CsvTable::build_index() {
  column_index_.clear();
  for (std::size_t i = 0; i < header_.size(); ++i) {
    column_index_.emplace(std::string(trim(header_[i])), static_cast<int>(i));
  }
}

void CsvWriter::write_row(const CsvRow& row) {
  out_ << format_csv_line(row, sep_) << '\n';
}

}  // namespace o2o
