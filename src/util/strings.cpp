#include "util/strings.h"

#include <cctype>
#include <charconv>
#include <cstdio>

#include "util/contracts.h"

namespace o2o {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(text.substr(start));
      return fields;
    }
    fields.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) noexcept {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string joined;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) joined += sep;
    joined += parts[i];
  }
  return joined;
}

std::string to_lower(std::string_view text) {
  std::string lowered(text);
  for (char& c : lowered) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return lowered;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) noexcept {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::optional<double> parse_double(std::string_view text) noexcept {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) return std::nullopt;
  return value;
}

std::optional<long long> parse_int(std::string_view text) noexcept {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  long long value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) return std::nullopt;
  return value;
}

std::string format_fixed(double value, int decimals) {
  O2O_EXPECTS(decimals >= 0 && decimals <= 12);
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

}  // namespace o2o
