// Lightweight contract checking in the spirit of the C++ Core Guidelines
// (I.5/I.6: state and check preconditions; I.7/I.8: postconditions).
//
// O2O_EXPECTS(cond)  -- precondition; throws o2o::ContractViolation on failure.
// O2O_ENSURES(cond)  -- postcondition; same failure behaviour.
//
// Contracts are always on: the library is used for research-grade
// simulation where silent corruption is worse than the (tiny) cost of
// the checks on the hot paths we actually have.
#pragma once

#include <stdexcept>
#include <string>

namespace o2o {

/// Thrown when a precondition or postcondition stated by the library is
/// violated by the caller (or, for ENSURES, by the library itself).
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(const char* kind, const char* expr, const char* file, int line)
      : std::logic_error(std::string(kind) + " failed: `" + expr + "` at " + file + ":" +
                         std::to_string(line)) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr, const char* file,
                                       int line) {
  throw ContractViolation(kind, expr, file, line);
}
}  // namespace detail

}  // namespace o2o

#define O2O_EXPECTS(cond)                                                 \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::o2o::detail::contract_fail("precondition", #cond, __FILE__, __LINE__); \
    }                                                                     \
  } while (false)

#define O2O_ENSURES(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::o2o::detail::contract_fail("postcondition", #cond, __FILE__, __LINE__); \
    }                                                                      \
  } while (false)
