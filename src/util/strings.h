// Small string utilities shared across the library (CSV parsing, trace
// ingestion, report formatting). Header declares; strings.cpp defines.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace o2o {

/// Splits `text` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text) noexcept;

/// Joins `parts` with `sep` between consecutive elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lower-casing (locale-independent).
std::string to_lower(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix) noexcept;
bool ends_with(std::string_view text, std::string_view suffix) noexcept;

/// Locale-independent numeric parsing; nullopt on any trailing garbage.
std::optional<double> parse_double(std::string_view text) noexcept;
std::optional<long long> parse_int(std::string_view text) noexcept;

/// printf-style double formatting with fixed decimals (for report tables).
std::string format_fixed(double value, int decimals);

}  // namespace o2o
