#include "util/simd.h"

#include <cmath>

#if !defined(O2O_SIMD_SCALAR_ONLY)
#if defined(__x86_64__) || defined(_M_X64)
#define O2O_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define O2O_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace o2o::simd {

namespace {

constexpr double kSavingEpsKm = 1e-9;  // mirrors evaluate_group's saving slack

// ---------------------------------------------------------------- scalar

/// One lane of the pair certificate; the reference the vector paths are
/// differentially tested against.
inline bool pair_lane(const PairLegsSoA& legs, std::size_t k, double theta_pad,
                      double pad) noexcept {
  const double a = legs.a[k], a2 = legs.a2[k];
  const double b = legs.b[k], b2 = legs.b2[k];
  const double c = legs.c[k], c2 = legs.c2[k];
  const double di = legs.direct_i[k], dj = legs.direct_j[k];
  const double limit = di + dj - (kSavingEpsKm - pad);
  // o1: p_i p_j d_i d_j
  const double len1 = a + b + c;
  if (len1 < limit && (a + b) - di <= theta_pad && (b + c) - dj <= theta_pad) return true;
  // o2: p_i p_j d_j d_i (rider j rides direct, zero detour)
  const double len2 = a + dj + c2;
  if (len2 < limit && len2 - di <= theta_pad) return true;
  // o4: p_j p_i d_i d_j (rider i rides direct, zero detour)
  const double len4 = a2 + di + c;
  if (len4 < limit && len4 - dj <= theta_pad) return true;
  // o5: p_j p_i d_j d_i
  const double len5 = a2 + b2 + c2;
  if (len5 < limit && (b2 + c2) - di <= theta_pad && (a2 + b2) - dj <= theta_pad) {
    return true;
  }
  return false;
}

std::size_t pair_filter_scalar(const PairLegsSoA& legs, std::size_t count, double theta,
                               double pad, std::uint8_t* keep) noexcept {
  const double theta_pad = theta + pad;
  std::size_t kept = 0;
  for (std::size_t k = 0; k < count; ++k) {
    keep[k] = pair_lane(legs, k, theta_pad, pad) ? 1 : 0;
    kept += keep[k];
  }
  return kept;
}

inline bool cone_lane(const ConeSoA& soa, std::size_t k, double pad) noexcept {
  const auto seg = [](double ax, double ay, double bx, double by) {
    const double dx = ax - bx;
    const double dy = ay - by;
    return std::sqrt(dx * dx + dy * dy);
  };
  const double pp = seg(soa.pix[k], soa.piy[k], soa.pjx[k], soa.pjy[k]);
  if (pp + seg(soa.pjx[k], soa.pjy[k], soa.dix[k], soa.diy[k]) <= soa.bound_i[k] + pad) {
    return true;
  }
  return pp + seg(soa.pix[k], soa.piy[k], soa.djx[k], soa.djy[k]) <= soa.bound_j[k] + pad;
}

std::size_t cone_filter_scalar(const ConeSoA& soa, std::size_t count, double pad,
                               std::uint8_t* keep) noexcept {
  std::size_t kept = 0;
  for (std::size_t k = 0; k < count; ++k) {
    keep[k] = cone_lane(soa, k, pad) ? 1 : 0;
    kept += keep[k];
  }
  return kept;
}

// ----------------------------------------------------------------- AVX2

#if defined(O2O_SIMD_X86)

__attribute__((target("avx2"))) std::size_t pair_filter_avx2(
    const PairLegsSoA& legs, std::size_t count, double theta, double pad,
    std::uint8_t* keep) noexcept {
  const __m256d vtheta = _mm256_set1_pd(theta + pad);
  const __m256d veps = _mm256_set1_pd(kSavingEpsKm - pad);
  std::size_t kept = 0;
  std::size_t k = 0;
  for (; k + 4 <= count; k += 4) {
    const __m256d a = _mm256_loadu_pd(legs.a + k);
    const __m256d a2 = _mm256_loadu_pd(legs.a2 + k);
    const __m256d b = _mm256_loadu_pd(legs.b + k);
    const __m256d b2 = _mm256_loadu_pd(legs.b2 + k);
    const __m256d c = _mm256_loadu_pd(legs.c + k);
    const __m256d c2 = _mm256_loadu_pd(legs.c2 + k);
    const __m256d di = _mm256_loadu_pd(legs.direct_i + k);
    const __m256d dj = _mm256_loadu_pd(legs.direct_j + k);
    const __m256d limit = _mm256_sub_pd(_mm256_add_pd(di, dj), veps);

    const __m256d len1 = _mm256_add_pd(_mm256_add_pd(a, b), c);
    __m256d ok1 = _mm256_cmp_pd(len1, limit, _CMP_LT_OQ);
    ok1 = _mm256_and_pd(
        ok1, _mm256_cmp_pd(_mm256_sub_pd(_mm256_add_pd(a, b), di), vtheta, _CMP_LE_OQ));
    ok1 = _mm256_and_pd(
        ok1, _mm256_cmp_pd(_mm256_sub_pd(_mm256_add_pd(b, c), dj), vtheta, _CMP_LE_OQ));

    const __m256d len2 = _mm256_add_pd(_mm256_add_pd(a, dj), c2);
    __m256d ok2 = _mm256_cmp_pd(len2, limit, _CMP_LT_OQ);
    ok2 = _mm256_and_pd(ok2,
                        _mm256_cmp_pd(_mm256_sub_pd(len2, di), vtheta, _CMP_LE_OQ));

    const __m256d len4 = _mm256_add_pd(_mm256_add_pd(a2, di), c);
    __m256d ok4 = _mm256_cmp_pd(len4, limit, _CMP_LT_OQ);
    ok4 = _mm256_and_pd(ok4,
                        _mm256_cmp_pd(_mm256_sub_pd(len4, dj), vtheta, _CMP_LE_OQ));

    const __m256d len5 = _mm256_add_pd(_mm256_add_pd(a2, b2), c2);
    __m256d ok5 = _mm256_cmp_pd(len5, limit, _CMP_LT_OQ);
    ok5 = _mm256_and_pd(
        ok5, _mm256_cmp_pd(_mm256_sub_pd(_mm256_add_pd(b2, c2), di), vtheta, _CMP_LE_OQ));
    ok5 = _mm256_and_pd(
        ok5, _mm256_cmp_pd(_mm256_sub_pd(_mm256_add_pd(a2, b2), dj), vtheta, _CMP_LE_OQ));

    const __m256d ok = _mm256_or_pd(_mm256_or_pd(ok1, ok2), _mm256_or_pd(ok4, ok5));
    const int mask = _mm256_movemask_pd(ok);
    for (int lane = 0; lane < 4; ++lane) {
      keep[k + static_cast<std::size_t>(lane)] = (mask >> lane) & 1;
    }
    kept += static_cast<std::size_t>(__builtin_popcount(static_cast<unsigned>(mask)));
  }
  const double theta_pad = theta + pad;
  for (; k < count; ++k) {
    keep[k] = pair_lane(legs, k, theta_pad, pad) ? 1 : 0;
    kept += keep[k];
  }
  return kept;
}

__attribute__((target("avx2"))) std::size_t cone_filter_avx2(
    const ConeSoA& soa, std::size_t count, double pad, std::uint8_t* keep) noexcept {
  const __m256d vpad = _mm256_set1_pd(pad);
  std::size_t kept = 0;
  std::size_t k = 0;
  for (; k + 4 <= count; k += 4) {
    const __m256d pix = _mm256_loadu_pd(soa.pix + k);
    const __m256d piy = _mm256_loadu_pd(soa.piy + k);
    const __m256d pjx = _mm256_loadu_pd(soa.pjx + k);
    const __m256d pjy = _mm256_loadu_pd(soa.pjy + k);

    __m256d dx = _mm256_sub_pd(pix, pjx);
    __m256d dy = _mm256_sub_pd(piy, pjy);
    const __m256d pp = _mm256_sqrt_pd(
        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)));

    dx = _mm256_sub_pd(pjx, _mm256_loadu_pd(soa.dix + k));
    dy = _mm256_sub_pd(pjy, _mm256_loadu_pd(soa.diy + k));
    const __m256d leg_i = _mm256_sqrt_pd(
        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)));
    const __m256d bound_i =
        _mm256_add_pd(_mm256_loadu_pd(soa.bound_i + k), vpad);
    const __m256d ok_i = _mm256_cmp_pd(_mm256_add_pd(pp, leg_i), bound_i, _CMP_LE_OQ);

    dx = _mm256_sub_pd(pix, _mm256_loadu_pd(soa.djx + k));
    dy = _mm256_sub_pd(piy, _mm256_loadu_pd(soa.djy + k));
    const __m256d leg_j = _mm256_sqrt_pd(
        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)));
    const __m256d bound_j =
        _mm256_add_pd(_mm256_loadu_pd(soa.bound_j + k), vpad);
    const __m256d ok_j = _mm256_cmp_pd(_mm256_add_pd(pp, leg_j), bound_j, _CMP_LE_OQ);

    const int mask = _mm256_movemask_pd(_mm256_or_pd(ok_i, ok_j));
    for (int lane = 0; lane < 4; ++lane) {
      keep[k + static_cast<std::size_t>(lane)] = (mask >> lane) & 1;
    }
    kept += static_cast<std::size_t>(__builtin_popcount(static_cast<unsigned>(mask)));
  }
  for (; k < count; ++k) {
    keep[k] = cone_lane(soa, k, pad) ? 1 : 0;
    kept += keep[k];
  }
  return kept;
}

#endif  // O2O_SIMD_X86

// ----------------------------------------------------------------- NEON

#if defined(O2O_SIMD_NEON)

std::size_t pair_filter_neon(const PairLegsSoA& legs, std::size_t count, double theta,
                             double pad, std::uint8_t* keep) noexcept {
  const float64x2_t vtheta = vdupq_n_f64(theta + pad);
  const float64x2_t veps = vdupq_n_f64(kSavingEpsKm - pad);
  std::size_t kept = 0;
  std::size_t k = 0;
  for (; k + 2 <= count; k += 2) {
    const float64x2_t a = vld1q_f64(legs.a + k);
    const float64x2_t a2 = vld1q_f64(legs.a2 + k);
    const float64x2_t b = vld1q_f64(legs.b + k);
    const float64x2_t b2 = vld1q_f64(legs.b2 + k);
    const float64x2_t c = vld1q_f64(legs.c + k);
    const float64x2_t c2 = vld1q_f64(legs.c2 + k);
    const float64x2_t di = vld1q_f64(legs.direct_i + k);
    const float64x2_t dj = vld1q_f64(legs.direct_j + k);
    const float64x2_t limit = vsubq_f64(vaddq_f64(di, dj), veps);

    const float64x2_t len1 = vaddq_f64(vaddq_f64(a, b), c);
    uint64x2_t ok1 = vcltq_f64(len1, limit);
    ok1 = vandq_u64(ok1, vcleq_f64(vsubq_f64(vaddq_f64(a, b), di), vtheta));
    ok1 = vandq_u64(ok1, vcleq_f64(vsubq_f64(vaddq_f64(b, c), dj), vtheta));

    const float64x2_t len2 = vaddq_f64(vaddq_f64(a, dj), c2);
    uint64x2_t ok2 = vcltq_f64(len2, limit);
    ok2 = vandq_u64(ok2, vcleq_f64(vsubq_f64(len2, di), vtheta));

    const float64x2_t len4 = vaddq_f64(vaddq_f64(a2, di), c);
    uint64x2_t ok4 = vcltq_f64(len4, limit);
    ok4 = vandq_u64(ok4, vcleq_f64(vsubq_f64(len4, dj), vtheta));

    const float64x2_t len5 = vaddq_f64(vaddq_f64(a2, b2), c2);
    uint64x2_t ok5 = vcltq_f64(len5, limit);
    ok5 = vandq_u64(ok5, vcleq_f64(vsubq_f64(vaddq_f64(b2, c2), di), vtheta));
    ok5 = vandq_u64(ok5, vcleq_f64(vsubq_f64(vaddq_f64(a2, b2), dj), vtheta));

    const uint64x2_t ok = vorrq_u64(vorrq_u64(ok1, ok2), vorrq_u64(ok4, ok5));
    keep[k] = vgetq_lane_u64(ok, 0) ? 1 : 0;
    keep[k + 1] = vgetq_lane_u64(ok, 1) ? 1 : 0;
    kept += keep[k] + keep[k + 1];
  }
  const double theta_pad = theta + pad;
  for (; k < count; ++k) {
    keep[k] = pair_lane(legs, k, theta_pad, pad) ? 1 : 0;
    kept += keep[k];
  }
  return kept;
}

std::size_t cone_filter_neon(const ConeSoA& soa, std::size_t count, double pad,
                             std::uint8_t* keep) noexcept {
  const float64x2_t vpad = vdupq_n_f64(pad);
  std::size_t kept = 0;
  std::size_t k = 0;
  for (; k + 2 <= count; k += 2) {
    const float64x2_t pix = vld1q_f64(soa.pix + k);
    const float64x2_t piy = vld1q_f64(soa.piy + k);
    const float64x2_t pjx = vld1q_f64(soa.pjx + k);
    const float64x2_t pjy = vld1q_f64(soa.pjy + k);

    float64x2_t dx = vsubq_f64(pix, pjx);
    float64x2_t dy = vsubq_f64(piy, pjy);
    const float64x2_t pp =
        vsqrtq_f64(vaddq_f64(vmulq_f64(dx, dx), vmulq_f64(dy, dy)));

    dx = vsubq_f64(pjx, vld1q_f64(soa.dix + k));
    dy = vsubq_f64(pjy, vld1q_f64(soa.diy + k));
    const float64x2_t leg_i =
        vsqrtq_f64(vaddq_f64(vmulq_f64(dx, dx), vmulq_f64(dy, dy)));
    const float64x2_t bound_i = vaddq_f64(vld1q_f64(soa.bound_i + k), vpad);
    const uint64x2_t ok_i = vcleq_f64(vaddq_f64(pp, leg_i), bound_i);

    dx = vsubq_f64(pix, vld1q_f64(soa.djx + k));
    dy = vsubq_f64(piy, vld1q_f64(soa.djy + k));
    const float64x2_t leg_j =
        vsqrtq_f64(vaddq_f64(vmulq_f64(dx, dx), vmulq_f64(dy, dy)));
    const float64x2_t bound_j = vaddq_f64(vld1q_f64(soa.bound_j + k), vpad);
    const uint64x2_t ok_j = vcleq_f64(vaddq_f64(pp, leg_j), bound_j);

    const uint64x2_t ok = vorrq_u64(ok_i, ok_j);
    keep[k] = vgetq_lane_u64(ok, 0) ? 1 : 0;
    keep[k + 1] = vgetq_lane_u64(ok, 1) ? 1 : 0;
    kept += keep[k] + keep[k + 1];
  }
  for (; k < count; ++k) {
    keep[k] = cone_lane(soa, k, pad) ? 1 : 0;
    kept += keep[k];
  }
  return kept;
}

#endif  // O2O_SIMD_NEON

Backend detect_backend() noexcept {
#if defined(O2O_SIMD_X86)
  return __builtin_cpu_supports("avx2") ? Backend::kAvx2 : Backend::kScalar;
#elif defined(O2O_SIMD_NEON)
  return Backend::kNeon;
#else
  return Backend::kScalar;
#endif
}

}  // namespace

Backend active_backend() noexcept {
  static const Backend backend = detect_backend();
  return backend;
}

std::string_view backend_name(Backend backend) noexcept {
  switch (backend) {
    case Backend::kAvx2: return "avx2";
    case Backend::kNeon: return "neon";
    case Backend::kScalar: break;
  }
  return "scalar";
}

std::size_t pair_filter(const PairLegsSoA& legs, std::size_t count, double theta,
                        double pad, std::uint8_t* keep) noexcept {
  switch (active_backend()) {
#if defined(O2O_SIMD_X86)
    case Backend::kAvx2:
      return pair_filter_avx2(legs, count, theta, pad, keep);
#endif
#if defined(O2O_SIMD_NEON)
    case Backend::kNeon:
      return pair_filter_neon(legs, count, theta, pad, keep);
#endif
    default:
      return pair_filter_scalar(legs, count, theta, pad, keep);
  }
}

std::size_t cone_filter(const ConeSoA& soa, std::size_t count, double pad,
                        std::uint8_t* keep) noexcept {
  switch (active_backend()) {
#if defined(O2O_SIMD_X86)
    case Backend::kAvx2:
      return cone_filter_avx2(soa, count, pad, keep);
#endif
#if defined(O2O_SIMD_NEON)
    case Backend::kNeon:
      return cone_filter_neon(soa, count, pad, keep);
#endif
    default:
      return cone_filter_scalar(soa, count, pad, keep);
  }
}

}  // namespace o2o::simd
