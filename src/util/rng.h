// Deterministic pseudo-random number generation for reproducible
// simulations. Two engines are provided:
//
//  * SplitMix64  -- tiny, used for seeding and hashing-style draws.
//  * Xoshiro256pp -- the xoshiro256++ engine (Blackman & Vigna), the
//    default generator for all simulation and workload-synthesis code.
//
// Both satisfy std::uniform_random_bit_generator, so they compose with
// <random> distributions. Rng wraps xoshiro256++ with the convenience
// draws this codebase needs (uniform, normal, exponential, Poisson).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "util/contracts.h"

namespace o2o {

/// SplitMix64: a 64-bit mixer. Stateless usage via `mix`, or stateful
/// sequential generation. Primarily used to expand one seed into many.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    state_ += 0x9e3779b97f4a7c15ULL;
    return mix(state_);
  }

  /// One round of the splitmix64 output function; a good 64->64 mixer.
  static constexpr std::uint64_t mix(std::uint64_t z) noexcept {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ 1.0. Fast, 256-bit state, passes BigCrush.
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256pp(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// 2^128 jump: advances the state as if 2^128 draws were made. Used to
  /// derive non-overlapping streams for parallel components.
  void jump() noexcept {
    static constexpr std::uint64_t kJump[] = {0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
                                              0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (std::uint64_t jump : kJump) {
      for (int b = 0; b < 64; ++b) {
        if (jump & (std::uint64_t{1} << b)) {
          s0 ^= state_[0];
          s1 ^= state_[1];
          s2 ^= state_[2];
          s3 ^= state_[3];
        }
        (*this)();
      }
    }
    state_[0] = s0;
    state_[1] = s1;
    state_[2] = s2;
    state_[3] = s3;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

/// Convenience wrapper: one seeded engine plus the distribution draws the
/// simulator and workload generators need. All draws are deterministic
/// given the seed, independent of the standard library implementation
/// (we implement the transforms ourselves; see P.2 in the Core Guidelines
/// about portability -- libstdc++/libc++ disagree on distribution output).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : engine_(seed) {}

  /// A derived, statistically independent stream (for sub-components).
  Rng split() noexcept {
    Rng child = *this;
    child.engine_.jump();
    engine_();  // perturb the parent so repeated splits differ
    return child;
  }

  std::uint64_t next_u64() noexcept { return engine_(); }

  /// Uniform in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) {
    O2O_EXPECTS(lo <= hi);
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Requires n > 0. Unbiased via rejection.
  std::uint64_t uniform_index(std::uint64_t n) {
    O2O_EXPECTS(n > 0);
    const std::uint64_t limit = std::numeric_limits<std::uint64_t>::max() -
                                std::numeric_limits<std::uint64_t>::max() % n;
    std::uint64_t draw = engine_();
    while (draw >= limit) draw = engine_();
    return draw % n;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    O2O_EXPECTS(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    uniform_index(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  bool bernoulli(double p) {
    O2O_EXPECTS(p >= 0.0 && p <= 1.0);
    return uniform() < p;
  }

  /// Standard normal via Box-Muller (the spare is cached).
  double normal() noexcept {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    spare_ = radius * std::sin(theta);
    has_spare_ = true;
    return radius * std::cos(theta);
  }

  double normal(double mean, double stddev) {
    O2O_EXPECTS(stddev >= 0.0);
    return mean + stddev * normal();
  }

  /// Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double exponential(double rate) {
    O2O_EXPECTS(rate > 0.0);
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return -std::log(u) / rate;
  }

  /// Poisson draw. Knuth's method for small means, normal approximation
  /// (rounded, clamped at zero) for large means.
  std::uint64_t poisson(double mean) {
    O2O_EXPECTS(mean >= 0.0);
    if (mean == 0.0) return 0;
    if (mean > 64.0) {
      const double draw = normal(mean, std::sqrt(mean));
      return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
    }
    const double limit = std::exp(-mean);
    std::uint64_t count = 0;
    double product = uniform();
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }

  /// Fisher-Yates shuffle.
  template <typename Container>
  void shuffle(Container& items) {
    if (items.size() < 2) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      using std::swap;
      swap(items[i], items[uniform_index(i + 1)]);
    }
  }

 private:
  Xoshiro256pp engine_;
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace o2o
