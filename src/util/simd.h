// Portable SIMD kernels for the share-group enumeration hot path.
//
// Design (DESIGN.md "Group-enumeration pipeline"):
//   * The kernels are *conservative filters*, never exact evaluators: a
//     kept lane is re-checked by the scalar predicate, a rejected lane
//     carries a proof of infeasibility with `pad` kilometres of slack.
//     Bit-identity of the enumeration output therefore never depends on
//     which backend ran -- backends may legally disagree on which
//     provably-infeasible lanes they reject, but never on a feasible one.
//   * Runtime dispatch: x86-64 binaries are compiled without -mavx2; the
//     AVX2 variants carry `__attribute__((target("avx2")))` and are only
//     entered after a cpuid check. AArch64 uses baseline NEON. Everything
//     else -- and any build with -DO2O_SIMD_SCALAR_ONLY -- takes the
//     scalar loop, which is also the reference the vector paths are
//     tested against.
//   * Batches are 8 lanes wide regardless of register width (AVX2 runs
//     2x4 doubles, NEON 4x2); callers size and count batches in lanes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace o2o::simd {

enum class Backend : std::uint8_t {
  kScalar,  ///< portable loop (forced by O2O_SIMD_SCALAR_ONLY)
  kAvx2,    ///< x86-64 with AVX2 (runtime-detected)
  kNeon,    ///< aarch64 baseline
};

/// The backend the kernels below actually execute. Resolved once per
/// process (cpuid on x86-64), safe to call from any thread.
Backend active_backend() noexcept;

std::string_view backend_name(Backend backend) noexcept;

/// Lanes per kernel batch on every backend.
inline constexpr std::size_t kBatchLanes = 8;

/// Number of 8-lane batches needed for `count` lanes.
constexpr std::size_t batch_count(std::size_t count) noexcept {
  return (count + kBatchLanes - 1) / kBatchLanes;
}

/// Structure-of-arrays legs of one batch of candidate pairs (i, j). All
/// pointers hold `count` doubles. Letters follow the pooled-route legs of
/// the four non-sequential stop orders over {p_i, d_i, p_j, d_j}:
///
///   a  = D(p_i, p_j)    a2 = D(p_j, p_i)
///   b  = D(p_j, d_i)    b2 = D(p_i, d_j)
///   c  = D(d_i, d_j)    c2 = D(d_j, d_i)
///
/// plus the members' direct trips D(p, d).
struct PairLegsSoA {
  const double* a = nullptr;
  const double* a2 = nullptr;
  const double* b = nullptr;
  const double* b2 = nullptr;
  const double* c = nullptr;
  const double* c2 = nullptr;
  const double* direct_i = nullptr;
  const double* direct_j = nullptr;
};

/// Conservative pair-feasibility certificate under `require_saving`.
///
/// A pair whose optimal pooled route is *sequential* (drop one rider
/// before picking the other) can never save distance, so a feasible
/// pair's optimal route is one of the four interleaved orders:
///
///   o1: p_i p_j d_i d_j   len = a + b + c     det_i = a+b-direct_i, det_j = b+c-direct_j
///   o2: p_i p_j d_j d_i   len = a + direct_j + c2   det_i = len-direct_i, det_j = 0
///   o4: p_j p_i d_i d_j   len = a2 + direct_i + c   det_i = 0, det_j = len-direct_j
///   o5: p_j p_i d_j d_i   len = a2 + b2 + c2  det_i = b2+c2-direct_i, det_j = a2+b2-direct_j
///
/// keep[k] = 1 iff some order has len < direct_i+direct_j - 1e-9 + pad
/// and both detours <= theta + pad. With `pad` at least the summation /
/// bulk-row noise of the oracle, keep[k] == 0 proves the exact scalar
/// evaluation rejects the pair too (every interleaved order fails a
/// predicate, every sequential order fails the saving constraint).
/// Returns the number of kept lanes. `theta` may be +infinity.
std::size_t pair_filter(const PairLegsSoA& legs, std::size_t count, double theta,
                        double pad, std::uint8_t* keep) noexcept;

/// Structure-of-arrays coordinates of candidate pairs for the direction
/// ("ellipse") test. bound_i / bound_j hold direct + theta per side.
struct ConeSoA {
  const double* pix = nullptr;  ///< pick-up of i
  const double* piy = nullptr;
  const double* dix = nullptr;  ///< drop-off of i
  const double* diy = nullptr;
  const double* pjx = nullptr;  ///< pick-up of j
  const double* pjy = nullptr;
  const double* djx = nullptr;  ///< drop-off of j
  const double* djy = nullptr;
  const double* bound_i = nullptr;  ///< direct_i + theta
  const double* bound_j = nullptr;  ///< direct_j + theta
};

/// Destination-bearing cone / ellipse prune. A saving pair's optimal
/// route picks some rider first; that rider's along-route ride passes
/// the other pick-up before its own drop-off, so (for any oracle whose
/// distances dominate the Euclidean metric)
///
///   euclid(p_i, p_j) + euclid(p_j, d_i) <= direct_i + theta     (i first)
///
/// or the (j first) mirror must hold. keep[k] = 1 iff either ellipse
/// contains the other pick-up, with `pad` km of slack. Returns the
/// number of kept lanes.
std::size_t cone_filter(const ConeSoA& soa, std::size_t count, double pad,
                        std::uint8_t* keep) noexcept;

}  // namespace o2o::simd
