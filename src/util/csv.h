// Minimal RFC-4180-ish CSV support: quoted fields, embedded separators and
// quotes, header-indexed row access. Enough to ingest the public New York
// TLC and Boston taxi trace schemas and to emit report tables.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace o2o {

/// One parsed CSV record.
using CsvRow = std::vector<std::string>;

/// Parses a single CSV line. Handles double-quoted fields with embedded
/// separators, newlines already stripped, and doubled quotes ("") escapes.
CsvRow parse_csv_line(std::string_view line, char sep = ',');

/// Escapes and joins one record (quotes only when needed).
std::string format_csv_line(const CsvRow& row, char sep = ',');

/// A fully parsed CSV table with optional header-based column lookup.
class CsvTable {
 public:
  CsvTable() = default;

  /// Reads from a stream. If `has_header`, the first record names columns.
  static CsvTable read(std::istream& in, bool has_header = true, char sep = ',');
  /// Reads from a file path; throws std::runtime_error if unreadable.
  static CsvTable read_file(const std::string& path, bool has_header = true, char sep = ',');
  /// Parses an in-memory document (convenient for tests).
  static CsvTable parse(std::string_view text, bool has_header = true, char sep = ',');

  const std::vector<std::string>& header() const noexcept { return header_; }
  const std::vector<CsvRow>& rows() const noexcept { return rows_; }
  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Column index for `name`, or -1 when absent (lookup is exact-match,
  /// after trimming whitespace in the header).
  int column(std::string_view name) const noexcept;

  /// Field accessor; empty string when the row is ragged-short.
  const std::string& field(std::size_t row, int col) const;

 private:
  std::vector<std::string> header_;
  std::vector<CsvRow> rows_;
  std::unordered_map<std::string, int> column_index_;

  void build_index();
};

/// Streaming CSV writer.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out, char sep = ',') : out_(out), sep_(sep) {}
  void write_row(const CsvRow& row);

 private:
  std::ostream& out_;
  char sep_;
};

}  // namespace o2o
