// A small reusable worker pool for data-parallel loops on the dispatch
// hot path (per-request preference rows, per-unit sharing scores). The
// pool is deliberately minimal: persistent workers, a FIFO task queue,
// and a blocking parallel_for in which the calling thread participates,
// so a pool of zero workers degrades to the serial loop.
//
// parallel_for distributes indices dynamically (atomic cursor), so the
// caller must make iterations independent; determinism is the caller's
// job and is achieved by writing to disjoint, preallocated slots.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace o2o {

class ThreadPool {
 public:
  /// Spawns exactly `workers` threads (0 is valid: every parallel_for
  /// then runs inline on the calling thread).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const noexcept { return threads_.size(); }

  /// Process-wide pool sized to the hardware (cores - 1 workers, capped,
  /// so the calling thread is the remaining lane). Built on first use.
  static ThreadPool& shared();

  /// Calls body(i) for every i in [begin, end), spreading chunks of
  /// `grain` consecutive indices over the workers plus the calling
  /// thread. Blocks until the whole range is done. The first exception
  /// thrown by any iteration is rethrown on the caller after the range
  /// is abandoned.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();
  void enqueue(std::function<void()> task);

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> tasks_;
  bool stopping_ = false;
};

}  // namespace o2o
