#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace o2o {

namespace {

std::size_t default_worker_count() {
  const unsigned hardware = std::thread::hardware_concurrency();
  if (hardware <= 1) return 0;
  // Cap the shared pool: the hot loops are memory-bound well before 16
  // lanes, and the calling thread is always the extra lane.
  return std::min<std::size_t>(hardware - 1, 15);
}

}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(default_worker_count());
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                              const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const std::size_t chunks = (end - begin + grain - 1) / grain;
  const std::size_t helpers = std::min(worker_count(), chunks - 1);

  struct SharedState {
    std::atomic<std::size_t> cursor;
    std::atomic<std::size_t> active_helpers;
    std::mutex done_mutex;
    std::condition_variable done;
    std::exception_ptr error;
    std::mutex error_mutex;
  };
  auto state = std::make_shared<SharedState>();
  state->cursor.store(begin, std::memory_order_relaxed);
  state->active_helpers.store(helpers, std::memory_order_relaxed);

  // The body reference stays valid: the caller blocks below until every
  // helper has finished.
  const auto drain_range = [state, end, grain, &body] {
    try {
      for (;;) {
        const std::size_t chunk = state->cursor.fetch_add(grain, std::memory_order_relaxed);
        if (chunk >= end) return;
        const std::size_t stop = std::min(end, chunk + grain);
        for (std::size_t i = chunk; i < stop; ++i) body(i);
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(state->error_mutex);
      if (!state->error) state->error = std::current_exception();
      // Abandon the rest of the range so sibling chunks stop promptly.
      state->cursor.store(end, std::memory_order_relaxed);
    }
  };

  for (std::size_t i = 0; i < helpers; ++i) {
    enqueue([state, drain_range] {
      drain_range();
      if (state->active_helpers.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(state->done_mutex);
        state->done.notify_all();
      }
    });
  }

  drain_range();
  {
    std::unique_lock<std::mutex> lock(state->done_mutex);
    state->done.wait(lock, [&] {
      return state->active_helpers.load(std::memory_order_acquire) == 0;
    });
  }
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace o2o
