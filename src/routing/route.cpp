#include "routing/route.h"

#include <unordered_map>

#include "util/contracts.h"

namespace o2o::routing {

bool respects_precedence(const Route& route) {
  return respects_precedence(route, {});
}

bool respects_precedence(const Route& route,
                         const std::vector<trace::RequestId>& onboard) {
  std::unordered_map<trace::RequestId, int> state;  // 0 none, 1 picked, 2 dropped
  for (trace::RequestId id : onboard) state[id] = 1;
  for (const Stop& stop : route.stops) {
    int& s = state[stop.request];
    if (stop.is_pickup) {
      if (s != 0) return false;
      s = 1;
    } else {
      if (s != 1) return false;
      s = 2;
    }
  }
  return true;
}

double route_length(const Route& route, const geo::DistanceOracle& oracle) {
  if (route.stops.empty()) return 0.0;
  double total = 0.0;
  std::size_t first = 0;
  geo::Point previous;
  if (route.start.has_value()) {
    previous = *route.start;
  } else {
    previous = route.stops.front().point;
    first = 1;
  }
  for (std::size_t i = first; i < route.stops.size(); ++i) {
    total += oracle.distance(previous, route.stops[i].point);
    previous = route.stops[i].point;
  }
  return total;
}

RiderMetrics rider_metrics(const Route& route, trace::RequestId request,
                           const geo::DistanceOracle& oracle) {
  RiderMetrics metrics;
  double travelled = 0.0;
  bool seen_pickup = false;
  bool seen_dropoff = false;
  double pickup_at = 0.0;
  geo::Point previous;
  bool have_previous = false;
  if (route.start.has_value()) {
    previous = *route.start;
    have_previous = true;
  }
  for (const Stop& stop : route.stops) {
    if (have_previous) travelled += oracle.distance(previous, stop.point);
    previous = stop.point;
    have_previous = true;
    if (stop.request == request) {
      if (stop.is_pickup) {
        seen_pickup = true;
        pickup_at = travelled;
      } else {
        O2O_EXPECTS(seen_pickup);
        seen_dropoff = true;
        metrics.ride_km = travelled - pickup_at;
      }
    }
  }
  O2O_EXPECTS(seen_pickup && seen_dropoff);
  metrics.wait_km = pickup_at;
  return metrics;
}

Route single_rider_route(const trace::Request& request, std::optional<geo::Point> start) {
  Route route;
  route.start = start;
  route.stops = {Stop{request.id, true, request.pickup},
                 Stop{request.id, false, request.dropoff}};
  return route;
}

}  // namespace o2o::routing
