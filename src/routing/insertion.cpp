#include "routing/insertion.h"

#include <limits>

#include "util/contracts.h"

namespace o2o::routing {

std::optional<InsertionResult> cheapest_insertion(const Route& route,
                                                  const trace::Request& request,
                                                  const geo::DistanceOracle& oracle) {
  for (const Stop& stop : route.stops) {
    if (stop.request == request.id) return std::nullopt;
  }
  const double base_length = route_length(route, oracle);
  InsertionResult best;
  best.added_km = std::numeric_limits<double>::infinity();
  // Insert pick-up at position i and drop-off at position j (after the
  // pick-up): positions index into the stop sequence, i <= j.
  const std::size_t n = route.stops.size();
  for (std::size_t i = 0; i <= n; ++i) {
    for (std::size_t j = i; j <= n; ++j) {
      Route candidate = route;
      candidate.stops.insert(candidate.stops.begin() + static_cast<std::ptrdiff_t>(i),
                             Stop{request.id, true, request.pickup});
      candidate.stops.insert(candidate.stops.begin() + static_cast<std::ptrdiff_t>(j + 1),
                             Stop{request.id, false, request.dropoff});
      const double added = route_length(candidate, oracle) - base_length;
      if (added < best.added_km) {
        best.route = std::move(candidate);
        best.added_km = added;
        best.pickup_index = i;
        best.dropoff_index = j + 1;
      }
    }
  }
  // The input route may be a busy taxi's remainder (drop-off-only stops
  // for onboard riders), so full precedence cannot be asserted here; the
  // inserted pair's ordering is guaranteed by construction.
  O2O_ENSURES(best.pickup_index < best.dropoff_index);
  return best;
}

}  // namespace o2o::routing
