// Cheapest-insertion of one request into an existing route: the primitive
// behind the SARP baseline [8] (TSP-style insertion with minimum extra
// travel distance) and the RAII baseline's candidate evaluation [7].
#pragma once

#include <optional>

#include "geo/distance_oracle.h"
#include "routing/route.h"
#include "trace/request.h"

namespace o2o::routing {

struct InsertionResult {
  Route route;            ///< route with the request inserted
  double added_km = 0.0;  ///< length increase over the input route
  std::size_t pickup_index = 0;   ///< position of the new pick-up stop
  std::size_t dropoff_index = 0;  ///< position of the new drop-off stop
};

/// Tries every (pickup, dropoff) position pair with pickup before dropoff
/// and returns the cheapest. Nullopt only when the request id already
/// appears on the route.
std::optional<InsertionResult> cheapest_insertion(const Route& route,
                                                  const trace::Request& request,
                                                  const geo::DistanceOracle& oracle);

}  // namespace o2o::routing
