#include "routing/optimizer.h"

#include <algorithm>
#include <limits>
#include <span>
#include <vector>

#include "util/contracts.h"

namespace o2o::routing {

namespace {

void stops_into(std::span<const trace::Request> riders, std::vector<Stop>& stops) {
  stops.clear();
  stops.reserve(riders.size() * 2);
  for (const trace::Request& r : riders) {
    stops.push_back(Stop{r.id, true, r.pickup});    // index 2i
    stops.push_back(Stop{r.id, false, r.dropoff});  // index 2i + 1
  }
}

std::vector<Stop> stops_of(std::span<const trace::Request> riders) {
  std::vector<Stop> stops;
  stops_into(riders, stops);
  return stops;
}

void points_into(const std::vector<Stop>& stops, std::vector<geo::Point>& points) {
  points.clear();
  points.reserve(stops.size());
  for (const Stop& s : stops) points.push_back(s.point);
}

std::vector<geo::Point> points_of(const std::vector<Stop>& stops) {
  std::vector<geo::Point> points;
  points_into(stops, points);
  return points;
}

/// n x n stop-to-stop table built row-wise through the bulk oracle API —
/// one Dijkstra tree per row on the network oracle instead of n pointwise
/// resolutions, written straight into `table` (n * n doubles). The
/// diagonal is pinned to 0: a bulk row *does* price source->source (twice
/// the snap gap on network oracles), which the old pointwise loop never
/// asked for.
void stop_rows_into(std::span<const geo::Point> points, const geo::DistanceOracle& oracle,
                    double* table) {
  const std::size_t n = points.size();
  for (std::size_t i = 0; i < n; ++i) {
    oracle.distances_from_into(points[i], points, table + i * n);
    table[i * n + i] = 0.0;
  }
}

std::vector<double> stop_rows(std::span<const geo::Point> points,
                              const geo::DistanceOracle& oracle) {
  std::vector<double> table(points.size() * points.size(), 0.0);
  stop_rows_into(points, oracle, table.data());
  return table;
}

/// Non-owning view the search runs on, so repeated-anchor callers can
/// pair a shared stop table with a per-call start row (no table copy).
struct DistanceView {
  const double* stop_to_stop;   // n x n
  const double* start_to_stop;  // n, nullptr when unanchored
  std::size_t n = 0;

  double leading(std::size_t first_stop) const {
    return start_to_stop == nullptr ? 0.0 : start_to_stop[first_stop];
  }
};

/// Pairwise distances among stops (and from the start when present).
struct DistanceTable {
  std::vector<double> stop_to_stop;  // n x n
  std::vector<double> start_to_stop; // n (empty when no start)
  std::size_t n = 0;

  DistanceTable(const std::vector<Stop>& stops, const geo::DistanceOracle& oracle,
                const std::optional<geo::Point>& start)
      : n(stops.size()) {
    const std::vector<geo::Point> points = points_of(stops);
    stop_to_stop = stop_rows(points, oracle);
    if (start.has_value()) start_to_stop = oracle.distances_from(*start, points);
  }

  DistanceView view() const {
    return DistanceView{stop_to_stop.data(),
                        start_to_stop.empty() ? nullptr : start_to_stop.data(), n};
  }
};

/// Branch-and-bound over precedence-feasible stop orders. Search state
/// lives in caller-owned vectors so hot paths can reuse one set of
/// buffers across candidates; the recursion (and hence the first-found
/// tie-breaking among equal-length orders) is unchanged.
struct ExhaustiveSearch {
  std::size_t stop_count;
  DistanceView distances;
  std::vector<std::size_t>& order;
  std::vector<bool>& used;
  std::vector<std::size_t>& best_order;
  double best_length = std::numeric_limits<double>::infinity();

  void recurse(double length_so_far) {
    if (length_so_far >= best_length) return;  // prune
    if (order.size() == stop_count) {
      best_length = length_so_far;
      best_order = order;
      return;
    }
    for (std::size_t s = 0; s < stop_count; ++s) {
      if (used[s]) continue;
      // Drop-off (odd index) requires its pick-up (s - 1) already placed.
      if (s % 2 == 1 && !used[s - 1]) continue;
      const double leg = order.empty() ? distances.leading(s)
                                       : distances.stop_to_stop[order.back() * distances.n + s];
      used[s] = true;
      order.push_back(s);
      recurse(length_so_far + leg);
      order.pop_back();
      used[s] = false;
    }
  }
};

Route route_from_order(const std::vector<Stop>& stops, const std::vector<std::size_t>& order,
                       const std::optional<geo::Point>& start) {
  Route route;
  route.start = start;
  route.stops.reserve(order.size());
  for (std::size_t s : order) route.stops.push_back(stops[s]);
  return route;
}

}  // namespace

Route optimal_route_exhaustive(std::span<const trace::Request> riders,
                               const geo::DistanceOracle& oracle,
                               std::optional<geo::Point> start) {
  RouteScratch scratch;
  return optimal_route_exhaustive(riders, oracle, start, scratch);
}

Route optimal_route_exhaustive(std::span<const trace::Request> riders,
                               const geo::DistanceOracle& oracle,
                               std::optional<geo::Point> start, RouteScratch& scratch) {
  O2O_EXPECTS(riders.size() >= 1 && riders.size() <= 4);
  stops_into(riders, scratch.stops);
  points_into(scratch.stops, scratch.points);
  const std::size_t n = scratch.stops.size();
  scratch.stop_table.resize(n * n);
  stop_rows_into(scratch.points, oracle, scratch.stop_table.data());
  const double* start_row = nullptr;
  if (start.has_value()) {
    scratch.start_row.resize(n);
    oracle.distances_from_into(*start, scratch.points, scratch.start_row.data());
    start_row = scratch.start_row.data();
  }
  scratch.order.clear();
  scratch.order.reserve(n);
  scratch.best_order.clear();
  scratch.used.assign(n, false);
  ExhaustiveSearch search{n, DistanceView{scratch.stop_table.data(), start_row, n},
                          scratch.order, scratch.used, scratch.best_order,
                          std::numeric_limits<double>::infinity()};
  search.recurse(0.0);
  Route route = route_from_order(scratch.stops, scratch.best_order, start);
  O2O_ENSURES(respects_precedence(route));
  return route;
}

Route optimal_route_dp(std::span<const trace::Request> riders,
                       const geo::DistanceOracle& oracle, std::optional<geo::Point> start) {
  O2O_EXPECTS(riders.size() >= 1 && riders.size() <= 8);
  const std::vector<Stop> stops = stops_of(riders);
  const DistanceTable table(stops, oracle, start);
  const DistanceView distances = table.view();
  const std::size_t n = stops.size();
  const std::size_t masks = std::size_t{1} << n;
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // dp[mask][last]: min length of a precedence-feasible partial route
  // visiting exactly `mask`, ending at stop `last`.
  std::vector<double> dp(masks * n, kInf);
  std::vector<int> parent(masks * n, -1);

  for (std::size_t s = 0; s < n; ++s) {
    if (s % 2 == 1) continue;  // cannot start with a drop-off
    dp[(std::size_t{1} << s) * n + s] = distances.leading(s);
  }
  for (std::size_t mask = 1; mask < masks; ++mask) {
    for (std::size_t last = 0; last < n; ++last) {
      const double length = dp[mask * n + last];
      if (length == kInf) continue;
      for (std::size_t next = 0; next < n; ++next) {
        if (mask & (std::size_t{1} << next)) continue;
        if (next % 2 == 1 && !(mask & (std::size_t{1} << (next - 1)))) continue;
        const std::size_t new_mask = mask | (std::size_t{1} << next);
        const double candidate = length + distances.stop_to_stop[last * n + next];
        if (candidate < dp[new_mask * n + next]) {
          dp[new_mask * n + next] = candidate;
          parent[new_mask * n + next] = static_cast<int>(last);
        }
      }
    }
  }

  const std::size_t full = masks - 1;
  std::size_t best_last = 0;
  double best_length = kInf;
  for (std::size_t last = 0; last < n; ++last) {
    if (dp[full * n + last] < best_length) {
      best_length = dp[full * n + last];
      best_last = last;
    }
  }
  O2O_ENSURES(best_length < kInf);

  std::vector<std::size_t> order(n);
  std::size_t mask = full;
  std::size_t at = best_last;
  for (std::size_t i = n; i-- > 0;) {
    order[i] = at;
    const int prev = parent[mask * n + at];
    mask ^= (std::size_t{1} << at);
    if (prev < 0) break;
    at = static_cast<std::size_t>(prev);
  }
  Route route = route_from_order(stops, order, start);
  O2O_ENSURES(respects_precedence(route));
  return route;
}

Route optimal_route(std::span<const trace::Request> riders, const geo::DistanceOracle& oracle,
                    std::optional<geo::Point> start) {
  O2O_EXPECTS(!riders.empty());
  if (riders.size() <= 3) return optimal_route_exhaustive(riders, oracle, start);
  return optimal_route_dp(riders, oracle, start);
}

Route optimal_route(std::span<const trace::Request> riders, const geo::DistanceOracle& oracle,
                    std::optional<geo::Point> start, RouteScratch& scratch) {
  O2O_EXPECTS(!riders.empty());
  if (riders.size() <= 3) return optimal_route_exhaustive(riders, oracle, start, scratch);
  return optimal_route_dp(riders, oracle, start);
}

AnchoredRouteSolver::AnchoredRouteSolver(std::vector<trace::Request> riders,
                                         const geo::DistanceOracle& oracle)
    : riders_(std::move(riders)), oracle_(oracle) {
  O2O_EXPECTS(!riders_.empty() && riders_.size() <= 4);
  stops_ = stops_of(riders_);
  points_ = points_of(stops_);
  stop_table_ = stop_rows(points_, oracle);
}

std::vector<std::size_t> AnchoredRouteSolver::solve(const geo::Point& start,
                                                    double& length_out) const {
  const std::size_t n = stops_.size();
  // Per-call state is just the anchor row; the shared stop table is
  // referenced in place (one bulk query, no n x n copy per candidate).
  const std::vector<double> start_row = oracle_.distances_from(start, points_);
  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<bool> used(n, false);
  std::vector<std::size_t> best_order;
  ExhaustiveSearch search{n, DistanceView{stop_table_.data(), start_row.data(), n},
                          order, used, best_order,
                          std::numeric_limits<double>::infinity()};
  search.recurse(0.0);
  length_out = search.best_length;
  return best_order;
}

Route AnchoredRouteSolver::best_route(const geo::Point& start) const {
  double length = 0.0;
  const std::vector<std::size_t> order = solve(start, length);
  Route route = route_from_order(stops_, order, start);
  O2O_ENSURES(respects_precedence(route));
  return route;
}

double AnchoredRouteSolver::best_length(const geo::Point& start) const {
  double length = 0.0;
  (void)solve(start, length);
  return length;
}

long long feasible_order_count(int riders) {
  O2O_EXPECTS(riders >= 0 && riders <= 10);
  long long count = 1;
  for (int i = 1; i <= 2 * riders; ++i) count *= i;
  for (int i = 0; i < riders; ++i) count /= 2;
  return count;
}

}  // namespace o2o::routing
