// Optimal shared-route construction. Theorem 5 shows the general problem
// is NP-hard (reduction from shortest Hamiltonian path); the paper's
// practical regime is |c_k| <= 3 riders, where the at most
// 6!/(2!2!2!) = 90 precedence-feasible stop orders are searched
// exhaustively. We implement that exhaustive search for small groups and
// a Held-Karp dynamic program over (visited-set, last-stop) states --
// exact for any size, practical to ~8 riders -- used as the reference in
// tests and for the extension benchmarks.
#pragma once

#include <optional>
#include <span>

#include "geo/distance_oracle.h"
#include "routing/route.h"
#include "trace/request.h"

namespace o2o::routing {

/// Reusable buffers for the exhaustive solver. Hot loops (the share-group
/// enumeration engine evaluates tens of thousands of candidate groups per
/// frame) keep one per worker thread so route construction allocates
/// nothing beyond the returned Route once the buffers have grown. The
/// scratch overloads run the exact same table build and search as the
/// scratch-free ones — identical distances, identical tie-breaking,
/// bit-identical routes.
struct RouteScratch {
  std::vector<Stop> stops;
  std::vector<geo::Point> points;    // stop coordinates, bulk-query shape
  std::vector<double> stop_table;    // stop-to-stop, n x n
  std::vector<double> start_row;     // anchor legs (used when start is set)
  std::vector<std::size_t> order;    // search state
  std::vector<std::size_t> best_order;
  std::vector<bool> used;
};

/// Exact minimum-length route over `riders` (pick-up before drop-off per
/// rider), optionally anchored at a taxi position. Uses brute-force
/// permutation search; requires riders.size() <= 4 (90 orders at 3,
/// 2520 at 4).
Route optimal_route_exhaustive(std::span<const trace::Request> riders,
                               const geo::DistanceOracle& oracle,
                               std::optional<geo::Point> start = std::nullopt);

/// Allocation-free variant reusing `scratch` across calls.
Route optimal_route_exhaustive(std::span<const trace::Request> riders,
                               const geo::DistanceOracle& oracle,
                               std::optional<geo::Point> start, RouteScratch& scratch);

/// Exact minimum-length route via Held-Karp DP with precedence masks;
/// requires riders.size() <= 8 (2^16 x 16 states).
Route optimal_route_dp(std::span<const trace::Request> riders,
                       const geo::DistanceOracle& oracle,
                       std::optional<geo::Point> start = std::nullopt);

/// Dispatches to the exhaustive search for <= 3 riders (the paper's
/// regime) and to the DP above that.
Route optimal_route(std::span<const trace::Request> riders,
                    const geo::DistanceOracle& oracle,
                    std::optional<geo::Point> start = std::nullopt);

/// Dispatching variant with scratch reuse (the DP branch, taken only
/// above 3 riders, still allocates its own state).
Route optimal_route(std::span<const trace::Request> riders,
                    const geo::DistanceOracle& oracle,
                    std::optional<geo::Point> start, RouteScratch& scratch);

/// Number of precedence-feasible stop orders for k riders: (2k)! / 2^k.
/// (The paper's "90" for k = 3.)
long long feasible_order_count(int riders);

/// Repeated-anchor optimal routing: the sharing dispatcher evaluates the
/// same rider group against every candidate taxi, so the stop-to-stop
/// distance table is computed once here and only the anchor legs vary
/// per query. Exact (exhaustive) for <= 4 riders.
class AnchoredRouteSolver {
 public:
  AnchoredRouteSolver(std::vector<trace::Request> riders, const geo::DistanceOracle& oracle);

  /// Minimum-length route starting from `start`.
  Route best_route(const geo::Point& start) const;
  /// Length of best_route(start) without materializing the route.
  double best_length(const geo::Point& start) const;

  std::size_t rider_count() const noexcept { return riders_.size(); }

 private:
  std::vector<trace::Request> riders_;
  std::vector<Stop> stops_;
  std::vector<geo::Point> points_;  // stop coordinates, bulk-query shape
  std::vector<double> stop_table_;  // stop-to-stop, n x n (built once)
  const geo::DistanceOracle& oracle_;

  std::vector<std::size_t> solve(const geo::Point& start, double& length_out) const;
};

}  // namespace o2o::routing
