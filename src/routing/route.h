// Shared-ride routes: ordered pick-up / drop-off stop sequences with the
// pickup-before-dropoff precedence the paper's Theorem 5 is about. The
// per-rider distances extracted here are exactly the D_ck(...) terms of
// the sharing preference model:
//
//   D_ck(t, r.s)   -- along-route distance from the taxi to r's pick-up,
//   D_ck(r.s, r.d) -- along-route distance from r's pick-up to drop-off,
//   D_ck(t)        -- total route length driven by the taxi.
#pragma once

#include <optional>
#include <vector>

#include "geo/distance_oracle.h"
#include "geo/point.h"
#include "trace/request.h"

namespace o2o::routing {

struct Stop {
  trace::RequestId request = trace::kInvalidRequest;
  bool is_pickup = true;
  geo::Point point;

  friend bool operator==(const Stop& a, const Stop& b) noexcept {
    return a.request == b.request && a.is_pickup == b.is_pickup && a.point == b.point;
  }
};

/// An ordered stop sequence, optionally anchored at a taxi start point.
struct Route {
  std::optional<geo::Point> start;
  std::vector<Stop> stops;

  bool empty() const noexcept { return stops.empty(); }
  std::size_t stop_count() const noexcept { return stops.size(); }
};

/// Per-rider along-route distances.
struct RiderMetrics {
  double wait_km = 0.0;  ///< D_ck(t, r.s): start (or first stop) -> pick-up
  double ride_km = 0.0;  ///< D_ck(r.s, r.d): pick-up -> drop-off along route
};

/// True iff every request's pick-up precedes its drop-off and each stop
/// appears at most once per (request, kind).
bool respects_precedence(const Route& route);

/// Like respects_precedence, but requests in `onboard` are already picked
/// up (their drop-off may appear with no pick-up). This is the correct
/// check for the *remaining* route of a busy taxi.
bool respects_precedence(const Route& route,
                         const std::vector<trace::RequestId>& onboard);

/// Total driven length: start -> stop1 -> ... -> stopN.
double route_length(const Route& route, const geo::DistanceOracle& oracle);

/// Along-route distances for `request`; both stops must be on the route.
RiderMetrics rider_metrics(const Route& route, trace::RequestId request,
                           const geo::DistanceOracle& oracle);

/// Builds the trivial one-rider route (pickup then dropoff).
Route single_rider_route(const trace::Request& request,
                         std::optional<geo::Point> start = std::nullopt);

}  // namespace o2o::routing
