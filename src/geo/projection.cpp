#include "geo/projection.h"

#include <cmath>

namespace o2o::geo {

namespace {
constexpr double kPi = 3.14159265358979323846;
constexpr double degrees_to_radians(double degrees) noexcept { return degrees * kPi / 180.0; }
}  // namespace

Projection::Projection(LatLon reference) noexcept : reference_(reference) {
  km_per_degree_lat_ = kEarthRadiusKm * kPi / 180.0;
  km_per_degree_lon_ = km_per_degree_lat_ * std::cos(degrees_to_radians(reference.lat));
}

Point Projection::to_plane(LatLon coordinate) const noexcept {
  return {(coordinate.lon - reference_.lon) * km_per_degree_lon_,
          (coordinate.lat - reference_.lat) * km_per_degree_lat_};
}

LatLon Projection::to_latlon(Point p) const noexcept {
  return {reference_.lat + p.y / km_per_degree_lat_,
          reference_.lon + p.x / km_per_degree_lon_};
}

}  // namespace o2o::geo
