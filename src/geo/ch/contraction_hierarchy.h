// Contraction hierarchies (Geisberger et al.) over a RoadNetwork: a
// preprocessing pass orders the nodes bottom-up by edge difference and
// inserts shortcuts, after which an s-t query is a pair of tiny *upward*
// Dijkstra searches instead of a city-wide one -- microseconds on graphs
// where a full Dijkstra tree costs milliseconds. The upward search space
// of a node is small and reusable, which is what makes the bucket-style
// many-to-many rows of CHOracle (ch_oracle.h) cheap: one search per
// endpoint per frame, merged per row.
//
// The preprocessed structure serializes to/from a binary `.o2och`
// artifact stamped with the source graph's fingerprint, so city-scale
// preprocessing is paid once per imported graph, not once per run.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "geo/road_network.h"

namespace o2o::geo {

/// A preprocessed contraction hierarchy: the contraction order plus the
/// two upward search graphs (original edges and shortcuts whose head
/// outranks their tail). Immutable once built/loaded; every const query
/// touches only local state and is safe to call concurrently.
class ContractionHierarchy {
 public:
  struct BuildOptions {
    /// A witness search settles at most this many nodes. An exhausted
    /// search conservatively inserts the shortcut, so the limit trades
    /// preprocessing time and hierarchy size against nothing else --
    /// query results stay exact. 256 keeps spurious shortcuts rare
    /// (sub-100-node pruned search spaces on city-scale grids) at a
    /// preprocessing cost within noise of smaller limits.
    std::size_t witness_settle_limit = 256;

    friend bool operator==(const BuildOptions&, const BuildOptions&) = default;
  };

  /// One settled node of an upward search: `distance` is the length of
  /// the best upward path from (or, backward, to) the search root.
  struct SpaceEntry {
    NodeId node = kInvalidNode;
    double distance = 0.0;

    friend bool operator==(const SpaceEntry&, const SpaceEntry&) = default;
  };
  /// A whole upward search space, sorted by node id (deterministic merge
  /// order for the many-to-many joins).
  using SearchSpace = std::vector<SpaceEntry>;

  /// Preprocesses `network`: bottom-up node ordering by edge difference
  /// (+ contracted-neighbour tie-breaking, lazy priority updates) with
  /// bounded witness searches deciding shortcut insertion.
  static ContractionHierarchy build(const RoadNetwork& network, BuildOptions options);
  static ContractionHierarchy build(const RoadNetwork& network) {
    return build(network, BuildOptions{});
  }

  /// Exact shortest-path length over the original directed graph
  /// (bidirectional upward search); +inf when unreachable. Values match
  /// RoadNetwork::shortest_path exactly on integer weights and up to
  /// floating-point summation order on float weights (the shortcut
  /// weight pre-aggregates path segments; see DESIGN.md "Distance
  /// backends" for the ulp policy).
  double query(NodeId source, NodeId target) const;

  /// The upward search space of `node`: forward (toward targets) when
  /// `backward` is false, reverse (toward sources) when true. The rows
  /// of ch_oracle.h cache these per frame and merge them per query.
  SearchSpace search_space(NodeId node, bool backward) const;

  // --- artifact serialization (.o2och) ---------------------------------
  /// Binary format: magic + version + graph fingerprint + rank array +
  /// both upward CSR graphs, all little-endian plain-old-data.
  void save(std::ostream& out) const;
  /// Loads an artifact. `expected_fingerprint` != 0 additionally pins
  /// the artifact to a specific source graph; a magic/version/
  /// fingerprint mismatch or truncated stream throws ContractViolation.
  static ContractionHierarchy load(std::istream& in,
                                   std::uint64_t expected_fingerprint = 0);
  bool save_file(const std::string& path) const;
  /// Returns an empty optional-like signal via throwing; use
  /// try_load_file for the non-throwing "stale artifact" path.
  static ContractionHierarchy load_file(const std::string& path,
                                        std::uint64_t expected_fingerprint = 0);

  // --- introspection ---------------------------------------------------
  std::size_t node_count() const noexcept { return rank_.size(); }
  /// Upward edges, forward + backward (original edges appear once in
  /// each direction; shortcuts likewise).
  std::size_t upward_edge_count() const noexcept {
    return fwd_edges_to_.size() + bwd_edges_to_.size();
  }
  std::size_t shortcut_count() const noexcept { return shortcut_count_; }
  /// Fingerprint of the RoadNetwork this hierarchy was built from.
  std::uint64_t graph_fingerprint() const noexcept { return fingerprint_; }
  /// Contraction order of `node` (0 = contracted first / least
  /// important).
  std::uint32_t rank(NodeId node) const { return rank_[static_cast<std::size_t>(node)]; }

 private:
  ContractionHierarchy() = default;

  // Upward graphs in CSR form. `fwd` holds edges u -> v (original
  // direction) with rank(v) > rank(u); `bwd` holds reverse-graph edges
  // u -> v (v -> u originally) with rank(v) > rank(u).
  std::vector<std::uint32_t> rank_;
  std::vector<std::uint32_t> fwd_offsets_;  // size n+1
  std::vector<std::uint32_t> bwd_offsets_;  // size n+1
  std::vector<NodeId> fwd_edges_to_;
  std::vector<double> fwd_edges_weight_;
  std::vector<NodeId> bwd_edges_to_;
  std::vector<double> bwd_edges_weight_;
  std::size_t shortcut_count_ = 0;
  std::uint64_t fingerprint_ = 0;
};

}  // namespace o2o::geo
