#include "geo/ch/contraction_hierarchy.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <queue>
#include <unordered_map>
#include <utility>

#include "util/contracts.h"

namespace o2o::geo {

namespace {

/// Mutable adjacency during contraction. Parallel edges are kept
/// deduplicated to the minimum weight (distances are unchanged and the
/// witness searches stay small).
struct DynEdge {
  NodeId to = kInvalidNode;
  double weight = 0.0;
};

using DynGraph = std::vector<std::vector<DynEdge>>;

/// Inserts u -> v with `weight`, keeping the minimum over parallel
/// edges. Returns true when the edge is new (not an update).
bool add_edge_min(DynGraph& graph, NodeId from, NodeId to, double weight) {
  for (DynEdge& edge : graph[static_cast<std::size_t>(from)]) {
    if (edge.to == to) {
      if (weight < edge.weight) edge.weight = weight;
      return false;
    }
  }
  graph[static_cast<std::size_t>(from)].push_back(DynEdge{to, weight});
  return true;
}

/// Bounded Dijkstra used for witness searches, with stamped labels so
/// consecutive searches skip the O(n) reinitialization. Labels are true
/// path lengths, so `distance(w) <= shortcut` certifies a witness even
/// when the search stopped before settling w exactly.
class WitnessSearch {
 public:
  explicit WitnessSearch(std::size_t n) : dist_(n, 0.0), stamp_(n, 0) {}

  void run(const DynGraph& graph, const std::vector<char>& contracted, NodeId source,
           NodeId excluded, double limit, std::size_t settle_limit) {
    ++round_;
    frontier_ = {};
    label(source, 0.0);
    frontier_.emplace(0.0, source);
    std::size_t settled = 0;
    while (!frontier_.empty()) {
      const auto [d, node] = frontier_.top();
      if (d > limit || settled >= settle_limit) break;
      frontier_.pop();
      if (d > distance(node)) continue;  // stale heap entry
      ++settled;
      for (const DynEdge& edge : graph[static_cast<std::size_t>(node)]) {
        if (edge.to == excluded || contracted[static_cast<std::size_t>(edge.to)] != 0) {
          continue;
        }
        const double candidate = d + edge.weight;
        if (candidate < distance(edge.to)) {
          label(edge.to, candidate);
          frontier_.emplace(candidate, edge.to);
        }
      }
    }
  }

  double distance(NodeId node) const {
    return stamp_[static_cast<std::size_t>(node)] == round_
               ? dist_[static_cast<std::size_t>(node)]
               : kInfiniteDistance;
  }

 private:
  void label(NodeId node, double d) {
    dist_[static_cast<std::size_t>(node)] = d;
    stamp_[static_cast<std::size_t>(node)] = round_;
  }

  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> frontier_;
  std::vector<double> dist_;
  std::vector<std::uint64_t> stamp_;
  std::uint64_t round_ = 0;
};

/// Shared contraction pass: iterates the (u, w) pairs around `v` that
/// need a shortcut and hands each to `emit`. Used both to price a node
/// (count only) and to actually contract it (insert).
template <typename Emit>
void for_each_needed_shortcut(const DynGraph& fwd, const DynGraph& bwd,
                              const std::vector<char>& contracted, WitnessSearch& witness,
                              NodeId v, std::size_t settle_limit, Emit&& emit) {
  const auto& in_edges = bwd[static_cast<std::size_t>(v)];
  const auto& out_edges = fwd[static_cast<std::size_t>(v)];
  for (const DynEdge& in : in_edges) {
    const NodeId u = in.to;
    if (u == v || contracted[static_cast<std::size_t>(u)] != 0) continue;
    double max_out = -1.0;
    for (const DynEdge& out : out_edges) {
      if (out.to == v || out.to == u || contracted[static_cast<std::size_t>(out.to)] != 0) {
        continue;
      }
      max_out = std::max(max_out, out.weight);
    }
    if (max_out < 0.0) continue;  // no out-neighbour to bridge to
    witness.run(fwd, contracted, u, v, in.weight + max_out, settle_limit);
    for (const DynEdge& out : out_edges) {
      const NodeId w = out.to;
      if (w == v || w == u || contracted[static_cast<std::size_t>(w)] != 0) continue;
      const double via = in.weight + out.weight;
      if (witness.distance(w) <= via) continue;  // a real path avoids v
      emit(u, w, via);
    }
  }
}

/// Lazy-update priority: edge difference (shortcuts the contraction would
/// add minus edges it removes) plus the deleted-neighbour term that
/// spreads contraction evenly across the graph.
int node_priority(const DynGraph& fwd, const DynGraph& bwd,
                  const std::vector<char>& contracted, WitnessSearch& witness, NodeId v,
                  std::size_t settle_limit, const std::vector<int>& deleted_neighbours) {
  int shortcuts = 0;
  for_each_needed_shortcut(fwd, bwd, contracted, witness, v, settle_limit,
                           [&shortcuts](NodeId, NodeId, double) { ++shortcuts; });
  int removed = 0;
  for (const DynEdge& edge : fwd[static_cast<std::size_t>(v)]) {
    if (edge.to != v && contracted[static_cast<std::size_t>(edge.to)] == 0) ++removed;
  }
  for (const DynEdge& edge : bwd[static_cast<std::size_t>(v)]) {
    if (edge.to != v && contracted[static_cast<std::size_t>(edge.to)] == 0) ++removed;
  }
  return 2 * (shortcuts - removed) + deleted_neighbours[static_cast<std::size_t>(v)];
}

/// Reusable scratch for upward searches: a full-size stamped distance
/// array plus the list of touched nodes, so one search costs O(space
/// size) heap work with O(1) array label probes -- no hashing on the
/// query path. Thread-local (queries are concurrent), lazily sized to
/// the largest hierarchy the thread has served.
struct UpwardScratch {
  std::vector<double> dist;
  std::vector<std::uint32_t> stamp;
  std::vector<std::uint32_t> stall_stamp;
  std::vector<NodeId> touched;
  std::uint32_t current = 0;

  void begin(std::size_t nodes) {
    if (dist.size() < nodes) {
      dist.resize(nodes);
      stamp.resize(nodes, 0);
      stall_stamp.resize(nodes, 0);
    }
    if (++current == 0) {  // stamp wrapped: invalidate everything once
      std::fill(stamp.begin(), stamp.end(), 0);
      std::fill(stall_stamp.begin(), stall_stamp.end(), 0);
      current = 1;
    }
    touched.clear();
  }

  bool labelled(NodeId node) const {
    return stamp[static_cast<std::size_t>(node)] == current;
  }

  bool stalled(NodeId node) const {
    return stall_stamp[static_cast<std::size_t>(node)] == current;
  }
};

thread_local UpwardScratch forward_scratch;
thread_local UpwardScratch backward_scratch;

/// Read-only view of one CSR direction of the hierarchy.
struct CsrView {
  const std::vector<std::uint32_t>& offsets;
  const std::vector<NodeId>& edges_to;
  const std::vector<double>& edges_weight;
};

/// Upward Dijkstra over a CSR graph, run to exhaustion (upward search
/// spaces are tiny), with stall-on-demand: a node whose label a
/// higher-ranked *opposite-direction* upward edge can undercut lies on
/// no shortest up-down path, so its edges are not relaxed and it is
/// marked stalled (excluded from extracted search spaces). The apex of
/// a shortest path always carries its true distance and therefore never
/// stalls, so queries and space joins stay exact. Afterwards
/// scratch.touched lists the settled nodes and scratch.dist their final
/// labels.
void upward_search(const CsrView& up, const CsrView& opposite, NodeId source,
                   UpwardScratch& scratch) {
  scratch.begin(up.offsets.size() - 1);
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> frontier;
  scratch.dist[static_cast<std::size_t>(source)] = 0.0;
  scratch.stamp[static_cast<std::size_t>(source)] = scratch.current;
  scratch.touched.push_back(source);
  frontier.emplace(0.0, source);
  while (!frontier.empty()) {
    const auto [d, node] = frontier.top();
    frontier.pop();
    if (d > scratch.dist[static_cast<std::size_t>(node)]) continue;
    // Lazy deletion pops each node at its final (smallest) label first;
    // later, larger copies are skipped above. So the stall decision made
    // here is the node's final state.
    bool stall = false;
    const std::uint32_t stall_begin = opposite.offsets[static_cast<std::size_t>(node)];
    const std::uint32_t stall_end = opposite.offsets[static_cast<std::size_t>(node) + 1];
    for (std::uint32_t i = stall_begin; i < stall_end; ++i) {
      const NodeId via = opposite.edges_to[i];
      if (scratch.labelled(via) &&
          scratch.dist[static_cast<std::size_t>(via)] + opposite.edges_weight[i] < d) {
        stall = true;
        break;
      }
    }
    if (stall) {
      scratch.stall_stamp[static_cast<std::size_t>(node)] = scratch.current;
      continue;
    }
    const std::uint32_t begin = up.offsets[static_cast<std::size_t>(node)];
    const std::uint32_t end = up.offsets[static_cast<std::size_t>(node) + 1];
    for (std::uint32_t i = begin; i < end; ++i) {
      const NodeId to = up.edges_to[i];
      const double candidate = d + up.edges_weight[i];
      if (scratch.labelled(to)) {
        if (candidate >= scratch.dist[static_cast<std::size_t>(to)]) continue;
      } else {
        scratch.stamp[static_cast<std::size_t>(to)] = scratch.current;
        scratch.touched.push_back(to);
      }
      scratch.dist[static_cast<std::size_t>(to)] = candidate;
      frontier.emplace(candidate, to);
    }
  }
}

// --- binary artifact helpers ----------------------------------------------

constexpr std::uint64_t kMagic = 0x31305F48434F324FULL;  // "O2OCH_01" little-endian
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
void write_vec(std::ostream& out, const std::vector<T>& values) {
  write_pod(out, static_cast<std::uint64_t>(values.size()));
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(T)));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  O2O_EXPECTS(in.good());
  return value;
}

template <typename T>
std::vector<T> read_vec(std::istream& in) {
  const std::uint64_t count = read_pod<std::uint64_t>(in);
  // Refuse absurd counts before allocating (a corrupt header must not
  // become a bad_alloc).
  O2O_EXPECTS(count <= (std::uint64_t{1} << 32));
  std::vector<T> values(static_cast<std::size_t>(count));
  in.read(reinterpret_cast<char*>(values.data()),
          static_cast<std::streamsize>(values.size() * sizeof(T)));
  O2O_EXPECTS(in.good() || (values.empty() && !in.bad()));
  return values;
}

}  // namespace

ContractionHierarchy ContractionHierarchy::build(const RoadNetwork& network,
                                                 BuildOptions options) {
  O2O_EXPECTS(network.node_count() > 0);
  O2O_EXPECTS(network.node_count() <= static_cast<std::size_t>(
                                          std::numeric_limits<NodeId>::max()));
  O2O_EXPECTS(options.witness_settle_limit >= 1);
  const std::size_t n = network.node_count();

  // Dynamic graph, parallel edges deduplicated to the minimum weight.
  DynGraph fwd(n);
  DynGraph bwd(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (const RoadNetwork::Edge& edge : network.edges_from(static_cast<NodeId>(u))) {
      if (edge.to == static_cast<NodeId>(u)) continue;  // self-loops never help
      if (add_edge_min(fwd, static_cast<NodeId>(u), edge.to, edge.length_km)) {
        add_edge_min(bwd, edge.to, static_cast<NodeId>(u), edge.length_km);
      } else {
        add_edge_min(bwd, edge.to, static_cast<NodeId>(u), edge.length_km);
      }
    }
  }

  std::vector<char> contracted(n, 0);
  std::vector<int> deleted_neighbours(n, 0);
  WitnessSearch witness(n);
  ContractionHierarchy ch;
  ch.rank_.assign(n, 0);
  ch.fingerprint_ = network.fingerprint();

  // Lazy-update minimum priority queue over (priority, node); the node id
  // tie-break keeps the contraction order deterministic.
  using PqItem = std::pair<int, NodeId>;
  std::priority_queue<PqItem, std::vector<PqItem>, std::greater<>> queue;
  for (std::size_t v = 0; v < n; ++v) {
    queue.emplace(node_priority(fwd, bwd, contracted, witness, static_cast<NodeId>(v),
                                options.witness_settle_limit, deleted_neighbours),
                  static_cast<NodeId>(v));
  }

  std::uint32_t next_rank = 0;
  while (!queue.empty()) {
    const auto [stale_priority, v] = queue.top();
    queue.pop();
    if (contracted[static_cast<std::size_t>(v)] != 0) continue;
    const int current = node_priority(fwd, bwd, contracted, witness, v,
                                      options.witness_settle_limit, deleted_neighbours);
    if (!queue.empty() && current > queue.top().first) {
      queue.emplace(current, v);  // priority went stale; re-rank and retry
      continue;
    }
    for_each_needed_shortcut(fwd, bwd, contracted, witness, v,
                             options.witness_settle_limit,
                             [&](NodeId u, NodeId w, double via) {
                               if (add_edge_min(fwd, u, w, via)) ++ch.shortcut_count_;
                               add_edge_min(bwd, w, u, via);
                             });
    contracted[static_cast<std::size_t>(v)] = 1;
    ch.rank_[static_cast<std::size_t>(v)] = next_rank++;
    for (const DynEdge& edge : fwd[static_cast<std::size_t>(v)]) {
      if (contracted[static_cast<std::size_t>(edge.to)] == 0) {
        ++deleted_neighbours[static_cast<std::size_t>(edge.to)];
      }
    }
    for (const DynEdge& edge : bwd[static_cast<std::size_t>(v)]) {
      if (contracted[static_cast<std::size_t>(edge.to)] == 0) {
        ++deleted_neighbours[static_cast<std::size_t>(edge.to)];
      }
    }
  }
  O2O_ENSURES(next_rank == n);

  // Freeze the upward CSR graphs: an edge u -> v survives into the
  // forward graph when v outranks u; its reverse twin lives in bwd[v]
  // and survives there when u outranks v — so every edge is kept exactly
  // once, in the direction its head outranks its tail.
  const auto freeze = [&ch](const DynGraph& dyn, std::vector<std::uint32_t>& offsets,
                            std::vector<NodeId>& edges_to,
                            std::vector<double>& edges_weight) {
    const std::size_t n_nodes = dyn.size();
    offsets.assign(n_nodes + 1, 0);
    std::size_t total = 0;
    for (std::size_t u = 0; u < n_nodes; ++u) {
      offsets[u] = static_cast<std::uint32_t>(total);
      for (const DynEdge& edge : dyn[u]) {
        if (ch.rank_[static_cast<std::size_t>(edge.to)] > ch.rank_[u]) ++total;
      }
    }
    offsets[n_nodes] = static_cast<std::uint32_t>(total);
    edges_to.resize(total);
    edges_weight.resize(total);
    std::size_t cursor = 0;
    for (std::size_t u = 0; u < n_nodes; ++u) {
      for (const DynEdge& edge : dyn[u]) {
        if (ch.rank_[static_cast<std::size_t>(edge.to)] <= ch.rank_[u]) continue;
        edges_to[cursor] = edge.to;
        edges_weight[cursor] = edge.weight;
        ++cursor;
      }
    }
  };
  freeze(fwd, ch.fwd_offsets_, ch.fwd_edges_to_, ch.fwd_edges_weight_);
  freeze(bwd, ch.bwd_offsets_, ch.bwd_edges_to_, ch.bwd_edges_weight_);
  return ch;
}

double ContractionHierarchy::query(NodeId source, NodeId target) const {
  O2O_EXPECTS(source >= 0 && static_cast<std::size_t>(source) < rank_.size());
  O2O_EXPECTS(target >= 0 && static_cast<std::size_t>(target) < rank_.size());
  if (source == target) return 0.0;
  const CsrView fwd{fwd_offsets_, fwd_edges_to_, fwd_edges_weight_};
  const CsrView bwd{bwd_offsets_, bwd_edges_to_, bwd_edges_weight_};
  upward_search(fwd, bwd, source, forward_scratch);
  upward_search(bwd, fwd, target, backward_scratch);
  double best = kInfiniteDistance;
  for (const NodeId node : backward_scratch.touched) {
    if (backward_scratch.stalled(node)) continue;
    if (!forward_scratch.labelled(node) || forward_scratch.stalled(node)) continue;
    const double through = forward_scratch.dist[static_cast<std::size_t>(node)] +
                           backward_scratch.dist[static_cast<std::size_t>(node)];
    if (through < best) best = through;
  }
  return best;
}

ContractionHierarchy::SearchSpace ContractionHierarchy::search_space(NodeId node,
                                                                     bool backward) const {
  O2O_EXPECTS(node >= 0 && static_cast<std::size_t>(node) < rank_.size());
  UpwardScratch& scratch = backward ? backward_scratch : forward_scratch;
  const CsrView fwd{fwd_offsets_, fwd_edges_to_, fwd_edges_weight_};
  const CsrView bwd{bwd_offsets_, bwd_edges_to_, bwd_edges_weight_};
  if (backward) {
    upward_search(bwd, fwd, node, scratch);
  } else {
    upward_search(fwd, bwd, node, scratch);
  }
  SearchSpace space;
  space.reserve(scratch.touched.size());
  for (const NodeId settled : scratch.touched) {
    if (scratch.stalled(settled)) continue;
    space.push_back(SpaceEntry{settled, scratch.dist[static_cast<std::size_t>(settled)]});
  }
  std::sort(space.begin(), space.end(),
            [](const SpaceEntry& a, const SpaceEntry& b) { return a.node < b.node; });
  return space;
}

void ContractionHierarchy::save(std::ostream& out) const {
  write_pod(out, kMagic);
  write_pod(out, kVersion);
  write_pod(out, fingerprint_);
  write_pod(out, static_cast<std::uint64_t>(shortcut_count_));
  write_vec(out, rank_);
  write_vec(out, fwd_offsets_);
  write_vec(out, fwd_edges_to_);
  write_vec(out, fwd_edges_weight_);
  write_vec(out, bwd_offsets_);
  write_vec(out, bwd_edges_to_);
  write_vec(out, bwd_edges_weight_);
}

ContractionHierarchy ContractionHierarchy::load(std::istream& in,
                                                std::uint64_t expected_fingerprint) {
  O2O_EXPECTS(read_pod<std::uint64_t>(in) == kMagic);
  O2O_EXPECTS(read_pod<std::uint32_t>(in) == kVersion);
  ContractionHierarchy ch;
  ch.fingerprint_ = read_pod<std::uint64_t>(in);
  O2O_EXPECTS(expected_fingerprint == 0 || ch.fingerprint_ == expected_fingerprint);
  ch.shortcut_count_ = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
  ch.rank_ = read_vec<std::uint32_t>(in);
  ch.fwd_offsets_ = read_vec<std::uint32_t>(in);
  ch.fwd_edges_to_ = read_vec<NodeId>(in);
  ch.fwd_edges_weight_ = read_vec<double>(in);
  ch.bwd_offsets_ = read_vec<std::uint32_t>(in);
  ch.bwd_edges_to_ = read_vec<NodeId>(in);
  ch.bwd_edges_weight_ = read_vec<double>(in);
  const std::size_t n = ch.rank_.size();
  O2O_EXPECTS(n > 0);
  O2O_EXPECTS(ch.fwd_offsets_.size() == n + 1 && ch.bwd_offsets_.size() == n + 1);
  O2O_EXPECTS(ch.fwd_edges_to_.size() == ch.fwd_edges_weight_.size());
  O2O_EXPECTS(ch.bwd_edges_to_.size() == ch.bwd_edges_weight_.size());
  O2O_EXPECTS(ch.fwd_offsets_.back() == ch.fwd_edges_to_.size());
  O2O_EXPECTS(ch.bwd_offsets_.back() == ch.bwd_edges_to_.size());
  for (NodeId to : ch.fwd_edges_to_) {
    O2O_EXPECTS(to >= 0 && static_cast<std::size_t>(to) < n);
  }
  for (NodeId to : ch.bwd_edges_to_) {
    O2O_EXPECTS(to >= 0 && static_cast<std::size_t>(to) < n);
  }
  return ch;
}

bool ContractionHierarchy::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  save(out);
  return out.good();
}

ContractionHierarchy ContractionHierarchy::load_file(const std::string& path,
                                                     std::uint64_t expected_fingerprint) {
  std::ifstream in(path, std::ios::binary);
  O2O_EXPECTS(in.good());
  return load(in, expected_fingerprint);
}

}  // namespace o2o::geo
