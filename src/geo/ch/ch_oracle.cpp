#include "geo/ch/ch_oracle.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "obs/obs.h"
#include "util/contracts.h"

namespace o2o::geo {

namespace {

/// splitmix64 finisher (same constants as road_network.cpp — space keys
/// are `(node << 1) | backward`, all-even without mixing).
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr std::size_t kSnapMemoPerShardCap = 1 << 14;

}  // namespace

CHOracle::CHOracle(const RoadNetwork& network, ContractionHierarchy ch,
                   std::size_t cache_capacity, std::size_t shard_count)
    : network_(network), ch_(std::move(ch)) {
  O2O_EXPECTS(network.node_count() > 0);
  O2O_EXPECTS(shard_count > 0);
  O2O_EXPECTS(ch_.node_count() == network.node_count());
  O2O_EXPECTS(ch_.graph_fingerprint() == network.fingerprint());
  if (cache_capacity == kAutoCapacity) {
    cache_capacity = std::max<std::size_t>(1024, 2 * network.node_count() + 64);
  }
  const std::size_t shards_used = std::min(shard_count, cache_capacity);
  per_shard_capacity_ = std::max<std::size_t>(1, cache_capacity / shards_used);
  shards_ = std::vector<Shard>(shards_used);
}

CHOracle::CHOracle(const RoadNetwork& network, ContractionHierarchy::BuildOptions options,
                   std::size_t cache_capacity, std::size_t shard_count)
    : CHOracle(network, ContractionHierarchy::build(network, options), cache_capacity,
               shard_count) {}

std::size_t CHOracle::SnapKeyHash::operator()(const SnapKey& k) const noexcept {
  return static_cast<std::size_t>(mix64(k.x_bits ^ mix64(k.y_bits)));
}

CHOracle::Shard& CHOracle::shard_for(std::uint64_t mixed_hash) const {
  return shards_[mixed_hash % shards_.size()];
}

NodeId CHOracle::snap(const Point& p) const {
  const SnapKey key{std::bit_cast<std::uint64_t>(p.x), std::bit_cast<std::uint64_t>(p.y)};
  Shard& shard = shard_for(mix64(key.x_bits ^ mix64(key.y_bits)));
  {
    std::shared_lock lock(shard.mutex);
    const auto it = shard.snap_memo.find(key);
    if (it != shard.snap_memo.end()) {
      obs::add(obs::Counter::kSnapHits);
      return it->second;
    }
  }
  obs::add(obs::Counter::kSnapMisses);
  const NodeId node = network_.nearest_node(p);
  std::unique_lock lock(shard.mutex);
  if (shard.snap_memo.size() >= kSnapMemoPerShardCap) shard.snap_memo.clear();
  shard.snap_memo.emplace(key, node);
  return node;
}

CHOracle::Space CHOracle::space(NodeId node, bool backward) const {
  const std::uint64_t key = space_key(node, backward);
  Shard& shard = shard_for(mix64(key));
  {
    // Hits need the exclusive lock: the LRU splice mutates the list.
    std::unique_lock lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      obs::add(obs::Counter::kOracleTreeHits);
      return it->second->space;
    }
  }
  obs::add(obs::Counter::kOracleTreeMisses);
  // Miss: run the upward search outside the lock, insert double-checked
  // (losing a build race wastes one tiny search, never correctness).
  auto built = std::make_shared<const ContractionHierarchy::SearchSpace>(
      ch_.search_space(node, backward));
  std::unique_lock lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->space;
  }
  while (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
  }
  shard.lru.push_front(CacheEntry{key, std::move(built)});
  shard.index.emplace(key, shard.lru.begin());
  return shard.lru.front().space;
}

double CHOracle::join(const ContractionHierarchy::SearchSpace& forward,
                      const ContractionHierarchy::SearchSpace& backward) {
  // Merge join over the id-sorted spaces; the min over meeting nodes is
  // order-independent, so the value matches query() exactly.
  double best = kInfiniteDistance;
  auto f = forward.begin();
  auto b = backward.begin();
  while (f != forward.end() && b != backward.end()) {
    if (f->node < b->node) {
      ++f;
    } else if (b->node < f->node) {
      ++b;
    } else {
      const double through = f->distance + b->distance;
      if (through < best) best = through;
      ++f;
      ++b;
    }
  }
  return best;
}

double CHOracle::distance(const Point& a, const Point& b) const {
  const NodeId from = snap(a);
  const NodeId to = snap(b);
  const double snap_a = euclidean_distance(a, network_.node_position(from));
  const double snap_b = euclidean_distance(b, network_.node_position(to));
  if (from == to) return euclidean_distance(a, b);
  const double network_leg = join(*space(from, /*backward=*/false),
                                  *space(to, /*backward=*/true));
  return snap_a + network_leg + snap_b;
}

std::vector<double> CHOracle::distances_from(const Point& source,
                                             std::span<const Point> targets) const {
  std::vector<double> result(targets.size());
  distances_from_into(source, targets, result.data());
  return result;
}

std::vector<double> CHOracle::distances_to(std::span<const Point> sources,
                                           const Point& target) const {
  std::vector<double> result(sources.size());
  distances_to_into(sources, target, result.data());
  return result;
}

void CHOracle::distances_from_into(const Point& source, std::span<const Point> targets,
                                   double* out) const {
  if (targets.empty()) return;
  const NodeId from = snap(source);
  const double snap_a = euclidean_distance(source, network_.node_position(from));
  // Bucket step, built on first use: an all-same-node batch needs no
  // index. Each target then joins its backward space by probing.
  std::unordered_map<NodeId, double> bucket;
  bool bucket_ready = false;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const NodeId to = snap(targets[i]);
    if (from == to) {
      out[i] = euclidean_distance(source, targets[i]);
      continue;
    }
    if (!bucket_ready) {
      const Space fwd = space(from, /*backward=*/false);
      bucket.reserve(fwd->size() * 2);
      for (const auto& entry : *fwd) bucket.emplace(entry.node, entry.distance);
      bucket_ready = true;
    }
    const Space bwd = space(to, /*backward=*/true);
    double leg = kInfiniteDistance;
    for (const auto& entry : *bwd) {
      const auto it = bucket.find(entry.node);
      if (it == bucket.end()) continue;
      const double through = it->second + entry.distance;
      if (through < leg) leg = through;
    }
    const double snap_b = euclidean_distance(targets[i], network_.node_position(to));
    out[i] = snap_a + leg + snap_b;
  }
}

void CHOracle::distances_to_into(std::span<const Point> sources, const Point& target,
                                 double* out) const {
  if (sources.empty()) return;
  const NodeId to = snap(target);
  const double snap_b = euclidean_distance(target, network_.node_position(to));
  std::unordered_map<NodeId, double> bucket;
  bool bucket_ready = false;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const NodeId from = snap(sources[i]);
    if (from == to) {
      out[i] = euclidean_distance(sources[i], target);
      continue;
    }
    if (!bucket_ready) {
      const Space bwd = space(to, /*backward=*/true);
      bucket.reserve(bwd->size() * 2);
      for (const auto& entry : *bwd) bucket.emplace(entry.node, entry.distance);
      bucket_ready = true;
    }
    const Space fwd = space(from, /*backward=*/false);
    double leg = kInfiniteDistance;
    for (const auto& entry : *fwd) {
      const auto it = bucket.find(entry.node);
      if (it == bucket.end()) continue;
      const double through = entry.distance + it->second;
      if (through < leg) leg = through;
    }
    const double snap_a = euclidean_distance(sources[i], network_.node_position(from));
    out[i] = snap_a + leg + snap_b;
  }
}

void CHOracle::prepare_frame(std::span<const Point> points) const {
  std::lock_guard lock(prepare_mutex_);
  next_prepared_.clear();
  std::size_t carried = 0;
  for (const Point& p : points) {
    const SnapKey key{std::bit_cast<std::uint64_t>(p.x), std::bit_cast<std::uint64_t>(p.y)};
    const bool seen_last_frame = prepared_.contains(key);
    next_prepared_.insert(key);
    if (seen_last_frame) {
      ++carried;
      continue;
    }
    // Unlike NetworkOracle (whose trees are too big to warm eagerly),
    // spaces are tiny: warm both directions now so the frame's first
    // query against this point is pure cache hits.
    const NodeId node = snap(p);
    (void)space(node, /*backward=*/false);
    (void)space(node, /*backward=*/true);
  }
  prepared_.swap(next_prepared_);
  last_prepare_carried_ = carried;
}

std::size_t CHOracle::cache_size() const {
  std::size_t total = 0;
  for (Shard& shard : shards_) {
    std::shared_lock lock(shard.mutex);
    total += shard.lru.size();
  }
  return total;
}

bool CHOracle::space_cached(NodeId node, bool backward) const {
  const std::uint64_t key = space_key(node, backward);
  Shard& shard = shard_for(mix64(key));
  std::shared_lock lock(shard.mutex);
  return shard.index.contains(key);
}

}  // namespace o2o::geo
