// DistanceOracle over a ContractionHierarchy: the NetworkOracle contract
// (snap both endpoints, price the network leg, add the straight-line snap
// gaps) served from cached *upward search spaces* instead of cached
// full Dijkstra trees. A search space is a few dozen entries where a
// tree is the whole node count, so the cache warms in microseconds and
// a cold point query never pays a city-wide search.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "geo/ch/contraction_hierarchy.h"
#include "geo/distance_oracle.h"
#include "geo/road_network.h"

namespace o2o::geo {

/// Distance oracle backed by a contraction hierarchy.
///
/// distance(a, b) is `snap_a + leg + snap_b` with the identical
/// expression order as NetworkOracle::distance (and the identical
/// same-node short-circuit to the straight-line distance), so on graphs
/// whose edge weights sum exactly in doubles — integer-weight DIMACS
/// imports — the two oracles return bitwise-equal values. On float
/// weights a shortcut pre-aggregates path segments, so the sums may
/// associate differently: equal up to a few ulps (see DESIGN.md
/// "Distance backends" for the policy and the differential tests that
/// enforce it).
///
/// Internals mirror NetworkOracle: a sharded exact-key snap memo plus a
/// sharded true-LRU cache of search spaces (forward and backward per
/// node), each shard a std::shared_mutex; spaces build outside the shard
/// lock with a double-checked insert. Bulk rows are bucket-style
/// many-to-many: the row endpoint's space becomes a hash index once,
/// then every other endpoint joins its (cached) opposite-direction space
/// against it — no quadratic meeting-node scans.
class CHOracle final : public DistanceOracle {
 public:
  /// kAutoCapacity (0) sizes the space cache to the frame working set —
  /// up to one forward and one backward space per node, floored at 1024.
  /// Spaces are tiny (tens of entries), so unlike the tree cache no
  /// memory cap is needed below half a million nodes.
  static constexpr std::size_t kAutoCapacity = 0;

  /// `network` must be the graph `ch` was preprocessed from (checked via
  /// the fingerprint) and must outlive the oracle; the hierarchy is
  /// owned. Build or load the hierarchy first, then hand it over.
  CHOracle(const RoadNetwork& network, ContractionHierarchy ch,
           std::size_t cache_capacity = kAutoCapacity, std::size_t shard_count = 8);

  /// Convenience: preprocesses `network` in place (seconds at city
  /// scale; prefer a saved .o2och artifact for repeated runs).
  explicit CHOracle(const RoadNetwork& network,
                    ContractionHierarchy::BuildOptions options = {},
                    std::size_t cache_capacity = kAutoCapacity,
                    std::size_t shard_count = 8);

  double distance(const Point& a, const Point& b) const override;

  std::vector<double> distances_from(const Point& source,
                                     std::span<const Point> targets) const override;
  std::vector<double> distances_to(std::span<const Point> sources,
                                   const Point& target) const override;

  /// Bucket many-to-many: the source's forward space is indexed once,
  /// then each target joins its backward space against it. Values are
  /// identical byte for byte to the pairwise distance().
  void distances_from_into(const Point& source, std::span<const Point> targets,
                           double* out) const override;
  void distances_to_into(std::span<const Point> sources, const Point& target,
                         double* out) const override;

  /// Warms the snap memo and both search spaces of every frame point's
  /// snapped node. Delta-aware like NetworkOracle::prepare_frame: points
  /// the previous call warmed are skipped without touching a lock.
  void prepare_frame(std::span<const Point> points) const override;

  /// Points skipped by the last prepare_frame (test/bench probe).
  std::size_t last_prepare_carried() const noexcept { return last_prepare_carried_; }

  /// Sharded-and-locked caches (concurrent); directed graph (asymmetric).
  Capabilities capabilities() const noexcept override {
    return {.concurrent_queries = true, .symmetric_distances = false};
  }

  const ContractionHierarchy& hierarchy() const noexcept { return ch_; }

  /// Cached spaces across shards (forward + backward).
  std::size_t cache_size() const;
  std::size_t cache_capacity() const noexcept { return per_shard_capacity_ * shards_.size(); }
  std::size_t shard_count() const noexcept { return shards_.size(); }
  /// Whether `node`'s space is currently cached (test probe).
  bool space_cached(NodeId node, bool backward) const;

 private:
  using Space = std::shared_ptr<const ContractionHierarchy::SearchSpace>;

  struct CacheEntry {
    std::uint64_t key = 0;
    Space space;
  };

  /// Exact-key snap memo, identical idiom to NetworkOracle::SnapKey.
  struct SnapKey {
    std::uint64_t x_bits = 0;
    std::uint64_t y_bits = 0;
    bool operator==(const SnapKey&) const = default;
  };
  struct SnapKeyHash {
    std::size_t operator()(const SnapKey& k) const noexcept;
  };

  struct Shard {
    mutable std::shared_mutex mutex;
    std::list<CacheEntry> lru;  // front = most recently used
    std::unordered_map<std::uint64_t, std::list<CacheEntry>::iterator> index;
    std::unordered_map<SnapKey, NodeId, SnapKeyHash> snap_memo;
  };

  static std::uint64_t space_key(NodeId node, bool backward) noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(node)) << 1) |
           static_cast<std::uint64_t>(backward);
  }
  Shard& shard_for(std::uint64_t mixed_hash) const;
  NodeId snap(const Point& p) const;
  Space space(NodeId node, bool backward) const;
  /// min over meeting nodes of both spaces (merge join; both sorted by
  /// node id). +inf when disjoint — unreachable.
  static double join(const ContractionHierarchy::SearchSpace& forward,
                     const ContractionHierarchy::SearchSpace& backward);

  const RoadNetwork& network_;
  ContractionHierarchy ch_;
  std::size_t per_shard_capacity_;
  mutable std::vector<Shard> shards_;

  mutable std::mutex prepare_mutex_;
  mutable std::unordered_set<SnapKey, SnapKeyHash> prepared_;
  mutable std::unordered_set<SnapKey, SnapKeyHash> next_prepared_;
  mutable std::size_t last_prepare_carried_ = 0;
};

}  // namespace o2o::geo
