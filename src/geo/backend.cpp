#include "geo/backend.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "geo/import/osm_xml.h"
#include "util/contracts.h"

namespace o2o::geo {

namespace {

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

/// Splits the source list of a network-backed CLI spec into the spec's
/// graph fields. Returns false on a malformed list.
bool parse_sources(std::string_view sources, DistanceBackendSpec* spec) {
  std::string_view rest = sources;
  std::vector<std::string_view> parts;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    parts.push_back(rest.substr(0, comma));
    if (comma == std::string_view::npos) break;
    rest = rest.substr(comma + 1);
  }
  if (parts.empty() || parts.front().empty()) return false;
  std::size_t cursor = 0;
  if (ends_with(parts.front(), ".osm")) {
    spec->osm_xml = std::string(parts.front());
    cursor = 1;
  } else {
    if (parts.size() < 2) return false;
    spec->dimacs_gr = std::string(parts[0]);
    spec->dimacs_co = std::string(parts[1]);
    cursor = 2;
  }
  if (cursor < parts.size()) {
    if (spec->kind != DistanceBackendKind::kContractionHierarchy) return false;
    spec->ch_artifact = std::string(parts[cursor]);
    ++cursor;
  }
  return cursor == parts.size();
}

/// write_dimacs stamps its `.co` output with this comment; files bearing
/// it store plane km * 1e6, everything else is assumed to be a road
/// instance (micro-degree coordinates).
DimacsOptions detect_dimacs_options(const std::string& co_path) {
  std::ifstream co(co_path);
  std::string first_line;
  std::getline(co, first_line);
  DimacsOptions options;
  if (first_line.find("o2o RoadNetwork export") != std::string::npos) {
    options.coordinate_scale = 1e-6;
  } else {
    options.project_coordinates = true;
  }
  return options;
}

std::shared_ptr<const RoadNetwork> resolve_network(const DistanceBackendSpec& spec) {
  const int sources = (spec.network != nullptr ? 1 : 0) +
                      (!spec.dimacs_gr.empty() || !spec.dimacs_co.empty() ? 1 : 0) +
                      (!spec.osm_xml.empty() ? 1 : 0);
  O2O_EXPECTS(sources == 1);
  if (spec.network != nullptr) return spec.network;
  if (!spec.osm_xml.empty()) {
    return std::make_shared<const RoadNetwork>(read_osm_xml_file(spec.osm_xml));
  }
  O2O_EXPECTS(!spec.dimacs_gr.empty() && !spec.dimacs_co.empty());
  const DimacsOptions options = spec.dimacs == DimacsOptions{}
                                    ? detect_dimacs_options(spec.dimacs_co)
                                    : spec.dimacs;
  return std::make_shared<const RoadNetwork>(
      read_dimacs_files(spec.dimacs_gr, spec.dimacs_co, options));
}

std::uint64_t fnv1a(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h == 0 ? 1 : h;
}

}  // namespace

std::string_view distance_backend_name(DistanceBackendKind kind) noexcept {
  switch (kind) {
    case DistanceBackendKind::kEuclidean: return "euclid";
    case DistanceBackendKind::kManhattan: return "manhattan";
    case DistanceBackendKind::kCircuity: return "circuity";
    case DistanceBackendKind::kDijkstra: return "dijkstra";
    case DistanceBackendKind::kContractionHierarchy: return "ch";
  }
  return "unknown";
}

bool parse_distance_backend(std::string_view text, DistanceBackendSpec* out) {
  O2O_EXPECTS(out != nullptr);
  const std::size_t colon = text.find(':');
  const std::string_view kind = text.substr(0, colon);
  const std::string_view argument =
      colon == std::string_view::npos ? std::string_view{} : text.substr(colon + 1);

  DistanceBackendSpec spec;
  if (kind == "euclid" || kind == "euclidean") {
    if (colon != std::string_view::npos) return false;
    spec.kind = DistanceBackendKind::kEuclidean;
  } else if (kind == "manhattan") {
    if (colon != std::string_view::npos) return false;
    spec.kind = DistanceBackendKind::kManhattan;
  } else if (kind == "circuity") {
    spec.kind = DistanceBackendKind::kCircuity;
    if (colon != std::string_view::npos) {
      try {
        std::size_t consumed = 0;
        spec.circuity_factor = std::stod(std::string(argument), &consumed);
        if (consumed != argument.size()) return false;
      } catch (...) {
        return false;
      }
      if (spec.circuity_factor < 1.0) return false;
    }
  } else if (kind == "dijkstra" || kind == "ch") {
    spec.kind = kind == "ch" ? DistanceBackendKind::kContractionHierarchy
                             : DistanceBackendKind::kDijkstra;
    if (colon == std::string_view::npos || !parse_sources(argument, &spec)) return false;
  } else {
    return false;
  }
  *out = spec;
  return true;
}

DistanceBackend make_distance_oracle(const DistanceBackendSpec& spec) {
  DistanceBackend backend;
  backend.spec = spec;
  switch (spec.kind) {
    case DistanceBackendKind::kEuclidean:
      backend.oracle = std::make_shared<const EuclideanOracle>();
      return backend;
    case DistanceBackendKind::kManhattan:
      backend.oracle = std::make_shared<const ManhattanOracle>();
      return backend;
    case DistanceBackendKind::kCircuity:
      O2O_EXPECTS(spec.circuity_factor >= 1.0);
      backend.oracle = std::make_shared<const CircuityOracle>(spec.circuity_factor);
      return backend;
    case DistanceBackendKind::kDijkstra: {
      backend.network = resolve_network(spec);
      backend.graph_fingerprint = backend.network->fingerprint();
      backend.oracle = std::make_shared<const NetworkOracle>(
          *backend.network, spec.cache_capacity == 0 ? NetworkOracle::kAutoCapacity
                                                     : spec.cache_capacity);
      return backend;
    }
    case DistanceBackendKind::kContractionHierarchy: {
      backend.network = resolve_network(spec);
      backend.graph_fingerprint = backend.network->fingerprint();
      ContractionHierarchy ch = [&] {
        if (!spec.ch_artifact.empty()) {
          if (std::ifstream probe(spec.ch_artifact, std::ios::binary); probe.good()) {
            try {
              ContractionHierarchy loaded =
                  ContractionHierarchy::load_file(spec.ch_artifact,
                                                  backend.graph_fingerprint);
              backend.ch_artifact_loaded = true;
              return loaded;
            } catch (const ContractViolation&) {
              // Stale or corrupt artifact: fall through to a rebuild.
            }
          }
        }
        return ContractionHierarchy::build(*backend.network);
      }();
      if (!spec.ch_artifact.empty() && !backend.ch_artifact_loaded) {
        // Best effort: an unwritable path still yields a working backend.
        (void)ch.save_file(spec.ch_artifact);
      }
      std::ostringstream serialized;
      ch.save(serialized);
      backend.ch_artifact_hash = fnv1a(serialized.view());
      backend.oracle = std::make_shared<const CHOracle>(
          *backend.network, std::move(ch),
          spec.cache_capacity == 0 ? CHOracle::kAutoCapacity : spec.cache_capacity);
      return backend;
    }
  }
  O2O_EXPECTS(false);  // unreachable: every kind returns above
  return backend;
}

}  // namespace o2o::geo
