// Equirectangular projection between WGS-84 latitude/longitude and the
// kilometre plane used by the simulator. Accurate to well under 1% over
// city-scale extents, which is all the dispatch model needs.
#pragma once

#include "geo/point.h"

namespace o2o::geo {

/// A WGS-84 coordinate in degrees.
struct LatLon {
  double lat = 0.0;
  double lon = 0.0;
};

/// Projects lat/lon to km offsets from a fixed reference coordinate.
class Projection {
 public:
  explicit Projection(LatLon reference) noexcept;

  /// Forward projection: lat/lon -> km plane (x east, y north).
  Point to_plane(LatLon coordinate) const noexcept;

  /// Inverse projection: km plane -> lat/lon.
  LatLon to_latlon(Point p) const noexcept;

  LatLon reference() const noexcept { return reference_; }

  /// Mean Earth radius in km (spherical model).
  static constexpr double kEarthRadiusKm = 6371.0088;

 private:
  LatLon reference_;
  double km_per_degree_lat_;
  double km_per_degree_lon_;
};

}  // namespace o2o::geo
