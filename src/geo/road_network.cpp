#include "geo/road_network.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/rng.h"

namespace o2o::geo {

NodeId RoadNetwork::add_node(Point position) {
  nodes_.push_back(position);
  adjacency_.emplace_back();
  return static_cast<NodeId>(nodes_.size() - 1);
}

void RoadNetwork::add_edge(NodeId from, NodeId to, double length_km) {
  O2O_EXPECTS(from >= 0 && static_cast<std::size_t>(from) < nodes_.size());
  O2O_EXPECTS(to >= 0 && static_cast<std::size_t>(to) < nodes_.size());
  if (length_km < 0.0) {
    length_km = euclidean_distance(nodes_[static_cast<std::size_t>(from)],
                                   nodes_[static_cast<std::size_t>(to)]);
  }
  adjacency_[static_cast<std::size_t>(from)].push_back(Edge{to, length_km});
  ++edge_count_;
}

void RoadNetwork::add_bidirectional_edge(NodeId a, NodeId b, double length_km) {
  add_edge(a, b, length_km);
  add_edge(b, a, length_km);
}

const Point& RoadNetwork::node_position(NodeId id) const {
  O2O_EXPECTS(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
  return nodes_[static_cast<std::size_t>(id)];
}

const std::vector<RoadNetwork::Edge>& RoadNetwork::edges_from(NodeId id) const {
  O2O_EXPECTS(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
  return adjacency_[static_cast<std::size_t>(id)];
}

NodeId RoadNetwork::nearest_node(const Point& p) const {
  O2O_EXPECTS(!nodes_.empty());
  if (snap_cols_ > 0) {
    // Search outward ring by ring from p's cell until a candidate is found
    // and the ring distance exceeds the best candidate distance.
    const auto cell_of = [&](double v, double lo) {
      return static_cast<int>(std::floor((v - lo) / snap_cell_km_));
    };
    int cx = std::clamp(cell_of(p.x, snap_bounds_.lo.x), 0, snap_cols_ - 1);
    int cy = std::clamp(cell_of(p.y, snap_bounds_.lo.y), 0, snap_rows_ - 1);
    NodeId best = kInvalidNode;
    double best_sq = kInfiniteDistance;
    const int max_ring = std::max(snap_cols_, snap_rows_);
    for (int ring = 0; ring <= max_ring; ++ring) {
      if (best != kInvalidNode) {
        const double safe = (static_cast<double>(ring) - 1.0) * snap_cell_km_;
        if (safe > 0.0 && safe * safe >= best_sq) break;
      }
      for (int dy = -ring; dy <= ring; ++dy) {
        for (int dx = -ring; dx <= ring; ++dx) {
          if (std::max(std::abs(dx), std::abs(dy)) != ring) continue;
          const int x = cx + dx;
          const int y = cy + dy;
          if (x < 0 || x >= snap_cols_ || y < 0 || y >= snap_rows_) continue;
          for (NodeId id : snap_cells_[static_cast<std::size_t>(y * snap_cols_ + x)]) {
            const double d = squared_distance(p, nodes_[static_cast<std::size_t>(id)]);
            if (d < best_sq) {
              best_sq = d;
              best = id;
            }
          }
        }
      }
    }
    if (best != kInvalidNode) return best;
  }
  NodeId best = 0;
  double best_sq = squared_distance(p, nodes_[0]);
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    const double d = squared_distance(p, nodes_[i]);
    if (d < best_sq) {
      best_sq = d;
      best = static_cast<NodeId>(i);
    }
  }
  return best;
}

void RoadNetwork::build_snap_index(double cell_km) {
  O2O_EXPECTS(cell_km > 0.0);
  O2O_EXPECTS(!nodes_.empty());
  snap_cell_km_ = cell_km;
  snap_bounds_ = Rect{nodes_[0], nodes_[0]};
  for (const Point& p : nodes_) {
    snap_bounds_.lo.x = std::min(snap_bounds_.lo.x, p.x);
    snap_bounds_.lo.y = std::min(snap_bounds_.lo.y, p.y);
    snap_bounds_.hi.x = std::max(snap_bounds_.hi.x, p.x);
    snap_bounds_.hi.y = std::max(snap_bounds_.hi.y, p.y);
  }
  snap_cols_ = std::max(1, static_cast<int>(std::ceil(snap_bounds_.width() / cell_km)));
  snap_rows_ = std::max(1, static_cast<int>(std::ceil(snap_bounds_.height() / cell_km)));
  snap_cells_.assign(static_cast<std::size_t>(snap_cols_) * static_cast<std::size_t>(snap_rows_),
                     {});
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Point& p = nodes_[i];
    const int x = std::clamp(static_cast<int>((p.x - snap_bounds_.lo.x) / cell_km), 0,
                             snap_cols_ - 1);
    const int y = std::clamp(static_cast<int>((p.y - snap_bounds_.lo.y) / cell_km), 0,
                             snap_rows_ - 1);
    snap_cells_[static_cast<std::size_t>(y * snap_cols_ + x)].push_back(
        static_cast<NodeId>(i));
  }
}

std::vector<double> RoadNetwork::shortest_paths_from(NodeId source) const {
  O2O_EXPECTS(source >= 0 && static_cast<std::size_t>(source) < nodes_.size());
  std::vector<double> dist(nodes_.size(), kInfiniteDistance);
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> frontier;
  dist[static_cast<std::size_t>(source)] = 0.0;
  frontier.emplace(0.0, source);
  while (!frontier.empty()) {
    const auto [d, node] = frontier.top();
    frontier.pop();
    if (d > dist[static_cast<std::size_t>(node)]) continue;
    for (const Edge& edge : adjacency_[static_cast<std::size_t>(node)]) {
      const double candidate = d + edge.length_km;
      if (candidate < dist[static_cast<std::size_t>(edge.to)]) {
        dist[static_cast<std::size_t>(edge.to)] = candidate;
        frontier.emplace(candidate, edge.to);
      }
    }
  }
  return dist;
}

double RoadNetwork::shortest_path(NodeId source, NodeId target) const {
  O2O_EXPECTS(target >= 0 && static_cast<std::size_t>(target) < nodes_.size());
  return shortest_paths_from(source)[static_cast<std::size_t>(target)];
}

std::vector<NodeId> RoadNetwork::shortest_path_nodes(NodeId source, NodeId target) const {
  O2O_EXPECTS(source >= 0 && static_cast<std::size_t>(source) < nodes_.size());
  O2O_EXPECTS(target >= 0 && static_cast<std::size_t>(target) < nodes_.size());
  std::vector<double> dist(nodes_.size(), kInfiniteDistance);
  std::vector<NodeId> parent(nodes_.size(), kInvalidNode);
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> frontier;
  dist[static_cast<std::size_t>(source)] = 0.0;
  frontier.emplace(0.0, source);
  while (!frontier.empty()) {
    const auto [d, node] = frontier.top();
    frontier.pop();
    if (node == target) break;
    if (d > dist[static_cast<std::size_t>(node)]) continue;
    for (const Edge& edge : adjacency_[static_cast<std::size_t>(node)]) {
      const double candidate = d + edge.length_km;
      if (candidate < dist[static_cast<std::size_t>(edge.to)]) {
        dist[static_cast<std::size_t>(edge.to)] = candidate;
        parent[static_cast<std::size_t>(edge.to)] = node;
        frontier.emplace(candidate, edge.to);
      }
    }
  }
  if (dist[static_cast<std::size_t>(target)] == kInfiniteDistance) return {};
  std::vector<NodeId> path;
  for (NodeId at = target; at != kInvalidNode; at = parent[static_cast<std::size_t>(at)]) {
    path.push_back(at);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<Point> RoadNetwork::drive_path(const Point& from, const Point& to) const {
  std::vector<Point> path;
  path.push_back(from);
  const NodeId source = nearest_node(from);
  const NodeId target = nearest_node(to);
  if (source != target) {
    const std::vector<NodeId> nodes = shortest_path_nodes(source, target);
    for (NodeId node : nodes) {
      path.push_back(node_position(node));
    }
    // Unreachable: `nodes` is empty and the path degenerates to the
    // direct segment below.
  }
  path.push_back(to);
  return path;
}

RoadNetwork RoadNetwork::make_grid_city(int cols, int rows, double spacing_km,
                                        double jitter_km, double closure_fraction,
                                        std::uint64_t seed, Point origin) {
  O2O_EXPECTS(cols >= 2 && rows >= 2);
  O2O_EXPECTS(spacing_km > 0.0);
  O2O_EXPECTS(jitter_km >= 0.0 && jitter_km < spacing_km / 2.0);
  O2O_EXPECTS(closure_fraction >= 0.0 && closure_fraction < 1.0);
  Rng rng(seed);
  RoadNetwork network;
  const auto node_at = [cols](int x, int y) { return static_cast<NodeId>(y * cols + x); };
  for (int y = 0; y < rows; ++y) {
    for (int x = 0; x < cols; ++x) {
      const double jx = jitter_km > 0.0 ? rng.uniform(-jitter_km, jitter_km) : 0.0;
      const double jy = jitter_km > 0.0 ? rng.uniform(-jitter_km, jitter_km) : 0.0;
      network.add_node(Point{origin.x + x * spacing_km + jx,
                             origin.y + y * spacing_km + jy});
    }
  }
  for (int y = 0; y < rows; ++y) {
    for (int x = 0; x < cols; ++x) {
      // Always keep the "spanning comb" (all vertical streets plus the
      // bottom row) so the city stays strongly connected; closures only
      // remove the remaining redundant segments.
      if (x + 1 < cols) {
        const bool essential = (y == 0);
        if (essential || !rng.bernoulli(closure_fraction)) {
          network.add_bidirectional_edge(node_at(x, y), node_at(x + 1, y));
        }
      }
      if (y + 1 < rows) {
        network.add_bidirectional_edge(node_at(x, y), node_at(x, y + 1));
      }
    }
  }
  network.build_snap_index(std::max(0.25, spacing_km));
  return network;
}

NetworkOracle::NetworkOracle(const RoadNetwork& network, std::size_t cache_capacity)
    : network_(network), cache_capacity_(cache_capacity) {
  O2O_EXPECTS(network.node_count() > 0);
  O2O_EXPECTS(cache_capacity > 0);
}

const std::vector<double>& NetworkOracle::tree_for(NodeId source) const {
  const auto it = cache_.find(source);
  if (it != cache_.end()) return it->second;
  if (cache_.size() >= cache_capacity_) {
    // Evict the oldest half. Coarse, but keeps amortized cost low and the
    // map bounded without per-query bookkeeping.
    const std::size_t keep_from = cache_order_.size() / 2;
    for (std::size_t i = 0; i < keep_from; ++i) cache_.erase(cache_order_[i]);
    cache_order_.erase(cache_order_.begin(),
                       cache_order_.begin() + static_cast<std::ptrdiff_t>(keep_from));
  }
  cache_order_.push_back(source);
  return cache_.emplace(source, network_.shortest_paths_from(source)).first->second;
}

double NetworkOracle::distance(const Point& a, const Point& b) const {
  const NodeId from = network_.nearest_node(a);
  const NodeId to = network_.nearest_node(b);
  const double snap_a = euclidean_distance(a, network_.node_position(from));
  const double snap_b = euclidean_distance(b, network_.node_position(to));
  if (from == to) return euclidean_distance(a, b);
  const double network_leg = tree_for(from)[static_cast<std::size_t>(to)];
  return snap_a + network_leg + snap_b;
}

}  // namespace o2o::geo
