#include "geo/road_network.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <queue>
#include <utility>

#include "obs/obs.h"
#include "util/rng.h"

namespace o2o::geo {

namespace {

/// splitmix64 finisher. Tree keys are `(node << 1) | reverse`, so without
/// mixing every forward key is even and `key % shards` would leave half
/// the shards idle.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Per-shard bound on the exact-key snap memo. Generous (a frame snapshot
/// is thousands of points, spread over all shards); on overflow the shard
/// clears and re-fills — simpler than LRU for entries this cheap.
constexpr std::size_t kSnapMemoPerShardCap = 1 << 14;

}  // namespace

RoadNetwork::RoadNetwork(const RoadNetwork& other) { copy_from(other); }

RoadNetwork& RoadNetwork::operator=(const RoadNetwork& other) {
  if (this != &other) copy_from(other);
  return *this;
}

RoadNetwork::RoadNetwork(RoadNetwork&& other) noexcept
    : nodes_(std::move(other.nodes_)),
      adjacency_(std::move(other.adjacency_)),
      reverse_adjacency_(std::move(other.reverse_adjacency_)),
      edge_count_(other.edge_count_),
      snap_ready_(other.snap_ready_.load(std::memory_order_relaxed)),
      snap_cell_km_(other.snap_cell_km_),
      snap_bounds_(other.snap_bounds_),
      snap_cols_(other.snap_cols_),
      snap_rows_(other.snap_rows_),
      snap_cells_(std::move(other.snap_cells_)) {}

RoadNetwork& RoadNetwork::operator=(RoadNetwork&& other) noexcept {
  if (this != &other) {
    nodes_ = std::move(other.nodes_);
    adjacency_ = std::move(other.adjacency_);
    reverse_adjacency_ = std::move(other.reverse_adjacency_);
    edge_count_ = other.edge_count_;
    snap_ready_.store(other.snap_ready_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    snap_cell_km_ = other.snap_cell_km_;
    snap_bounds_ = other.snap_bounds_;
    snap_cols_ = other.snap_cols_;
    snap_rows_ = other.snap_rows_;
    snap_cells_ = std::move(other.snap_cells_);
  }
  return *this;
}

void RoadNetwork::copy_from(const RoadNetwork& other) {
  nodes_ = other.nodes_;
  adjacency_ = other.adjacency_;
  reverse_adjacency_ = other.reverse_adjacency_;
  edge_count_ = other.edge_count_;
  // Hold the source's build mutex so a concurrent lazy build on `other`
  // cannot be observed half-written.
  std::lock_guard lock(other.snap_build_mutex_);
  snap_cell_km_ = other.snap_cell_km_;
  snap_bounds_ = other.snap_bounds_;
  snap_cols_ = other.snap_cols_;
  snap_rows_ = other.snap_rows_;
  snap_cells_ = other.snap_cells_;
  snap_ready_.store(other.snap_ready_.load(std::memory_order_acquire),
                    std::memory_order_release);
}

NodeId RoadNetwork::add_node(Point position) {
  nodes_.push_back(position);
  adjacency_.emplace_back();
  reverse_adjacency_.emplace_back();
  // A new node falls outside the built cell grid; force a rebuild on the
  // next snap.
  snap_ready_.store(false, std::memory_order_release);
  return static_cast<NodeId>(nodes_.size() - 1);
}

void RoadNetwork::add_edge(NodeId from, NodeId to, double length_km) {
  O2O_EXPECTS(from >= 0 && static_cast<std::size_t>(from) < nodes_.size());
  O2O_EXPECTS(to >= 0 && static_cast<std::size_t>(to) < nodes_.size());
  if (length_km < 0.0) {
    length_km = euclidean_distance(nodes_[static_cast<std::size_t>(from)],
                                   nodes_[static_cast<std::size_t>(to)]);
  }
  adjacency_[static_cast<std::size_t>(from)].push_back(Edge{to, length_km});
  reverse_adjacency_[static_cast<std::size_t>(to)].push_back(Edge{from, length_km});
  ++edge_count_;
}

void RoadNetwork::add_bidirectional_edge(NodeId a, NodeId b, double length_km) {
  add_edge(a, b, length_km);
  add_edge(b, a, length_km);
}

const Point& RoadNetwork::node_position(NodeId id) const {
  O2O_EXPECTS(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
  return nodes_[static_cast<std::size_t>(id)];
}

const std::vector<RoadNetwork::Edge>& RoadNetwork::edges_from(NodeId id) const {
  O2O_EXPECTS(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
  return adjacency_[static_cast<std::size_t>(id)];
}

double RoadNetwork::default_snap_cell_km() const {
  Rect bounds{nodes_[0], nodes_[0]};
  for (const Point& p : nodes_) {
    bounds.lo.x = std::min(bounds.lo.x, p.x);
    bounds.lo.y = std::min(bounds.lo.y, p.y);
    bounds.hi.x = std::max(bounds.hi.x, p.x);
    bounds.hi.y = std::max(bounds.hi.y, p.y);
  }
  const double extent = std::max(bounds.width(), bounds.height());
  if (extent <= 0.0) return 0.5;
  // Aim for ~one node per cell on average: extent / sqrt(n) cells per side.
  const double per_side = std::sqrt(static_cast<double>(nodes_.size()));
  return std::max(0.05, extent / std::max(1.0, per_side));
}

void RoadNetwork::ensure_snap_index() const {
  if (snap_ready_.load(std::memory_order_acquire)) return;
  std::lock_guard lock(snap_build_mutex_);
  if (snap_ready_.load(std::memory_order_relaxed)) return;
  build_snap_cells(default_snap_cell_km());
  snap_ready_.store(true, std::memory_order_release);
}

void RoadNetwork::build_snap_index(double cell_km) {
  O2O_EXPECTS(cell_km > 0.0);
  O2O_EXPECTS(!nodes_.empty());
  std::lock_guard lock(snap_build_mutex_);
  build_snap_cells(cell_km);
  snap_ready_.store(true, std::memory_order_release);
}

void RoadNetwork::build_snap_cells(double cell_km) const {
  snap_cell_km_ = cell_km;
  snap_bounds_ = Rect{nodes_[0], nodes_[0]};
  for (const Point& p : nodes_) {
    snap_bounds_.lo.x = std::min(snap_bounds_.lo.x, p.x);
    snap_bounds_.lo.y = std::min(snap_bounds_.lo.y, p.y);
    snap_bounds_.hi.x = std::max(snap_bounds_.hi.x, p.x);
    snap_bounds_.hi.y = std::max(snap_bounds_.hi.y, p.y);
  }
  snap_cols_ = std::max(1, static_cast<int>(std::ceil(snap_bounds_.width() / cell_km)));
  snap_rows_ = std::max(1, static_cast<int>(std::ceil(snap_bounds_.height() / cell_km)));
  snap_cells_.assign(static_cast<std::size_t>(snap_cols_) * static_cast<std::size_t>(snap_rows_),
                     {});
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Point& p = nodes_[i];
    const int x = std::clamp(static_cast<int>((p.x - snap_bounds_.lo.x) / cell_km), 0,
                             snap_cols_ - 1);
    const int y = std::clamp(static_cast<int>((p.y - snap_bounds_.lo.y) / cell_km), 0,
                             snap_rows_ - 1);
    snap_cells_[static_cast<std::size_t>(y * snap_cols_ + x)].push_back(
        static_cast<NodeId>(i));
  }
}

NodeId RoadNetwork::nearest_node(const Point& p) const {
  O2O_EXPECTS(!nodes_.empty());
  ensure_snap_index();
  if (snap_cols_ > 0) {
    // Search outward ring by ring from p's cell until a candidate is found
    // and the ring distance exceeds the best candidate distance.
    const auto cell_of = [&](double v, double lo) {
      return static_cast<int>(std::floor((v - lo) / snap_cell_km_));
    };
    int cx = std::clamp(cell_of(p.x, snap_bounds_.lo.x), 0, snap_cols_ - 1);
    int cy = std::clamp(cell_of(p.y, snap_bounds_.lo.y), 0, snap_rows_ - 1);
    NodeId best = kInvalidNode;
    double best_sq = kInfiniteDistance;
    const int max_ring = std::max(snap_cols_, snap_rows_);
    for (int ring = 0; ring <= max_ring; ++ring) {
      if (best != kInvalidNode) {
        const double safe = (static_cast<double>(ring) - 1.0) * snap_cell_km_;
        if (safe > 0.0 && safe * safe >= best_sq) break;
      }
      for (int dy = -ring; dy <= ring; ++dy) {
        for (int dx = -ring; dx <= ring; ++dx) {
          if (std::max(std::abs(dx), std::abs(dy)) != ring) continue;
          const int x = cx + dx;
          const int y = cy + dy;
          if (x < 0 || x >= snap_cols_ || y < 0 || y >= snap_rows_) continue;
          for (NodeId id : snap_cells_[static_cast<std::size_t>(y * snap_cols_ + x)]) {
            const double d = squared_distance(p, nodes_[static_cast<std::size_t>(id)]);
            if (d < best_sq) {
              best_sq = d;
              best = id;
            }
          }
        }
      }
    }
    if (best != kInvalidNode) return best;
  }
  NodeId best = 0;
  double best_sq = squared_distance(p, nodes_[0]);
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    const double d = squared_distance(p, nodes_[i]);
    if (d < best_sq) {
      best_sq = d;
      best = static_cast<NodeId>(i);
    }
  }
  return best;
}

std::vector<NodeId> RoadNetwork::snap_many(std::span<const Point> points) const {
  std::vector<NodeId> result(points.size());
  if (points.empty()) return result;
  ensure_snap_index();
  for (std::size_t i = 0; i < points.size(); ++i) {
    result[i] = nearest_node(points[i]);
  }
  return result;
}

namespace {

std::vector<double> dijkstra_tree(const std::vector<std::vector<RoadNetwork::Edge>>& graph,
                                  NodeId source) {
  std::vector<double> dist(graph.size(), kInfiniteDistance);
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> frontier;
  dist[static_cast<std::size_t>(source)] = 0.0;
  frontier.emplace(0.0, source);
  while (!frontier.empty()) {
    const auto [d, node] = frontier.top();
    frontier.pop();
    if (d > dist[static_cast<std::size_t>(node)]) continue;
    for (const RoadNetwork::Edge& edge : graph[static_cast<std::size_t>(node)]) {
      const double candidate = d + edge.length_km;
      if (candidate < dist[static_cast<std::size_t>(edge.to)]) {
        dist[static_cast<std::size_t>(edge.to)] = candidate;
        frontier.emplace(candidate, edge.to);
      }
    }
  }
  return dist;
}

}  // namespace

std::vector<double> RoadNetwork::shortest_paths_from(NodeId source) const {
  O2O_EXPECTS(source >= 0 && static_cast<std::size_t>(source) < nodes_.size());
  return dijkstra_tree(adjacency_, source);
}

std::vector<double> RoadNetwork::shortest_paths_to(NodeId target) const {
  O2O_EXPECTS(target >= 0 && static_cast<std::size_t>(target) < nodes_.size());
  return dijkstra_tree(reverse_adjacency_, target);
}

double RoadNetwork::shortest_path(NodeId source, NodeId target) const {
  O2O_EXPECTS(source >= 0 && static_cast<std::size_t>(source) < nodes_.size());
  O2O_EXPECTS(target >= 0 && static_cast<std::size_t>(target) < nodes_.size());
  if (source == target) return 0.0;
  // Bidirectional Dijkstra. `best` is updated on every successful
  // relaxation by adding the opposite search's current label, so by the
  // time min-key(forward) + min-key(backward) >= best — or either search
  // is exhausted — `best` is the exact s-t distance (the optimal path's
  // meeting node has had both labels finalized, and the later of the two
  // finalizations saw the earlier one).
  using Item = std::pair<double, NodeId>;
  using Queue = std::priority_queue<Item, std::vector<Item>, std::greater<>>;
  std::vector<double> dist_f(nodes_.size(), kInfiniteDistance);
  std::vector<double> dist_b(nodes_.size(), kInfiniteDistance);
  Queue frontier_f;
  Queue frontier_b;
  dist_f[static_cast<std::size_t>(source)] = 0.0;
  dist_b[static_cast<std::size_t>(target)] = 0.0;
  frontier_f.emplace(0.0, source);
  frontier_b.emplace(0.0, target);
  double best = kInfiniteDistance;

  const auto expand = [&](Queue& frontier, std::vector<double>& dist,
                          const std::vector<double>& other_dist,
                          const std::vector<std::vector<Edge>>& graph) {
    const auto [d, node] = frontier.top();
    frontier.pop();
    if (d > dist[static_cast<std::size_t>(node)]) return;
    for (const Edge& edge : graph[static_cast<std::size_t>(node)]) {
      const double candidate = d + edge.length_km;
      if (candidate < dist[static_cast<std::size_t>(edge.to)]) {
        dist[static_cast<std::size_t>(edge.to)] = candidate;
        frontier.emplace(candidate, edge.to);
        const double through = candidate + other_dist[static_cast<std::size_t>(edge.to)];
        if (through < best) best = through;
      }
    }
  };

  while (!frontier_f.empty() || !frontier_b.empty()) {
    const double top_f = frontier_f.empty() ? kInfiniteDistance : frontier_f.top().first;
    const double top_b = frontier_b.empty() ? kInfiniteDistance : frontier_b.top().first;
    if (top_f + top_b >= best) break;
    if (top_f <= top_b) {
      expand(frontier_f, dist_f, dist_b, adjacency_);
    } else {
      expand(frontier_b, dist_b, dist_f, reverse_adjacency_);
    }
  }
  return best;
}

std::vector<NodeId> RoadNetwork::shortest_path_nodes(NodeId source, NodeId target) const {
  O2O_EXPECTS(source >= 0 && static_cast<std::size_t>(source) < nodes_.size());
  O2O_EXPECTS(target >= 0 && static_cast<std::size_t>(target) < nodes_.size());
  std::vector<double> dist(nodes_.size(), kInfiniteDistance);
  std::vector<NodeId> parent(nodes_.size(), kInvalidNode);
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> frontier;
  dist[static_cast<std::size_t>(source)] = 0.0;
  frontier.emplace(0.0, source);
  while (!frontier.empty()) {
    const auto [d, node] = frontier.top();
    frontier.pop();
    if (node == target) break;
    if (d > dist[static_cast<std::size_t>(node)]) continue;
    for (const Edge& edge : adjacency_[static_cast<std::size_t>(node)]) {
      const double candidate = d + edge.length_km;
      if (candidate < dist[static_cast<std::size_t>(edge.to)]) {
        dist[static_cast<std::size_t>(edge.to)] = candidate;
        parent[static_cast<std::size_t>(edge.to)] = node;
        frontier.emplace(candidate, edge.to);
      }
    }
  }
  if (dist[static_cast<std::size_t>(target)] == kInfiniteDistance) return {};
  std::vector<NodeId> path;
  for (NodeId at = target; at != kInvalidNode; at = parent[static_cast<std::size_t>(at)]) {
    path.push_back(at);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<Point> RoadNetwork::drive_path(const Point& from, const Point& to) const {
  std::vector<Point> path;
  path.push_back(from);
  const NodeId source = nearest_node(from);
  const NodeId target = nearest_node(to);
  if (source != target) {
    const std::vector<NodeId> nodes = shortest_path_nodes(source, target);
    for (NodeId node : nodes) {
      path.push_back(node_position(node));
    }
    // Unreachable: `nodes` is empty and the path degenerates to the
    // direct segment below.
  }
  path.push_back(to);
  return path;
}

RoadNetwork RoadNetwork::make_grid_city(int cols, int rows, double spacing_km,
                                        double jitter_km, double closure_fraction,
                                        std::uint64_t seed, Point origin) {
  O2O_EXPECTS(cols >= 2 && rows >= 2);
  O2O_EXPECTS(spacing_km > 0.0);
  O2O_EXPECTS(jitter_km >= 0.0 && jitter_km < spacing_km / 2.0);
  O2O_EXPECTS(closure_fraction >= 0.0 && closure_fraction < 1.0);
  Rng rng(seed);
  RoadNetwork network;
  const auto node_at = [cols](int x, int y) { return static_cast<NodeId>(y * cols + x); };
  for (int y = 0; y < rows; ++y) {
    for (int x = 0; x < cols; ++x) {
      const double jx = jitter_km > 0.0 ? rng.uniform(-jitter_km, jitter_km) : 0.0;
      const double jy = jitter_km > 0.0 ? rng.uniform(-jitter_km, jitter_km) : 0.0;
      network.add_node(Point{origin.x + x * spacing_km + jx,
                             origin.y + y * spacing_km + jy});
    }
  }
  for (int y = 0; y < rows; ++y) {
    for (int x = 0; x < cols; ++x) {
      // Always keep the "spanning comb" (all vertical streets plus the
      // bottom row) so the city stays strongly connected; closures only
      // remove the remaining redundant segments.
      if (x + 1 < cols) {
        const bool essential = (y == 0);
        if (essential || !rng.bernoulli(closure_fraction)) {
          network.add_bidirectional_edge(node_at(x, y), node_at(x + 1, y));
        }
      }
      if (y + 1 < rows) {
        network.add_bidirectional_edge(node_at(x, y), node_at(x, y + 1));
      }
    }
  }
  network.build_snap_index(std::max(0.25, spacing_km));
  return network;
}

std::uint64_t RoadNetwork::fingerprint() const {
  std::uint64_t h = mix64(nodes_.size() ^ (static_cast<std::uint64_t>(edge_count_) << 32));
  for (const Point& p : nodes_) {
    h = mix64(h ^ std::bit_cast<std::uint64_t>(p.x));
    h = mix64(h ^ std::bit_cast<std::uint64_t>(p.y));
  }
  for (const std::vector<Edge>& edges : adjacency_) {
    for (const Edge& edge : edges) {
      h = mix64(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(edge.to)));
      h = mix64(h ^ std::bit_cast<std::uint64_t>(edge.length_km));
    }
  }
  // 0 means "don't pin" to ContractionHierarchy::load; never emit it.
  return h == 0 ? 1 : h;
}

// ---------------------------------------------------------------------------
// NetworkOracle
// ---------------------------------------------------------------------------

NetworkOracle::NetworkOracle(const RoadNetwork& network, std::size_t cache_capacity,
                             std::size_t shard_count)
    : network_(network) {
  O2O_EXPECTS(network.node_count() > 0);
  O2O_EXPECTS(shard_count > 0);
  if (cache_capacity == kAutoCapacity) {
    // Frame working set: at most one forward and one reverse tree per
    // node, memory-capped (a tree is node_count doubles). The memory cap
    // wins over the working-set floor on very large networks.
    const std::size_t working_set = std::max<std::size_t>(1024, 2 * network.node_count() + 64);
    const std::size_t memory_bound =
        (std::size_t{256} << 20) / (sizeof(double) * network.node_count());
    cache_capacity = std::max<std::size_t>(64, std::min(working_set, memory_bound));
  }
  // Never let rounding push the total above the requested capacity: use
  // at most `cache_capacity` shards, each holding floor(capacity/shards).
  const std::size_t shards_used = std::min(shard_count, cache_capacity);
  per_shard_capacity_ = std::max<std::size_t>(1, cache_capacity / shards_used);
  shards_ = std::vector<Shard>(shards_used);
}

std::size_t NetworkOracle::SnapKeyHash::operator()(const SnapKey& k) const noexcept {
  return static_cast<std::size_t>(mix64(k.x_bits ^ mix64(k.y_bits)));
}

NetworkOracle::Shard& NetworkOracle::shard_for(std::uint64_t mixed_hash) const {
  return shards_[mixed_hash % shards_.size()];
}

NodeId NetworkOracle::snap(const Point& p) const {
  const SnapKey key{std::bit_cast<std::uint64_t>(p.x), std::bit_cast<std::uint64_t>(p.y)};
  Shard& shard = shard_for(mix64(key.x_bits ^ mix64(key.y_bits)));
  {
    std::shared_lock lock(shard.mutex);
    const auto it = shard.snap_memo.find(key);
    if (it != shard.snap_memo.end()) {
      obs::add(obs::Counter::kSnapHits);
      return it->second;
    }
  }
  obs::add(obs::Counter::kSnapMisses);
  const NodeId node = network_.nearest_node(p);
  std::unique_lock lock(shard.mutex);
  if (shard.snap_memo.size() >= kSnapMemoPerShardCap) shard.snap_memo.clear();
  shard.snap_memo.emplace(key, node);
  return node;
}

NetworkOracle::Tree NetworkOracle::tree(NodeId node, bool reverse) const {
  const std::uint64_t key = tree_key(node, reverse);
  Shard& shard = shard_for(mix64(key));
  {
    // Hits need the exclusive lock too: the LRU splice mutates the list.
    std::unique_lock lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      obs::add(obs::Counter::kOracleTreeHits);
      return it->second->tree;
    }
  }
  obs::add(obs::Counter::kOracleTreeMisses);
  // Miss: run Dijkstra outside the lock so other threads keep hitting
  // this shard meanwhile, then insert with a double-check (losing a
  // build race wastes one tree build, never correctness).
  auto built = std::make_shared<const std::vector<double>>(
      reverse ? network_.shortest_paths_to(node) : network_.shortest_paths_from(node));
  std::unique_lock lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->tree;
  }
  while (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
  }
  shard.lru.push_front(CacheEntry{key, std::move(built)});
  shard.index.emplace(key, shard.lru.begin());
  return shard.lru.front().tree;
}

double NetworkOracle::distance(const Point& a, const Point& b) const {
  const NodeId from = snap(a);
  const NodeId to = snap(b);
  const double snap_a = euclidean_distance(a, network_.node_position(from));
  const double snap_b = euclidean_distance(b, network_.node_position(to));
  if (from == to) return euclidean_distance(a, b);
  const double network_leg = (*tree(from, /*reverse=*/false))[static_cast<std::size_t>(to)];
  return snap_a + network_leg + snap_b;
}

std::vector<double> NetworkOracle::distances_from(const Point& source,
                                                  std::span<const Point> targets) const {
  std::vector<double> result(targets.size());
  distances_from_into(source, targets, result.data());
  return result;
}

std::vector<double> NetworkOracle::distances_to(std::span<const Point> sources,
                                                const Point& target) const {
  std::vector<double> result(sources.size());
  distances_to_into(sources, target, result.data());
  return result;
}

void NetworkOracle::distances_from_into(const Point& source, std::span<const Point> targets,
                                        double* out) const {
  if (targets.empty()) return;
  const NodeId from = snap(source);
  const double snap_a = euclidean_distance(source, network_.node_position(from));
  Tree tree_ptr;  // fetched on first use: an all-same-node batch needs no tree
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const NodeId to = snap(targets[i]);
    if (from == to) {
      out[i] = euclidean_distance(source, targets[i]);
      continue;
    }
    if (!tree_ptr) tree_ptr = tree(from, /*reverse=*/false);
    const double snap_b = euclidean_distance(targets[i], network_.node_position(to));
    out[i] = snap_a + (*tree_ptr)[static_cast<std::size_t>(to)] + snap_b;
  }
}

void NetworkOracle::distances_to_into(std::span<const Point> sources, const Point& target,
                                      double* out) const {
  if (sources.empty()) return;
  const NodeId to = snap(target);
  const double snap_b = euclidean_distance(target, network_.node_position(to));
  Tree tree_ptr;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const NodeId from = snap(sources[i]);
    if (from == to) {
      out[i] = euclidean_distance(sources[i], target);
      continue;
    }
    if (!tree_ptr) tree_ptr = tree(to, /*reverse=*/true);
    const double snap_a = euclidean_distance(sources[i], network_.node_position(from));
    out[i] = snap_a + (*tree_ptr)[static_cast<std::size_t>(from)] + snap_b;
  }
}

void NetworkOracle::prepare_frame(std::span<const Point> points) const {
  // Only the frame's churn pays the snap: a point the previous call
  // warmed still has its memo entry (the memo only drops entries on the
  // rare per-shard cap flush, where the lazy path in snap() recovers),
  // so re-warming it would just take the shard lock to find a hit.
  std::lock_guard lock(prepare_mutex_);
  next_prepared_.clear();
  std::size_t carried = 0;
  for (const Point& p : points) {
    const SnapKey key{std::bit_cast<std::uint64_t>(p.x), std::bit_cast<std::uint64_t>(p.y)};
    const bool seen_last_frame = prepared_.contains(key);
    next_prepared_.insert(key);
    if (seen_last_frame) {
      ++carried;
      continue;
    }
    (void)snap(p);
  }
  prepared_.swap(next_prepared_);
  last_prepare_carried_ = carried;
}

std::size_t NetworkOracle::cache_size() const {
  std::size_t total = 0;
  for (Shard& shard : shards_) {
    std::shared_lock lock(shard.mutex);
    total += shard.lru.size();
  }
  return total;
}

bool NetworkOracle::tree_cached(NodeId node, bool reverse) const {
  const std::uint64_t key = tree_key(node, reverse);
  Shard& shard = shard_for(mix64(key));
  std::shared_lock lock(shard.mutex);
  return shard.index.contains(key);
}

}  // namespace o2o::geo
