// A road network substrate: weighted directed graph over plane nodes with
// Dijkstra shortest paths, a perturbed-grid street builder, and a
// DistanceOracle adapter that snaps arbitrary points to their nearest
// node. Lets every experiment run on road distances instead of the
// Euclidean surface with a one-line change.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <list>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "geo/distance_oracle.h"
#include "geo/point.h"

namespace o2o::geo {

using NodeId = std::int32_t;
inline constexpr NodeId kInvalidNode = -1;
inline constexpr double kInfiniteDistance = std::numeric_limits<double>::infinity();

/// Weighted directed graph embedded in the km plane.
///
/// Thread-safety: construction (add_node / add_edge / build_snap_index)
/// is single-threaded; every const query is safe to call concurrently
/// afterwards. The snap index builds itself lazily on the first snap
/// (double-checked under an internal mutex), so concurrent first snaps
/// are also safe.
class RoadNetwork {
 public:
  struct Edge {
    NodeId to = kInvalidNode;
    double length_km = 0.0;
  };

  RoadNetwork() = default;
  RoadNetwork(const RoadNetwork& other);
  RoadNetwork(RoadNetwork&& other) noexcept;
  RoadNetwork& operator=(const RoadNetwork& other);
  RoadNetwork& operator=(RoadNetwork&& other) noexcept;

  /// Adds a node at `position`; returns its id (dense, starting at 0).
  NodeId add_node(Point position);

  /// Adds a directed edge. Length defaults to the Euclidean gap; an
  /// explicit length >= Euclidean models curvy or slow streets.
  void add_edge(NodeId from, NodeId to, double length_km = -1.0);

  /// Adds edges in both directions.
  void add_bidirectional_edge(NodeId a, NodeId b, double length_km = -1.0);

  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t edge_count() const noexcept { return edge_count_; }
  const Point& node_position(NodeId id) const;
  const std::vector<Edge>& edges_from(NodeId id) const;

  /// Nearest node to `p` by straight-line distance. Grid-accelerated: the
  /// snap index is built lazily on first use (or explicitly via
  /// build_snap_index), then searched outward ring by ring.
  NodeId nearest_node(const Point& p) const;

  /// Bulk snap: nearest node for every point, in order. One index
  /// ensure + a ring search per point — the frame-level entry point for
  /// snapping a whole taxi/request snapshot at once.
  std::vector<NodeId> snap_many(std::span<const Point> points) const;

  /// Builds the snapping accelerator with an explicit cell size. Optional
  /// since the index now also builds itself (with an auto-sized cell) on
  /// the first nearest_node / snap_many call; call it only to control
  /// `cell_km`. Node insertions invalidate the index; the next snap
  /// rebuilds it.
  void build_snap_index(double cell_km = 0.5);

  /// Single-source shortest path lengths (Dijkstra). Unreachable -> +inf.
  std::vector<double> shortest_paths_from(NodeId source) const;

  /// Single-target shortest path lengths over the reversed graph:
  /// entry v is the length of the shortest v -> target path (+inf when
  /// target is unreachable from v). One call prices a whole candidate
  /// set against a fixed destination — the dispatch hot-path shape.
  std::vector<double> shortest_paths_to(NodeId target) const;

  /// Point-to-point shortest path length; +inf when unreachable.
  /// Bounded bidirectional Dijkstra: grows a forward ball from `source`
  /// and a backward ball from `target`, stopping as soon as the two
  /// frontiers certify the best meeting path — far less work than a full
  /// single-source tree for one-off queries.
  double shortest_path(NodeId source, NodeId target) const;

  /// Node sequence of a shortest path (empty when unreachable).
  std::vector<NodeId> shortest_path_nodes(NodeId source, NodeId target) const;

  /// Drivable polyline from `from` to `to`: straight snap leg to the
  /// nearest node, the shortest node path, straight snap leg off. Falls
  /// back to the direct segment when the endpoints share a node or the
  /// network has no path. Always starts at `from` and ends at `to`.
  std::vector<Point> drive_path(const Point& from, const Point& to) const;

  /// Builds a city as a perturbed grid: `cols` x `rows` intersections with
  /// `spacing_km` blocks, node positions jittered by `jitter_km`, and a
  /// fraction `closure_fraction` of street segments removed (kept
  /// connected by construction of the remaining spanning structure).
  /// `origin` places the grid's south-west corner, so the network can be
  /// laid out directly in a trace's coordinate frame.
  static RoadNetwork make_grid_city(int cols, int rows, double spacing_km,
                                    double jitter_km = 0.0, double closure_fraction = 0.0,
                                    std::uint64_t seed = 1, Point origin = {0.0, 0.0});

  /// Order-sensitive structural hash: node coordinate bit patterns plus
  /// every directed edge (from, to, weight bits), chained through a
  /// 64-bit mixer. Two networks built by the same construction sequence
  /// hash equal; any divergence (a reordered import, a changed weight)
  /// hashes different. Pins CH artifacts (.o2och) to the graph they were
  /// preprocessed from. O(n + m), computed on demand; never 0.
  std::uint64_t fingerprint() const;

 private:
  std::vector<Point> nodes_;
  std::vector<std::vector<Edge>> adjacency_;
  std::vector<std::vector<Edge>> reverse_adjacency_;
  std::size_t edge_count_ = 0;

  // Snapping accelerator; mutable + guarded so it can build lazily under
  // const concurrent queries. `snap_ready_` is the release/acquire gate:
  // readers that observe true see a fully built index.
  void ensure_snap_index() const;
  void build_snap_cells(double cell_km) const;
  double default_snap_cell_km() const;
  void copy_from(const RoadNetwork& other);

  mutable std::mutex snap_build_mutex_;
  mutable std::atomic<bool> snap_ready_{false};
  mutable double snap_cell_km_ = 0.0;
  mutable Rect snap_bounds_{};
  mutable int snap_cols_ = 0;
  mutable int snap_rows_ = 0;
  mutable std::vector<std::vector<NodeId>> snap_cells_;
};

/// DistanceOracle over a road network: snaps both endpoints to their
/// nearest nodes and returns the network shortest-path length plus the
/// straight-line snap gaps.
///
/// The engine behind it is a sharded cache of Dijkstra trees (forward
/// trees for distance()/distances_from(), reverse trees for
/// distances_to()), each shard a std::shared_mutex over a true-LRU
/// (intrusive list + hash index), plus a sharded exact-key snap memo so
/// repeated endpoints resolve without re-running the ring search. Tree
/// construction happens outside the shard lock, so a miss never blocks
/// other shards or readers of the same shard's unrelated entries, and
/// every query is safe to issue from any number of threads —
/// capabilities().concurrent_queries is true, which lets the parallel
/// preference build apply to road-network runs.
class NetworkOracle final : public DistanceOracle {
 public:
  /// `cache_capacity` kAutoCapacity (0) sizes the tree cache to the
  /// frame working set — up to two trees per node (one forward, one
  /// reverse, the most any dispatch frame can root there), floored at
  /// 1024 and capped at ~256 MB of tree storage (the cap wins on very
  /// large networks) — so a steady-state frame never rebuilds a tree it
  /// just used.
  static constexpr std::size_t kAutoCapacity = 0;

  explicit NetworkOracle(const RoadNetwork& network,
                         std::size_t cache_capacity = kAutoCapacity,
                         std::size_t shard_count = 8);

  double distance(const Point& a, const Point& b) const override;

  /// One forward tree rooted at `source`, snapped once, prices the batch.
  std::vector<double> distances_from(const Point& source,
                                     std::span<const Point> targets) const override;

  /// One *reverse* tree rooted at `target` prices the batch: entry i is
  /// D(sources[i], target) with the usual snap gaps. Equal to the
  /// pairwise distance() up to floating-point summation order along the
  /// (identical-length) shortest path.
  std::vector<double> distances_to(std::span<const Point> sources,
                                   const Point& target) const override;

  /// Allocation-free row forms; the allocating overloads above delegate
  /// here, so the priced values are identical byte for byte.
  void distances_from_into(const Point& source, std::span<const Point> targets,
                           double* out) const override;
  void distances_to_into(std::span<const Point> sources, const Point& target,
                         double* out) const override;

  /// Warms the snap memo (and the lazy snap index) for a frame snapshot.
  /// Delta-aware: points already warmed by the previous prepare_frame
  /// call are skipped without touching the shard locks, so a
  /// steady-state frame only pays for its churn. (Dijkstra trees are
  /// never built here — they warm lazily on first query and stay
  /// resident via the LRU sizing; see kAutoCapacity.)
  void prepare_frame(std::span<const Point> points) const override;

  /// Points skipped by the last prepare_frame because the previous
  /// frame already warmed them (test/bench probe).
  std::size_t last_prepare_carried() const noexcept { return last_prepare_carried_; }

  /// Every internal cache is sharded and locked (concurrent), but the
  /// graph is directed: forward and reverse shortest paths may differ.
  Capabilities capabilities() const noexcept override {
    return {.concurrent_queries = true, .symmetric_distances = false};
  }

  /// Total cached trees across shards (forward + reverse). Always
  /// <= cache_capacity(); shards evict their own LRU tail independently.
  std::size_t cache_size() const;
  std::size_t cache_capacity() const noexcept { return per_shard_capacity_ * shards_.size(); }
  std::size_t shard_count() const noexcept { return shards_.size(); }

  /// Whether the tree rooted at `node` is currently cached (test probe).
  bool tree_cached(NodeId node, bool reverse = false) const;

 private:
  using Tree = std::shared_ptr<const std::vector<double>>;

  struct CacheEntry {
    std::uint64_t key = 0;
    Tree tree;
  };

  /// Exact-key memo of nearest_node: keyed by the raw coordinate bits, so
  /// a hit is always the exact same query (no tolerance, no staleness —
  /// a moved taxi has different bits and simply misses).
  struct SnapKey {
    std::uint64_t x_bits = 0;
    std::uint64_t y_bits = 0;
    bool operator==(const SnapKey&) const = default;
  };
  struct SnapKeyHash {
    std::size_t operator()(const SnapKey& k) const noexcept;
  };

  struct Shard {
    mutable std::shared_mutex mutex;
    // Tree LRU: list front = most recently used; index points into it.
    std::list<CacheEntry> lru;
    std::unordered_map<std::uint64_t, std::list<CacheEntry>::iterator> index;
    std::unordered_map<SnapKey, NodeId, SnapKeyHash> snap_memo;
  };

  static std::uint64_t tree_key(NodeId node, bool reverse) noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(node)) << 1) |
           static_cast<std::uint64_t>(reverse);
  }
  Shard& shard_for(std::uint64_t mixed_hash) const;
  NodeId snap(const Point& p) const;
  Tree tree(NodeId node, bool reverse) const;

  const RoadNetwork& network_;
  std::size_t per_shard_capacity_;
  mutable std::vector<Shard> shards_;

  // Frame-delta state for prepare_frame: the set of coordinate keys the
  // previous call warmed. Guarded by its own mutex (prepare_frame may be
  // invoked concurrently); the query paths never touch it.
  mutable std::mutex prepare_mutex_;
  mutable std::unordered_set<SnapKey, SnapKeyHash> prepared_;
  mutable std::unordered_set<SnapKey, SnapKeyHash> next_prepared_;
  mutable std::size_t last_prepare_carried_ = 0;
};

}  // namespace o2o::geo
