// A road network substrate: weighted directed graph over plane nodes with
// Dijkstra shortest paths, a perturbed-grid street builder, and a
// DistanceOracle adapter that snaps arbitrary points to their nearest
// node. Lets every experiment run on road distances instead of the
// Euclidean surface with a one-line change.
#pragma once

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "geo/distance_oracle.h"
#include "geo/point.h"

namespace o2o::geo {

using NodeId = std::int32_t;
inline constexpr NodeId kInvalidNode = -1;
inline constexpr double kInfiniteDistance = std::numeric_limits<double>::infinity();

/// Weighted directed graph embedded in the km plane.
class RoadNetwork {
 public:
  struct Edge {
    NodeId to = kInvalidNode;
    double length_km = 0.0;
  };

  /// Adds a node at `position`; returns its id (dense, starting at 0).
  NodeId add_node(Point position);

  /// Adds a directed edge. Length defaults to the Euclidean gap; an
  /// explicit length >= Euclidean models curvy or slow streets.
  void add_edge(NodeId from, NodeId to, double length_km = -1.0);

  /// Adds edges in both directions.
  void add_bidirectional_edge(NodeId a, NodeId b, double length_km = -1.0);

  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t edge_count() const noexcept { return edge_count_; }
  const Point& node_position(NodeId id) const;
  const std::vector<Edge>& edges_from(NodeId id) const;

  /// Nearest node to `p` by straight-line distance (linear scan fallback,
  /// grid-accelerated when build_snap_index() has been called).
  NodeId nearest_node(const Point& p) const;

  /// Builds the snapping accelerator (call after all nodes are added).
  void build_snap_index(double cell_km = 0.5);

  /// Single-source shortest path lengths (Dijkstra). Unreachable -> +inf.
  std::vector<double> shortest_paths_from(NodeId source) const;

  /// Point-to-point shortest path length; +inf when unreachable.
  double shortest_path(NodeId source, NodeId target) const;

  /// Node sequence of a shortest path (empty when unreachable).
  std::vector<NodeId> shortest_path_nodes(NodeId source, NodeId target) const;

  /// Drivable polyline from `from` to `to`: straight snap leg to the
  /// nearest node, the shortest node path, straight snap leg off. Falls
  /// back to the direct segment when the endpoints share a node or the
  /// network has no path. Always starts at `from` and ends at `to`.
  std::vector<Point> drive_path(const Point& from, const Point& to) const;

  /// Builds a city as a perturbed grid: `cols` x `rows` intersections with
  /// `spacing_km` blocks, node positions jittered by `jitter_km`, and a
  /// fraction `closure_fraction` of street segments removed (kept
  /// connected by construction of the remaining spanning structure).
  /// `origin` places the grid's south-west corner, so the network can be
  /// laid out directly in a trace's coordinate frame.
  static RoadNetwork make_grid_city(int cols, int rows, double spacing_km,
                                    double jitter_km = 0.0, double closure_fraction = 0.0,
                                    std::uint64_t seed = 1, Point origin = {0.0, 0.0});

 private:
  std::vector<Point> nodes_;
  std::vector<std::vector<Edge>> adjacency_;
  std::size_t edge_count_ = 0;

  // snapping accelerator
  double snap_cell_km_ = 0.0;
  Rect snap_bounds_{};
  int snap_cols_ = 0;
  int snap_rows_ = 0;
  std::vector<std::vector<NodeId>> snap_cells_;
};

/// DistanceOracle over a road network: snaps both endpoints to their
/// nearest nodes and returns the network shortest-path length plus the
/// straight-line snap gaps. Caches full Dijkstra trees per source node
/// (bounded LRU-ish eviction) because dispatch batches reuse sources.
class NetworkOracle final : public DistanceOracle {
 public:
  explicit NetworkOracle(const RoadNetwork& network, std::size_t cache_capacity = 1024);

  double distance(const Point& a, const Point& b) const override;

  /// The Dijkstra-tree cache is mutated without synchronization.
  bool concurrent_queries_safe() const noexcept override { return false; }

  std::size_t cache_size() const noexcept { return cache_.size(); }

 private:
  const RoadNetwork& network_;
  std::size_t cache_capacity_;
  mutable std::unordered_map<NodeId, std::vector<double>> cache_;
  mutable std::vector<NodeId> cache_order_;

  const std::vector<double>& tree_for(NodeId source) const;
};

}  // namespace o2o::geo
