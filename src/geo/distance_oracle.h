// The paper's distance function D(.,.) as an abstract oracle, so every
// algorithm (preferences, routing, baselines) is written once and runs
// against straight-line, rectilinear, circuity-scaled, or road-network
// shortest-path distances.
#pragma once

#include <memory>

#include "geo/point.h"
#include "util/contracts.h"

namespace o2o::geo {

/// Abstract shortest-path distance D(a, b) in km. Implementations must be
/// non-negative, symmetric up to the network's one-way streets, and satisfy
/// D(a, a) == 0.
class DistanceOracle {
 public:
  virtual ~DistanceOracle() = default;
  virtual double distance(const Point& a, const Point& b) const = 0;

  /// Whether distance() may be called from several threads at once.
  /// Oracles with unsynchronized internal caches must return false.
  virtual bool concurrent_queries_safe() const noexcept { return true; }
};

/// Straight-line distance (the paper's Euclidean surface).
class EuclideanOracle final : public DistanceOracle {
 public:
  double distance(const Point& a, const Point& b) const override {
    return euclidean_distance(a, b);
  }
};

/// Rectilinear (grid street) distance.
class ManhattanOracle final : public DistanceOracle {
 public:
  double distance(const Point& a, const Point& b) const override {
    return manhattan_distance(a, b);
  }
};

/// Euclidean distance inflated by a circuity factor >= 1 -- the standard
/// approximation of road distance from straight-line distance (factor
/// ~1.3 for US cities).
class CircuityOracle final : public DistanceOracle {
 public:
  explicit CircuityOracle(double factor) : factor_(factor) {
    O2O_EXPECTS(factor >= 1.0);
  }
  double distance(const Point& a, const Point& b) const override {
    return factor_ * euclidean_distance(a, b);
  }
  double factor() const noexcept { return factor_; }

 private:
  double factor_;
};

}  // namespace o2o::geo
