// The paper's distance function D(.,.) as an abstract oracle, so every
// algorithm (preferences, routing, baselines) is written once and runs
// against straight-line, rectilinear, circuity-scaled, or road-network
// shortest-path distances.
#pragma once

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include "geo/point.h"
#include "util/contracts.h"

namespace o2o::geo {

/// Abstract shortest-path distance D(a, b) in km. Implementations must be
/// non-negative, symmetric up to the network's one-way streets, and satisfy
/// D(a, a) == 0.
class DistanceOracle {
 public:
  virtual ~DistanceOracle() = default;
  virtual double distance(const Point& a, const Point& b) const = 0;

  /// Bulk query: D(source, targets[i]) for every target. The default
  /// loops over distance(); oracles with per-source state (the network
  /// oracle's Dijkstra trees) override it to resolve the source once and
  /// serve the whole batch from one cached tree.
  virtual std::vector<double> distances_from(const Point& source,
                                             std::span<const Point> targets) const {
    std::vector<double> result(targets.size());
    for (std::size_t i = 0; i < targets.size(); ++i) {
      result[i] = distance(source, targets[i]);
    }
    return result;
  }

  /// Bulk query in the other direction: D(sources[i], target) for every
  /// source — the shape of the dispatch hot path, where one request's
  /// pick-up is scored against many candidate taxis. The default loops
  /// over distance(); the network oracle serves the batch from one cached
  /// *reverse* Dijkstra tree rooted at the target.
  virtual std::vector<double> distances_to(std::span<const Point> sources,
                                           const Point& target) const {
    std::vector<double> result(sources.size());
    for (std::size_t i = 0; i < sources.size(); ++i) {
      result[i] = distance(sources[i], target);
    }
    return result;
  }

  /// distances_from writing into a caller-owned row of targets.size()
  /// doubles — the shape of the allocation-free hot paths (stop tables,
  /// the SIMD leg gather), which reuse one buffer across thousands of
  /// rows. Values are exactly distances_from(): the default delegates to
  /// it (so subclasses overriding only the allocating form stay correct),
  /// and the in-tree oracles override with the same arithmetic minus the
  /// allocation.
  virtual void distances_from_into(const Point& source, std::span<const Point> targets,
                                   double* out) const {
    const std::vector<double> row = distances_from(source, targets);
    std::copy(row.begin(), row.end(), out);
  }

  /// distances_to writing into a caller-owned row; same contract as
  /// distances_from_into.
  virtual void distances_to_into(std::span<const Point> sources, const Point& target,
                                 double* out) const {
    const std::vector<double> row = distances_to(sources, target);
    std::copy(row.begin(), row.end(), out);
  }

  /// Frame-level hint: the given points (typically the frame's idle-taxi
  /// snapshot) are about to appear as endpoints of many queries. Default
  /// no-op; the network-backed oracles warm their snap memos (and the CH
  /// oracle its per-node search spaces) so per-query endpoint resolution
  /// becomes a hash hit for the rest of the frame.
  virtual void prepare_frame(std::span<const Point> points) const { (void)points; }

  /// Static properties of an oracle, stated in one place. Consumers that
  /// branch on a property (the parallel profile fan-out, the share-group
  /// reverse-row reuse) read the struct instead of per-property virtuals,
  /// so a new backend declares everything with one override.
  struct Capabilities {
    /// distance() and the bulk rows may be called from several threads at
    /// once. Oracles with unsynchronized internal caches must clear this.
    bool concurrent_queries = true;
    /// D(a, b) == D(b, a) bitwise for every pair, letting bulk consumers
    /// (the share-group leg gather) serve a reverse row from the forward
    /// one. Metric oracles are symmetric; the network-backed oracles are
    /// not (one-way streets, directed snapping).
    bool symmetric_distances = true;

    friend bool operator==(const Capabilities&, const Capabilities&) = default;
  };

  /// The default claims the safest metric-oracle combination: concurrent
  /// and symmetric. Stateful or directed backends override.
  virtual Capabilities capabilities() const noexcept { return {}; }
};

/// Straight-line distance (the paper's Euclidean surface).
class EuclideanOracle final : public DistanceOracle {
 public:
  double distance(const Point& a, const Point& b) const override {
    return euclidean_distance(a, b);
  }
  void distances_from_into(const Point& source, std::span<const Point> targets,
                           double* out) const override {
    for (std::size_t i = 0; i < targets.size(); ++i) {
      out[i] = euclidean_distance(source, targets[i]);
    }
  }
  void distances_to_into(std::span<const Point> sources, const Point& target,
                         double* out) const override {
    for (std::size_t i = 0; i < sources.size(); ++i) {
      out[i] = euclidean_distance(sources[i], target);
    }
  }
};

/// Rectilinear (grid street) distance.
class ManhattanOracle final : public DistanceOracle {
 public:
  double distance(const Point& a, const Point& b) const override {
    return manhattan_distance(a, b);
  }
  void distances_from_into(const Point& source, std::span<const Point> targets,
                           double* out) const override {
    for (std::size_t i = 0; i < targets.size(); ++i) {
      out[i] = manhattan_distance(source, targets[i]);
    }
  }
  void distances_to_into(std::span<const Point> sources, const Point& target,
                         double* out) const override {
    for (std::size_t i = 0; i < sources.size(); ++i) {
      out[i] = manhattan_distance(sources[i], target);
    }
  }
};

/// Euclidean distance inflated by a circuity factor >= 1 -- the standard
/// approximation of road distance from straight-line distance (factor
/// ~1.3 for US cities).
class CircuityOracle final : public DistanceOracle {
 public:
  explicit CircuityOracle(double factor) : factor_(factor) {
    O2O_EXPECTS(factor >= 1.0);
  }
  double distance(const Point& a, const Point& b) const override {
    return factor_ * euclidean_distance(a, b);
  }
  void distances_from_into(const Point& source, std::span<const Point> targets,
                           double* out) const override {
    for (std::size_t i = 0; i < targets.size(); ++i) {
      out[i] = factor_ * euclidean_distance(source, targets[i]);
    }
  }
  void distances_to_into(std::span<const Point> sources, const Point& target,
                         double* out) const override {
    for (std::size_t i = 0; i < sources.size(); ++i) {
      out[i] = factor_ * euclidean_distance(sources[i], target);
    }
  }
  double factor() const noexcept { return factor_; }

 private:
  double factor_;
};

}  // namespace o2o::geo
