// DIMACS shortest-path challenge importer/exporter: the `.gr` arc list
// (`p sp n m` header, `a u v w` arcs, 1-based ids, integer weights) plus
// the `.co` coordinate file (`v id x y`, micro-degree longitude/latitude
// in the road instances). The canonical public format for real city road
// graphs (the 9th DIMACS USA-road instances), and the repo's fixture
// format: write_dimacs exports any RoadNetwork, so tests and CI build
// city-scale fixtures from make_grid_city and round-trip them.
#pragma once

#include <iosfwd>
#include <string>

#include "geo/road_network.h"

namespace o2o::geo {

struct DimacsOptions {
  /// Multiplies every arc weight on import. The road instances carry
  /// integer weights in unit systems that vary per instance (distance
  /// instances are ~decametres); pick the factor that lands in km. The
  /// default 1.0 keeps weights bit-exact — what the CH differential
  /// tests rely on (integer weights sum exactly in doubles).
  double weight_scale = 1.0;

  /// When true, `.co` x/y are micro-degree longitude/latitude (the road
  /// instances' convention) and are projected to the km plane with an
  /// equirectangular projection referenced at the first node. When
  /// false, x/y are plane coordinates scaled by `coordinate_scale`.
  bool project_coordinates = false;

  /// Plane-coordinate multiplier when not projecting (e.g. 1e-6 to read
  /// back write_dimacs output, which stores km * 1e6 for integrality).
  double coordinate_scale = 1.0;

  friend bool operator==(const DimacsOptions&, const DimacsOptions&) = default;
};

/// Parses a graph from a `.gr` arc stream and `.co` coordinate stream.
/// Node ids are compacted to 0-based in file order; every node must have
/// a coordinate. Malformed input (missing header, id out of range,
/// negative weight, arc/node count mismatch) throws ContractViolation.
RoadNetwork read_dimacs(std::istream& gr, std::istream& co, const DimacsOptions& options = {});

/// File variant of read_dimacs; throws ContractViolation when either
/// file cannot be opened.
RoadNetwork read_dimacs_files(const std::string& gr_path, const std::string& co_path,
                              const DimacsOptions& options = {});

/// Exports `network` in DIMACS form: arcs as llround(length * weight_scale)
/// (use a scale that makes lengths integral for lossless round-trips),
/// coordinates as llround(coord * 1e6) read back with
/// coordinate_scale = 1e-6.
void write_dimacs(const RoadNetwork& network, std::ostream& gr, std::ostream& co,
                  double weight_scale = 1.0);

/// File variant of write_dimacs; returns false when either file cannot
/// be opened or a write fails.
bool write_dimacs_files(const RoadNetwork& network, const std::string& gr_path,
                        const std::string& co_path, double weight_scale = 1.0);

}  // namespace o2o::geo
