// OpenStreetMap XML importer: turns a raw `.osm` extract (the format
// every city snapshot ships in) into a RoadNetwork. A deliberately
// minimal hand-rolled scanner — no XML library dependency — that reads
// `<node id lat lon>` elements and `<way>` elements carrying a `highway`
// tag, honouring `oneway`. Way geometry nodes are compacted (only nodes
// referenced by kept ways become graph nodes) and lat/lon is projected
// to the km plane about the first kept node.
#pragma once

#include <iosfwd>
#include <string>

#include "geo/road_network.h"

namespace o2o::geo {

struct OsmOptions {
  /// Edge length: straight-line projected distance between consecutive
  /// way nodes, multiplied by this circuity allowance (1.0 = pure
  /// geometry; segments are short, so geometry is already near-exact).
  double length_factor = 1.0;

  friend bool operator==(const OsmOptions&, const OsmOptions&) = default;
};

/// Parses an OSM XML stream. Ways without a `highway` tag are ignored;
/// `oneway=yes/1/true` keeps the nd order, `oneway=-1/reverse` flips it,
/// anything else (or absent) is bidirectional. Returns an empty network
/// when the extract has no highway ways. Malformed node/way elements
/// (missing id/lat/lon, unknown nd refs) throw ContractViolation.
RoadNetwork read_osm_xml(std::istream& in, const OsmOptions& options = {});

/// File variant; throws ContractViolation when the file cannot be opened.
RoadNetwork read_osm_xml_file(const std::string& path, const OsmOptions& options = {});

}  // namespace o2o::geo
