#include "geo/import/osm_xml.h"

#include <cstdint>
#include <fstream>
#include <istream>
#include <sstream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "geo/projection.h"
#include "util/contracts.h"

namespace o2o::geo {

namespace {

/// Value of `key="..."` (or single-quoted) inside one element's text;
/// empty when absent. Enough XML for OSM attribute soup — values in OSM
/// exports never contain unescaped quotes.
std::string_view attribute(std::string_view element, std::string_view key) {
  std::size_t pos = 0;
  while ((pos = element.find(key, pos)) != std::string_view::npos) {
    std::size_t cursor = pos + key.size();
    // Demand a real attribute: preceded by whitespace, followed by '='.
    if (pos == 0 || (element[pos - 1] != ' ' && element[pos - 1] != '\t' &&
                     element[pos - 1] != '\n')) {
      pos = cursor;
      continue;
    }
    while (cursor < element.size() && element[cursor] == ' ') ++cursor;
    if (cursor >= element.size() || element[cursor] != '=') {
      pos = cursor;
      continue;
    }
    ++cursor;
    while (cursor < element.size() && element[cursor] == ' ') ++cursor;
    if (cursor >= element.size() || (element[cursor] != '"' && element[cursor] != '\'')) {
      pos = cursor;
      continue;
    }
    const char quote = element[cursor];
    ++cursor;
    const std::size_t close = element.find(quote, cursor);
    if (close == std::string_view::npos) return {};
    return element.substr(cursor, close - cursor);
  }
  return {};
}

double to_double(std::string_view text) {
  O2O_EXPECTS(!text.empty());
  return std::stod(std::string(text));
}

std::int64_t to_int(std::string_view text) {
  O2O_EXPECTS(!text.empty());
  return std::stoll(std::string(text));
}

struct Way {
  std::vector<std::int64_t> refs;
  bool forward = true;
  bool backward = true;
};

}  // namespace

RoadNetwork read_osm_xml(std::istream& in, const OsmOptions& options) {
  O2O_EXPECTS(options.length_factor >= 1.0);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();

  // Pass 1: every <node id lat lon>. OSM puts nodes before ways, but the
  // two-pass scan doesn't rely on it.
  std::unordered_map<std::int64_t, LatLon> node_coords;
  // Pass 2 state: highway ways with their nd refs and direction.
  std::vector<Way> ways;

  const auto for_each_element = [&content](auto&& handle) {
    std::size_t pos = 0;
    while ((pos = content.find('<', pos)) != std::string::npos) {
      const std::size_t close = content.find('>', pos);
      if (close == std::string::npos) break;
      handle(std::string_view(content).substr(pos + 1, close - pos - 1));
      pos = close + 1;
    }
  };

  for_each_element([&](std::string_view element) {
    if (!element.starts_with("node") ||
        (element.size() > 4 && element[4] != ' ' && element[4] != '\t' &&
         element[4] != '\n' && element[4] != '/')) {
      return;
    }
    const std::string_view id = attribute(element, "id");
    const std::string_view lat = attribute(element, "lat");
    const std::string_view lon = attribute(element, "lon");
    O2O_EXPECTS(!id.empty() && !lat.empty() && !lon.empty());
    node_coords.emplace(to_int(id), LatLon{.lat = to_double(lat), .lon = to_double(lon)});
  });

  bool in_way = false;
  Way current;
  bool is_highway = false;
  for_each_element([&](std::string_view element) {
    if (element.starts_with("way")) {
      in_way = true;
      current = Way{};
      is_highway = false;
      return;
    }
    if (element.starts_with("/way")) {
      if (in_way && is_highway && current.refs.size() >= 2) ways.push_back(current);
      in_way = false;
      return;
    }
    if (!in_way) return;
    if (element.starts_with("nd")) {
      const std::string_view ref = attribute(element, "ref");
      O2O_EXPECTS(!ref.empty());
      current.refs.push_back(to_int(ref));
    } else if (element.starts_with("tag")) {
      const std::string_view key = attribute(element, "k");
      const std::string_view value = attribute(element, "v");
      if (key == "highway") {
        is_highway = true;
      } else if (key == "oneway") {
        if (value == "yes" || value == "1" || value == "true") {
          current.backward = false;
        } else if (value == "-1" || value == "reverse") {
          current.forward = false;
        }
      }
    }
  });

  RoadNetwork network;
  if (ways.empty()) return network;

  // Compact: only nodes referenced by kept ways become graph nodes, in
  // first-reference order; projection referenced at the first of them.
  const auto first_it = node_coords.find(ways.front().refs.front());
  O2O_EXPECTS(first_it != node_coords.end());
  const Projection projection(first_it->second);
  std::unordered_map<std::int64_t, NodeId> compact;
  const auto node_of = [&](std::int64_t ref) {
    const auto existing = compact.find(ref);
    if (existing != compact.end()) return existing->second;
    const auto coord = node_coords.find(ref);
    O2O_EXPECTS(coord != node_coords.end());
    const NodeId id = network.add_node(projection.to_plane(coord->second));
    compact.emplace(ref, id);
    return id;
  };

  for (const Way& way : ways) {
    for (std::size_t i = 0; i + 1 < way.refs.size(); ++i) {
      const NodeId a = node_of(way.refs[i]);
      const NodeId b = node_of(way.refs[i + 1]);
      if (a == b) continue;  // duplicate consecutive refs happen in extracts
      const double length =
          options.length_factor *
          euclidean_distance(network.node_position(a), network.node_position(b));
      if (way.forward) network.add_edge(a, b, length);
      if (way.backward) network.add_edge(b, a, length);
    }
  }
  return network;
}

RoadNetwork read_osm_xml_file(const std::string& path, const OsmOptions& options) {
  std::ifstream in(path);
  O2O_EXPECTS(in.good());
  return read_osm_xml(in, options);
}

}  // namespace o2o::geo
