#include "geo/import/dimacs.h"

#include <cmath>
#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "geo/projection.h"
#include "util/contracts.h"

namespace o2o::geo {

namespace {

/// Reads the `.co` stream: `p aux sp co <n>` header (the trailing token
/// is the node count), then `v <id> <x> <y>` lines, ids 1..n.
struct Coordinates {
  std::vector<double> x;
  std::vector<double> y;
};

Coordinates read_coordinates(std::istream& co) {
  Coordinates coords;
  std::size_t expected = 0;
  bool header_seen = false;
  std::vector<char> present;
  std::string line;
  while (std::getline(co, line)) {
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream fields(line);
    char kind = 0;
    fields >> kind;
    if (kind == 'p') {
      // Header tokens vary ("p aux sp co n" per the challenge tools);
      // the node count is always the last numeric token.
      std::string token;
      std::size_t n = 0;
      bool got = false;
      while (fields >> token) {
        std::istringstream maybe(token);
        std::size_t value = 0;
        if (maybe >> value && maybe.eof()) {
          n = value;
          got = true;
        }
      }
      O2O_EXPECTS(got && n > 0);
      expected = n;
      coords.x.assign(n, 0.0);
      coords.y.assign(n, 0.0);
      present.assign(n, 0);
      header_seen = true;
    } else if (kind == 'v') {
      O2O_EXPECTS(header_seen);
      std::int64_t id = 0;
      double x = 0.0;
      double y = 0.0;
      fields >> id >> x >> y;
      O2O_EXPECTS(!fields.fail());
      O2O_EXPECTS(id >= 1 && static_cast<std::size_t>(id) <= expected);
      const std::size_t index = static_cast<std::size_t>(id - 1);
      coords.x[index] = x;
      coords.y[index] = y;
      present[index] = 1;
    }
    // Unknown line kinds are skipped (the format reserves them).
  }
  O2O_EXPECTS(header_seen);
  for (char seen : present) O2O_EXPECTS(seen != 0);
  return coords;
}

}  // namespace

RoadNetwork read_dimacs(std::istream& gr, std::istream& co, const DimacsOptions& options) {
  O2O_EXPECTS(options.weight_scale > 0.0);
  const Coordinates coords = read_coordinates(co);
  const std::size_t n = coords.x.size();

  RoadNetwork network;
  if (options.project_coordinates) {
    // Micro-degree lon/lat (x = lon, y = lat per the road instances),
    // projected about the first node for a deterministic frame.
    const Projection projection(
        LatLon{.lat = coords.y[0] * 1e-6, .lon = coords.x[0] * 1e-6});
    for (std::size_t i = 0; i < n; ++i) {
      network.add_node(projection.to_plane(
          LatLon{.lat = coords.y[i] * 1e-6, .lon = coords.x[i] * 1e-6}));
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      network.add_node(Point{coords.x[i] * options.coordinate_scale,
                             coords.y[i] * options.coordinate_scale});
    }
  }

  std::size_t declared_arcs = 0;
  std::size_t seen_arcs = 0;
  bool header_seen = false;
  std::string line;
  while (std::getline(gr, line)) {
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream fields(line);
    char kind = 0;
    fields >> kind;
    if (kind == 'p') {
      std::string problem;
      std::size_t header_n = 0;
      fields >> problem >> header_n >> declared_arcs;
      O2O_EXPECTS(!fields.fail());
      O2O_EXPECTS(problem == "sp");
      O2O_EXPECTS(header_n == n);
      header_seen = true;
    } else if (kind == 'a') {
      O2O_EXPECTS(header_seen);
      std::int64_t from = 0;
      std::int64_t to = 0;
      double weight = 0.0;
      fields >> from >> to >> weight;
      O2O_EXPECTS(!fields.fail());
      O2O_EXPECTS(from >= 1 && static_cast<std::size_t>(from) <= n);
      O2O_EXPECTS(to >= 1 && static_cast<std::size_t>(to) <= n);
      O2O_EXPECTS(weight >= 0.0);
      network.add_edge(static_cast<NodeId>(from - 1), static_cast<NodeId>(to - 1),
                       weight * options.weight_scale);
      ++seen_arcs;
    }
  }
  O2O_EXPECTS(header_seen);
  O2O_EXPECTS(seen_arcs == declared_arcs);
  return network;
}

RoadNetwork read_dimacs_files(const std::string& gr_path, const std::string& co_path,
                              const DimacsOptions& options) {
  std::ifstream gr(gr_path);
  O2O_EXPECTS(gr.good());
  std::ifstream co(co_path);
  O2O_EXPECTS(co.good());
  return read_dimacs(gr, co, options);
}

void write_dimacs(const RoadNetwork& network, std::ostream& gr, std::ostream& co,
                  double weight_scale) {
  O2O_EXPECTS(weight_scale > 0.0);
  const std::size_t n = network.node_count();
  co << "c o2o RoadNetwork export (plane km * 1e6)\n";
  co << "p aux sp co " << n << "\n";
  for (std::size_t i = 0; i < n; ++i) {
    const Point& p = network.node_position(static_cast<NodeId>(i));
    co << "v " << (i + 1) << ' ' << std::llround(p.x * 1e6) << ' '
       << std::llround(p.y * 1e6) << "\n";
  }
  gr << "c o2o RoadNetwork export\n";
  gr << "p sp " << n << ' ' << network.edge_count() << "\n";
  for (std::size_t i = 0; i < n; ++i) {
    for (const RoadNetwork::Edge& edge : network.edges_from(static_cast<NodeId>(i))) {
      gr << "a " << (i + 1) << ' ' << (edge.to + 1) << ' '
         << std::llround(edge.length_km * weight_scale) << "\n";
    }
  }
}

bool write_dimacs_files(const RoadNetwork& network, const std::string& gr_path,
                        const std::string& co_path, double weight_scale) {
  std::ofstream gr(gr_path);
  if (!gr) return false;
  std::ofstream co(co_path);
  if (!co) return false;
  write_dimacs(network, gr, co, weight_scale);
  return gr.good() && co.good();
}

}  // namespace o2o::geo
