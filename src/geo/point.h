// Planar geometry primitives. The city is modelled as a plane with
// kilometre coordinates (the paper's "Euclidean surface"); latitude and
// longitude from real traces are projected into this plane (projection.h).
#pragma once

#include <cmath>

namespace o2o::geo {

/// A location in the city plane, in kilometres.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend constexpr bool operator==(const Point& a, const Point& b) noexcept {
    return a.x == b.x && a.y == b.y;
  }
  friend constexpr bool operator!=(const Point& a, const Point& b) noexcept {
    return !(a == b);
  }
  friend constexpr Point operator+(const Point& a, const Point& b) noexcept {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr Point operator-(const Point& a, const Point& b) noexcept {
    return {a.x - b.x, a.y - b.y};
  }
  friend constexpr Point operator*(const Point& p, double s) noexcept {
    return {p.x * s, p.y * s};
  }
  friend constexpr Point operator*(double s, const Point& p) noexcept { return p * s; }
};

inline double euclidean_distance(const Point& a, const Point& b) noexcept {
  return std::hypot(a.x - b.x, a.y - b.y);
}

constexpr double manhattan_distance(const Point& a, const Point& b) noexcept {
  const double dx = a.x > b.x ? a.x - b.x : b.x - a.x;
  const double dy = a.y > b.y ? a.y - b.y : b.y - a.y;
  return dx + dy;
}

constexpr double squared_distance(const Point& a, const Point& b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Linear interpolation from `a` toward `b`: t=0 -> a, t=1 -> b.
constexpr Point lerp(const Point& a, const Point& b, double t) noexcept {
  return {a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
}

/// Moves from `from` toward `to` by at most `step` km. Returns `to` when
/// the remaining distance is within `step`.
inline Point advance_toward(const Point& from, const Point& to, double step) noexcept {
  const double dist = euclidean_distance(from, to);
  if (dist <= step || dist == 0.0) return to;
  return lerp(from, to, step / dist);
}

/// Axis-aligned rectangle, used to describe a city's service region.
struct Rect {
  Point lo;  ///< min-x / min-y corner
  Point hi;  ///< max-x / max-y corner

  constexpr double width() const noexcept { return hi.x - lo.x; }
  constexpr double height() const noexcept { return hi.y - lo.y; }
  constexpr Point center() const noexcept {
    return {(lo.x + hi.x) / 2.0, (lo.y + hi.y) / 2.0};
  }
  constexpr bool contains(const Point& p) const noexcept {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }
  /// Clamps `p` into the rectangle (component-wise).
  constexpr Point clamp(const Point& p) const noexcept {
    return {p.x < lo.x ? lo.x : (p.x > hi.x ? hi.x : p.x),
            p.y < lo.y ? lo.y : (p.y > hi.y ? hi.y : p.y)};
  }
};

}  // namespace o2o::geo
