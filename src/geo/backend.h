// The pluggable distance-backend API: one declarative spec names the
// distance function a run uses (metric surface, plain Dijkstra trees, or
// a contraction hierarchy over an imported city graph), one factory
// resolves it into a live oracle plus the provenance needed to audit the
// run (graph fingerprint, CH artifact hash). Every entry point — the
// examples, the benches, o2o_serve — constructs its oracle through
// make_distance_oracle; constructing NetworkOracle/CHOracle by concrete
// type is reserved for code that tests or benchmarks the engines
// themselves.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "geo/ch/ch_oracle.h"
#include "geo/distance_oracle.h"
#include "geo/import/dimacs.h"
#include "geo/road_network.h"

namespace o2o::geo {

enum class DistanceBackendKind : std::uint8_t {
  kEuclidean,             ///< straight-line (the paper's surface)
  kManhattan,             ///< rectilinear grid streets
  kCircuity,              ///< Euclidean * circuity factor
  kDijkstra,              ///< NetworkOracle: cached Dijkstra trees
  kContractionHierarchy,  ///< CHOracle: preprocessed upward searches
};

/// Stable CLI/describe() name: "euclid", "manhattan", "circuity",
/// "dijkstra", "ch".
std::string_view distance_backend_name(DistanceBackendKind kind) noexcept;

/// Declarative description of a distance backend. Metric kinds need at
/// most `circuity_factor`; the network-backed kinds (kDijkstra,
/// kContractionHierarchy) need exactly one graph source: a programmatic
/// `network`, a DIMACS `.gr`/`.co` pair, or an OSM XML extract.
struct DistanceBackendSpec {
  DistanceBackendKind kind = DistanceBackendKind::kEuclidean;

  /// kCircuity only (>= 1; ~1.3 approximates US road circuity).
  double circuity_factor = 1.3;

  /// Programmatic graph source (shared so the resolved backend can keep
  /// it alive past the caller's scope).
  std::shared_ptr<const RoadNetwork> network;
  /// DIMACS source: both paths or neither.
  std::string dimacs_gr;
  std::string dimacs_co;
  /// Import options for the DIMACS pair. Leave default-constructed to
  /// auto-detect: files exported by write_dimacs (recognized by their
  /// header comment) read back with coordinate_scale = 1e-6, anything
  /// else is treated as a road-instance file (micro-degree coordinates,
  /// projected).
  DimacsOptions dimacs;
  /// OSM XML source.
  std::string osm_xml;

  /// Oracle cache capacity; 0 = auto-size to the frame working set.
  std::size_t cache_capacity = 0;
  /// kContractionHierarchy only: path of the `.o2och` artifact. When the
  /// file exists and its fingerprint matches the graph it is loaded
  /// (skipping preprocessing); otherwise the hierarchy is built and
  /// saved there. Empty = always build in memory.
  std::string ch_artifact;

  friend bool operator==(const DistanceBackendSpec&, const DistanceBackendSpec&) = default;
};

/// Parses the CLI grammar `kind[:source[,source2[,artifact]]]`:
///   euclid | euclidean
///   manhattan
///   circuity[:FACTOR]
///   dijkstra:GRAPH.gr,GRAPH.co | dijkstra:EXTRACT.osm
///   ch:GRAPH.gr,GRAPH.co[,HIERARCHY.o2och] | ch:EXTRACT.osm[,HIERARCHY.o2och]
/// (.osm is recognized by suffix). Returns false on an unknown kind or
/// malformed source list, leaving *out untouched.
bool parse_distance_backend(std::string_view text, DistanceBackendSpec* out);

/// A resolved backend: the live oracle plus everything needed to keep it
/// alive and to audit the run. The oracle references `network` (when
/// network-backed); keep the whole struct (or at least `network`) alive
/// while the oracle is in use.
struct DistanceBackend {
  DistanceBackendSpec spec;
  std::shared_ptr<const DistanceOracle> oracle;
  std::shared_ptr<const RoadNetwork> network;  ///< null for metric kinds
  /// RoadNetwork::fingerprint() of the resolved graph; 0 for metric kinds.
  std::uint64_t graph_fingerprint = 0;
  /// FNV-1a over the serialized hierarchy; 0 unless kind is CH.
  std::uint64_t ch_artifact_hash = 0;
  /// CH only: the artifact was loaded from disk (preprocessing skipped).
  bool ch_artifact_loaded = false;
};

/// Resolves a spec: imports/adopts the graph, builds or loads the CH
/// artifact, constructs the oracle. Invalid specs (missing source,
/// circuity factor < 1, unreadable file) throw ContractViolation; a
/// stale CH artifact (fingerprint mismatch) is rebuilt, not an error.
DistanceBackend make_distance_oracle(const DistanceBackendSpec& spec);

}  // namespace o2o::geo
