// Maximum Set Packing (Eqs. 1-3 of the paper): pick a maximum number of
// pairwise-disjoint share groups. NP-hard in general; the paper invokes
// the classical local-search approximation with ratio (max|c_k| + 2)/3
// [21] -- 5/3 for the practical |c_k| <= 3 regime. Three solvers:
//
//   * solve_exact        -- per-component branch & bound branching on the
//                           least-covered element, ground truth;
//   * solve_greedy       -- maximal packing in weight order;
//   * solve_local_search -- greedy + (2-for-1) swap improvements, the
//                           approximation the dispatcher uses.
//
// All three run on flat 64-bit-block bitsets (packing/bitset.h): element
// occupancy and set availability are word arrays, so conflict and
// disjointness checks are word-ANDs. `solve_greedy` and
// `solve_local_search` keep the exact scan order of the original byte-map
// implementations (preserved in packing/reference.h) and return identical
// packings; `solve_exact` finds the same optimum but returns the chosen
// indices sorted ascending and handles thousands of sets by decomposing
// the conflict graph into connected components first.
//
// Sets are given as member lists over an integer universe (request
// indices). Weights default to 1 (Eq. 1 counts packed subsets); the
// weighted variant supports the "maximize riders covered" ablation.
#pragma once

#include <cstdint>
#include <vector>

namespace o2o::packing {

struct SetPackingProblem {
  std::size_t universe_size = 0;
  std::vector<std::vector<std::size_t>> sets;  ///< element lists, each sorted
  std::vector<double> weights;                 ///< empty -> unit weights
};

/// Indices (into problem.sets) of the chosen pairwise-disjoint sets.
using Packing = std::vector<std::size_t>;

/// True iff `packing` is pairwise disjoint and indices are valid.
bool is_valid_packing(const SetPackingProblem& problem, const Packing& packing);

/// Total weight (count under unit weights).
double packing_weight(const SetPackingProblem& problem, const Packing& packing);

/// Exact maximum-weight packing. The conflict graph is split into
/// connected components; each component runs a branch & bound that
/// branches on the least-covered element (take each available covering
/// set, or leave the element uncovered), bounded by the optimistic sum of
/// still-available weights and seeded with the local-search incumbent.
/// Component locality is what moves the practical size cap from ~30 sets
/// to >= 10k; `max_sets` remains a hard guard against adversarial dense
/// instances. Returns indices sorted ascending.
Packing solve_exact(const SetPackingProblem& problem, std::size_t max_sets = 10'000);

/// Greedy: scan sets by non-increasing weight (ties: smaller set first,
/// then lower index) and keep every set disjoint from those kept so far.
Packing solve_greedy(const SetPackingProblem& problem);

/// Greedy start + local search: repeatedly replace one chosen set by two
/// disjoint unchosen sets when that increases the weight (and keep the
/// packing maximal). Terminates at a local optimum or `max_rounds`.
Packing solve_local_search(const SetPackingProblem& problem, std::size_t max_rounds = 64);

}  // namespace o2o::packing
