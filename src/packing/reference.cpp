#include "packing/reference.h"

#include <algorithm>
#include <numeric>

#include "util/contracts.h"

namespace o2o::packing::reference {

namespace {

double weight_of(const SetPackingProblem& problem, std::size_t set_index) {
  return problem.weights.empty() ? 1.0 : problem.weights[set_index];
}

/// Occupancy bitmap over the universe.
struct Occupancy {
  std::vector<std::uint8_t> used;

  explicit Occupancy(std::size_t universe) : used(universe, 0) {}

  bool conflicts(const std::vector<std::size_t>& members) const {
    for (std::size_t e : members) {
      if (used[e]) return true;
    }
    return false;
  }
  void mark(const std::vector<std::size_t>& members, std::uint8_t value) {
    for (std::size_t e : members) used[e] = value;
  }
};

bool sets_disjoint(const std::vector<std::size_t>& a, const std::vector<std::size_t>& b) {
  // Both sorted: linear merge scan.
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return false;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return true;
}

std::vector<std::size_t> preference_order(const SetPackingProblem& problem) {
  std::vector<std::size_t> order(problem.sets.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double wa = weight_of(problem, a);
    const double wb = weight_of(problem, b);
    if (wa != wb) return wa > wb;
    if (problem.sets[a].size() != problem.sets[b].size()) {
      return problem.sets[a].size() < problem.sets[b].size();
    }
    return a < b;
  });
  return order;
}

void validate_problem(const SetPackingProblem& problem) {
  O2O_EXPECTS(problem.weights.empty() || problem.weights.size() == problem.sets.size());
  for (const auto& set : problem.sets) {
    O2O_EXPECTS(std::is_sorted(set.begin(), set.end()));
    O2O_EXPECTS(std::adjacent_find(set.begin(), set.end()) == set.end());
    for (std::size_t e : set) O2O_EXPECTS(e < problem.universe_size);
  }
}

}  // namespace

Packing solve_exact(const SetPackingProblem& problem, std::size_t max_sets) {
  validate_problem(problem);
  O2O_EXPECTS(problem.sets.size() <= max_sets);

  // Branch on sets in preference order; bound with the optimistic sum of
  // remaining weights.
  const std::vector<std::size_t> order = preference_order(problem);
  std::vector<double> suffix_weight(order.size() + 1, 0.0);
  for (std::size_t i = order.size(); i-- > 0;) {
    suffix_weight[i] = suffix_weight[i + 1] + weight_of(problem, order[i]);
  }

  Occupancy occupancy(problem.universe_size);
  Packing current, best;
  double current_weight = 0.0, best_weight = -1.0;

  const auto recurse = [&](auto&& self, std::size_t position) -> void {
    if (current_weight > best_weight) {
      best_weight = current_weight;
      best = current;
    }
    if (position == order.size()) return;
    if (current_weight + suffix_weight[position] <= best_weight) return;  // bound
    // Branch 1: take order[position] when disjoint.
    const std::size_t set_index = order[position];
    if (!occupancy.conflicts(problem.sets[set_index])) {
      occupancy.mark(problem.sets[set_index], 1);
      current.push_back(set_index);
      current_weight += weight_of(problem, set_index);
      self(self, position + 1);
      current_weight -= weight_of(problem, set_index);
      current.pop_back();
      occupancy.mark(problem.sets[set_index], 0);
    }
    // Branch 2: skip it.
    self(self, position + 1);
  };
  recurse(recurse, 0);
  O2O_ENSURES(is_valid_packing(problem, best));
  return best;
}

Packing solve_greedy(const SetPackingProblem& problem) {
  validate_problem(problem);
  Occupancy occupancy(problem.universe_size);
  Packing chosen;
  for (std::size_t index : preference_order(problem)) {
    if (occupancy.conflicts(problem.sets[index])) continue;
    occupancy.mark(problem.sets[index], 1);
    chosen.push_back(index);
  }
  O2O_ENSURES(is_valid_packing(problem, chosen));
  return chosen;
}

Packing solve_local_search(const SetPackingProblem& problem, std::size_t max_rounds) {
  validate_problem(problem);
  Packing chosen = reference::solve_greedy(problem);
  std::vector<std::uint8_t> in_packing(problem.sets.size(), 0);
  for (std::size_t index : chosen) in_packing[index] = 1;

  // element -> chosen set covering it (or npos)
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> covered_by(problem.universe_size, kNone);
  const auto rebuild_cover = [&] {
    std::fill(covered_by.begin(), covered_by.end(), kNone);
    for (std::size_t index : chosen) {
      for (std::size_t e : problem.sets[index]) covered_by[e] = index;
    }
  };
  rebuild_cover();

  for (std::size_t round = 0; round < max_rounds; ++round) {
    bool improved = false;
    // (2-for-1) swap: find two disjoint unchosen sets whose combined
    // conflicts hit at most one chosen set of no larger total weight.
    for (std::size_t a = 0; a < problem.sets.size() && !improved; ++a) {
      if (in_packing[a]) continue;
      // Chosen sets conflicting with a.
      std::size_t conflict_a = kNone;
      bool a_multi = false;
      for (std::size_t e : problem.sets[a]) {
        const std::size_t c = covered_by[e];
        if (c == kNone) continue;
        if (conflict_a == kNone) {
          conflict_a = c;
        } else if (conflict_a != c) {
          a_multi = true;
          break;
        }
      }
      if (a_multi) continue;
      if (conflict_a == kNone) {
        // a fits outright: greedy missed maximality after a prior swap.
        chosen.push_back(a);
        in_packing[a] = 1;
        for (std::size_t e : problem.sets[a]) covered_by[e] = a;
        improved = true;
        break;
      }
      for (std::size_t b = a + 1; b < problem.sets.size(); ++b) {
        if (in_packing[b]) continue;
        if (!sets_disjoint(problem.sets[a], problem.sets[b])) continue;
        std::size_t conflict_b = kNone;
        bool b_multi = false;
        for (std::size_t e : problem.sets[b]) {
          const std::size_t c = covered_by[e];
          if (c == kNone) continue;
          if (conflict_b == kNone) {
            conflict_b = c;
          } else if (conflict_b != c) {
            b_multi = true;
            break;
          }
        }
        if (b_multi) continue;
        if (conflict_b != kNone && conflict_a != conflict_b) continue;
        // Swap out conflict_a (== conflict_b or b conflict-free), swap in
        // {a, b} when that increases total weight.
        const double removed = weight_of(problem, conflict_a);
        const double added = weight_of(problem, a) + weight_of(problem, b);
        if (added <= removed) continue;
        chosen.erase(std::remove(chosen.begin(), chosen.end(), conflict_a), chosen.end());
        in_packing[conflict_a] = 0;
        chosen.push_back(a);
        chosen.push_back(b);
        in_packing[a] = 1;
        in_packing[b] = 1;
        rebuild_cover();
        improved = true;
        break;
      }
    }
    if (!improved) break;
  }
  O2O_ENSURES(is_valid_packing(problem, chosen));
  return chosen;
}

}  // namespace o2o::packing::reference
