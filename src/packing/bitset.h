// Flat 64-bit-block bitsets for the sharing engine. Two shapes:
//
//   * BlockBitset -- one row of bits (set availability, element occupancy);
//     intersection / subtraction are word-ANDs over contiguous storage.
//   * BitMatrix   -- a dense n x n adjacency (pair feasibility) stored as
//     one flat word array, so row intersections ("which k complete the
//     pair (i, j) into a candidate triple?") are word-ANDs too.
//
// Deliberately minimal: only the operations the enumeration and the
// set-packing solvers need, all inline and allocation-free after
// construction.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "util/contracts.h"

namespace o2o::packing {

using BitWord = std::uint64_t;
inline constexpr std::size_t kBitsPerWord = 64;

constexpr std::size_t bit_words(std::size_t bits) noexcept {
  return (bits + kBitsPerWord - 1) / kBitsPerWord;
}

/// One flat row of bits.
class BlockBitset {
 public:
  BlockBitset() = default;
  explicit BlockBitset(std::size_t bits) : bits_(bits), words_(bit_words(bits), 0) {}

  std::size_t bit_count() const noexcept { return bits_; }
  std::size_t word_count() const noexcept { return words_.size(); }
  BitWord* words() noexcept { return words_.data(); }
  const BitWord* words() const noexcept { return words_.data(); }

  bool test(std::size_t i) const noexcept {
    return (words_[i / kBitsPerWord] >> (i % kBitsPerWord)) & 1u;
  }
  void set(std::size_t i) noexcept { words_[i / kBitsPerWord] |= BitWord{1} << (i % kBitsPerWord); }
  void clear(std::size_t i) noexcept {
    words_[i / kBitsPerWord] &= ~(BitWord{1} << (i % kBitsPerWord));
  }
  void set_all() noexcept {
    if (words_.empty()) return;
    for (BitWord& w : words_) w = ~BitWord{0};
    // Mask the tail so popcounts and iteration never see ghost bits.
    const std::size_t tail = bits_ % kBitsPerWord;
    if (tail != 0) words_.back() = (BitWord{1} << tail) - 1;
  }
  void clear_all() noexcept {
    for (BitWord& w : words_) w = 0;
  }

  std::size_t count() const noexcept {
    std::size_t total = 0;
    for (BitWord w : words_) total += static_cast<std::size_t>(std::popcount(w));
    return total;
  }

  bool intersects(const BlockBitset& other) const noexcept {
    const std::size_t n = std::min(words_.size(), other.words_.size());
    for (std::size_t w = 0; w < n; ++w) {
      if (words_[w] & other.words_[w]) return true;
    }
    return false;
  }

  /// this &= ~other.
  void subtract(const BlockBitset& other) noexcept {
    const std::size_t n = std::min(words_.size(), other.words_.size());
    for (std::size_t w = 0; w < n; ++w) words_[w] &= ~other.words_[w];
  }

  /// Calls fn(index) for every set bit, ascending.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      BitWord word = words_[w];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        fn(w * kBitsPerWord + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }

 private:
  std::size_t bits_ = 0;
  std::vector<BitWord> words_;
};

/// Dense n x n bit adjacency in one flat allocation (row-major).
class BitMatrix {
 public:
  BitMatrix() = default;
  explicit BitMatrix(std::size_t n)
      : n_(n), row_words_(bit_words(n)), words_(n * bit_words(n), 0) {}

  std::size_t size() const noexcept { return n_; }
  std::size_t row_words() const noexcept { return row_words_; }
  const BitWord* row(std::size_t i) const noexcept { return words_.data() + i * row_words_; }

  bool test(std::size_t i, std::size_t j) const noexcept {
    return (row(i)[j / kBitsPerWord] >> (j % kBitsPerWord)) & 1u;
  }
  void set(std::size_t i, std::size_t j) noexcept {
    words_[i * row_words_ + j / kBitsPerWord] |= BitWord{1} << (j % kBitsPerWord);
  }
  void set_symmetric(std::size_t i, std::size_t j) noexcept {
    set(i, j);
    set(j, i);
  }

  /// Calls fn(k) for every k > floor where both row(a) and row(b) have the
  /// bit — the triple-completion query, one word-AND per 64 candidates.
  template <typename Fn>
  void for_each_common_above(std::size_t a, std::size_t b, std::size_t floor, Fn&& fn) const {
    const BitWord* ra = row(a);
    const BitWord* rb = row(b);
    std::size_t w = (floor + 1) / kBitsPerWord;
    for (; w < row_words_; ++w) {
      BitWord word = ra[w] & rb[w];
      if (w == (floor + 1) / kBitsPerWord) {
        const std::size_t shift = (floor + 1) % kBitsPerWord;
        if (shift != 0) word &= ~BitWord{0} << shift;
      }
      while (word != 0) {
        const int bit = std::countr_zero(word);
        fn(w * kBitsPerWord + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }

 private:
  std::size_t n_ = 0;
  std::size_t row_words_ = 0;
  std::vector<BitWord> words_;
};

}  // namespace o2o::packing
