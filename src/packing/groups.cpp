#include "packing/groups.h"

#include <algorithm>

#include "routing/optimizer.h"
#include "util/contracts.h"

namespace o2o::packing {

ShareGroup evaluate_group(std::span<const trace::Request> requests,
                          const std::vector<std::size_t>& member_indices,
                          const geo::DistanceOracle& oracle, const GroupOptions& options,
                          int taxi_seats, bool& feasible) {
  O2O_EXPECTS(member_indices.size() >= 2);
  ShareGroup group;
  group.member_indices = member_indices;
  feasible = true;

  int seats_needed = 0;
  std::vector<trace::Request> riders;
  riders.reserve(member_indices.size());
  for (std::size_t index : member_indices) {
    O2O_EXPECTS(index < requests.size());
    riders.push_back(requests[index]);
    seats_needed += requests[index].seats;
  }
  if (seats_needed > taxi_seats) {
    feasible = false;
    return group;
  }

  group.pooled_route = routing::optimal_route(riders, oracle);
  group.pooled_length_km = routing::route_length(group.pooled_route, oracle);
  for (const trace::Request& rider : riders) {
    const double direct = oracle.distance(rider.pickup, rider.dropoff);
    const auto metrics = routing::rider_metrics(group.pooled_route, rider.id, oracle);
    const double detour = metrics.ride_km - direct;
    group.direct_sum_km += direct;
    group.max_detour_km = std::max(group.max_detour_km, detour);
    if (detour > options.detour_threshold_km) feasible = false;
  }
  if (options.require_saving && group.pooled_length_km >= group.direct_sum_km - 1e-9) {
    feasible = false;
  }
  return group;
}

std::vector<ShareGroup> enumerate_share_groups(std::span<const trace::Request> requests,
                                               const geo::DistanceOracle& oracle,
                                               const GroupOptions& options,
                                               int taxi_seats) {
  O2O_EXPECTS(options.max_group_size >= 2 && options.max_group_size <= 4);
  O2O_EXPECTS(options.detour_threshold_km >= 0.0);
  std::vector<ShareGroup> groups;
  const std::size_t n = requests.size();

  const auto pickups_close = [&](std::size_t i, std::size_t j) {
    if (options.pickup_radius_km == std::numeric_limits<double>::infinity()) return true;
    return geo::euclidean_distance(requests[i].pickup, requests[j].pickup) <=
           options.pickup_radius_km;
  };

  // Pairs. Remember feasibility for the triple-growing prune.
  std::vector<std::vector<bool>> pair_feasible;
  if (options.grow_triples_from_pairs) {
    pair_feasible.assign(n, std::vector<bool>(n, false));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (!pickups_close(i, j)) continue;
      bool feasible = false;
      ShareGroup group = evaluate_group(requests, {i, j}, oracle, options, taxi_seats,
                                        feasible);
      if (!feasible) continue;
      if (options.grow_triples_from_pairs) {
        pair_feasible[i][j] = pair_feasible[j][i] = true;
      }
      groups.push_back(std::move(group));
    }
  }

  if (options.max_group_size < 3) return groups;

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (options.grow_triples_from_pairs && !pair_feasible[i][j]) continue;
      for (std::size_t k = j + 1; k < n; ++k) {
        if (options.grow_triples_from_pairs &&
            (!pair_feasible[i][k] || !pair_feasible[j][k])) {
          continue;
        }
        if (!pickups_close(i, k) || !pickups_close(j, k)) continue;
        bool feasible = false;
        ShareGroup group = evaluate_group(requests, {i, j, k}, oracle, options, taxi_seats,
                                          feasible);
        if (feasible) groups.push_back(std::move(group));
      }
    }
  }
  return groups;
}

}  // namespace o2o::packing
