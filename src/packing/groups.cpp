#include "packing/groups.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>

#include "index/spatial_grid.h"
#include "obs/obs.h"
#include "packing/bitset.h"
#include "packing/group_enum.h"
#include "routing/optimizer.h"
#include "util/contracts.h"
#include "util/thread_pool.h"

namespace o2o::packing {

namespace {

/// Absorbs squared-vs-hypot ulp differences between the grid's candidate
/// query and the exact predicates re-applied afterwards, so the grid is a
/// strict superset filter.
constexpr double kGridPadKm = 1e-6;

/// Parallel evaluation into disjoint preallocated slots. Mirrors
/// core::for_each_row (that helper lives in o2o_core, which links this
/// library — so packing keeps its own copy of the gating policy).
/// Returns whether the work actually fanned out over the pool.
bool parallel_eval(std::size_t count, const geo::DistanceOracle& oracle,
                   bool allow_parallel, const std::function<void(std::size_t)>& body) {
  // Below this, fan-out overhead dominates the oracle calls saved.
  constexpr std::size_t kSerialCutoff = 16;
  ThreadPool& pool = ThreadPool::shared();
  if (!allow_parallel || count < kSerialCutoff || pool.worker_count() == 0 ||
      !oracle.capabilities().concurrent_queries) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return false;
  }
  pool.parallel_for(0, count, /*grain=*/8, body);
  return true;
}

constexpr std::uint64_t pair_key(std::size_t i, std::size_t j) {
  return (static_cast<std::uint64_t>(i) << 32) | static_cast<std::uint64_t>(j);
}

/// Dedupes pair keys to the serial lexicographic (i, j) order. Equivalent
/// to a global sort + unique, but the first member is bounded by n, so a
/// counting-sort scatter plus short per-bucket sorts beats comparison-
/// sorting the whole emission (~2 keys per surviving pair).
void sort_dedup_pair_keys(std::size_t n, std::vector<std::uint64_t>& pair_keys) {
  std::vector<std::uint32_t> offsets(n + 1, 0);
  for (const std::uint64_t key : pair_keys) ++offsets[(key >> 32) + 1];
  for (std::size_t i = 0; i < n; ++i) offsets[i + 1] += offsets[i];
  std::vector<std::uint64_t> scattered(pair_keys.size());
  std::vector<std::uint32_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const std::uint64_t key : pair_keys) scattered[cursor[key >> 32]++] = key;
  std::size_t write = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = offsets[i];
    const std::size_t hi = offsets[i + 1];
    std::sort(scattered.begin() + static_cast<std::ptrdiff_t>(lo),
              scattered.begin() + static_cast<std::ptrdiff_t>(hi));
    for (std::size_t k = lo; k < hi; ++k) {
      if (write > 0 && pair_keys[write - 1] == scattered[k]) continue;
      pair_keys[write++] = scattered[k];
    }
  }
  pair_keys.resize(write);
}

/// Marks store_flags[k] = 1 for every key of `all_keys` absent from
/// `kept` (both sorted ascending): the filter pass between them dropped
/// it, which certifies exact infeasibility.
void flag_filtered_keys(std::span<const std::uint64_t> all_keys,
                        std::span<const std::uint64_t> kept,
                        std::vector<std::uint8_t>& store_flags) {
  std::size_t k = 0;
  for (std::size_t a = 0; a < all_keys.size(); ++a) {
    while (k < kept.size() && kept[k] < all_keys[a]) ++k;
    if (k >= kept.size() || kept[k] != all_keys[a]) store_flags[a] = 1;
  }
}

/// Per-thread buffers for the engine's exact evaluations: the rider copy
/// plus the route solver's scratch. Reused across every candidate a
/// worker touches; the arithmetic is exactly evaluate_group's.
struct EvalScratch {
  std::vector<trace::Request> riders;
  routing::RouteScratch route;
};

/// evaluate_group writing into a caller-owned slot through reusable
/// buffers. Same operations in the same order as the public entry point
/// (which delegates here), so verdicts and payloads are bit-identical.
void evaluate_group_into(std::span<const trace::Request> requests,
                         const std::size_t* members, std::size_t count,
                         const geo::DistanceOracle& oracle, const GroupOptions& options,
                         int taxi_seats, bool& feasible, ShareGroup& group,
                         EvalScratch& scratch) {
  O2O_EXPECTS(count >= 2);
  group.member_indices.assign(members, members + count);
  group.pooled_route = routing::Route{};
  group.pooled_length_km = 0.0;
  group.direct_sum_km = 0.0;
  group.max_detour_km = 0.0;
  group.member_direct_km.clear();
  feasible = true;

  int seats_needed = 0;
  scratch.riders.clear();
  for (std::size_t m = 0; m < count; ++m) {
    O2O_EXPECTS(members[m] < requests.size());
    scratch.riders.push_back(requests[members[m]]);
    seats_needed += requests[members[m]].seats;
  }
  if (seats_needed > taxi_seats) {
    feasible = false;
    return;
  }

  group.pooled_route = routing::optimal_route(scratch.riders, oracle, std::nullopt,
                                              scratch.route);
  group.pooled_length_km = routing::route_length(group.pooled_route, oracle);
  group.member_direct_km.reserve(count);
  for (const trace::Request& rider : scratch.riders) {
    const double direct = oracle.distance(rider.pickup, rider.dropoff);
    const auto metrics = routing::rider_metrics(group.pooled_route, rider.id, oracle);
    const double detour = metrics.ride_km - direct;
    group.member_direct_km.push_back(direct);
    group.direct_sum_km += direct;
    group.max_detour_km = std::max(group.max_detour_km, detour);
    if (detour > options.detour_threshold_km) feasible = false;
  }
  if (options.require_saving && group.pooled_length_km >= group.direct_sum_km - 1e-9) {
    feasible = false;
  }
}

/// The pre-engine dense serial scan, kept verbatim as the differential
/// reference (GroupOptions::parallel == false).
std::vector<ShareGroup> enumerate_serial(std::span<const trace::Request> requests,
                                         const geo::DistanceOracle& oracle,
                                         const GroupOptions& options, int taxi_seats) {
  std::vector<ShareGroup> groups;
  const std::size_t n = requests.size();

  const auto pickups_close = [&](std::size_t i, std::size_t j) {
    if (options.pickup_radius_km == std::numeric_limits<double>::infinity()) return true;
    return geo::euclidean_distance(requests[i].pickup, requests[j].pickup) <=
           options.pickup_radius_km;
  };

  // Pairs. Remember feasibility for the triple-growing prune.
  std::vector<std::vector<bool>> pair_feasible;
  if (options.grow_triples_from_pairs) {
    pair_feasible.assign(n, std::vector<bool>(n, false));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (!pickups_close(i, j)) continue;
      bool feasible = false;
      ShareGroup group = evaluate_group(requests, {i, j}, oracle, options, taxi_seats,
                                        feasible);
      if (!feasible) continue;
      if (options.grow_triples_from_pairs) {
        pair_feasible[i][j] = pair_feasible[j][i] = true;
      }
      groups.push_back(std::move(group));
    }
  }

  if (options.max_group_size < 3) return groups;

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (options.grow_triples_from_pairs && !pair_feasible[i][j]) continue;
      for (std::size_t k = j + 1; k < n; ++k) {
        if (options.grow_triples_from_pairs &&
            (!pair_feasible[i][k] || !pair_feasible[j][k])) {
          continue;
        }
        if (!pickups_close(i, k) || !pickups_close(j, k)) continue;
        bool feasible = false;
        ShareGroup group = evaluate_group(requests, {i, j, k}, oracle, options, taxi_seats,
                                          feasible);
        if (feasible) groups.push_back(std::move(group));
      }
    }
  }
  return groups;
}

/// The grid-pruned, thread-parallel engine. Produces the serial scan's
/// exact output: candidate generation only ever *drops* provably
/// infeasible or radius-excluded pairs, evaluations write disjoint slots
/// keyed by the deterministic candidate order, and compaction replays
/// that order serially.
std::vector<ShareGroup> enumerate_engine(std::span<const trace::Request> requests,
                                         const geo::DistanceOracle& oracle,
                                         const GroupOptions& options, int taxi_seats,
                                         GroupCache* cache) {
  std::vector<ShareGroup> groups;
  const std::size_t n = requests.size();
  if (n < 2) return groups;

  const double user_radius = options.pickup_radius_km;
  const bool user_finite = std::isfinite(user_radius);
  // The derived pick-up bound (see GroupOptions::pickup_radius_km) needs
  // both the saving constraint and a finite θ; without saving, a
  // sequential pooled route is legal and pairs share at any distance.
  const bool derived_valid =
      options.require_saving && std::isfinite(options.detour_threshold_km);

  // Exactly the serial path's predicate (hypot compare — the grid's
  // squared compare is only ever used with padded radii as a superset).
  const auto pickups_close = [&](std::size_t i, std::size_t j) {
    if (!user_finite) return true;
    return geo::euclidean_distance(requests[i].pickup, requests[j].pickup) <= user_radius;
  };

  std::vector<geo::Point> pickups(n);
  for (std::size_t i = 0; i < n; ++i) pickups[i] = requests[i].pickup;

  // The SIMD certificate's order restriction (a saving pair's optimal
  // route is never sequential) rests on require_saving, not on θ being
  // finite, so it can run even with an infinite detour threshold.
  const bool simd_gate = options.simd_prefilter && options.require_saving;
  const bool cone_gate = options.direction_cone && derived_valid;

  // Candidate persistence (d) rides the sparse (radius) path only: the
  // dense all-pairs emission has no grid work to save.
  const bool sparse_path = user_finite || derived_valid;
  const GroupCache::CandidateFrame* cand =
      (cache != nullptr && options.persist_candidates && sparse_path)
          ? &cache->begin_candidates(options.pickup_radius_km)
          : nullptr;

  std::vector<double> direct(n, 0.0);
  const bool need_direct = derived_valid || simd_gate;
  if (need_direct) {
    if (cand != nullptr && cand->direct_warm) {
      // Clean requests replay the oracle's bitwise result from the frame
      // that stored it; only churn pays fresh oracle calls.
      for (std::size_t i = 0; i < n; ++i) {
        if (cand->clean[i]) direct[i] = cache->persisted_direct(i);
      }
      const std::vector<std::uint32_t>& churn = cand->churn;
      parallel_eval(churn.size(), oracle, /*allow_parallel=*/true, [&](std::size_t k) {
        const std::size_t i = churn[k];
        direct[i] = oracle.distance(requests[i].pickup, requests[i].dropoff);
      });
    } else {
      parallel_eval(n, oracle, /*allow_parallel=*/true, [&](std::size_t i) {
        direct[i] = oracle.distance(requests[i].pickup, requests[i].dropoff);
      });
    }
  }

  // ---- Pair candidates: grid radius queries instead of the n^2 scan,
  // replaying persisted neighbor lists (d) on warm frames ----
  std::vector<std::uint64_t> pair_keys;
  // Pre-filter keys covering every pair with a churn member (every pair
  // on a cold frame), plus the filter verdicts recorded against them —
  // exactly what store_candidates persists for the next frame.
  std::vector<std::uint64_t> store_keys;
  std::vector<std::uint8_t> store_flags;
  double cand_cell_km = 0.0;
  {
    obs::StageTimer gen_stage(obs::Stage::kCandidateGen);
    if (!sparse_path) {
      pair_keys.reserve(n * (n - 1) / 2);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) pair_keys.push_back(pair_key(i, j));
      }
      obs::add(obs::Counter::kPairCandidates, pair_keys.size());
    } else {
      // Query radius per request: the user cap and/or the derived bound
      // θ/2 + direct_i. A feasible pair is found from whichever side rides
      // first, so the union of both queries covers it.
      std::vector<double> radius(n);
      double mean_radius = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        double r = user_finite ? user_radius : std::numeric_limits<double>::infinity();
        if (derived_valid) r = std::min(r, options.detour_threshold_km / 2.0 + direct[i]);
        radius[i] = r + kGridPadKm;
        mean_radius += radius[i];
      }
      mean_radius /= static_cast<double>(n);
      const double cell_km = std::clamp(mean_radius / 2.0, 0.25, 8.0);
      cand_cell_km = cell_km;
      const index::SpatialGrid* pgrid =
          cand != nullptr ? cache->candidate_grid() : nullptr;
      std::vector<std::int32_t> hits;
      if (cand != nullptr && cand->warm && pgrid != nullptr) {
        // Warm frame. (1) Replay: clean-clean pairs come verbatim from
        // the persisted lists. Flagged neighbors carry a filter
        // certificate of exact infeasibility and are skipped; churn or
        // absent neighbors get their fresh truth from the grid queries
        // below. Emit each pair once from its lower-indexed side.
        for (std::size_t i = 0; i < n; ++i) {
          if (!cand->clean[i]) continue;
          for (const std::uint64_t packed : cache->neighbor_list(i)) {
            if (packed & 1) continue;
            const std::size_t j =
                cache->index_of(static_cast<trace::RequestId>(packed >> 1));
            if (j == GroupCache::kNoIndex || j <= i || !cand->clean[j]) continue;
            pair_keys.push_back(pair_key(i, j));
          }
        }
        const std::size_t reused = pair_keys.size();
        obs::add(obs::Counter::kCandidatesReused, reused);
        // (2) Churn requests query the persistent pickup grid with their
        // own radii (covering the radius[c] side of every churn pair) ...
        for (const std::uint32_t c : cand->churn) {
          hits.clear();
          pgrid->within_radius_into(pickups[c], radius[c], hits);
          for (const std::int32_t id : hits) {
            const std::size_t j = cache->index_of(id);
            if (j == GroupCache::kNoIndex || j == c) continue;
            const std::size_t a = std::min<std::size_t>(c, j);
            const std::size_t b = std::max<std::size_t>(c, j);
            if (!pickups_close(a, b)) continue;
            store_keys.push_back(pair_key(a, b));
          }
        }
        // (3) ... and every clean request queries a churn-only grid with
        // *its* radius, covering churn pairs reachable from the clean
        // side alone. Churn-churn pairs are covered by both members' own
        // queries in (2).
        if (!cand->churn.empty()) {
          std::vector<geo::Point> churn_pickups;
          churn_pickups.reserve(cand->churn.size());
          for (const std::uint32_t c : cand->churn) churn_pickups.push_back(pickups[c]);
          const index::SpatialGrid churn_grid(churn_pickups, cell_km);
          for (std::size_t u = 0; u < n; ++u) {
            if (!cand->clean[u]) continue;
            hits.clear();
            churn_grid.within_radius_into(pickups[u], radius[u], hits);
            for (const std::int32_t h : hits) {
              const std::size_t c = cand->churn[static_cast<std::size_t>(h)];
              const std::size_t a = std::min(u, c);
              const std::size_t b = std::max(u, c);
              if (!pickups_close(a, b)) continue;
              store_keys.push_back(pair_key(a, b));
            }
          }
        }
        sort_dedup_pair_keys(n, store_keys);
        obs::add(obs::Counter::kPairCandidates, reused + store_keys.size());
        obs::add(obs::Counter::kGridCandidatesPruned,
                 n * (n - 1) / 2 - reused - store_keys.size());
        // Direction cone (b) runs on the churn subset only — replayed
        // pairs had their cone verdict recorded as flags when fresh.
        store_flags.assign(store_keys.size(), 0);
        std::vector<std::uint64_t> churn_kept = store_keys;
        if (cone_gate && !churn_kept.empty()) {
          const FilterStats cone = cone_prune_pairs(requests, direct,
                                                    options.detour_threshold_km, churn_kept);
          obs::add(obs::Counter::kConeRejects, cone.rejected);
          obs::add(obs::Counter::kSimdBatches, cone.batches);
          obs::add(obs::Counter::kSimdBatchOccupancy, cone.lanes);
          flag_filtered_keys(store_keys, churn_kept, store_flags);
        }
        pair_keys.insert(pair_keys.end(), churn_kept.begin(), churn_kept.end());
        sort_dedup_pair_keys(n, pair_keys);
      } else {
        // Cold frame: one fresh grid over all pick-ups.
        const index::SpatialGrid grid(pickups, cell_km);
        for (std::size_t i = 0; i < n; ++i) {
          hits.clear();
          grid.within_radius_into(pickups[i], radius[i], hits);
          for (const std::int32_t id : hits) {
            const auto j = static_cast<std::size_t>(id);
            if (j == i) continue;
            // Emit each unordered pair once: when the lower-indexed side's
            // own query already covers the gap (the grid's exact squared
            // compare, replicated bitwise), this sighting is its mirror —
            // skip it.
            if (j < i &&
                geo::squared_distance(pickups[i], pickups[j]) <= radius[j] * radius[j]) {
              continue;
            }
            const std::size_t a = std::min(i, j);
            const std::size_t b = std::max(i, j);
            if (!pickups_close(a, b)) continue;
            pair_keys.push_back(pair_key(a, b));
          }
        }
        sort_dedup_pair_keys(n, pair_keys);
        obs::add(obs::Counter::kPairCandidates, pair_keys.size());
        obs::add(obs::Counter::kGridCandidatesPruned, n * (n - 1) / 2 - pair_keys.size());
        if (cand != nullptr) {
          store_keys = pair_keys;
          store_flags.assign(store_keys.size(), 0);
        }
        // ---- Direction-cone prune (b): drop pairs whose pick-ups sit in
        // neither rider's (direct + θ) ellipse before any oracle work ----
        if (cone_gate && !pair_keys.empty()) {
          const FilterStats cone =
              cone_prune_pairs(requests, direct, options.detour_threshold_km, pair_keys);
          obs::add(obs::Counter::kConeRejects, cone.rejected);
          obs::add(obs::Counter::kSimdBatches, cone.batches);
          obs::add(obs::Counter::kSimdBatchOccupancy, cone.lanes);
          if (cand != nullptr) flag_filtered_keys(store_keys, pair_keys, store_flags);
        }
      }
    }
  }
  // ---- Resolve pairs: cache replay (c), SIMD certificate (a), exact
  // evaluation for what survives; compact in candidate order ----
  const std::size_t pair_count = pair_keys.size();
  std::vector<ShareGroup> pair_slots(pair_count);
  std::vector<std::uint8_t> pair_ok(pair_count, 0);
  std::vector<std::uint32_t> miss_pos;  ///< candidate slots the cache could not answer
  if (cache != nullptr) {
    miss_pos.reserve(pair_count);
    for (std::size_t c = 0; c < pair_count; ++c) {
      const std::size_t members[2] = {static_cast<std::size_t>(pair_keys[c] >> 32),
                                      static_cast<std::size_t>(pair_keys[c] & 0xffffffffu)};
      switch (cache->try_get(members, 2, pair_slots[c])) {
        case GroupCache::Verdict::kFeasible:
          pair_ok[c] = 1;
          break;
        case GroupCache::Verdict::kInfeasible:
          break;
        case GroupCache::Verdict::kMiss:
          miss_pos.push_back(static_cast<std::uint32_t>(c));
          break;
      }
    }
  } else {
    miss_pos.resize(pair_count);
    for (std::size_t c = 0; c < pair_count; ++c) {
      miss_pos[c] = static_cast<std::uint32_t>(c);
    }
  }
  std::vector<std::uint8_t> miss_keep;
  std::vector<std::uint64_t> miss_keys(miss_pos.size());
  for (std::size_t m = 0; m < miss_pos.size(); ++m) miss_keys[m] = pair_keys[miss_pos[m]];
  if (simd_gate && !miss_keys.empty()) {
    const FilterStats filter =
        simd_prefilter_pairs(requests, oracle, direct, options, miss_keys, miss_keep);
    obs::add(obs::Counter::kSimdBatches, filter.batches);
    obs::add(obs::Counter::kSimdBatchOccupancy, filter.lanes);
  } else {
    miss_keep.assign(miss_keys.size(), 1);
  }
  if (cand != nullptr && !store_keys.empty()) {
    // Record the SIMD certificate's rejections on the persisted keys.
    // miss_keys is a sorted subset of pair_keys; replayed clean-clean
    // keys absent from store_keys simply never match in the merge.
    std::size_t s = 0;
    for (std::size_t m = 0; m < miss_keys.size(); ++m) {
      if (miss_keep[m]) continue;
      while (s < store_keys.size() && store_keys[s] < miss_keys[m]) ++s;
      if (s < store_keys.size() && store_keys[s] == miss_keys[m]) store_flags[s] = 1;
    }
  }
  // Exact evaluations write disjoint slots; certificate-rejected misses
  // keep pair_ok == 0 without touching the oracle (and are not cached --
  // re-deriving the certificate next frame is cheaper than storing it).
  std::vector<std::uint32_t> eval_pos;
  eval_pos.reserve(miss_pos.size());
  for (std::size_t m = 0; m < miss_pos.size(); ++m) {
    if (miss_keep[m]) eval_pos.push_back(miss_pos[m]);
  }
  bool fanned = false;
  {
    obs::StageTimer eval_stage(obs::Stage::kExactEval);
    fanned = parallel_eval(eval_pos.size(), oracle, options.parallel_exact,
                           [&](std::size_t e) {
      thread_local EvalScratch scratch;
      const std::size_t c = eval_pos[e];
      const std::size_t members[2] = {static_cast<std::size_t>(pair_keys[c] >> 32),
                                      static_cast<std::size_t>(pair_keys[c] & 0xffffffffu)};
      bool feasible = false;
      evaluate_group_into(requests, members, 2, oracle, options, taxi_seats, feasible,
                          pair_slots[c], scratch);
      pair_ok[c] = feasible ? 1 : 0;
    });
  }
  if (fanned) obs::add(obs::Counter::kExactParallelBatches);
  if (cache != nullptr) {
    for (const std::uint32_t c : eval_pos) {
      const std::size_t members[2] = {static_cast<std::size_t>(pair_keys[c] >> 32),
                                      static_cast<std::size_t>(pair_keys[c] & 0xffffffffu)};
      cache->store(members, 2, pair_ok[c] != 0, pair_slots[c]);
    }
  }
  if (cand != nullptr) {
    cache->store_candidates(store_keys, store_flags, direct, need_direct, cand_cell_km);
  }
  const bool grow = options.grow_triples_from_pairs;
  BitMatrix adjacency(grow ? n : 0);
  std::vector<std::uint64_t> feasible_pairs;
  for (std::size_t c = 0; c < pair_count; ++c) {
    if (!pair_ok[c]) continue;
    const auto i = static_cast<std::size_t>(pair_keys[c] >> 32);
    const auto j = static_cast<std::size_t>(pair_keys[c] & 0xffffffffu);
    if (derived_valid) {
      // The implied bound the pruning rests on, checked on realized pairs.
      const double bound =
          options.detour_threshold_km / 2.0 + std::max(direct[i], direct[j]) + kGridPadKm;
      O2O_ENSURES(geo::euclidean_distance(pickups[i], pickups[j]) <= bound);
    }
    if (grow) {
      adjacency.set_symmetric(i, j);
      feasible_pairs.push_back(pair_keys[c]);
    }
    groups.push_back(std::move(pair_slots[c]));
  }

  if (options.max_group_size < 3) return groups;

  // ---- Triple candidates ----
  std::vector<std::array<std::uint32_t, 3>> triples;
  if (grow) {
    // Serial order: feasible pairs lexicographically, completions k > j
    // with both (i, k) and (j, k) feasible — one word-AND of the two
    // adjacency rows per 64 candidates. The serial path's radius checks
    // on (i, k)/(j, k) are implied: those pairs passed them when their
    // own pair candidacy was evaluated.
    for (const std::uint64_t key : feasible_pairs) {
      const auto i = static_cast<std::uint32_t>(key >> 32);
      const auto j = static_cast<std::uint32_t>(key & 0xffffffffu);
      adjacency.for_each_common_above(i, j, j, [&](std::size_t k) {
        triples.push_back({i, j, static_cast<std::uint32_t>(k)});
      });
    }
  } else {
    // Exhaustive (test) mode: the serial walk's candidate set verbatim.
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        for (std::size_t k = j + 1; k < n; ++k) {
          if (!pickups_close(i, k) || !pickups_close(j, k)) continue;
          triples.push_back({static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j),
                             static_cast<std::uint32_t>(k)});
        }
      }
    }
  }
  const std::size_t triple_count = triples.size();
  obs::add(obs::Counter::kTripleCandidates, triple_count);
  std::vector<ShareGroup> triple_slots(triple_count);
  std::vector<std::uint8_t> triple_ok(triple_count, 0);
  // Triples reuse the cache but not the SIMD certificate: after the pair
  // prune the candidate volume is small, and the 6-stop order space has
  // no cheap conservative closed form worth vectorizing.
  std::vector<std::uint32_t> triple_eval;
  if (cache != nullptr) {
    triple_eval.reserve(triple_count);
    for (std::size_t c = 0; c < triple_count; ++c) {
      const auto& t = triples[c];
      const std::size_t members[3] = {t[0], t[1], t[2]};
      switch (cache->try_get(members, 3, triple_slots[c])) {
        case GroupCache::Verdict::kFeasible:
          triple_ok[c] = 1;
          break;
        case GroupCache::Verdict::kInfeasible:
          break;
        case GroupCache::Verdict::kMiss:
          triple_eval.push_back(static_cast<std::uint32_t>(c));
          break;
      }
    }
  } else {
    triple_eval.resize(triple_count);
    for (std::size_t c = 0; c < triple_count; ++c) {
      triple_eval[c] = static_cast<std::uint32_t>(c);
    }
  }
  bool triple_fanned = false;
  {
    obs::StageTimer eval_stage(obs::Stage::kExactEval);
    triple_fanned = parallel_eval(triple_eval.size(), oracle, options.parallel_exact,
                                  [&](std::size_t e) {
      thread_local EvalScratch scratch;
      const auto& t = triples[triple_eval[e]];
      const std::size_t members[3] = {t[0], t[1], t[2]};
      bool feasible = false;
      evaluate_group_into(requests, members, 3, oracle, options, taxi_seats, feasible,
                          triple_slots[triple_eval[e]], scratch);
      triple_ok[triple_eval[e]] = feasible ? 1 : 0;
    });
  }
  if (triple_fanned) obs::add(obs::Counter::kExactParallelBatches);
  if (cache != nullptr) {
    for (const std::uint32_t c : triple_eval) {
      const auto& t = triples[c];
      const std::size_t members[3] = {t[0], t[1], t[2]};
      cache->store(members, 3, triple_ok[c] != 0, triple_slots[c]);
    }
  }
  for (std::size_t c = 0; c < triple_count; ++c) {
    if (triple_ok[c]) groups.push_back(std::move(triple_slots[c]));
  }
  return groups;
}

}  // namespace

ShareGroup evaluate_group(std::span<const trace::Request> requests,
                          const std::vector<std::size_t>& member_indices,
                          const geo::DistanceOracle& oracle, const GroupOptions& options,
                          int taxi_seats, bool& feasible) {
  ShareGroup group;
  EvalScratch scratch;
  evaluate_group_into(requests, member_indices.data(), member_indices.size(), oracle,
                      options, taxi_seats, feasible, group, scratch);
  return group;
}

std::vector<ShareGroup> enumerate_share_groups(std::span<const trace::Request> requests,
                                               const geo::DistanceOracle& oracle,
                                               const GroupOptions& options,
                                               int taxi_seats, GroupCache* cache) {
  O2O_EXPECTS(options.max_group_size >= 2 && options.max_group_size <= 4);
  O2O_EXPECTS(options.detour_threshold_km >= 0.0);
  obs::StageTimer stage(obs::Stage::kGroupEnum);
  // The cache is an engine feature; the serial reference never sees it.
  GroupCache* effective =
      (options.parallel && options.cross_frame_cache) ? cache : nullptr;
  GroupCache::Stats before;
  if (effective != nullptr) {
    effective->begin_frame(requests, options, taxi_seats, &oracle);
    before = effective->stats();
  }
  std::vector<ShareGroup> groups =
      options.parallel ? enumerate_engine(requests, oracle, options, taxi_seats, effective)
                       : enumerate_serial(requests, oracle, options, taxi_seats);
  if (effective != nullptr) {
    const GroupCache::Stats& after = effective->stats();
    obs::add(obs::Counter::kGroupCacheHits, after.hits - before.hits);
    obs::add(obs::Counter::kGroupCacheRevalidations, after.stores - before.stores);
  }
  obs::add(obs::Counter::kFeasibleGroups, groups.size());
  return groups;
}

}  // namespace o2o::packing
