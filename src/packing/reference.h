// Pre-bitset set-packing solvers, preserved verbatim as the differential
// reference for `tests/packing/sharing_engine_test.cpp` and the "before"
// side of `bench/micro_sharing`. Semantics documented in set_packing.h;
// do not modify these when tuning the production solvers.
#pragma once

#include "packing/set_packing.h"

namespace o2o::packing::reference {

/// Branch & bound over sets in preference order, suffix-weight bound.
/// Exponential; precondition `sets.size() <= max_sets`.
Packing solve_exact(const SetPackingProblem& problem, std::size_t max_sets = 26);

/// Weight-ordered maximal packing over a byte occupancy map.
Packing solve_greedy(const SetPackingProblem& problem);

/// Greedy start + (2-for-1) swap improvements.
Packing solve_local_search(const SetPackingProblem& problem, std::size_t max_rounds = 64);

}  // namespace o2o::packing::reference
