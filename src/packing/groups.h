// Feasible share-group enumeration (line 1 of the paper's Algorithm 3):
// the set C of all subsets c_k of passenger requests (2 <= |c_k| <= 3)
// that can share one taxi, i.e. whose optimal pooled route keeps every
// member's detour D_ck(r.s, r.d) - D(r.s, r.d) within the threshold θ.
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "geo/distance_oracle.h"
#include "routing/route.h"
#include "trace/request.h"

namespace o2o::packing {

/// One feasible shared ride over concrete requests.
struct ShareGroup {
  std::vector<std::size_t> member_indices;  ///< indices into the request span
  routing::Route pooled_route;              ///< optimal route, no taxi anchor
  double pooled_length_km = 0.0;            ///< length of pooled_route
  double direct_sum_km = 0.0;               ///< Σ_j D(r_j.s, r_j.d)
  double max_detour_km = 0.0;               ///< worst member detour
  /// D(r_j.s, r_j.d) per member, aligned with member_indices — computed
  /// during evaluation so downstream consumers (dispatch_sharing's
  /// per-unit savings) never re-query the oracle for them.
  std::vector<double> member_direct_km;
};

struct GroupOptions {
  double detour_threshold_km = 5.0;  ///< θ
  int max_group_size = 3;            ///< the paper's practical |c_k| <= 3
  /// When true (default), triples are grown from feasible pairs only --
  /// the standard pruning. Exhaustive enumeration (false) is exponential
  /// but exact; tests compare both on small inputs.
  bool grow_triples_from_pairs = true;
  /// Requests whose pick-ups are farther apart than this can never ride
  /// together (cheap pre-filter; +inf disables). Independently of this
  /// user cap, the engine derives a *finite* per-request radius from the
  /// detour threshold whenever `require_saving` holds and θ is finite: a
  /// feasible pair's pooled route cannot be sequential (it would save
  /// nothing), so the first-picked rider i passes the other pick-up
  /// before its own drop-off, which forces
  ///   euclid(i.s, j.s) <= θ/2 + D(i.s, i.d).
  /// Pairs beyond θ/2 + max(direct_i, direct_j) are provably infeasible
  /// and are never evaluated; the bound is asserted on every feasible
  /// pair the engine emits.
  double pickup_radius_km = std::numeric_limits<double>::infinity();
  /// Require the pooled route to be strictly shorter than the sum of the
  /// members' direct trips. Without this, two back-to-back trips served
  /// *sequentially* satisfy the detour constraint with zero detour while
  /// sharing saves nothing -- the paper's model implicitly assumes rides
  /// overlap, and this constraint makes that explicit.
  bool require_saving = true;
  /// When true (default), candidate pairs come from a spatial-grid radius
  /// query over pick-ups (user radius and/or the derived θ-bound above)
  /// and pair/triple evaluations run on the shared ThreadPool when the
  /// oracle allows concurrent queries. Output is pinned: the same groups,
  /// in the same order, bit-for-bit as the serial dense scan (false),
  /// which is kept as the differential reference.
  bool parallel = true;
  /// Engine-only (parallel == true) accelerations. All three are
  /// conservative -- they only drop provably infeasible candidates or
  /// replay verbatim verdicts -- so the output stays bit-identical to
  /// the serial scan in every knob combination (pinned differentially
  /// in tests/packing).
  ///
  /// (a) SoA leg gather + 8-lane SIMD certificate over surviving pair
  /// candidates: a pair none of whose interleaved stop orders can both
  /// save distance and keep detours within θ (with padding) skips the
  /// exact `optimal_route` evaluation. Effective when `require_saving`
  /// holds (the order restriction rests on it); runtime-dispatched
  /// AVX2/NEON with a scalar fallback (util/simd.h).
  bool simd_prefilter = true;
  /// (b) Destination-bearing cone prune: grid-emitted pairs where
  /// neither pick-up lies inside the other rider's (direct + θ) ellipse
  /// are dropped before any oracle work. Active under the same
  /// conditions as the derived radius (require_saving, finite θ).
  bool direction_cone = true;
  /// (c) Consult and update the GroupCache handed to
  /// enumerate_share_groups, replaying exact verdicts for candidates
  /// whose members are unchanged since the previous frame.
  bool cross_frame_cache = true;
  /// (d) Persist per-request pair-candidate neighbor lists (plus direct
  /// distances) in the GroupCache so warm frames skip grid queries,
  /// filters, and dedup for unchanged requests and only run fresh grid
  /// work on the churn delta. Needs a cache and the sparse (radius)
  /// path; the dense all-pairs path has nothing to persist.
  bool persist_candidates = true;
  /// (e) Fan the exact candidate evaluations (optimal_route + detour
  /// checks) over the shared ThreadPool when the oracle allows
  /// concurrent queries. Off forces those evaluations serial even with
  /// `parallel` engines enabled — the differential lever for pinning
  /// the parallel exact path against the serial one.
  bool parallel_exact = true;
};

class GroupCache;  // cross-frame verdict memo (packing/group_enum.h)

/// Enumerates all feasible groups of size in [2, max_group_size] over
/// `requests`. Seat demands are honoured against `taxi_seats`. When
/// `cache` is non-null and options enable the engine + cross_frame_cache,
/// verdicts persist across calls (the cache rebinds to each call's
/// request snapshot and invalidates by content stamps).
std::vector<ShareGroup> enumerate_share_groups(std::span<const trace::Request> requests,
                                               const geo::DistanceOracle& oracle,
                                               const GroupOptions& options,
                                               int taxi_seats = 4,
                                               GroupCache* cache = nullptr);

/// Builds the ShareGroup record (route + detours) for one candidate
/// member set; `feasible` is set false when any detour exceeds θ or the
/// seat demand exceeds `taxi_seats`.
ShareGroup evaluate_group(std::span<const trace::Request> requests,
                          const std::vector<std::size_t>& member_indices,
                          const geo::DistanceOracle& oracle, const GroupOptions& options,
                          int taxi_seats, bool& feasible);

}  // namespace o2o::packing
