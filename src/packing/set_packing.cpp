#include "packing/set_packing.h"

#include <algorithm>
#include <bit>
#include <numeric>

#include "packing/bitset.h"
#include "util/contracts.h"

namespace o2o::packing {

namespace {

double weight_of(const SetPackingProblem& problem, std::size_t set_index) {
  return problem.weights.empty() ? 1.0 : problem.weights[set_index];
}

/// Per-set sparse (word, mask) entries over the element universe. A share
/// group has at most 3 elements, so each set touches at most 3 words and
/// a conflict test against the occupancy bitset is <= 3 word-ANDs.
class ElementMasks {
 public:
  explicit ElementMasks(const SetPackingProblem& problem) {
    offsets_.reserve(problem.sets.size() + 1);
    offsets_.push_back(0);
    for (const auto& set : problem.sets) {
      const std::size_t begin = entries_.size();
      for (std::size_t e : set) {
        const auto word = static_cast<std::uint32_t>(e / kBitsPerWord);
        const BitWord bit = BitWord{1} << (e % kBitsPerWord);
        // Elements are sorted, so words are non-decreasing within a set.
        if (entries_.size() > begin && entries_.back().word == word) {
          entries_.back().mask |= bit;
        } else {
          entries_.push_back({word, bit});
        }
      }
      offsets_.push_back(static_cast<std::uint32_t>(entries_.size()));
    }
  }

  bool conflicts(std::size_t set_index, const BlockBitset& occupancy) const {
    const BitWord* words = occupancy.words();
    for (std::uint32_t i = offsets_[set_index]; i < offsets_[set_index + 1]; ++i) {
      if (words[entries_[i].word] & entries_[i].mask) return true;
    }
    return false;
  }

  void mark(std::size_t set_index, BlockBitset& occupancy) const {
    BitWord* words = occupancy.words();
    for (std::uint32_t i = offsets_[set_index]; i < offsets_[set_index + 1]; ++i) {
      words[entries_[i].word] |= entries_[i].mask;
    }
  }

  bool disjoint(std::size_t a, std::size_t b) const {
    // Both entry runs are word-sorted: linear merge scan, AND on word hits.
    std::uint32_t i = offsets_[a];
    std::uint32_t j = offsets_[b];
    while (i < offsets_[a + 1] && j < offsets_[b + 1]) {
      if (entries_[i].word == entries_[j].word) {
        if (entries_[i].mask & entries_[j].mask) return false;
        ++i;
        ++j;
      } else if (entries_[i].word < entries_[j].word) {
        ++i;
      } else {
        ++j;
      }
    }
    return true;
  }

 private:
  struct Entry {
    std::uint32_t word;
    BitWord mask;
  };
  std::vector<Entry> entries_;
  std::vector<std::uint32_t> offsets_;
};

std::vector<std::size_t> preference_order(const SetPackingProblem& problem) {
  std::vector<std::size_t> order(problem.sets.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double wa = weight_of(problem, a);
    const double wb = weight_of(problem, b);
    if (wa != wb) return wa > wb;
    if (problem.sets[a].size() != problem.sets[b].size()) {
      return problem.sets[a].size() < problem.sets[b].size();
    }
    return a < b;
  });
  return order;
}

void validate_problem(const SetPackingProblem& problem) {
  O2O_EXPECTS(problem.weights.empty() || problem.weights.size() == problem.sets.size());
  for (const auto& set : problem.sets) {
    O2O_EXPECTS(std::is_sorted(set.begin(), set.end()));
    O2O_EXPECTS(std::adjacent_find(set.begin(), set.end()) == set.end());
    for (std::size_t e : set) O2O_EXPECTS(e < problem.universe_size);
  }
}

std::size_t intersect_count(const BlockBitset& a, const BlockBitset& b) {
  const std::size_t n = std::min(a.word_count(), b.word_count());
  std::size_t total = 0;
  for (std::size_t w = 0; w < n; ++w) {
    total += static_cast<std::size_t>(std::popcount(a.words()[w] & b.words()[w]));
  }
  return total;
}

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

/// Exact maximum-weight packing of one conflict-graph component, on local
/// (remapped) set and element indices. Branch rule: pick the still-
/// available least-covered element e; one branch per available set
/// covering e (those subtrees are disjoint — no packing holds two sets
/// sharing e) plus a final branch leaving e uncovered. Bound: current
/// weight + the positive part of the still-available weights.
class ComponentSolver {
 public:
  ComponentSolver(const SetPackingProblem& problem, const std::vector<std::size_t>& sets)
      : global_sets_(sets) {
    const std::size_t m = sets.size();
    // Local element universe: the sorted union of member elements.
    for (std::size_t s : sets) {
      elements_.insert(elements_.end(), problem.sets[s].begin(), problem.sets[s].end());
    }
    std::sort(elements_.begin(), elements_.end());
    elements_.erase(std::unique(elements_.begin(), elements_.end()), elements_.end());

    covers_.assign(elements_.size(), BlockBitset(m));
    set_elements_.resize(m);
    weights_.resize(m);
    for (std::size_t ls = 0; ls < m; ++ls) {
      const std::size_t gs = sets[ls];
      weights_[ls] = weight_of(problem, gs);
      for (std::size_t e : problem.sets[gs]) {
        const auto it = std::lower_bound(elements_.begin(), elements_.end(), e);
        const auto le = static_cast<std::size_t>(it - elements_.begin());
        covers_[le].set(ls);
        set_elements_[ls].push_back(le);
      }
    }
  }

  /// `seed` holds local set indices of a valid packing (the incumbent).
  /// Returns the optimal packing as global set indices.
  Packing run(const Packing& seed) {
    best_ = seed;
    best_weight_ = 0.0;
    for (std::size_t ls : seed) best_weight_ += weights_[ls];

    // Every level of the search removes at least one set from the
    // availability bitset, so depth is bounded by the component size;
    // preallocating the whole stack keeps references stable across the
    // recursion.
    const std::size_t m = global_sets_.size();
    available_.assign(m + 2, BlockBitset(m));
    branch_sets_.assign(m + 2, {});
    available_[0].set_all();
    recurse(0);

    Packing global;
    global.reserve(best_.size());
    for (std::size_t ls : best_) global.push_back(global_sets_[ls]);
    return global;
  }

 private:
  void recurse(std::size_t depth) {
    const BlockBitset& available = available_[depth];
    // Every node's selection is a valid packing; strict improvement keeps
    // the seeded incumbent whenever it is already optimal.
    if (current_weight_ > best_weight_) {
      best_weight_ = current_weight_;
      best_ = current_;
    }
    double optimistic = 0.0;
    available.for_each([&](std::size_t ls) {
      if (weights_[ls] > 0.0) optimistic += weights_[ls];
    });
    if (current_weight_ + optimistic <= best_weight_) return;  // bound

    // Least-covered element still coverable; ties to the lowest index.
    std::size_t branch_element = kNone;
    std::size_t branch_count = kNone;
    for (std::size_t le = 0; le < elements_.size(); ++le) {
      const std::size_t count = intersect_count(covers_[le], available);
      if (count == 0 || count >= branch_count) continue;
      branch_element = le;
      branch_count = count;
      if (count == 1) break;  // cannot do better
    }
    if (branch_element == kNone) return;  // no set can be added

    std::vector<std::size_t>& branches = branch_sets_[depth];
    branches.clear();
    available.for_each([&](std::size_t ls) {
      if (covers_[branch_element].test(ls)) branches.push_back(ls);
    });

    BlockBitset& child = available_[depth + 1];
    for (std::size_t ls : branches) {
      child = available;
      // Taking ls removes every set sharing one of its elements (itself
      // included) — |set| word-subtractions, no conflict matrix needed.
      for (std::size_t le : set_elements_[ls]) child.subtract(covers_[le]);
      current_.push_back(ls);
      current_weight_ += weights_[ls];
      recurse(depth + 1);
      current_weight_ -= weights_[ls];
      current_.pop_back();
    }
    // Final branch: leave the element uncovered.
    child = available;
    child.subtract(covers_[branch_element]);
    recurse(depth + 1);
  }

  const std::vector<std::size_t>& global_sets_;
  std::vector<std::size_t> elements_;                 // global element ids, sorted
  std::vector<BlockBitset> covers_;                   // local element -> set bits
  std::vector<std::vector<std::size_t>> set_elements_;  // local set -> local elements
  std::vector<double> weights_;

  std::vector<BlockBitset> available_;                // per-depth availability
  std::vector<std::vector<std::size_t>> branch_sets_;  // per-depth scratch
  Packing current_, best_;
  double current_weight_ = 0.0;
  double best_weight_ = 0.0;
};

}  // namespace

bool is_valid_packing(const SetPackingProblem& problem, const Packing& packing) {
  std::vector<std::uint8_t> used(problem.universe_size, 0);
  for (std::size_t index : packing) {
    if (index >= problem.sets.size()) return false;
    for (std::size_t e : problem.sets[index]) {
      if (e >= problem.universe_size || used[e]) return false;
      used[e] = 1;
    }
  }
  return true;
}

double packing_weight(const SetPackingProblem& problem, const Packing& packing) {
  double total = 0.0;
  for (std::size_t index : packing) total += weight_of(problem, index);
  return total;
}

Packing solve_exact(const SetPackingProblem& problem, std::size_t max_sets) {
  validate_problem(problem);
  O2O_EXPECTS(problem.sets.size() <= max_sets);
  const std::size_t n = problem.sets.size();
  Packing chosen;
  if (n == 0) return chosen;

  // Incumbent: the 5/3-approximation, restricted per component below.
  const Packing seed = solve_local_search(problem);
  std::vector<std::uint8_t> in_seed(n, 0);
  for (std::size_t s : seed) in_seed[s] = 1;

  // Connected components of the conflict graph via union-find keyed on
  // "first set seen covering each element".
  std::vector<std::size_t> parent(n);
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  const auto find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  std::vector<std::size_t> first_cover(problem.universe_size, kNone);
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t e : problem.sets[s]) {
      if (first_cover[e] == kNone) {
        first_cover[e] = s;
      } else {
        parent[find(s)] = find(first_cover[e]);
      }
    }
  }

  // Components in order of their smallest set index (deterministic).
  std::vector<std::size_t> component_of(n, kNone);
  std::vector<std::vector<std::size_t>> components;
  for (std::size_t s = 0; s < n; ++s) {
    const std::size_t root = find(s);
    if (component_of[root] == kNone) {
      component_of[root] = components.size();
      components.emplace_back();
    }
    components[component_of[root]].push_back(s);
  }

  for (const std::vector<std::size_t>& sets : components) {
    if (sets.size() == 1) {
      // Conflict-free set (empty sets included): take iff it helps.
      if (weight_of(problem, sets.front()) > 0.0) chosen.push_back(sets.front());
      continue;
    }
    Packing local_seed;
    for (std::size_t ls = 0; ls < sets.size(); ++ls) {
      if (in_seed[sets[ls]]) local_seed.push_back(ls);
    }
    ComponentSolver solver(problem, sets);
    const Packing picked = solver.run(local_seed);
    chosen.insert(chosen.end(), picked.begin(), picked.end());
  }

  std::sort(chosen.begin(), chosen.end());
  O2O_ENSURES(is_valid_packing(problem, chosen));
  return chosen;
}

Packing solve_greedy(const SetPackingProblem& problem) {
  validate_problem(problem);
  const ElementMasks masks(problem);
  BlockBitset occupancy(problem.universe_size);
  Packing chosen;
  for (std::size_t index : preference_order(problem)) {
    if (masks.conflicts(index, occupancy)) continue;
    masks.mark(index, occupancy);
    chosen.push_back(index);
  }
  O2O_ENSURES(is_valid_packing(problem, chosen));
  return chosen;
}

Packing solve_local_search(const SetPackingProblem& problem, std::size_t max_rounds) {
  validate_problem(problem);
  const ElementMasks masks(problem);

  // Greedy start — same scan as solve_greedy, reusing the masks.
  BlockBitset occupancy(problem.universe_size);
  Packing chosen;
  for (std::size_t index : preference_order(problem)) {
    if (masks.conflicts(index, occupancy)) continue;
    masks.mark(index, occupancy);
    chosen.push_back(index);
  }

  std::vector<std::uint8_t> in_packing(problem.sets.size(), 0);
  for (std::size_t index : chosen) in_packing[index] = 1;

  // element -> chosen set covering it (or npos)
  std::vector<std::size_t> covered_by(problem.universe_size, kNone);
  const auto rebuild_cover = [&] {
    std::fill(covered_by.begin(), covered_by.end(), kNone);
    for (std::size_t index : chosen) {
      for (std::size_t e : problem.sets[index]) covered_by[e] = index;
    }
  };
  rebuild_cover();

  // (2-for-1) swap rounds. A viable swap partner for `a` must itself
  // conflict with exactly `a`'s chosen set (or none at all), so instead of
  // probing every b > a like the dense reference scan, each round buckets
  // the unchosen sets by their unique chosen conflict once -- covered_by
  // is static within a round, since any improvement ends it -- and the
  // b-scan walks only bucket[conflict_a] merged with the conflict-free
  // list, in ascending order. The first improving pair found is exactly
  // the dense scan's, so the output packing is identical.
  constexpr std::size_t kMulti = static_cast<std::size_t>(-2);
  std::vector<std::size_t> conflict_class(problem.sets.size(), kMulti);
  std::vector<std::vector<std::size_t>> bucket(problem.sets.size());
  std::vector<std::size_t> free_sets;  // unchosen sets with no chosen conflict
  for (std::size_t round = 0; round < max_rounds; ++round) {
    bool improved = false;
    conflict_class.assign(problem.sets.size(), kMulti);
    for (auto& b : bucket) b.clear();
    free_sets.clear();
    for (std::size_t s = 0; s < problem.sets.size(); ++s) {
      if (in_packing[s]) continue;
      std::size_t conflict = kNone;
      bool multi = false;
      for (std::size_t e : problem.sets[s]) {
        const std::size_t c = covered_by[e];
        if (c == kNone) continue;
        if (conflict == kNone) {
          conflict = c;
        } else if (conflict != c) {
          multi = true;
          break;
        }
      }
      if (multi) continue;
      conflict_class[s] = conflict;
      if (conflict == kNone) {
        free_sets.push_back(s);
      } else {
        bucket[conflict].push_back(s);
      }
    }

    for (std::size_t a = 0; a < problem.sets.size() && !improved; ++a) {
      if (in_packing[a] || conflict_class[a] == kMulti) continue;
      const std::size_t conflict_a = conflict_class[a];
      if (conflict_a == kNone) {
        // a fits outright: greedy missed maximality after a prior swap.
        chosen.push_back(a);
        in_packing[a] = 1;
        for (std::size_t e : problem.sets[a]) covered_by[e] = a;
        improved = true;
        break;
      }
      // Candidates b > a, ascending: merge of a's conflict bucket and the
      // conflict-free sets (both already sorted).
      const std::vector<std::size_t>& own = bucket[conflict_a];
      std::size_t i = 0, j = 0;
      while (i < own.size() || j < free_sets.size()) {
        std::size_t b;
        if (j == free_sets.size() || (i < own.size() && own[i] < free_sets[j])) {
          b = own[i++];
        } else {
          b = free_sets[j++];
        }
        if (b <= a) continue;
        if (!masks.disjoint(a, b)) continue;
        // Swap out conflict_a (b's unique conflict, or b conflict-free),
        // swap in {a, b} when that increases total weight.
        const double removed = weight_of(problem, conflict_a);
        const double added = weight_of(problem, a) + weight_of(problem, b);
        if (added <= removed) continue;
        chosen.erase(std::remove(chosen.begin(), chosen.end(), conflict_a), chosen.end());
        in_packing[conflict_a] = 0;
        chosen.push_back(a);
        chosen.push_back(b);
        in_packing[a] = 1;
        in_packing[b] = 1;
        rebuild_cover();
        improved = true;
        break;
      }
    }
    if (!improved) break;
  }
  O2O_ENSURES(is_valid_packing(problem, chosen));
  return chosen;
}

}  // namespace o2o::packing
