// The share-group enumeration pipeline's auxiliary machinery (DESIGN.md
// "Group-enumeration pipeline"): the cross-frame GroupCache plus the
// conservative candidate filters (direction cone, SIMD pair certificate)
// the grid-pruned engine in groups.cpp composes. Everything here only
// ever *drops provably infeasible candidates* or *replays verbatim
// verdicts*, so the enumeration output stays bit-identical to the serial
// dense scan no matter which knobs are on.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "geo/distance_oracle.h"
#include "index/spatial_grid.h"
#include "packing/groups.h"
#include "routing/route.h"
#include "trace/request.h"

namespace o2o::packing {

/// Slack absorbing bulk-row-vs-pointwise and hypot-vs-sqrt ulp noise in
/// the conservative filters, mirroring the grid prefilter's pad. Any
/// candidate within this margin of a predicate boundary is kept and
/// resolved by the exact scalar evaluation.
inline constexpr double kFilterPadKm = 1e-6;

/// Cross-frame memo of exact group evaluations, keyed by the members'
/// RequestIds in candidate order. Carried on sim::DispatchContext so the
/// sharing dispatchers re-validate only the delta between consecutive
/// frames instead of re-running `optimal_route` for every surviving
/// candidate.
///
/// Invalidation invariants (DESIGN.md):
///   * A hit requires every member's *content stamp* (pickup, dropoff,
///     seats) to match the stamp recorded at evaluation time; any edit
///     to a request bumps its stamp in begin_frame and voids its entries.
///   * A hit requires the members' relative order to match the recorded
///     order (the key is order-sensitive), because `optimal_route` tie-
///     breaking depends on rider input order. The simulator's pending
///     queue is FIFO with order-preserving erases, so persisting requests
///     never swap order in practice — a swap is a harmless miss.
///   * Entries are keyed to one (θ, require_saving, max group size,
///     taxi_seats, oracle) fingerprint; begin_frame flushes everything
///     when it changes. Taxi *positions* never enter a verdict (only the
///     capacity constant does), so taxis moving between frames cannot
///     stale the cache.
///   * Evaluations are deterministic for fixed member content and
///     oracle, so replaying a stored verdict (route, lengths, detours)
///     is bit-identical to re-running evaluate_group.
///
/// All methods must be called from the frame-owning thread; the engine
/// consults the cache strictly before and after its parallel evaluation
/// section.
class GroupCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;          ///< candidates answered from the cache
    std::uint64_t stores = 0;        ///< exact evaluations recorded (revalidations)
    std::uint64_t invalidated = 0;   ///< entries dropped (content change / GC)
    std::uint64_t flushes = 0;       ///< full clears (fingerprint change)
    std::uint64_t evictions = 0;     ///< entries dropped by the epoch/size sweep
  };

  enum class Verdict : std::uint8_t { kMiss, kFeasible, kInfeasible };

  /// Binds the cache to this frame's request snapshot: bumps the epoch,
  /// refreshes content stamps, flushes on configuration change, and
  /// garbage-collects entries unseen for a few frames.
  void begin_frame(std::span<const trace::Request> requests, const GroupOptions& options,
                   int taxi_seats, const geo::DistanceOracle* oracle);

  /// Cached verdict for a candidate over the current frame's request
  /// indices (as passed to begin_frame). On kFeasible, `group` is filled
  /// exactly as evaluate_group would have produced it.
  Verdict try_get(const std::size_t* members, std::size_t count, ShareGroup& group);

  /// Records an exact evaluation's verdict; `group` is only read when
  /// `feasible` (must be the evaluate_group output for these members).
  void store(const std::size_t* members, std::size_t count, bool feasible,
             const ShareGroup& group);

  const Stats& stats() const noexcept { return stats_; }
  std::size_t size() const noexcept { return entries_.size(); }
  std::uint64_t epoch() const noexcept { return epoch_; }
  void clear();

  // --- Candidate persistence (GroupOptions::persist_candidates) ---
  //
  // Beyond verdicts, the cache can persist each request's *pair-candidate
  // neighbor list* and direct distance across frames. The pair-candidate
  // predicate — pick-ups within either rider's padded radius plus the
  // user pickup_radius cut — is purely pairwise in (content, θ,
  // require_saving, oracle, pickup_radius), so a pair of requests whose
  // contents are unchanged since the previous frame must produce the
  // same emission verdict, and warm frames replay it instead of
  // re-running grid queries and dedup. Entries flagged as
  // filter-rejected (direction-cone or SIMD certificate) are proofs of
  // *exact* infeasibility, so skipping them is output-preserving under
  // every filter-knob combination.

  static constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

  /// One frame's churn classification, valid until the next begin_frame.
  struct CandidateFrame {
    bool warm = false;         ///< clean requests may replay persisted lists
    bool direct_warm = false;  ///< persisted direct distances are reusable
    std::vector<std::uint32_t> churn;  ///< frame indices needing fresh grid work
    std::vector<std::uint8_t> clean;   ///< per frame index: 1 = replay-eligible
  };

  /// Starts candidate persistence for this frame (call right after
  /// begin_frame): validates the pickup-radius fingerprint, classifies
  /// every request as clean (content unchanged AND its list was synced
  /// last frame) or churn, and patches the persistent pickup grid from
  /// the frame's arrival/departure/move delta.
  const CandidateFrame& begin_candidates(double pickup_radius_km);

  /// Persisted direct distance of a clean index (CandidateFrame::direct_warm
  /// must hold; the value is the bitwise oracle result from the frame
  /// that stored it).
  double persisted_direct(std::size_t index) const;

  /// Clean `index`'s persisted neighbors, packed as
  /// (uint32(RequestId) << 1) | filter_rejected.
  std::span<const std::uint64_t> neighbor_list(std::size_t index) const;

  /// Current frame index of `id`, or kNoIndex when absent this frame.
  std::size_t index_of(trace::RequestId id) const;

  /// Persistent pickup grid keyed by RequestId, patched to the current
  /// frame; nullptr until the first store_candidates builds it.
  const index::SpatialGrid* candidate_grid() const noexcept {
    return cand_grid_ ? &*cand_grid_ : nullptr;
  }

  /// Records this frame's candidate work: `keys` are the sorted,
  /// deduplicated pre-filter pair keys covering every pair with a churn
  /// member (all pairs on a cold frame); flags[k] == 1 marks keys the
  /// conservative filters certified infeasible. `direct` spans all frame
  /// indices (read only when direct_valid). Builds the persistent pickup
  /// grid on the first call.
  void store_candidates(std::span<const std::uint64_t> keys,
                        std::span<const std::uint8_t> flags,
                        std::span<const double> direct, bool direct_valid,
                        double cell_km);

 private:
  struct Key {
    std::array<trace::RequestId, 3> ids;  ///< ids[2] == kInvalidRequest for pairs
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept;
  };
  struct Entry {
    std::array<std::uint64_t, 3> stamps{};  ///< member content stamps at eval time
    bool feasible = false;
    std::uint64_t last_used = 0;
    // Payload, populated for feasible entries only.
    routing::Route route;
    double pooled_length_km = 0.0;
    double direct_sum_km = 0.0;
    double max_detour_km = 0.0;
    std::array<double, 3> member_direct{};
  };
  struct IdState {
    geo::Point pickup;
    geo::Point dropoff;
    int seats = 0;
    std::uint64_t stamp = 0;      ///< bumped whenever the content changes
    std::uint64_t last_seen = 0;  ///< epoch of the last frame listing the id
    std::uint64_t stamp_epoch = 0;  ///< epoch the stamp last changed
    std::uint32_t frame_index = 0;  ///< index in requests_ (valid when last_seen == epoch_)
    // Candidate persistence payload.
    std::uint64_t cand_epoch = 0;   ///< epoch the neighbor list was last synced
    double direct_km = 0.0;         ///< persisted oracle direct distance
    std::vector<std::uint64_t> cand;  ///< packed neighbors: (id << 1) | rejected
  };

  /// Open-addressing (linear-probe, power-of-two, tombstoned) map from
  /// Key to Entry. Probing walks a dense key/state pair of arrays; the
  /// fat entries sit in a parallel array touched only on a key match.
  /// Semantically a plain hash map — it exists because the warm-frame
  /// lookup storm (hundreds of thousands of try_get/store calls) spends
  /// most of its time chasing unordered_map nodes otherwise.
  class EntryMap {
   public:
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    std::size_t find_slot(const Key& key) const;
    Entry& entry_at(std::size_t slot) { return entries_[slot]; }
    /// Insert-or-overwrite slot for `key`; returns the entry to fill.
    Entry& put(const Key& key);
    void erase_slot(std::size_t slot);
    /// Drops every entry with last_used + max_age < epoch; returns count.
    std::size_t sweep(std::uint64_t epoch, std::uint64_t max_age);
    void clear();
    std::size_t size() const noexcept { return size_; }

   private:
    std::vector<Key> keys_;
    std::vector<std::uint8_t> state_;  ///< 0 empty, 1 full, 2 tombstone
    std::vector<Entry> entries_;
    std::size_t size_ = 0;
    std::size_t tombs_ = 0;
    std::size_t mask_ = 0;  ///< capacity - 1 (capacity is a power of two)

    void rehash(std::size_t capacity);
    void reserve_for_insert();
  };

  Key key_of(const std::size_t* members, std::size_t count) const;
  void reset_candidates();

  std::span<const trace::Request> requests_;  ///< valid between begin_frame calls
  EntryMap entries_;
  std::unordered_map<trace::RequestId, IdState> ids_;
  /// Content stamp per current-frame request index, mirrored out of ids_
  /// in begin_frame so the per-candidate stamp checks in try_get/store
  /// are array reads instead of hash lookups.
  std::vector<std::uint64_t> frame_stamps_;
  /// Per current-frame index: the id's state node (stable pointers —
  /// ids_ is node-based and never erases live ids). Lets the candidate
  /// paths skip the hash lookup per request.
  std::vector<IdState*> frame_states_;
  std::uint64_t epoch_ = 0;
  std::uint64_t stamp_counter_ = 0;
  /// Live entry count right after the last sweep; the size trigger fires
  /// when the map doubles past it (streaming churn between periodic
  /// sweeps would otherwise grow the map without bound).
  std::size_t live_after_sweep_ = 0;
  Stats stats_;

  // Candidate-persistence state.
  CandidateFrame cand_frame_;
  std::optional<index::SpatialGrid> cand_grid_;  ///< RequestId-keyed pickups
  std::vector<trace::RequestId> cand_prev_ids_;  ///< grid membership last frame
  double cand_radius_km_ = std::numeric_limits<double>::quiet_NaN();
  bool cand_direct_valid_ = false;
  std::uint64_t cand_synced_epoch_ = 0;  ///< epoch store_candidates last ran

  // Frame fingerprint the entries are valid under.
  double theta_ = 0.0;
  bool require_saving_ = false;
  int max_group_size_ = 0;
  int taxi_seats_ = 0;
  const geo::DistanceOracle* oracle_ = nullptr;
  bool bound_ = false;
};

/// Statistics of one conservative-filter pass (for the obs counters).
struct FilterStats {
  std::size_t kept = 0;
  std::size_t rejected = 0;
  std::size_t batches = 0;  ///< 8-lane SIMD batches executed
  std::size_t lanes = 0;    ///< lanes actually occupied across them
};

/// Direction-cone prune over lexicographically sorted pair keys
/// ((i << 32) | j): drops pairs for which neither pick-up lies within
/// the other rider's (direct + θ) ellipse — a necessary condition for a
/// *saving* pair on any oracle dominating the Euclidean metric (the same
/// standing assumption as the grid's derived radius). Compacts
/// `pair_keys` in place, preserving order.
FilterStats cone_prune_pairs(std::span<const trace::Request> requests,
                             std::span<const double> direct, double theta,
                             std::vector<std::uint64_t>& pair_keys);

/// SoA leg gather + SIMD conservative pair certificate over sorted pair
/// keys: pulls the six cross legs via bulk oracle rows (grouped by the
/// shared first member, halved for symmetric oracles) and marks
/// keep[k] = 0 for pairs that provably fail the saving-or-detour
/// predicates with kFilterPadKm slack. Requires options.require_saving
/// (the certificate's order restriction rests on it).
FilterStats simd_prefilter_pairs(std::span<const trace::Request> requests,
                                 const geo::DistanceOracle& oracle,
                                 std::span<const double> direct,
                                 const GroupOptions& options,
                                 std::span<const std::uint64_t> pair_keys,
                                 std::vector<std::uint8_t>& keep);

}  // namespace o2o::packing
