#include "packing/group_enum.h"

#include <algorithm>
#include <bit>

#include "obs/obs.h"
#include "util/contracts.h"
#include "util/simd.h"

namespace o2o::packing {

namespace {

constexpr std::uint64_t kSweepPeriod = 16;  ///< frames between GC sweeps
constexpr std::uint64_t kMaxAgeFrames = 4;  ///< unused entries older than this die
/// Below this many entries the size-triggered sweep never fires (the
/// periodic one still caps idle growth); above it, doubling past the
/// live count at the last sweep forces one.
constexpr std::size_t kSweepSizeFloor = 4096;

}  // namespace

std::size_t GroupCache::KeyHash::operator()(const Key& key) const noexcept {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  for (const trace::RequestId id : key.ids) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(id)) +
         0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return static_cast<std::size_t>(h);
}

GroupCache::Key GroupCache::key_of(const std::size_t* members, std::size_t count) const {
  Key key{{trace::kInvalidRequest, trace::kInvalidRequest, trace::kInvalidRequest}};
  for (std::size_t m = 0; m < count; ++m) {
    O2O_EXPECTS(members[m] < requests_.size());
    key.ids[m] = requests_[members[m]].id;
  }
  return key;
}

std::size_t GroupCache::EntryMap::find_slot(const Key& key) const {
  if (keys_.empty()) return npos;
  std::size_t slot = KeyHash{}(key)&mask_;
  while (true) {
    if (state_[slot] == 0) return npos;
    if (state_[slot] == 1 && keys_[slot] == key) return slot;
    slot = (slot + 1) & mask_;
  }
}

GroupCache::Entry& GroupCache::EntryMap::put(const Key& key) {
  reserve_for_insert();
  std::size_t slot = KeyHash{}(key)&mask_;
  std::size_t target = npos;  ///< first tombstone passed, if any
  while (true) {
    if (state_[slot] == 0) break;
    if (state_[slot] == 1 && keys_[slot] == key) {
      entries_[slot] = Entry{};
      return entries_[slot];
    }
    if (state_[slot] == 2 && target == npos) target = slot;
    slot = (slot + 1) & mask_;
  }
  if (target != npos) {
    slot = target;
    --tombs_;
  }
  keys_[slot] = key;
  state_[slot] = 1;
  ++size_;
  entries_[slot] = Entry{};
  return entries_[slot];
}

void GroupCache::EntryMap::erase_slot(std::size_t slot) {
  state_[slot] = 2;
  entries_[slot] = Entry{};  // release the route payload now, not at rehash
  --size_;
  ++tombs_;
}

std::size_t GroupCache::EntryMap::sweep(std::uint64_t epoch, std::uint64_t max_age) {
  std::size_t dropped = 0;
  for (std::size_t slot = 0; slot < state_.size(); ++slot) {
    if (state_[slot] == 1 && entries_[slot].last_used + max_age < epoch) {
      erase_slot(slot);
      ++dropped;
    }
  }
  // Rebuild once tombstones start lengthening every probe chain.
  if (!keys_.empty() && tombs_ * 4 > keys_.size()) rehash(keys_.size());
  return dropped;
}

void GroupCache::EntryMap::clear() {
  keys_.clear();
  state_.clear();
  entries_.clear();
  size_ = 0;
  tombs_ = 0;
  mask_ = 0;
}

void GroupCache::EntryMap::rehash(std::size_t capacity) {
  while (capacity < (size_ + 1) * 2) capacity *= 2;
  std::vector<Key> old_keys = std::move(keys_);
  std::vector<std::uint8_t> old_state = std::move(state_);
  std::vector<Entry> old_entries = std::move(entries_);
  keys_.assign(capacity, Key{});
  state_.assign(capacity, 0);
  entries_.assign(capacity, Entry{});
  mask_ = capacity - 1;
  tombs_ = 0;
  for (std::size_t i = 0; i < old_state.size(); ++i) {
    if (old_state[i] != 1) continue;
    std::size_t slot = KeyHash{}(old_keys[i]) & mask_;
    while (state_[slot] != 0) slot = (slot + 1) & mask_;
    keys_[slot] = old_keys[i];
    state_[slot] = 1;
    entries_[slot] = std::move(old_entries[i]);
  }
}

void GroupCache::EntryMap::reserve_for_insert() {
  if (keys_.empty()) {
    constexpr std::size_t kInitialCapacity = 1024;
    keys_.assign(kInitialCapacity, Key{});
    state_.assign(kInitialCapacity, 0);
    entries_.assign(kInitialCapacity, Entry{});
    mask_ = kInitialCapacity - 1;
    return;
  }
  // Keep the load factor (full + tombstone slots) under 3/4.
  if ((size_ + tombs_ + 1) * 4 >= keys_.size() * 3) rehash(keys_.size() * 2);
}

void GroupCache::clear() {
  entries_.clear();
  ids_.clear();
  live_after_sweep_ = 0;
  reset_candidates();
}

void GroupCache::reset_candidates() {
  // ids_ may outlive this reset (verdict entries stay valid); only the
  // candidate payload is voided.
  for (auto& [id, state] : ids_) {
    state.cand.clear();
    state.cand.shrink_to_fit();
    state.cand_epoch = 0;
  }
  cand_grid_.reset();
  cand_prev_ids_.clear();
  cand_radius_km_ = std::numeric_limits<double>::quiet_NaN();
  cand_direct_valid_ = false;
  cand_synced_epoch_ = 0;
}

void GroupCache::begin_frame(std::span<const trace::Request> requests,
                             const GroupOptions& options, int taxi_seats,
                             const geo::DistanceOracle* oracle) {
  const double theta = options.detour_threshold_km;
  if (!bound_ || theta_ != theta || require_saving_ != options.require_saving ||
      max_group_size_ != options.max_group_size || taxi_seats_ != taxi_seats ||
      oracle_ != oracle) {
    if (bound_) ++stats_.flushes;
    clear();
    theta_ = theta;
    require_saving_ = options.require_saving;
    max_group_size_ = options.max_group_size;
    taxi_seats_ = taxi_seats;
    oracle_ = oracle;
    bound_ = true;
  }
  ++epoch_;
  requests_ = requests;
  frame_stamps_.resize(requests.size());
  frame_states_.resize(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const trace::Request& request = requests[i];
    auto [it, inserted] = ids_.try_emplace(request.id);
    IdState& state = it->second;
    if (inserted || state.pickup != request.pickup || state.dropoff != request.dropoff ||
        state.seats != request.seats) {
      state.pickup = request.pickup;
      state.dropoff = request.dropoff;
      state.seats = request.seats;
      state.stamp = ++stamp_counter_;
      state.stamp_epoch = epoch_;
    }
    state.last_seen = epoch_;
    state.frame_index = static_cast<std::uint32_t>(i);
    frame_stamps_[i] = state.stamp;
    frame_states_[i] = &state;
  }
  // GC sweep: periodic, plus a size trigger so sustained streaming churn
  // between periodic sweeps cannot grow the entry map without bound.
  const std::size_t size_trigger =
      std::max(kSweepSizeFloor, 2 * live_after_sweep_);
  if (epoch_ % kSweepPeriod == 0 || entries_.size() >= size_trigger) {
    const std::size_t dropped = entries_.sweep(epoch_, kMaxAgeFrames);
    stats_.invalidated += dropped;
    stats_.evictions += dropped;
    obs::add(obs::Counter::kCacheEvictions, dropped);
    live_after_sweep_ = entries_.size();
    for (auto it = ids_.begin(); it != ids_.end();) {
      if (it->second.last_seen + kMaxAgeFrames < epoch_) {
        it = ids_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

const GroupCache::CandidateFrame& GroupCache::begin_candidates(double pickup_radius_km) {
  O2O_EXPECTS(bound_);
  obs::StageTimer stage(obs::Stage::kGridPatch);
  const std::size_t n = requests_.size();
  // The pickup-radius cut is part of the emission predicate but not of
  // the verdict fingerprint, so it gets its own: a change voids every
  // persisted list (verdict entries survive untouched).
  const bool same_radius = std::bit_cast<std::uint64_t>(cand_radius_km_) ==
                           std::bit_cast<std::uint64_t>(pickup_radius_km);
  if (!same_radius) {
    reset_candidates();
    cand_radius_km_ = pickup_radius_km;
  }
  cand_frame_.churn.clear();
  cand_frame_.clean.assign(n, 0);
  // Replay needs an unbroken chain: lists were synced exactly one frame
  // ago (a skipped store — tiny frame, knob toggle — cold-starts the
  // next one, which is sound and self-heals).
  cand_frame_.warm = same_radius && cand_synced_epoch_ + 1 == epoch_;
  cand_frame_.direct_warm = cand_frame_.warm && cand_direct_valid_;
  for (std::size_t i = 0; i < n; ++i) {
    const IdState& state = *frame_states_[i];
    const bool clean = cand_frame_.warm && state.stamp_epoch != epoch_ &&
                       state.cand_epoch + 1 == epoch_;
    if (clean) {
      cand_frame_.clean[i] = 1;
    } else {
      cand_frame_.churn.push_back(static_cast<std::uint32_t>(i));
    }
  }
  // Patch the persistent pickup grid from the frame delta: departures
  // out, arrivals in, moved pick-ups relocated.
  if (cand_grid_) {
    for (const trace::RequestId id : cand_prev_ids_) {
      const auto it = ids_.find(id);
      if (it == ids_.end() || it->second.last_seen != epoch_) cand_grid_->remove(id);
    }
    for (const trace::Request& request : requests_) {
      const auto pos = cand_grid_->position(request.id);
      if (!pos) {
        cand_grid_->insert(request.id, request.pickup);
      } else if (*pos != request.pickup) {
        cand_grid_->move(request.id, request.pickup);
      }
    }
  }
  cand_prev_ids_.clear();
  cand_prev_ids_.reserve(n);
  for (const trace::Request& request : requests_) cand_prev_ids_.push_back(request.id);
  return cand_frame_;
}

double GroupCache::persisted_direct(std::size_t index) const {
  O2O_EXPECTS(index < frame_states_.size());
  return frame_states_[index]->direct_km;
}

std::span<const std::uint64_t> GroupCache::neighbor_list(std::size_t index) const {
  O2O_EXPECTS(index < frame_states_.size());
  return frame_states_[index]->cand;
}

std::size_t GroupCache::index_of(trace::RequestId id) const {
  const auto it = ids_.find(id);
  if (it == ids_.end() || it->second.last_seen != epoch_) return kNoIndex;
  return it->second.frame_index;
}

void GroupCache::store_candidates(std::span<const std::uint64_t> keys,
                                  std::span<const std::uint8_t> flags,
                                  std::span<const double> direct, bool direct_valid,
                                  double cell_km) {
  O2O_EXPECTS(bound_ && keys.size() == flags.size());
  O2O_EXPECTS(direct.size() == requests_.size());
  const std::size_t n = requests_.size();
  // Churn ids rebuild from scratch; clean ids keep their clean-clean
  // entries (flags included — a recorded certificate stays a proof) and
  // drop absent or churn neighbors, whose fresh truth arrives below.
  for (const std::uint32_t idx : cand_frame_.churn) frame_states_[idx]->cand.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (!cand_frame_.clean[i]) continue;
    auto& cand = frame_states_[i]->cand;
    std::size_t write = 0;
    for (const std::uint64_t packed : cand) {
      const auto id = static_cast<trace::RequestId>(packed >> 1);
      const std::size_t j = index_of(id);
      if (j == kNoIndex || !cand_frame_.clean[j]) continue;
      cand[write++] = packed;
    }
    cand.resize(write);
  }
  // Append both sides of every churn pair. keys are deduplicated and a
  // churn pair always has a churn member, so no entry lands twice.
  for (std::size_t k = 0; k < keys.size(); ++k) {
    const auto i = static_cast<std::size_t>(keys[k] >> 32);
    const auto j = static_cast<std::size_t>(keys[k] & 0xffffffffu);
    const std::uint64_t flag = flags[k] != 0 ? 1u : 0u;
    frame_states_[i]->cand.push_back(
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(requests_[j].id)) << 1) |
        flag);
    frame_states_[j]->cand.push_back(
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(requests_[i].id)) << 1) |
        flag);
  }
  for (std::size_t i = 0; i < n; ++i) {
    IdState& state = *frame_states_[i];
    state.cand_epoch = epoch_;
    if (direct_valid) state.direct_km = direct[i];
  }
  cand_direct_valid_ = direct_valid;
  cand_synced_epoch_ = epoch_;
  if (!cand_grid_ && n > 0) {
    std::vector<std::int32_t> ids(n);
    std::vector<geo::Point> pickups(n);
    for (std::size_t i = 0; i < n; ++i) {
      ids[i] = requests_[i].id;
      pickups[i] = requests_[i].pickup;
    }
    cand_grid_.emplace(ids, pickups, cell_km);
  }
}

GroupCache::Verdict GroupCache::try_get(const std::size_t* members, std::size_t count,
                                        ShareGroup& group) {
  O2O_EXPECTS(bound_ && count >= 2 && count <= 3);
  const std::size_t slot = entries_.find_slot(key_of(members, count));
  if (slot == EntryMap::npos) return Verdict::kMiss;
  Entry& entry = entries_.entry_at(slot);
  for (std::size_t m = 0; m < count; ++m) {
    // Every current-frame index was stamped in begin_frame, so the stamp
    // compare alone decides staleness (no id lookup).
    if (frame_stamps_[members[m]] != entry.stamps[m]) {
      entries_.erase_slot(slot);
      ++stats_.invalidated;
      return Verdict::kMiss;
    }
  }
  entry.last_used = epoch_;
  ++stats_.hits;
  if (!entry.feasible) return Verdict::kInfeasible;
  group.member_indices.assign(members, members + count);
  group.pooled_route = entry.route;
  group.pooled_length_km = entry.pooled_length_km;
  group.direct_sum_km = entry.direct_sum_km;
  group.max_detour_km = entry.max_detour_km;
  group.member_direct_km.assign(entry.member_direct.begin(),
                                entry.member_direct.begin() + count);
  return Verdict::kFeasible;
}

void GroupCache::store(const std::size_t* members, std::size_t count, bool feasible,
                       const ShareGroup& group) {
  O2O_EXPECTS(bound_ && count >= 2 && count <= 3);
  Entry& entry = entries_.put(key_of(members, count));
  for (std::size_t m = 0; m < count; ++m) {
    entry.stamps[m] = frame_stamps_[members[m]];
  }
  entry.feasible = feasible;
  entry.last_used = epoch_;
  if (feasible) {
    entry.route = group.pooled_route;
    entry.pooled_length_km = group.pooled_length_km;
    entry.direct_sum_km = group.direct_sum_km;
    entry.max_detour_km = group.max_detour_km;
    std::copy(group.member_direct_km.begin(), group.member_direct_km.end(),
              entry.member_direct.begin());
  }
  ++stats_.stores;
}

FilterStats cone_prune_pairs(std::span<const trace::Request> requests,
                             std::span<const double> direct, double theta,
                             std::vector<std::uint64_t>& pair_keys) {
  FilterStats stats;
  const std::size_t count = pair_keys.size();
  if (count == 0) return stats;

  std::vector<double> pix(count), piy(count), dix(count), diy(count), pjx(count),
      pjy(count), djx(count), djy(count), bound_i(count), bound_j(count);
  for (std::size_t k = 0; k < count; ++k) {
    const auto i = static_cast<std::size_t>(pair_keys[k] >> 32);
    const auto j = static_cast<std::size_t>(pair_keys[k] & 0xffffffffu);
    pix[k] = requests[i].pickup.x;
    piy[k] = requests[i].pickup.y;
    dix[k] = requests[i].dropoff.x;
    diy[k] = requests[i].dropoff.y;
    pjx[k] = requests[j].pickup.x;
    pjy[k] = requests[j].pickup.y;
    djx[k] = requests[j].dropoff.x;
    djy[k] = requests[j].dropoff.y;
    bound_i[k] = direct[i] + theta;
    bound_j[k] = direct[j] + theta;
  }
  std::vector<std::uint8_t> keep(count, 0);
  const simd::ConeSoA soa{pix.data(), piy.data(), dix.data(), diy.data(),
                          pjx.data(), pjy.data(), djx.data(), djy.data(),
                          bound_i.data(), bound_j.data()};
  stats.kept = simd::cone_filter(soa, count, kFilterPadKm, keep.data());
  stats.rejected = count - stats.kept;
  stats.batches = simd::batch_count(count);
  stats.lanes = count;

  std::size_t write = 0;
  for (std::size_t k = 0; k < count; ++k) {
    if (keep[k]) pair_keys[write++] = pair_keys[k];
  }
  pair_keys.resize(write);
  return stats;
}

FilterStats simd_prefilter_pairs(std::span<const trace::Request> requests,
                                 const geo::DistanceOracle& oracle,
                                 std::span<const double> direct,
                                 const GroupOptions& options,
                                 std::span<const std::uint64_t> pair_keys,
                                 std::vector<std::uint8_t>& keep) {
  O2O_EXPECTS(options.require_saving);
  FilterStats stats;
  const std::size_t count = pair_keys.size();
  keep.assign(count, 1);
  if (count == 0) return stats;

  std::vector<double> a(count), a2(count), b(count), b2(count), c(count), c2(count),
      direct_i(count), direct_j(count);
  const bool symmetric = oracle.capabilities().symmetric_distances;
  std::vector<geo::Point> targets_p;
  std::vector<geo::Point> targets_d;

  // Keys are sorted lexicographically, so candidates sharing the first
  // member form contiguous runs -- each run resolves its legs from whole
  // oracle rows (one forward/reverse tree each on the network oracle).
  std::size_t lo = 0;
  while (lo < count) {
    const auto i = static_cast<std::size_t>(pair_keys[lo] >> 32);
    std::size_t hi = lo;
    while (hi < count && static_cast<std::size_t>(pair_keys[hi] >> 32) == i) ++hi;
    const std::size_t run = hi - lo;

    targets_p.clear();
    targets_d.clear();
    targets_p.reserve(run);
    targets_d.reserve(run);
    for (std::size_t k = lo; k < hi; ++k) {
      const auto j = static_cast<std::size_t>(pair_keys[k] & 0xffffffffu);
      targets_p.push_back(requests[j].pickup);
      targets_d.push_back(requests[j].dropoff);
      direct_i[k] = direct[i];
      direct_j[k] = direct[j];
    }
    const geo::Point pick_i = requests[i].pickup;
    const geo::Point drop_i = requests[i].dropoff;
    oracle.distances_from_into(pick_i, targets_p, a.data() + lo);
    oracle.distances_from_into(pick_i, targets_d, b2.data() + lo);
    oracle.distances_from_into(drop_i, targets_d, c.data() + lo);
    if (symmetric) {
      // D(p_j, p_i) == D(p_i, p_j) and D(d_j, d_i) == D(d_i, d_j); the
      // remaining cross leg D(p_j, d_i) flips to one forward row.
      oracle.distances_from_into(drop_i, targets_p, b.data() + lo);
      std::copy(a.begin() + static_cast<std::ptrdiff_t>(lo),
                a.begin() + static_cast<std::ptrdiff_t>(hi),
                a2.begin() + static_cast<std::ptrdiff_t>(lo));
      std::copy(c.begin() + static_cast<std::ptrdiff_t>(lo),
                c.begin() + static_cast<std::ptrdiff_t>(hi),
                c2.begin() + static_cast<std::ptrdiff_t>(lo));
    } else {
      oracle.distances_to_into(targets_p, pick_i, a2.data() + lo);
      oracle.distances_to_into(targets_p, drop_i, b.data() + lo);
      oracle.distances_to_into(targets_d, drop_i, c2.data() + lo);
    }
    lo = hi;
  }

  const simd::PairLegsSoA legs{a.data(), a2.data(),       b.data(),
                               b2.data(), c.data(),        c2.data(),
                               direct_i.data(), direct_j.data()};
  stats.kept = simd::pair_filter(legs, count, options.detour_threshold_km, kFilterPadKm,
                                 keep.data());
  stats.rejected = count - stats.kept;
  stats.batches = simd::batch_count(count);
  stats.lanes = count;
  return stats;
}

}  // namespace o2o::packing
