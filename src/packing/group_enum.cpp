#include "packing/group_enum.h"

#include <algorithm>

#include "util/contracts.h"
#include "util/simd.h"

namespace o2o::packing {

namespace {

constexpr std::uint64_t kSweepPeriod = 16;  ///< frames between GC sweeps
constexpr std::uint64_t kMaxAgeFrames = 4;  ///< unused entries older than this die

}  // namespace

std::size_t GroupCache::KeyHash::operator()(const Key& key) const noexcept {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  for (const trace::RequestId id : key.ids) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(id)) +
         0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return static_cast<std::size_t>(h);
}

GroupCache::Key GroupCache::key_of(const std::size_t* members, std::size_t count) const {
  Key key{{trace::kInvalidRequest, trace::kInvalidRequest, trace::kInvalidRequest}};
  for (std::size_t m = 0; m < count; ++m) {
    O2O_EXPECTS(members[m] < requests_.size());
    key.ids[m] = requests_[members[m]].id;
  }
  return key;
}

std::size_t GroupCache::EntryMap::find_slot(const Key& key) const {
  if (keys_.empty()) return npos;
  std::size_t slot = KeyHash{}(key)&mask_;
  while (true) {
    if (state_[slot] == 0) return npos;
    if (state_[slot] == 1 && keys_[slot] == key) return slot;
    slot = (slot + 1) & mask_;
  }
}

GroupCache::Entry& GroupCache::EntryMap::put(const Key& key) {
  reserve_for_insert();
  std::size_t slot = KeyHash{}(key)&mask_;
  std::size_t target = npos;  ///< first tombstone passed, if any
  while (true) {
    if (state_[slot] == 0) break;
    if (state_[slot] == 1 && keys_[slot] == key) {
      entries_[slot] = Entry{};
      return entries_[slot];
    }
    if (state_[slot] == 2 && target == npos) target = slot;
    slot = (slot + 1) & mask_;
  }
  if (target != npos) {
    slot = target;
    --tombs_;
  }
  keys_[slot] = key;
  state_[slot] = 1;
  ++size_;
  entries_[slot] = Entry{};
  return entries_[slot];
}

void GroupCache::EntryMap::erase_slot(std::size_t slot) {
  state_[slot] = 2;
  entries_[slot] = Entry{};  // release the route payload now, not at rehash
  --size_;
  ++tombs_;
}

std::size_t GroupCache::EntryMap::sweep(std::uint64_t epoch, std::uint64_t max_age) {
  std::size_t dropped = 0;
  for (std::size_t slot = 0; slot < state_.size(); ++slot) {
    if (state_[slot] == 1 && entries_[slot].last_used + max_age < epoch) {
      erase_slot(slot);
      ++dropped;
    }
  }
  // Rebuild once tombstones start lengthening every probe chain.
  if (!keys_.empty() && tombs_ * 4 > keys_.size()) rehash(keys_.size());
  return dropped;
}

void GroupCache::EntryMap::clear() {
  keys_.clear();
  state_.clear();
  entries_.clear();
  size_ = 0;
  tombs_ = 0;
  mask_ = 0;
}

void GroupCache::EntryMap::rehash(std::size_t capacity) {
  while (capacity < (size_ + 1) * 2) capacity *= 2;
  std::vector<Key> old_keys = std::move(keys_);
  std::vector<std::uint8_t> old_state = std::move(state_);
  std::vector<Entry> old_entries = std::move(entries_);
  keys_.assign(capacity, Key{});
  state_.assign(capacity, 0);
  entries_.assign(capacity, Entry{});
  mask_ = capacity - 1;
  tombs_ = 0;
  for (std::size_t i = 0; i < old_state.size(); ++i) {
    if (old_state[i] != 1) continue;
    std::size_t slot = KeyHash{}(old_keys[i]) & mask_;
    while (state_[slot] != 0) slot = (slot + 1) & mask_;
    keys_[slot] = old_keys[i];
    state_[slot] = 1;
    entries_[slot] = std::move(old_entries[i]);
  }
}

void GroupCache::EntryMap::reserve_for_insert() {
  if (keys_.empty()) {
    constexpr std::size_t kInitialCapacity = 1024;
    keys_.assign(kInitialCapacity, Key{});
    state_.assign(kInitialCapacity, 0);
    entries_.assign(kInitialCapacity, Entry{});
    mask_ = kInitialCapacity - 1;
    return;
  }
  // Keep the load factor (full + tombstone slots) under 3/4.
  if ((size_ + tombs_ + 1) * 4 >= keys_.size() * 3) rehash(keys_.size() * 2);
}

void GroupCache::clear() {
  entries_.clear();
  ids_.clear();
}

void GroupCache::begin_frame(std::span<const trace::Request> requests,
                             const GroupOptions& options, int taxi_seats,
                             const geo::DistanceOracle* oracle) {
  const double theta = options.detour_threshold_km;
  if (!bound_ || theta_ != theta || require_saving_ != options.require_saving ||
      max_group_size_ != options.max_group_size || taxi_seats_ != taxi_seats ||
      oracle_ != oracle) {
    if (bound_) ++stats_.flushes;
    clear();
    theta_ = theta;
    require_saving_ = options.require_saving;
    max_group_size_ = options.max_group_size;
    taxi_seats_ = taxi_seats;
    oracle_ = oracle;
    bound_ = true;
  }
  ++epoch_;
  requests_ = requests;
  frame_stamps_.resize(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const trace::Request& request = requests[i];
    auto [it, inserted] = ids_.try_emplace(request.id);
    IdState& state = it->second;
    if (inserted || state.pickup != request.pickup || state.dropoff != request.dropoff ||
        state.seats != request.seats) {
      state.pickup = request.pickup;
      state.dropoff = request.dropoff;
      state.seats = request.seats;
      state.stamp = ++stamp_counter_;
    }
    state.last_seen = epoch_;
    frame_stamps_[i] = state.stamp;
  }
  if (epoch_ % kSweepPeriod == 0) {
    stats_.invalidated += entries_.sweep(epoch_, kMaxAgeFrames);
    for (auto it = ids_.begin(); it != ids_.end();) {
      if (it->second.last_seen + kMaxAgeFrames < epoch_) {
        it = ids_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

GroupCache::Verdict GroupCache::try_get(const std::size_t* members, std::size_t count,
                                        ShareGroup& group) {
  O2O_EXPECTS(bound_ && count >= 2 && count <= 3);
  const std::size_t slot = entries_.find_slot(key_of(members, count));
  if (slot == EntryMap::npos) return Verdict::kMiss;
  Entry& entry = entries_.entry_at(slot);
  for (std::size_t m = 0; m < count; ++m) {
    // Every current-frame index was stamped in begin_frame, so the stamp
    // compare alone decides staleness (no id lookup).
    if (frame_stamps_[members[m]] != entry.stamps[m]) {
      entries_.erase_slot(slot);
      ++stats_.invalidated;
      return Verdict::kMiss;
    }
  }
  entry.last_used = epoch_;
  ++stats_.hits;
  if (!entry.feasible) return Verdict::kInfeasible;
  group.member_indices.assign(members, members + count);
  group.pooled_route = entry.route;
  group.pooled_length_km = entry.pooled_length_km;
  group.direct_sum_km = entry.direct_sum_km;
  group.max_detour_km = entry.max_detour_km;
  group.member_direct_km.assign(entry.member_direct.begin(),
                                entry.member_direct.begin() + count);
  return Verdict::kFeasible;
}

void GroupCache::store(const std::size_t* members, std::size_t count, bool feasible,
                       const ShareGroup& group) {
  O2O_EXPECTS(bound_ && count >= 2 && count <= 3);
  Entry& entry = entries_.put(key_of(members, count));
  for (std::size_t m = 0; m < count; ++m) {
    entry.stamps[m] = frame_stamps_[members[m]];
  }
  entry.feasible = feasible;
  entry.last_used = epoch_;
  if (feasible) {
    entry.route = group.pooled_route;
    entry.pooled_length_km = group.pooled_length_km;
    entry.direct_sum_km = group.direct_sum_km;
    entry.max_detour_km = group.max_detour_km;
    std::copy(group.member_direct_km.begin(), group.member_direct_km.end(),
              entry.member_direct.begin());
  }
  ++stats_.stores;
}

FilterStats cone_prune_pairs(std::span<const trace::Request> requests,
                             std::span<const double> direct, double theta,
                             std::vector<std::uint64_t>& pair_keys) {
  FilterStats stats;
  const std::size_t count = pair_keys.size();
  if (count == 0) return stats;

  std::vector<double> pix(count), piy(count), dix(count), diy(count), pjx(count),
      pjy(count), djx(count), djy(count), bound_i(count), bound_j(count);
  for (std::size_t k = 0; k < count; ++k) {
    const auto i = static_cast<std::size_t>(pair_keys[k] >> 32);
    const auto j = static_cast<std::size_t>(pair_keys[k] & 0xffffffffu);
    pix[k] = requests[i].pickup.x;
    piy[k] = requests[i].pickup.y;
    dix[k] = requests[i].dropoff.x;
    diy[k] = requests[i].dropoff.y;
    pjx[k] = requests[j].pickup.x;
    pjy[k] = requests[j].pickup.y;
    djx[k] = requests[j].dropoff.x;
    djy[k] = requests[j].dropoff.y;
    bound_i[k] = direct[i] + theta;
    bound_j[k] = direct[j] + theta;
  }
  std::vector<std::uint8_t> keep(count, 0);
  const simd::ConeSoA soa{pix.data(), piy.data(), dix.data(), diy.data(),
                          pjx.data(), pjy.data(), djx.data(), djy.data(),
                          bound_i.data(), bound_j.data()};
  stats.kept = simd::cone_filter(soa, count, kFilterPadKm, keep.data());
  stats.rejected = count - stats.kept;
  stats.batches = simd::batch_count(count);
  stats.lanes = count;

  std::size_t write = 0;
  for (std::size_t k = 0; k < count; ++k) {
    if (keep[k]) pair_keys[write++] = pair_keys[k];
  }
  pair_keys.resize(write);
  return stats;
}

FilterStats simd_prefilter_pairs(std::span<const trace::Request> requests,
                                 const geo::DistanceOracle& oracle,
                                 std::span<const double> direct,
                                 const GroupOptions& options,
                                 std::span<const std::uint64_t> pair_keys,
                                 std::vector<std::uint8_t>& keep) {
  O2O_EXPECTS(options.require_saving);
  FilterStats stats;
  const std::size_t count = pair_keys.size();
  keep.assign(count, 1);
  if (count == 0) return stats;

  std::vector<double> a(count), a2(count), b(count), b2(count), c(count), c2(count),
      direct_i(count), direct_j(count);
  const bool symmetric = oracle.symmetric_distances();
  std::vector<geo::Point> targets_p;
  std::vector<geo::Point> targets_d;

  // Keys are sorted lexicographically, so candidates sharing the first
  // member form contiguous runs -- each run resolves its legs from whole
  // oracle rows (one forward/reverse tree each on the network oracle).
  std::size_t lo = 0;
  while (lo < count) {
    const auto i = static_cast<std::size_t>(pair_keys[lo] >> 32);
    std::size_t hi = lo;
    while (hi < count && static_cast<std::size_t>(pair_keys[hi] >> 32) == i) ++hi;
    const std::size_t run = hi - lo;

    targets_p.clear();
    targets_d.clear();
    targets_p.reserve(run);
    targets_d.reserve(run);
    for (std::size_t k = lo; k < hi; ++k) {
      const auto j = static_cast<std::size_t>(pair_keys[k] & 0xffffffffu);
      targets_p.push_back(requests[j].pickup);
      targets_d.push_back(requests[j].dropoff);
      direct_i[k] = direct[i];
      direct_j[k] = direct[j];
    }
    const geo::Point pick_i = requests[i].pickup;
    const geo::Point drop_i = requests[i].dropoff;
    oracle.distances_from_into(pick_i, targets_p, a.data() + lo);
    oracle.distances_from_into(pick_i, targets_d, b2.data() + lo);
    oracle.distances_from_into(drop_i, targets_d, c.data() + lo);
    if (symmetric) {
      // D(p_j, p_i) == D(p_i, p_j) and D(d_j, d_i) == D(d_i, d_j); the
      // remaining cross leg D(p_j, d_i) flips to one forward row.
      oracle.distances_from_into(drop_i, targets_p, b.data() + lo);
      std::copy(a.begin() + static_cast<std::ptrdiff_t>(lo),
                a.begin() + static_cast<std::ptrdiff_t>(hi),
                a2.begin() + static_cast<std::ptrdiff_t>(lo));
      std::copy(c.begin() + static_cast<std::ptrdiff_t>(lo),
                c.begin() + static_cast<std::ptrdiff_t>(hi),
                c2.begin() + static_cast<std::ptrdiff_t>(lo));
    } else {
      oracle.distances_to_into(targets_p, pick_i, a2.data() + lo);
      oracle.distances_to_into(targets_p, drop_i, b.data() + lo);
      oracle.distances_to_into(targets_d, drop_i, c2.data() + lo);
    }
    lo = hi;
  }

  const simd::PairLegsSoA legs{a.data(), a2.data(),       b.data(),
                               b2.data(), c.data(),        c2.data(),
                               direct_i.data(), direct_j.data()};
  stats.kept = simd::pair_filter(legs, count, options.detour_threshold_km, kFilterPadKm,
                                 keep.data());
  stats.rejected = count - stats.kept;
  stats.batches = simd::batch_count(count);
  stats.lanes = count;
  return stats;
}

}  // namespace o2o::packing
