#include "core/revenue.h"

#include <cmath>

#include "util/contracts.h"

namespace o2o::core {

double total_fare(std::span<const trace::Request> requests, const Matching& matching,
                  const geo::DistanceOracle& oracle, const FareModel& model) {
  O2O_EXPECTS(matching.request_to_taxi.size() == requests.size());
  double total = 0.0;
  for (std::size_t r = 0; r < requests.size(); ++r) {
    if (matching.request_to_taxi[r] == kDummy) continue;
    total += model.fare(oracle.distance(requests[r].pickup, requests[r].dropoff));
  }
  return total;
}

double company_revenue(std::span<const trace::Request> requests, const Matching& matching,
                       const geo::DistanceOracle& oracle, const FareModel& model) {
  return model.company_cut * total_fare(requests, matching, oracle, model);
}

bool revenue_invariant_across(std::span<const trace::Request> requests,
                              const std::vector<Matching>& matchings,
                              const geo::DistanceOracle& oracle, const FareModel& model) {
  if (matchings.empty()) return true;
  const double reference = total_fare(requests, matchings.front(), oracle, model);
  for (const Matching& matching : matchings) {
    if (std::abs(total_fare(requests, matching, oracle, model) - reference) > 1e-9) {
      return false;
    }
  }
  return true;
}

}  // namespace o2o::core
