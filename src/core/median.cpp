#include "core/median.h"

#include <algorithm>

#include "util/contracts.h"

namespace o2o::core {

Matching generalized_median(const std::vector<Matching>& matchings,
                            const PreferenceProfile& profile, std::size_t k) {
  O2O_EXPECTS(!matchings.empty());
  O2O_EXPECTS(k < matchings.size());
  const std::size_t requests = profile.request_count();

  std::vector<int> assignment(requests, kDummy);
  for (std::size_t r = 0; r < requests; ++r) {
    // Collect r's partners across all stable schedules, best first. By
    // the rural-hospitals property a request is either matched in every
    // schedule or in none, so the multiset is either all taxis or all
    // dummies.
    std::vector<int> partners;
    partners.reserve(matchings.size());
    for (const Matching& matching : matchings) {
      O2O_EXPECTS(matching.request_to_taxi.size() == requests);
      partners.push_back(matching.request_to_taxi[r]);
    }
    std::sort(partners.begin(), partners.end(), [&](int a, int b) {
      return profile.request_prefers(r, a, b);
    });
    assignment[r] = partners[k];
  }

  Matching median = make_matching(std::move(assignment), profile.taxi_count());
  O2O_ENSURES(is_stable(profile, median));
  return median;
}

Matching median_stable_matching(const std::vector<Matching>& matchings,
                                const PreferenceProfile& profile) {
  O2O_EXPECTS(!matchings.empty());
  return generalized_median(matchings, profile, (matchings.size() - 1) / 2);
}

}  // namespace o2o::core
