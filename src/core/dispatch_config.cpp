#include "core/dispatch_config.h"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <utility>

#include "util/contracts.h"

namespace o2o {

std::string_view config_field_name(ConfigField field) noexcept {
  switch (field) {
    case ConfigField::kAlpha: return "alpha";
    case ConfigField::kBeta: return "beta";
    case ConfigField::kPassengerThresholdKm: return "passenger_threshold_km";
    case ConfigField::kTaxiThresholdScore: return "taxi_threshold_score";
    case ConfigField::kDetourThresholdKm: return "detour_threshold_km";
    case ConfigField::kMaxGroupSize: return "max_group_size";
    case ConfigField::kPickupRadiusKm: return "pickup_radius_km";
    case ConfigField::kTaxiSeats: return "taxi_seats";
    case ConfigField::kEnumerationCap: return "enumeration_cap";
    case ConfigField::kCandidateTaxisPerUnit: return "candidate_taxis_per_unit";
    case ConfigField::kExactMaxSets: return "exact_max_sets";
    case ConfigField::kTraceMaxFrames: return "trace_max_frames";
    case ConfigField::kFrameSeconds: return "frame_seconds";
    case ConfigField::kSpeedKmh: return "speed_kmh";
    case ConfigField::kCancelTimeoutSeconds: return "cancel_timeout_seconds";
    case ConfigField::kDrainSeconds: return "drain_seconds";
    case ConfigField::kIdleGridCellKm: return "idle_grid_cell_km";
    case ConfigField::kRoadNetwork: return "road_network";
    case ConfigField::kDeterministicMerge: return "deterministic_merge";
    case ConfigField::kPipelineDepth: return "pipeline_depth";
    case ConfigField::kIngestCapacity: return "ingest_capacity";
    case ConfigField::kDistanceBackend: return "distance_backend";
  }
  return "unknown";
}

DispatchConfig& DispatchConfig::with_alpha(double alpha) {
  params_.preference.alpha = alpha;
  sim_.alpha = alpha;  // the report metrics use the same coefficient
  return *this;
}

DispatchConfig& DispatchConfig::with_beta(double beta) {
  params_.preference.beta = beta;
  sim_.beta = beta;
  return *this;
}

DispatchConfig& DispatchConfig::with_passenger_threshold_km(double km) {
  params_.preference.passenger_threshold_km = km;
  return *this;
}

DispatchConfig& DispatchConfig::with_taxi_threshold_score(double score) {
  params_.preference.taxi_threshold_score = score;
  return *this;
}

DispatchConfig& DispatchConfig::with_list_cap(std::size_t cap) {
  params_.preference.list_cap = cap;
  return *this;
}

DispatchConfig& DispatchConfig::with_spatial_prune(bool enabled) {
  params_.preference.spatial_prune = enabled;
  return *this;
}

DispatchConfig& DispatchConfig::with_proposal_side(core::ProposalSide side) {
  params_.side = side;
  return *this;
}

DispatchConfig& DispatchConfig::with_taxi_side_via_enumeration(bool enabled) {
  taxi_side_via_enumeration_ = enabled;
  return *this;
}

DispatchConfig& DispatchConfig::with_enumeration_cap(std::size_t cap) {
  enumeration_cap_ = cap;
  return *this;
}

DispatchConfig& DispatchConfig::with_detour_threshold_km(double theta) {
  params_.grouping.detour_threshold_km = theta;
  return *this;
}

DispatchConfig& DispatchConfig::with_max_group_size(int size) {
  params_.grouping.max_group_size = size;
  return *this;
}

DispatchConfig& DispatchConfig::with_pickup_radius_km(double km) {
  params_.grouping.pickup_radius_km = km;
  return *this;
}

DispatchConfig& DispatchConfig::with_require_saving(bool enabled) {
  params_.grouping.require_saving = enabled;
  return *this;
}

DispatchConfig& DispatchConfig::with_parallel_grouping(bool enabled) {
  params_.grouping.parallel = enabled;
  return *this;
}

DispatchConfig& DispatchConfig::with_simd_prefilter(bool enabled) {
  params_.grouping.simd_prefilter = enabled;
  return *this;
}

DispatchConfig& DispatchConfig::with_direction_cone(bool enabled) {
  params_.grouping.direction_cone = enabled;
  return *this;
}

DispatchConfig& DispatchConfig::with_cross_frame_cache(bool enabled) {
  params_.grouping.cross_frame_cache = enabled;
  return *this;
}

DispatchConfig& DispatchConfig::with_persist_candidates(bool enabled) {
  params_.grouping.persist_candidates = enabled;
  return *this;
}

DispatchConfig& DispatchConfig::with_parallel_exact(bool enabled) {
  params_.grouping.parallel_exact = enabled;
  return *this;
}

DispatchConfig& DispatchConfig::with_packing_solver(core::PackingSolver solver) {
  params_.packing = solver;
  return *this;
}

DispatchConfig& DispatchConfig::with_packing_objective(core::PackingObjective objective) {
  params_.objective = objective;
  return *this;
}

DispatchConfig& DispatchConfig::with_taxi_seats(int seats) {
  params_.taxi_seats = seats;
  return *this;
}

DispatchConfig& DispatchConfig::with_candidate_taxis_per_unit(std::size_t count) {
  params_.candidate_taxis_per_unit = count;
  return *this;
}

DispatchConfig& DispatchConfig::with_exact_max_sets(std::size_t count) {
  params_.exact_max_sets = count;
  return *this;
}

DispatchConfig& DispatchConfig::with_enroute_extension(bool enabled) {
  enroute_extension_ = enabled;
  return *this;
}

DispatchConfig& DispatchConfig::with_warm_start_da(bool enabled) {
  warm_start_da_ = enabled;
  return *this;
}

DispatchConfig& DispatchConfig::sharding(core::ShardOptions options) {
  params_.sharding = options;
  return *this;
}

DispatchConfig& DispatchConfig::with_parallel_dispatch(bool enabled) {
  params_.sharding.parallel = enabled;
  return *this;
}

DispatchConfig& DispatchConfig::with_max_components_hint(std::size_t hint) {
  params_.sharding.max_components_hint = hint;
  return *this;
}

DispatchConfig& DispatchConfig::simulation(sim::SimulatorConfig config) {
  sim_ = config;
  // α/β live on the preference side; the simulation section mirrors them.
  sim_.alpha = params_.preference.alpha;
  sim_.beta = params_.preference.beta;
  road_mode_ = config.road_network != nullptr;
  return *this;
}

DispatchConfig& DispatchConfig::with_frame_seconds(double seconds) {
  sim_.frame_seconds = seconds;
  return *this;
}

DispatchConfig& DispatchConfig::with_speed_kmh(double kmh) {
  sim_.speed_kmh = kmh;
  return *this;
}

DispatchConfig& DispatchConfig::with_cancel_timeout_seconds(double seconds) {
  sim_.cancel_timeout_seconds = seconds;
  return *this;
}

DispatchConfig& DispatchConfig::with_drain_seconds(double seconds) {
  sim_.drain_seconds = seconds;
  return *this;
}

DispatchConfig& DispatchConfig::with_idle_grid_cell_km(double km) {
  sim_.idle_grid_cell_km = km;
  return *this;
}

DispatchConfig& DispatchConfig::with_incremental_grid(bool enabled) {
  sim_.incremental_grid = enabled;
  return *this;
}

DispatchConfig& DispatchConfig::with_road_network(const geo::RoadNetwork* network) {
  sim_.road_network = network;
  road_mode_ = true;
  return *this;
}

DispatchConfig& DispatchConfig::with_trace_sink(obs::TraceSink* sink) {
  sim_.trace_sink = sink;
  return *this;
}

DispatchConfig& DispatchConfig::with_distance_backend(geo::DistanceBackendSpec spec) {
  backend_ = std::move(spec);
  // The spec alone carries no resolved provenance.
  backend_graph_fingerprint_ = 0;
  backend_ch_artifact_hash_ = 0;
  return *this;
}

DispatchConfig& DispatchConfig::with_distance_backend(const geo::DistanceBackend& backend) {
  backend_ = backend.spec;
  backend_graph_fingerprint_ = backend.graph_fingerprint;
  backend_ch_artifact_hash_ = backend.ch_artifact_hash;
  return *this;
}

DispatchConfig& DispatchConfig::with_tracing(obs::TraceOptions options) {
  trace_ = options;
  return *this;
}

DispatchConfig& DispatchConfig::with_tracing(bool enabled) {
  trace_.enabled = enabled;
  return *this;
}

DispatchConfig& DispatchConfig::service(ServiceOptions options) {
  service_ = options;
  return *this;
}

DispatchConfig& DispatchConfig::with_pipeline_depth(std::size_t depth) {
  service_.pipeline_depth = depth;
  return *this;
}

DispatchConfig& DispatchConfig::with_ingest_capacity(std::size_t slots) {
  service_.ingest_capacity = slots;
  return *this;
}

namespace {

bool valid_positive(double v) { return !std::isnan(v) && v > 0.0; }
bool valid_non_negative(double v) { return !std::isnan(v) && v >= 0.0; }

}  // namespace

std::vector<ConfigError> DispatchConfig::validate() const {
  std::vector<ConfigError> errors;
  const auto fail = [&errors](ConfigField field, std::string message) {
    errors.push_back(ConfigError{field, std::move(message)});
  };

  const core::PreferenceParams& pref = params_.preference;
  if (!std::isfinite(pref.alpha) || pref.alpha < 0.0) {
    fail(ConfigField::kAlpha, "alpha must be finite and >= 0");
  }
  if (!std::isfinite(pref.beta) || pref.beta < 0.0) {
    fail(ConfigField::kBeta, "beta must be finite and >= 0");
  }
  // +inf is the documented "no threshold" value for both dummies.
  if (!valid_positive(pref.passenger_threshold_km)) {
    fail(ConfigField::kPassengerThresholdKm,
         "passenger_threshold_km must be > 0 (+inf disables the dummy cut-off)");
  }
  if (std::isnan(pref.taxi_threshold_score)) {
    fail(ConfigField::kTaxiThresholdScore, "taxi_threshold_score must not be NaN");
  }

  const packing::GroupOptions& grouping = params_.grouping;
  if (!valid_non_negative(grouping.detour_threshold_km)) {
    fail(ConfigField::kDetourThresholdKm, "detour_threshold_km must be >= 0");
  }
  if (grouping.max_group_size < 1) {
    fail(ConfigField::kMaxGroupSize, "max_group_size must be >= 1");
  }
  if (!valid_positive(grouping.pickup_radius_km)) {
    fail(ConfigField::kPickupRadiusKm,
         "pickup_radius_km must be > 0 (+inf disables the pre-filter)");
  }

  if (params_.taxi_seats < 1) {
    fail(ConfigField::kTaxiSeats, "taxi_seats must be >= 1");
  }
  if (params_.taxi_seats < grouping.max_group_size && grouping.max_group_size >= 1) {
    fail(ConfigField::kTaxiSeats,
         "taxi_seats must be >= max_group_size (a group must fit one taxi)");
  }
  // 0 is the documented "uncapped" sentinel; a cap beyond any plausible
  // fleet is almost certainly a negative int cast to size_t (the old
  // doc's "-1 = all" folklore), which would silently behave as uncapped.
  if (params_.candidate_taxis_per_unit >
      static_cast<std::size_t>(std::numeric_limits<std::uint32_t>::max())) {
    fail(ConfigField::kCandidateTaxisPerUnit,
         "candidate_taxis_per_unit must be <= 2^32-1; use the sentinel 0 for "
         "uncapped (a huge value is usually a negative int cast to size_t)");
  }
  if (taxi_side_via_enumeration_ && enumeration_cap_ == 0) {
    fail(ConfigField::kEnumerationCap,
         "enumeration_cap must be >= 1 when taxi_side_via_enumeration is set");
  }
  if (params_.packing == core::PackingSolver::kExact && params_.exact_max_sets == 0) {
    fail(ConfigField::kExactMaxSets,
         "exact_max_sets must be >= 1 when the exact packing solver is selected");
  }
  if (trace_.enabled && trace_.per_frame && trace_.max_frames == 0) {
    fail(ConfigField::kTraceMaxFrames,
         "trace max_frames must be >= 1 when per-frame retention is on");
  }

  if (!std::isfinite(sim_.frame_seconds) || sim_.frame_seconds <= 0.0) {
    fail(ConfigField::kFrameSeconds, "frame_seconds must be finite and > 0");
  }
  if (!std::isfinite(sim_.speed_kmh) || sim_.speed_kmh <= 0.0) {
    fail(ConfigField::kSpeedKmh, "speed_kmh must be finite and > 0");
  }
  // +inf means "requests never give up".
  if (!valid_positive(sim_.cancel_timeout_seconds)) {
    fail(ConfigField::kCancelTimeoutSeconds,
         "cancel_timeout_seconds must be > 0 (+inf disables cancellation)");
  }
  if (!std::isfinite(sim_.drain_seconds) || sim_.drain_seconds < 0.0) {
    fail(ConfigField::kDrainSeconds, "drain_seconds must be finite and >= 0");
  }
  if (!std::isfinite(sim_.idle_grid_cell_km) || sim_.idle_grid_cell_km <= 0.0) {
    fail(ConfigField::kIdleGridCellKm, "idle_grid_cell_km must be finite and > 0");
  }
  if (road_mode_ && sim_.road_network == nullptr) {
    fail(ConfigField::kRoadNetwork,
         "road mode requires a non-null road network (with_road_network(nullptr) "
         "is invalid; replace the whole section via simulation() to leave road mode)");
  }
  if (!params_.sharding.deterministic_merge) {
    fail(ConfigField::kDeterministicMerge,
         "deterministic_merge cannot be disabled: the sharded component merge is "
         "always deterministic (see core/shard_engine.h)");
  }
  if (service_.pipeline_depth < 1 || service_.pipeline_depth > 1024) {
    fail(ConfigField::kPipelineDepth, "pipeline_depth must be in [1, 1024]");
  }
  const std::size_t slots = service_.ingest_capacity;
  if (slots < 2 || slots > (std::size_t{1} << 20) || (slots & (slots - 1)) != 0) {
    fail(ConfigField::kIngestCapacity,
         "ingest_capacity must be a power of two in [2, 2^20] (the ring masks "
         "sequence numbers instead of dividing)");
  }

  if (backend_.kind == geo::DistanceBackendKind::kCircuity &&
      (!std::isfinite(backend_.circuity_factor) || backend_.circuity_factor < 1.0)) {
    fail(ConfigField::kDistanceBackend,
         "distance backend circuity_factor must be finite and >= 1");
  }
  if (backend_.kind == geo::DistanceBackendKind::kDijkstra ||
      backend_.kind == geo::DistanceBackendKind::kContractionHierarchy) {
    const bool dimacs_pair = !backend_.dimacs_gr.empty() && !backend_.dimacs_co.empty();
    const bool dimacs_any = !backend_.dimacs_gr.empty() || !backend_.dimacs_co.empty();
    const int sources = (backend_.network != nullptr ? 1 : 0) + (dimacs_any ? 1 : 0) +
                        (!backend_.osm_xml.empty() ? 1 : 0);
    if (sources != 1 || (dimacs_any && !dimacs_pair)) {
      fail(ConfigField::kDistanceBackend,
           "a network-backed distance backend needs exactly one graph source: a "
           "programmatic network, a DIMACS .gr/.co pair (both paths), or an OSM "
           "XML extract");
    }
  }
  if (!backend_.ch_artifact.empty() &&
      backend_.kind != geo::DistanceBackendKind::kContractionHierarchy) {
    fail(ConfigField::kDistanceBackend,
         "ch_artifact is only meaningful for the ch backend");
  }
  return errors;
}

namespace {

std::string describe_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

std::string describe_bool(bool value) { return value ? "true" : "false"; }

/// 64-bit provenance hashes print as fixed-width hex; 0 = not resolved.
std::string describe_hash(std::uint64_t value) {
  if (value == 0) return "none";
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

std::string_view describe_side(core::ProposalSide side) {
  return side == core::ProposalSide::kPassengers ? "passengers" : "taxis";
}

std::string_view describe_solver(core::PackingSolver solver) {
  switch (solver) {
    case core::PackingSolver::kLocalSearch: return "local_search";
    case core::PackingSolver::kGreedy: return "greedy";
    case core::PackingSolver::kExact: return "exact";
  }
  return "unknown";
}

std::string_view describe_objective(core::PackingObjective objective) {
  switch (objective) {
    case core::PackingObjective::kCount: return "count";
    case core::PackingObjective::kRiders: return "riders";
    case core::PackingObjective::kSavings: return "savings";
  }
  return "unknown";
}

}  // namespace

std::vector<std::pair<std::string, std::string>> DispatchConfig::describe() const {
  std::vector<std::pair<std::string, std::string>> kv;
  kv.reserve(48);
  const auto put = [&kv](std::string_view key, std::string value) {
    kv.emplace_back(std::string(key), std::move(value));
  };

  // Preference / shared coefficients.
  const core::PreferenceParams& pref = params_.preference;
  put("alpha", describe_double(pref.alpha));
  put("beta", describe_double(pref.beta));
  put("passenger_threshold_km", describe_double(pref.passenger_threshold_km));
  put("taxi_threshold_score", describe_double(pref.taxi_threshold_score));
  put("list_cap", std::to_string(pref.list_cap));
  put("spatial_prune", describe_bool(pref.spatial_prune));

  // Matching side / enumeration.
  put("proposal_side", std::string(describe_side(params_.side)));
  put("taxi_side_via_enumeration", describe_bool(taxi_side_via_enumeration_));
  put("enumeration_cap", std::to_string(enumeration_cap_));

  // Sharing / grouping.
  const packing::GroupOptions& grouping = params_.grouping;
  put("detour_threshold_km", describe_double(grouping.detour_threshold_km));
  put("max_group_size", std::to_string(grouping.max_group_size));
  put("pickup_radius_km", describe_double(grouping.pickup_radius_km));
  put("require_saving", describe_bool(grouping.require_saving));
  put("grow_triples_from_pairs", describe_bool(grouping.grow_triples_from_pairs));
  put("parallel_grouping", describe_bool(grouping.parallel));
  put("simd_prefilter", describe_bool(grouping.simd_prefilter));
  put("direction_cone", describe_bool(grouping.direction_cone));
  put("cross_frame_cache", describe_bool(grouping.cross_frame_cache));
  put("persist_candidates", describe_bool(grouping.persist_candidates));
  put("parallel_exact", describe_bool(grouping.parallel_exact));
  put("packing_solver", std::string(describe_solver(params_.packing)));
  put("packing_objective", std::string(describe_objective(params_.objective)));
  put("taxi_seats", std::to_string(params_.taxi_seats));
  put("candidate_taxis_per_unit", std::to_string(params_.candidate_taxis_per_unit));
  put("exact_max_sets", std::to_string(params_.exact_max_sets));
  put("enroute_extension", describe_bool(enroute_extension_));
  put("warm_start_da", describe_bool(warm_start_da_));

  // Sharded matching engine.
  put("parallel_dispatch", describe_bool(params_.sharding.parallel));
  put("max_components_hint", std::to_string(params_.sharding.max_components_hint));
  put("deterministic_merge", describe_bool(params_.sharding.deterministic_merge));

  // Simulation.
  put("frame_seconds", describe_double(sim_.frame_seconds));
  put("speed_kmh", describe_double(sim_.speed_kmh));
  put("cancel_timeout_seconds", describe_double(sim_.cancel_timeout_seconds));
  put("drain_seconds", describe_double(sim_.drain_seconds));
  put("idle_grid_cell_km", describe_double(sim_.idle_grid_cell_km));
  put("incremental_grid", describe_bool(sim_.incremental_grid));
  put("road_network", sim_.road_network != nullptr ? "set" : "none");

  // Distance backend. The fingerprint/artifact hash are only non-"none"
  // after recording a *resolved* backend (the geo::DistanceBackend
  // overload), which is what pins a deployment to its exact graph.
  put("distance_backend", std::string(geo::distance_backend_name(backend_.kind)));
  put("distance_circuity_factor", describe_double(backend_.circuity_factor));
  put("distance_graph_fingerprint", describe_hash(backend_graph_fingerprint_));
  put("ch_artifact_hash", describe_hash(backend_ch_artifact_hash_));

  // Observability.
  put("trace_enabled", describe_bool(trace_.enabled));
  put("trace_per_frame", describe_bool(trace_.per_frame));
  put("trace_max_frames", std::to_string(trace_.max_frames));

  // Streaming service.
  put("pipeline_depth", std::to_string(service_.pipeline_depth));
  put("ingest_capacity", std::to_string(service_.ingest_capacity));
  return kv;
}

core::StableDispatcherOptions DispatchConfig::stable_options() const {
  core::StableDispatcherOptions options;
  options.preference = params_.preference;
  options.side = params_.side;
  options.taxi_side_via_enumeration = taxi_side_via_enumeration_;
  options.enumeration_cap = enumeration_cap_;
  options.sharding = params_.sharding;
  options.warm_start_da = warm_start_da_;
  return options;
}

core::SharingStableDispatcherOptions DispatchConfig::sharing_options() const {
  core::SharingStableDispatcherOptions options;
  options.params = params_;
  options.enroute_extension = enroute_extension_;
  options.warm_start_da = warm_start_da_;
  return options;
}

namespace {

DispatchConfig pin_side(DispatchConfig config, core::ProposalSide side) {
  O2O_EXPECTS(config.validate().empty());
  return config.with_proposal_side(side);
}

}  // namespace

std::unique_ptr<sim::Dispatcher> make_nstd_p(const DispatchConfig& config) {
  return std::make_unique<core::StableDispatcher>(
      pin_side(config, core::ProposalSide::kPassengers).stable_options(),
      core::FromConfig{});
}

std::unique_ptr<sim::Dispatcher> make_nstd_t(const DispatchConfig& config) {
  return std::make_unique<core::StableDispatcher>(
      pin_side(config, core::ProposalSide::kTaxis).stable_options(), core::FromConfig{});
}

std::unique_ptr<sim::Dispatcher> make_std_p(const DispatchConfig& config) {
  return std::make_unique<core::SharingStableDispatcher>(
      pin_side(config, core::ProposalSide::kPassengers).sharing_options(),
      core::FromConfig{});
}

std::unique_ptr<sim::Dispatcher> make_std_t(const DispatchConfig& config) {
  return std::make_unique<core::SharingStableDispatcher>(
      pin_side(config, core::ProposalSide::kTaxis).sharing_options(), core::FromConfig{});
}

std::unique_ptr<sim::Dispatcher> make_dispatcher(std::string_view kind,
                                                 const DispatchConfig& config) {
  std::string normalized;
  normalized.reserve(kind.size());
  for (char c : kind) {
    normalized.push_back(c == '_' ? '-' : static_cast<char>(std::tolower(
                                              static_cast<unsigned char>(c))));
  }
  if (normalized == "nstd-p") return make_nstd_p(config);
  if (normalized == "nstd-t") return make_nstd_t(config);
  if (normalized == "std-p") return make_std_p(config);
  if (normalized == "std-t") return make_std_t(config);
  return nullptr;
}

}  // namespace o2o
