#include "core/sharing.h"

#include <algorithm>

#include "routing/optimizer.h"
#include "util/contracts.h"

namespace o2o::core {

SharingUnits pack_requests(std::span<const trace::Request> requests,
                           const geo::DistanceOracle& oracle, const SharingParams& params) {
  SharingUnits result;
  const std::vector<packing::ShareGroup> groups =
      packing::enumerate_share_groups(requests, oracle, params.grouping, params.taxi_seats);
  result.feasible_groups = groups.size();

  packing::SetPackingProblem problem;
  problem.universe_size = requests.size();
  problem.sets.reserve(groups.size());
  for (const packing::ShareGroup& group : groups) {
    std::vector<std::size_t> members = group.member_indices;
    std::sort(members.begin(), members.end());
    problem.sets.push_back(std::move(members));
    switch (params.objective) {
      case PackingObjective::kCount:
        break;  // unit weights, Eq. 1 as written
      case PackingObjective::kRiders:
        problem.weights.push_back(static_cast<double>(group.member_indices.size()));
        break;
      case PackingObjective::kSavings:
        problem.weights.push_back(
            std::max(1e-6, group.direct_sum_km - group.pooled_length_km));
        break;
    }
  }

  packing::Packing packed;
  switch (params.packing) {
    case PackingSolver::kLocalSearch:
      packed = packing::solve_local_search(problem);
      break;
    case PackingSolver::kGreedy:
      packed = packing::solve_greedy(problem);
      break;
    case PackingSolver::kExact:
      packed = packing::solve_exact(problem, /*max_sets=*/30);
      break;
  }
  result.packed_groups = packed.size();

  std::vector<bool> covered(requests.size(), false);
  for (std::size_t set_index : packed) {
    result.units.push_back(problem.sets[set_index]);
    for (std::size_t member : problem.sets[set_index]) covered[member] = true;
  }
  // R' of Algorithm 3: requests outside every packed subset ride alone.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (!covered[i]) result.units.push_back({i});
  }
  return result;
}

SharingOutcome dispatch_sharing(std::span<const trace::Taxi> taxis,
                                std::span<const trace::Request> requests,
                                const geo::DistanceOracle& oracle,
                                const SharingParams& params) {
  SharingOutcome outcome;
  SharingUnits units = pack_requests(requests, oracle, params);
  outcome.packed_groups = units.packed_groups;
  outcome.feasible_groups = units.feasible_groups;
  const std::size_t n_units = units.units.size();
  const std::size_t n_taxis = taxis.size();

  // Per-unit anchored-route solvers plus direct-trip sums (reused across
  // all candidate taxis).
  std::vector<routing::AnchoredRouteSolver> solvers;
  std::vector<double> direct_sum(n_units, 0.0);
  std::vector<std::vector<double>> direct(n_units);
  std::vector<int> unit_seats(n_units, 0);
  solvers.reserve(n_units);
  for (std::size_t u = 0; u < n_units; ++u) {
    std::vector<trace::Request> riders;
    riders.reserve(units.units[u].size());
    for (std::size_t index : units.units[u]) {
      riders.push_back(requests[index]);
      unit_seats[u] += requests[index].seats;
    }
    for (const trace::Request& rider : riders) {
      const double d = oracle.distance(rider.pickup, rider.dropoff);
      direct[u].push_back(d);
      direct_sum[u] += d;
    }
    solvers.emplace_back(std::move(riders), oracle);
  }

  // Score matrices over (unit, taxi).
  std::vector<std::vector<double>> passenger_scores(n_units, std::vector<double>(n_taxis));
  std::vector<std::vector<double>> taxi_scores(n_units, std::vector<double>(n_taxis));
  std::vector<std::vector<routing::Route>> routes(n_units);
  for (auto& row : routes) row.resize(n_taxis);

  for (std::size_t u = 0; u < n_units; ++u) {
    const auto& member_indices = units.units[u];

    // Mean direct pick-up distance per taxi: it lower-bounds the unit's
    // passenger score (along-route waits dominate direct distances and
    // detours are non-negative), so it both implements the threshold
    // prefilter and ranks taxis for the candidate cap.
    std::vector<double> bound(n_taxis, kUnacceptable);
    for (std::size_t t = 0; t < n_taxis; ++t) {
      if (taxis[t].seats < unit_seats[u]) continue;
      double total = 0.0;
      for (std::size_t index : member_indices) {
        total += oracle.distance(taxis[t].location, requests[index].pickup);
      }
      bound[t] = total / static_cast<double>(member_indices.size());
    }
    double cap_bound = kUnacceptable;
    if (params.candidate_taxis_per_unit > 0 &&
        params.candidate_taxis_per_unit < n_taxis) {
      std::vector<double> sorted_bounds = bound;
      std::nth_element(sorted_bounds.begin(),
                       sorted_bounds.begin() +
                           static_cast<std::ptrdiff_t>(params.candidate_taxis_per_unit - 1),
                       sorted_bounds.end());
      cap_bound = sorted_bounds[params.candidate_taxis_per_unit - 1];
    }

    for (std::size_t t = 0; t < n_taxis; ++t) {
      if (bound[t] == kUnacceptable ||
          bound[t] > params.preference.passenger_threshold_km || bound[t] > cap_bound) {
        passenger_scores[u][t] = kUnacceptable;
        taxi_scores[u][t] = kUnacceptable;
        continue;
      }
      routing::Route route = solvers[u].best_route(taxis[t].location);
      const double total_length = routing::route_length(route, oracle);

      // Passenger side: average over members of
      //   D_ck(t, r.s) + β [D_ck(r.s, r.d) - D(r.s, r.d)].
      double passenger_sum = 0.0;
      for (std::size_t m = 0; m < member_indices.size(); ++m) {
        const auto metrics =
            routing::rider_metrics(route, requests[member_indices[m]].id, oracle);
        passenger_sum +=
            metrics.wait_km + params.preference.beta * (metrics.ride_km - direct[u][m]);
      }
      const double passenger_avg =
          passenger_sum / static_cast<double>(member_indices.size());

      // Taxi side: D_ck(t) - (α + 1) Σ D(r.s, r.d).
      const double taxi_value =
          total_length - (params.preference.alpha + 1.0) * direct_sum[u];

      passenger_scores[u][t] = passenger_avg <= params.preference.passenger_threshold_km
                                   ? passenger_avg
                                   : kUnacceptable;
      taxi_scores[u][t] =
          taxi_value <= params.preference.taxi_threshold_score ? taxi_value : kUnacceptable;
      routes[u][t] = std::move(route);
    }
  }

  const PreferenceProfile profile = PreferenceProfile::from_scores(
      passenger_scores, taxi_scores, params.preference.list_cap);
  const Matching matching = params.side == ProposalSide::kPassengers
                                ? gale_shapley_requests(profile)
                                : gale_shapley_taxis(profile);

  for (std::size_t u = 0; u < n_units; ++u) {
    const int t = matching.request_to_taxi[u];
    if (t == kDummy) {
      for (std::size_t index : units.units[u]) {
        outcome.unserved_request_indices.push_back(index);
      }
      continue;
    }
    SharedAssignment assignment;
    assignment.taxi_index = static_cast<std::size_t>(t);
    assignment.request_indices = units.units[u];
    assignment.route = routes[u][static_cast<std::size_t>(t)];
    assignment.passenger_score = passenger_scores[u][static_cast<std::size_t>(t)];
    assignment.taxi_score = taxi_scores[u][static_cast<std::size_t>(t)];
    outcome.assignments.push_back(std::move(assignment));
  }
  std::sort(outcome.unserved_request_indices.begin(),
            outcome.unserved_request_indices.end());
  return outcome;
}

}  // namespace o2o::core
