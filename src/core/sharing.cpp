#include "core/sharing.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <optional>
#include <utility>

#include "core/shard_engine.h"
#include "index/spatial_grid.h"
#include "obs/obs.h"
#include "routing/optimizer.h"
#include "util/contracts.h"

namespace o2o::core {

SharingUnits pack_requests(std::span<const trace::Request> requests,
                           const geo::DistanceOracle& oracle, const SharingParams& params,
                           packing::GroupCache* group_cache) {
  SharingUnits result;
  const std::vector<packing::ShareGroup> groups = packing::enumerate_share_groups(
      requests, oracle, params.grouping, params.taxi_seats, group_cache);
  result.feasible_groups = groups.size();

  packing::SetPackingProblem problem;
  problem.universe_size = requests.size();
  problem.sets.reserve(groups.size());
  for (const packing::ShareGroup& group : groups) {
    std::vector<std::size_t> members = group.member_indices;
    std::sort(members.begin(), members.end());
    problem.sets.push_back(std::move(members));
    switch (params.objective) {
      case PackingObjective::kCount:
        break;  // unit weights, Eq. 1 as written
      case PackingObjective::kRiders:
        problem.weights.push_back(static_cast<double>(group.member_indices.size()));
        break;
      case PackingObjective::kSavings:
        problem.weights.push_back(
            std::max(1e-6, group.direct_sum_km - group.pooled_length_km));
        break;
    }
  }

  packing::Packing packed;
  {
    obs::StageTimer stage(obs::Stage::kPacking);
    obs::gauge_max(obs::Gauge::kPackingSetsPeak, problem.sets.size());
    switch (params.packing) {
      case PackingSolver::kLocalSearch:
        packed = packing::solve_local_search(problem);
        break;
      case PackingSolver::kGreedy:
        packed = packing::solve_greedy(problem);
        break;
      case PackingSolver::kExact:
        if (problem.sets.size() > params.exact_max_sets) {
          // Oversized frame: degrade to the approximation instead of
          // aborting the dispatch. This is the single counting site for
          // exact-packing fallbacks: the registry counter is the source
          // of truth, and the legacy SharingUnits / SharingOutcome
          // fields both derive from this one increment (dispatch_sharing
          // asserts they stay in sync until they are removed).
          obs::add(obs::Counter::kExactFallbacks);
          ++result.exact_fallbacks;
          packed = packing::solve_local_search(problem);
        } else {
          packed = packing::solve_exact(problem, params.exact_max_sets);
        }
        break;
    }
  }
  result.packed_groups = packed.size();
  obs::add(obs::Counter::kPackedGroups, packed.size());

  std::vector<bool> covered(requests.size(), false);
  for (std::size_t set_index : packed) {
    result.units.push_back(problem.sets[set_index]);
    // Re-align the enumeration's per-member direct distances with the
    // unit's sorted member order.
    const packing::ShareGroup& group = groups[set_index];
    std::vector<std::pair<std::size_t, double>> paired;
    paired.reserve(group.member_indices.size());
    for (std::size_t m = 0; m < group.member_indices.size(); ++m) {
      paired.emplace_back(group.member_indices[m], group.member_direct_km[m]);
    }
    std::sort(paired.begin(), paired.end());
    std::vector<double> directs;
    directs.reserve(paired.size());
    for (const auto& [member, d] : paired) directs.push_back(d);
    result.unit_direct_km.push_back(std::move(directs));
    for (std::size_t member : problem.sets[set_index]) covered[member] = true;
  }
  // R' of Algorithm 3: requests outside every packed subset ride alone.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (!covered[i]) {
      result.units.push_back({i});
      result.unit_direct_km.push_back(
          {oracle.distance(requests[i].pickup, requests[i].dropoff)});
    }
  }
  return result;
}

SharingOutcome dispatch_sharing(std::span<const trace::Taxi> taxis,
                                std::span<const trace::Request> requests,
                                const geo::DistanceOracle& oracle,
                                const SharingParams& params,
                                const index::SpatialGrid* taxi_grid,
                                packing::GroupCache* group_cache,
                                std::span<const int> request_warm_taxi) {
  O2O_EXPECTS(request_warm_taxi.empty() || request_warm_taxi.size() == requests.size());
  SharingOutcome outcome;
  SharingUnits units = pack_requests(requests, oracle, params, group_cache);
  outcome.packed_groups = units.packed_groups;
  outcome.feasible_groups = units.feasible_groups;
  outcome.exact_fallbacks = units.exact_fallbacks;
  // Both legacy fields mirror the one increment in pack_requests (the
  // obs::Counter::kExactFallbacks registry entry is the source of truth).
  O2O_ENSURES(outcome.exact_fallbacks == units.exact_fallbacks);
  const std::size_t n_units = units.units.size();
  const std::size_t n_taxis = taxis.size();
  obs::gauge_max(obs::Gauge::kUnitsPeak, n_units);

  // The sharing profile build (anchored routes + candidate scoring) is
  // one stage; the timer is released before Algorithm 1 runs so
  // kProfileBuild and kStableMatching stay disjoint.
  std::optional<obs::StageTimer> profile_stage;
  profile_stage.emplace(obs::Stage::kProfileBuild);

  // Per-unit anchored-route solvers plus direct-trip sums (reused across
  // all candidate taxis). Direct distances ride along from packing — no
  // second oracle pass over the members.
  const std::vector<std::vector<double>>& direct = units.unit_direct_km;
  std::vector<routing::AnchoredRouteSolver> solvers;
  std::vector<double> direct_sum(n_units, 0.0);
  std::vector<int> unit_seats(n_units, 0);
  solvers.reserve(n_units);
  for (std::size_t u = 0; u < n_units; ++u) {
    std::vector<trace::Request> riders;
    riders.reserve(units.units[u].size());
    for (std::size_t index : units.units[u]) {
      riders.push_back(requests[index]);
      unit_seats[u] += requests[index].seats;
    }
    for (const double d : direct[u]) direct_sum[u] += d;
    solvers.emplace_back(std::move(riders), oracle);
  }

  // Sparse candidate rows over (unit, taxi), plus the per-unit routes for
  // kept candidates, aligned with the rows (ascending taxi index).
  const double passenger_threshold = params.preference.passenger_threshold_km;
  const bool prune = params.preference.spatial_prune &&
                     std::isfinite(passenger_threshold) && n_taxis > 0;
  std::optional<index::SpatialGrid> local_grid;
  if (prune && taxi_grid == nullptr) {
    const double cell_km = std::clamp(passenger_threshold / 2.0, 0.25, 8.0);
    local_grid.emplace(taxis, cell_km);
    taxi_grid = &*local_grid;
  }
  if (!prune) taxi_grid = nullptr;
  if (taxi_grid != nullptr) O2O_EXPECTS(taxi_grid->size() == n_taxis);

  std::vector<std::vector<PreferenceProfile::Candidate>> rows(n_units);
  std::vector<std::vector<std::pair<int, routing::Route>>> unit_routes(n_units);

  for_each_row(n_units, oracle, [&](std::size_t u) {
    const auto& member_indices = units.units[u];

    // Candidate taxis. A taxi passes the mean-pick-up bound below only if
    // some member's oracle pick-up distance is within the passenger
    // threshold, and oracle distances dominate the straight-line metric
    // the grid filters on — so the union of the members' radius queries
    // covers every taxi the dense scan would keep.
    std::vector<int> candidate_ids;
    if (taxi_grid != nullptr) {
      for (std::size_t index : member_indices) {
        const std::vector<std::int32_t> nearby =
            taxi_grid->within_radius(requests[index].pickup, passenger_threshold);
        candidate_ids.insert(candidate_ids.end(), nearby.begin(), nearby.end());
      }
      std::sort(candidate_ids.begin(), candidate_ids.end());
      candidate_ids.erase(std::unique(candidate_ids.begin(), candidate_ids.end()),
                          candidate_ids.end());
    } else {
      candidate_ids.resize(n_taxis);
      std::iota(candidate_ids.begin(), candidate_ids.end(), 0);
    }

    // Mean direct pick-up distance per candidate: it lower-bounds the
    // unit's passenger score (along-route waits dominate direct distances
    // and detours are non-negative), so it both implements the threshold
    // prefilter and ranks taxis for the candidate cap. Seat-feasible
    // candidates are gathered first, then priced with one bulk distance
    // call per member (one reverse tree per pick-up on the network
    // oracle); the per-candidate accumulation order over members is
    // unchanged.
    std::vector<int> feasible;
    std::vector<geo::Point> locations;
    feasible.reserve(candidate_ids.size());
    locations.reserve(candidate_ids.size());
    for (const int candidate : candidate_ids) {
      const auto t = static_cast<std::size_t>(candidate);
      if (taxis[t].seats < unit_seats[u]) continue;
      feasible.push_back(candidate);
      locations.push_back(taxis[t].location);
    }
    std::vector<double> totals(feasible.size(), 0.0);
    for (std::size_t index : member_indices) {
      const std::vector<double> pickups =
          oracle.distances_to(locations, requests[index].pickup);
      for (std::size_t k = 0; k < feasible.size(); ++k) totals[k] += pickups[k];
    }
    std::vector<std::pair<double, int>> passing;  // (bound, taxi)
    passing.reserve(feasible.size());
    for (std::size_t k = 0; k < feasible.size(); ++k) {
      const double bound = totals[k] / static_cast<double>(member_indices.size());
      if (bound > passenger_threshold) continue;
      passing.emplace_back(bound, feasible[k]);
    }

    // Hard candidate cap: keep exactly the K best by (bound, taxi index).
    // The pair comparator breaks bound ties deterministically instead of
    // admitting every taxi tied at the K-th bound.
    if (params.candidate_taxis_per_unit > 0 &&
        passing.size() > params.candidate_taxis_per_unit) {
      const auto kth =
          passing.begin() + static_cast<std::ptrdiff_t>(params.candidate_taxis_per_unit);
      std::nth_element(passing.begin(), kth - 1, passing.end());
      passing.resize(params.candidate_taxis_per_unit);
    }
    std::sort(passing.begin(), passing.end(),
              [](const auto& a, const auto& b) { return a.second < b.second; });

    rows[u].reserve(passing.size());
    unit_routes[u].reserve(passing.size());
    for (const auto& [bound, candidate] : passing) {
      const auto t = static_cast<std::size_t>(candidate);
      routing::Route route = solvers[u].best_route(taxis[t].location);
      const double total_length = routing::route_length(route, oracle);

      // Passenger side: average over members of
      //   D_ck(t, r.s) + β [D_ck(r.s, r.d) - D(r.s, r.d)].
      double passenger_sum = 0.0;
      for (std::size_t m = 0; m < member_indices.size(); ++m) {
        const auto metrics =
            routing::rider_metrics(route, requests[member_indices[m]].id, oracle);
        passenger_sum +=
            metrics.wait_km + params.preference.beta * (metrics.ride_km - direct[u][m]);
      }
      const double passenger_avg =
          passenger_sum / static_cast<double>(member_indices.size());

      // Taxi side: D_ck(t) - (α + 1) Σ D(r.s, r.d).
      const double taxi_value =
          total_length - (params.preference.alpha + 1.0) * direct_sum[u];

      const double passenger_score =
          passenger_avg <= passenger_threshold ? passenger_avg : kUnacceptable;
      const double taxi_score =
          taxi_value <= params.preference.taxi_threshold_score ? taxi_value : kUnacceptable;
      if (passenger_score == kUnacceptable && taxi_score == kUnacceptable) continue;
      rows[u].push_back({candidate, passenger_score, taxi_score});
      unit_routes[u].emplace_back(candidate, std::move(route));
    }
    obs::add(obs::Counter::kPreferencePairs, rows[u].size());
  });

  if (obs::tracing_active()) {
    std::size_t pairs = 0;
    for (const auto& row : rows) pairs += row.size();
    obs::gauge_max(obs::Gauge::kProfilePairsPeak, pairs);
  }
  const PreferenceProfile profile = PreferenceProfile::from_candidates(
      std::move(rows), n_taxis, params.preference.list_cap);
  profile_stage.reset();

  // Lift per-request warm hints to the unit level: a unit is hinted only
  // when every member remembers the same taxi, and duplicate claims are
  // resolved ascending (first unit keeps the taxi). Validation inside
  // the engine discards anything stale, so this is purely a speedup.
  std::vector<int> unit_seed;
  if (!request_warm_taxi.empty() && n_units > 0) {
    unit_seed.assign(n_units, kDummy);
    std::vector<std::uint8_t> claimed(n_taxis, 0);
    for (std::size_t u = 0; u < n_units; ++u) {
      const auto& member_indices = units.units[u];
      int hint = request_warm_taxi[member_indices.front()];
      for (std::size_t m = 1; m < member_indices.size() && hint != kDummy; ++m) {
        if (request_warm_taxi[member_indices[m]] != hint) hint = kDummy;
      }
      if (hint == kDummy) continue;
      O2O_EXPECTS(hint >= 0 && static_cast<std::size_t>(hint) < n_taxis);
      if (claimed[static_cast<std::size_t>(hint)]) continue;
      claimed[static_cast<std::size_t>(hint)] = 1;
      unit_seed[u] = hint;
    }
  }
  const Matching matching =
      sharded_gale_shapley(profile, params.side, params.sharding, unit_seed);

  for (std::size_t u = 0; u < n_units; ++u) {
    const int t = matching.request_to_taxi[u];
    if (t == kDummy) {
      for (std::size_t index : units.units[u]) {
        outcome.unserved_request_indices.push_back(index);
      }
      continue;
    }
    SharedAssignment assignment;
    assignment.taxi_index = static_cast<std::size_t>(t);
    assignment.request_indices = units.units[u];
    auto& row_routes = unit_routes[u];
    const auto route_it = std::lower_bound(
        row_routes.begin(), row_routes.end(), t,
        [](const std::pair<int, routing::Route>& entry, int value) {
          return entry.first < value;
        });
    O2O_EXPECTS(route_it != row_routes.end() && route_it->first == t);
    assignment.route = std::move(route_it->second);
    assignment.passenger_score = profile.passenger_score(u, static_cast<std::size_t>(t));
    assignment.taxi_score = profile.taxi_score(static_cast<std::size_t>(t), u);
    outcome.assignments.push_back(std::move(assignment));
  }
  std::sort(outcome.unserved_request_indices.begin(),
            outcome.unserved_request_indices.end());
  return outcome;
}

}  // namespace o2o::core
