#include "core/selectors.h"

#include <limits>

#include "util/contracts.h"

namespace o2o::core {

ScheduleEvaluation evaluate(const PreferenceProfile& profile, const Matching& matching) {
  O2O_EXPECTS(matching.request_to_taxi.size() == profile.request_count());
  ScheduleEvaluation eval;
  for (std::size_t r = 0; r < matching.request_to_taxi.size(); ++r) {
    const int t = matching.request_to_taxi[r];
    if (t == kDummy) continue;
    ++eval.matched;
    eval.passenger_total += profile.passenger_score(r, static_cast<std::size_t>(t));
    eval.taxi_total += profile.taxi_score(static_cast<std::size_t>(t), r);
  }
  return eval;
}

const Matching& select_by(const std::vector<Matching>& candidates,
                          const PreferenceProfile& profile,
                          const CompanyObjective& objective) {
  O2O_EXPECTS(!candidates.empty());
  const Matching* best = &candidates.front();
  double best_value = objective(profile, *best);
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    const double value = objective(profile, candidates[i]);
    if (value < best_value) {
      best_value = value;
      best = &candidates[i];
    }
  }
  return *best;
}

const Matching& select_taxi_optimal(const std::vector<Matching>& candidates,
                                    const PreferenceProfile& profile) {
  return select_by(candidates, profile,
                   [](const PreferenceProfile& p, const Matching& m) {
                     return evaluate(p, m).taxi_total;
                   });
}

const Matching& select_passenger_optimal(const std::vector<Matching>& candidates,
                                         const PreferenceProfile& profile) {
  return select_by(candidates, profile,
                   [](const PreferenceProfile& p, const Matching& m) {
                     return evaluate(p, m).passenger_total;
                   });
}

}  // namespace o2o::core
