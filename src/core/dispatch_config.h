// Unified dispatch configuration (the single front door to the paper's
// four dispatchers).
//
// Historically every entry point took its own options struct --
// PreferenceParams, StableDispatcherOptions, SharingParams +
// GroupOptions, SharingStableDispatcherOptions -- with the shared knobs
// (α, β, thresholds) duplicated at each layer. DispatchConfig composes
// all of them behind one fluent builder, keeps the shared knobs in one
// place, validates the whole bundle up front, and projects back onto the
// legacy structs so existing call sites keep compiling unchanged.
//
//   auto dispatcher = o2o::make_std_p(o2o::DispatchConfig{}
//                                         .with_alpha(1.0)
//                                         .with_passenger_threshold_km(3.0)
//                                         .with_detour_threshold_km(5.0));
//
// The legacy per-dispatcher Options structs in core/dispatchers.h and
// core/sharing.h remain as thin shims; new code should prefer this API.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/dispatchers.h"
#include "obs/obs.h"

namespace o2o {

/// Which knob a validation error refers to (stable identifiers for
/// machine-readable error reporting).
enum class ConfigField : std::uint8_t {
  kAlpha,
  kBeta,
  kPassengerThresholdKm,
  kTaxiThresholdScore,
  kDetourThresholdKm,
  kMaxGroupSize,
  kPickupRadiusKm,
  kTaxiSeats,
  kEnumerationCap,
  kCandidateTaxisPerUnit,
  kExactMaxSets,
  kTraceMaxFrames,
};

/// Stable snake_case name of a field (mirrors the builder setters).
std::string_view config_field_name(ConfigField field) noexcept;

/// One typed validation failure; `message` says what is wrong and what
/// the valid range is.
struct ConfigError {
  ConfigField field;
  std::string message;

  friend bool operator==(const ConfigError&, const ConfigError&) = default;
};

/// The composed configuration. Default-constructed it reproduces every
/// legacy default, so `DispatchConfig{}` behaves exactly like the old
/// default-constructed option structs.
class DispatchConfig {
 public:
  // --- shared model coefficients (Section IV-A) ------------------------
  DispatchConfig& with_alpha(double alpha);
  DispatchConfig& with_beta(double beta);
  DispatchConfig& with_passenger_threshold_km(double km);
  DispatchConfig& with_taxi_threshold_score(double score);
  DispatchConfig& with_list_cap(std::size_t cap);
  DispatchConfig& with_spatial_prune(bool enabled);

  // --- matching side / enumeration (Section IV) ------------------------
  DispatchConfig& with_proposal_side(core::ProposalSide side);
  /// NSTD-T via Algorithm 2 enumeration + taxi-best selection instead of
  /// taxi-proposing deferred acceptance.
  DispatchConfig& with_taxi_side_via_enumeration(bool enabled);
  DispatchConfig& with_enumeration_cap(std::size_t cap);

  // --- sharing / grouping (Section V) ----------------------------------
  DispatchConfig& with_detour_threshold_km(double theta);
  DispatchConfig& with_max_group_size(int size);
  DispatchConfig& with_pickup_radius_km(double km);
  DispatchConfig& with_require_saving(bool enabled);
  DispatchConfig& with_parallel_grouping(bool enabled);
  DispatchConfig& with_packing_solver(core::PackingSolver solver);
  DispatchConfig& with_packing_objective(core::PackingObjective objective);
  DispatchConfig& with_taxi_seats(int seats);
  DispatchConfig& with_candidate_taxis_per_unit(std::size_t count);
  DispatchConfig& with_exact_max_sets(std::size_t count);
  DispatchConfig& with_enroute_extension(bool enabled);

  // --- observability ---------------------------------------------------
  DispatchConfig& with_tracing(obs::TraceOptions options);
  /// Shorthand: enable tracing with default retention.
  DispatchConfig& with_tracing(bool enabled = true);

  // --- component access ------------------------------------------------
  const core::PreferenceParams& preference() const noexcept { return params_.preference; }
  const packing::GroupOptions& grouping() const noexcept { return params_.grouping; }
  const core::SharingParams& sharing_params() const noexcept { return params_; }
  const obs::TraceOptions& trace() const noexcept { return trace_; }
  core::ProposalSide proposal_side() const noexcept { return params_.side; }
  bool taxi_side_via_enumeration() const noexcept { return taxi_side_via_enumeration_; }
  std::size_t enumeration_cap() const noexcept { return enumeration_cap_; }
  bool enroute_extension() const noexcept { return enroute_extension_; }

  /// Checks the whole bundle; empty result means valid. Never throws --
  /// CLIs print the errors, tests assert on the fields.
  std::vector<ConfigError> validate() const;

  // --- projections onto the legacy structs -----------------------------
  core::StableDispatcherOptions stable_options() const;
  core::SharingStableDispatcherOptions sharing_options() const;

 private:
  core::SharingParams params_;  ///< superset: preference + grouping + packing
  bool taxi_side_via_enumeration_ = false;
  std::size_t enumeration_cap_ = 512;
  bool enroute_extension_ = false;
  obs::TraceOptions trace_;
};

// Factories for the paper's four dispatchers. Each pins the proposal
// side itself (overriding with_proposal_side), so the name always means
// what it says. O2O_EXPECTS(validate().empty()).
std::unique_ptr<sim::Dispatcher> make_nstd_p(const DispatchConfig& config = {});
std::unique_ptr<sim::Dispatcher> make_nstd_t(const DispatchConfig& config = {});
std::unique_ptr<sim::Dispatcher> make_std_p(const DispatchConfig& config = {});
std::unique_ptr<sim::Dispatcher> make_std_t(const DispatchConfig& config = {});

/// Name-based factory for CLIs: "nstd-p", "nstd-t", "std-p", "std-t"
/// (case-insensitive; '_' accepted for '-'). Returns nullptr on an
/// unknown name.
std::unique_ptr<sim::Dispatcher> make_dispatcher(std::string_view kind,
                                                 const DispatchConfig& config = {});

}  // namespace o2o
