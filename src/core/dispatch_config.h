// Unified dispatch configuration (the single front door to the paper's
// four dispatchers).
//
// Historically every entry point took its own options struct --
// PreferenceParams, StableDispatcherOptions, SharingParams +
// GroupOptions, SharingStableDispatcherOptions -- with the shared knobs
// (α, β, thresholds) duplicated at each layer. DispatchConfig composes
// all of them behind one fluent builder, keeps the shared knobs in one
// place, validates the whole bundle up front, and projects back onto the
// legacy structs so existing call sites keep compiling unchanged.
//
//   o2o::DispatchConfig config;
//   config.with_alpha(1.0)
//       .with_passenger_threshold_km(3.0)
//       .with_detour_threshold_km(5.0)
//       .with_frame_seconds(60.0);
//   auto dispatcher = o2o::make_std_p(config);
//   sim::Simulator sim(trace, fleet, oracle, config.simulation());
//
// The config is end-to-end: besides the dispatcher knobs it carries a
// .simulation() section (the sim::SimulatorConfig the Simulator consumes)
// and a .sharding() section (the component-sharded matching engine,
// core/shard_engine.h). Constructing dispatchers straight from the legacy
// option structs is deprecated — the factories below are the supported
// path and validate the whole bundle first.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/dispatchers.h"
#include "geo/backend.h"
#include "obs/obs.h"
#include "sim/simulator.h"

namespace o2o {

/// Knobs of the streaming dispatch service (src/service). Carried here so
/// one DispatchConfig describes a deployment end to end; the service layer
/// reads them, core only validates them.
struct ServiceOptions {
  /// How many complete frames may sit buffered between the ingestion ring
  /// and the matcher. 1 = classic double-buffering (frame t+1 fills while
  /// frame t matches); higher values absorb burstier producers.
  std::size_t pipeline_depth = 1;
  /// Slot count of the lock-free ingestion ring. Must be a power of two
  /// (the ring masks sequence numbers instead of dividing).
  std::size_t ingest_capacity = 4096;

  friend bool operator==(const ServiceOptions&, const ServiceOptions&) = default;
};

/// Which knob a validation error refers to (stable identifiers for
/// machine-readable error reporting).
enum class ConfigField : std::uint8_t {
  kAlpha,
  kBeta,
  kPassengerThresholdKm,
  kTaxiThresholdScore,
  kDetourThresholdKm,
  kMaxGroupSize,
  kPickupRadiusKm,
  kTaxiSeats,
  kEnumerationCap,
  kCandidateTaxisPerUnit,
  kExactMaxSets,
  kTraceMaxFrames,
  kFrameSeconds,
  kSpeedKmh,
  kCancelTimeoutSeconds,
  kDrainSeconds,
  kIdleGridCellKm,
  kRoadNetwork,
  kDeterministicMerge,
  kPipelineDepth,
  kIngestCapacity,
  kDistanceBackend,
};

/// Stable snake_case name of a field (mirrors the builder setters).
std::string_view config_field_name(ConfigField field) noexcept;

/// One typed validation failure; `message` says what is wrong and what
/// the valid range is.
struct ConfigError {
  ConfigField field;
  std::string message;

  friend bool operator==(const ConfigError&, const ConfigError&) = default;
};

/// The composed configuration. Default-constructed it reproduces every
/// legacy default, so `DispatchConfig{}` behaves exactly like the old
/// default-constructed option structs.
class DispatchConfig {
 public:
  // --- shared model coefficients (Section IV-A) ------------------------
  DispatchConfig& with_alpha(double alpha);
  DispatchConfig& with_beta(double beta);
  DispatchConfig& with_passenger_threshold_km(double km);
  DispatchConfig& with_taxi_threshold_score(double score);
  DispatchConfig& with_list_cap(std::size_t cap);
  DispatchConfig& with_spatial_prune(bool enabled);

  // --- matching side / enumeration (Section IV) ------------------------
  DispatchConfig& with_proposal_side(core::ProposalSide side);
  /// NSTD-T via Algorithm 2 enumeration + taxi-best selection instead of
  /// taxi-proposing deferred acceptance.
  DispatchConfig& with_taxi_side_via_enumeration(bool enabled);
  DispatchConfig& with_enumeration_cap(std::size_t cap);

  // --- sharing / grouping (Section V) ----------------------------------
  DispatchConfig& with_detour_threshold_km(double theta);
  DispatchConfig& with_max_group_size(int size);
  DispatchConfig& with_pickup_radius_km(double km);
  DispatchConfig& with_require_saving(bool enabled);
  DispatchConfig& with_parallel_grouping(bool enabled);
  /// Engine accelerations of the share-group enumeration (all default
  /// on; all bit-identical to the serial scan — see GroupOptions).
  DispatchConfig& with_simd_prefilter(bool enabled);
  DispatchConfig& with_direction_cone(bool enabled);
  DispatchConfig& with_cross_frame_cache(bool enabled);
  /// Incremental frame engine (DESIGN.md): persist per-request candidate
  /// lists across frames / fan exact group evaluation over the thread
  /// pool. Both default on and both bit-identical to the cold scan.
  DispatchConfig& with_persist_candidates(bool enabled);
  DispatchConfig& with_parallel_exact(bool enabled);
  DispatchConfig& with_packing_solver(core::PackingSolver solver);
  DispatchConfig& with_packing_objective(core::PackingObjective objective);
  DispatchConfig& with_taxi_seats(int seats);
  DispatchConfig& with_candidate_taxis_per_unit(std::size_t count);
  DispatchConfig& with_exact_max_sets(std::size_t count);
  DispatchConfig& with_enroute_extension(bool enabled);
  /// Warm-start deferred acceptance from the previous frame's matching
  /// (both stable dispatcher families; default on; output bit-identical
  /// — see DESIGN.md "Incremental frame engine").
  DispatchConfig& with_warm_start_da(bool enabled);

  // --- sharded matching engine (core/shard_engine.h) --------------------
  /// Replaces the whole sharding section. `deterministic_merge` must stay
  /// true — the sharded merge is always deterministic; validate() rejects
  /// an attempt to turn the contract off.
  DispatchConfig& sharding(core::ShardOptions options);
  /// Component-sharded parallel matching on/off (off = serial pass).
  DispatchConfig& with_parallel_dispatch(bool enabled);
  /// Allocation hint for the per-frame component vector (0 = derive).
  DispatchConfig& with_max_components_hint(std::size_t hint);

  // --- simulation (sim::Simulator) --------------------------------------
  /// Replaces the whole simulation section. The α/β fields of the report
  /// metrics are kept in sync with the shared model coefficients above
  /// (with_alpha / with_beta are the single source of truth), so the
  /// incoming config's own alpha/beta are overwritten.
  DispatchConfig& simulation(sim::SimulatorConfig config);
  DispatchConfig& with_frame_seconds(double seconds);
  DispatchConfig& with_speed_kmh(double kmh);
  DispatchConfig& with_cancel_timeout_seconds(double seconds);
  DispatchConfig& with_drain_seconds(double seconds);
  DispatchConfig& with_idle_grid_cell_km(double km);
  /// Patch the idle-taxi snapshot and its spatial index across frames
  /// instead of rebuilding them (see SimulatorConfig::incremental_grid
  /// for the permutation caveat). Off by default.
  DispatchConfig& with_incremental_grid(bool enabled);
  /// Drive taxis along this network's shortest paths. Passing a network
  /// opts into road mode; validate() then rejects a null network (reset
  /// by replacing the whole section via simulation()).
  DispatchConfig& with_road_network(const geo::RoadNetwork* network);
  DispatchConfig& with_trace_sink(obs::TraceSink* sink);

  // --- distance backend (geo/backend.h) ---------------------------------
  /// Declares the distance function of the run. The config only carries
  /// the spec (validate() checks it; describe() names it); resolve it
  /// with geo::make_distance_oracle and hand the oracle to the simulator
  /// / service as before.
  DispatchConfig& with_distance_backend(geo::DistanceBackendSpec spec);
  /// Overload recording a *resolved* backend: same spec, plus the graph
  /// fingerprint and CH artifact hash, so describe() (and therefore
  /// `o2o_serve --print-config` and the FrameTrace export) pins the run
  /// to the exact graph and preprocessing artifact it used.
  DispatchConfig& with_distance_backend(const geo::DistanceBackend& backend);

  // --- observability ---------------------------------------------------
  DispatchConfig& with_tracing(obs::TraceOptions options);
  /// Shorthand: enable tracing with default retention.
  DispatchConfig& with_tracing(bool enabled = true);

  // --- streaming service (src/service) ----------------------------------
  /// Replaces the whole service section.
  DispatchConfig& service(ServiceOptions options);
  DispatchConfig& with_pipeline_depth(std::size_t depth);
  DispatchConfig& with_ingest_capacity(std::size_t slots);

  // --- component access ------------------------------------------------
  const core::PreferenceParams& preference() const noexcept { return params_.preference; }
  const packing::GroupOptions& grouping() const noexcept { return params_.grouping; }
  const core::SharingParams& sharing_params() const noexcept { return params_; }
  const obs::TraceOptions& trace() const noexcept { return trace_; }
  const core::ShardOptions& sharding() const noexcept { return params_.sharding; }
  const sim::SimulatorConfig& simulation() const noexcept { return sim_; }
  const ServiceOptions& service() const noexcept { return service_; }
  core::ProposalSide proposal_side() const noexcept { return params_.side; }
  bool taxi_side_via_enumeration() const noexcept { return taxi_side_via_enumeration_; }
  std::size_t enumeration_cap() const noexcept { return enumeration_cap_; }
  bool enroute_extension() const noexcept { return enroute_extension_; }
  const geo::DistanceBackendSpec& distance_backend() const noexcept { return backend_; }
  /// 0 until a resolved backend was recorded (or for metric backends).
  std::uint64_t distance_graph_fingerprint() const noexcept {
    return backend_graph_fingerprint_;
  }
  std::uint64_t ch_artifact_hash() const noexcept { return backend_ch_artifact_hash_; }

  /// Checks the whole bundle; empty result means valid. Never throws --
  /// CLIs print the errors, tests assert on the fields.
  std::vector<ConfigError> validate() const;

  /// Stable key/value snapshot of every knob, in a fixed order, with the
  /// snake_case keys of the builder setters. Doubles are formatted with
  /// %.17g (round-trip exact), bools as "true"/"false", enums by their
  /// CLI names. Emitted into FrameTrace JSON exports and printed by
  /// `o2o_serve --print-config`, so deployments are auditable.
  std::vector<std::pair<std::string, std::string>> describe() const;

  // --- projections onto the legacy structs -----------------------------
  core::StableDispatcherOptions stable_options() const;
  core::SharingStableDispatcherOptions sharing_options() const;

 private:
  core::SharingParams params_;  ///< superset: preference + grouping + packing + sharding
  bool taxi_side_via_enumeration_ = false;
  std::size_t enumeration_cap_ = 512;
  bool enroute_extension_ = false;
  bool warm_start_da_ = true;
  obs::TraceOptions trace_;
  sim::SimulatorConfig sim_;  ///< alpha/beta mirror the preference knobs
  ServiceOptions service_;
  bool road_mode_ = false;    ///< with_road_network was called (null ⇒ error)
  geo::DistanceBackendSpec backend_;
  std::uint64_t backend_graph_fingerprint_ = 0;  ///< set by the resolved overload
  std::uint64_t backend_ch_artifact_hash_ = 0;
};

// Factories for the paper's four dispatchers. Each pins the proposal
// side itself (overriding with_proposal_side), so the name always means
// what it says. O2O_EXPECTS(validate().empty()).
std::unique_ptr<sim::Dispatcher> make_nstd_p(const DispatchConfig& config = {});
std::unique_ptr<sim::Dispatcher> make_nstd_t(const DispatchConfig& config = {});
std::unique_ptr<sim::Dispatcher> make_std_p(const DispatchConfig& config = {});
std::unique_ptr<sim::Dispatcher> make_std_t(const DispatchConfig& config = {});

/// Name-based factory for CLIs: "nstd-p", "nstd-t", "std-p", "std-t"
/// (case-insensitive; '_' accepted for '-'). Returns nullptr on an
/// unknown name.
std::unique_ptr<sim::Dispatcher> make_dispatcher(std::string_view kind,
                                                 const DispatchConfig& config = {});

}  // namespace o2o
