#include "core/dispatchers.h"

#include <limits>
#include <unordered_map>

#include "core/shard_engine.h"
#include "obs/obs.h"
#include "routing/insertion.h"
#include "util/contracts.h"

namespace o2o::core {

namespace {

/// Re-keys a dispatcher's remembered request-id -> taxi-id matching into
/// this frame's span indices: entry r is the idle-taxi index the pending
/// request r matched last call, or kDummy when either side left the
/// frame. Returns an empty vector (hints disabled) when nothing maps.
std::vector<int> map_warm_memory(
    const std::unordered_map<trace::RequestId, trace::TaxiId>& memory,
    std::span<const trace::Taxi> idle_taxis, std::span<const trace::Request> pending) {
  if (memory.empty()) return {};
  std::unordered_map<trace::TaxiId, int> taxi_index;
  taxi_index.reserve(idle_taxis.size());
  for (std::size_t t = 0; t < idle_taxis.size(); ++t) {
    taxi_index.emplace(idle_taxis[t].id, static_cast<int>(t));
  }
  std::vector<int> warm(pending.size(), kDummy);
  bool any = false;
  for (std::size_t r = 0; r < pending.size(); ++r) {
    const auto remembered = memory.find(pending[r].id);
    if (remembered == memory.end()) continue;
    const auto index = taxi_index.find(remembered->second);
    if (index == taxi_index.end()) continue;  // taxi departed / went busy
    warm[r] = index->second;
    any = true;
  }
  if (!any) return {};
  return warm;
}

/// Working state of one busy taxi while the en-route extension inserts
/// pending requests into its remaining route.
struct EnrouteTaxi {
  trace::Taxi taxi;
  routing::Route route;
  int seats_onboard = 0;
  std::unordered_map<trace::RequestId, int> seats_of;
  std::vector<trace::RequestId> new_requests;
};

bool enroute_capacity_ok(const EnrouteTaxi& taxi, const routing::Route& route,
                         const trace::Request& incoming) {
  int seats = taxi.seats_onboard;
  for (const routing::Stop& stop : route.stops) {
    int demand = 0;
    if (stop.request == incoming.id) {
      demand = incoming.seats;
    } else {
      const auto it = taxi.seats_of.find(stop.request);
      O2O_EXPECTS(it != taxi.seats_of.end());
      demand = it->second;
    }
    seats += stop.is_pickup ? demand : -demand;
    if (seats > taxi.taxi.seats) return false;
  }
  return true;
}

/// Detour check for every rider whose pick-up is still ahead: along-route
/// ride distance within θ of their direct trip. Direct distances come
/// from `direct` for this frame's pending requests and from the route's
/// own stops for riders committed in earlier frames. The request→dropoff
/// map is built once per route, keeping the check linear in the stops.
bool enroute_detours_ok(const routing::Route& route, const geo::DistanceOracle& oracle,
                        const std::unordered_map<trace::RequestId, double>& direct,
                        double theta) {
  std::unordered_map<trace::RequestId, const geo::Point*> dropoff_of;
  dropoff_of.reserve(route.stops.size() / 2);
  for (const routing::Stop& stop : route.stops) {
    if (!stop.is_pickup) dropoff_of[stop.request] = &stop.point;  // last one wins
  }
  for (const routing::Stop& stop : route.stops) {
    if (!stop.is_pickup) continue;
    double direct_km = 0.0;
    const auto it = direct.find(stop.request);
    if (it != direct.end()) {
      direct_km = it->second;
    } else {
      const auto dropoff_it = dropoff_of.find(stop.request);
      if (dropoff_it == dropoff_of.end()) continue;
      direct_km = oracle.distance(stop.point, *dropoff_it->second);
    }
    const auto metrics = routing::rider_metrics(route, stop.request, oracle);
    if (metrics.ride_km - direct_km > theta) return false;
  }
  return true;
}

}  // namespace

StableDispatcher::StableDispatcher(StableDispatcherOptions options, FromConfig)
    : options_(std::move(options)) {}

std::string StableDispatcher::name() const {
  return options_.side == ProposalSide::kPassengers ? "NSTD-P" : "NSTD-T";
}

std::vector<sim::DispatchAssignment> StableDispatcher::dispatch(
    const sim::DispatchContext& context) {
  O2O_EXPECTS(context.oracle != nullptr);
  obs::StageTimer timer(obs::Stage::kDispatch);
  if (context.idle_taxis.empty() || context.pending.empty()) return {};

  const PreferenceProfile profile =
      build_nonsharing_profile(context.idle_taxis, context.pending, *context.oracle,
                               options_.preference, context.idle_grid);

  Matching matching;
  if (options_.side == ProposalSide::kTaxis && options_.taxi_side_via_enumeration) {
    // The enumeration path re-derives the whole lattice; there is no
    // proposal prefix to skip, so warm hints do not apply.
    matching = sharded_taxi_optimal_via_enumeration(profile, options_.enumeration_cap,
                                                    options_.sharding);
  } else {
    const std::vector<int> warm_seed =
        options_.warm_start_da
            ? map_warm_memory(last_match_, context.idle_taxis, context.pending)
            : std::vector<int>{};
    matching = sharded_gale_shapley(profile, options_.side, options_.sharding, warm_seed);
  }

  if (options_.warm_start_da) last_match_.clear();
  std::vector<sim::DispatchAssignment> assignments;
  for (std::size_t r = 0; r < context.pending.size(); ++r) {
    const int t = matching.request_to_taxi[r];
    if (t == kDummy) continue;
    const trace::Taxi& taxi = context.idle_taxis[static_cast<std::size_t>(t)];
    if (options_.warm_start_da) last_match_.emplace(context.pending[r].id, taxi.id);
    sim::DispatchAssignment assignment;
    assignment.taxi = taxi.id;
    assignment.requests = {context.pending[r].id};
    assignment.route = routing::single_rider_route(context.pending[r], taxi.location);
    assignments.push_back(std::move(assignment));
  }
  return assignments;
}

SharingStableDispatcher::SharingStableDispatcher(SharingStableDispatcherOptions options,
                                                 FromConfig)
    : options_(std::move(options)) {}

std::string SharingStableDispatcher::name() const {
  std::string base = options_.params.side == ProposalSide::kPassengers ? "STD-P" : "STD-T";
  if (options_.enroute_extension) base += "+";
  return base;
}

std::vector<sim::DispatchAssignment> SharingStableDispatcher::dispatch(
    const sim::DispatchContext& context) {
  O2O_EXPECTS(context.oracle != nullptr);
  obs::StageTimer timer(obs::Stage::kDispatch);
  if (context.pending.empty()) return {};
  if (context.idle_taxis.empty() && !options_.enroute_extension) return {};

  SharingOutcome outcome;
  if (context.idle_taxis.empty()) {
    // No idle taxis: everything is a candidate for en-route insertion.
    for (std::size_t i = 0; i < context.pending.size(); ++i) {
      outcome.unserved_request_indices.push_back(i);
    }
  } else {
    const std::vector<int> warm_taxi =
        options_.warm_start_da
            ? map_warm_memory(last_match_, context.idle_taxis, context.pending)
            : std::vector<int>{};
    outcome = dispatch_sharing(context.idle_taxis, context.pending, *context.oracle,
                               options_.params, context.idle_grid, context.group_cache,
                               warm_taxi);
  }

  if (options_.warm_start_da) last_match_.clear();
  std::vector<sim::DispatchAssignment> assignments;
  assignments.reserve(outcome.assignments.size());
  for (const SharedAssignment& shared : outcome.assignments) {
    sim::DispatchAssignment assignment;
    assignment.taxi = context.idle_taxis[shared.taxi_index].id;
    assignment.requests.reserve(shared.request_indices.size());
    for (std::size_t index : shared.request_indices) {
      assignment.requests.push_back(context.pending[index].id);
      if (options_.warm_start_da) {
        last_match_.emplace(context.pending[index].id, assignment.taxi);
      }
    }
    assignment.route = shared.route;
    assignments.push_back(std::move(assignment));
  }

  if (options_.enroute_extension && !outcome.unserved_request_indices.empty() &&
      !context.busy_taxis.empty()) {
    obs::StageTimer enroute_timer(obs::Stage::kEnroute);
    const geo::DistanceOracle& oracle = *context.oracle;
    const PreferenceParams& prefs = options_.params.preference;
    const double theta = options_.params.grouping.detour_threshold_km;

    std::vector<EnrouteTaxi> fleet;
    fleet.reserve(context.busy_taxis.size());
    for (const sim::BusyTaxiView& view : context.busy_taxis) {
      EnrouteTaxi taxi;
      taxi.taxi = view.taxi;
      taxi.route.start = view.taxi.location;
      taxi.route.stops = view.remaining_stops;
      taxi.seats_onboard = view.seats_in_use;
      for (const auto& [id, seats] : view.route_request_seats) taxi.seats_of.emplace(id, seats);
      fleet.push_back(std::move(taxi));
    }

    std::unordered_map<trace::RequestId, double> direct;
    for (const trace::Request& request : context.pending) {
      direct.emplace(request.id, oracle.distance(request.pickup, request.dropoff));
    }

    for (std::size_t index : outcome.unserved_request_indices) {
      const trace::Request& request = context.pending[index];
      double best_added = std::numeric_limits<double>::infinity();
      std::size_t best_taxi = 0;
      routing::Route best_route;
      for (std::size_t i = 0; i < fleet.size(); ++i) {
        EnrouteTaxi& taxi = fleet[i];
        const auto insertion = routing::cheapest_insertion(taxi.route, request, oracle);
        if (!insertion.has_value()) continue;
        if (!enroute_capacity_ok(taxi, insertion->route, request)) continue;
        if (!enroute_detours_ok(insertion->route, oracle, direct, theta)) continue;
        // Both sides must agree: the rider's wait within their threshold,
        // the driver's marginal score within theirs.
        const auto metrics = routing::rider_metrics(insertion->route, request.id, oracle);
        if (metrics.wait_km > prefs.passenger_threshold_km) continue;
        const double marginal =
            insertion->added_km - (prefs.alpha + 1.0) * direct.at(request.id);
        if (marginal > prefs.taxi_threshold_score) continue;
        if (insertion->added_km < best_added) {
          best_added = insertion->added_km;
          best_taxi = i;
          best_route = insertion->route;
        }
      }
      if (best_added == std::numeric_limits<double>::infinity()) continue;
      EnrouteTaxi& taxi = fleet[best_taxi];
      taxi.route = std::move(best_route);
      taxi.seats_of.emplace(request.id, request.seats);
      taxi.new_requests.push_back(request.id);
    }

    for (const EnrouteTaxi& taxi : fleet) {
      if (taxi.new_requests.empty()) continue;
      obs::add(obs::Counter::kEnrouteInsertions, taxi.new_requests.size());
      sim::DispatchAssignment assignment;
      assignment.taxi = taxi.taxi.id;
      assignment.requests = taxi.new_requests;
      assignment.route = taxi.route;
      assignments.push_back(std::move(assignment));
    }
  }
  return assignments;
}

}  // namespace o2o::core
