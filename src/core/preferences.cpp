#include "core/preferences.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>
#include <utility>

#include "index/spatial_grid.h"
#include "obs/obs.h"
#include "util/contracts.h"
#include "util/thread_pool.h"

namespace o2o::core {

namespace {

/// Sorts candidate indices by (score, index) and truncates at the dummy
/// (kUnacceptable) and at the optional list cap.
std::vector<int> build_list(const std::vector<double>& scores, std::size_t list_cap) {
  std::vector<int> order;
  order.reserve(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (scores[i] != kUnacceptable) order.push_back(static_cast<int>(i));
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double sa = scores[static_cast<std::size_t>(a)];
    const double sb = scores[static_cast<std::size_t>(b)];
    if (sa != sb) return sa < sb;
    return a < b;
  });
  if (list_cap > 0 && order.size() > list_cap) order.resize(list_cap);
  return order;
}

std::vector<std::size_t> build_ranks(const std::vector<int>& list, std::size_t n) {
  std::vector<std::size_t> ranks(n, PreferenceProfile::kNoRank);
  for (std::size_t pos = 0; pos < list.size(); ++pos) {
    ranks[static_cast<std::size_t>(list[pos])] = pos;
  }
  return ranks;
}

std::vector<double> list_scores(const std::vector<int>& list,
                                const std::vector<double>& scores) {
  std::vector<double> aligned;
  aligned.reserve(list.size());
  for (const int i : list) aligned.push_back(scores[static_cast<std::size_t>(i)]);
  return aligned;
}

}  // namespace

void for_each_row(std::size_t count, const geo::DistanceOracle& oracle,
                  const std::function<void(std::size_t)>& body) {
  // Below this, fan-out overhead dominates the oracle calls saved.
  constexpr std::size_t kSerialCutoff = 16;
  ThreadPool& pool = ThreadPool::shared();
  if (count < kSerialCutoff || pool.worker_count() == 0 || !oracle.capabilities().concurrent_queries) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  pool.parallel_for(0, count, /*grain=*/8, body);
}

PreferenceProfile PreferenceProfile::from_scores(
    std::vector<std::vector<double>> passenger_scores,
    std::vector<std::vector<double>> taxi_scores, std::size_t taxi_count,
    std::size_t list_cap) {
  const std::size_t requests = passenger_scores.size();
  O2O_EXPECTS(taxi_scores.size() == requests);
  for (std::size_t r = 0; r < requests; ++r) {
    O2O_EXPECTS(passenger_scores[r].size() == taxi_count);
    O2O_EXPECTS(taxi_scores[r].size() == taxi_count);
  }

  PreferenceProfile profile;
  profile.request_count_ = requests;
  profile.taxi_count_ = taxi_count;
  profile.passenger_scores_ = std::move(passenger_scores);
  profile.taxi_scores_ = std::move(taxi_scores);

  profile.request_prefs_.resize(requests);
  profile.request_ranks_.resize(requests);
  profile.request_list_scores_.resize(requests);
  for (std::size_t r = 0; r < requests; ++r) {
    profile.request_prefs_[r] = build_list(profile.passenger_scores_[r], list_cap);
    profile.request_ranks_[r] = build_ranks(profile.request_prefs_[r], taxi_count);
    profile.request_list_scores_[r] =
        list_scores(profile.request_prefs_[r], profile.passenger_scores_[r]);
  }

  profile.taxi_prefs_.resize(taxi_count);
  profile.taxi_ranks_.resize(taxi_count);
  profile.taxi_list_scores_.resize(taxi_count);
  std::vector<double> column(requests);
  for (std::size_t t = 0; t < taxi_count; ++t) {
    for (std::size_t r = 0; r < requests; ++r) column[r] = profile.taxi_scores_[r][t];
    profile.taxi_prefs_[t] = build_list(column, list_cap);
    profile.taxi_ranks_[t] = build_ranks(profile.taxi_prefs_[t], requests);
    profile.taxi_list_scores_[t] = list_scores(profile.taxi_prefs_[t], column);
  }
  return profile;
}

PreferenceProfile PreferenceProfile::from_candidates(
    std::vector<std::vector<Candidate>> candidates, std::size_t taxi_count,
    std::size_t list_cap) {
  const std::size_t requests = candidates.size();
  O2O_EXPECTS(requests <= (std::uint64_t{1} << 32));

  PreferenceProfile profile;
  profile.sparse_ = true;
  profile.request_count_ = requests;
  profile.taxi_count_ = taxi_count;
  profile.request_prefs_.resize(requests);
  profile.request_list_scores_.resize(requests);
  profile.taxi_prefs_.resize(taxi_count);
  profile.taxi_list_scores_.resize(taxi_count);

  std::size_t total_pairs = 0;
  for (const auto& row : candidates) total_pairs += row.size();
  profile.pairs_.reserve(total_pairs);

  // Request lists + the pair table. Sorting by (passenger score, taxi)
  // floats acceptable entries to the front, so the cap keeps the best.
  for (std::size_t r = 0; r < requests; ++r) {
    auto& row = candidates[r];
    std::sort(row.begin(), row.end(), [](const Candidate& a, const Candidate& b) {
      if (a.passenger_score != b.passenger_score) return a.passenger_score < b.passenger_score;
      return a.taxi < b.taxi;
    });
    auto& list = profile.request_prefs_[r];
    for (const Candidate& candidate : row) {
      O2O_EXPECTS(candidate.taxi >= 0 &&
                  static_cast<std::size_t>(candidate.taxi) < taxi_count);
      const auto [it, inserted] = profile.pairs_.emplace(
          pair_key(r, static_cast<std::size_t>(candidate.taxi)),
          PairEntry{candidate.passenger_score, candidate.taxi_score, kNoRank, kNoRank});
      O2O_EXPECTS(inserted);  // each (request, taxi) pair scored at most once
      if (candidate.passenger_score != kUnacceptable &&
          (list_cap == 0 || list.size() < list_cap)) {
        it->second.request_rank = list.size();
        list.push_back(candidate.taxi);
        profile.request_list_scores_[r].push_back(candidate.passenger_score);
      }
    }
  }

  // Taxi lists: bucket acceptable candidates per taxi, then order each
  // bucket by (taxi score, request index) — the same strict order the
  // dense path produces.
  std::vector<std::vector<std::pair<double, int>>> buckets(taxi_count);
  for (std::size_t r = 0; r < requests; ++r) {
    for (const Candidate& candidate : candidates[r]) {
      if (candidate.taxi_score != kUnacceptable) {
        buckets[static_cast<std::size_t>(candidate.taxi)].emplace_back(candidate.taxi_score,
                                                                       static_cast<int>(r));
      }
    }
  }
  for (std::size_t t = 0; t < taxi_count; ++t) {
    auto& bucket = buckets[t];
    std::sort(bucket.begin(), bucket.end());
    if (list_cap > 0 && bucket.size() > list_cap) bucket.resize(list_cap);
    auto& list = profile.taxi_prefs_[t];
    auto& list_scores = profile.taxi_list_scores_[t];
    list.reserve(bucket.size());
    list_scores.reserve(bucket.size());
    for (std::size_t pos = 0; pos < bucket.size(); ++pos) {
      const int r = bucket[pos].second;
      list.push_back(r);
      list_scores.push_back(bucket[pos].first);
      profile.pairs_[pair_key(static_cast<std::size_t>(r), t)].taxi_rank = pos;
    }
  }
  return profile;
}

const PreferenceProfile::PairEntry* PreferenceProfile::find_pair(std::size_t r,
                                                                 std::size_t t) const {
  const auto it = pairs_.find(pair_key(r, t));
  return it == pairs_.end() ? nullptr : &it->second;
}

const std::vector<int>& PreferenceProfile::request_list(std::size_t r) const {
  O2O_EXPECTS(r < request_prefs_.size());
  return request_prefs_[r];
}

const std::vector<int>& PreferenceProfile::taxi_list(std::size_t t) const {
  O2O_EXPECTS(t < taxi_prefs_.size());
  return taxi_prefs_[t];
}

std::size_t PreferenceProfile::request_rank(std::size_t r, std::size_t t) const {
  O2O_EXPECTS(r < request_count_);
  O2O_EXPECTS(t < taxi_count_);
  if (!sparse_) return request_ranks_[r][t];
  const PairEntry* entry = find_pair(r, t);
  return entry == nullptr ? kNoRank : entry->request_rank;
}

std::size_t PreferenceProfile::taxi_rank(std::size_t t, std::size_t r) const {
  O2O_EXPECTS(t < taxi_count_);
  O2O_EXPECTS(r < request_count_);
  if (!sparse_) return taxi_ranks_[t][r];
  const PairEntry* entry = find_pair(r, t);
  return entry == nullptr ? kNoRank : entry->taxi_rank;
}

bool PreferenceProfile::acceptable(std::size_t r, std::size_t t) const {
  if (sparse_) {
    O2O_EXPECTS(r < request_count_);
    O2O_EXPECTS(t < taxi_count_);
    const PairEntry* entry = find_pair(r, t);
    return entry != nullptr && entry->request_rank != kNoRank && entry->taxi_rank != kNoRank;
  }
  return request_rank(r, t) != kNoRank && taxi_rank(t, r) != kNoRank;
}

bool PreferenceProfile::request_prefers(std::size_t r, int a, int b) const {
  const std::size_t rank_a =
      a == kDummy ? kNoRank : request_rank(r, static_cast<std::size_t>(a));
  const std::size_t rank_b =
      b == kDummy ? kNoRank : request_rank(r, static_cast<std::size_t>(b));
  return rank_a < rank_b;
}

bool PreferenceProfile::taxi_prefers(std::size_t t, int a, int b) const {
  const std::size_t rank_a = a == kDummy ? kNoRank : taxi_rank(t, static_cast<std::size_t>(a));
  const std::size_t rank_b = b == kDummy ? kNoRank : taxi_rank(t, static_cast<std::size_t>(b));
  return rank_a < rank_b;
}

double PreferenceProfile::passenger_score(std::size_t r, std::size_t t) const {
  O2O_EXPECTS(r < request_count_);
  O2O_EXPECTS(t < taxi_count_);
  if (!sparse_) return passenger_scores_[r][t];
  const PairEntry* entry = find_pair(r, t);
  return entry == nullptr ? kUnacceptable : entry->passenger_score;
}

double PreferenceProfile::taxi_score(std::size_t t, std::size_t r) const {
  O2O_EXPECTS(t < taxi_count_);
  O2O_EXPECTS(r < request_count_);
  if (!sparse_) return taxi_scores_[r][t];
  const PairEntry* entry = find_pair(r, t);
  return entry == nullptr ? kUnacceptable : entry->taxi_score;
}

PreferenceProfile::PairScores PreferenceProfile::pair_scores(std::size_t r,
                                                             std::size_t t) const {
  O2O_EXPECTS(r < request_count_);
  O2O_EXPECTS(t < taxi_count_);
  PairScores scores;
  if (!sparse_) {
    scores.passenger = passenger_scores_[r][t];
    scores.taxi = taxi_scores_[r][t];
    scores.request_listed = request_ranks_[r][t] != kNoRank;
    scores.taxi_listed = taxi_ranks_[t][r] != kNoRank;
    return scores;
  }
  const PairEntry* entry = find_pair(r, t);
  if (entry == nullptr) return scores;
  scores.passenger = entry->passenger_score;
  scores.taxi = entry->taxi_score;
  scores.request_listed = entry->request_rank != kNoRank;
  scores.taxi_listed = entry->taxi_rank != kNoRank;
  return scores;
}

PreferenceProfile restrict_profile(const PreferenceProfile& profile,
                                   std::span<const int> requests,
                                   std::span<const int> taxis) {
  // Global-id -> local-slot scratch; filling it also validates that the
  // spans are strictly ascending and in range.
  std::vector<int> request_slot(profile.request_count(), -1);
  std::vector<int> taxi_slot(profile.taxi_count(), -1);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    O2O_EXPECTS(requests[i] >= 0 &&
                static_cast<std::size_t>(requests[i]) < profile.request_count());
    O2O_EXPECTS(i == 0 || requests[i - 1] < requests[i]);
    request_slot[static_cast<std::size_t>(requests[i])] = static_cast<int>(i);
  }
  for (std::size_t j = 0; j < taxis.size(); ++j) {
    O2O_EXPECTS(taxis[j] >= 0 && static_cast<std::size_t>(taxis[j]) < profile.taxi_count());
    O2O_EXPECTS(j == 0 || taxis[j - 1] < taxis[j]);
    taxi_slot[static_cast<std::size_t>(taxis[j])] = static_cast<int>(j);
  }

  // The restriction *is* the global profile with indices renamed: lists
  // keep their order (a monotone index remap preserves the (score, index)
  // tie-break), ranks are list positions, and a pair's score counts only
  // while it sits on that side's list — a pair the taxi capped off or
  // refused by threshold stays past the dummy here too. So the result is
  // assembled straight from the global lists and their aligned scores, no
  // re-sorting and no per-pair rank/score probes; that assembly cost is
  // what bounds the sharded enumeration path (see core/shard_engine.h).
  //
  // Small restrictions (the common component case) get the dense
  // rank/score arrays so the per-component BreakDispatch loop indexes
  // arrays instead of hashing; big ones keep the sparse representation.
  // Both are invisible to callers (tests/core/shard_engine_test.cpp
  // checks both).
  constexpr std::size_t kDenseCellLimit = std::size_t{1} << 18;
  const bool dense = requests.size() * taxis.size() <= kDenseCellLimit;

  PreferenceProfile sub;
  sub.sparse_ = !dense;
  sub.request_count_ = requests.size();
  sub.taxi_count_ = taxis.size();
  sub.request_prefs_.resize(requests.size());
  sub.request_list_scores_.resize(requests.size());
  sub.taxi_prefs_.resize(taxis.size());
  sub.taxi_list_scores_.resize(taxis.size());
  if (dense) {
    sub.request_ranks_.assign(
        requests.size(),
        std::vector<std::size_t>(taxis.size(), PreferenceProfile::kNoRank));
    sub.taxi_ranks_.assign(
        taxis.size(),
        std::vector<std::size_t>(requests.size(), PreferenceProfile::kNoRank));
    sub.passenger_scores_.assign(requests.size(),
                                 std::vector<double>(taxis.size(), kUnacceptable));
    sub.taxi_scores_.assign(requests.size(),
                            std::vector<double>(taxis.size(), kUnacceptable));
  }

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto r = static_cast<std::size_t>(requests[i]);
    const std::vector<int>& list = profile.request_prefs_[r];
    const std::vector<double>& scores = profile.request_list_scores_[r];
    std::vector<int>& local = sub.request_prefs_[i];
    local.reserve(list.size());
    for (std::size_t pos = 0; pos < list.size(); ++pos) {
      const int slot = taxi_slot[static_cast<std::size_t>(list[pos])];
      O2O_EXPECTS(slot >= 0);  // selection closed under listed pairs
      local.push_back(slot);
      if (dense) {
        sub.request_ranks_[i][static_cast<std::size_t>(slot)] = pos;
        sub.passenger_scores_[i][static_cast<std::size_t>(slot)] = scores[pos];
      }
    }
    sub.request_list_scores_[i] = scores;
  }
  for (std::size_t j = 0; j < taxis.size(); ++j) {
    const auto t = static_cast<std::size_t>(taxis[j]);
    const std::vector<int>& list = profile.taxi_prefs_[t];
    const std::vector<double>& scores = profile.taxi_list_scores_[t];
    std::vector<int>& local = sub.taxi_prefs_[j];
    local.reserve(list.size());
    for (std::size_t pos = 0; pos < list.size(); ++pos) {
      const int slot = request_slot[static_cast<std::size_t>(list[pos])];
      O2O_EXPECTS(slot >= 0);  // selection closed under listed pairs
      local.push_back(slot);
      if (dense) {
        sub.taxi_ranks_[j][static_cast<std::size_t>(slot)] = pos;
        sub.taxi_scores_[static_cast<std::size_t>(slot)][j] = scores[pos];
      }
    }
    sub.taxi_list_scores_[j] = scores;
  }

  if (!dense) {
    std::size_t total_pairs = 0;
    for (const auto& list : sub.request_prefs_) total_pairs += list.size();
    for (const auto& list : sub.taxi_prefs_) total_pairs += list.size();
    sub.pairs_.reserve(total_pairs);
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const std::vector<int>& list = sub.request_prefs_[i];
      const std::vector<double>& scores = sub.request_list_scores_[i];
      for (std::size_t pos = 0; pos < list.size(); ++pos) {
        sub.pairs_.emplace(
            PreferenceProfile::pair_key(i, static_cast<std::size_t>(list[pos])),
            PreferenceProfile::PairEntry{scores[pos], kUnacceptable, pos,
                                         PreferenceProfile::kNoRank});
      }
    }
    for (std::size_t j = 0; j < taxis.size(); ++j) {
      const std::vector<int>& list = sub.taxi_prefs_[j];
      const std::vector<double>& scores = sub.taxi_list_scores_[j];
      for (std::size_t pos = 0; pos < list.size(); ++pos) {
        PreferenceProfile::PairEntry& entry = sub.pairs_[PreferenceProfile::pair_key(
            static_cast<std::size_t>(list[pos]), j)];
        entry.taxi_score = scores[pos];
        entry.taxi_rank = pos;
      }
    }
  }
  return sub;
}

PreferenceProfile build_nonsharing_profile(std::span<const trace::Taxi> taxis,
                                           std::span<const trace::Request> requests,
                                           const geo::DistanceOracle& oracle,
                                           const PreferenceParams& params,
                                           const index::SpatialGrid* taxi_grid) {
  const std::size_t n_requests = requests.size();
  const std::size_t n_taxis = taxis.size();
  obs::StageTimer stage(obs::Stage::kProfileBuild);

  const bool prune = params.spatial_prune &&
                     std::isfinite(params.passenger_threshold_km) && n_taxis > 0;
  if (!prune) {
    std::vector<geo::Point> taxi_locations(n_taxis);
    for (std::size_t t = 0; t < n_taxis; ++t) taxi_locations[t] = taxis[t].location;
    std::vector<std::vector<double>> passenger_scores(n_requests,
                                                      std::vector<double>(n_taxis));
    std::vector<std::vector<double>> taxi_scores(n_requests, std::vector<double>(n_taxis));
    for_each_row(n_requests, oracle, [&](std::size_t r) {
      const trace::Request& request = requests[r];
      const double trip = oracle.distance(request.pickup, request.dropoff);
      // One bulk call per row: D(taxi -> pickup) for every taxi. The
      // network oracle serves the whole row from a single reverse tree
      // rooted at the pickup instead of one forward tree per taxi.
      const std::vector<double> pickups = oracle.distances_to(taxi_locations, request.pickup);
      for (std::size_t t = 0; t < n_taxis; ++t) {
        const trace::Taxi& taxi = taxis[t];
        if (taxi.seats < request.seats) {
          // Not enough seats: the paper places the pair past the dummy on
          // both sides (the request "will put t_i to the end of its
          // preference order"), i.e. it is never matched.
          passenger_scores[r][t] = kUnacceptable;
          taxi_scores[r][t] = kUnacceptable;
          continue;
        }
        const double pickup = pickups[t];
        const double driver = pickup - params.alpha * trip;
        passenger_scores[r][t] =
            pickup <= params.passenger_threshold_km ? pickup : kUnacceptable;
        taxi_scores[r][t] = driver <= params.taxi_threshold_score ? driver : kUnacceptable;
      }
    });
    obs::add(obs::Counter::kPreferencePairs, n_requests * n_taxis);
    obs::gauge_max(obs::Gauge::kProfilePairsPeak, n_requests * n_taxis);
    return PreferenceProfile::from_scores(std::move(passenger_scores),
                                          std::move(taxi_scores), n_taxis, params.list_cap);
  }

  // Sparse path: only taxis inside the passenger-threshold radius can be
  // acceptable to the passenger (every oracle's distance dominates the
  // straight-line distance the grid filters on), and pairs acceptable
  // only to the taxi can never match, so candidate rows from the radius
  // query reproduce the dense matchings exactly.
  std::optional<index::SpatialGrid> local_grid;
  if (taxi_grid == nullptr) {
    const double cell_km = std::clamp(params.passenger_threshold_km / 2.0, 0.25, 8.0);
    local_grid.emplace(taxis, cell_km);
    taxi_grid = &*local_grid;
  }
  O2O_EXPECTS(taxi_grid->size() == n_taxis);

  std::vector<std::vector<PreferenceProfile::Candidate>> rows(n_requests);
  for_each_row(n_requests, oracle, [&](std::size_t r) {
    const trace::Request& request = requests[r];
    const double trip = oracle.distance(request.pickup, request.dropoff);
    std::vector<std::int32_t> nearby =
        taxi_grid->within_radius(request.pickup, params.passenger_threshold_km);
    std::sort(nearby.begin(), nearby.end());
    obs::add(obs::Counter::kGridCandidates, nearby.size());
    obs::add(obs::Counter::kGridCandidatesPruned, n_taxis - nearby.size());
    // Seat-feasible candidates first, then one bulk distance call for the
    // whole row (one reverse tree on the network oracle).
    std::vector<std::int32_t> feasible;
    std::vector<geo::Point> locations;
    feasible.reserve(nearby.size());
    locations.reserve(nearby.size());
    for (const std::int32_t id : nearby) {
      if (taxis[static_cast<std::size_t>(id)].seats < request.seats) continue;
      feasible.push_back(id);
      locations.push_back(taxis[static_cast<std::size_t>(id)].location);
    }
    const std::vector<double> pickups = oracle.distances_to(locations, request.pickup);
    auto& row = rows[r];
    row.reserve(feasible.size());
    for (std::size_t k = 0; k < feasible.size(); ++k) {
      const auto t = static_cast<std::size_t>(feasible[k]);
      const double pickup = pickups[k];
      const double driver = pickup - params.alpha * trip;
      const double passenger_score =
          pickup <= params.passenger_threshold_km ? pickup : kUnacceptable;
      const double taxi_score =
          driver <= params.taxi_threshold_score ? driver : kUnacceptable;
      if (passenger_score == kUnacceptable && taxi_score == kUnacceptable) continue;
      row.push_back({static_cast<int>(t), passenger_score, taxi_score});
    }
    obs::add(obs::Counter::kPreferencePairs, row.size());
  });
  if (obs::tracing_active()) {
    std::size_t pairs = 0;
    for (const auto& row : rows) pairs += row.size();
    obs::gauge_max(obs::Gauge::kProfilePairsPeak, pairs);
  }
  return PreferenceProfile::from_candidates(std::move(rows), n_taxis, params.list_cap);
}

}  // namespace o2o::core
