#include "core/preferences.h"

#include <algorithm>
#include <numeric>

#include "util/contracts.h"

namespace o2o::core {

namespace {

/// Sorts candidate indices by (score, index) and truncates at the dummy
/// (kUnacceptable) and at the optional list cap.
std::vector<int> build_list(const std::vector<double>& scores, std::size_t list_cap) {
  std::vector<int> order;
  order.reserve(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (scores[i] != kUnacceptable) order.push_back(static_cast<int>(i));
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double sa = scores[static_cast<std::size_t>(a)];
    const double sb = scores[static_cast<std::size_t>(b)];
    if (sa != sb) return sa < sb;
    return a < b;
  });
  if (list_cap > 0 && order.size() > list_cap) order.resize(list_cap);
  return order;
}

std::vector<std::size_t> build_ranks(const std::vector<int>& list, std::size_t n) {
  std::vector<std::size_t> ranks(n, PreferenceProfile::kNoRank);
  for (std::size_t pos = 0; pos < list.size(); ++pos) {
    ranks[static_cast<std::size_t>(list[pos])] = pos;
  }
  return ranks;
}

}  // namespace

PreferenceProfile PreferenceProfile::from_scores(
    std::vector<std::vector<double>> passenger_scores,
    std::vector<std::vector<double>> taxi_scores, std::size_t list_cap) {
  const std::size_t requests = passenger_scores.size();
  O2O_EXPECTS(taxi_scores.size() == requests);
  const std::size_t taxis = requests == 0 ? 0 : passenger_scores.front().size();
  for (std::size_t r = 0; r < requests; ++r) {
    O2O_EXPECTS(passenger_scores[r].size() == taxis);
    O2O_EXPECTS(taxi_scores[r].size() == taxis);
  }

  PreferenceProfile profile;
  profile.passenger_scores_ = std::move(passenger_scores);
  profile.taxi_scores_ = std::move(taxi_scores);

  profile.request_prefs_.resize(requests);
  profile.request_ranks_.resize(requests);
  for (std::size_t r = 0; r < requests; ++r) {
    profile.request_prefs_[r] = build_list(profile.passenger_scores_[r], list_cap);
    profile.request_ranks_[r] = build_ranks(profile.request_prefs_[r], taxis);
  }

  profile.taxi_prefs_.resize(taxis);
  profile.taxi_ranks_.resize(taxis);
  std::vector<double> column(requests);
  for (std::size_t t = 0; t < taxis; ++t) {
    for (std::size_t r = 0; r < requests; ++r) column[r] = profile.taxi_scores_[r][t];
    profile.taxi_prefs_[t] = build_list(column, list_cap);
    profile.taxi_ranks_[t] = build_ranks(profile.taxi_prefs_[t], requests);
  }
  return profile;
}

const std::vector<int>& PreferenceProfile::request_list(std::size_t r) const {
  O2O_EXPECTS(r < request_prefs_.size());
  return request_prefs_[r];
}

const std::vector<int>& PreferenceProfile::taxi_list(std::size_t t) const {
  O2O_EXPECTS(t < taxi_prefs_.size());
  return taxi_prefs_[t];
}

std::size_t PreferenceProfile::request_rank(std::size_t r, std::size_t t) const {
  O2O_EXPECTS(r < request_ranks_.size());
  O2O_EXPECTS(t < request_ranks_[r].size());
  return request_ranks_[r][t];
}

std::size_t PreferenceProfile::taxi_rank(std::size_t t, std::size_t r) const {
  O2O_EXPECTS(t < taxi_ranks_.size());
  O2O_EXPECTS(r < taxi_ranks_[t].size());
  return taxi_ranks_[t][r];
}

bool PreferenceProfile::acceptable(std::size_t r, std::size_t t) const {
  return request_rank(r, t) != kNoRank && taxi_rank(t, r) != kNoRank;
}

bool PreferenceProfile::request_prefers(std::size_t r, int a, int b) const {
  const std::size_t rank_a =
      a == kDummy ? kNoRank : request_rank(r, static_cast<std::size_t>(a));
  const std::size_t rank_b =
      b == kDummy ? kNoRank : request_rank(r, static_cast<std::size_t>(b));
  return rank_a < rank_b;
}

bool PreferenceProfile::taxi_prefers(std::size_t t, int a, int b) const {
  const std::size_t rank_a = a == kDummy ? kNoRank : taxi_rank(t, static_cast<std::size_t>(a));
  const std::size_t rank_b = b == kDummy ? kNoRank : taxi_rank(t, static_cast<std::size_t>(b));
  return rank_a < rank_b;
}

double PreferenceProfile::passenger_score(std::size_t r, std::size_t t) const {
  O2O_EXPECTS(r < passenger_scores_.size());
  O2O_EXPECTS(t < passenger_scores_[r].size());
  return passenger_scores_[r][t];
}

double PreferenceProfile::taxi_score(std::size_t t, std::size_t r) const {
  O2O_EXPECTS(r < taxi_scores_.size());
  O2O_EXPECTS(t < taxi_scores_[r].size());
  return taxi_scores_[r][t];
}

PreferenceProfile build_nonsharing_profile(std::span<const trace::Taxi> taxis,
                                           std::span<const trace::Request> requests,
                                           const geo::DistanceOracle& oracle,
                                           const PreferenceParams& params) {
  const std::size_t n_requests = requests.size();
  const std::size_t n_taxis = taxis.size();
  std::vector<std::vector<double>> passenger_scores(n_requests,
                                                    std::vector<double>(n_taxis));
  std::vector<std::vector<double>> taxi_scores(n_requests, std::vector<double>(n_taxis));
  for (std::size_t r = 0; r < n_requests; ++r) {
    const trace::Request& request = requests[r];
    const double trip = oracle.distance(request.pickup, request.dropoff);
    for (std::size_t t = 0; t < n_taxis; ++t) {
      const trace::Taxi& taxi = taxis[t];
      if (taxi.seats < request.seats) {
        // Not enough seats: the paper places the pair past the dummy on
        // both sides (the request "will put t_i to the end of its
        // preference order"), i.e. it is never matched.
        passenger_scores[r][t] = kUnacceptable;
        taxi_scores[r][t] = kUnacceptable;
        continue;
      }
      const double pickup = oracle.distance(taxi.location, request.pickup);
      const double driver = pickup - params.alpha * trip;
      passenger_scores[r][t] =
          pickup <= params.passenger_threshold_km ? pickup : kUnacceptable;
      taxi_scores[r][t] = driver <= params.taxi_threshold_score ? driver : kUnacceptable;
    }
  }
  return PreferenceProfile::from_scores(std::move(passenger_scores), std::move(taxi_scores),
                                        params.list_cap);
}

}  // namespace o2o::core
