#include "core/all_stable.h"

#include <set>

#include "obs/obs.h"
#include "util/contracts.h"

namespace o2o::core {

std::optional<Matching> break_dispatch(const PreferenceProfile& profile,
                                       const Matching& schedule, std::size_t request) {
  O2O_EXPECTS(request < profile.request_count());
  O2O_EXPECTS(is_valid(profile, schedule));

  const int t_star_signed = schedule.request_to_taxi[request];
  if (t_star_signed == kDummy) return std::nullopt;  // Rule 3
  const auto t_star = static_cast<std::size_t>(t_star_signed);

  std::vector<int> request_match = schedule.request_to_taxi;
  std::vector<int> taxi_match = schedule.taxi_to_request;
  request_match[request] = kDummy;
  taxi_match[t_star] = kDummy;

  // The cascade is a single chain: exactly one request is free at a time.
  std::size_t current = request;
  std::size_t next = profile.request_rank(request, t_star) + 1;

  while (true) {
    const std::vector<int>& list = profile.request_list(current);
    bool chained = false;
    for (; next < list.size(); ++next) {
      const auto taxi = static_cast<std::size_t>(list[next]);
      const int incumbent = taxi_match[taxi];
      bool accepts;
      if (taxi == t_star) {
        // Rule 1: the freed taxi holds out for a request it strictly
        // prefers over the broken one; anything else would recreate the
        // blocking pair (r_j, t*).
        accepts = profile.taxi_prefers(taxi, static_cast<int>(current),
                                       static_cast<int>(request));
      } else {
        accepts = profile.taxi_prefers(taxi, static_cast<int>(current), incumbent);
      }
      if (!accepts) continue;

      request_match[current] = static_cast<int>(taxi);
      taxi_match[taxi] = static_cast<int>(current);
      if (taxi == t_star) {
        // Rule 1 satisfied: the chain closes on the freed taxi.
        Matching result = make_matching(std::move(request_match), profile.taxi_count());
        O2O_ENSURES(is_stable(profile, result));
        return result;
      }
      if (incumbent == kDummy) {
        // A previously undispatched taxi absorbed the chain, leaving t*
        // free: (r_j, t*) would block, so the break is unsuccessful
        // (Theorem 3, termination case (i)).
        return std::nullopt;
      }
      if (static_cast<std::size_t>(incumbent) < request) return std::nullopt;  // Rule 2
      current = static_cast<std::size_t>(incumbent);
      request_match[current] = kDummy;
      next = profile.request_rank(current, taxi) + 1;
      chained = true;
      break;
    }
    if (!chained) {
      // `current` exhausted its list (re-matched to the dummy): t* stays
      // undispatched, so no stable schedule results (case (i)).
      return std::nullopt;
    }
  }
}

namespace {

struct Enumerator {
  const PreferenceProfile& profile;
  const AllStableOptions& options;
  AllStableResult result;
  std::set<std::vector<int>> seen;
  std::uint64_t break_attempts = 0;

  bool full() const {
    return options.max_matchings > 0 && result.matchings.size() >= options.max_matchings;
  }

  void recurse(const Matching& schedule) {
    for (std::size_t j = 0; j < profile.request_count(); ++j) {
      if (full()) {
        result.truncated = true;
        return;
      }
      ++break_attempts;
      auto next = break_dispatch(profile, schedule, j);
      if (!next.has_value()) continue;
      ++result.break_successes;
      // Theorem 4 says every schedule is produced exactly once; the seen
      // set makes the output duplicate-free regardless, and tests compare
      // break_successes against the output size to validate the theorem.
      if (seen.insert(next->request_to_taxi).second) {
        // Recurse on the local copy: result.matchings may reallocate
        // during the recursion, so a reference into it would dangle.
        result.matchings.push_back(*next);
        recurse(*next);
      }
    }
  }
};

}  // namespace

AllStableResult enumerate_all_stable(const PreferenceProfile& profile,
                                     const AllStableOptions& options) {
  Enumerator enumerator{profile, options, {}, {}, 0};
  const Matching passenger_optimal = gale_shapley_requests(profile);
  enumerator.seen.insert(passenger_optimal.request_to_taxi);
  enumerator.result.matchings.push_back(passenger_optimal);
  {
    // The timer starts after Algorithm 1 so kBreakDispatch and
    // kStableMatching stay disjoint stages.
    obs::StageTimer timer(obs::Stage::kBreakDispatch);
    // recurse takes the local copy: result.matchings may reallocate while
    // the recursion appends, so references into it would dangle.
    if (!enumerator.full()) enumerator.recurse(passenger_optimal);
  }
  obs::add(obs::Counter::kBreakAttempts, enumerator.break_attempts);
  obs::add(obs::Counter::kBreakSuccesses, enumerator.result.break_successes);
  return std::move(enumerator.result);
}

std::vector<Matching> brute_force_all_stable(const PreferenceProfile& profile) {
  O2O_EXPECTS(profile.request_count() <= 7);
  std::vector<Matching> stable;
  std::vector<int> assignment(profile.request_count(), kDummy);
  std::vector<bool> taxi_used(profile.taxi_count(), false);

  const auto recurse = [&](auto&& self, std::size_t r) -> void {
    if (r == profile.request_count()) {
      Matching candidate = make_matching(assignment, profile.taxi_count());
      if (is_stable(profile, candidate)) stable.push_back(std::move(candidate));
      return;
    }
    assignment[r] = kDummy;
    self(self, r + 1);
    for (std::size_t t = 0; t < profile.taxi_count(); ++t) {
      if (taxi_used[t] || !profile.acceptable(r, t)) continue;
      taxi_used[t] = true;
      assignment[r] = static_cast<int>(t);
      self(self, r + 1);
      assignment[r] = kDummy;
      taxi_used[t] = false;
    }
  };
  recurse(recurse, 0);
  return stable;
}

}  // namespace o2o::core
