// Preference construction (Section IV-A of the paper).
//
// Passenger side: request r_j ranks taxis by the pick-up distance
// D(t_i, r_j^s) -- nearer is better. Taxi side: driver t_i ranks requests
// by D(t_i, r_j^s) - α · D(r_j^s, r_j^d) -- the approach expense net of
// the (fare-proportional) trip pay-off. Each side's list carries exactly
// one *dummy entry* (Theorem 1): scores beyond a reservation threshold
// fall past the dummy and are unacceptable, which is how the model
// expresses "no dispatch" / "no service" and handles |R| != |T|.
//
// PreferenceProfile is deliberately agnostic of geometry: it is built
// from score matrices (dense) or per-request candidate rows (sparse), so
// the sharing dispatcher reuses it for packed super-requests with the
// D_ck(...) score definitions.
//
// The sparse representation stores only scored (request, taxi) pairs —
// preference lists plus a hash-based rank/score lookup — instead of the
// |R|×|T| matrices. With a finite passenger threshold, candidate rows
// come from a SpatialGrid radius query, so construction cost scales with
// the number of nearby taxis rather than the fleet size. Pairs beyond
// the passenger threshold can never be matched (the request ranks them
// past its dummy), and dropping them preserves the relative order of
// every taxi list, so both representations yield identical matchings.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <unordered_map>
#include <vector>

#include "geo/distance_oracle.h"
#include "trace/fleet.h"
#include "trace/request.h"

namespace o2o::index {
class SpatialGrid;
}  // namespace o2o::index

namespace o2o::core {

inline constexpr double kUnacceptable = std::numeric_limits<double>::infinity();
inline constexpr int kDummy = -1;  ///< partner index meaning "no dispatch"

/// Model coefficients and reservation thresholds.
struct PreferenceParams {
  double alpha = 1.0;  ///< taxi expense/pay-off trade-off (α)
  double beta = 1.0;   ///< sharing wait/detour trade-off (β)
  /// Dummy position on the passenger side: taxis with pick-up distance
  /// beyond this are worse than no dispatch.
  double passenger_threshold_km = std::numeric_limits<double>::infinity();
  /// Dummy position on the taxi side: requests with score
  /// D(t, r.s) - α D(r.s, r.d) above this are worse than no service.
  double taxi_threshold_score = std::numeric_limits<double>::infinity();
  /// Optional ablation knob: keep only the best `list_cap` entries of
  /// every preference list (0 = full lists).
  std::size_t list_cap = 0;
  /// When the passenger threshold is finite, score only taxis inside a
  /// spatial-grid radius query instead of all |R|×|T| pairs. Produces
  /// identical matchings; set to false to force the dense path.
  bool spatial_prune = true;
};

/// Strict, truncated preference lists plus O(1) rank lookup. Row r /
/// column t of the score matrices corresponds to request r and taxi t
/// (or packed super-request r in the sharing case).
class PreferenceProfile {
 public:
  /// One scored (request, taxi) pair of a sparse candidate row. Either
  /// score may be kUnacceptable, but a pair unacceptable on both sides
  /// should simply be omitted.
  struct Candidate {
    int taxi = -1;
    double passenger_score = kUnacceptable;
    double taxi_score = kUnacceptable;
  };

  /// Builds lists from dense score matrices (lower score = more
  /// preferred; kUnacceptable = past the dummy). Ties break toward the
  /// lower index, making all orders strict and runs deterministic.
  /// `taxi_count` is explicit so a zero-request frame still reports the
  /// live fleet size.
  static PreferenceProfile from_scores(std::vector<std::vector<double>> passenger_scores,
                                       std::vector<std::vector<double>> taxi_scores,
                                       std::size_t taxi_count, std::size_t list_cap = 0);

  /// Builds a sparse profile from per-request candidate rows. Each
  /// (request, taxi) pair may appear at most once; unlisted pairs are
  /// unacceptable on both sides. Same ordering and tie-breaking rules as
  /// from_scores.
  static PreferenceProfile from_candidates(std::vector<std::vector<Candidate>> candidates,
                                           std::size_t taxi_count, std::size_t list_cap = 0);

  std::size_t request_count() const noexcept { return request_count_; }
  std::size_t taxi_count() const noexcept { return taxi_count_; }
  /// Whether this profile uses the sparse (hash-backed) representation.
  bool sparse() const noexcept { return sparse_; }

  /// Request r's taxi list, most preferred first, truncated at the dummy.
  const std::vector<int>& request_list(std::size_t r) const;
  /// Taxi t's request list, most preferred first, truncated at the dummy.
  const std::vector<int>& taxi_list(std::size_t t) const;

  /// Rank of taxi t in r's list (0 = best); SIZE_MAX when unacceptable.
  std::size_t request_rank(std::size_t r, std::size_t t) const;
  /// Rank of request r in t's list; SIZE_MAX when unacceptable.
  std::size_t taxi_rank(std::size_t t, std::size_t r) const;

  /// Mutual acceptability (both sides prefer each other over the dummy).
  bool acceptable(std::size_t r, std::size_t t) const;

  /// True iff r strictly prefers taxi a over taxi b (kDummy allowed on
  /// either side; any acceptable taxi beats the dummy).
  bool request_prefers(std::size_t r, int a, int b) const;
  /// True iff t strictly prefers request a over request b.
  bool taxi_prefers(std::size_t t, int a, int b) const;

  /// Raw scores (kUnacceptable past the dummy), for schedule evaluation.
  /// In sparse mode, unlisted pairs report kUnacceptable.
  double passenger_score(std::size_t r, std::size_t t) const;
  double taxi_score(std::size_t t, std::size_t r) const;

  /// Everything about one (request, taxi) pair in a single lookup — one
  /// hash probe in sparse mode instead of one per accessor. The batched
  /// form keeps restrict_profile off the per-accessor probes on the
  /// sharded hot path.
  struct PairScores {
    double passenger = kUnacceptable;
    double taxi = kUnacceptable;
    bool request_listed = false;  ///< t appears on r's list
    bool taxi_listed = false;     ///< r appears on t's list
  };
  PairScores pair_scores(std::size_t r, std::size_t t) const;

  static constexpr std::size_t kNoRank = std::numeric_limits<std::size_t>::max();

 private:
  friend PreferenceProfile restrict_profile(const PreferenceProfile& profile,
                                            std::span<const int> requests,
                                            std::span<const int> taxis);

  struct PairEntry {
    double passenger_score = kUnacceptable;
    double taxi_score = kUnacceptable;
    std::size_t request_rank = kNoRank;
    std::size_t taxi_rank = kNoRank;
  };

  static std::uint64_t pair_key(std::size_t r, std::size_t t) noexcept {
    return (static_cast<std::uint64_t>(r) << 32) | static_cast<std::uint64_t>(t);
  }
  const PairEntry* find_pair(std::size_t r, std::size_t t) const;

  bool sparse_ = false;
  std::size_t request_count_ = 0;
  std::size_t taxi_count_ = 0;
  std::vector<std::vector<int>> request_prefs_;
  std::vector<std::vector<int>> taxi_prefs_;
  // Scores aligned with the lists: request_list_scores_[r][k] is the
  // passenger score of request_prefs_[r][k]; taxi_list_scores_[t][k] the
  // taxi score of taxi_prefs_[t][k]. Restriction to a component is the
  // global profile with indices renamed (see restrict_profile), so these
  // let it be assembled list-by-list with no re-sorting and no per-pair
  // rank/score lookups — the cost that would otherwise dominate the
  // sharded enumeration path.
  std::vector<std::vector<double>> request_list_scores_;
  std::vector<std::vector<double>> taxi_list_scores_;
  // Dense storage (array-backed rank/score lookup).
  std::vector<std::vector<std::size_t>> request_ranks_;  // [r][t]
  std::vector<std::vector<std::size_t>> taxi_ranks_;     // [t][r]
  std::vector<std::vector<double>> passenger_scores_;    // [r][t]
  std::vector<std::vector<double>> taxi_scores_;         // [r][t]
  // Sparse storage: (r, t) -> ranks and scores for listed pairs only.
  std::unordered_map<std::uint64_t, PairEntry> pairs_;
};

/// Non-sharing profile straight from geometry (Section IV-A): passenger
/// score D(t, r.s), taxi score D(t, r.s) - α D(r.s, r.d); seat-infeasible
/// pairs are unacceptable on both sides (the paper pushes them past the
/// dummy).
///
/// With `params.spatial_prune` and a finite passenger threshold the
/// profile is built sparsely from a grid radius query. `taxi_grid`, when
/// given, must be keyed by position in `taxis` (see the SpatialGrid span
/// constructor); when null a local grid is built on the fly.
PreferenceProfile build_nonsharing_profile(std::span<const trace::Taxi> taxis,
                                           std::span<const trace::Request> requests,
                                           const geo::DistanceOracle& oracle,
                                           const PreferenceParams& params,
                                           const index::SpatialGrid* taxi_grid = nullptr);

/// The profile restricted to `requests` × `taxis` (ascending global
/// indices), with both sides remapped to local positions. Every listed
/// pair of a kept request or taxi must stay inside the selection — true
/// by construction for connected components of the candidate graph (see
/// core/shard_engine.h), and asserted. List orders, ranks and
/// acceptability are preserved exactly: the restriction's lists are the
/// global lists with indices renamed, so any matching of the restriction
/// maps back to a matching of the full profile with identical stability
/// structure.
PreferenceProfile restrict_profile(const PreferenceProfile& profile,
                                   std::span<const int> requests,
                                   std::span<const int> taxis);

/// Runs body(i) for every i in [0, count) — on the shared ThreadPool when
/// `oracle` allows concurrent queries and the range is large enough to pay
/// for the fan-out, serially otherwise. Iterations must be independent and
/// write only disjoint, preallocated slots, which also keeps the parallel
/// schedule deterministic.
void for_each_row(std::size_t count, const geo::DistanceOracle& oracle,
                  const std::function<void(std::size_t)>& body);

}  // namespace o2o::core
