// Preference construction (Section IV-A of the paper).
//
// Passenger side: request r_j ranks taxis by the pick-up distance
// D(t_i, r_j^s) -- nearer is better. Taxi side: driver t_i ranks requests
// by D(t_i, r_j^s) - α · D(r_j^s, r_j^d) -- the approach expense net of
// the (fare-proportional) trip pay-off. Each side's list carries exactly
// one *dummy entry* (Theorem 1): scores beyond a reservation threshold
// fall past the dummy and are unacceptable, which is how the model
// expresses "no dispatch" / "no service" and handles |R| != |T|.
//
// PreferenceProfile is deliberately agnostic of geometry: it is built
// from score matrices, so the sharing dispatcher reuses it for packed
// super-requests with the D_ck(...) score definitions.
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "geo/distance_oracle.h"
#include "trace/fleet.h"
#include "trace/request.h"

namespace o2o::core {

inline constexpr double kUnacceptable = std::numeric_limits<double>::infinity();
inline constexpr int kDummy = -1;  ///< partner index meaning "no dispatch"

/// Model coefficients and reservation thresholds.
struct PreferenceParams {
  double alpha = 1.0;  ///< taxi expense/pay-off trade-off (α)
  double beta = 1.0;   ///< sharing wait/detour trade-off (β)
  /// Dummy position on the passenger side: taxis with pick-up distance
  /// beyond this are worse than no dispatch.
  double passenger_threshold_km = std::numeric_limits<double>::infinity();
  /// Dummy position on the taxi side: requests with score
  /// D(t, r.s) - α D(r.s, r.d) above this are worse than no service.
  double taxi_threshold_score = std::numeric_limits<double>::infinity();
  /// Optional ablation knob: keep only the best `list_cap` entries of
  /// every preference list (0 = full lists).
  std::size_t list_cap = 0;
};

/// Strict, truncated preference lists plus O(1) rank lookup. Row r /
/// column t of the score matrices corresponds to request r and taxi t
/// (or packed super-request r in the sharing case).
class PreferenceProfile {
 public:
  /// Builds lists from score matrices (lower score = more preferred;
  /// kUnacceptable = past the dummy). Ties break toward the lower index,
  /// making all orders strict and runs deterministic.
  static PreferenceProfile from_scores(std::vector<std::vector<double>> passenger_scores,
                                       std::vector<std::vector<double>> taxi_scores,
                                       std::size_t list_cap = 0);

  std::size_t request_count() const noexcept { return request_prefs_.size(); }
  std::size_t taxi_count() const noexcept { return taxi_prefs_.size(); }

  /// Request r's taxi list, most preferred first, truncated at the dummy.
  const std::vector<int>& request_list(std::size_t r) const;
  /// Taxi t's request list, most preferred first, truncated at the dummy.
  const std::vector<int>& taxi_list(std::size_t t) const;

  /// Rank of taxi t in r's list (0 = best); SIZE_MAX when unacceptable.
  std::size_t request_rank(std::size_t r, std::size_t t) const;
  /// Rank of request r in t's list; SIZE_MAX when unacceptable.
  std::size_t taxi_rank(std::size_t t, std::size_t r) const;

  /// Mutual acceptability (both sides prefer each other over the dummy).
  bool acceptable(std::size_t r, std::size_t t) const;

  /// True iff r strictly prefers taxi a over taxi b (kDummy allowed on
  /// either side; any acceptable taxi beats the dummy).
  bool request_prefers(std::size_t r, int a, int b) const;
  /// True iff t strictly prefers request a over request b.
  bool taxi_prefers(std::size_t t, int a, int b) const;

  /// Raw scores (kUnacceptable past the dummy), for schedule evaluation.
  double passenger_score(std::size_t r, std::size_t t) const;
  double taxi_score(std::size_t t, std::size_t r) const;

  static constexpr std::size_t kNoRank = std::numeric_limits<std::size_t>::max();

 private:
  std::vector<std::vector<int>> request_prefs_;
  std::vector<std::vector<int>> taxi_prefs_;
  std::vector<std::vector<std::size_t>> request_ranks_;  // [r][t]
  std::vector<std::vector<std::size_t>> taxi_ranks_;     // [t][r]
  std::vector<std::vector<double>> passenger_scores_;    // [r][t]
  std::vector<std::vector<double>> taxi_scores_;         // [r][t]
};

/// Non-sharing profile straight from geometry (Section IV-A): passenger
/// score D(t, r.s), taxi score D(t, r.s) - α D(r.s, r.d); seat-infeasible
/// pairs are unacceptable on both sides (the paper pushes them past the
/// dummy).
PreferenceProfile build_nonsharing_profile(std::span<const trace::Taxi> taxis,
                                           std::span<const trace::Request> requests,
                                           const geo::DistanceOracle& oracle,
                                           const PreferenceParams& params);

}  // namespace o2o::core
