// Algorithm 2 of the paper: enumerate all stable taxi dispatch schedules
// by recursively breaking the passenger-optimal matching.
//
// BreakDispatch(S, r_j) detaches r_j from its taxi t* = S(r_j) and lets
// r_j propose onward down its list, cascading refusals, under:
//   Rule 1 (correctness)  -- success only if t* ends up dispatched to a
//     request it strictly prefers over r_j (Theorem 3);
//   Rule 2 (no redundancy) -- the cascade may only involve requests with
//     index >= j; touching a smaller index aborts (Theorem 4);
//   Rule 3 (pruning)      -- never break an unserved request (Theorem 2:
//     a request unserved in the passenger-optimal schedule is unserved in
//     every stable schedule).
//
// `enumerate_all_stable` also exposes the raw success count so tests can
// validate Theorem 4's "each schedule obtained exactly once".
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/stable_matching.h"

namespace o2o::core {

/// One BreakDispatch step (exposed for unit tests and worked examples).
/// Returns the schedule obtained by breaking r_j's match in `schedule`,
/// or nullopt when BreakDispatch is unsuccessful under Rules 1-3.
std::optional<Matching> break_dispatch(const PreferenceProfile& profile,
                                       const Matching& schedule, std::size_t request);

struct AllStableOptions {
  /// Safety valve: stop after this many schedules (the lattice can be
  /// exponential). 0 = unlimited.
  std::size_t max_matchings = 0;
};

struct AllStableResult {
  std::vector<Matching> matchings;   ///< passenger-optimal first
  std::size_t break_successes = 0;   ///< successful BreakDispatch calls
  bool truncated = false;            ///< hit max_matchings
};

/// Algorithm 2: all stable schedules, starting from Algorithm 1's
/// passenger-optimal one.
AllStableResult enumerate_all_stable(const PreferenceProfile& profile,
                                     const AllStableOptions& options = {});

/// Exhaustive reference: every injective (partial) assignment filtered by
/// Definition 1. Exponential; requires request_count <= 7.
std::vector<Matching> brute_force_all_stable(const PreferenceProfile& profile);

}  // namespace o2o::core
