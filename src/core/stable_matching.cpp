#include "core/stable_matching.h"

#include <algorithm>
#include <numeric>

#include "obs/obs.h"
#include "util/contracts.h"

namespace o2o::core {

std::size_t Matching::matched_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(request_to_taxi.begin(), request_to_taxi.end(),
                    [](int t) { return t != kDummy; }));
}

Matching make_matching(std::vector<int> request_to_taxi, std::size_t taxi_count) {
  Matching matching;
  matching.taxi_to_request.assign(taxi_count, kDummy);
  for (std::size_t r = 0; r < request_to_taxi.size(); ++r) {
    const int t = request_to_taxi[r];
    if (t == kDummy) continue;
    O2O_EXPECTS(t >= 0 && static_cast<std::size_t>(t) < taxi_count);
    O2O_EXPECTS(matching.taxi_to_request[static_cast<std::size_t>(t)] == kDummy);
    matching.taxi_to_request[static_cast<std::size_t>(t)] = static_cast<int>(r);
  }
  matching.request_to_taxi = std::move(request_to_taxi);
  return matching;
}

bool is_valid(const PreferenceProfile& profile, const Matching& matching) {
  if (matching.request_to_taxi.size() != profile.request_count()) return false;
  if (matching.taxi_to_request.size() != profile.taxi_count()) return false;
  std::vector<bool> taxi_used(profile.taxi_count(), false);
  for (std::size_t r = 0; r < matching.request_to_taxi.size(); ++r) {
    const int t = matching.request_to_taxi[r];
    if (t == kDummy) continue;
    if (t < 0 || static_cast<std::size_t>(t) >= profile.taxi_count()) return false;
    if (taxi_used[static_cast<std::size_t>(t)]) return false;
    taxi_used[static_cast<std::size_t>(t)] = true;
    if (matching.taxi_to_request[static_cast<std::size_t>(t)] != static_cast<int>(r)) {
      return false;
    }
    if (!profile.acceptable(r, static_cast<std::size_t>(t))) return false;
  }
  for (std::size_t t = 0; t < matching.taxi_to_request.size(); ++t) {
    const int r = matching.taxi_to_request[t];
    if (r == kDummy) continue;
    if (r < 0 || static_cast<std::size_t>(r) >= profile.request_count()) return false;
    if (matching.request_to_taxi[static_cast<std::size_t>(r)] != static_cast<int>(t)) {
      return false;
    }
  }
  return true;
}

std::vector<std::pair<std::size_t, std::size_t>> blocking_pairs(
    const PreferenceProfile& profile, const Matching& matching) {
  // Every mutually acceptable (r, t) has t on r's candidate list, so
  // walking the request lists covers every possible blocking pair without
  // touching the |R|×|T| rectangle. Each row is collected then sorted by
  // taxi index, reproducing the dense scan's (r, t) output order.
  std::vector<std::pair<std::size_t, std::size_t>> blocking;
  std::vector<std::size_t> row;
  for (std::size_t r = 0; r < profile.request_count(); ++r) {
    row.clear();
    for (const int taxi : profile.request_list(r)) {
      const auto t = static_cast<std::size_t>(taxi);
      if (!profile.acceptable(r, t)) continue;
      // Both the request and the taxi would leave their current partner
      // (possibly the dummy, which any acceptable partner beats) for each
      // other: Definition 1 is violated.
      const bool request_wants = profile.request_prefers(r, taxi, matching.request_to_taxi[r]);
      const bool taxi_wants =
          profile.taxi_prefers(t, static_cast<int>(r), matching.taxi_to_request[t]);
      if (request_wants && taxi_wants) row.push_back(t);
    }
    std::sort(row.begin(), row.end());
    for (const std::size_t t : row) blocking.emplace_back(r, t);
  }
  return blocking;
}

bool is_stable(const PreferenceProfile& profile, const Matching& matching) {
  return is_valid(profile, matching) && blocking_pairs(profile, matching).empty();
}

namespace {

/// Deferred acceptance restricted to the given proposers, writing into
/// caller-owned (possibly shared, see the header contract) match arrays.
/// `proposer_list` / `receiver_prefers` abstract which side proposes so
/// both directions share one implementation.
template <typename ListFn, typename PrefersFn>
void deferred_acceptance(std::span<const int> proposers, std::span<int> proposer_match,
                         std::span<int> receiver_match, std::span<std::size_t> next_choice,
                         ListFn&& list_of, PrefersFn&& receiver_prefers) {
  std::vector<std::size_t> free_stack;
  free_stack.reserve(proposers.size());
  // Reverse order so proposals happen in index order (matching the
  // paper's "each passenger request proposes in turn"). Proposers already
  // holding a receiver (validated warm-start seeds) are not free.
  for (std::size_t i = proposers.size(); i-- > 0;) {
    const auto p = static_cast<std::size_t>(proposers[i]);
    if (proposer_match[p] == kDummy) free_stack.push_back(p);
  }

  // Counted locally and published once: the inner loop stays free of
  // even the disabled-tracing null check.
  std::uint64_t proposals = 0;
  std::uint64_t rejections = 0;

  while (!free_stack.empty()) {
    const std::size_t proposer = free_stack.back();
    const auto& list = list_of(proposer);
    if (next_choice[proposer] >= list.size()) {
      // Preference list exhausted: the next entry is the dummy; the
      // proposer stays unserved (sub-algorithm Proposal, lines 6-7).
      free_stack.pop_back();
      continue;
    }
    const auto receiver = static_cast<std::size_t>(list[next_choice[proposer]]);
    ++next_choice[proposer];
    ++proposals;
    // Sub-algorithm Refusal: the receiver keeps the preferred proposer.
    // An unacceptable proposer is never in `list` on the proposer side,
    // but the receiver may still find the proposer unacceptable when the
    // receiver's own threshold is tighter -- receiver_prefers handles
    // that by ranking unacceptable proposers below the dummy.
    const int incumbent = receiver_match[receiver];
    if (receiver_prefers(receiver, static_cast<int>(proposer), incumbent)) {
      receiver_match[receiver] = static_cast<int>(proposer);
      proposer_match[proposer] = static_cast<int>(receiver);
      free_stack.pop_back();
      if (incumbent != kDummy) {
        proposer_match[static_cast<std::size_t>(incumbent)] = kDummy;
        free_stack.push_back(static_cast<std::size_t>(incumbent));
        ++rejections;  // incumbent displaced
      }
    } else {
      ++rejections;  // proposal refused outright
    }
  }
  obs::add(obs::Counter::kProposals, proposals);
  obs::add(obs::Counter::kRejections, rejections);
}

/// Sequential warm-seed validation (header contract in detail::). The
/// certificate scan may only cite holds installed earlier, which is what
/// makes the installed state a legal DA execution prefix: replay the
/// validated proposers in validation order — each walks its list, every
/// prefix receiver rejects it (unacceptable, or holding an
/// earlier-validated proposer it prefers), and its seed receiver is free
/// and accepts. A second sweep picks up seeds whose certificates needed
/// holds installed later in the first sweep; further sweeps buy nearly
/// nothing in practice, so two is the cap.
template <typename ListFn, typename PrefersFn>
std::size_t validate_warm_seeds(std::span<const int> proposers, std::span<const int> seed,
                                std::span<int> proposer_match,
                                std::span<int> receiver_match,
                                std::span<std::size_t> next_choice, ListFn&& list_of,
                                PrefersFn&& receiver_prefers) {
  constexpr int kValidationSweeps = 2;
  std::size_t validated = 0;
  for (int sweep = 0; sweep < kValidationSweeps; ++sweep) {
    std::size_t gained = 0;
    for (const int p : proposers) {
      const auto u = static_cast<std::size_t>(p);
      if (proposer_match[u] != kDummy) continue;  // installed in an earlier sweep
      const int hinted = seed[u];
      if (hinted == kDummy) continue;
      const auto& list = list_of(u);
      std::size_t pos = list.size();
      for (std::size_t k = 0; k < list.size(); ++k) {
        if (list[k] == hinted) {
          pos = k;
          break;
        }
      }
      if (pos == list.size()) continue;  // hinted receiver not listed this frame
      const auto r = static_cast<std::size_t>(hinted);
      if (receiver_match[r] != kDummy) continue;  // claimed by an earlier seed
      if (!receiver_prefers(r, p, kDummy)) continue;  // receiver would refuse outright
      bool certified = true;
      for (std::size_t k = 0; k < pos && certified; ++k) {
        const auto v = static_cast<std::size_t>(list[k]);
        // v must certifiably reject u: u unacceptable to v, or v already
        // holds a validated proposer it strictly prefers over u.
        if (!receiver_prefers(v, p, kDummy)) continue;
        const int hold = receiver_match[v];
        if (hold == kDummy || receiver_prefers(v, p, hold)) certified = false;
      }
      if (!certified) continue;
      proposer_match[u] = hinted;
      receiver_match[r] = p;
      next_choice[u] = pos + 1;
      ++gained;
    }
    validated += gained;
    if (gained == 0) break;
  }
  return validated;
}

}  // namespace

namespace detail {

void deferred_acceptance_requests(const PreferenceProfile& profile,
                                  std::span<const int> requests,
                                  std::span<int> request_match, std::span<int> taxi_match,
                                  std::span<std::size_t> next_choice) {
  deferred_acceptance(
      requests, request_match, taxi_match, next_choice,
      [&](std::size_t r) -> const std::vector<int>& { return profile.request_list(r); },
      [&](std::size_t t, int candidate, int incumbent) {
        return profile.taxi_prefers(t, candidate, incumbent);
      });
}

void deferred_acceptance_taxis(const PreferenceProfile& profile,
                               std::span<const int> taxis, std::span<int> taxi_match,
                               std::span<int> request_match,
                               std::span<std::size_t> next_choice) {
  deferred_acceptance(
      taxis, taxi_match, request_match, next_choice,
      [&](std::size_t t) -> const std::vector<int>& { return profile.taxi_list(t); },
      [&](std::size_t r, int candidate, int incumbent) {
        return profile.request_prefers(r, candidate, incumbent);
      });
}

std::size_t warm_seed_requests(const PreferenceProfile& profile,
                               std::span<const int> requests, std::span<const int> seed,
                               std::span<int> request_match, std::span<int> taxi_match,
                               std::span<std::size_t> next_choice) {
  return validate_warm_seeds(
      requests, seed, request_match, taxi_match, next_choice,
      [&](std::size_t r) -> const std::vector<int>& { return profile.request_list(r); },
      [&](std::size_t t, int candidate, int incumbent) {
        return profile.taxi_prefers(t, candidate, incumbent);
      });
}

std::size_t warm_seed_taxis(const PreferenceProfile& profile, std::span<const int> taxis,
                            std::span<const int> seed, std::span<int> taxi_match,
                            std::span<int> request_match,
                            std::span<std::size_t> next_choice) {
  return validate_warm_seeds(
      taxis, seed, taxi_match, request_match, next_choice,
      [&](std::size_t t) -> const std::vector<int>& { return profile.taxi_list(t); },
      [&](std::size_t r, int candidate, int incumbent) {
        return profile.request_prefers(r, candidate, incumbent);
      });
}

bool component_stable(const PreferenceProfile& profile, std::span<const int> requests,
                      std::span<const int> taxis, std::span<const int> request_match,
                      std::span<const int> taxi_match) {
  for (const int request : requests) {
    const auto r = static_cast<std::size_t>(request);
    const int matched = request_match[r];
    if (matched != kDummy) {
      if (matched < 0 || static_cast<std::size_t>(matched) >= profile.taxi_count()) return false;
      if (taxi_match[static_cast<std::size_t>(matched)] != request) return false;
      if (!profile.acceptable(r, static_cast<std::size_t>(matched))) return false;
    }
    for (const int taxi : profile.request_list(r)) {
      const auto t = static_cast<std::size_t>(taxi);
      if (!profile.acceptable(r, t)) continue;
      if (profile.request_prefers(r, taxi, matched) &&
          profile.taxi_prefers(t, request, taxi_match[t])) {
        return false;
      }
    }
  }
  for (const int taxi : taxis) {
    const auto t = static_cast<std::size_t>(taxi);
    const int matched = taxi_match[t];
    if (matched == kDummy) continue;
    if (matched < 0 || static_cast<std::size_t>(matched) >= profile.request_count()) return false;
    if (request_match[static_cast<std::size_t>(matched)] != taxi) return false;
  }
  return true;
}

}  // namespace detail

Matching gale_shapley_requests(const PreferenceProfile& profile) {
  obs::StageTimer timer(obs::Stage::kStableMatching);
  std::vector<int> request_to_taxi(profile.request_count(), kDummy);
  std::vector<int> taxi_match(profile.taxi_count(), kDummy);
  std::vector<std::size_t> next_choice(profile.request_count(), 0);
  std::vector<int> all_requests(profile.request_count());
  std::iota(all_requests.begin(), all_requests.end(), 0);
  detail::deferred_acceptance_requests(profile, all_requests, request_to_taxi, taxi_match,
                                       next_choice);
  Matching matching = make_matching(std::move(request_to_taxi), profile.taxi_count());
  O2O_ENSURES(is_stable(profile, matching));
  return matching;
}

Matching gale_shapley_taxis(const PreferenceProfile& profile) {
  obs::StageTimer timer(obs::Stage::kStableMatching);
  std::vector<int> taxi_to_request(profile.taxi_count(), kDummy);
  std::vector<int> request_to_taxi(profile.request_count(), kDummy);
  std::vector<std::size_t> next_choice(profile.taxi_count(), 0);
  std::vector<int> all_taxis(profile.taxi_count());
  std::iota(all_taxis.begin(), all_taxis.end(), 0);
  detail::deferred_acceptance_taxis(profile, all_taxis, taxi_to_request, request_to_taxi,
                                    next_choice);
  Matching matching = make_matching(std::move(request_to_taxi), profile.taxi_count());
  O2O_ENSURES(is_stable(profile, matching));
  return matching;
}

}  // namespace o2o::core
