// Simulator adapters for the paper's algorithms:
//
//   StableDispatcher          -- NSTD-P / NSTD-T (Section IV)
//   SharingStableDispatcher   -- STD-P / STD-T   (Section V)
//
// Both dispatch only idle taxis within the current frame, exactly as the
// paper's batched model prescribes.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "core/selectors.h"
#include "core/sharing.h"
#include "core/stable_matching.h"
#include "sim/dispatcher.h"

namespace o2o::core {

/// Tag selecting the supported construction path: the o2o::DispatchConfig
/// factories (make_nstd_p / make_nstd_t / make_std_p / make_std_t /
/// make_dispatcher) build dispatchers through it after validating the
/// whole config bundle. The legacy one-argument constructors that took a
/// bare option struct without validation have been removed (see README,
/// "Breaking changes").
struct FromConfig {
  explicit FromConfig() = default;
};

struct StableDispatcherOptions {
  PreferenceParams preference;
  ProposalSide side = ProposalSide::kPassengers;
  /// When true, NSTD-T is computed the paper's way -- enumerate all
  /// stable schedules with Algorithm 2 and select the taxi-best -- rather
  /// than by taxi-proposing deferred acceptance (the two agree; tests
  /// check it, and micro_algorithms measures the cost gap). Enumeration
  /// is capped at `enumeration_cap` schedules per frame.
  bool taxi_side_via_enumeration = false;
  std::size_t enumeration_cap = 512;
  /// Component-sharded matching engine (core/shard_engine.h). On by
  /// default: the output is bit-identical to the serial pass.
  ShardOptions sharding;
  /// Warm-start deferred acceptance from the previous dispatch call's
  /// matching (DESIGN.md "Incremental frame engine"). The dispatcher
  /// remembers request-id -> taxi-id pairs across frames; hints that
  /// survive the sequential seed validation skip their proposal prefix,
  /// the rest run cold — the output is bit-identical either way, so the
  /// knob only trades memory for proposals. Ignored on the serial
  /// fallback and the NSTD-T enumeration path (both are cold references).
  bool warm_start_da = true;
};

/// Non-sharing stable dispatch (Algorithms 1 and 2).
class StableDispatcher final : public sim::Dispatcher {
 public:
  StableDispatcher(StableDispatcherOptions options, FromConfig);

  std::string name() const override;
  std::vector<sim::DispatchAssignment> dispatch(const sim::DispatchContext& context) override;

 private:
  StableDispatcherOptions options_;
  /// Previous frame's matching, re-keyed by trace ids so it survives the
  /// frame-to-frame reshuffle of span indices (warm_start_da).
  std::unordered_map<trace::RequestId, trace::TaxiId> last_match_;
};

struct SharingStableDispatcherOptions {
  SharingParams params;
  /// Extension beyond the paper (UberPool-style): after the stable
  /// matching over idle taxis, offer still-unserved requests to *busy*
  /// taxis by cheapest en-route insertion, accepting only insertions
  /// both sides would agree to -- the rider's along-route wait stays
  /// within the passenger threshold and every affected rider's detour
  /// within θ, and the driver's *marginal* score (added distance minus
  /// (α+1)× the new fare) stays within the taxi threshold.
  bool enroute_extension = false;
  /// Warm-start the stable matching from the previous dispatch call's
  /// assignments (DESIGN.md "Incremental frame engine"): every member of
  /// an assignment remembers its taxi id, and a re-packed unit inherits
  /// the hint only when all members agree. Output stays bit-identical;
  /// only the proposal count shrinks. Ignored on the serial fallback.
  bool warm_start_da = true;
};

/// Sharing stable dispatch (Algorithm 3).
class SharingStableDispatcher final : public sim::Dispatcher {
 public:
  SharingStableDispatcher(SharingStableDispatcherOptions options, FromConfig);

  std::string name() const override;
  std::vector<sim::DispatchAssignment> dispatch(const sim::DispatchContext& context) override;

 private:
  SharingStableDispatcherOptions options_;
  /// Previous frame's stable assignments by member request id
  /// (warm_start_da); en-route insertions are deliberately excluded —
  /// they never came from the matching.
  std::unordered_map<trace::RequestId, trace::TaxiId> last_match_;
};

}  // namespace o2o::core
