// Simulator adapters for the paper's algorithms:
//
//   StableDispatcher          -- NSTD-P / NSTD-T (Section IV)
//   SharingStableDispatcher   -- STD-P / STD-T   (Section V)
//
// Both dispatch only idle taxis within the current frame, exactly as the
// paper's batched model prescribes.
#pragma once

#include <memory>
#include <string>

#include "core/selectors.h"
#include "core/sharing.h"
#include "core/stable_matching.h"
#include "sim/dispatcher.h"

namespace o2o::core {

struct StableDispatcherOptions {
  PreferenceParams preference;
  ProposalSide side = ProposalSide::kPassengers;
  /// When true, NSTD-T is computed the paper's way -- enumerate all
  /// stable schedules with Algorithm 2 and select the taxi-best -- rather
  /// than by taxi-proposing deferred acceptance (the two agree; tests
  /// check it, and micro_algorithms measures the cost gap). Enumeration
  /// is capped at `enumeration_cap` schedules per frame.
  bool taxi_side_via_enumeration = false;
  std::size_t enumeration_cap = 512;
};

/// Non-sharing stable dispatch (Algorithms 1 and 2).
class StableDispatcher final : public sim::Dispatcher {
 public:
  explicit StableDispatcher(StableDispatcherOptions options);

  std::string name() const override;
  std::vector<sim::DispatchAssignment> dispatch(const sim::DispatchContext& context) override;

 private:
  StableDispatcherOptions options_;
};

struct SharingStableDispatcherOptions {
  SharingParams params;
  /// Extension beyond the paper (UberPool-style): after the stable
  /// matching over idle taxis, offer still-unserved requests to *busy*
  /// taxis by cheapest en-route insertion, accepting only insertions
  /// both sides would agree to -- the rider's along-route wait stays
  /// within the passenger threshold and every affected rider's detour
  /// within θ, and the driver's *marginal* score (added distance minus
  /// (α+1)× the new fare) stays within the taxi threshold.
  bool enroute_extension = false;
};

/// Sharing stable dispatch (Algorithm 3).
class SharingStableDispatcher final : public sim::Dispatcher {
 public:
  explicit SharingStableDispatcher(SharingStableDispatcherOptions options);

  std::string name() const override;
  std::vector<sim::DispatchAssignment> dispatch(const sim::DispatchContext& context) override;

 private:
  SharingStableDispatcherOptions options_;
};

}  // namespace o2o::core
