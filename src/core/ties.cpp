#include "core/ties.h"

#include <algorithm>

#include "util/contracts.h"
#include "util/rng.h"

namespace o2o::core {

namespace {

void validate_scores(const TiedScores& scores) {
  O2O_EXPECTS(scores.taxi.size() == scores.passenger.size());
  for (std::size_t r = 0; r < scores.passenger.size(); ++r) {
    O2O_EXPECTS(scores.passenger[r].size() == scores.taxi_count());
    O2O_EXPECTS(scores.taxi[r].size() == scores.taxi_count());
  }
}

bool acceptable(const TiedScores& scores, std::size_t r, std::size_t t) {
  return scores.passenger[r][t] != kUnacceptable && scores.taxi[r][t] != kUnacceptable;
}

}  // namespace

std::vector<std::pair<std::size_t, std::size_t>> strict_blocking_pairs(
    const TiedScores& scores, const Matching& matching) {
  validate_scores(scores);
  std::vector<std::pair<std::size_t, std::size_t>> blocking;
  for (std::size_t r = 0; r < scores.request_count(); ++r) {
    for (std::size_t t = 0; t < scores.taxi_count(); ++t) {
      if (!acceptable(scores, r, t)) continue;
      const int current_taxi = matching.request_to_taxi[r];
      const int current_request = matching.taxi_to_request[t];
      // Strict preference for the request: t's score beats the current
      // partner's score (any acceptable partner beats the dummy).
      const bool request_strict =
          current_taxi == kDummy ||
          scores.passenger[r][t] <
              scores.passenger[r][static_cast<std::size_t>(current_taxi)];
      const bool taxi_strict =
          current_request == kDummy ||
          scores.taxi[r][t] <
              scores.taxi[static_cast<std::size_t>(current_request)][t];
      if (request_strict && taxi_strict) blocking.emplace_back(r, t);
    }
  }
  return blocking;
}

bool is_weakly_stable(const TiedScores& scores, const Matching& matching) {
  validate_scores(scores);
  if (matching.request_to_taxi.size() != scores.request_count()) return false;
  if (matching.taxi_to_request.size() != scores.taxi_count()) return false;
  // Validity: mirror consistency and mutual acceptability.
  for (std::size_t r = 0; r < scores.request_count(); ++r) {
    const int t = matching.request_to_taxi[r];
    if (t == kDummy) continue;
    if (t < 0 || static_cast<std::size_t>(t) >= scores.taxi_count()) return false;
    if (matching.taxi_to_request[static_cast<std::size_t>(t)] != static_cast<int>(r)) {
      return false;
    }
    if (!acceptable(scores, r, static_cast<std::size_t>(t))) return false;
  }
  return strict_blocking_pairs(scores, matching).empty();
}

PreferenceProfile break_ties(const TiedScores& scores, std::uint64_t seed) {
  validate_scores(scores);
  Rng rng(seed);
  // Perturb every finite score by a tiny jitter that cannot reorder
  // distinct values but randomizes runs of equal ones. Scores come from
  // kilometre-scale distances, so distinct values differ by far more
  // than the jitter span.
  const double jitter = 1e-9;
  // Determinism contract (see the header): the jitter may only reorder
  // *ties*. Assert that distinct finite scores are separated by more
  // than the jitter span -- a violation would let the perturbation flip
  // a genuine preference, making the resulting strict profile (and the
  // sharded component merge built on it) depend on the jitter draw
  // instead of the data.
  {
    std::vector<double> finite;
    for (const auto* matrix : {&scores.passenger, &scores.taxi}) {
      for (const auto& row : *matrix) {
        for (const double value : row) {
          if (value != kUnacceptable) finite.push_back(value);
        }
      }
    }
    std::sort(finite.begin(), finite.end());
    for (std::size_t i = 1; i < finite.size(); ++i) {
      O2O_EXPECTS(finite[i] == finite[i - 1] || finite[i] - finite[i - 1] > jitter);
    }
  }
  TiedScores perturbed = scores;
  for (auto* matrix : {&perturbed.passenger, &perturbed.taxi}) {
    for (auto& row : *matrix) {
      for (double& value : row) {
        if (value != kUnacceptable) value += rng.uniform(0.0, jitter);
      }
    }
  }
  const std::size_t taxis = scores.taxi_count();
  return PreferenceProfile::from_scores(std::move(perturbed.passenger),
                                        std::move(perturbed.taxi), taxis);
}

TieBreakResult max_cardinality_weakly_stable(const TiedScores& scores,
                                             std::size_t restarts, std::uint64_t seed) {
  validate_scores(scores);
  TieBreakResult best;
  bool first = true;
  for (std::size_t attempt = 0; attempt <= restarts; ++attempt) {
    // Attempt 0 is the deterministic lowest-index tie-break (no jitter).
    const PreferenceProfile profile =
        attempt == 0
            ? PreferenceProfile::from_scores(scores.passenger, scores.taxi,
                                             scores.taxi_count())
            : break_ties(scores, seed + attempt);
    Matching matching = gale_shapley_requests(profile);
    const std::size_t matched = matching.matched_count();
    O2O_ENSURES(is_weakly_stable(scores, matching));
    if (first || matched > best.matched) {
      best.matching = std::move(matching);
      best.matched = matched;
      best.seed = attempt == 0 ? 0 : seed + attempt;
      first = false;
    }
  }
  return best;
}

}  // namespace o2o::core
