#include "core/shard_engine.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <numeric>

#include "core/all_stable.h"
#include "core/selectors.h"
#include "index/union_find.h"
#include "obs/obs.h"
#include "util/contracts.h"
#include "util/thread_pool.h"

namespace o2o::core {

namespace {

/// Runs body(i) over the components, largest (by member requests) first
/// so the long poles start immediately and the tail of small components
/// fills the idle lanes. Work order does not affect the result — every
/// component writes disjoint slots — only the wall clock.
void for_each_component(const std::vector<ShardComponent>& components,
                        const std::function<void(std::size_t)>& body) {
  std::vector<std::size_t> order(components.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return components[a].requests.size() > components[b].requests.size();
  });
  ThreadPool& pool = ThreadPool::shared();
  if (pool.worker_count() == 0 || components.size() < 2) {
    for (const std::size_t i : order) body(i);
    return;
  }
  pool.parallel_for(0, order.size(), /*grain=*/1,
                    [&](std::size_t i) { body(order[i]); });
}

}  // namespace

ComponentPartition extract_components(const PreferenceProfile& profile,
                                      std::size_t max_components_hint) {
  obs::StageTimer timer(obs::Stage::kComponentExtract);
  const std::size_t requests = profile.request_count();
  const std::size_t taxis = profile.taxi_count();

  // Bipartite node layout: requests first, taxi t at requests + t. Both
  // sides' lists are united: a pair listed only by the taxi still makes
  // the taxi propose to (and get refused by) that request, so it must
  // land in the same component for the pass to stay self-contained.
  index::UnionFind uf(requests + taxis);
  for (std::size_t r = 0; r < requests; ++r) {
    for (const int t : profile.request_list(r)) {
      uf.unite(r, requests + static_cast<std::size_t>(t));
    }
  }
  for (std::size_t t = 0; t < taxis; ++t) {
    for (const int r : profile.taxi_list(t)) {
      uf.unite(requests + t, static_cast<std::size_t>(r));
    }
  }

  ComponentPartition partition;
  partition.components.reserve(
      max_components_hint > 0 ? max_components_hint : std::min(requests, uf.set_count()));

  // First-seen scan over requests ascending orders the components by
  // smallest member request id — the deterministic merge order the
  // sharded engine's contract promises (see core/ties.h).
  std::vector<std::size_t> component_of(requests + taxis, SIZE_MAX);
  for (std::size_t r = 0; r < requests; ++r) {
    if (uf.set_size(r) == 1) {
      ++partition.isolated_requests;
      continue;
    }
    const std::size_t root = uf.find(r);
    std::size_t& slot = component_of[root];
    if (slot == SIZE_MAX) {
      slot = partition.components.size();
      partition.components.emplace_back();
    }
    partition.components[slot].requests.push_back(static_cast<int>(r));
  }
  for (std::size_t t = 0; t < taxis; ++t) {
    if (uf.set_size(requests + t) == 1) {
      ++partition.isolated_taxis;
      continue;
    }
    const std::size_t slot = component_of[uf.find(requests + t)];
    // Every non-singleton set contains a request (edges are bipartite),
    // so the request scan above created its component.
    O2O_ENSURES(slot != SIZE_MAX);
    partition.components[slot].taxis.push_back(static_cast<int>(t));
  }
  for (const ShardComponent& component : partition.components) {
    partition.largest_component_requests =
        std::max(partition.largest_component_requests, component.requests.size());
  }

  obs::add(obs::Counter::kShardComponents, partition.components.size());
  obs::gauge_max(obs::Gauge::kLargestComponentPeak, partition.largest_component_requests);
  return partition;
}

Matching sharded_gale_shapley(const PreferenceProfile& profile, ProposalSide side,
                              const ShardOptions& options,
                              std::span<const int> warm_seed) {
  O2O_EXPECTS(options.deterministic_merge);
  O2O_EXPECTS(warm_seed.empty() || warm_seed.size() == profile.request_count());
  if (!options.parallel) {
    // The serial fallback is the cold differential reference; seeds are
    // deliberately ignored (the output is identical either way).
    obs::add(obs::Counter::kShardFallbacks);
    return side == ProposalSide::kPassengers ? gale_shapley_requests(profile)
                                             : gale_shapley_taxis(profile);
  }

  const ComponentPartition partition =
      extract_components(profile, options.max_components_hint);

  // Hints arrive request->taxi; the taxi-proposing side validates
  // taxi->request, so invert (lowest request deterministically wins a
  // duplicate-taxi conflict — ascending scan, first writer keeps).
  std::vector<int> taxi_seed;
  if (!warm_seed.empty() && side == ProposalSide::kTaxis) {
    taxi_seed.assign(profile.taxi_count(), kDummy);
    for (std::size_t r = 0; r < warm_seed.size(); ++r) {
      const int t = warm_seed[r];
      if (t == kDummy) continue;
      if (t >= 0 && static_cast<std::size_t>(t) < taxi_seed.size() &&
          taxi_seed[static_cast<std::size_t>(t)] == kDummy) {
        taxi_seed[static_cast<std::size_t>(t)] = static_cast<int>(r);
      }
    }
  }

  // Shared, preallocated result: every component call writes only its
  // members' slots (the subset deferred-acceptance contract), so the
  // concurrent passes compose into exactly the serial outcome — deferred
  // acceptance is proposal-order independent, and isolated agents stay
  // at the dummy untouched.
  std::vector<int> request_match(profile.request_count(), kDummy);
  std::vector<int> taxi_match(profile.taxi_count(), kDummy);
  std::vector<std::size_t> next_choice(
      side == ProposalSide::kPassengers ? profile.request_count() : profile.taxi_count(), 0);

  for_each_component(partition.components, [&](std::size_t i) {
    const ShardComponent& component = partition.components[i];
    // Accrues per-component: in sharded frames the stable_matching stage
    // reads as CPU time summed over components (load, not wall).
    obs::StageTimer timer(obs::Stage::kStableMatching);
    if (side == ProposalSide::kPassengers) {
      if (!warm_seed.empty()) {
        const std::size_t seeded = detail::warm_seed_requests(
            profile, component.requests, warm_seed, request_match, taxi_match, next_choice);
        obs::add(obs::Counter::kDaWarmSeeds, seeded);
      }
      detail::deferred_acceptance_requests(profile, component.requests, request_match,
                                           taxi_match, next_choice);
    } else {
      if (!taxi_seed.empty()) {
        const std::size_t seeded = detail::warm_seed_taxis(
            profile, component.taxis, taxi_seed, taxi_match, request_match, next_choice);
        obs::add(obs::Counter::kDaWarmSeeds, seeded);
      }
      detail::deferred_acceptance_taxis(profile, component.taxis, taxi_match, request_match,
                                        next_choice);
    }
    O2O_ENSURES(detail::component_stable(profile, component.requests, component.taxis,
                                         request_match, taxi_match));
  });

  return make_matching(std::move(request_match), profile.taxi_count());
}

Matching sharded_taxi_optimal_via_enumeration(const PreferenceProfile& profile,
                                              std::size_t enumeration_cap,
                                              const ShardOptions& options) {
  O2O_EXPECTS(options.deterministic_merge);
  AllStableOptions enum_options;
  enum_options.max_matchings = enumeration_cap;
  if (!options.parallel) {
    obs::add(obs::Counter::kShardFallbacks);
    const AllStableResult all = enumerate_all_stable(profile, enum_options);
    return all.truncated ? gale_shapley_taxis(profile)
                         : select_taxi_optimal(all.matchings, profile);
  }

  const ComponentPartition partition =
      extract_components(profile, options.max_components_hint);

  std::vector<int> request_match(profile.request_count(), kDummy);
  for_each_component(partition.components, [&](std::size_t i) {
    const ShardComponent& component = partition.components[i];
    // The component's lattice is a factor of the global one, so the
    // per-component taxi-best schedules compose to the global taxi-best
    // pick; a truncated component degrades to taxi-proposing deferred
    // acceptance exactly like the serial path does globally (both yield
    // the taxi-optimal schedule, so the outputs still agree).
    //
    // A component spanning the whole frame (the percolated giant-
    // component regime) *is* the global problem with identical indices,
    // so skip the restriction and enumerate in place — sharding then
    // costs only the extraction pass on top of the serial arm.
    const bool spans_frame = component.requests.size() == profile.request_count() &&
                             component.taxis.size() == profile.taxi_count();
    const PreferenceProfile restricted =
        spans_frame ? PreferenceProfile{}
                    : restrict_profile(profile, component.requests, component.taxis);
    const PreferenceProfile& sub = spans_frame ? profile : restricted;
    const AllStableResult all = enumerate_all_stable(sub, enum_options);
    const Matching local = all.truncated ? gale_shapley_taxis(sub)
                                         : select_taxi_optimal(all.matchings, sub);
    for (std::size_t k = 0; k < component.requests.size(); ++k) {
      const int local_taxi = local.request_to_taxi[k];
      if (local_taxi == kDummy) continue;
      request_match[static_cast<std::size_t>(component.requests[k])] =
          component.taxis[static_cast<std::size_t>(local_taxi)];
    }
  });

  return make_matching(std::move(request_match), profile.taxi_count());
}

}  // namespace o2o::core
