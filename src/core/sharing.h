// Algorithm 3 of the paper: sharing taxi dispatch.
//
//   1. Enumerate all feasible share groups c_k (detour <= θ, |c_k| <= 3).
//   2. Solve the Maximum Set Packing Problem (Eqs. 1-3) over them with
//      the local-search approximation (ratio (max|c_k|+2)/3, [21]).
//   3. Treat each packed group -- and each leftover single request -- as
//      one unit and run Algorithm 1 (or its taxi-proposing mirror for
//      STD-T) under the sharing preference model (Section V-A):
//        passenger side (averaged over the group's members):
//          D_ck(t, r.s) + β [D_ck(r.s, r.d) - D(r.s, r.d)]
//        taxi side:
//          D_ck(t) - (α + 1) Σ_{r in ck} D(r.s, r.d)
//      Both reduce to the non-sharing scores for singleton units.
#pragma once

#include <span>
#include <vector>

#include "core/preferences.h"
#include "core/shard_engine.h"
#include "core/stable_matching.h"
#include "geo/distance_oracle.h"
#include "packing/groups.h"
#include "packing/set_packing.h"
#include "routing/route.h"
#include "trace/fleet.h"
#include "trace/request.h"

namespace o2o::index {
class SpatialGrid;
}  // namespace o2o::index

namespace o2o::core {

// ProposalSide lives in core/stable_matching.h (included above); the
// sharing dispatcher reuses it to pick STD-P vs STD-T.

enum class PackingSolver {
  kLocalSearch,  ///< the paper's approximation (default)
  kGreedy,       ///< ablation: plain maximal packing
  kExact,        ///< ablation: branch & bound (small inputs only)
};

/// What Eq. 1 maximizes. The paper counts packed subsets (kCount); the
/// alternatives are natural company objectives the same machinery
/// supports (ablated in bench/ablation_packing).
enum class PackingObjective {
  kCount,    ///< Σ x_k -- the paper's objective
  kRiders,   ///< Σ |c_k| x_k -- pooled passengers
  kSavings,  ///< Σ (Σ_direct - pooled) x_k -- driven-km saved
};

struct SharingParams {
  PreferenceParams preference;       ///< α, β, thresholds, list cap
  packing::GroupOptions grouping;    ///< θ, group size, pruning
  PackingSolver packing = PackingSolver::kLocalSearch;
  PackingObjective objective = PackingObjective::kCount;
  ProposalSide side = ProposalSide::kPassengers;
  int taxi_seats = 4;                ///< capacity assumed when grouping
  /// Performance cap: evaluate each unit's anchored route against only
  /// its K nearest taxis (by mean direct pick-up distance). 0 means
  /// *uncapped* (every taxi is a candidate) -- 0 is the only sentinel.
  /// Beware assigning a negative int: the size_t conversion yields a
  /// huge "cap" that silently behaves like uncapped;
  /// DispatchConfig::validate() rejects such values.
  /// Equivalent to capping preference lists -- the matching stays stable
  /// with respect to the truncated profile (ablated in micro benches).
  std::size_t candidate_taxis_per_unit = 0;
  /// Largest instance kExact is asked to solve outright. Frames with more
  /// feasible groups degrade to the local-search approximation (counted
  /// in SharingOutcome::exact_fallbacks) instead of aborting mid-frame.
  std::size_t exact_max_sets = 10'000;
  /// Component-sharded stable matching over the packed units (see
  /// core/shard_engine.h); bit-identical to the serial pass.
  ShardOptions sharding;
};

/// One dispatched unit: a taxi serving one request or one packed group.
struct SharedAssignment {
  std::size_t taxi_index = 0;                ///< index into the taxi span
  std::vector<std::size_t> request_indices;  ///< indices into the request span
  routing::Route route;                      ///< taxi-anchored service route
  double passenger_score = 0.0;              ///< unit's (averaged) passenger score
  double taxi_score = 0.0;                   ///< unit's taxi score
};

struct SharingOutcome {
  std::vector<SharedAssignment> assignments;
  std::vector<std::size_t> unserved_request_indices;
  std::size_t packed_groups = 0;   ///< groups selected by set packing
  std::size_t feasible_groups = 0; ///< |C| before packing
  std::size_t exact_fallbacks = 0; ///< kExact frames degraded to local search
};

/// The packed units handed to Algorithm 1 (exposed for tests/benches).
struct SharingUnits {
  /// Each unit lists request indices; packed groups first, singletons after.
  std::vector<std::vector<std::size_t>> units;
  /// D(r.s, r.d) per unit member, aligned with `units` — group members'
  /// values come straight from enumeration (ShareGroup::member_direct_km),
  /// so the dispatcher never re-queries the oracle for them.
  std::vector<std::vector<double>> unit_direct_km;
  std::size_t packed_groups = 0;
  std::size_t feasible_groups = 0;
  std::size_t exact_fallbacks = 0;
};

/// Stages 1-2 of Algorithm 3: grouping + set packing. `group_cache`,
/// when given (the simulator threads it through DispatchContext), lets
/// enumeration replay verdicts across consecutive frames.
SharingUnits pack_requests(std::span<const trace::Request> requests,
                           const geo::DistanceOracle& oracle, const SharingParams& params,
                           packing::GroupCache* group_cache = nullptr);

/// Full Algorithm 3. With spatial pruning enabled and a finite passenger
/// threshold, each unit's candidate taxis come from grid radius queries
/// around its members' pick-ups; `taxi_grid`, when given, must be keyed
/// by position in `taxis` (see the SpatialGrid span constructor).
///
/// `request_warm_taxi` (optional; empty disables) carries per-request
/// warm-start hints — requests.size() entries, each a taxi index into
/// `taxis` or kDummy — typically the previous frame's matching re-keyed
/// by the dispatcher. A packed unit inherits a hint only when all its
/// members agree on one taxi; hints claiming the same taxi are deduped
/// deterministically (ascending unit order, first claimant keeps). The
/// hints then pass the warm-seed validation inside sharded_gale_shapley
/// (see core/stable_matching.h), so the outcome is bit-identical to the
/// unhinted run.
SharingOutcome dispatch_sharing(std::span<const trace::Taxi> taxis,
                                std::span<const trace::Request> requests,
                                const geo::DistanceOracle& oracle,
                                const SharingParams& params,
                                const index::SpatialGrid* taxi_grid = nullptr,
                                packing::GroupCache* group_cache = nullptr,
                                std::span<const int> request_warm_taxi = {});

}  // namespace o2o::core
