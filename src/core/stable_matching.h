// Algorithm 1 of the paper: passenger-proposing deferred acceptance with
// dummy partners (NSTD-P), its taxi-proposing mirror (the direct route to
// the taxi-optimal schedule, cross-checked against Algorithm 2 in tests),
// and the Definition-1 stability verifier.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/preferences.h"

namespace o2o::core {

/// Which side proposes in deferred acceptance (and therefore which side
/// the resulting stable schedule is optimal for).
enum class ProposalSide {
  kPassengers,  ///< passenger-optimal schedule (NSTD-P / STD-P)
  kTaxis,       ///< taxi-optimal schedule (NSTD-T / STD-T)
};

/// A taxi dispatch schedule S. request_to_taxi[r] is the matched taxi
/// index, or kDummy (unserved); taxi_to_request mirrors it.
struct Matching {
  std::vector<int> request_to_taxi;
  std::vector<int> taxi_to_request;

  std::size_t matched_count() const noexcept;

  friend bool operator==(const Matching& a, const Matching& b) {
    return a.request_to_taxi == b.request_to_taxi;  // the mirror is derived
  }
};

/// Builds the taxi_to_request mirror from request_to_taxi.
Matching make_matching(std::vector<int> request_to_taxi, std::size_t taxi_count);

/// Structural validity: indices in range, mirror consistent, every
/// matched pair mutually acceptable (a matched-but-unacceptable pair
/// violates Definition 1 against the dummy).
bool is_valid(const PreferenceProfile& profile, const Matching& matching);

/// Definition 1 stability check: valid and no blocking pair.
bool is_stable(const PreferenceProfile& profile, const Matching& matching);

/// All blocking pairs (r, t): mutually acceptable pairs where both sides
/// prefer each other over their current partners (dummies included).
/// Cost is linear in the listed pairs (every mutually acceptable pair is
/// on its request's candidate list), not in the |R|×|T| rectangle.
std::vector<std::pair<std::size_t, std::size_t>> blocking_pairs(
    const PreferenceProfile& profile, const Matching& matching);

/// Algorithm 1 (NSTD-P): the passenger-optimal stable schedule.
Matching gale_shapley_requests(const PreferenceProfile& profile);

/// Taxi-proposing deferred acceptance: the taxi-optimal stable schedule.
Matching gale_shapley_taxis(const PreferenceProfile& profile);

namespace detail {

// Subset deferred acceptance — the building block the component-sharded
// engine (core/shard_engine.h) runs once per connected component of the
// candidate graph. All spans are profile-sized and may be shared across
// concurrent calls: a call touches only its own proposers' slots and the
// receivers on their candidate lists, which stay inside the component by
// construction, so concurrent per-component calls write disjoint memory
// and the merged result is deterministic (and equal to one global pass:
// the deferred-acceptance outcome is proposal-order independent).
//
// Preconditions: `requests` (resp. `taxis`) ascending; their match and
// next_choice slots initialized to kDummy / 0.

/// Passenger-proposing pass restricted to `requests`. Proposers whose
/// match slot is already set (validated warm-start seeds, below) are not
/// enqueued; with all slots at kDummy this is the cold pass verbatim.
void deferred_acceptance_requests(const PreferenceProfile& profile,
                                  std::span<const int> requests,
                                  std::span<int> request_match, std::span<int> taxi_match,
                                  std::span<std::size_t> next_choice);

/// Taxi-proposing pass restricted to `taxis`.
void deferred_acceptance_taxis(const PreferenceProfile& profile,
                               std::span<const int> taxis, std::span<int> taxi_match,
                               std::span<int> request_match,
                               std::span<std::size_t> next_choice);

// Warm-start seed validation (DESIGN.md "Incremental frame engine").
//
// A seed (u -> receiver) from the previous frame's matching may only be
// installed when the resulting state is reachable by a legal deferred-
// acceptance execution prefix; DA's proposal-order independence then
// guarantees the continued run produces the cold output bit for bit.
// Naive "both sides still accept each other" seeding is NOT sound --
// cyclically-justified seeds can pin the proposer-pessimal matching (see
// the 2x2 counterexample in DESIGN.md) -- so validation is sequential:
// seed (u, t) installs only if t accepts u over the dummy, t is still
// unclaimed, and every receiver strictly before t on u's list certifiably
// rejects u, where a certificate may reference only seeds validated
// *earlier in the scan*. Validated proposers get their hold and
// next_choice advanced past it; everyone else runs cold from the top of
// their list. Returns the number of seeds installed.

/// Passenger-proposing validation restricted to `requests`; seed[r] is
/// the hinted taxi index or kDummy, indexed over the whole profile.
std::size_t warm_seed_requests(const PreferenceProfile& profile,
                               std::span<const int> requests, std::span<const int> seed,
                               std::span<int> request_match, std::span<int> taxi_match,
                               std::span<std::size_t> next_choice);

/// Taxi-proposing validation restricted to `taxis`; seed[t] is the
/// hinted request index or kDummy.
std::size_t warm_seed_taxis(const PreferenceProfile& profile, std::span<const int> taxis,
                            std::span<const int> seed, std::span<int> taxi_match,
                            std::span<int> request_match,
                            std::span<std::size_t> next_choice);

/// Definition-1 check restricted to one component (sparse: walks the
/// member requests' candidate lists). The conjunction over a partition's
/// components — with every isolated agent left at kDummy — is equivalent
/// to is_stable on the whole profile.
bool component_stable(const PreferenceProfile& profile, std::span<const int> requests,
                      std::span<const int> taxis, std::span<const int> request_match,
                      std::span<const int> taxi_match);

}  // namespace detail

}  // namespace o2o::core
