// Algorithm 1 of the paper: passenger-proposing deferred acceptance with
// dummy partners (NSTD-P), its taxi-proposing mirror (the direct route to
// the taxi-optimal schedule, cross-checked against Algorithm 2 in tests),
// and the Definition-1 stability verifier.
#pragma once

#include <vector>

#include "core/preferences.h"

namespace o2o::core {

/// A taxi dispatch schedule S. request_to_taxi[r] is the matched taxi
/// index, or kDummy (unserved); taxi_to_request mirrors it.
struct Matching {
  std::vector<int> request_to_taxi;
  std::vector<int> taxi_to_request;

  std::size_t matched_count() const noexcept;

  friend bool operator==(const Matching& a, const Matching& b) {
    return a.request_to_taxi == b.request_to_taxi;  // the mirror is derived
  }
};

/// Builds the taxi_to_request mirror from request_to_taxi.
Matching make_matching(std::vector<int> request_to_taxi, std::size_t taxi_count);

/// Structural validity: indices in range, mirror consistent, every
/// matched pair mutually acceptable (a matched-but-unacceptable pair
/// violates Definition 1 against the dummy).
bool is_valid(const PreferenceProfile& profile, const Matching& matching);

/// Definition 1 stability check: valid and no blocking pair.
bool is_stable(const PreferenceProfile& profile, const Matching& matching);

/// All blocking pairs (r, t): mutually acceptable pairs where both sides
/// prefer each other over their current partners (dummies included).
std::vector<std::pair<std::size_t, std::size_t>> blocking_pairs(
    const PreferenceProfile& profile, const Matching& matching);

/// Algorithm 1 (NSTD-P): the passenger-optimal stable schedule.
Matching gale_shapley_requests(const PreferenceProfile& profile);

/// Taxi-proposing deferred acceptance: the taxi-optimal stable schedule.
Matching gale_shapley_taxis(const PreferenceProfile& profile);

}  // namespace o2o::core
