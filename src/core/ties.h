// Preference ties and weak stability -- the SMP relaxation the paper's
// related-work section discusses (Iwama et al. [14]): with ties and
// incomplete lists, *weakly* stable matchings (no pair strictly prefers
// each other) always exist and are found by breaking ties arbitrarily
// and running deferred acceptance, but different tie-breaks can match
// different numbers of agents and maximizing the matched count is
// NP-hard. This module provides:
//
//   * tie-aware weak-stability checking straight on score matrices
//     (equal scores = indifference; distances tie in practice whenever
//     several taxis wait at the same stand);
//   * randomized tie-breaking into a strict PreferenceProfile;
//   * a multi-restart heuristic for maximum-cardinality weakly stable
//     matching (the local-approximation idea of Király [15]).
//
// Determinism contract (relied on by core/shard_engine.h). Every
// function in this module is a pure function of (scores, seed): no
// global state, no address-based ordering, no wall clock. break_ties
// draws its jitter stream from the seed and the row-major iteration
// order of the matrices alone, and the jitter span is *asserted* to be
// smaller than the smallest gap between distinct finite scores, so the
// perturbation can reorder ties but never genuine preferences. This is
// what keeps the component-sharded dispatch engine exact on profiles
// built here: the sharded merge orders components by their smallest
// member request id, and because the strict profile carries no hidden
// nondeterminism, relabeling the requests permutes the matching without
// changing any matched pair -- sharded and serial runs agree under
// either labeling (pinned down by tests/core/ties_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "core/preferences.h"
#include "core/stable_matching.h"

namespace o2o::core {

/// Score matrices with ties: rows = requests, cols = taxis, lower is
/// better, kUnacceptable marks entries past the dummy.
struct TiedScores {
  std::vector<std::vector<double>> passenger;  ///< [r][t]
  std::vector<std::vector<double>> taxi;       ///< [r][t]

  std::size_t request_count() const noexcept { return passenger.size(); }
  std::size_t taxi_count() const noexcept {
    return passenger.empty() ? 0 : passenger.front().size();
  }
};

/// Weak stability under ties: valid (mutually acceptable pairs only) and
/// no pair (r, t) where *both* sides strictly prefer each other over
/// their current partners.
bool is_weakly_stable(const TiedScores& scores, const Matching& matching);

/// All strictly-blocking pairs (empty iff weakly stable, given validity).
std::vector<std::pair<std::size_t, std::size_t>> strict_blocking_pairs(
    const TiedScores& scores, const Matching& matching);

/// Breaks ties by a seeded random perturbation of equal-score runs and
/// builds a strict profile. Every deferred-acceptance run on the result
/// is weakly stable with respect to the original tied scores.
PreferenceProfile break_ties(const TiedScores& scores, std::uint64_t seed);

struct TieBreakResult {
  Matching matching;
  std::size_t matched = 0;
  std::uint64_t seed = 0;  ///< tie-break seed that produced it
};

/// Multi-restart maximum-cardinality heuristic: run `restarts` random
/// tie-breaks (plus the deterministic lowest-index one), keep the
/// weakly stable matching serving the most requests.
TieBreakResult max_cardinality_weakly_stable(const TiedScores& scores,
                                             std::size_t restarts = 16,
                                             std::uint64_t seed = 1);

}  // namespace o2o::core
