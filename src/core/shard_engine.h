// Component-sharded stable dispatch.
//
// The sparse PreferenceProfile induces a bipartite graph over (requests,
// taxis): every listed pair — on either side's candidate list — is an
// edge. Deferred acceptance, BreakDispatch (Rules 1–3) and Definition-1
// stability only ever propagate influence along listed pairs, and the
// dummy thresholds are per-agent, so the matching problem factorizes
// *exactly* over the connected components of that graph: no proposal,
// refusal or blocking pair can cross a component boundary, and the
// stable-matching lattice of the whole profile is the product of the
// per-component lattices (so the per-component taxi-optima compose to
// the global taxi-optimum).
//
// The engine extracts components with a union-find pass, runs the
// paper's proposal loop — or the Algorithm-2 enumeration behind NSTD-T's
// selection — independently per component on the shared ThreadPool, and
// merges by letting each component write its members' slots in a shared,
// preallocated result (components are ordered by smallest member request
// id; slots are disjoint, so the merge is deterministic no matter how
// the pool schedules the tasks). Output is bit-identical to the serial
// path; tests/core/shard_engine_test.cpp proves it differentially and
// bench/micro_shard measures the speedup.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/stable_matching.h"

namespace o2o::core {

/// Knobs of the sharded engine, carried by the dispatcher option structs
/// and surfaced through DispatchConfig::sharding().
struct ShardOptions {
  /// Master switch: false routes to the legacy serial pass verbatim
  /// (counted as obs::Counter::kShardFallbacks).
  bool parallel = true;
  /// Reserve hint for the component vector; 0 derives it from the
  /// profile size. Purely an allocation hint — never a limit.
  std::size_t max_components_hint = 0;
  /// The merge is *always* deterministic: components ordered by smallest
  /// member request id, each writing disjoint slots of a shared result.
  /// The knob exists so the config surface can state that contract;
  /// turning it off violates a precondition (O2O_EXPECTS) rather than
  /// unlocking a faster nondeterministic mode.
  bool deterministic_merge = true;

  friend bool operator==(const ShardOptions&, const ShardOptions&) = default;
};

/// One connected component of the profile's candidate graph. Member
/// lists are ascending global indices.
struct ShardComponent {
  std::vector<int> requests;
  std::vector<int> taxis;
};

/// Every component with at least one listed pair, ordered by smallest
/// member request id (every such component contains a request, the graph
/// being bipartite). Agents with empty candidate lists on both sides are
/// isolated — always matched to the dummy — and appear in no component.
struct ComponentPartition {
  std::vector<ShardComponent> components;
  std::size_t isolated_requests = 0;
  std::size_t isolated_taxis = 0;
  std::size_t largest_component_requests = 0;
};

/// Union-find pass over the candidate lists (obs stage
/// component_extract; reports shard_components / largest_component_peak).
ComponentPartition extract_components(const PreferenceProfile& profile,
                                      std::size_t max_components_hint = 0);

/// Deferred acceptance sharded over components. Bit-identical to
/// gale_shapley_requests (kPassengers) / gale_shapley_taxis (kTaxis).
///
/// `warm_seed` (optional; empty disables) is a request->taxi hint vector
/// of profile.request_count() entries (kDummy where no hint), typically
/// the previous frame's matching re-indexed to this frame. Seeds pass
/// the sequential prefix-certificate validation of
/// detail::warm_seed_requests/_taxis before deferred acceptance runs —
/// validation happens per component inside the parallel pass — so the
/// output stays bit-identical to the unseeded run; only the proposal
/// count shrinks. For kTaxis the hints are inverted to taxi->request
/// (lowest request wins a conflict) before validation.
Matching sharded_gale_shapley(const PreferenceProfile& profile, ProposalSide side,
                              const ShardOptions& options = {},
                              std::span<const int> warm_seed = {});

/// The NSTD-T enumeration path — Algorithm 2 + taxi-best selection, with
/// the taxi-proposing fallback on truncation — sharded over components:
/// each component enumerates its own lattice (same cap) and selects its
/// taxi-best schedule. Bit-identical to the serial enumeration path.
Matching sharded_taxi_optimal_via_enumeration(const PreferenceProfile& profile,
                                              std::size_t enumeration_cap,
                                              const ShardOptions& options = {});

}  // namespace o2o::core
