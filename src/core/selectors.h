// Schedule evaluation and selection. Property 2 / Section IV-D: Algorithm
// 1 is passenger-optimal; among all stable schedules (Algorithm 2) the
// company may pick by its own objective -- the evaluation picks NSTD-T
// (taxi-optimal) for the paper's experiments, and exposes a generic
// objective hook for company policies.
#pragma once

#include <functional>

#include "core/all_stable.h"
#include "core/stable_matching.h"

namespace o2o::core {

/// Aggregate scores of one schedule under a profile's score matrices.
struct ScheduleEvaluation {
  std::size_t matched = 0;
  double passenger_total = 0.0;  ///< Σ matched passenger scores (km)
  double taxi_total = 0.0;       ///< Σ matched taxi scores (km)

  double passenger_mean() const noexcept {
    return matched == 0 ? 0.0 : passenger_total / static_cast<double>(matched);
  }
  double taxi_mean() const noexcept {
    return matched == 0 ? 0.0 : taxi_total / static_cast<double>(matched);
  }
};

ScheduleEvaluation evaluate(const PreferenceProfile& profile, const Matching& matching);

/// Smaller is better; used to order candidate schedules.
using CompanyObjective = std::function<double(const PreferenceProfile&, const Matching&)>;

/// The schedule minimizing `objective` (first wins ties). Requires a
/// non-empty candidate list.
const Matching& select_by(const std::vector<Matching>& candidates,
                          const PreferenceProfile& profile,
                          const CompanyObjective& objective);

/// Taxi-optimal pick: minimizes total taxi dissatisfaction. (Verified in
/// tests to coincide with taxi-proposing deferred acceptance.)
const Matching& select_taxi_optimal(const std::vector<Matching>& candidates,
                                    const PreferenceProfile& profile);

/// Passenger-optimal pick: minimizes total passenger dissatisfaction.
const Matching& select_passenger_optimal(const std::vector<Matching>& candidates,
                                         const PreferenceProfile& profile);

}  // namespace o2o::core
