// Generalized median stable matchings (Teo & Sethuraman; surveyed as
// [13] in the paper's related work): given all N stable schedules, let
// every request sort its N partners from most to least preferred; taking
// each request's k-th entry *simultaneously* yields a stable schedule,
// for every k. k = 0 recovers the passenger-optimal schedule, k = N-1
// the taxi-optimal one, and the middle k is the "median" schedule --
// a principled fairness compromise the company can adopt between
// NSTD-P and NSTD-T.
#pragma once

#include <vector>

#include "core/stable_matching.h"

namespace o2o::core {

/// The k-th generalized median of `matchings` (all stable schedules of
/// `profile`, e.g. from enumerate_all_stable). Requires 0 <= k < N.
/// The returned schedule is verified stable.
Matching generalized_median(const std::vector<Matching>& matchings,
                            const PreferenceProfile& profile, std::size_t k);

/// The middle generalized median (k = (N-1)/2): the fairness compromise.
Matching median_stable_matching(const std::vector<Matching>& matchings,
                                const PreferenceProfile& profile);

}  // namespace o2o::core
