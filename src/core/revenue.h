// The company's interest (Section III-B): the platform takes a fixed cut
// of every fare, so its revenue is the total fare of served rides. A
// consequence of the rural-hospitals property is that *every* stable
// schedule serves the same requests -- fare revenue is invariant across
// the whole lattice, so the company can pick NSTD-T (or the median) for
// driver retention at zero revenue cost. `revenue_invariant_across`
// checks the invariance; the selector breaks the tie by a secondary
// objective.
#pragma once

#include <span>

#include "core/stable_matching.h"
#include "geo/distance_oracle.h"
#include "trace/request.h"

namespace o2o::core {

/// Distance-based taxi fare: flag fall plus a per-km rate on the trip.
struct FareModel {
  double base_fare = 2.5;     ///< flag fall per ride
  double per_km = 1.75;       ///< metered rate on D(r.s, r.d)
  double company_cut = 0.25;  ///< the platform's share of each fare

  double fare(double trip_km) const noexcept { return base_fare + per_km * trip_km; }
};

/// Total fares of the requests served by `matching` (requests indexed as
/// in the profile the matching was computed from).
double total_fare(std::span<const trace::Request> requests, const Matching& matching,
                  const geo::DistanceOracle& oracle, const FareModel& model = {});

/// The platform's revenue under its cut.
double company_revenue(std::span<const trace::Request> requests, const Matching& matching,
                       const geo::DistanceOracle& oracle, const FareModel& model = {});

/// True iff all candidate schedules serve the same requests (and hence
/// earn identical fare revenue) -- the rural-hospitals consequence.
bool revenue_invariant_across(std::span<const trace::Request> requests,
                              const std::vector<Matching>& matchings,
                              const geo::DistanceOracle& oracle,
                              const FareModel& model = {});

}  // namespace o2o::core
