#include "baselines/raii.h"

#include <limits>

#include "baselines/working_fleet.h"
#include "index/spatial_grid.h"
#include "routing/insertion.h"
#include "util/contracts.h"

namespace o2o::baselines {

RaiiDispatcher::RaiiDispatcher(RaiiOptions options) : options_(options) {
  O2O_EXPECTS(options.search_radius_km > 0.0);
  O2O_EXPECTS(options.cell_km > 0.0);
}

std::vector<sim::DispatchAssignment> RaiiDispatcher::dispatch(
    const sim::DispatchContext& context) {
  O2O_EXPECTS(context.oracle != nullptr);
  if (context.pending.empty()) return {};
  std::vector<WorkingTaxi> fleet =
      build_working_fleet(context, options_.use_busy_taxis);
  if (fleet.empty()) return {};

  // Spatial index over working-taxi positions (the "spatio-temporal
  // index" of [7]; with one-minute frames the temporal dimension
  // degenerates to the current frame).
  geo::Rect bounds{{1e18, 1e18}, {-1e18, -1e18}};
  for (const WorkingTaxi& taxi : fleet) {
    bounds.lo.x = std::min(bounds.lo.x, taxi.taxi.location.x - 1.0);
    bounds.lo.y = std::min(bounds.lo.y, taxi.taxi.location.y - 1.0);
    bounds.hi.x = std::max(bounds.hi.x, taxi.taxi.location.x + 1.0);
    bounds.hi.y = std::max(bounds.hi.y, taxi.taxi.location.y + 1.0);
  }
  index::SpatialGrid grid(bounds, options_.cell_km);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    grid.upsert(static_cast<std::int32_t>(i), fleet[i].taxi.location);
  }

  // Direct trip distances for the detour constraint: pending requests
  // plus everything already scheduled on a candidate route.
  std::unordered_map<trace::RequestId, double> direct;
  for (const trace::Request& request : context.pending) {
    direct.emplace(request.id,
                   context.oracle->distance(request.pickup, request.dropoff));
  }

  // Along-route ride distance of every rider with a pick-up still ahead
  // must stay within the detour bound of their direct distance.
  const auto detours_ok = [&](const routing::Route& route) {
    if (options_.detour_threshold_km == std::numeric_limits<double>::infinity()) {
      return true;
    }
    for (const routing::Stop& stop : route.stops) {
      if (!stop.is_pickup) continue;
      double direct_km = 0.0;
      const auto it = direct.find(stop.request);
      if (it != direct.end()) {
        direct_km = it->second;
      } else {
        // Committed pre-frame: recover the direct trip from its stops.
        const geo::Point* dropoff = nullptr;
        for (const routing::Stop& other : route.stops) {
          if (other.request == stop.request && !other.is_pickup) dropoff = &other.point;
        }
        if (dropoff == nullptr) continue;
        direct_km = context.oracle->distance(stop.point, *dropoff);
      }
      const auto metrics = routing::rider_metrics(route, stop.request, *context.oracle);
      if (metrics.ride_km - direct_km > options_.detour_threshold_km) return false;
    }
    return true;
  };

  // Arrival-order greedy commit, minimum added travel distance.
  for (const trace::Request& request : context.pending) {
    const std::vector<std::int32_t> candidates =
        grid.within_radius(request.pickup, options_.search_radius_km);
    double best_added = std::numeric_limits<double>::infinity();
    std::size_t best_taxi = 0;
    routing::Route best_route;
    for (std::int32_t candidate : candidates) {
      WorkingTaxi& taxi = fleet[static_cast<std::size_t>(candidate)];
      const auto insertion = routing::cheapest_insertion(taxi.route, request,
                                                         *context.oracle);
      if (!insertion.has_value()) continue;
      if (!capacity_ok(taxi, insertion->route, &request)) continue;
      if (!detours_ok(insertion->route)) continue;
      if (options_.max_wait_km != std::numeric_limits<double>::infinity()) {
        const auto metrics =
            routing::rider_metrics(insertion->route, request.id, *context.oracle);
        if (metrics.wait_km > options_.max_wait_km) continue;
      }
      if (insertion->added_km < best_added) {
        best_added = insertion->added_km;
        best_taxi = static_cast<std::size_t>(candidate);
        best_route = insertion->route;
      }
    }
    if (best_added == std::numeric_limits<double>::infinity()) continue;  // waits
    WorkingTaxi& taxi = fleet[best_taxi];
    taxi.route = std::move(best_route);
    taxi.seats_of.emplace(request.id, request.seats);
    taxi.new_requests.push_back(request.id);
  }
  return emit_assignments(fleet);
}

}  // namespace o2o::baselines
