#include "baselines/working_fleet.h"

#include "util/contracts.h"

namespace o2o::baselines {

std::vector<WorkingTaxi> build_working_fleet(const sim::DispatchContext& context,
                                             bool include_busy) {
  std::vector<WorkingTaxi> fleet;
  fleet.reserve(context.idle_taxis.size() +
                (include_busy ? context.busy_taxis.size() : 0));
  for (const trace::Taxi& taxi : context.idle_taxis) {
    WorkingTaxi working;
    working.taxi = taxi;
    working.route.start = taxi.location;
    fleet.push_back(std::move(working));
  }
  if (include_busy) {
    for (const sim::BusyTaxiView& view : context.busy_taxis) {
      WorkingTaxi working;
      working.taxi = view.taxi;
      working.route.start = view.taxi.location;
      working.route.stops = view.remaining_stops;
      working.seats_onboard = view.seats_in_use;
      working.busy = true;
      for (const auto& [id, seats] : view.route_request_seats) {
        working.seats_of.emplace(id, seats);
      }
      fleet.push_back(std::move(working));
    }
  }
  return fleet;
}

bool capacity_ok(const WorkingTaxi& taxi, const routing::Route& route,
                 const trace::Request* extra) {
  int seats = taxi.seats_onboard;
  for (const routing::Stop& stop : route.stops) {
    int demand = 0;
    if (extra != nullptr && stop.request == extra->id) {
      demand = extra->seats;
    } else {
      const auto it = taxi.seats_of.find(stop.request);
      O2O_EXPECTS(it != taxi.seats_of.end());
      demand = it->second;
    }
    seats += stop.is_pickup ? demand : -demand;
    if (seats > taxi.taxi.seats) return false;
  }
  return true;
}

std::vector<sim::DispatchAssignment> emit_assignments(
    const std::vector<WorkingTaxi>& fleet) {
  std::vector<sim::DispatchAssignment> assignments;
  for (const WorkingTaxi& taxi : fleet) {
    if (taxi.new_requests.empty()) continue;
    sim::DispatchAssignment assignment;
    assignment.taxi = taxi.taxi.id;
    assignment.requests = taxi.new_requests;
    assignment.route = taxi.route;
    assignments.push_back(std::move(assignment));
  }
  return assignments;
}

}  // namespace o2o::baselines
