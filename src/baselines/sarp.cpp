#include "baselines/sarp.h"

#include <limits>

#include "baselines/working_fleet.h"
#include "routing/insertion.h"
#include "util/contracts.h"

namespace o2o::baselines {

namespace {

/// Every rider's along-route ride distance must stay within `threshold`
/// of their direct distance.
bool detours_ok(const routing::Route& route, const geo::DistanceOracle& oracle,
                const std::unordered_map<trace::RequestId, double>& direct,
                double threshold) {
  if (threshold == std::numeric_limits<double>::infinity()) return true;
  for (const routing::Stop& stop : route.stops) {
    if (!stop.is_pickup) continue;
    const auto metrics = routing::rider_metrics(route, stop.request, oracle);
    const auto it = direct.find(stop.request);
    O2O_EXPECTS(it != direct.end());
    if (metrics.ride_km - it->second > threshold) return false;
  }
  return true;
}

}  // namespace

SarpDispatcher::SarpDispatcher(SarpOptions options) : options_(options) {}

std::vector<sim::DispatchAssignment> SarpDispatcher::dispatch(
    const sim::DispatchContext& context) {
  O2O_EXPECTS(context.oracle != nullptr);
  if (context.pending.empty() || context.idle_taxis.empty()) return {};
  const geo::DistanceOracle& oracle = *context.oracle;
  std::vector<WorkingTaxi> fleet = build_working_fleet(context, /*include_busy=*/false);

  std::unordered_map<trace::RequestId, double> direct;
  for (const trace::Request& request : context.pending) {
    direct.emplace(request.id, oracle.distance(request.pickup, request.dropoff));
  }

  for (const trace::Request& request : context.pending) {
    double best_added = std::numeric_limits<double>::infinity();
    std::size_t best_taxi = 0;
    routing::Route best_route;

    for (std::size_t i = 0; i < fleet.size(); ++i) {
      WorkingTaxi& taxi = fleet[i];
      if (taxi.route.stops.empty()) {
        // Stage 1: open a fresh route on this idle taxi.
        const double pickup = oracle.distance(taxi.taxi.location, request.pickup);
        if (pickup > options_.max_pickup_km) continue;
        if (request.seats > taxi.taxi.seats) continue;
        const double added = pickup + direct.at(request.id);
        if (added < best_added) {
          best_added = added;
          best_taxi = i;
          best_route = routing::single_rider_route(request, taxi.taxi.location);
        }
        continue;
      }
      // Stage 2: TSP insertion into a route opened this frame.
      const auto insertion = routing::cheapest_insertion(taxi.route, request, oracle);
      if (!insertion.has_value()) continue;
      if (!capacity_ok(taxi, insertion->route, &request)) continue;
      if (!detours_ok(insertion->route, oracle, direct, options_.detour_threshold_km)) {
        continue;
      }
      if (insertion->added_km < best_added) {
        best_added = insertion->added_km;
        best_taxi = i;
        best_route = insertion->route;
      }
    }

    if (best_added == std::numeric_limits<double>::infinity()) continue;  // waits
    WorkingTaxi& taxi = fleet[best_taxi];
    taxi.route = std::move(best_route);
    taxi.seats_of.emplace(request.id, request.seats);
    taxi.new_requests.push_back(request.id);
  }
  return emit_assignments(fleet);
}

}  // namespace o2o::baselines
