#include "baselines/ilp.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "routing/optimizer.h"
#include "util/contracts.h"

namespace o2o::baselines {

namespace {

/// One binary variable of the joint program: unit (group or single
/// request) u served by taxi t along `route` of length `length_km`.
struct Option {
  std::vector<std::size_t> request_indices;  ///< into context.pending
  std::size_t taxi_index = 0;                ///< into context.idle_taxis
  routing::Route route;
  double length_km = 0.0;
};

struct Solution {
  std::vector<std::size_t> chosen;  ///< option indices
  std::size_t covered = 0;
  double length_km = 0.0;

  bool better_than(const Solution& other) const noexcept {
    if (covered != other.covered) return covered > other.covered;
    return length_km < other.length_km;
  }
};

/// Exact branch & bound over the option list: maximize covered requests,
/// then minimize total route length.
Solution solve_exact(const std::vector<Option>& options, std::size_t request_count,
                     std::size_t taxi_count) {
  // Optimistic suffix coverage for pruning.
  std::vector<std::size_t> suffix_cover(options.size() + 1, 0);
  for (std::size_t i = options.size(); i-- > 0;) {
    suffix_cover[i] = suffix_cover[i + 1] + options[i].request_indices.size();
  }

  std::vector<std::uint8_t> request_used(request_count, 0);
  std::vector<std::uint8_t> taxi_used(taxi_count, 0);
  Solution best;
  Solution current;

  const auto recurse = [&](auto&& self, std::size_t position) -> void {
    if (current.better_than(best)) best = current;
    if (position == options.size()) return;
    if (current.covered + suffix_cover[position] < best.covered) return;
    if (current.covered + suffix_cover[position] == best.covered &&
        current.length_km >= best.length_km) {
      return;
    }
    const Option& option = options[position];
    const bool taxi_free = !taxi_used[option.taxi_index];
    const bool requests_free =
        std::none_of(option.request_indices.begin(), option.request_indices.end(),
                     [&](std::size_t r) { return request_used[r]; });
    if (taxi_free && requests_free) {
      taxi_used[option.taxi_index] = 1;
      for (std::size_t r : option.request_indices) request_used[r] = 1;
      current.chosen.push_back(position);
      current.covered += option.request_indices.size();
      current.length_km += option.length_km;
      self(self, position + 1);
      current.length_km -= option.length_km;
      current.covered -= option.request_indices.size();
      current.chosen.pop_back();
      for (std::size_t r : option.request_indices) request_used[r] = 0;
      taxi_used[option.taxi_index] = 0;
    }
    self(self, position + 1);
  };
  recurse(recurse, 0);
  return best;
}

/// Greedy heuristic (the large-scale fallback of [6]): repeatedly take
/// the option with the lowest length per served request.
Solution solve_greedy(const std::vector<Option>& options, std::size_t request_count,
                      std::size_t taxi_count) {
  std::vector<std::size_t> order(options.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double ka = options[a].length_km /
                      static_cast<double>(options[a].request_indices.size());
    const double kb = options[b].length_km /
                      static_cast<double>(options[b].request_indices.size());
    if (ka != kb) return ka < kb;
    return a < b;
  });
  std::vector<std::uint8_t> request_used(request_count, 0);
  std::vector<std::uint8_t> taxi_used(taxi_count, 0);
  Solution solution;
  for (std::size_t index : order) {
    const Option& option = options[index];
    if (taxi_used[option.taxi_index]) continue;
    if (std::any_of(option.request_indices.begin(), option.request_indices.end(),
                    [&](std::size_t r) { return request_used[r]; })) {
      continue;
    }
    taxi_used[option.taxi_index] = 1;
    for (std::size_t r : option.request_indices) request_used[r] = 1;
    solution.chosen.push_back(index);
    solution.covered += option.request_indices.size();
    solution.length_km += option.length_km;
  }
  return solution;
}

}  // namespace

IlpDispatcher::IlpDispatcher(IlpOptions options) : options_(std::move(options)) {
  O2O_EXPECTS(options_.candidate_taxis_per_unit >= 1);
}

std::vector<sim::DispatchAssignment> IlpDispatcher::dispatch(
    const sim::DispatchContext& context) {
  O2O_EXPECTS(context.oracle != nullptr);
  if (context.pending.empty() || context.idle_taxis.empty()) return {};
  const geo::DistanceOracle& oracle = *context.oracle;

  // Units: feasible share groups plus singletons.
  std::vector<std::vector<std::size_t>> units;
  for (const packing::ShareGroup& group : packing::enumerate_share_groups(
           context.pending, oracle, options_.grouping, /*taxi_seats=*/4)) {
    units.push_back(group.member_indices);
  }
  for (std::size_t r = 0; r < context.pending.size(); ++r) units.push_back({r});

  // Options: each unit paired with its nearest candidate taxis.
  std::vector<Option> all_options;
  for (const std::vector<std::size_t>& unit : units) {
    std::vector<trace::Request> riders;
    int seats = 0;
    for (std::size_t r : unit) {
      riders.push_back(context.pending[r]);
      seats += context.pending[r].seats;
    }
    // Rank taxis by distance to the unit's first pick-up (cheap proxy).
    std::vector<std::pair<double, std::size_t>> ranked;
    for (std::size_t t = 0; t < context.idle_taxis.size(); ++t) {
      if (context.idle_taxis[t].seats < seats) continue;
      const double d =
          oracle.distance(context.idle_taxis[t].location, riders.front().pickup);
      if (d > options_.max_pickup_km) continue;
      ranked.emplace_back(d, t);
    }
    std::sort(ranked.begin(), ranked.end());
    if (ranked.size() > options_.candidate_taxis_per_unit) {
      ranked.resize(options_.candidate_taxis_per_unit);
    }
    for (const auto& [d, t] : ranked) {
      Option option;
      option.request_indices = unit;
      option.taxi_index = t;
      option.route =
          routing::optimal_route(riders, oracle, context.idle_taxis[t].location);
      option.length_km = routing::route_length(option.route, oracle);
      all_options.push_back(std::move(option));
    }
  }
  if (all_options.empty()) return {};

  const Solution solution =
      all_options.size() <= options_.exact_option_limit
          ? solve_exact(all_options, context.pending.size(), context.idle_taxis.size())
          : solve_greedy(all_options, context.pending.size(), context.idle_taxis.size());

  std::vector<sim::DispatchAssignment> assignments;
  assignments.reserve(solution.chosen.size());
  for (std::size_t index : solution.chosen) {
    const Option& option = all_options[index];
    sim::DispatchAssignment assignment;
    assignment.taxi = context.idle_taxis[option.taxi_index].id;
    for (std::size_t r : option.request_indices) {
      assignment.requests.push_back(context.pending[r].id);
    }
    assignment.route = option.route;
    assignments.push_back(std::move(assignment));
  }
  return assignments;
}

}  // namespace o2o::baselines
