// RAII baseline -- emulates the spatio-temporal-index dispatch of Ma et
// al. [7] (T-Share lineage): requests are handled in arrival order; a
// spatial index retrieves nearby taxis (idle or en-route); the request is
// inserted into the candidate route that minimizes the *increase in
// total taxi travel distance*, subject to seat capacity. Its indices are
// "information-lossy" (the paper's words): the radius-limited candidate
// set and the per-request greedy commit are what the stable dispatcher
// beats.
#pragma once

#include <limits>
#include <string>

#include "sim/dispatcher.h"

namespace o2o::baselines {

struct RaiiOptions {
  double search_radius_km = 8.0;  ///< candidate retrieval radius
  double cell_km = 1.0;           ///< index cell size
  /// New rider's along-route pick-up distance cap (they would cancel
  /// otherwise); +inf disables.
  double max_wait_km = std::numeric_limits<double>::infinity();
  /// Per-rider detour bound after each insertion (the time-window
  /// constraint of [7]); +inf disables.
  double detour_threshold_km = 5.0;
  /// Consider en-route (busy) taxis as insertion candidates. The figure
  /// benches disable this so that every sharing algorithm dispatches
  /// complete groups on idle taxis and the paper's per-ride metrics are
  /// directly comparable.
  bool use_busy_taxis = true;
};

class RaiiDispatcher final : public sim::Dispatcher {
 public:
  explicit RaiiDispatcher(RaiiOptions options = {});

  std::string name() const override { return "RAII"; }
  std::vector<sim::DispatchAssignment> dispatch(const sim::DispatchContext& context) override;

 private:
  RaiiOptions options_;
};

}  // namespace o2o::baselines
