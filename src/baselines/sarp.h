// SARP baseline -- emulates the two-stage TSP-insertion scheduling of Li
// et al. [8]: within a frame, routes are planned on *idle* taxis only;
// each request either opens a route on its nearest free idle taxi or is
// inserted (TSP cheapest-insertion) into a route already opened this
// frame, whichever adds less travel distance, subject to capacity and a
// per-rider detour bound.
#pragma once

#include <limits>
#include <string>

#include "sim/dispatcher.h"

namespace o2o::baselines {

struct SarpOptions {
  /// Per-rider detour bound for shared insertions (the carpool comfort
  /// constraint); +inf disables.
  double detour_threshold_km = 5.0;
  /// Requests farther than this from every idle taxi wait for the next
  /// frame; +inf disables.
  double max_pickup_km = std::numeric_limits<double>::infinity();
};

class SarpDispatcher final : public sim::Dispatcher {
 public:
  explicit SarpDispatcher(SarpOptions options = {});

  std::string name() const override { return "SARP"; }
  std::vector<sim::DispatchAssignment> dispatch(const sim::DispatchContext& context) override;

 private:
  SarpOptions options_;
};

}  // namespace o2o::baselines
