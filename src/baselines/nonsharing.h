// The paper's non-sharing comparison algorithms (Section VI-B):
//
//   Greedy  -- dispatch the geometrically nearest idle taxi to each
//              request in arrival order [3,4];
//   MinCost -- minimum-total-cost bipartite matching on pick-up
//              distances (Hungarian) [3];
//   MinMax  -- bipartite matching minimizing the maximum matched pick-up
//              distance (bottleneck assignment) [3].
//
// All three consider only passenger-side cost, which is precisely what
// the stable dispatchers improve on for taxi dissatisfaction.
#pragma once

#include <limits>
#include <string>

#include "matching/cost_matrix.h"
#include "sim/dispatcher.h"

namespace o2o::baselines {

struct NonSharingOptions {
  /// Pairs beyond this pick-up distance are never matched (+inf = no cap).
  double max_pickup_km = std::numeric_limits<double>::infinity();
};

enum class NonSharingPolicy { kGreedy, kMinCost, kMinMax };

class NonSharingBaseline final : public sim::Dispatcher {
 public:
  NonSharingBaseline(NonSharingPolicy policy, NonSharingOptions options = {});

  std::string name() const override;
  std::vector<sim::DispatchAssignment> dispatch(const sim::DispatchContext& context) override;

 private:
  NonSharingPolicy policy_;
  NonSharingOptions options_;
};

/// Builds the request x taxi pick-up cost matrix shared by the three
/// policies (seat-infeasible or over-cap pairs are forbidden).
matching::CostMatrix pickup_cost_matrix(const sim::DispatchContext& context,
                                        double max_pickup_km);

}  // namespace o2o::baselines
