#include "baselines/nonsharing.h"

#include "matching/bottleneck.h"
#include "matching/greedy.h"
#include "matching/hungarian.h"
#include "routing/route.h"
#include "util/contracts.h"

namespace o2o::baselines {

matching::CostMatrix pickup_cost_matrix(const sim::DispatchContext& context,
                                        double max_pickup_km) {
  matching::CostMatrix costs(context.pending.size(), context.idle_taxis.size());
  // Pointwise on purpose: the assignment solvers tie-break on exact cost
  // bits, and bulk distances_to rows differ from distance() at summation-
  // order ulp — enough to flip Hungarian ties and drift the closed-loop
  // baselines. distance() rides the same warm tree cache, so rows price
  // one O(1) lookup per pair anyway.
  for (std::size_t r = 0; r < context.pending.size(); ++r) {
    const trace::Request& request = context.pending[r];
    for (std::size_t t = 0; t < context.idle_taxis.size(); ++t) {
      const trace::Taxi& taxi = context.idle_taxis[t];
      if (taxi.seats < request.seats) {
        costs.at(r, t) = matching::kForbidden;
        continue;
      }
      const double pickup = context.oracle->distance(taxi.location, request.pickup);
      costs.at(r, t) = pickup <= max_pickup_km ? pickup : matching::kForbidden;
    }
  }
  return costs;
}

NonSharingBaseline::NonSharingBaseline(NonSharingPolicy policy, NonSharingOptions options)
    : policy_(policy), options_(options) {}

std::string NonSharingBaseline::name() const {
  switch (policy_) {
    case NonSharingPolicy::kGreedy:
      return "Greedy";
    case NonSharingPolicy::kMinCost:
      return "MinCost";
    case NonSharingPolicy::kMinMax:
      return "MinMax";
  }
  return "NonSharing";
}

std::vector<sim::DispatchAssignment> NonSharingBaseline::dispatch(
    const sim::DispatchContext& context) {
  O2O_EXPECTS(context.oracle != nullptr);
  if (context.idle_taxis.empty() || context.pending.empty()) return {};

  const matching::CostMatrix costs = pickup_cost_matrix(context, options_.max_pickup_km);
  matching::Assignment assignment;
  switch (policy_) {
    case NonSharingPolicy::kGreedy:
      assignment = matching::solve_greedy(costs);
      break;
    case NonSharingPolicy::kMinCost:
      assignment = matching::solve_min_cost(costs);
      break;
    case NonSharingPolicy::kMinMax:
      assignment = matching::solve_min_max(costs);
      break;
  }

  std::vector<sim::DispatchAssignment> dispatched;
  for (std::size_t r = 0; r < assignment.size(); ++r) {
    const int t = assignment[r];
    if (t < 0) continue;
    const trace::Taxi& taxi = context.idle_taxis[static_cast<std::size_t>(t)];
    sim::DispatchAssignment out;
    out.taxi = taxi.id;
    out.requests = {context.pending[r].id};
    out.route = routing::single_rider_route(context.pending[r], taxi.location);
    dispatched.push_back(std::move(out));
  }
  return dispatched;
}

}  // namespace o2o::baselines
