// ILP baseline -- emulates the integer-linear-programming dispatch of
// Miao et al. [6]: per frame, jointly choose share groups and their
// taxis to (primary) serve the most requests and (secondary) minimize
// total travel distance. Solved exactly by branch & bound when the
// option set is small -- the regime where [6] derived optimal solutions
// -- and by the faster greedy heuristic (their large-scale fallback)
// otherwise.
#pragma once

#include <limits>
#include <string>

#include "packing/groups.h"
#include "sim/dispatcher.h"

namespace o2o::baselines {

struct IlpOptions {
  packing::GroupOptions grouping;       ///< θ and group-size limits
  std::size_t exact_option_limit = 24;  ///< B&B above this many options -> greedy
  std::size_t candidate_taxis_per_unit = 3;  ///< nearest taxis tried per unit
  double max_pickup_km = std::numeric_limits<double>::infinity();
};

class IlpDispatcher final : public sim::Dispatcher {
 public:
  explicit IlpDispatcher(IlpOptions options = {});

  std::string name() const override { return "ILP"; }
  std::vector<sim::DispatchAssignment> dispatch(const sim::DispatchContext& context) override;

 private:
  IlpOptions options_;
};

}  // namespace o2o::baselines
