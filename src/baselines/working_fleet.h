// Shared scratch state for the insertion-based sharing baselines (RAII,
// SARP, ILP-heuristic): a mutable per-frame copy of each taxi's route
// that accumulates the frame's insertions before being emitted as
// DispatchAssignments.
#pragma once

#include <unordered_map>
#include <vector>

#include "routing/route.h"
#include "sim/dispatcher.h"

namespace o2o::baselines {

struct WorkingTaxi {
  trace::Taxi taxi;          ///< id, current position, capacity
  routing::Route route;      ///< anchored at the taxi position
  int seats_onboard = 0;     ///< seats occupied right now
  bool busy = false;         ///< had a committed route at frame start
  std::unordered_map<trace::RequestId, int> seats_of;  ///< ids on route
  std::vector<trace::RequestId> new_requests;          ///< added this frame
};

/// Builds working copies for idle taxis and, when `include_busy`, busy
/// taxis (seeded with their remaining stops).
std::vector<WorkingTaxi> build_working_fleet(const sim::DispatchContext& context,
                                             bool include_busy);

/// True iff `route` never exceeds `taxi`'s capacity given its current
/// onboard seats and the seat demands in `taxi.seats_of` (+ `extra`).
bool capacity_ok(const WorkingTaxi& taxi, const routing::Route& route,
                 const trace::Request* extra = nullptr);

/// Emits one DispatchAssignment per working taxi that gained requests.
std::vector<sim::DispatchAssignment> emit_assignments(
    const std::vector<WorkingTaxi>& fleet);

}  // namespace o2o::baselines
