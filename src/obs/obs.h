// Frame-level observability: stage timers, typed counter/gauge
// registries, and per-frame trace records for the dispatch pipeline.
//
// Design constraints (DESIGN.md "Observability layer"):
//   * ~ns overhead when no sink is active -- every hot-path call is one
//     relaxed-ish atomic load plus a branch; a StageTimer never reads the
//     clock while disabled.
//   * No locks on hot paths while enabled -- each thread accumulates into
//     its own cache-line-aligned cell block; TraceSink::end_frame()
//     merges all registered blocks on the frame-owning thread.
//   * Compile-time kill switch: building a TU with -DO2O_OBS_DISABLED
//     turns the whole hot-path API into empty constexpr inlines (the
//     enabled/disabled variants live in distinct inline namespaces, so
//     mixed binaries stay ODR-clean).
//
// The merge protocol relies on the same barrier the dispatch pipeline
// already provides: ThreadPool::parallel_for blocks until every worker
// iteration finished, so by the time the frame owner calls end_frame()
// no other thread is writing its cells.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

namespace o2o::obs {

/// Pipeline stages a dispatch frame spends time in. kDispatch is the
/// whole dispatcher call and overlaps the others; the remaining stages
/// are pairwise disjoint.
enum class Stage : std::uint8_t {
  kProfileBuild,      ///< preference profile construction (sparse or dense)
  kComponentExtract,  ///< union-find pass over the candidate graph (sharded engine)
  kStableMatching,    ///< deferred-acceptance rounds (Algorithm 1 / mirror)
  kBreakDispatch,     ///< Algorithm 2 enumeration via BreakDispatch
  kGroupEnum,         ///< feasible share-group enumeration (Algorithm 3, line 1)
  kPacking,           ///< maximum set packing solve
  kEnroute,           ///< en-route insertion extension
  kDispatch,          ///< whole Dispatcher::dispatch call
  kGridPatch,         ///< incremental SpatialGrid delta application
  kCandidateGen,      ///< pair-candidate generation (grid queries + dedup or reuse)
  kExactEval,         ///< exact group evaluation (optimal_route + detour checks)
  kIngest,            ///< streaming service: drain ring + frame-barrier snapshot
  kCodec,             ///< streaming service: wire encode/decode
  kServiceFrame,      ///< streaming service: whole frame (barrier to response)
};
inline constexpr std::size_t kStageCount = 14;

/// Monotone event counters, merged by summation.
enum class Counter : std::uint8_t {
  kProposals,            ///< deferred-acceptance proposals issued
  kRejections,           ///< proposals refused (incl. displaced incumbents)
  kBreakAttempts,        ///< BreakDispatch calls during Algorithm 2
  kBreakSuccesses,       ///< successful BreakDispatch calls
  kGridCandidates,       ///< taxis returned by grid radius queries
  kGridCandidatesPruned, ///< taxis the grid query skipped vs. a dense scan
  kPreferencePairs,      ///< scored (request, taxi) pairs kept in profiles
  kOracleTreeHits,       ///< NetworkOracle Dijkstra-tree cache hits
  kOracleTreeMisses,     ///< NetworkOracle Dijkstra-tree cache misses
  kSnapHits,             ///< NetworkOracle snap-memo hits
  kSnapMisses,           ///< NetworkOracle snap-memo misses
  kPairCandidates,       ///< share-pair candidates surviving the grid prefilter
  kTripleCandidates,     ///< share-triple candidates evaluated
  kFeasibleGroups,       ///< feasible share groups found (|C|)
  kPackedGroups,         ///< groups selected by set packing
  kExactFallbacks,       ///< kExact frames degraded to local search
  kEnrouteInsertions,    ///< requests served by en-route insertion
  kShardComponents,      ///< candidate-graph components dispatched (sharded engine)
  kShardFallbacks,       ///< sharded calls that took the serial path (parallel=false)
  kConeRejects,          ///< pair candidates dropped by the direction-cone prune
  kSimdBatches,          ///< 8-lane SIMD filter batches executed
  kSimdBatchOccupancy,   ///< lanes occupied across those batches
  kGroupCacheHits,       ///< group candidates answered from the cross-frame cache
  kGroupCacheRevalidations,  ///< group candidates exactly re-evaluated and cached
  kGridPatches,          ///< incremental SpatialGrid insert/remove/move operations
  kGridCompactions,      ///< SpatialGrid re-bins triggered by the mutation threshold
  kCandidatesReused,     ///< pair candidates replayed from persisted neighbor lists
  kDaWarmSeeds,          ///< deferred-acceptance engagements seeded from the prior frame
  kExactParallelBatches, ///< exact-evaluation batches fanned over the thread pool
  kCacheEvictions,       ///< GroupCache entries dropped by the epoch/size sweep
  kEventsIngested,       ///< ride events accepted by the service ingestion ring
  kFramesStreamed,       ///< frame barriers matched by the streaming service
  kIngestBackpressure,   ///< producer spins on a full ingestion ring
  kFramesRejected,       ///< frames dropped for violating the api contract
};
inline constexpr std::size_t kCounterCount = 34;

/// Peak working-set sizes, merged by maximum (within a frame and across
/// frames in the aggregate view).
enum class Gauge : std::uint8_t {
  kProfilePairsPeak,  ///< scored pairs held by one profile
  kPackingSetsPeak,   ///< sets handed to one set-packing solve
  kUnitsPeak,         ///< dispatch units (groups + singletons) in one frame
  kPendingPeak,       ///< pending requests in one frame
  kLargestComponentPeak,  ///< member requests in the largest sharded component
  kQueueDepthPeak,    ///< ingestion-ring occupancy peak seen by the service
};
inline constexpr std::size_t kGaugeCount = 6;

/// Short stable names used by the JSON/CSV exports and the CLI table.
std::string_view stage_name(Stage stage) noexcept;
std::string_view counter_name(Counter counter) noexcept;
std::string_view gauge_name(Gauge gauge) noexcept;

/// Everything one frame reported: context sizes, stage durations,
/// counters, and gauge peaks. Plain data; round-trips through
/// sim/report_io as JSON and CSV.
struct FrameTrace {
  std::uint64_t frame = 0;       ///< frame index within the run
  double now_seconds = 0.0;      ///< simulation clock at frame start
  double wall_ms = 0.0;          ///< begin_frame -> end_frame wall time
  std::uint64_t idle_taxis = 0;
  std::uint64_t busy_taxis = 0;
  std::uint64_t pending_requests = 0;
  std::uint64_t assignments = 0;
  std::array<std::uint64_t, kStageCount> stage_ns{};
  std::array<std::uint64_t, kCounterCount> counters{};
  std::array<std::uint64_t, kGaugeCount> gauges{};

  friend bool operator==(const FrameTrace&, const FrameTrace&) = default;
};

/// Sums `frames` into one record: stage times and counters add, gauges
/// max, context sizes add (so aggregate.assignments is the run total);
/// `frame` holds the number of frames summed.
FrameTrace aggregate_frames(const std::vector<FrameTrace>& frames);

/// Knobs carried by DispatchConfig; consumed by whoever owns the sink
/// (the simulator CLI, a bench harness, a test).
struct TraceOptions {
  bool enabled = false;       ///< master switch: no sink is created when false
  bool per_frame = true;      ///< keep per-frame records (aggregate-only when false)
  std::size_t max_frames = 1u << 20;  ///< retention cap on per-frame records
};

namespace detail {

/// One thread's accumulation block. Cache-line aligned so two workers
/// never share a line; plain (non-atomic) fields because each block has
/// exactly one writer and is only read at the frame barrier.
struct alignas(64) Cells {
  std::array<std::uint64_t, kCounterCount> counters{};
  std::array<std::uint64_t, kGaugeCount> gauges{};
  std::array<std::uint64_t, kStageCount> stage_ns{};
};

}  // namespace detail

/// Collects one run's frame traces. Lifecycle:
///
///   obs::TraceSink sink(options);
///   obs::Activation guard(sink);          // installs as process-active
///   for each frame:
///     sink.begin_frame(index, now);
///     ... dispatch (hot paths report via obs::add / StageTimer) ...
///     sink.set_frame_context(idle, busy, pending);
///     sink.add_assignments(n);
///     sink.end_frame();                   // merges thread cells
///
/// begin/end/set/add member calls must come from the frame-owning thread
/// while no traced parallel region is running. Hot-path reporting from
/// worker threads is lock-free (thread-local cells).
class TraceSink {
 public:
  explicit TraceSink(TraceOptions options = {.enabled = true});
  ~TraceSink();

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  const TraceOptions& options() const noexcept { return options_; }

  void begin_frame(std::uint64_t frame_index, double now_seconds);
  /// Merges every registered thread block into the open frame, appends
  /// it (subject to per_frame / max_frames), folds it into the running
  /// aggregate, and returns it.
  FrameTrace end_frame();

  /// Context sizes of the open frame (frame-owner thread only).
  void set_frame_context(std::uint64_t idle_taxis, std::uint64_t busy_taxis,
                         std::uint64_t pending_requests);
  void add_assignments(std::uint64_t count);

  std::uint64_t frames_recorded() const noexcept { return frames_seen_; }
  const std::vector<FrameTrace>& frames() const noexcept { return frames_; }
  /// Running aggregate over every frame ended so far (including frames
  /// dropped from `frames()` by per_frame=false or the retention cap).
  const FrameTrace& aggregate() const noexcept { return aggregate_; }

  /// Registers the calling thread's block with this sink (internal; used
  /// by the hot-path thread binding).
  detail::Cells* register_thread();

 private:
  TraceOptions options_;
  std::mutex registry_mutex_;
  std::vector<std::shared_ptr<detail::Cells>> registered_;

  bool frame_open_ = false;
  FrameTrace current_;
  std::chrono::steady_clock::time_point frame_start_{};
  std::vector<FrameTrace> frames_;
  FrameTrace aggregate_;
  std::uint64_t frames_seen_ = 0;
};

/// Installs `sink` as the process-active sink for its lifetime. Nesting
/// is not supported (the previous sink is deactivated); activation and
/// deactivation must happen while no traced parallel region runs.
class Activation {
 public:
  explicit Activation(TraceSink& sink);
  ~Activation();

  Activation(const Activation&) = delete;
  Activation& operator=(const Activation&) = delete;

 private:
  TraceSink* previous_;
};

namespace detail {

// The process-active sink and its activation epoch. Threads cache their
// cell block per epoch; bumping the epoch on every (de)activation makes
// stale bindings impossible (no ABA on reused sink addresses).
extern std::atomic<TraceSink*> g_active_sink;
extern std::atomic<std::uint64_t> g_epoch;

/// Slow path of cells(): (re)binds the calling thread to the active
/// sink under the sink's registry mutex. Returns nullptr when the sink
/// vanished meanwhile.
Cells* bind_current_thread(TraceSink* sink, std::uint64_t epoch);

}  // namespace detail

/// Active sink, or nullptr. Safe from any thread.
inline TraceSink* active_sink() noexcept {
  return detail::g_active_sink.load(std::memory_order_acquire);
}

#if defined(O2O_OBS_DISABLED)

/// Compile-time-disabled variant: the whole hot-path API collapses to
/// empty constexpr inlines. Lives in its own inline namespace so TUs
/// built with and without the flag can link into one binary.
inline namespace noop {

constexpr bool compile_time_enabled() noexcept { return false; }
constexpr bool tracing_active() noexcept { return false; }

constexpr void add(Counter, std::uint64_t = 1) noexcept {}
constexpr void gauge_max(Gauge, std::uint64_t) noexcept {}
constexpr void add_stage_ns(Stage, std::uint64_t) noexcept {}

/// Empty shell: no clock reads, no state, sizeof == 1.
class StageTimer {
 public:
  constexpr explicit StageTimer(Stage) noexcept {}
};

class ScopedTimer {
 public:
  constexpr explicit ScopedTimer(std::uint64_t&) noexcept {}
};

}  // inline namespace noop

#else  // !O2O_OBS_DISABLED

inline namespace live {

constexpr bool compile_time_enabled() noexcept { return true; }

/// The calling thread's cell block for the active sink, or nullptr when
/// tracing is off. Disabled cost: one acquire load + branch.
inline detail::Cells* cells() noexcept {
  TraceSink* sink = detail::g_active_sink.load(std::memory_order_acquire);
  if (sink == nullptr) return nullptr;
  thread_local std::uint64_t bound_epoch = 0;
  thread_local detail::Cells* bound_cells = nullptr;
  const std::uint64_t epoch = detail::g_epoch.load(std::memory_order_acquire);
  if (bound_epoch != epoch) {
    bound_cells = detail::bind_current_thread(sink, epoch);
    bound_epoch = epoch;
  }
  return bound_cells;
}

inline bool tracing_active() noexcept { return active_sink() != nullptr; }

inline void add(Counter counter, std::uint64_t n = 1) noexcept {
  if (detail::Cells* c = cells()) {
    c->counters[static_cast<std::size_t>(counter)] += n;
  }
}

inline void gauge_max(Gauge gauge, std::uint64_t value) noexcept {
  if (detail::Cells* c = cells()) {
    std::uint64_t& slot = c->gauges[static_cast<std::size_t>(gauge)];
    if (value > slot) slot = value;
  }
}

inline void add_stage_ns(Stage stage, std::uint64_t ns) noexcept {
  if (detail::Cells* c = cells()) {
    c->stage_ns[static_cast<std::size_t>(stage)] += ns;
  }
}

/// RAII stage timer. Binds to the calling thread's cells once at
/// construction; when tracing is off it never touches the clock.
class StageTimer {
 public:
  explicit StageTimer(Stage stage) noexcept : cells_(cells()), stage_(stage) {
    if (cells_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~StageTimer() {
    if (cells_ != nullptr) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      cells_->stage_ns[static_cast<std::size_t>(stage_)] += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
    }
  }

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  detail::Cells* cells_;
  Stage stage_;
  std::chrono::steady_clock::time_point start_{};
};

/// RAII timer into a caller-owned nanosecond accumulator -- the
/// sink-free building block benches and tests use directly.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::uint64_t& out_ns) noexcept
      : out_(&out_ns), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    *out_ += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::uint64_t* out_;
  std::chrono::steady_clock::time_point start_;
};

}  // inline namespace live

#endif  // O2O_OBS_DISABLED

}  // namespace o2o::obs
