#include "obs/obs.h"

#include <algorithm>

#include "util/contracts.h"

namespace o2o::obs {

namespace detail {

std::atomic<TraceSink*> g_active_sink{nullptr};
// Starts at 1 so a fresh thread's bound_epoch == 0 never matches.
std::atomic<std::uint64_t> g_epoch{1};

Cells* bind_current_thread(TraceSink* sink, std::uint64_t epoch) {
  // The sink may have been deactivated between the caller's load and
  // now; re-check under the current epoch so we never register with a
  // sink on its way out.
  if (detail::g_active_sink.load(std::memory_order_acquire) != sink ||
      detail::g_epoch.load(std::memory_order_acquire) != epoch) {
    return nullptr;
  }
  return sink->register_thread();
}

}  // namespace detail

std::string_view stage_name(Stage stage) noexcept {
  switch (stage) {
    case Stage::kProfileBuild: return "profile_build";
    case Stage::kComponentExtract: return "component_extract";
    case Stage::kStableMatching: return "stable_matching";
    case Stage::kBreakDispatch: return "break_dispatch";
    case Stage::kGroupEnum: return "group_enum";
    case Stage::kPacking: return "packing";
    case Stage::kEnroute: return "enroute";
    case Stage::kDispatch: return "dispatch";
    case Stage::kGridPatch: return "grid_patch";
    case Stage::kCandidateGen: return "candidate_gen";
    case Stage::kExactEval: return "exact_eval";
    case Stage::kIngest: return "ingest";
    case Stage::kCodec: return "codec";
    case Stage::kServiceFrame: return "service_frame";
  }
  return "unknown";
}

std::string_view counter_name(Counter counter) noexcept {
  switch (counter) {
    case Counter::kProposals: return "proposals";
    case Counter::kRejections: return "rejections";
    case Counter::kBreakAttempts: return "break_attempts";
    case Counter::kBreakSuccesses: return "break_successes";
    case Counter::kGridCandidates: return "grid_candidates";
    case Counter::kGridCandidatesPruned: return "grid_candidates_pruned";
    case Counter::kPreferencePairs: return "preference_pairs";
    case Counter::kOracleTreeHits: return "oracle_tree_hits";
    case Counter::kOracleTreeMisses: return "oracle_tree_misses";
    case Counter::kSnapHits: return "snap_hits";
    case Counter::kSnapMisses: return "snap_misses";
    case Counter::kPairCandidates: return "pair_candidates";
    case Counter::kTripleCandidates: return "triple_candidates";
    case Counter::kFeasibleGroups: return "feasible_groups";
    case Counter::kPackedGroups: return "packed_groups";
    case Counter::kExactFallbacks: return "exact_fallbacks";
    case Counter::kEnrouteInsertions: return "enroute_insertions";
    case Counter::kShardComponents: return "shard_components";
    case Counter::kShardFallbacks: return "shard_fallbacks";
    case Counter::kConeRejects: return "cone_rejects";
    case Counter::kSimdBatches: return "simd_batches";
    case Counter::kSimdBatchOccupancy: return "simd_batch_occupancy";
    case Counter::kGroupCacheHits: return "cache_hits";
    case Counter::kGroupCacheRevalidations: return "cache_revalidations";
    case Counter::kGridPatches: return "grid_patches";
    case Counter::kGridCompactions: return "grid_compactions";
    case Counter::kCandidatesReused: return "candidates_reused";
    case Counter::kDaWarmSeeds: return "da_warm_seeds";
    case Counter::kExactParallelBatches: return "exact_parallel_batches";
    case Counter::kCacheEvictions: return "cache_evictions";
    case Counter::kEventsIngested: return "events_ingested";
    case Counter::kFramesStreamed: return "frames_streamed";
    case Counter::kIngestBackpressure: return "ingest_backpressure";
    case Counter::kFramesRejected: return "frames_rejected";
  }
  return "unknown";
}

std::string_view gauge_name(Gauge gauge) noexcept {
  switch (gauge) {
    case Gauge::kProfilePairsPeak: return "profile_pairs_peak";
    case Gauge::kPackingSetsPeak: return "packing_sets_peak";
    case Gauge::kUnitsPeak: return "units_peak";
    case Gauge::kPendingPeak: return "pending_peak";
    case Gauge::kLargestComponentPeak: return "largest_component_peak";
    case Gauge::kQueueDepthPeak: return "queue_depth_peak";
  }
  return "unknown";
}

FrameTrace aggregate_frames(const std::vector<FrameTrace>& frames) {
  FrameTrace total;
  total.frame = frames.size();
  for (const FrameTrace& f : frames) {
    total.now_seconds = std::max(total.now_seconds, f.now_seconds);
    total.wall_ms += f.wall_ms;
    total.idle_taxis += f.idle_taxis;
    total.busy_taxis += f.busy_taxis;
    total.pending_requests += f.pending_requests;
    total.assignments += f.assignments;
    for (std::size_t s = 0; s < kStageCount; ++s) total.stage_ns[s] += f.stage_ns[s];
    for (std::size_t c = 0; c < kCounterCount; ++c) total.counters[c] += f.counters[c];
    for (std::size_t g = 0; g < kGaugeCount; ++g) {
      total.gauges[g] = std::max(total.gauges[g], f.gauges[g]);
    }
  }
  return total;
}

TraceSink::TraceSink(TraceOptions options) : options_(options) {}

TraceSink::~TraceSink() {
  // Self-deactivate if someone forgot the Activation guard's scope.
  TraceSink* self = this;
  if (detail::g_active_sink.compare_exchange_strong(self, nullptr,
                                                    std::memory_order_acq_rel)) {
    detail::g_epoch.fetch_add(1, std::memory_order_acq_rel);
  }
}

detail::Cells* TraceSink::register_thread() {
  auto cells = std::make_shared<detail::Cells>();
  detail::Cells* raw = cells.get();
  std::lock_guard lock(registry_mutex_);
  registered_.push_back(std::move(cells));
  return raw;
}

void TraceSink::begin_frame(std::uint64_t frame_index, double now_seconds) {
  O2O_EXPECTS(!frame_open_);
  frame_open_ = true;
  current_ = FrameTrace{};
  current_.frame = frame_index;
  current_.now_seconds = now_seconds;
  frame_start_ = std::chrono::steady_clock::now();
  // Drop anything accumulated between frames so each frame is
  // self-contained. Safe: no traced parallel region runs at the frame
  // boundary (parallel_for is a barrier).
  std::lock_guard lock(registry_mutex_);
  for (const auto& cells : registered_) *cells = detail::Cells{};
}

FrameTrace TraceSink::end_frame() {
  O2O_EXPECTS(frame_open_);
  frame_open_ = false;
  const auto elapsed = std::chrono::steady_clock::now() - frame_start_;
  current_.wall_ms =
      std::chrono::duration<double, std::milli>(elapsed).count();
  {
    std::lock_guard lock(registry_mutex_);
    for (const auto& cells : registered_) {
      for (std::size_t c = 0; c < kCounterCount; ++c) {
        current_.counters[c] += cells->counters[c];
      }
      for (std::size_t g = 0; g < kGaugeCount; ++g) {
        current_.gauges[g] = std::max(current_.gauges[g], cells->gauges[g]);
      }
      for (std::size_t s = 0; s < kStageCount; ++s) {
        current_.stage_ns[s] += cells->stage_ns[s];
      }
      *cells = detail::Cells{};
    }
  }

  ++frames_seen_;
  // Fold into the running aggregate (same rules as aggregate_frames).
  aggregate_.frame = frames_seen_;
  aggregate_.now_seconds = std::max(aggregate_.now_seconds, current_.now_seconds);
  aggregate_.wall_ms += current_.wall_ms;
  aggregate_.idle_taxis += current_.idle_taxis;
  aggregate_.busy_taxis += current_.busy_taxis;
  aggregate_.pending_requests += current_.pending_requests;
  aggregate_.assignments += current_.assignments;
  for (std::size_t s = 0; s < kStageCount; ++s) {
    aggregate_.stage_ns[s] += current_.stage_ns[s];
  }
  for (std::size_t c = 0; c < kCounterCount; ++c) {
    aggregate_.counters[c] += current_.counters[c];
  }
  for (std::size_t g = 0; g < kGaugeCount; ++g) {
    aggregate_.gauges[g] = std::max(aggregate_.gauges[g], current_.gauges[g]);
  }

  if (options_.per_frame && frames_.size() < options_.max_frames) {
    frames_.push_back(current_);
  }
  return current_;
}

void TraceSink::set_frame_context(std::uint64_t idle_taxis, std::uint64_t busy_taxis,
                                  std::uint64_t pending_requests) {
  O2O_EXPECTS(frame_open_);
  current_.idle_taxis = idle_taxis;
  current_.busy_taxis = busy_taxis;
  current_.pending_requests = pending_requests;
}

void TraceSink::add_assignments(std::uint64_t count) {
  O2O_EXPECTS(frame_open_);
  current_.assignments += count;
}

Activation::Activation(TraceSink& sink)
    : previous_(detail::g_active_sink.exchange(&sink, std::memory_order_acq_rel)) {
  detail::g_epoch.fetch_add(1, std::memory_order_acq_rel);
}

Activation::~Activation() {
  detail::g_active_sink.store(previous_, std::memory_order_release);
  detail::g_epoch.fetch_add(1, std::memory_order_acq_rel);
}

}  // namespace o2o::obs
