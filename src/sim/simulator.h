// Frame-based city simulator (Section III-A): time is discretized into
// frames (one minute by default); idle taxis are dispatched to pending
// requests within each frame; taxis drive at a fixed speed (20 km/h in
// the paper's evaluation) along their routes, picking up and dropping
// off passengers.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "geo/distance_oracle.h"
#include "sim/dispatcher.h"
#include "sim/frame_state.h"
#include "sim/report.h"
#include "trace/fleet.h"
#include "trace/trace.h"

namespace o2o::sim {

/// Per-frame dispatch hook for run_streamed: receives the assembled
/// frame context (and the frame index) and returns the assignments to
/// apply — exactly what Dispatcher::dispatch returns, but the callee
/// may route the frame anywhere first (e.g. through the streaming
/// service's wire codec) as long as the returned assignments are valid
/// for the context.
using FrameDispatchFn = std::function<std::vector<DispatchAssignment>(
    const DispatchContext&, std::uint64_t frame)>;

/// Runs `dispatcher` over `trace` with the given fleet and returns the
/// full report. Deterministic for a fixed trace/fleet/dispatcher.
class Simulator {
 public:
  Simulator(const trace::Trace& trace, std::vector<trace::Taxi> fleet,
            const geo::DistanceOracle& oracle, SimulatorConfig config = {});

  SimulationReport run(Dispatcher& dispatcher);

  /// The frame loop with the dispatcher call abstracted out: the
  /// streaming service's replay driver uses this to push every frame
  /// through the wire codec and a DispatchSession, then feed the decoded
  /// assignments back — proving streamed output bit-identical to run().
  SimulationReport run_streamed(const FrameDispatchFn& dispatch_fn,
                                std::string_view dispatcher_name);

 private:
  const trace::Trace& trace_;
  std::vector<trace::Taxi> initial_fleet_;
  const geo::DistanceOracle& oracle_;
  SimulatorConfig config_;

  // Per-run state (reset by run()/run_streamed()).
  std::vector<TaxiState> taxis_;
  std::unordered_map<trace::TaxiId, std::size_t> taxi_index_;
  std::deque<trace::Request> pending_;
  std::unordered_map<trace::RequestId, trace::Request> active_requests_;
  SimulationReport report_;
  std::unordered_map<trace::RequestId, std::size_t> record_index_;
  /// Assembles each frame's DispatchContext and owns the cross-frame
  /// acceleration state (GroupCache, incremental idle pool + grid).
  FrameSnapshotter snapshotter_;

  void reset();
  void ingest_arrivals(std::size_t& next_request, double now);
  void cancel_stale(double now);
  void apply_assignment(const DispatchAssignment& assignment, double now);
  void validate_assignment(const DispatchAssignment& assignment,
                           const TaxiState& taxi) const;
  void move_taxis(double now, double dt);
  void record_dispatch(const DispatchAssignment& assignment, const TaxiState& taxi,
                       double now);
  RequestRecord& record_of(trace::RequestId id);
};

}  // namespace o2o::sim
