// Frame-based city simulator (Section III-A): time is discretized into
// frames (one minute by default); idle taxis are dispatched to pending
// requests within each frame; taxis drive at a fixed speed (20 km/h in
// the paper's evaluation) along their routes, picking up and dropping
// off passengers.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "geo/distance_oracle.h"
#include "geo/road_network.h"
#include "index/spatial_grid.h"
#include "obs/obs.h"
#include "packing/group_enum.h"
#include "sim/dispatcher.h"
#include "sim/report.h"
#include "trace/fleet.h"
#include "trace/trace.h"

namespace o2o::sim {

struct SimulatorConfig {
  double frame_seconds = 60.0;
  double speed_kmh = 20.0;
  /// Pending requests older than this give up (cancelled). The paper's
  /// stable dispatch deliberately leaves some requests waiting for a
  /// nearby busy taxi instead of dispatching a distant idle one.
  double cancel_timeout_seconds = 3600.0;
  /// Extra time simulated past the last request so trailing rides finish.
  double drain_seconds = 1800.0;
  /// α / β used for the dissatisfaction metrics (the paper sets both 1).
  double alpha = 1.0;
  double beta = 1.0;
  /// Optional kinematic substrate: when set, taxis drive along this
  /// network's shortest paths between stops instead of straight lines
  /// (pair it with a NetworkOracle over the same network for a fully
  /// road-consistent experiment). The network must be laid out in the
  /// same coordinate frame as the trace.
  const geo::RoadNetwork* road_network = nullptr;
  /// Cell size of the per-frame spatial index over idle taxis handed to
  /// dispatchers via DispatchContext::idle_grid.
  double idle_grid_cell_km = 1.0;
  /// Incremental-frame mode (DESIGN.md "Incremental frame engine"): keep
  /// the idle-taxi snapshot and its spatial index alive across frames
  /// and patch them on idle/busy transitions instead of rebuilding both
  /// every frame. The snapshot is maintained with swap-removal, so the
  /// idle span dispatchers see is a *permutation* of the rebuilt one —
  /// assignments are identical except when two taxis score exactly equal
  /// for a request (index tie-breaks may then pick the other one), which
  /// has measure zero on real traces. Off by default so the rebuilt path
  /// stays the differential reference.
  bool incremental_grid = false;
  /// When set, run() installs the sink as the process-active trace sink
  /// and drives its frame lifecycle (begin/end around every frame).
  obs::TraceSink* trace_sink = nullptr;
};

/// Runtime state of one taxi.
struct TaxiState {
  trace::Taxi spec;                      ///< id, seats (location = initial)
  geo::Point position;
  std::deque<routing::Stop> stops;       ///< remaining route
  std::vector<trace::RequestId> onboard; ///< picked up
  std::vector<trace::RequestId> committed;  ///< dispatched, not yet picked up
  int seats_in_use = 0;
  double distance_driven_km = 0.0;
  /// Current leg's drivable polyline (network mode); rebuilt per leg and
  /// discarded whenever the route changes.
  std::vector<geo::Point> leg_waypoints;
  std::size_t next_waypoint = 0;

  bool idle() const noexcept { return stops.empty(); }
};

/// Runs `dispatcher` over `trace` with the given fleet and returns the
/// full report. Deterministic for a fixed trace/fleet/dispatcher.
class Simulator {
 public:
  Simulator(const trace::Trace& trace, std::vector<trace::Taxi> fleet,
            const geo::DistanceOracle& oracle, SimulatorConfig config = {});

  SimulationReport run(Dispatcher& dispatcher);

 private:
  const trace::Trace& trace_;
  std::vector<trace::Taxi> initial_fleet_;
  const geo::DistanceOracle& oracle_;
  SimulatorConfig config_;

  // Per-run state (reset by run()).
  std::vector<TaxiState> taxis_;
  std::unordered_map<trace::TaxiId, std::size_t> taxi_index_;
  std::deque<trace::Request> pending_;
  std::unordered_map<trace::RequestId, trace::Request> active_requests_;
  SimulationReport report_;
  std::unordered_map<trace::RequestId, std::size_t> record_index_;
  /// Cross-frame share-group verdict cache handed to dispatchers via
  /// DispatchContext::group_cache. Fresh per run, so repeated runs of
  /// the same simulator stay deterministic and independent.
  std::unique_ptr<packing::GroupCache> group_cache_;
  /// Incremental-grid state (config_.incremental_grid): a persistent
  /// idle-taxi snapshot in swap-removal order plus its spatial index,
  /// both patched per frame in refresh_idle_pool. Grid ids are pool
  /// slots, so within_radius results index straight into the span.
  std::vector<trace::Taxi> idle_pool_;
  std::unordered_map<trace::TaxiId, std::size_t> idle_slot_of_;
  std::optional<index::SpatialGrid> idle_pool_grid_;

  void reset();
  void refresh_idle_pool();
  void ingest_arrivals(std::size_t& next_request, double now);
  void cancel_stale(double now);
  std::vector<DispatchAssignment> invoke_dispatcher(Dispatcher& dispatcher, double now);
  void apply_assignment(const DispatchAssignment& assignment, double now);
  void validate_assignment(const DispatchAssignment& assignment,
                           const TaxiState& taxi) const;
  void move_taxis(double now, double dt);
  void record_dispatch(const DispatchAssignment& assignment, const TaxiState& taxi,
                       double now);
  RequestRecord& record_of(trace::RequestId id);
};

}  // namespace o2o::sim
