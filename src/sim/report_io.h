// Report persistence: per-request records and metric CDFs as CSV, so any
// simulation run can be archived and plotted without re-running.
#pragma once

#include <iosfwd>

#include "sim/report.h"

namespace o2o::sim {

/// One row per request: id, timeline, delay, dissatisfaction, flags.
void write_request_records_csv(std::ostream& out, const SimulationReport& report);

/// Reads records written by write_request_records_csv back into a bare
/// report (aggregates and CDFs are rebuilt from the rows).
SimulationReport read_request_records_csv(std::istream& in, const std::string& name);

/// The three metric CDFs as sorted-sample columns (ragged rows padded
/// with empty fields).
void write_cdfs_csv(std::ostream& out, const SimulationReport& report);

}  // namespace o2o::sim
