// Report persistence: per-request records, metric CDFs, and per-frame
// observability traces as CSV/JSON, so any simulation run can be
// archived and plotted without re-running.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.h"
#include "sim/report.h"

namespace o2o::sim {

/// One row per request: id, timeline, delay, dissatisfaction, flags.
void write_request_records_csv(std::ostream& out, const SimulationReport& report);

/// Reads records written by write_request_records_csv back into a bare
/// report (aggregates and CDFs are rebuilt from the rows).
SimulationReport read_request_records_csv(std::istream& in, const std::string& name);

/// The three metric CDFs as sorted-sample columns (ragged rows padded
/// with empty fields).
void write_cdfs_csv(std::ostream& out, const SimulationReport& report);

/// Frame traces as a JSON array: one object per frame with the context
/// fields inline and `stages_ns` / `counters` / `gauges` maps keyed by
/// the stable obs names. Doubles are written with round-trip precision.
void write_frame_traces_json(std::ostream& out,
                             const std::vector<obs::FrameTrace>& frames);

/// Same as above, wrapped in an object that also records the
/// configuration the run was produced under:
/// `{"config": {"key": "value", ...}, "frames": [...]}`. Pass the
/// key/value pairs from DispatchConfig::describe(); values are emitted
/// as JSON strings verbatim.
void write_frame_traces_json(std::ostream& out,
                             const std::vector<obs::FrameTrace>& frames,
                             const std::vector<std::pair<std::string, std::string>>& config_kv);

/// Reads traces written by write_frame_traces_json — either the bare
/// array form or the config-wrapped object form (the config block is
/// skipped on read). Unknown keys are ignored (forward compatibility);
/// throws std::runtime_error on malformed JSON.
std::vector<obs::FrameTrace> read_frame_traces_json(std::istream& in);

/// Flat CSV: one row per frame, one column per context field, stage,
/// counter, and gauge.
void write_frame_traces_csv(std::ostream& out,
                            const std::vector<obs::FrameTrace>& frames);

/// Human-readable run summary: per-stage total/mean wall time plus every
/// non-zero counter and gauge peak, aggregated over `frames`.
void write_trace_summary(std::ostream& out, const std::vector<obs::FrameTrace>& frames);

}  // namespace o2o::sim
