// Simulation output: per-request records plus the aggregates the paper
// reports -- CDFs of dispatch delay / passenger dissatisfaction / taxi
// dissatisfaction (Figs. 4, 5, 8, 9), their means (Fig. 6), and
// clock-time bucketed means (Fig. 7).
#pragma once

#include <string>
#include <vector>

#include "metrics/cdf.h"
#include "metrics/hourly.h"
#include "metrics/summary.h"
#include "trace/request.h"

namespace o2o::sim {

struct RequestRecord {
  trace::RequestId id = trace::kInvalidRequest;
  double request_time = 0.0;
  double dispatch_time = -1.0;  ///< < 0 when never dispatched
  double pickup_time = -1.0;
  double dropoff_time = -1.0;
  double dispatch_delay_minutes = -1.0;
  double passenger_dissatisfaction_km = 0.0;
  bool shared = false;
  bool cancelled = false;

  bool served() const noexcept { return dispatch_time >= 0.0; }
};

struct SimulationReport {
  std::string dispatcher_name;
  std::vector<RequestRecord> requests;

  // Sample sets for the paper's three metrics (served requests /
  // dispatched rides only, as in the paper).
  metrics::CdfBuilder delay_cdf;       ///< minutes
  metrics::CdfBuilder passenger_cdf;   ///< km
  metrics::CdfBuilder taxi_cdf;        ///< km (one sample per dispatched ride)

  metrics::HourlyBuckets hourly_delay{3};
  metrics::HourlyBuckets hourly_passenger{3};
  metrics::HourlyBuckets hourly_taxi{3};

  std::size_t served = 0;
  std::size_t cancelled = 0;
  std::size_t pending_at_end = 0;
  std::size_t shared_rides = 0;     ///< rides with >= 2 requests
  std::size_t dispatched_rides = 0; ///< assignments issued
  double total_taxi_distance_km = 0.0;
  double simulated_seconds = 0.0;

  metrics::StreamingStats delay_stats;      ///< minutes
  metrics::StreamingStats passenger_stats;  ///< km
  metrics::StreamingStats taxi_stats;       ///< km
};

}  // namespace o2o::sim
