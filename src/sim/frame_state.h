// Per-frame dispatch state, extracted from the simulator loop so that
// any frame source — the batch Simulator, the streaming dispatch
// service's replay driver — assembles DispatchContexts through one code
// path. The snapshotter owns everything that must persist *between*
// dispatch calls for the incremental frame engine: the cross-frame
// GroupCache, and (under SimulatorConfig::incremental_grid) the
// swap-removal idle pool plus its delta-patched SpatialGrid.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "geo/distance_oracle.h"
#include "geo/road_network.h"
#include "index/spatial_grid.h"
#include "obs/obs.h"
#include "packing/group_enum.h"
#include "sim/dispatcher.h"
#include "trace/fleet.h"
#include "trace/trace.h"

namespace o2o::sim {

struct SimulatorConfig {
  double frame_seconds = 60.0;
  double speed_kmh = 20.0;
  /// Pending requests older than this give up (cancelled). The paper's
  /// stable dispatch deliberately leaves some requests waiting for a
  /// nearby busy taxi instead of dispatching a distant idle one.
  double cancel_timeout_seconds = 3600.0;
  /// Extra time simulated past the last request so trailing rides finish.
  double drain_seconds = 1800.0;
  /// α / β used for the dissatisfaction metrics (the paper sets both 1).
  double alpha = 1.0;
  double beta = 1.0;
  /// Optional kinematic substrate: when set, taxis drive along this
  /// network's shortest paths between stops instead of straight lines
  /// (pair it with a NetworkOracle over the same network for a fully
  /// road-consistent experiment). The network must be laid out in the
  /// same coordinate frame as the trace.
  const geo::RoadNetwork* road_network = nullptr;
  /// Cell size of the per-frame spatial index over idle taxis handed to
  /// dispatchers via DispatchContext::idle_grid.
  double idle_grid_cell_km = 1.0;
  /// Incremental-frame mode (DESIGN.md "Incremental frame engine"): keep
  /// the idle-taxi snapshot and its spatial index alive across frames
  /// and patch them on idle/busy transitions instead of rebuilding both
  /// every frame. The snapshot is maintained with swap-removal, so the
  /// idle span dispatchers see is a *permutation* of the rebuilt one —
  /// assignments are identical except when two taxis score exactly equal
  /// for a request (index tie-breaks may then pick the other one), which
  /// has measure zero on real traces. Off by default so the rebuilt path
  /// stays the differential reference.
  bool incremental_grid = false;
  /// When set, run() installs the sink as the process-active trace sink
  /// and drives its frame lifecycle (begin/end around every frame).
  obs::TraceSink* trace_sink = nullptr;
};

/// Runtime state of one taxi.
struct TaxiState {
  trace::Taxi spec;                      ///< id, seats (location = initial)
  geo::Point position;
  std::deque<routing::Stop> stops;       ///< remaining route
  std::vector<trace::RequestId> onboard; ///< picked up
  std::vector<trace::RequestId> committed;  ///< dispatched, not yet picked up
  int seats_in_use = 0;
  double distance_driven_km = 0.0;
  /// Current leg's drivable polyline (network mode); rebuilt per leg and
  /// discarded whenever the route changes.
  std::vector<geo::Point> leg_waypoints;
  std::size_t next_waypoint = 0;

  bool idle() const noexcept { return stops.empty(); }
};

/// Builds each frame's DispatchContext from the live taxi states and the
/// pending queue, and carries the cross-frame acceleration state. The
/// spans inside a returned context point into buffers owned here and
/// stay valid until the next snapshot()/reset() call.
class FrameSnapshotter {
 public:
  FrameSnapshotter(const geo::DistanceOracle& oracle, const SimulatorConfig& config);

  /// Drops all cross-frame state (idle pool, patched grid, GroupCache),
  /// returning the snapshotter to its freshly constructed state, so
  /// repeated runs of the same owner stay deterministic and independent.
  void reset();

  DispatchContext snapshot(
      std::span<const TaxiState> taxis,
      const std::unordered_map<trace::TaxiId, std::size_t>& taxi_index,
      const std::deque<trace::Request>& pending,
      const std::unordered_map<trace::RequestId, trace::Request>& active_requests,
      double now);

 private:
  void refresh_idle_pool(std::span<const TaxiState> taxis,
                         const std::unordered_map<trace::TaxiId, std::size_t>& taxi_index);

  const geo::DistanceOracle& oracle_;
  const SimulatorConfig& config_;

  // Per-frame snapshot buffers (rebuilt by every snapshot call).
  std::vector<trace::Taxi> idle_;
  std::vector<BusyTaxiView> busy_;
  std::vector<trace::Request> pending_snapshot_;
  std::optional<index::SpatialGrid> idle_grid_;
  std::vector<geo::Point> frame_points_;

  /// Cross-frame share-group verdict cache handed to dispatchers via
  /// DispatchContext::group_cache. Fresh per reset().
  std::unique_ptr<packing::GroupCache> group_cache_;

  /// Incremental-grid state (config_.incremental_grid): a persistent
  /// idle-taxi snapshot in swap-removal order plus its spatial index,
  /// both patched per frame in refresh_idle_pool. Grid ids are pool
  /// slots, so within_radius results index straight into the span.
  std::vector<trace::Taxi> idle_pool_;
  std::unordered_map<trace::TaxiId, std::size_t> idle_slot_of_;
  std::optional<index::SpatialGrid> idle_pool_grid_;
};

}  // namespace o2o::sim
