#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <unordered_set>

#include "util/contracts.h"

namespace o2o::sim {

Simulator::Simulator(const trace::Trace& trace, std::vector<trace::Taxi> fleet,
                     const geo::DistanceOracle& oracle, SimulatorConfig config)
    : trace_(trace),
      initial_fleet_(std::move(fleet)),
      oracle_(oracle),
      config_(config),
      snapshotter_(oracle_, config_) {
  O2O_EXPECTS(config_.frame_seconds > 0.0);
  O2O_EXPECTS(config_.speed_kmh > 0.0);
  O2O_EXPECTS(config_.cancel_timeout_seconds > 0.0);
}

void Simulator::reset() {
  taxis_.clear();
  taxi_index_.clear();
  for (const trace::Taxi& spec : initial_fleet_) {
    TaxiState state;
    state.spec = spec;
    state.position = spec.location;
    taxi_index_.emplace(spec.id, taxis_.size());
    taxis_.push_back(std::move(state));
  }
  pending_.clear();
  active_requests_.clear();
  snapshotter_.reset();
  report_ = SimulationReport{};
  record_index_.clear();
}

RequestRecord& Simulator::record_of(trace::RequestId id) {
  const auto it = record_index_.find(id);
  O2O_EXPECTS(it != record_index_.end());
  return report_.requests[it->second];
}

void Simulator::ingest_arrivals(std::size_t& next_request, double now) {
  const auto& requests = trace_.requests();
  while (next_request < requests.size() && requests[next_request].time_seconds <= now) {
    const trace::Request& request = requests[next_request];
    pending_.push_back(request);
    active_requests_.emplace(request.id, request);
    RequestRecord record;
    record.id = request.id;
    record.request_time = request.time_seconds;
    record_index_.emplace(request.id, report_.requests.size());
    report_.requests.push_back(record);
    ++next_request;
  }
}

void Simulator::cancel_stale(double now) {
  std::deque<trace::Request> kept;
  for (const trace::Request& request : pending_) {
    if (now - request.time_seconds > config_.cancel_timeout_seconds) {
      record_of(request.id).cancelled = true;
      active_requests_.erase(request.id);
      ++report_.cancelled;
    } else {
      kept.push_back(request);
    }
  }
  pending_.swap(kept);
}

void Simulator::validate_assignment(const DispatchAssignment& assignment,
                                    const TaxiState& taxi) const {
  O2O_EXPECTS(!assignment.requests.empty());
  O2O_EXPECTS(assignment.route.start.has_value());
  O2O_EXPECTS(geo::euclidean_distance(*assignment.route.start, taxi.position) < 1e-6);
  O2O_EXPECTS(respects_precedence(assignment.route, taxi.onboard));

  // Newly dispatched requests must be pending.
  std::unordered_set<trace::RequestId> new_ids;
  for (trace::RequestId id : assignment.requests) {
    O2O_EXPECTS(active_requests_.count(id) == 1);
    bool is_pending = false;
    for (const trace::Request& p : pending_) {
      if (p.id == id) {
        is_pending = true;
        break;
      }
    }
    O2O_EXPECTS(is_pending);
    O2O_EXPECTS(new_ids.insert(id).second);
  }

  // The route must serve exactly: onboard requests (drop-off only),
  // committed-but-not-picked requests (pick-up and drop-off), and the
  // new requests (pick-up and drop-off).
  std::unordered_map<trace::RequestId, int> pickups, dropoffs;
  for (const routing::Stop& stop : assignment.route.stops) {
    (stop.is_pickup ? pickups : dropoffs)[stop.request] += 1;
  }
  const auto count_of = [](const std::unordered_map<trace::RequestId, int>& counts,
                           trace::RequestId id) {
    const auto it = counts.find(id);
    return it == counts.end() ? 0 : it->second;
  };
  std::unordered_set<trace::RequestId> expected_pickup(new_ids.begin(), new_ids.end());
  for (trace::RequestId id : taxi.committed) expected_pickup.insert(id);
  for (trace::RequestId id : expected_pickup) {
    O2O_EXPECTS(count_of(pickups, id) == 1 && count_of(dropoffs, id) == 1);
  }
  for (trace::RequestId id : taxi.onboard) {
    O2O_EXPECTS(count_of(pickups, id) == 0 && count_of(dropoffs, id) == 1);
  }
  O2O_EXPECTS(pickups.size() == expected_pickup.size());
  O2O_EXPECTS(dropoffs.size() == expected_pickup.size() + taxi.onboard.size());

  // Capacity along the route.
  int seats = taxi.seats_in_use;
  int worst = seats;
  for (const routing::Stop& stop : assignment.route.stops) {
    const auto it = active_requests_.find(stop.request);
    O2O_EXPECTS(it != active_requests_.end());
    seats += stop.is_pickup ? it->second.seats : -it->second.seats;
    worst = std::max(worst, seats);
  }
  O2O_EXPECTS(worst <= taxi.spec.seats);
  O2O_EXPECTS(seats == 0);
}

void Simulator::record_dispatch(const DispatchAssignment& assignment,
                                const TaxiState& taxi, double now) {
  const routing::Route& route = assignment.route;
  std::unordered_set<trace::RequestId> route_ids;
  for (const routing::Stop& stop : route.stops) route_ids.insert(stop.request);
  // Fares of the *newly dispatched* requests only: for en-route
  // insertion, previously dispatched riders' fares were counted when
  // they were dispatched, so the taxi metric below is marginal.
  double direct_sum = 0.0;
  for (trace::RequestId id : assignment.requests) {
    const trace::Request& request = active_requests_.at(id);
    direct_sum += oracle_.distance(request.pickup, request.dropoff);
  }

  for (trace::RequestId id : assignment.requests) {
    const trace::Request& request = active_requests_.at(id);
    RequestRecord& record = record_of(id);
    record.dispatch_time = now;
    record.dispatch_delay_minutes = (now - request.time_seconds) / 60.0;
    record.shared = route_ids.size() > 1;

    const auto metrics = routing::rider_metrics(route, id, oracle_);
    const double direct = oracle_.distance(request.pickup, request.dropoff);
    record.passenger_dissatisfaction_km =
        metrics.wait_km + config_.beta * (metrics.ride_km - direct);

    report_.delay_cdf.add(record.dispatch_delay_minutes);
    report_.passenger_cdf.add(record.passenger_dissatisfaction_km);
    report_.delay_stats.add(record.dispatch_delay_minutes);
    report_.passenger_stats.add(record.passenger_dissatisfaction_km);
    report_.hourly_delay.add(record.request_time, record.dispatch_delay_minutes);
    report_.hourly_passenger.add(record.request_time,
                                 record.passenger_dissatisfaction_km);
    ++report_.served;
  }

  // Taxi dissatisfaction: one sample per dispatch,
  // D_ck(t) - (α + 1) Σ D(r.s, r.d). For a fresh (idle-taxi) dispatch
  // this is exactly the paper's formula (and reduces to
  // D(t, r.s) - α D(r.s, r.d) for a solo ride); for en-route insertion
  // the marginal route extension replaces D_ck(t) so that distance and
  // fares are never counted twice across dispatch records.
  routing::Route previous_route;
  previous_route.start = taxi.position;
  previous_route.stops.assign(taxi.stops.begin(), taxi.stops.end());
  const double added_length =
      routing::route_length(route, oracle_) - routing::route_length(previous_route, oracle_);
  const double taxi_score = added_length - (config_.alpha + 1.0) * direct_sum;
  report_.taxi_cdf.add(taxi_score);
  report_.taxi_stats.add(taxi_score);
  report_.hourly_taxi.add(now, taxi_score);
  ++report_.dispatched_rides;
  if (route_ids.size() > 1) ++report_.shared_rides;
}

void Simulator::apply_assignment(const DispatchAssignment& assignment, double now) {
  const auto index_it = taxi_index_.find(assignment.taxi);
  O2O_EXPECTS(index_it != taxi_index_.end());
  TaxiState& taxi = taxis_[index_it->second];
  validate_assignment(assignment, taxi);

  record_dispatch(assignment, taxi, now);

  taxi.stops.assign(assignment.route.stops.begin(), assignment.route.stops.end());
  taxi.leg_waypoints.clear();  // the current leg may have changed
  taxi.next_waypoint = 0;
  for (trace::RequestId id : assignment.requests) {
    taxi.committed.push_back(id);
    const auto pending_it =
        std::find_if(pending_.begin(), pending_.end(),
                     [id](const trace::Request& r) { return r.id == id; });
    O2O_EXPECTS(pending_it != pending_.end());
    pending_.erase(pending_it);
  }
}

void Simulator::move_taxis(double now, double dt) {
  const double speed_km_per_second = config_.speed_kmh / 3600.0;
  for (TaxiState& taxi : taxis_) {
    double budget = speed_km_per_second * dt;
    double spent = 0.0;
    while (budget > 0.0 && !taxi.stops.empty()) {
      const routing::Stop& stop = taxi.stops.front();

      // Lazily (re)build the current leg's polyline: the direct segment
      // in Euclidean mode, the network drive path in network mode.
      if (taxi.next_waypoint >= taxi.leg_waypoints.size()) {
        taxi.leg_waypoints = config_.road_network != nullptr
                                 ? config_.road_network->drive_path(taxi.position,
                                                                    stop.point)
                                 : std::vector<geo::Point>{stop.point};
        taxi.next_waypoint = 0;
      }

      // Advance along the polyline until the budget runs out or the
      // stop is reached.
      bool reached_stop = false;
      while (budget > 0.0 && taxi.next_waypoint < taxi.leg_waypoints.size()) {
        const geo::Point& waypoint = taxi.leg_waypoints[taxi.next_waypoint];
        const double gap = geo::euclidean_distance(taxi.position, waypoint);
        if (gap > budget) {
          taxi.position = geo::advance_toward(taxi.position, waypoint, budget);
          taxi.distance_driven_km += budget;
          report_.total_taxi_distance_km += budget;
          spent += budget;
          budget = 0.0;
          break;
        }
        taxi.position = waypoint;
        taxi.distance_driven_km += gap;
        report_.total_taxi_distance_km += gap;
        budget -= gap;
        spent += gap;
        ++taxi.next_waypoint;
        reached_stop = (taxi.next_waypoint == taxi.leg_waypoints.size());
      }
      if (!reached_stop) break;  // budget exhausted mid-leg
      taxi.leg_waypoints.clear();
      taxi.next_waypoint = 0;
      const double event_time = now + spent / speed_km_per_second;

      if (stop.is_pickup) {
        const auto committed_it =
            std::find(taxi.committed.begin(), taxi.committed.end(), stop.request);
        O2O_EXPECTS(committed_it != taxi.committed.end());
        taxi.committed.erase(committed_it);
        taxi.onboard.push_back(stop.request);
        taxi.seats_in_use += active_requests_.at(stop.request).seats;
        record_of(stop.request).pickup_time = event_time;
      } else {
        const auto onboard_it =
            std::find(taxi.onboard.begin(), taxi.onboard.end(), stop.request);
        O2O_EXPECTS(onboard_it != taxi.onboard.end());
        taxi.onboard.erase(onboard_it);
        taxi.seats_in_use -= active_requests_.at(stop.request).seats;
        record_of(stop.request).dropoff_time = event_time;
        active_requests_.erase(stop.request);
      }
      taxi.stops.pop_front();
    }
  }
}

SimulationReport Simulator::run(Dispatcher& dispatcher) {
  return run_streamed(
      [&dispatcher](const DispatchContext& context, std::uint64_t) {
        return dispatcher.dispatch(context);
      },
      dispatcher.name());
}

SimulationReport Simulator::run_streamed(const FrameDispatchFn& dispatch_fn,
                                         std::string_view dispatcher_name) {
  reset();
  report_.dispatcher_name = std::string(dispatcher_name);

  // Install the configured sink for the duration of the run; frames are
  // closed after move_taxis so oracle work in apply/move is attributed
  // to the frame that caused it.
  obs::TraceSink* sink = config_.trace_sink;
  std::optional<obs::Activation> activation;
  if (sink != nullptr) activation.emplace(*sink);

  std::size_t next_request = 0;
  std::uint64_t frame_index = 0;
  const double end_time = trace_.duration_seconds() + config_.drain_seconds;
  double now = 0.0;
  for (; now <= end_time; now += config_.frame_seconds, ++frame_index) {
    if (sink != nullptr) sink->begin_frame(frame_index, now);
    ingest_arrivals(next_request, now);
    cancel_stale(now);
    if (!pending_.empty()) {
      obs::gauge_max(obs::Gauge::kPendingPeak, pending_.size());
      const DispatchContext context =
          snapshotter_.snapshot(taxis_, taxi_index_, pending_, active_requests_, now);
      for (const DispatchAssignment& assignment : dispatch_fn(context, frame_index)) {
        if (sink != nullptr) sink->add_assignments(assignment.requests.size());
        apply_assignment(assignment, now);
      }
    }
    move_taxis(now, config_.frame_seconds);
    if (sink != nullptr) {
      std::uint64_t idle = 0;
      for (const TaxiState& taxi : taxis_) idle += taxi.idle() ? 1 : 0;
      sink->set_frame_context(idle, taxis_.size() - idle, pending_.size());
      sink->end_frame();
    }

    if (next_request == trace_.requests().size() && pending_.empty()) {
      const bool all_idle = std::all_of(taxis_.begin(), taxis_.end(),
                                        [](const TaxiState& t) { return t.idle(); });
      if (all_idle) {
        now += config_.frame_seconds;
        break;
      }
    }
  }
  report_.simulated_seconds = now;
  report_.pending_at_end = pending_.size();
  return std::move(report_);
}

}  // namespace o2o::sim
