#include "sim/frame_state.h"

#include <unordered_set>

#include "util/contracts.h"

namespace o2o::sim {

FrameSnapshotter::FrameSnapshotter(const geo::DistanceOracle& oracle,
                                   const SimulatorConfig& config)
    : oracle_(oracle), config_(config) {
  reset();
}

void FrameSnapshotter::reset() {
  idle_.clear();
  busy_.clear();
  pending_snapshot_.clear();
  idle_grid_.reset();
  frame_points_.clear();
  group_cache_ = std::make_unique<packing::GroupCache>();
  idle_pool_.clear();
  idle_slot_of_.clear();
  idle_pool_grid_.reset();
}

void FrameSnapshotter::refresh_idle_pool(
    std::span<const TaxiState> taxis,
    const std::unordered_map<trace::TaxiId, std::size_t>& taxi_index) {
  obs::StageTimer timer(obs::Stage::kGridPatch);
  if (!idle_pool_grid_) {
    // First dispatch frame of the run: seed the pool from the current
    // idle set and bulk-build the grid (which also fixes the bounds the
    // patched entries clamp to until the next auto-compaction).
    for (const TaxiState& state : taxis) {
      if (!state.idle()) continue;
      trace::Taxi snapshot = state.spec;
      snapshot.location = state.position;
      idle_slot_of_.emplace(snapshot.id, idle_pool_.size());
      idle_pool_.push_back(snapshot);
    }
    idle_pool_grid_.emplace(std::span<const trace::Taxi>(idle_pool_),
                            config_.idle_grid_cell_km);
    return;
  }

  // Departures (taxi dispatched since the last frame): swap-removal
  // keeps the span dense; the displaced last entry is re-keyed to the
  // freed slot so grid ids stay equal to pool positions.
  std::vector<trace::TaxiId> departed;
  for (const trace::Taxi& pooled : idle_pool_) {
    if (!taxis[taxi_index.at(pooled.id)].idle()) departed.push_back(pooled.id);
  }
  for (const trace::TaxiId id : departed) {
    const std::size_t slot = idle_slot_of_.at(id);
    const std::size_t last = idle_pool_.size() - 1;
    idle_pool_grid_->remove(static_cast<std::int32_t>(slot));
    if (slot != last) {
      idle_pool_grid_->remove(static_cast<std::int32_t>(last));
      idle_pool_[slot] = idle_pool_[last];
      idle_slot_of_[idle_pool_[slot].id] = slot;
      idle_pool_grid_->insert(static_cast<std::int32_t>(slot), idle_pool_[slot].location);
    }
    idle_pool_.pop_back();
    idle_slot_of_.erase(id);
  }

  // Arrivals (taxi finished its route) and position refreshes (taxi was
  // dispatched *and* completed the whole route between two dispatch
  // frames: idle in both snapshots, standing somewhere new).
  for (const TaxiState& state : taxis) {
    if (!state.idle()) continue;
    const auto slot_it = idle_slot_of_.find(state.spec.id);
    if (slot_it == idle_slot_of_.end()) {
      trace::Taxi snapshot = state.spec;
      snapshot.location = state.position;
      idle_slot_of_.emplace(snapshot.id, idle_pool_.size());
      idle_pool_grid_->insert(static_cast<std::int32_t>(idle_pool_.size()),
                              snapshot.location);
      idle_pool_.push_back(snapshot);
    } else if (!(idle_pool_[slot_it->second].location == state.position)) {
      idle_pool_[slot_it->second].location = state.position;
      idle_pool_grid_->move(static_cast<std::int32_t>(slot_it->second), state.position);
    }
  }
}

DispatchContext FrameSnapshotter::snapshot(
    std::span<const TaxiState> taxis,
    const std::unordered_map<trace::TaxiId, std::size_t>& taxi_index,
    const std::deque<trace::Request>& pending,
    const std::unordered_map<trace::RequestId, trace::Request>& active_requests,
    double now) {
  idle_.clear();
  busy_.clear();
  for (const TaxiState& taxi : taxis) {
    if (taxi.idle()) {
      if (config_.incremental_grid) continue;  // snapshot lives in idle_pool_
      trace::Taxi snapshot = taxi.spec;
      snapshot.location = taxi.position;
      idle_.push_back(snapshot);
    } else {
      BusyTaxiView view;
      view.taxi = taxi.spec;
      view.taxi.location = taxi.position;
      view.remaining_stops.assign(taxi.stops.begin(), taxi.stops.end());
      view.onboard = taxi.onboard;
      view.seats_in_use = taxi.seats_in_use;
      std::unordered_set<trace::RequestId> seen;
      for (const routing::Stop& stop : taxi.stops) {
        if (seen.insert(stop.request).second) {
          view.route_request_seats.emplace_back(stop.request,
                                                active_requests.at(stop.request).seats);
        }
      }
      busy_.push_back(std::move(view));
    }
  }
  pending_snapshot_.assign(pending.begin(), pending.end());

  // Index the idle snapshot so dispatchers can prune candidate taxis by
  // radius instead of scanning the whole fleet — patched across frames
  // in incremental mode, rebuilt from scratch otherwise.
  idle_grid_.reset();
  std::span<const trace::Taxi> idle_span;
  const index::SpatialGrid* grid_ptr = nullptr;
  if (config_.incremental_grid) {
    refresh_idle_pool(taxis, taxi_index);
    idle_span = idle_pool_;
    if (!idle_pool_.empty()) grid_ptr = &*idle_pool_grid_;
  } else {
    idle_span = idle_;
    if (!idle_.empty()) {
      idle_grid_.emplace(std::span<const trace::Taxi>(idle_), config_.idle_grid_cell_km);
      grid_ptr = &*idle_grid_;
    }
  }

  // Warm the oracle for this frame's snapshot: the network oracle
  // resolves every idle-taxi endpoint once up front so each dispatch
  // query hits its snap memo instead of re-running a nearest-node search.
  frame_points_.clear();
  frame_points_.reserve(idle_span.size());
  for (const trace::Taxi& taxi : idle_span) frame_points_.push_back(taxi.location);
  oracle_.prepare_frame(frame_points_);

  DispatchContext context;
  context.now_seconds = now;
  context.idle_taxis = idle_span;
  context.busy_taxis = busy_;
  context.pending = pending_snapshot_;
  context.oracle = &oracle_;
  context.idle_grid = grid_ptr;
  context.trace = config_.trace_sink;
  context.group_cache = group_cache_.get();
  return context;
}

}  // namespace o2o::sim
