#include "sim/report_io.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "util/contracts.h"
#include "util/csv.h"
#include "util/strings.h"

namespace o2o::sim {

void write_request_records_csv(std::ostream& out, const SimulationReport& report) {
  CsvWriter writer(out);
  writer.write_row({"id", "request_time", "dispatch_time", "pickup_time", "dropoff_time",
                    "dispatch_delay_minutes", "passenger_dissatisfaction_km", "shared",
                    "cancelled"});
  for (const RequestRecord& record : report.requests) {
    writer.write_row({std::to_string(record.id), format_fixed(record.request_time, 3),
                      format_fixed(record.dispatch_time, 3),
                      format_fixed(record.pickup_time, 3),
                      format_fixed(record.dropoff_time, 3),
                      format_fixed(record.dispatch_delay_minutes, 4),
                      format_fixed(record.passenger_dissatisfaction_km, 4),
                      record.shared ? "1" : "0", record.cancelled ? "1" : "0"});
  }
}

SimulationReport read_request_records_csv(std::istream& in, const std::string& name) {
  const CsvTable table = CsvTable::read(in, /*has_header=*/true);
  const int id = table.column("id");
  const int request_time = table.column("request_time");
  const int dispatch_time = table.column("dispatch_time");
  const int pickup_time = table.column("pickup_time");
  const int dropoff_time = table.column("dropoff_time");
  const int delay = table.column("dispatch_delay_minutes");
  const int dissatisfaction = table.column("passenger_dissatisfaction_km");
  const int shared = table.column("shared");
  const int cancelled = table.column("cancelled");
  O2O_EXPECTS(id >= 0 && request_time >= 0 && dispatch_time >= 0 && delay >= 0 &&
              dissatisfaction >= 0 && shared >= 0 && cancelled >= 0);

  SimulationReport report;
  report.dispatcher_name = name;
  for (std::size_t row = 0; row < table.row_count(); ++row) {
    RequestRecord record;
    const auto parsed_id = parse_int(table.field(row, id));
    if (!parsed_id) continue;
    record.id = static_cast<trace::RequestId>(*parsed_id);
    record.request_time = parse_double(table.field(row, request_time)).value_or(0.0);
    record.dispatch_time = parse_double(table.field(row, dispatch_time)).value_or(-1.0);
    record.pickup_time =
        pickup_time >= 0 ? parse_double(table.field(row, pickup_time)).value_or(-1.0)
                         : -1.0;
    record.dropoff_time =
        dropoff_time >= 0 ? parse_double(table.field(row, dropoff_time)).value_or(-1.0)
                          : -1.0;
    record.dispatch_delay_minutes = parse_double(table.field(row, delay)).value_or(-1.0);
    record.passenger_dissatisfaction_km =
        parse_double(table.field(row, dissatisfaction)).value_or(0.0);
    record.shared = table.field(row, shared) == "1";
    record.cancelled = table.field(row, cancelled) == "1";
    if (record.served()) {
      ++report.served;
      report.delay_cdf.add(record.dispatch_delay_minutes);
      report.passenger_cdf.add(record.passenger_dissatisfaction_km);
      report.delay_stats.add(record.dispatch_delay_minutes);
      report.passenger_stats.add(record.passenger_dissatisfaction_km);
      report.hourly_delay.add(record.request_time, record.dispatch_delay_minutes);
      report.hourly_passenger.add(record.request_time,
                                  record.passenger_dissatisfaction_km);
    } else if (record.cancelled) {
      ++report.cancelled;
    }
    report.requests.push_back(record);
  }
  return report;
}

void write_cdfs_csv(std::ostream& out, const SimulationReport& report) {
  CsvWriter writer(out);
  writer.write_row({"delay_minutes", "passenger_km", "taxi_km"});
  const auto& delays = report.delay_cdf.sorted_samples();
  const auto& passengers = report.passenger_cdf.sorted_samples();
  const auto& taxis = report.taxi_cdf.sorted_samples();
  const std::size_t rows =
      std::max(delays.size(), std::max(passengers.size(), taxis.size()));
  for (std::size_t i = 0; i < rows; ++i) {
    CsvRow row(3);
    if (i < delays.size()) row[0] = format_fixed(delays[i], 4);
    if (i < passengers.size()) row[1] = format_fixed(passengers[i], 4);
    if (i < taxis.size()) row[2] = format_fixed(taxis[i], 4);
    writer.write_row(row);
  }
}

// ---------------------------------------------------------------------------
// Frame traces (JSON / CSV / summary)
// ---------------------------------------------------------------------------

namespace {

/// %.17g preserves every double bit-for-bit across a decimal round trip.
std::string format_double(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string format_u64(std::uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
  return buffer;
}

template <std::size_t N, typename NameFn>
void write_json_map(std::ostream& out, std::string_view key,
                    const std::array<std::uint64_t, N>& values, NameFn&& name_of,
                    bool trailing_comma) {
  out << "    \"" << key << "\": {";
  for (std::size_t i = 0; i < N; ++i) {
    if (i != 0) out << ", ";
    out << '"' << name_of(i) << "\": " << values[i];
  }
  out << '}' << (trailing_comma ? "," : "") << '\n';
}

/// Minimal recursive-descent parser for the exact shape
/// write_frame_traces_json emits: an array of flat objects whose values
/// are numbers or one-level maps of name -> number. No general JSON.
class TraceJsonParser {
 public:
  explicit TraceJsonParser(std::string text) : text_(std::move(text)) {}

  std::vector<obs::FrameTrace> parse() {
    skip_ws();
    if (peek() != '{') return parse_frames_array();
    // Config-wrapped form: {"config": {...}, "frames": [...]}. The
    // config block is provenance for humans and external tools; it is
    // skipped on read.
    std::vector<obs::FrameTrace> frames;
    ++pos_;  // '{'
    bool saw_frames = false;
    while (true) {
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      if (key == "frames") {
        frames = parse_frames_array();
        saw_frames = true;
      } else if (peek() == '{') {
        skip_string_map();
      } else {
        fail("expected object value for key '" + key + "'");
      }
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in wrapper object");
    }
    if (!saw_frames) fail("wrapper object has no \"frames\" array");
    return frames;
  }

 private:
  std::vector<obs::FrameTrace> parse_frames_array() {
    std::vector<obs::FrameTrace> frames;
    skip_ws();
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return frames;
    }
    while (true) {
      frames.push_back(parse_frame());
      skip_ws();
      const char c = next();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' after frame object");
    }
    return frames;
  }

  /// Consumes a flat {"key": "value", ...} map without keeping it.
  void skip_string_map() {
    skip_ws();
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    while (true) {
      parse_string();
      skip_ws();
      expect(':');
      parse_string();
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in string map");
    }
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("frame-trace JSON: " + what + " at offset " +
                             std::to_string(pos_));
  }

  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (next() != c) fail(std::string("expected '") + c + "'");
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  std::string parse_string() {
    skip_ws();
    expect('"');
    std::string value;
    while (peek() != '"') value.push_back(next());
    ++pos_;  // closing quote
    return value;
  }

  double parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' || c == 'e' ||
          c == 'E' || c == 'i' || c == 'n' || c == 'f') {
        ++pos_;
      } else {
        break;
      }
    }
    const auto parsed = parse_double(std::string_view(text_).substr(start, pos_ - start));
    if (!parsed) fail("malformed number");
    return *parsed;
  }

  template <typename Assign>
  void parse_map(Assign&& assign) {
    skip_ws();
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    while (true) {
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      assign(key, parse_number());
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in map");
    }
  }

  obs::FrameTrace parse_frame() {
    obs::FrameTrace frame;
    skip_ws();
    expect('{');
    while (true) {
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      if (peek() == '{') {
        // Unknown nested maps are consumed and dropped by the same path.
        parse_map([&](const std::string& name, double value) {
          const auto v = static_cast<std::uint64_t>(value);
          if (key == "stages_ns") {
            for (std::size_t i = 0; i < obs::kStageCount; ++i) {
              if (name == obs::stage_name(static_cast<obs::Stage>(i))) frame.stage_ns[i] = v;
            }
          } else if (key == "counters") {
            for (std::size_t i = 0; i < obs::kCounterCount; ++i) {
              if (name == obs::counter_name(static_cast<obs::Counter>(i))) {
                frame.counters[i] = v;
              }
            }
          } else if (key == "gauges") {
            for (std::size_t i = 0; i < obs::kGaugeCount; ++i) {
              if (name == obs::gauge_name(static_cast<obs::Gauge>(i))) frame.gauges[i] = v;
            }
          }
        });
      } else {
        const double value = parse_number();
        if (key == "frame") frame.frame = static_cast<std::uint64_t>(value);
        else if (key == "now_seconds") frame.now_seconds = value;
        else if (key == "wall_ms") frame.wall_ms = value;
        else if (key == "idle_taxis") frame.idle_taxis = static_cast<std::uint64_t>(value);
        else if (key == "busy_taxis") frame.busy_taxis = static_cast<std::uint64_t>(value);
        else if (key == "pending_requests") {
          frame.pending_requests = static_cast<std::uint64_t>(value);
        } else if (key == "assignments") {
          frame.assignments = static_cast<std::uint64_t>(value);
        }
      }
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in frame object");
    }
    return frame;
  }

  std::string text_;
  std::size_t pos_ = 0;
};

}  // namespace

void write_frame_traces_json(std::ostream& out,
                             const std::vector<obs::FrameTrace>& frames) {
  out << "[\n";
  for (std::size_t f = 0; f < frames.size(); ++f) {
    const obs::FrameTrace& frame = frames[f];
    out << "  {\n";
    out << "    \"frame\": " << frame.frame << ",\n";
    out << "    \"now_seconds\": " << format_double(frame.now_seconds) << ",\n";
    out << "    \"wall_ms\": " << format_double(frame.wall_ms) << ",\n";
    out << "    \"idle_taxis\": " << frame.idle_taxis << ",\n";
    out << "    \"busy_taxis\": " << frame.busy_taxis << ",\n";
    out << "    \"pending_requests\": " << frame.pending_requests << ",\n";
    out << "    \"assignments\": " << frame.assignments << ",\n";
    write_json_map(out, "stages_ns", frame.stage_ns,
                   [](std::size_t i) { return obs::stage_name(static_cast<obs::Stage>(i)); },
                   /*trailing_comma=*/true);
    write_json_map(
        out, "counters", frame.counters,
        [](std::size_t i) { return obs::counter_name(static_cast<obs::Counter>(i)); },
        /*trailing_comma=*/true);
    write_json_map(out, "gauges", frame.gauges,
                   [](std::size_t i) { return obs::gauge_name(static_cast<obs::Gauge>(i)); },
                   /*trailing_comma=*/false);
    out << "  }" << (f + 1 < frames.size() ? "," : "") << '\n';
  }
  out << "]\n";
}

void write_frame_traces_json(
    std::ostream& out, const std::vector<obs::FrameTrace>& frames,
    const std::vector<std::pair<std::string, std::string>>& config_kv) {
  out << "{\n  \"config\": {";
  for (std::size_t i = 0; i < config_kv.size(); ++i) {
    if (i != 0) out << ',';
    out << "\n    \"" << config_kv[i].first << "\": \"" << config_kv[i].second << '"';
  }
  out << (config_kv.empty() ? "" : "\n  ") << "},\n  \"frames\": ";
  write_frame_traces_json(out, frames);
  out << "}\n";
}

std::vector<obs::FrameTrace> read_frame_traces_json(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return TraceJsonParser(std::move(buffer).str()).parse();
}

void write_frame_traces_csv(std::ostream& out,
                            const std::vector<obs::FrameTrace>& frames) {
  CsvWriter writer(out);
  CsvRow header = {"frame",      "now_seconds",      "wall_ms",    "idle_taxis",
                   "busy_taxis", "pending_requests", "assignments"};
  for (std::size_t i = 0; i < obs::kStageCount; ++i) {
    header.push_back(std::string(obs::stage_name(static_cast<obs::Stage>(i))) + "_ns");
  }
  for (std::size_t i = 0; i < obs::kCounterCount; ++i) {
    header.emplace_back(obs::counter_name(static_cast<obs::Counter>(i)));
  }
  for (std::size_t i = 0; i < obs::kGaugeCount; ++i) {
    header.emplace_back(obs::gauge_name(static_cast<obs::Gauge>(i)));
  }
  writer.write_row(header);
  for (const obs::FrameTrace& frame : frames) {
    CsvRow row = {format_u64(frame.frame),
                  format_double(frame.now_seconds),
                  format_double(frame.wall_ms),
                  format_u64(frame.idle_taxis),
                  format_u64(frame.busy_taxis),
                  format_u64(frame.pending_requests),
                  format_u64(frame.assignments)};
    for (const std::uint64_t v : frame.stage_ns) row.push_back(format_u64(v));
    for (const std::uint64_t v : frame.counters) row.push_back(format_u64(v));
    for (const std::uint64_t v : frame.gauges) row.push_back(format_u64(v));
    writer.write_row(row);
  }
}

void write_trace_summary(std::ostream& out, const std::vector<obs::FrameTrace>& frames) {
  const obs::FrameTrace total = obs::aggregate_frames(frames);
  const double n = frames.empty() ? 1.0 : static_cast<double>(frames.size());
  char line[160];
  std::snprintf(line, sizeof(line),
                "trace summary: %" PRIu64 " frames, %" PRIu64
                " requests assigned, %.2f ms total frame wall time\n",
                total.frame, total.assignments, total.wall_ms);
  out << line;
  out << "  stage                 total_ms   mean_ms/frame\n";
  for (std::size_t i = 0; i < obs::kStageCount; ++i) {
    const double ms = static_cast<double>(total.stage_ns[i]) / 1e6;
    std::snprintf(line, sizeof(line), "  %-20s %10.3f %15.4f\n",
                  std::string(obs::stage_name(static_cast<obs::Stage>(i))).c_str(), ms,
                  ms / n);
    out << line;
  }
  out << "  counters (non-zero):\n";
  for (std::size_t i = 0; i < obs::kCounterCount; ++i) {
    if (total.counters[i] == 0) continue;
    std::snprintf(line, sizeof(line), "    %-22s %14" PRIu64 "\n",
                  std::string(obs::counter_name(static_cast<obs::Counter>(i))).c_str(),
                  total.counters[i]);
    out << line;
  }
  out << "  gauge peaks:\n";
  for (std::size_t i = 0; i < obs::kGaugeCount; ++i) {
    std::snprintf(line, sizeof(line), "    %-22s %14" PRIu64 "\n",
                  std::string(obs::gauge_name(static_cast<obs::Gauge>(i))).c_str(),
                  total.gauges[i]);
    out << line;
  }
}

}  // namespace o2o::sim
