#include "sim/report_io.h"

#include <istream>
#include <ostream>

#include "util/contracts.h"
#include "util/csv.h"
#include "util/strings.h"

namespace o2o::sim {

void write_request_records_csv(std::ostream& out, const SimulationReport& report) {
  CsvWriter writer(out);
  writer.write_row({"id", "request_time", "dispatch_time", "pickup_time", "dropoff_time",
                    "dispatch_delay_minutes", "passenger_dissatisfaction_km", "shared",
                    "cancelled"});
  for (const RequestRecord& record : report.requests) {
    writer.write_row({std::to_string(record.id), format_fixed(record.request_time, 3),
                      format_fixed(record.dispatch_time, 3),
                      format_fixed(record.pickup_time, 3),
                      format_fixed(record.dropoff_time, 3),
                      format_fixed(record.dispatch_delay_minutes, 4),
                      format_fixed(record.passenger_dissatisfaction_km, 4),
                      record.shared ? "1" : "0", record.cancelled ? "1" : "0"});
  }
}

SimulationReport read_request_records_csv(std::istream& in, const std::string& name) {
  const CsvTable table = CsvTable::read(in, /*has_header=*/true);
  const int id = table.column("id");
  const int request_time = table.column("request_time");
  const int dispatch_time = table.column("dispatch_time");
  const int pickup_time = table.column("pickup_time");
  const int dropoff_time = table.column("dropoff_time");
  const int delay = table.column("dispatch_delay_minutes");
  const int dissatisfaction = table.column("passenger_dissatisfaction_km");
  const int shared = table.column("shared");
  const int cancelled = table.column("cancelled");
  O2O_EXPECTS(id >= 0 && request_time >= 0 && dispatch_time >= 0 && delay >= 0 &&
              dissatisfaction >= 0 && shared >= 0 && cancelled >= 0);

  SimulationReport report;
  report.dispatcher_name = name;
  for (std::size_t row = 0; row < table.row_count(); ++row) {
    RequestRecord record;
    const auto parsed_id = parse_int(table.field(row, id));
    if (!parsed_id) continue;
    record.id = static_cast<trace::RequestId>(*parsed_id);
    record.request_time = parse_double(table.field(row, request_time)).value_or(0.0);
    record.dispatch_time = parse_double(table.field(row, dispatch_time)).value_or(-1.0);
    record.pickup_time =
        pickup_time >= 0 ? parse_double(table.field(row, pickup_time)).value_or(-1.0)
                         : -1.0;
    record.dropoff_time =
        dropoff_time >= 0 ? parse_double(table.field(row, dropoff_time)).value_or(-1.0)
                          : -1.0;
    record.dispatch_delay_minutes = parse_double(table.field(row, delay)).value_or(-1.0);
    record.passenger_dissatisfaction_km =
        parse_double(table.field(row, dissatisfaction)).value_or(0.0);
    record.shared = table.field(row, shared) == "1";
    record.cancelled = table.field(row, cancelled) == "1";
    if (record.served()) {
      ++report.served;
      report.delay_cdf.add(record.dispatch_delay_minutes);
      report.passenger_cdf.add(record.passenger_dissatisfaction_km);
      report.delay_stats.add(record.dispatch_delay_minutes);
      report.passenger_stats.add(record.passenger_dissatisfaction_km);
      report.hourly_delay.add(record.request_time, record.dispatch_delay_minutes);
      report.hourly_passenger.add(record.request_time,
                                  record.passenger_dissatisfaction_km);
    } else if (record.cancelled) {
      ++report.cancelled;
    }
    report.requests.push_back(record);
  }
  return report;
}

void write_cdfs_csv(std::ostream& out, const SimulationReport& report) {
  CsvWriter writer(out);
  writer.write_row({"delay_minutes", "passenger_km", "taxi_km"});
  const auto& delays = report.delay_cdf.sorted_samples();
  const auto& passengers = report.passenger_cdf.sorted_samples();
  const auto& taxis = report.taxi_cdf.sorted_samples();
  const std::size_t rows =
      std::max(delays.size(), std::max(passengers.size(), taxis.size()));
  for (std::size_t i = 0; i < rows; ++i) {
    CsvRow row(3);
    if (i < delays.size()) row[0] = format_fixed(delays[i], 4);
    if (i < passengers.size()) row[1] = format_fixed(passengers[i], 4);
    if (i < taxis.size()) row[2] = format_fixed(taxis[i], 4);
    writer.write_row(row);
  }
}

}  // namespace o2o::sim
