// The strategy interface between the frame-based simulator and the
// dispatch algorithms (the paper's NSTD-P/T and STD-P/T plus the five
// baselines). Each frame the simulator hands the dispatcher a snapshot
// of idle taxis, (optionally) busy taxis with their remaining routes,
// and the pending requests; the dispatcher returns assignments.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "geo/distance_oracle.h"
#include "routing/route.h"
#include "trace/fleet.h"
#include "trace/request.h"

namespace o2o::index {
class SpatialGrid;
}  // namespace o2o::index

namespace o2o::obs {
class TraceSink;
}  // namespace o2o::obs

namespace o2o::packing {
class GroupCache;
}  // namespace o2o::packing

namespace o2o::sim {

/// Snapshot of a busy taxi for dispatchers that support en-route
/// insertion (the sharing baselines).
struct BusyTaxiView {
  trace::Taxi taxi;                               ///< id, current position, seats
  std::vector<routing::Stop> remaining_stops;     ///< committed route
  std::vector<trace::RequestId> onboard;          ///< picked up, not yet dropped
  int seats_in_use = 0;                           ///< current onboard seat usage
  /// Seat demand of every request appearing on the remaining route
  /// (needed by en-route-insertion dispatchers for capacity checks).
  std::vector<std::pair<trace::RequestId, int>> route_request_seats;
};

struct DispatchContext {
  double now_seconds = 0.0;
  std::span<const trace::Taxi> idle_taxis;        ///< current positions
  std::span<const BusyTaxiView> busy_taxis;
  std::span<const trace::Request> pending;        ///< undispatched requests
  const geo::DistanceOracle* oracle = nullptr;
  /// Spatial index over `idle_taxis`, keyed by span index (may be null).
  /// Dispatchers use it to prune candidate taxis per request.
  const index::SpatialGrid* idle_grid = nullptr;
  /// Sink collecting this frame's trace, or null when tracing is off.
  /// Hot paths report through the ambient obs:: API; this pointer exists
  /// for dispatchers that want frame-owner calls (context, assignments).
  obs::TraceSink* trace = nullptr;
  /// Run-lifetime share-group verdict cache owned by the simulator (one
  /// per run, reset between runs), or null outside a simulator loop.
  /// Sharing dispatchers hand it to enumerate_share_groups so verdicts
  /// persist across consecutive frames; non-sharing dispatchers ignore
  /// it. Frame-owning thread only.
  packing::GroupCache* group_cache = nullptr;
};

/// One dispatch decision. For an idle taxi the route serves exactly
/// `requests`; for a busy taxi (en-route insertion) the route must also
/// re-include everything the taxi already committed to.
struct DispatchAssignment {
  trace::TaxiId taxi = trace::kInvalidTaxi;
  std::vector<trace::RequestId> requests;  ///< newly dispatched requests
  routing::Route route;                    ///< anchored at the taxi position
};

class Dispatcher {
 public:
  virtual ~Dispatcher() = default;
  virtual std::string name() const = 0;
  virtual std::vector<DispatchAssignment> dispatch(const DispatchContext& context) = 0;
};

/// Aliases for the unified dispatcher interface: a dispatcher maps one
/// frame's context to one frame's dispatch result.
using Frame = DispatchContext;
using DispatchResult = std::vector<DispatchAssignment>;

}  // namespace o2o::sim
