#include "metrics/bootstrap.h"

#include <algorithm>
#include <numeric>

#include "util/contracts.h"
#include "util/rng.h"

namespace o2o::metrics {

ConfidenceInterval bootstrap_mean_ci(const std::vector<double>& samples,
                                     double confidence, std::size_t resamples,
                                     std::uint64_t seed) {
  O2O_EXPECTS(!samples.empty());
  O2O_EXPECTS(confidence > 0.0 && confidence < 1.0);
  O2O_EXPECTS(resamples >= 10);
  Rng rng(seed);

  ConfidenceInterval ci;
  ci.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
            static_cast<double>(samples.size());

  std::vector<double> means;
  means.reserve(resamples);
  for (std::size_t b = 0; b < resamples; ++b) {
    double sum = 0.0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      sum += samples[rng.uniform_index(samples.size())];
    }
    means.push_back(sum / static_cast<double>(samples.size()));
  }
  std::sort(means.begin(), means.end());
  const double alpha = (1.0 - confidence) / 2.0;
  const auto index_of = [&](double p) {
    const double rank = p * static_cast<double>(means.size() - 1);
    return means[static_cast<std::size_t>(rank + 0.5)];
  };
  ci.lo = index_of(alpha);
  ci.hi = index_of(1.0 - alpha);
  return ci;
}

}  // namespace o2o::metrics
