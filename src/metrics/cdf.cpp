#include "metrics/cdf.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/contracts.h"

namespace o2o::metrics {

void CdfBuilder::add_all(const std::vector<double>& samples) {
  samples_.insert(samples_.end(), samples.begin(), samples.end());
  sorted_ = false;
}

void CdfBuilder::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double CdfBuilder::cdf_at(double x) const {
  O2O_EXPECTS(!samples_.empty());
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

double CdfBuilder::quantile(double p) const {
  O2O_EXPECTS(!samples_.empty());
  O2O_EXPECTS(p >= 0.0 && p <= 1.0);
  ensure_sorted();
  if (samples_.size() == 1) return samples_.front();
  const double rank = p * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double fraction = rank - static_cast<double>(lo);
  return samples_[lo] + (samples_[hi] - samples_[lo]) * fraction;
}

double CdfBuilder::min() const {
  O2O_EXPECTS(!samples_.empty());
  ensure_sorted();
  return samples_.front();
}

double CdfBuilder::max() const {
  O2O_EXPECTS(!samples_.empty());
  ensure_sorted();
  return samples_.back();
}

double CdfBuilder::mean() const {
  O2O_EXPECTS(!samples_.empty());
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

std::vector<CdfBuilder::SeriesPoint> CdfBuilder::series(double lo, double hi,
                                                        int points) const {
  O2O_EXPECTS(points >= 2);
  O2O_EXPECTS(lo <= hi);
  O2O_EXPECTS(!samples_.empty());
  std::vector<SeriesPoint> out;
  out.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) / (points - 1);
    out.push_back(SeriesPoint{x, cdf_at(x)});
  }
  return out;
}

const std::vector<double>& CdfBuilder::sorted_samples() const {
  ensure_sorted();
  return samples_;
}

}  // namespace o2o::metrics
