// Percentile-bootstrap confidence intervals for the benchmark means --
// the figure benches report means over served requests; the CI makes
// "A beats B" claims in EXPERIMENTS.md checkable.
#pragma once

#include <cstdint>
#include <vector>

namespace o2o::metrics {

struct ConfidenceInterval {
  double mean = 0.0;
  double lo = 0.0;   ///< lower percentile bound
  double hi = 0.0;   ///< upper percentile bound

  bool contains(double value) const noexcept { return value >= lo && value <= hi; }
  /// Two intervals that do not overlap support a difference claim.
  bool overlaps(const ConfidenceInterval& other) const noexcept {
    return lo <= other.hi && other.lo <= hi;
  }
};

/// Percentile bootstrap CI of the mean: `resamples` draws with
/// replacement; confidence in (0, 1), e.g. 0.95.
ConfidenceInterval bootstrap_mean_ci(const std::vector<double>& samples,
                                     double confidence = 0.95,
                                     std::size_t resamples = 1000,
                                     std::uint64_t seed = 1);

}  // namespace o2o::metrics
