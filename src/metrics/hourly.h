// Time-of-day bucketed accumulators -- Fig. 7 reports average dispatch
// delay and dissatisfaction against clock time (3-hour buckets over a
// day). HourlyBuckets maps a timestamp in seconds-since-midnight (values
// beyond one day wrap) into its bucket's StreamingStats.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "metrics/summary.h"
#include "util/contracts.h"

namespace o2o::metrics {

class HourlyBuckets {
 public:
  /// `bucket_hours` must divide 24.
  explicit HourlyBuckets(int bucket_hours = 3) : bucket_hours_(bucket_hours) {
    O2O_EXPECTS(bucket_hours > 0 && 24 % bucket_hours == 0);
    stats_.resize(static_cast<std::size_t>(24 / bucket_hours));
  }

  void add(double time_seconds, double sample) {
    stats_[bucket_of(time_seconds)].add(sample);
  }

  std::size_t bucket_of(double time_seconds) const noexcept {
    double day_seconds = time_seconds - 86400.0 * std::floor(time_seconds / 86400.0);
    const auto hour = static_cast<int>(day_seconds / 3600.0) % 24;
    return static_cast<std::size_t>(hour / bucket_hours_);
  }

  std::size_t bucket_count() const noexcept { return stats_.size(); }
  int bucket_hours() const noexcept { return bucket_hours_; }

  /// Clock hour at which bucket `i` starts (0, 3, 6, ... for 3h buckets).
  int bucket_start_hour(std::size_t i) const {
    O2O_EXPECTS(i < stats_.size());
    return static_cast<int>(i) * bucket_hours_;
  }

  const StreamingStats& bucket(std::size_t i) const {
    O2O_EXPECTS(i < stats_.size());
    return stats_[i];
  }

 private:
  int bucket_hours_;
  std::vector<StreamingStats> stats_;
};

}  // namespace o2o::metrics
