// Fixed-width histogram; used for diagnostics and for the hourly demand
// profile checks in the synthetic-trace tests.
#pragma once

#include <cstddef>
#include <vector>

#include "util/contracts.h"

namespace o2o::metrics {

class Histogram {
 public:
  /// Buckets cover [lo, hi); samples outside are clamped into the first /
  /// last bucket so nothing is silently dropped.
  Histogram(double lo, double hi, std::size_t buckets)
      : lo_(lo), hi_(hi), counts_(buckets, 0) {
    O2O_EXPECTS(buckets > 0);
    O2O_EXPECTS(lo < hi);
  }

  void add(double sample) noexcept {
    ++counts_[bucket_of(sample)];
    ++total_;
  }

  std::size_t bucket_of(double sample) const noexcept {
    if (sample < lo_) return 0;
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    const auto raw = static_cast<std::size_t>((sample - lo_) / width);
    return raw >= counts_.size() ? counts_.size() - 1 : raw;
  }

  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::size_t count(std::size_t bucket) const {
    O2O_EXPECTS(bucket < counts_.size());
    return counts_[bucket];
  }
  std::size_t total() const noexcept { return total_; }

  double bucket_low(std::size_t bucket) const {
    O2O_EXPECTS(bucket < counts_.size());
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + width * static_cast<double>(bucket);
  }

  /// Fraction of all samples in `bucket` (0 when empty).
  double fraction(std::size_t bucket) const {
    O2O_EXPECTS(bucket < counts_.size());
    return total_ == 0 ? 0.0
                       : static_cast<double>(counts_[bucket]) / static_cast<double>(total_);
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace o2o::metrics
