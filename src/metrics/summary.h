// Streaming summary statistics (Welford) used throughout the simulator
// and the benchmark harnesses.
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>

#include "util/contracts.h"

namespace o2o::metrics {

/// Single-pass count/mean/variance/min/max accumulator.
class StreamingStats {
 public:
  void add(double sample) noexcept {
    ++count_;
    const double delta = sample - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (sample - mean_);
    if (sample < min_) min_ = sample;
    if (sample > max_) max_ = sample;
    sum_ += sample;
  }

  /// Pools another accumulator into this one (parallel Welford merge).
  void merge(const StreamingStats& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const auto n1 = static_cast<double>(count_);
    const auto n2 = static_cast<double>(other.count_);
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  std::size_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }

  /// Population variance; 0 for fewer than 2 samples.
  double variance() const noexcept {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
  }
  double stddev() const noexcept { return std::sqrt(variance()); }

  double min() const {
    O2O_EXPECTS(count_ > 0);
    return min_;
  }
  double max() const {
    O2O_EXPECTS(count_ > 0);
    return max_;
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace o2o::metrics
