// Empirical CDF construction -- the paper reports its headline results
// (Figs. 4, 5, 8, 9) as CDFs of dispatch delay and of passenger/taxi
// dissatisfaction. CdfBuilder collects raw samples and answers quantile
// and F(x) queries, and emits evenly-spaced series for plotting.
#pragma once

#include <cstddef>
#include <vector>

namespace o2o::metrics {

class CdfBuilder {
 public:
  void add(double sample) { samples_.push_back(sample); sorted_ = false; }
  void add_all(const std::vector<double>& samples);

  std::size_t count() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  /// Empirical CDF value F(x) = P[X <= x]. Requires at least one sample.
  double cdf_at(double x) const;

  /// Empirical quantile for p in [0, 1] (nearest-rank with interpolation).
  double quantile(double p) const;

  double min() const;
  double max() const;
  double mean() const;

  /// (x, F(x)) series over `points` evenly spaced x-values covering
  /// [lo, hi]; used by the figure benches to print plottable rows.
  struct SeriesPoint {
    double x;
    double f;
  };
  std::vector<SeriesPoint> series(double lo, double hi, int points) const;

  /// Access to sorted samples (finalizes lazily).
  const std::vector<double>& sorted_samples() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;

  void ensure_sorted() const;
};

}  // namespace o2o::metrics
