#include "trace/trace.h"

#include <algorithm>

#include "util/contracts.h"

namespace o2o::trace {

Trace::Trace(std::string name, geo::Rect region, std::vector<Request> requests)
    : name_(std::move(name)), region_(region), requests_(std::move(requests)) {
  sort_and_reindex();
}

void Trace::sort_and_reindex() {
  std::stable_sort(requests_.begin(), requests_.end(),
                   [](const Request& a, const Request& b) {
                     return a.time_seconds < b.time_seconds;
                   });
  for (std::size_t i = 0; i < requests_.size(); ++i) {
    requests_[i].id = static_cast<RequestId>(i);
  }
}

double Trace::duration_seconds() const noexcept {
  return requests_.empty() ? 0.0 : requests_.back().time_seconds;
}

Trace Trace::slice(double from_seconds, double to_seconds) const {
  O2O_EXPECTS(from_seconds <= to_seconds);
  std::vector<Request> kept;
  for (const Request& r : requests_) {
    if (r.time_seconds >= from_seconds && r.time_seconds < to_seconds) {
      Request rebased = r;
      rebased.time_seconds -= from_seconds;
      kept.push_back(rebased);
    }
  }
  return Trace(name_, region_, std::move(kept));
}

Trace Trace::sample_every(std::size_t k) const {
  O2O_EXPECTS(k >= 1);
  std::vector<Request> kept;
  kept.reserve(requests_.size() / k + 1);
  for (std::size_t i = 0; i < requests_.size(); i += k) kept.push_back(requests_[i]);
  return Trace(name_, region_, std::move(kept));
}

double Trace::mean_rate_per_hour() const noexcept {
  const double duration = duration_seconds();
  if (duration <= 0.0) return 0.0;
  return static_cast<double>(requests_.size()) / duration * 3600.0;
}

}  // namespace o2o::trace
