// Passenger requests: the r_j = (r_j^s, r_j^d) objects of the paper,
// stamped with their arrival time and seat demand.
#pragma once

#include <cstdint>

#include "geo/point.h"

namespace o2o::trace {

using RequestId = std::int32_t;
inline constexpr RequestId kInvalidRequest = -1;

struct Request {
  RequestId id = kInvalidRequest;
  double time_seconds = 0.0;  ///< arrival time, seconds from trace start
  geo::Point pickup;          ///< r^s
  geo::Point dropoff;         ///< r^d
  int seats = 1;              ///< passengers travelling together

  /// Trip length under a given metric is intentionally *not* stored: all
  /// algorithms evaluate D(r^s, r^d) through their DistanceOracle.
};

}  // namespace o2o::trace
