// Synthetic workload generation calibrated to the paper's two traces
// (DESIGN.md §3 documents the substitution). A CityModel describes the
// service region, demand hotspots, trip-length distribution and diurnal
// demand curve; `generate` draws a Trace via a non-homogeneous Poisson
// process thinned by that curve.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geo/point.h"
#include "trace/trace.h"

namespace o2o::trace {

/// One Gaussian demand hotspot.
struct Hotspot {
  geo::Point center;
  double sigma_km = 1.0;
  double weight = 1.0;  ///< relative share of demand
};

/// City demand model.
struct CityModel {
  std::string name;
  geo::Rect region;
  std::vector<Hotspot> hotspots;      ///< pick-up location mixture
  double trip_km_log_mean = 1.0;      ///< log-normal trip length: mean of log
  double trip_km_log_sigma = 0.5;     ///< log-normal trip length: sigma of log
  double min_trip_km = 0.3;
  double base_rate_per_hour = 600.0;  ///< day-average request arrival rate

  /// The paper's New York trace spans a state-scale region served by 700
  /// taxis (1.44M requests over January 2016 ~ 1950/hour).
  static CityModel new_york();
  /// The Boston trace is compact: 200 taxis, 406k requests over September
  /// 2012 ~ 560/hour.
  static CityModel boston();
};

/// Demand multiplier at clock hour `h` in [0, 24): commute peaks at 9 am
/// and 6 pm over a night-dipping baseline, normalized to a day-average of
/// (approximately) 1 so `base_rate_per_hour` keeps its meaning.
double diurnal_multiplier(double hour);

/// Generation knobs independent of the city model.
struct GenerationOptions {
  double duration_seconds = 24.0 * 3600.0;
  double start_hour = 0.0;       ///< clock hour at trace time zero
  double rate_scale = 1.0;       ///< scales base_rate_per_hour
  std::uint64_t seed = 1;
  bool diurnal = true;           ///< apply the commute-peak curve
  int max_seats = 3;             ///< request seat demand drawn in [1, max]
  double multi_seat_fraction = 0.25;  ///< fraction of requests with > 1 seat
};

/// Draws a synthetic trace from `model` under `options`.
Trace generate(const CityModel& model, const GenerationOptions& options);

}  // namespace o2o::trace
