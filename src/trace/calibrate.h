// Calibration: fit a CityModel to an observed trace, closing the loop of
// DESIGN.md §3 -- drop a real New York TLC / Boston CSV in, calibrate,
// and the synthetic generator reproduces its volume, spatial spread,
// trip-length distribution and diurnal profile. Also used by tests as a
// generate -> calibrate -> compare round trip.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/synthetic.h"
#include "trace/trace.h"

namespace o2o::trace {

struct CalibrationOptions {
  /// Number of demand hotspots to extract (k-means over pick-ups).
  std::size_t hotspots = 4;
  std::size_t kmeans_iterations = 24;
  std::uint64_t seed = 1;
  /// Pad the fitted region by this fraction of its extent on each side.
  double region_margin = 0.02;
};

struct CalibrationResult {
  CityModel model;
  /// Mean demand multiplier observed per clock hour (24 entries,
  /// normalized to mean 1); diagnostic alongside the fitted model.
  std::vector<double> hourly_multiplier;
};

/// Fits volume (base rate), region, hotspot mixture (k-means, weights
/// from cluster mass, sigma from within-cluster spread), and a
/// log-normal trip length distribution. Requires a non-empty trace
/// covering at least one hour.
CalibrationResult calibrate(const Trace& trace, const CalibrationOptions& options = {});

}  // namespace o2o::trace
