#include "trace/fleet.h"

#include "util/contracts.h"
#include "util/rng.h"

namespace o2o::trace {

std::vector<Taxi> make_fleet(const geo::Rect& region, const FleetOptions& options) {
  O2O_EXPECTS(options.taxi_count >= 0);
  O2O_EXPECTS(options.sigma_fraction > 0.0);
  O2O_EXPECTS(options.seats >= 1);
  Rng rng(options.seed);
  const geo::Point center = region.center();
  const double sigma_x = region.width() / 2.0 * options.sigma_fraction;
  const double sigma_y = region.height() / 2.0 * options.sigma_fraction;
  std::vector<Taxi> fleet;
  fleet.reserve(static_cast<std::size_t>(options.taxi_count));
  for (int i = 0; i < options.taxi_count; ++i) {
    Taxi taxi;
    taxi.id = static_cast<TaxiId>(i);
    taxi.location = region.clamp(geo::Point{rng.normal(center.x, sigma_x),
                                            rng.normal(center.y, sigma_y)});
    taxi.seats = options.seats;
    fleet.push_back(taxi);
  }
  return fleet;
}

}  // namespace o2o::trace
