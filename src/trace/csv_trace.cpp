#include "trace/csv_trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>

#include "util/contracts.h"
#include "util/csv.h"
#include "util/strings.h"

namespace o2o::trace {

CsvSchema CsvSchema::nyc_tlc() {
  return CsvSchema{"new-york-tlc",
                   "tpep_pickup_datetime",
                   "pickup_latitude",
                   "pickup_longitude",
                   "dropoff_latitude",
                   "dropoff_longitude",
                   "passenger_count"};
}

CsvSchema CsvSchema::boston() {
  return CsvSchema{"boston-taxi", "TRIP_START", "START_LAT", "START_LON",
                   "END_LAT",     "END_LON",    ""};
}

std::optional<double> parse_datetime_utc(const std::string& text) {
  int year = 0, month = 0, day = 0, hour = 0, minute = 0, second = 0;
  const std::string trimmed{trim(text)};
  const int matched = std::sscanf(trimmed.c_str(), "%d-%d-%d%*1[ T]%d:%d:%d", &year, &month,
                                  &day, &hour, &minute, &second);
  if (matched != 6) return std::nullopt;
  if (month < 1 || month > 12 || day < 1 || day > 31) return std::nullopt;
  if (hour < 0 || hour > 23 || minute < 0 || minute > 59 || second < 0 || second > 60) {
    return std::nullopt;
  }
  // Days since the civil epoch (Howard Hinnant's algorithm).
  const int y = year - (month <= 2 ? 1 : 0);
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      static_cast<unsigned>((153 * (month + (month > 2 ? -3 : 9)) + 2) / 5 + day - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  const long long days = static_cast<long long>(era) * 146097 +
                         static_cast<long long>(doe) - 719468;
  return static_cast<double>(days) * 86400.0 + hour * 3600.0 + minute * 60.0 + second;
}

Trace load_latlon_csv(std::istream& in, const CsvSchema& schema) {
  const CsvTable table = CsvTable::read(in, /*has_header=*/true);
  const int time_col = table.column(schema.time_column);
  const int plat = table.column(schema.pickup_lat_column);
  const int plon = table.column(schema.pickup_lon_column);
  const int dlat = table.column(schema.dropoff_lat_column);
  const int dlon = table.column(schema.dropoff_lon_column);
  const int seats_col =
      schema.seats_column.empty() ? -1 : table.column(schema.seats_column);
  O2O_EXPECTS(time_col >= 0 && plat >= 0 && plon >= 0 && dlat >= 0 && dlon >= 0);

  struct RawRow {
    double epoch;
    geo::LatLon pickup;
    geo::LatLon dropoff;
    int seats;
  };
  std::vector<RawRow> raw;
  raw.reserve(table.row_count());
  double lat_sum = 0.0, lon_sum = 0.0;
  for (std::size_t i = 0; i < table.row_count(); ++i) {
    const auto epoch = parse_datetime_utc(table.field(i, time_col));
    const auto p_lat = parse_double(table.field(i, plat));
    const auto p_lon = parse_double(table.field(i, plon));
    const auto d_lat = parse_double(table.field(i, dlat));
    const auto d_lon = parse_double(table.field(i, dlon));
    if (!epoch || !p_lat || !p_lon || !d_lat || !d_lon) continue;
    // The public TLC files contain (0, 0) placeholders for GPS dropouts.
    if (*p_lat == 0.0 || *p_lon == 0.0 || *d_lat == 0.0 || *d_lon == 0.0) continue;
    int seats = 1;
    if (seats_col >= 0) {
      const auto parsed = parse_int(table.field(i, seats_col));
      if (parsed && *parsed >= 1 && *parsed <= 8) seats = static_cast<int>(*parsed);
    }
    raw.push_back(RawRow{*epoch, {*p_lat, *p_lon}, {*d_lat, *d_lon}, seats});
    lat_sum += *p_lat;
    lon_sum += *p_lon;
  }
  if (raw.empty()) return Trace(schema.name, geo::Rect{{0, 0}, {1, 1}}, {});

  const geo::Projection projection(
      geo::LatLon{lat_sum / static_cast<double>(raw.size()),
                  lon_sum / static_cast<double>(raw.size())});
  double t0 = std::numeric_limits<double>::infinity();
  for (const RawRow& row : raw) t0 = std::min(t0, row.epoch);

  std::vector<Request> requests;
  requests.reserve(raw.size());
  geo::Rect region{{std::numeric_limits<double>::infinity(),
                    std::numeric_limits<double>::infinity()},
                   {-std::numeric_limits<double>::infinity(),
                    -std::numeric_limits<double>::infinity()}};
  for (const RawRow& row : raw) {
    Request request;
    request.time_seconds = row.epoch - t0;
    request.pickup = projection.to_plane(row.pickup);
    request.dropoff = projection.to_plane(row.dropoff);
    request.seats = row.seats;
    requests.push_back(request);
    for (const geo::Point& p : {request.pickup, request.dropoff}) {
      region.lo.x = std::min(region.lo.x, p.x);
      region.lo.y = std::min(region.lo.y, p.y);
      region.hi.x = std::max(region.hi.x, p.x);
      region.hi.y = std::max(region.hi.y, p.y);
    }
  }
  return Trace(schema.name, region, std::move(requests));
}

Trace load_latlon_csv_file(const std::string& path, const CsvSchema& schema) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  return load_latlon_csv(in, schema);
}

void save_canonical_csv(std::ostream& out, const Trace& trace) {
  CsvWriter writer(out);
  writer.write_row({"time_seconds", "pickup_x_km", "pickup_y_km", "dropoff_x_km",
                    "dropoff_y_km", "seats"});
  for (const Request& r : trace.requests()) {
    writer.write_row({format_fixed(r.time_seconds, 3), format_fixed(r.pickup.x, 6),
                      format_fixed(r.pickup.y, 6), format_fixed(r.dropoff.x, 6),
                      format_fixed(r.dropoff.y, 6), std::to_string(r.seats)});
  }
}

Trace load_canonical_csv(std::istream& in, const std::string& name) {
  const CsvTable table = CsvTable::read(in, /*has_header=*/true);
  const int time_col = table.column("time_seconds");
  const int px = table.column("pickup_x_km");
  const int py = table.column("pickup_y_km");
  const int dx = table.column("dropoff_x_km");
  const int dy = table.column("dropoff_y_km");
  const int seats_col = table.column("seats");
  O2O_EXPECTS(time_col >= 0 && px >= 0 && py >= 0 && dx >= 0 && dy >= 0);

  std::vector<Request> requests;
  geo::Rect region{{std::numeric_limits<double>::infinity(),
                    std::numeric_limits<double>::infinity()},
                   {-std::numeric_limits<double>::infinity(),
                    -std::numeric_limits<double>::infinity()}};
  for (std::size_t i = 0; i < table.row_count(); ++i) {
    const auto time = parse_double(table.field(i, time_col));
    const auto pickup_x = parse_double(table.field(i, px));
    const auto pickup_y = parse_double(table.field(i, py));
    const auto dropoff_x = parse_double(table.field(i, dx));
    const auto dropoff_y = parse_double(table.field(i, dy));
    if (!time || !pickup_x || !pickup_y || !dropoff_x || !dropoff_y) continue;
    Request request;
    request.time_seconds = *time;
    request.pickup = {*pickup_x, *pickup_y};
    request.dropoff = {*dropoff_x, *dropoff_y};
    if (seats_col >= 0) {
      const auto seats = parse_int(table.field(i, seats_col));
      if (seats && *seats >= 1) request.seats = static_cast<int>(*seats);
    }
    requests.push_back(request);
    for (const geo::Point& p : {request.pickup, request.dropoff}) {
      region.lo.x = std::min(region.lo.x, p.x);
      region.lo.y = std::min(region.lo.y, p.y);
      region.hi.x = std::max(region.hi.x, p.x);
      region.hi.y = std::max(region.hi.y, p.y);
    }
  }
  if (requests.empty()) region = geo::Rect{{0, 0}, {1, 1}};
  return Trace(name, region, std::move(requests));
}

}  // namespace o2o::trace
