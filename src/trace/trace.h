// A trace is a time-ordered sequence of passenger requests plus the
// metadata the simulator needs (service region, human-readable name).
#pragma once

#include <string>
#include <vector>

#include "geo/point.h"
#include "trace/request.h"

namespace o2o::trace {

class Trace {
 public:
  Trace() = default;
  Trace(std::string name, geo::Rect region, std::vector<Request> requests);

  const std::string& name() const noexcept { return name_; }
  const geo::Rect& region() const noexcept { return region_; }
  const std::vector<Request>& requests() const noexcept { return requests_; }
  std::size_t size() const noexcept { return requests_.size(); }
  bool empty() const noexcept { return requests_.empty(); }

  /// Duration covered: time of the last request (0 when empty).
  double duration_seconds() const noexcept;

  /// Requests with time in [from_seconds, to_seconds), times re-based so
  /// the slice starts at 0.
  Trace slice(double from_seconds, double to_seconds) const;

  /// Keeps every k-th request (deterministic thinning; used to scale a
  /// heavy trace down while preserving its temporal/spatial shape).
  Trace sample_every(std::size_t k) const;

  /// Mean request rate over the covered duration, in requests per hour.
  double mean_rate_per_hour() const noexcept;

 private:
  std::string name_;
  geo::Rect region_{};
  std::vector<Request> requests_;

  void sort_and_reindex();
};

}  // namespace o2o::trace
