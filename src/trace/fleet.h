// Taxi fleet description and initial placement. The paper simulates 700
// (New York) / 200 (Boston) taxis whose initial locations follow a
// two-dimensional normal distribution around the city centre.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/point.h"

namespace o2o::trace {

using TaxiId = std::int32_t;
inline constexpr TaxiId kInvalidTaxi = -1;

struct Taxi {
  TaxiId id = kInvalidTaxi;
  geo::Point location;
  int seats = 4;  ///< passenger capacity
};

struct FleetOptions {
  int taxi_count = 200;
  double sigma_fraction = 0.25;  ///< stddev as a fraction of the region half-extent
  int seats = 4;
  std::uint64_t seed = 7;
};

/// Places taxis by a 2-D normal around the region centre, clamped into
/// the region.
std::vector<Taxi> make_fleet(const geo::Rect& region, const FleetOptions& options);

}  // namespace o2o::trace
