#include "trace/synthetic.h"

#include <cmath>

#include "util/contracts.h"
#include "util/rng.h"

namespace o2o::trace {

namespace {
constexpr double kPi = 3.14159265358979323846;

double gaussian_bump(double hour, double peak_hour, double width_hours) {
  const double d = hour - peak_hour;
  return std::exp(-d * d / (2.0 * width_hours * width_hours));
}
}  // namespace

double diurnal_multiplier(double hour) {
  hour = hour - 24.0 * std::floor(hour / 24.0);
  // Baseline with a deep night trough plus morning/evening commute peaks.
  // Weights chosen so the 24h mean is ~1.0 (checked in synthetic_test).
  const double night_trough = 0.54 + 0.25 * std::cos((hour - 15.0) / 24.0 * 2.0 * kPi);
  const double morning = 1.25 * gaussian_bump(hour, 9.0, 1.4);
  const double evening = 1.40 * gaussian_bump(hour, 18.0, 1.9);
  return night_trough + morning + evening;
}

CityModel CityModel::new_york() {
  CityModel model;
  model.name = "new-york";
  // State-scale service region (the paper notes the NY trace covers far
  // more than Manhattan), with demand concentrated in a dense core plus
  // satellite hotspots (boroughs / suburbs).
  model.region = geo::Rect{{-40.0, -40.0}, {40.0, 40.0}};
  model.hotspots = {
      Hotspot{{0.0, 0.0}, 4.0, 10.0},     // Manhattan-like core
      Hotspot{{8.0, -6.0}, 3.0, 3.0},     // inner borough
      Hotspot{{-7.0, 5.0}, 3.0, 3.0},     // inner borough
      Hotspot{{18.0, 10.0}, 5.0, 1.5},    // airport / suburb
      Hotspot{{-22.0, -15.0}, 6.0, 1.0},  // far suburb
      Hotspot{{25.0, -25.0}, 8.0, 0.5},   // exurb
  };
  model.trip_km_log_mean = std::log(4.0);
  model.trip_km_log_sigma = 0.75;
  model.min_trip_km = 0.4;
  model.base_rate_per_hour = 1950.0;  // 1.445M requests / 31 days
  return model;
}

CityModel CityModel::boston() {
  CityModel model;
  model.name = "boston";
  model.region = geo::Rect{{-10.0, -10.0}, {10.0, 10.0}};
  model.hotspots = {
      Hotspot{{0.0, 0.0}, 2.2, 8.0},    // downtown
      Hotspot{{3.5, 2.0}, 1.5, 2.5},    // university cluster
      Hotspot{{-4.0, -2.5}, 2.0, 2.0},  // residential
      Hotspot{{5.0, -5.0}, 2.5, 1.0},   // airport side
  };
  model.trip_km_log_mean = std::log(2.8);
  model.trip_km_log_sigma = 0.6;
  model.min_trip_km = 0.3;
  model.base_rate_per_hour = 560.0;  // 406k requests / 30 days
  return model;
}

Trace generate(const CityModel& model, const GenerationOptions& options) {
  O2O_EXPECTS(!model.hotspots.empty());
  O2O_EXPECTS(model.base_rate_per_hour >= 0.0);
  O2O_EXPECTS(options.duration_seconds > 0.0);
  O2O_EXPECTS(options.rate_scale >= 0.0);
  O2O_EXPECTS(options.max_seats >= 1);
  Rng rng(options.seed);

  double total_weight = 0.0;
  for (const Hotspot& h : model.hotspots) {
    O2O_EXPECTS(h.weight > 0.0 && h.sigma_km > 0.0);
    total_weight += h.weight;
  }

  const auto draw_hotspot = [&]() -> const Hotspot& {
    double pick = rng.uniform(0.0, total_weight);
    for (const Hotspot& h : model.hotspots) {
      pick -= h.weight;
      if (pick <= 0.0) return h;
    }
    return model.hotspots.back();
  };

  std::vector<Request> requests;
  // Arrivals: per-minute Poisson thinning of the diurnal curve. A minute
  // is much finer than any demand feature, so this matches a true
  // non-homogeneous process for our purposes.
  const double step = 60.0;
  for (double t = 0.0; t < options.duration_seconds; t += step) {
    const double slice = std::min(step, options.duration_seconds - t);
    const double hour = options.start_hour + t / 3600.0;
    const double multiplier = options.diurnal ? diurnal_multiplier(hour) : 1.0;
    const double mean =
        model.base_rate_per_hour * options.rate_scale * multiplier * slice / 3600.0;
    const std::uint64_t arrivals = rng.poisson(mean);
    for (std::uint64_t i = 0; i < arrivals; ++i) {
      Request request;
      request.time_seconds = t + rng.uniform(0.0, slice);

      const Hotspot& hotspot = draw_hotspot();
      request.pickup = model.region.clamp(
          geo::Point{rng.normal(hotspot.center.x, hotspot.sigma_km),
                     rng.normal(hotspot.center.y, hotspot.sigma_km)});

      const double trip_km = std::max(
          model.min_trip_km,
          std::exp(rng.normal(model.trip_km_log_mean, model.trip_km_log_sigma)));
      const double heading = rng.uniform(0.0, 2.0 * kPi);
      request.dropoff = model.region.clamp(
          request.pickup +
          geo::Point{trip_km * std::cos(heading), trip_km * std::sin(heading)});

      request.seats = 1;
      if (options.max_seats > 1 && rng.bernoulli(options.multi_seat_fraction)) {
        request.seats = static_cast<int>(rng.uniform_int(2, options.max_seats));
      }
      requests.push_back(request);
    }
  }
  return Trace(model.name, model.region, std::move(requests));
}

}  // namespace o2o::trace
