// Parsers for the public trip-record schemas the paper evaluates on:
//
//  * New York TLC yellow-cab records [22]: `tpep_pickup_datetime`,
//    `pickup_longitude/latitude`, `dropoff_longitude/latitude`,
//    `passenger_count`.
//  * Boston taxi records [23]: comparable columns under different names.
//
// Real files can be dropped in unchanged; the synthetic generators in
// synthetic.h are used when they are not available (see DESIGN.md §3).
// A canonical plain schema (time_seconds, pickup_x/y_km, dropoff_x/y_km,
// seats) round-trips traces produced by this library.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "geo/projection.h"
#include "trace/trace.h"

namespace o2o::trace {

/// Column mapping for a lat/lon CSV schema.
struct CsvSchema {
  std::string name;            ///< trace label
  std::string time_column;     ///< "YYYY-MM-DD HH:MM:SS" wall-clock column
  std::string pickup_lat_column;
  std::string pickup_lon_column;
  std::string dropoff_lat_column;
  std::string dropoff_lon_column;
  std::string seats_column;    ///< optional; empty -> 1 seat per request

  /// New York TLC yellow-cab schema (2015/2016 files).
  static CsvSchema nyc_tlc();
  /// Boston taxi-trip schema (2012 data-challenge files).
  static CsvSchema boston();
};

/// Parses "YYYY-MM-DD HH:MM:SS" (also accepts 'T' separator) into seconds
/// since 1970-01-01 00:00:00 UTC; nullopt on malformed input.
std::optional<double> parse_datetime_utc(const std::string& text);

/// Loads a lat/lon CSV under `schema`. Rows with unparsable fields or
/// zero/degenerate coordinates (a known artifact of the public TLC data)
/// are skipped. Coordinates are projected around the trace's mean pick-up
/// location; request times are re-based to the earliest request.
Trace load_latlon_csv(std::istream& in, const CsvSchema& schema);
Trace load_latlon_csv_file(const std::string& path, const CsvSchema& schema);

/// Canonical plain-km schema emitted by this library.
void save_canonical_csv(std::ostream& out, const Trace& trace);
Trace load_canonical_csv(std::istream& in, const std::string& name);

}  // namespace o2o::trace
