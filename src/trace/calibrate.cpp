#include "trace/calibrate.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"
#include "util/rng.h"

namespace o2o::trace {

namespace {

/// Plain k-means over pick-up locations with k-means++-style seeding.
struct Cluster {
  geo::Point center;
  double sigma_km = 1.0;
  double weight = 1.0;
};

std::vector<Cluster> kmeans(const std::vector<geo::Point>& points, std::size_t k,
                            std::size_t iterations, Rng& rng) {
  O2O_EXPECTS(!points.empty());
  k = std::min(k, points.size());
  std::vector<geo::Point> centers;
  centers.reserve(k);
  // Seeding: first center uniform, then farthest-biased.
  centers.push_back(points[rng.uniform_index(points.size())]);
  while (centers.size() < k) {
    double total = 0.0;
    std::vector<double> d2(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      double best = geo::squared_distance(points[i], centers[0]);
      for (std::size_t c = 1; c < centers.size(); ++c) {
        best = std::min(best, geo::squared_distance(points[i], centers[c]));
      }
      d2[i] = best;
      total += best;
    }
    double pick = rng.uniform(0.0, total > 0.0 ? total : 1.0);
    std::size_t chosen = points.size() - 1;
    for (std::size_t i = 0; i < points.size(); ++i) {
      pick -= d2[i];
      if (pick <= 0.0) {
        chosen = i;
        break;
      }
    }
    centers.push_back(points[chosen]);
  }

  std::vector<std::size_t> assignment(points.size(), 0);
  for (std::size_t iteration = 0; iteration < iterations; ++iteration) {
    bool moved = false;
    for (std::size_t i = 0; i < points.size(); ++i) {
      std::size_t best = 0;
      double best_d2 = geo::squared_distance(points[i], centers[0]);
      for (std::size_t c = 1; c < centers.size(); ++c) {
        const double d2 = geo::squared_distance(points[i], centers[c]);
        if (d2 < best_d2) {
          best_d2 = d2;
          best = c;
        }
      }
      if (assignment[i] != best) {
        assignment[i] = best;
        moved = true;
      }
    }
    std::vector<geo::Point> sums(centers.size(), geo::Point{0, 0});
    std::vector<std::size_t> counts(centers.size(), 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      sums[assignment[i]] = sums[assignment[i]] + points[i];
      ++counts[assignment[i]];
    }
    for (std::size_t c = 0; c < centers.size(); ++c) {
      if (counts[c] > 0) {
        centers[c] = sums[c] * (1.0 / static_cast<double>(counts[c]));
      }
    }
    if (!moved) break;
  }

  std::vector<Cluster> clusters(centers.size());
  std::vector<double> spread(centers.size(), 0.0);
  std::vector<std::size_t> counts(centers.size(), 0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    spread[assignment[i]] += geo::squared_distance(points[i], centers[assignment[i]]);
    ++counts[assignment[i]];
  }
  for (std::size_t c = 0; c < centers.size(); ++c) {
    clusters[c].center = centers[c];
    clusters[c].weight = static_cast<double>(counts[c]);
    // Isotropic Gaussian: E[|x - mu|^2] = 2 sigma^2.
    clusters[c].sigma_km =
        counts[c] > 1 ? std::sqrt(spread[c] / (2.0 * static_cast<double>(counts[c])))
                      : 0.5;
    clusters[c].sigma_km = std::max(clusters[c].sigma_km, 0.05);
  }
  return clusters;
}

}  // namespace

CalibrationResult calibrate(const Trace& trace, const CalibrationOptions& options) {
  O2O_EXPECTS(!trace.empty());
  O2O_EXPECTS(trace.duration_seconds() >= 3600.0);
  O2O_EXPECTS(options.hotspots >= 1);
  Rng rng(options.seed);

  CalibrationResult result;
  CityModel& model = result.model;
  model.name = trace.name() + "-calibrated";

  // Region: bounding box of all endpoints, padded.
  geo::Rect region = trace.region();
  const double margin_x = region.width() * options.region_margin;
  const double margin_y = region.height() * options.region_margin;
  region.lo.x -= margin_x;
  region.lo.y -= margin_y;
  region.hi.x += margin_x;
  region.hi.y += margin_y;
  model.region = region;

  // Volume.
  model.base_rate_per_hour =
      static_cast<double>(trace.size()) / trace.duration_seconds() * 3600.0;

  // Hotspots from pick-up locations.
  std::vector<geo::Point> pickups;
  pickups.reserve(trace.size());
  for (const Request& request : trace.requests()) pickups.push_back(request.pickup);
  for (const Cluster& cluster :
       kmeans(pickups, options.hotspots, options.kmeans_iterations, rng)) {
    if (cluster.weight <= 0.0) continue;
    model.hotspots.push_back(Hotspot{cluster.center, cluster.sigma_km, cluster.weight});
  }
  O2O_ENSURES(!model.hotspots.empty());

  // Trip lengths: log-normal moments of direct distances.
  double log_sum = 0.0, log_sq_sum = 0.0;
  double min_trip = std::numeric_limits<double>::infinity();
  std::size_t counted = 0;
  for (const Request& request : trace.requests()) {
    const double trip = geo::euclidean_distance(request.pickup, request.dropoff);
    if (trip <= 0.0) continue;
    const double log_trip = std::log(trip);
    log_sum += log_trip;
    log_sq_sum += log_trip * log_trip;
    min_trip = std::min(min_trip, trip);
    ++counted;
  }
  if (counted > 1) {
    model.trip_km_log_mean = log_sum / static_cast<double>(counted);
    const double variance = std::max(
        0.0, log_sq_sum / static_cast<double>(counted) -
                 model.trip_km_log_mean * model.trip_km_log_mean);
    model.trip_km_log_sigma = std::max(0.05, std::sqrt(variance));
    model.min_trip_km = std::max(0.05, min_trip);
  }

  // Diurnal profile: requests per clock hour, normalized to mean 1 over
  // the hours the trace covers.
  std::vector<double> hour_counts(24, 0.0);
  std::vector<double> hour_exposure(24, 0.0);  // how often each hour occurs
  for (const Request& request : trace.requests()) {
    const double day_seconds =
        request.time_seconds - 86400.0 * std::floor(request.time_seconds / 86400.0);
    hour_counts[static_cast<std::size_t>(day_seconds / 3600.0) % 24] += 1.0;
  }
  for (double t = 0.0; t < trace.duration_seconds(); t += 3600.0) {
    const double day_seconds = t - 86400.0 * std::floor(t / 86400.0);
    hour_exposure[static_cast<std::size_t>(day_seconds / 3600.0) % 24] +=
        std::min(3600.0, trace.duration_seconds() - t) / 3600.0;
  }
  result.hourly_multiplier.assign(24, 0.0);
  double covered_mean = 0.0;
  std::size_t covered_hours = 0;
  for (std::size_t h = 0; h < 24; ++h) {
    if (hour_exposure[h] > 0.0) {
      result.hourly_multiplier[h] = hour_counts[h] / hour_exposure[h];
      covered_mean += result.hourly_multiplier[h];
      ++covered_hours;
    }
  }
  if (covered_hours > 0 && covered_mean > 0.0) {
    covered_mean /= static_cast<double>(covered_hours);
    for (double& multiplier : result.hourly_multiplier) multiplier /= covered_mean;
  }
  return result;
}

}  // namespace o2o::trace
