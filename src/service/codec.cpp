#include "service/codec.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <utility>

#include "obs/obs.h"

namespace o2o::service {

namespace {

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

void append_double(std::string& out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  out += buffer;
}

void append_point(std::string& out, const geo::Point& point) {
  out += '[';
  append_double(out, point.x);
  out += ',';
  append_double(out, point.y);
  out += ']';
}

void append_stops(std::string& out, const std::vector<api::DriverStop>& stops) {
  out += '[';
  for (std::size_t i = 0; i < stops.size(); ++i) {
    if (i != 0) out += ',';
    out += "{\"order_id\":";
    out += std::to_string(stops[i].order_id);
    out += ",\"pickup\":";
    out += stops[i].is_pickup ? "true" : "false";
    out += ",\"point\":";
    append_point(out, stops[i].point);
    out += '}';
  }
  out += ']';
}

void append_id_list(std::string& out, const std::vector<std::int32_t>& ids) {
  out += '[';
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(ids[i]);
  }
  out += ']';
}

std::string versioned_prefix(std::string_view event) {
  std::string out = "{\"v\":";
  out += std::to_string(api::kApiVersionMajor);
  out += ",\"event\":\"";
  out += event;
  out += '"';
  return out;
}

std::string encode_order(const api::Order& order) {
  std::string out = versioned_prefix("order");
  out += ",\"order_id\":";
  out += std::to_string(order.order_id);
  out += ",\"timestamp\":";
  append_double(out, order.timestamp);
  out += ",\"start\":";
  append_point(out, order.start);
  out += ",\"finish\":";
  append_point(out, order.finish);
  out += ",\"seats\":";
  out += std::to_string(order.seats);
  out += ",\"reward_units\":";
  append_double(out, order.reward_units);
  out += '}';
  return out;
}

std::string encode_driver(const api::Driver& driver) {
  std::string out = versioned_prefix("driver");
  out += ",\"driver_id\":";
  out += std::to_string(driver.driver_id);
  out += ",\"location\":";
  append_point(out, driver.location);
  out += ",\"seats\":";
  out += std::to_string(driver.seats);
  out += ",\"seats_in_use\":";
  out += std::to_string(driver.seats_in_use);
  out += ",\"onboard\":";
  append_id_list(out, driver.onboard);
  out += ",\"route\":";
  append_stops(out, driver.route);
  out += ",\"route_seats\":[";
  for (std::size_t i = 0; i < driver.route_seats.size(); ++i) {
    if (i != 0) out += ',';
    out += '[';
    out += std::to_string(driver.route_seats[i].first);
    out += ',';
    out += std::to_string(driver.route_seats[i].second);
    out += ']';
  }
  out += "]}";
  return out;
}

// ---------------------------------------------------------------------------
// Minimal JSON reader: just enough for the fixed schemas above. Numbers
// keep their raw token so integers parse exactly (no double round-trip).
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Type : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string raw;  ///< number token text (exact integer parses)
  std::string text;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> members;

  const JsonValue* find(std::string_view key) const {
    for (const auto& [name, value] : members) {
      if (name == key) return &value;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view input) : input_(input) {}

  std::optional<JsonValue> parse(std::string* error) {
    JsonValue value;
    if (!parse_value(value)) {
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    skip_space();
    if (pos_ != input_.size()) {
      if (error != nullptr) *error = "trailing characters after JSON value";
      return std::nullopt;
    }
    return value;
  }

 private:
  bool fail(std::string message) {
    if (error_.empty()) error_ = std::move(message);
    return false;
  }

  void skip_space() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char expected) {
    skip_space();
    if (pos_ >= input_.size() || input_[pos_] != expected) {
      return fail(std::string("expected '") + expected + "'");
    }
    ++pos_;
    return true;
  }

  bool parse_value(JsonValue& out) {
    skip_space();
    if (pos_ >= input_.size()) return fail("unexpected end of input");
    const char c = input_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') return parse_string(out);
    if (c == 't' || c == 'f') return parse_bool(out);
    if (c == 'n') return parse_null(out);
    return parse_number(out);
  }

  bool parse_object(JsonValue& out) {
    out.type = JsonValue::Type::kObject;
    if (++depth_ > kMaxDepth) return fail("nesting too deep");
    if (!consume('{')) return false;
    skip_space();
    if (pos_ < input_.size() && input_[pos_] == '}') {
      ++pos_;
      --depth_;
      return true;
    }
    while (true) {
      JsonValue key;
      if (!parse_string(key)) return false;
      if (!consume(':')) return false;
      JsonValue value;
      if (!parse_value(value)) return false;
      out.members.emplace_back(std::move(key.text), std::move(value));
      skip_space();
      if (pos_ >= input_.size()) return fail("unterminated object");
      if (input_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (input_[pos_] == '}') {
        ++pos_;
        --depth_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue& out) {
    out.type = JsonValue::Type::kArray;
    if (++depth_ > kMaxDepth) return fail("nesting too deep");
    if (!consume('[')) return false;
    skip_space();
    if (pos_ < input_.size() && input_[pos_] == ']') {
      ++pos_;
      --depth_;
      return true;
    }
    while (true) {
      JsonValue item;
      if (!parse_value(item)) return false;
      out.items.push_back(std::move(item));
      skip_space();
      if (pos_ >= input_.size()) return fail("unterminated array");
      if (input_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (input_[pos_] == ']') {
        ++pos_;
        --depth_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(JsonValue& out) {
    out.type = JsonValue::Type::kString;
    if (!consume('"')) return false;
    std::string text;
    while (pos_ < input_.size()) {
      const char c = input_[pos_++];
      if (c == '"') {
        out.text = std::move(text);
        return true;
      }
      if (c == '\\') {
        if (pos_ >= input_.size()) return fail("unterminated escape");
        const char esc = input_[pos_++];
        switch (esc) {
          case '"': text += '"'; break;
          case '\\': text += '\\'; break;
          case '/': text += '/'; break;
          case 'n': text += '\n'; break;
          case 't': text += '\t'; break;
          case 'r': text += '\r'; break;
          default: return fail("unsupported escape sequence");
        }
        continue;
      }
      text += c;
    }
    return fail("unterminated string");
  }

  bool parse_bool(JsonValue& out) {
    out.type = JsonValue::Type::kBool;
    if (input_.compare(pos_, 4, "true") == 0) {
      out.boolean = true;
      pos_ += 4;
      return true;
    }
    if (input_.compare(pos_, 5, "false") == 0) {
      out.boolean = false;
      pos_ += 5;
      return true;
    }
    return fail("expected boolean");
  }

  bool parse_null(JsonValue& out) {
    out.type = JsonValue::Type::kNull;
    if (input_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    return fail("expected null");
  }

  bool parse_number(JsonValue& out) {
    out.type = JsonValue::Type::kNumber;
    const std::size_t start = pos_;
    if (pos_ < input_.size() && (input_[pos_] == '-' || input_[pos_] == '+')) ++pos_;
    while (pos_ < input_.size()) {
      const char c = input_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '.' || c == 'e' ||
          c == 'E' || c == '-' || c == '+' || c == 'i' || c == 'n' || c == 'f') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return fail("expected number");
    out.raw = std::string(input_.substr(start, pos_ - start));
    char* end = nullptr;
    out.number = std::strtod(out.raw.c_str(), &end);
    if (end != out.raw.c_str() + out.raw.size()) return fail("malformed number");
    return true;
  }

  // The schema needs ~4 levels of nesting; a small cap keeps a hostile
  // '[[[[...' line from overflowing the stack of this recursive parser.
  static constexpr int kMaxDepth = 16;

  std::string_view input_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

// ---------------------------------------------------------------------------
// Schema extraction
// ---------------------------------------------------------------------------

bool set_error(CodecError* error, std::string message) {
  if (error != nullptr) error->message = std::move(message);
  return false;
}

/// Integer tokens must be pure decimal integers in range: '1.9' must not
/// silently truncate to 1, nor may an out-of-range id clamp/wrap into a
/// different valid id.
bool is_integer_token(const std::string& raw, bool allow_negative) {
  std::size_t i = allow_negative && !raw.empty() && raw[0] == '-' ? 1 : 0;
  if (i == raw.size()) return false;
  for (; i < raw.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(raw[i]))) return false;
  }
  return true;
}

bool token_to_i32(const std::string& raw, std::int32_t& out) {
  if (!is_integer_token(raw, /*allow_negative=*/true)) return false;
  errno = 0;
  char* end = nullptr;
  const long long wide = std::strtoll(raw.c_str(), &end, 10);
  if (errno == ERANGE || end != raw.c_str() + raw.size()) return false;
  if (wide < std::numeric_limits<std::int32_t>::min() ||
      wide > std::numeric_limits<std::int32_t>::max()) {
    return false;
  }
  out = static_cast<std::int32_t>(wide);
  return true;
}

bool token_to_u64(const std::string& raw, std::uint64_t& out) {
  if (!is_integer_token(raw, /*allow_negative=*/false)) return false;
  errno = 0;
  char* end = nullptr;
  out = std::strtoull(raw.c_str(), &end, 10);
  return errno != ERANGE && end == raw.c_str() + raw.size();
}

bool read_double(const JsonValue& object, std::string_view key, double& out,
                 CodecError* error) {
  const JsonValue* value = object.find(key);
  if (value == nullptr || value->type != JsonValue::Type::kNumber) {
    return set_error(error, "missing numeric field '" + std::string(key) + "'");
  }
  out = value->number;
  return true;
}

bool read_i32(const JsonValue& object, std::string_view key, std::int32_t& out,
              CodecError* error) {
  const JsonValue* value = object.find(key);
  if (value == nullptr || value->type != JsonValue::Type::kNumber) {
    return set_error(error, "missing integer field '" + std::string(key) + "'");
  }
  if (!token_to_i32(value->raw, out)) {
    return set_error(error, "field '" + std::string(key) +
                                "' must be a 32-bit integer, got '" + value->raw + "'");
  }
  return true;
}

bool read_u64(const JsonValue& object, std::string_view key, std::uint64_t& out,
              CodecError* error) {
  const JsonValue* value = object.find(key);
  if (value == nullptr || value->type != JsonValue::Type::kNumber) {
    return set_error(error, "missing integer field '" + std::string(key) + "'");
  }
  if (!token_to_u64(value->raw, out)) {
    return set_error(error, "field '" + std::string(key) +
                                "' must be an unsigned integer, got '" + value->raw + "'");
  }
  return true;
}

bool read_point(const JsonValue& object, std::string_view key, geo::Point& out,
                CodecError* error) {
  const JsonValue* value = object.find(key);
  if (value == nullptr || value->type != JsonValue::Type::kArray ||
      value->items.size() != 2 ||
      value->items[0].type != JsonValue::Type::kNumber ||
      value->items[1].type != JsonValue::Type::kNumber) {
    return set_error(error, "field '" + std::string(key) + "' must be [x, y]");
  }
  out.x = value->items[0].number;
  out.y = value->items[1].number;
  return true;
}

bool read_stops(const JsonValue& object, std::string_view key,
                std::vector<api::DriverStop>& out, CodecError* error) {
  const JsonValue* value = object.find(key);
  if (value == nullptr || value->type != JsonValue::Type::kArray) {
    return set_error(error, "field '" + std::string(key) + "' must be an array");
  }
  out.clear();
  out.reserve(value->items.size());
  for (const JsonValue& item : value->items) {
    if (item.type != JsonValue::Type::kObject) {
      return set_error(error, "route stops must be objects");
    }
    api::DriverStop stop;
    if (!read_i32(item, "order_id", stop.order_id, error)) return false;
    const JsonValue* pickup = item.find("pickup");
    if (pickup == nullptr || pickup->type != JsonValue::Type::kBool) {
      return set_error(error, "stop field 'pickup' must be a boolean");
    }
    stop.is_pickup = pickup->boolean;
    if (!read_point(item, "point", stop.point, error)) return false;
    out.push_back(stop);
  }
  return true;
}

bool read_id_list(const JsonValue& object, std::string_view key,
                  std::vector<std::int32_t>& out, CodecError* error) {
  const JsonValue* value = object.find(key);
  if (value == nullptr || value->type != JsonValue::Type::kArray) {
    return set_error(error, "field '" + std::string(key) + "' must be an array");
  }
  out.clear();
  out.reserve(value->items.size());
  for (const JsonValue& item : value->items) {
    std::int32_t id = 0;
    if (item.type != JsonValue::Type::kNumber || !token_to_i32(item.raw, id)) {
      return set_error(error, "id lists must hold 32-bit integers");
    }
    out.push_back(id);
  }
  return true;
}

bool check_version(const JsonValue& object, CodecError* error) {
  const JsonValue* version = object.find("v");
  std::int32_t major = 0;
  if (version == nullptr || version->type != JsonValue::Type::kNumber ||
      !token_to_i32(version->raw, major)) {
    return set_error(error, "missing integer API version field 'v'");
  }
  if (major != api::kApiVersionMajor) {
    return set_error(error, "unsupported API major version " + std::to_string(major) +
                                " (this build speaks " +
                                std::to_string(api::kApiVersionMajor) + ")");
  }
  return true;
}

/// Optional fields keep the struct's default when absent; present but
/// malformed fields are still rejected. Hand-written clients can send a
/// minimal order/driver and the server fills in the rest.
bool present(const JsonValue& object, std::string_view key) {
  return object.find(key) != nullptr;
}

bool decode_order(const JsonValue& object, api::Order& out, CodecError* error) {
  return read_i32(object, "order_id", out.order_id, error) &&
         read_double(object, "timestamp", out.timestamp, error) &&
         read_point(object, "start", out.start, error) &&
         read_point(object, "finish", out.finish, error) &&
         (!present(object, "seats") || read_i32(object, "seats", out.seats, error)) &&
         (!present(object, "reward_units") ||
          read_double(object, "reward_units", out.reward_units, error));
}

bool decode_driver(const JsonValue& object, api::Driver& out, CodecError* error) {
  if (!read_i32(object, "driver_id", out.driver_id, error) ||
      !read_point(object, "location", out.location, error) ||
      (present(object, "seats") && !read_i32(object, "seats", out.seats, error)) ||
      (present(object, "seats_in_use") &&
       !read_i32(object, "seats_in_use", out.seats_in_use, error)) ||
      (present(object, "onboard") &&
       !read_id_list(object, "onboard", out.onboard, error)) ||
      (present(object, "route") && !read_stops(object, "route", out.route, error))) {
    return false;
  }
  const JsonValue* seats = object.find("route_seats");
  if (seats == nullptr) return true;
  if (seats->type != JsonValue::Type::kArray) {
    return set_error(error, "field 'route_seats' must be an array");
  }
  out.route_seats.clear();
  out.route_seats.reserve(seats->items.size());
  for (const JsonValue& item : seats->items) {
    std::int32_t order_id = 0;
    std::int32_t seat_count = 0;
    if (item.type != JsonValue::Type::kArray || item.items.size() != 2 ||
        item.items[0].type != JsonValue::Type::kNumber ||
        item.items[1].type != JsonValue::Type::kNumber ||
        !token_to_i32(item.items[0].raw, order_id) ||
        !token_to_i32(item.items[1].raw, seat_count)) {
      return set_error(error, "route_seats entries must be [order_id, seats]");
    }
    out.route_seats.emplace_back(order_id, static_cast<int>(seat_count));
  }
  return true;
}

}  // namespace

std::string encode_event(const api::RideEvent& event) {
  obs::StageTimer timer(obs::Stage::kCodec);
  switch (event.kind) {
    case api::RideEvent::Kind::kOrder:
      return encode_order(event.order);
    case api::RideEvent::Kind::kDriver:
      return encode_driver(event.driver);
    case api::RideEvent::Kind::kEndFrame: {
      std::string out = versioned_prefix("end_frame");
      out += ",\"frame\":";
      out += std::to_string(event.frame);
      out += ",\"timestamp\":";
      append_double(out, event.timestamp);
      out += '}';
      return out;
    }
  }
  return {};
}

std::vector<std::string> encode_frame_events(const api::FrameRequest& request) {
  std::vector<std::string> lines;
  lines.reserve(request.orders.size() + request.drivers.size() + 1);
  for (const api::Order& order : request.orders) {
    lines.push_back(encode_event(api::RideEvent::make_order(order)));
  }
  for (const api::Driver& driver : request.drivers) {
    lines.push_back(encode_event(api::RideEvent::make_driver(driver)));
  }
  lines.push_back(
      encode_event(api::RideEvent::make_end_frame(request.frame, request.timestamp)));
  return lines;
}

std::string encode_response(const api::FrameResponse& response) {
  obs::StageTimer timer(obs::Stage::kCodec);
  std::string out = versioned_prefix("frame_response");
  out += ",\"frame\":";
  out += std::to_string(response.frame);
  out += ",\"timestamp\":";
  append_double(out, response.timestamp);
  out += ",\"assignments\":[";
  for (std::size_t i = 0; i < response.assignments.size(); ++i) {
    const api::Assignment& assignment = response.assignments[i];
    if (i != 0) out += ',';
    out += "{\"driver_id\":";
    out += std::to_string(assignment.driver_id);
    out += ",\"order_ids\":";
    append_id_list(out, assignment.order_ids);
    out += ",\"start\":";
    append_point(out, assignment.start);
    out += ",\"route\":";
    append_stops(out, assignment.route);
    out += ",\"pick_up_eta\":";
    append_double(out, assignment.pick_up_eta);
    out += '}';
  }
  out += "]}";
  return out;
}

std::optional<api::RideEvent> decode_event(std::string_view line, CodecError* error) {
  obs::StageTimer timer(obs::Stage::kCodec);
  std::string parse_error;
  const std::optional<JsonValue> root = JsonParser(line).parse(&parse_error);
  if (!root || root->type != JsonValue::Type::kObject) {
    set_error(error, parse_error.empty() ? "event line must be a JSON object"
                                         : std::move(parse_error));
    return std::nullopt;
  }
  if (!check_version(*root, error)) return std::nullopt;
  const JsonValue* kind = root->find("event");
  if (kind == nullptr || kind->type != JsonValue::Type::kString) {
    set_error(error, "missing string field 'event'");
    return std::nullopt;
  }

  api::RideEvent event;
  if (kind->text == "order") {
    event.kind = api::RideEvent::Kind::kOrder;
    if (!decode_order(*root, event.order, error)) return std::nullopt;
    return event;
  }
  if (kind->text == "driver") {
    event.kind = api::RideEvent::Kind::kDriver;
    if (!decode_driver(*root, event.driver, error)) return std::nullopt;
    return event;
  }
  if (kind->text == "end_frame") {
    event.kind = api::RideEvent::Kind::kEndFrame;
    if (!read_u64(*root, "frame", event.frame, error) ||
        !read_double(*root, "timestamp", event.timestamp, error)) {
      return std::nullopt;
    }
    return event;
  }
  set_error(error, "unknown event kind '" + kind->text + "'");
  return std::nullopt;
}

std::optional<api::FrameResponse> decode_response(std::string_view line,
                                                  CodecError* error) {
  obs::StageTimer timer(obs::Stage::kCodec);
  std::string parse_error;
  const std::optional<JsonValue> root = JsonParser(line).parse(&parse_error);
  if (!root || root->type != JsonValue::Type::kObject) {
    set_error(error, parse_error.empty() ? "response line must be a JSON object"
                                         : std::move(parse_error));
    return std::nullopt;
  }
  if (!check_version(*root, error)) return std::nullopt;
  const JsonValue* kind = root->find("event");
  if (kind == nullptr || kind->type != JsonValue::Type::kString ||
      kind->text != "frame_response") {
    set_error(error, "expected event kind 'frame_response'");
    return std::nullopt;
  }

  api::FrameResponse response;
  if (!read_u64(*root, "frame", response.frame, error) ||
      !read_double(*root, "timestamp", response.timestamp, error)) {
    return std::nullopt;
  }
  const JsonValue* assignments = root->find("assignments");
  if (assignments == nullptr || assignments->type != JsonValue::Type::kArray) {
    set_error(error, "field 'assignments' must be an array");
    return std::nullopt;
  }
  response.assignments.reserve(assignments->items.size());
  for (const JsonValue& item : assignments->items) {
    if (item.type != JsonValue::Type::kObject) {
      set_error(error, "assignments must be objects");
      return std::nullopt;
    }
    api::Assignment assignment;
    if (!read_i32(item, "driver_id", assignment.driver_id, error) ||
        !read_id_list(item, "order_ids", assignment.order_ids, error) ||
        !read_point(item, "start", assignment.start, error) ||
        !read_stops(item, "route", assignment.route, error) ||
        !read_double(item, "pick_up_eta", assignment.pick_up_eta, error)) {
      return std::nullopt;
    }
    response.assignments.push_back(std::move(assignment));
  }
  return response;
}

}  // namespace o2o::service
