// Replay driver: feeds a recorded simulator day through the streaming
// service frame by frame and returns the resulting SimulationReport —
// the instrument that proves the streamed path bit-identical to the
// batch Simulator under the same DispatchConfig.
//
// The simulator's kinematics (arrivals, cancellations, driving, pickup
// and drop-off bookkeeping) run unchanged via Simulator::run_streamed;
// only the per-frame dispatch call is routed through the caller's
// serve_fn, which typically encodes the frame to the wire, feeds a
// DispatchSession (in process or across a socket), and decodes the
// response.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "core/dispatch_config.h"
#include "geo/distance_oracle.h"
#include "service/api.h"
#include "service/session.h"
#include "sim/report.h"
#include "sim/simulator.h"
#include "trace/fleet.h"
#include "trace/trace.h"

namespace o2o::service {

/// Answers one frame: the service being replayed against.
using ServeFrameFn = std::function<api::FrameResponse(const api::FrameRequest&)>;

/// Converts one frame's DispatchContext into the api contract: pending
/// requests become orders, idle and busy taxis become drivers (with
/// routes, onboard lists, and route seat demands for the busy ones).
api::FrameRequest snapshot_to_request(const sim::DispatchContext& context,
                                      std::uint64_t frame);

/// Converts a response back into simulator assignments (route anchored
/// at the assignment's start point).
std::vector<sim::DispatchAssignment> response_to_assignments(
    const api::FrameResponse& response);

/// A ServeFrameFn that round-trips every frame through the full wire
/// codec — encode to ndjson event lines, decode each, match via
/// `session`, encode the response, decode it back — exercising exactly
/// the bytes a remote client would exchange. Aborts (O2O_EXPECTS) on any
/// codec error: a lossy codec must never look like a matching bug.
ServeFrameFn codec_round_trip_server(DispatchSession& session);

struct ReplayResult {
  sim::SimulationReport report;
  std::uint64_t frames_served = 0;  ///< frames routed through serve_fn
};

/// Replays `trace` against `serve_fn` under `config` (simulation section
/// + dispatcher knobs). `name` labels the report like a dispatcher name.
ReplayResult replay_day(const trace::Trace& trace, std::vector<trace::Taxi> fleet,
                        const geo::DistanceOracle& oracle, const DispatchConfig& config,
                        const ServeFrameFn& serve_fn, std::string_view name);

}  // namespace o2o::service
