// Wire codecs for the o2o::api frame contract: one JSON object per line
// (ndjson). Every line carries the API major version in "v"; decoding
// rejects lines from a different major version with a typed error.
//
// Doubles are emitted with %.17g, which round-trips IEEE-754 binary64
// exactly through strtod — the byte stream is deterministic for a given
// frame and decodes to bit-identical values, which is what lets the
// streamed replay reproduce the batch simulator bit for bit.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "service/api.h"

namespace o2o::service {

/// What went wrong decoding a line (empty message means success).
struct CodecError {
  std::string message;

  explicit operator bool() const noexcept { return !message.empty(); }
};

/// One event -> one JSON line (no trailing newline).
std::string encode_event(const api::RideEvent& event);

/// One complete frame -> its event lines: every order, every driver,
/// then the end_frame barrier. Concatenating these (newline-separated)
/// is the canonical ndjson encoding of the frame.
std::vector<std::string> encode_frame_events(const api::FrameRequest& request);

/// One response -> one JSON line (no trailing newline).
std::string encode_response(const api::FrameResponse& response);

/// Parses one event line. Returns nullopt and fills `error` on malformed
/// JSON, unknown event kind, missing fields, or a major-version mismatch.
std::optional<api::RideEvent> decode_event(std::string_view line, CodecError* error = nullptr);

/// Parses one frame_response line (same error contract as decode_event).
std::optional<api::FrameResponse> decode_response(std::string_view line,
                                                  CodecError* error = nullptr);

}  // namespace o2o::service
