// StreamingService: turns the batch matcher into a continuous stream.
//
// Producers (any number of threads) push api::RideEvents into the
// lock-free ingestion ring; the matcher thread drains it, accumulates
// the open frame, and on the kEndFrame barrier snapshots
// deterministically — orders sorted by (timestamp, order_id), drivers by
// driver_id, via DispatchSession — so the streamed output is
// bit-identical to the equivalent batch run no matter how producer
// threads interleaved.
//
// Pipelining: events of frame t+1 may be pushed while frame t is still
// matching. ServiceOptions::pipeline_depth bounds how many *complete*
// frames may sit in the ring ahead of the matcher; submitting a barrier
// beyond that spins (with counted backpressure) until the matcher
// catches up, which keeps worst-case response latency bounded.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <string_view>
#include <vector>

#include "core/dispatch_config.h"
#include "geo/distance_oracle.h"
#include "service/api.h"
#include "service/ingest.h"
#include "service/session.h"

namespace o2o::service {

class StreamingService {
 public:
  StreamingService(std::string_view kind, DispatchConfig config,
                   const geo::DistanceOracle& oracle);

  const DispatchSession& session() const noexcept { return session_; }

  /// Producer side, any thread. submit() spins until the ring (and, for
  /// barriers, the pipeline window) accepts the event; try_submit()
  /// returns false instead of spinning on a full ring (it still honors
  /// the pipeline window for barriers).
  void submit(const api::RideEvent& event);
  bool try_submit(const api::RideEvent& event);

  /// Producer side: no further events will be submitted. Wakes a matcher
  /// blocked in next_response().
  void close();

  /// Matcher side, one thread. Blocks until a complete frame is
  /// available, matches it, and returns the response; returns nullopt
  /// once the stream is closed and fully drained.
  std::optional<api::FrameResponse> next_response();

 private:
  bool push_with_backpressure(const api::RideEvent& event, bool blocking);

  DispatchSession session_;
  IngestQueue<api::RideEvent> queue_;
  std::atomic<std::size_t> frames_in_flight_{0};
  std::atomic<bool> closed_{false};
  std::size_t pipeline_depth_;

  // Matcher-thread frame accumulation.
  std::vector<api::Order> open_orders_;
  std::vector<api::Driver> open_drivers_;
};

}  // namespace o2o::service
