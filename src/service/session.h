// DispatchSession: the service-side matcher state that persists across
// frames. It owns the dispatcher instance (whose warm-start deferred-
// acceptance state carries between calls), the cross-frame GroupCache,
// and the per-frame conversion buffers between the o2o::api contract
// and the internal dispatch types. One session == one logical stream;
// feeding it the same FrameRequest sequence always produces the same
// FrameResponse sequence, bit for bit.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/dispatch_config.h"
#include "geo/distance_oracle.h"
#include "index/spatial_grid.h"
#include "packing/group_enum.h"
#include "service/api.h"
#include "sim/dispatcher.h"
#include "trace/fleet.h"
#include "trace/request.h"

namespace o2o::service {

class DispatchSession {
 public:
  /// `kind` names the dispatcher ("nstd-p", "nstd-t", "std-p", "std-t");
  /// the config is validated by the factory (O2O_EXPECTS on errors).
  DispatchSession(std::string_view kind, DispatchConfig config,
                  const geo::DistanceOracle& oracle);

  const DispatchConfig& config() const noexcept { return config_; }
  const std::string& dispatcher_name() const noexcept { return dispatcher_name_; }

  /// Checks the api contract on a frame that crossed a trust boundary:
  /// duplicate order ids or duplicate driver ids fail it. Returns false
  /// and sets `error` (when non-null) on the first violation.
  static bool validate(const api::FrameRequest& request, std::string* error = nullptr);

  /// Matches one frame. Orders and drivers are (re)sorted to the
  /// canonical barrier order — orders by (timestamp, order_id), drivers
  /// by driver_id — so producers need not pre-sort. Frames that fail
  /// validate() come back as nullopt with `error` set (when non-null):
  /// remote input must never abort the process.
  std::optional<api::FrameResponse> dispatch(const api::FrameRequest& request,
                                             std::string* error = nullptr);

  /// Drops all cross-frame state (GroupCache, dispatcher warm starts) by
  /// rebuilding the dispatcher — the next frame runs cold.
  void reset();

 private:
  DispatchConfig config_;
  const geo::DistanceOracle& oracle_;
  std::string kind_;
  std::string dispatcher_name_;
  std::unique_ptr<sim::Dispatcher> dispatcher_;
  std::unique_ptr<packing::GroupCache> group_cache_;

  // Frame conversion buffers (reused across calls).
  std::vector<trace::Request> pending_;
  std::vector<trace::Taxi> idle_;
  std::vector<sim::BusyTaxiView> busy_;
  std::vector<geo::Point> frame_points_;
};

}  // namespace o2o::service
