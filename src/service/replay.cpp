#include "service/replay.h"

#include <utility>

#include "service/codec.h"
#include "util/contracts.h"

namespace o2o::service {

api::FrameRequest snapshot_to_request(const sim::DispatchContext& context,
                                      std::uint64_t frame) {
  api::FrameRequest request;
  request.frame = frame;
  request.timestamp = context.now_seconds;

  request.orders.reserve(context.pending.size());
  for (const trace::Request& pending : context.pending) {
    api::Order order;
    order.order_id = pending.id;
    order.timestamp = pending.time_seconds;
    order.start = pending.pickup;
    order.finish = pending.dropoff;
    order.seats = pending.seats;
    request.orders.push_back(order);
  }

  request.drivers.reserve(context.idle_taxis.size() + context.busy_taxis.size());
  for (const trace::Taxi& taxi : context.idle_taxis) {
    api::Driver driver;
    driver.driver_id = taxi.id;
    driver.location = taxi.location;
    driver.seats = taxi.seats;
    request.drivers.push_back(std::move(driver));
  }
  for (const sim::BusyTaxiView& view : context.busy_taxis) {
    api::Driver driver;
    driver.driver_id = view.taxi.id;
    driver.location = view.taxi.location;
    driver.seats = view.taxi.seats;
    driver.seats_in_use = view.seats_in_use;
    driver.onboard = view.onboard;
    driver.route.reserve(view.remaining_stops.size());
    for (const routing::Stop& stop : view.remaining_stops) {
      driver.route.push_back(api::DriverStop{stop.request, stop.is_pickup, stop.point});
    }
    driver.route_seats = view.route_request_seats;
    request.drivers.push_back(std::move(driver));
  }
  return request;
}

std::vector<sim::DispatchAssignment> response_to_assignments(
    const api::FrameResponse& response) {
  std::vector<sim::DispatchAssignment> assignments;
  assignments.reserve(response.assignments.size());
  for (const api::Assignment& assignment : response.assignments) {
    sim::DispatchAssignment converted;
    converted.taxi = assignment.driver_id;
    converted.requests = assignment.order_ids;
    converted.route.start = assignment.start;
    converted.route.stops.reserve(assignment.route.size());
    for (const api::DriverStop& stop : assignment.route) {
      converted.route.stops.push_back(
          routing::Stop{stop.order_id, stop.is_pickup, stop.point});
    }
    assignments.push_back(std::move(converted));
  }
  return assignments;
}

ServeFrameFn codec_round_trip_server(DispatchSession& session) {
  return [&session](const api::FrameRequest& request) {
    api::FrameRequest decoded_request;
    bool saw_barrier = false;
    for (const std::string& line : encode_frame_events(request)) {
      CodecError error;
      const std::optional<api::RideEvent> event = decode_event(line, &error);
      O2O_EXPECTS(event.has_value());
      switch (event->kind) {
        case api::RideEvent::Kind::kOrder:
          decoded_request.orders.push_back(event->order);
          break;
        case api::RideEvent::Kind::kDriver:
          decoded_request.drivers.push_back(event->driver);
          break;
        case api::RideEvent::Kind::kEndFrame:
          decoded_request.frame = event->frame;
          decoded_request.timestamp = event->timestamp;
          saw_barrier = true;
          break;
      }
    }
    O2O_EXPECTS(saw_barrier);

    const std::optional<api::FrameResponse> response = session.dispatch(decoded_request);
    O2O_EXPECTS(response.has_value());  // simulator frames carry unique ids

    CodecError error;
    const std::optional<api::FrameResponse> decoded_response =
        decode_response(encode_response(*response), &error);
    O2O_EXPECTS(decoded_response.has_value());
    return *decoded_response;
  };
}

ReplayResult replay_day(const trace::Trace& trace, std::vector<trace::Taxi> fleet,
                        const geo::DistanceOracle& oracle, const DispatchConfig& config,
                        const ServeFrameFn& serve_fn, std::string_view name) {
  O2O_EXPECTS(config.validate().empty());
  sim::Simulator simulator(trace, std::move(fleet), oracle, config.simulation());
  ReplayResult result;
  result.report = simulator.run_streamed(
      [&serve_fn, &result](const sim::DispatchContext& context, std::uint64_t frame) {
        ++result.frames_served;
        return response_to_assignments(
            serve_fn(snapshot_to_request(context, frame)));
      },
      name);
  return result;
}

}  // namespace o2o::service
