#include "service/session.h"

#include <algorithm>
#include <optional>
#include <span>
#include <utility>

#include "obs/obs.h"
#include "util/contracts.h"

namespace o2o::service {

DispatchSession::DispatchSession(std::string_view kind, DispatchConfig config,
                                 const geo::DistanceOracle& oracle)
    : config_(std::move(config)),
      oracle_(oracle),
      kind_(kind),
      dispatcher_(make_dispatcher(kind_, config_)),
      group_cache_(std::make_unique<packing::GroupCache>()) {
  O2O_EXPECTS(dispatcher_ != nullptr);
  dispatcher_name_ = dispatcher_->name();
}

void DispatchSession::reset() {
  dispatcher_ = make_dispatcher(kind_, config_);
  group_cache_ = std::make_unique<packing::GroupCache>();
}

bool DispatchSession::validate(const api::FrameRequest& request, std::string* error) {
  // Sort id copies rather than scanning adjacency of the barrier order:
  // orders sort by (timestamp, id), so equal ids with distinct
  // timestamps would not be adjacent there.
  std::vector<std::int32_t> ids;
  ids.reserve(std::max(request.orders.size(), request.drivers.size()));
  for (const api::Order& order : request.orders) ids.push_back(order.order_id);
  std::sort(ids.begin(), ids.end());
  auto dup = std::adjacent_find(ids.begin(), ids.end());
  if (dup != ids.end()) {
    if (error != nullptr) {
      *error = "duplicate order_id " + std::to_string(*dup) + " in frame";
    }
    return false;
  }
  ids.clear();
  for (const api::Driver& driver : request.drivers) ids.push_back(driver.driver_id);
  std::sort(ids.begin(), ids.end());
  dup = std::adjacent_find(ids.begin(), ids.end());
  if (dup != ids.end()) {
    if (error != nullptr) {
      *error = "duplicate driver_id " + std::to_string(*dup) + " in frame";
    }
    return false;
  }
  return true;
}

std::optional<api::FrameResponse> DispatchSession::dispatch(
    const api::FrameRequest& request, std::string* error) {
  if (!validate(request, error)) return std::nullopt;

  obs::StageTimer timer(obs::Stage::kServiceFrame);

  // Canonical barrier order. Trace request ids are assigned in time
  // order and fleet ids ascending, so this reproduces exactly the span
  // order the batch simulator's snapshotter builds (rebuilt-grid mode) —
  // the keystone of the streamed-equals-batch bit-identity argument.
  pending_.clear();
  pending_.reserve(request.orders.size());
  for (const api::Order& order : request.orders) {
    trace::Request converted;
    converted.id = order.order_id;
    converted.time_seconds = order.timestamp;
    converted.pickup = order.start;
    converted.dropoff = order.finish;
    converted.seats = order.seats;
    pending_.push_back(converted);
  }
  std::sort(pending_.begin(), pending_.end(),
            [](const trace::Request& a, const trace::Request& b) {
              return a.time_seconds != b.time_seconds ? a.time_seconds < b.time_seconds
                                                      : a.id < b.id;
            });
  std::vector<const api::Driver*> drivers;
  drivers.reserve(request.drivers.size());
  for (const api::Driver& driver : request.drivers) drivers.push_back(&driver);
  std::sort(drivers.begin(), drivers.end(),
            [](const api::Driver* a, const api::Driver* b) {
              return a->driver_id < b->driver_id;
            });
  idle_.clear();
  busy_.clear();
  for (const api::Driver* driver : drivers) {
    if (driver->idle()) {
      trace::Taxi taxi;
      taxi.id = driver->driver_id;
      taxi.location = driver->location;
      taxi.seats = driver->seats;
      idle_.push_back(taxi);
    } else {
      sim::BusyTaxiView view;
      view.taxi.id = driver->driver_id;
      view.taxi.location = driver->location;
      view.taxi.seats = driver->seats;
      view.seats_in_use = driver->seats_in_use;
      view.onboard = driver->onboard;
      view.remaining_stops.reserve(driver->route.size());
      for (const api::DriverStop& stop : driver->route) {
        view.remaining_stops.push_back(
            routing::Stop{stop.order_id, stop.is_pickup, stop.point});
      }
      view.route_request_seats = driver->route_seats;
      busy_.push_back(std::move(view));
    }
  }

  // Fresh spatial index per frame (the session is stateless at the
  // geometry level; cross-frame acceleration lives in the GroupCache and
  // the dispatcher's warm-start state, both result-invariant).
  std::optional<index::SpatialGrid> idle_grid;
  if (!idle_.empty()) {
    idle_grid.emplace(std::span<const trace::Taxi>(idle_),
                      config_.simulation().idle_grid_cell_km);
  }

  frame_points_.clear();
  frame_points_.reserve(idle_.size());
  for (const trace::Taxi& taxi : idle_) frame_points_.push_back(taxi.location);
  oracle_.prepare_frame(frame_points_);

  sim::DispatchContext context;
  context.now_seconds = request.timestamp;
  context.idle_taxis = idle_;
  context.busy_taxis = busy_;
  context.pending = pending_;
  context.oracle = &oracle_;
  context.idle_grid = idle_grid ? &*idle_grid : nullptr;
  context.trace = obs::active_sink();
  context.group_cache = group_cache_.get();

  api::FrameResponse response;
  response.frame = request.frame;
  response.timestamp = request.timestamp;
  const double speed_km_per_second = config_.simulation().speed_kmh / 3600.0;
  for (const sim::DispatchAssignment& assignment : dispatcher_->dispatch(context)) {
    api::Assignment converted;
    converted.driver_id = assignment.taxi;
    converted.order_ids = assignment.requests;
    O2O_EXPECTS(assignment.route.start.has_value());
    converted.start = *assignment.route.start;
    converted.route.reserve(assignment.route.stops.size());
    for (const routing::Stop& stop : assignment.route.stops) {
      converted.route.push_back(api::DriverStop{stop.request, stop.is_pickup, stop.point});
    }
    if (!assignment.route.stops.empty()) {
      converted.pick_up_eta =
          oracle_.distance(converted.start, assignment.route.stops.front().point) /
          speed_km_per_second;
    }
    response.assignments.push_back(std::move(converted));
  }
  return response;
}

}  // namespace o2o::service
