// Lock-free bounded MPSC/MPMC ingestion ring (Vyukov's bounded queue):
// a fixed power-of-two slot array where each slot carries a sequence
// stamp. A producer claims a slot by CAS-advancing the enqueue cursor,
// writes the payload, then publishes by storing `pos + 1` into the stamp
// with release order; the consumer observes the stamp with acquire order
// before reading, so payloads are fully ordered without any lock. The
// service uses it multi-producer single-consumer (many event sources,
// one matcher thread), but the algorithm is MPMC-safe and the TSan test
// hammers it from several producers.
//
// try_push/try_pop never block and never spuriously fail under
// contention: a full (resp. empty) verdict is accurate at the moment the
// cursor was read.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>

#include "util/contracts.h"

namespace o2o::service {

template <typename T>
class IngestQueue {
 public:
  /// `capacity` must be a power of two >= 2 (DispatchConfig validates
  /// the service knob; this enforces the invariant for direct users).
  explicit IngestQueue(std::size_t capacity)
      : mask_(capacity - 1), slots_(std::make_unique<Slot[]>(capacity)) {
    O2O_EXPECTS(capacity >= 2 && (capacity & (capacity - 1)) == 0);
    for (std::size_t i = 0; i < capacity; ++i) {
      slots_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  IngestQueue(const IngestQueue&) = delete;
  IngestQueue& operator=(const IngestQueue&) = delete;

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Snapshot of the current occupancy; exact only in quiescence (the
  /// cursors move independently), good enough for gauges.
  std::size_t approx_depth() const noexcept {
    const std::size_t tail = enqueue_pos_.load(std::memory_order_relaxed);
    const std::size_t head = dequeue_pos_.load(std::memory_order_relaxed);
    return tail >= head ? tail - head : 0;
  }

  /// False iff the ring is full.
  bool try_push(T value) {
    std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    while (true) {
      Slot& slot = slots_[pos & mask_];
      const std::size_t sequence = slot.sequence.load(std::memory_order_acquire);
      const std::ptrdiff_t delta =
          static_cast<std::ptrdiff_t>(sequence) - static_cast<std::ptrdiff_t>(pos);
      if (delta == 0) {
        // Slot free for this lap: claim the position.
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          slot.value = std::move(value);
          slot.sequence.store(pos + 1, std::memory_order_release);
          return true;
        }
        // Lost the race; `pos` was reloaded by the CAS.
      } else if (delta < 0) {
        return false;  // the consumer hasn't freed this lap's slot: full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  /// False iff the ring is empty.
  bool try_pop(T& out) {
    std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    while (true) {
      Slot& slot = slots_[pos & mask_];
      const std::size_t sequence = slot.sequence.load(std::memory_order_acquire);
      const std::ptrdiff_t delta = static_cast<std::ptrdiff_t>(sequence) -
                                   static_cast<std::ptrdiff_t>(pos + 1);
      if (delta == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          out = std::move(slot.value);
          // Free the slot for the producers' next lap.
          slot.sequence.store(pos + mask_ + 1, std::memory_order_release);
          return true;
        }
      } else if (delta < 0) {
        return false;  // no published payload at this position yet: empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

 private:
  struct Slot {
    std::atomic<std::size_t> sequence{0};
    T value{};
  };

  const std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  alignas(64) std::atomic<std::size_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::size_t> dequeue_pos_{0};
};

}  // namespace o2o::service
