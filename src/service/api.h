// The frozen public frame contract of the streaming dispatch service.
//
// These are the only types that cross the service boundary: plain
// structs, no methods beyond comparison, every field either a fixed-size
// scalar or a vector of such. The schema mirrors the per-timestep
// `dispatch(dispatch_observ)` agent API served by the related dispatch
// platforms (SNIPPETS.md Snippets 1–2): order/driver ids, locations,
// timestamps, ETA and reward fields — adapted to this repo's coordinate
// frame (km-scaled x/y instead of lng/lat) and to ride sharing (an
// assignment may carry several orders and a multi-stop route).
//
// Versioning: kApiVersionMajor is bumped on any breaking change to these
// structs or their wire encoding (service/codec.h); the codec rejects
// events whose "v" field has a different major version. Minor bumps are
// additive (new optional fields) and decode fine.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "geo/point.h"

namespace o2o::api {

inline constexpr int kApiVersionMajor = 1;
inline constexpr int kApiVersionMinor = 0;

using OrderId = std::int32_t;
using DriverId = std::int32_t;

/// One open passenger order (a pending request in paper terms).
struct Order {
  OrderId order_id = -1;
  double timestamp = 0.0;    ///< creation time, seconds from stream start
  geo::Point start;          ///< pick-up location
  geo::Point finish;         ///< drop-off location
  int seats = 1;             ///< passengers travelling together
  /// Platform-defined reward for serving this order (fare units). Purely
  /// informational to the matcher; 0 when the producer doesn't price.
  double reward_units = 0.0;

  friend bool operator==(const Order&, const Order&) = default;
};

/// One stop of a driver's committed route (mirror of routing::Stop).
struct DriverStop {
  OrderId order_id = -1;
  bool is_pickup = true;
  geo::Point point;

  friend bool operator==(const DriverStop&, const DriverStop&) = default;
};

/// One driver's state at the frame barrier. An idle driver has an empty
/// route; a busy driver reports its remaining route, the orders already
/// onboard, and the seat demand of every order on the route (which the
/// matcher needs for en-route capacity checks — those orders are no
/// longer in the frame's open-order list).
struct Driver {
  DriverId driver_id = -1;
  geo::Point location;
  int seats = 4;
  int seats_in_use = 0;
  std::vector<OrderId> onboard;
  std::vector<DriverStop> route;
  std::vector<std::pair<OrderId, int>> route_seats;

  bool idle() const noexcept { return route.empty(); }

  friend bool operator==(const Driver&, const Driver&) = default;
};

/// One complete frame observation: everything the matcher sees at the
/// barrier. The service is stateless per frame at the contract level
/// (producers resend the full open-order and driver picture each frame,
/// like the agent API); acceleration state cached inside a session never
/// changes results.
struct FrameRequest {
  std::uint64_t frame = 0;
  double timestamp = 0.0;
  std::vector<Order> orders;    ///< sorted by (timestamp, order_id)
  std::vector<Driver> drivers;  ///< sorted by driver_id

  friend bool operator==(const FrameRequest&, const FrameRequest&) = default;
};

/// One dispatch decision: `driver_id` serves the newly assigned
/// `order_ids` along `route` (which re-includes everything the driver
/// already committed to, per the simulator's assignment contract).
struct Assignment {
  DriverId driver_id = -1;
  std::vector<OrderId> order_ids;
  geo::Point start;               ///< route anchor: the driver's position
  std::vector<DriverStop> route;
  /// Seconds until the driver reaches the first stop of the new route at
  /// the configured cruise speed (the agent API's pick_up_eta field).
  double pick_up_eta = 0.0;

  friend bool operator==(const Assignment&, const Assignment&) = default;
};

/// The matcher's answer to one FrameRequest.
struct FrameResponse {
  std::uint64_t frame = 0;
  double timestamp = 0.0;
  std::vector<Assignment> assignments;

  friend bool operator==(const FrameResponse&, const FrameResponse&) = default;
};

/// One unit of streamed input: orders and driver states arrive as
/// individual events (possibly from several producer threads); an
/// kEndFrame event is the barrier that closes frame `frame` at time
/// `timestamp` and hands the accumulated picture to the matcher.
struct RideEvent {
  enum class Kind : std::uint8_t { kOrder, kDriver, kEndFrame };

  Kind kind = Kind::kEndFrame;
  Order order;        ///< valid when kind == kOrder
  Driver driver;      ///< valid when kind == kDriver
  std::uint64_t frame = 0;   ///< valid when kind == kEndFrame
  double timestamp = 0.0;    ///< valid when kind == kEndFrame

  static RideEvent make_order(Order order) {
    RideEvent event;
    event.kind = Kind::kOrder;
    event.order = std::move(order);
    return event;
  }
  static RideEvent make_driver(Driver driver) {
    RideEvent event;
    event.kind = Kind::kDriver;
    event.driver = std::move(driver);
    return event;
  }
  static RideEvent make_end_frame(std::uint64_t frame, double timestamp) {
    RideEvent event;
    event.kind = Kind::kEndFrame;
    event.frame = frame;
    event.timestamp = timestamp;
    return event;
  }

  friend bool operator==(const RideEvent&, const RideEvent&) = default;
};

}  // namespace o2o::api
