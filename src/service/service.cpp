#include "service/service.h"

#include <string>
#include <thread>
#include <utility>

#include "obs/obs.h"

namespace o2o::service {

StreamingService::StreamingService(std::string_view kind, DispatchConfig config,
                                   const geo::DistanceOracle& oracle)
    : session_(kind, config, oracle),
      queue_(config.service().ingest_capacity),
      pipeline_depth_(config.service().pipeline_depth) {}

bool StreamingService::push_with_backpressure(const api::RideEvent& event,
                                              bool blocking) {
  // A barrier closes a frame: hold it back while pipeline_depth complete
  // frames already sit in the ring unmatched, so producers can't run
  // arbitrarily far ahead of the matcher. The slot is reserved with
  // fetch_add *before* the push (undone on overshoot) so concurrent
  // producers can never jointly exceed the window.
  const bool is_barrier = event.kind == api::RideEvent::Kind::kEndFrame;
  if (is_barrier) {
    for (;;) {
      const std::size_t in_flight =
          frames_in_flight_.fetch_add(1, std::memory_order_acq_rel);
      if (in_flight < pipeline_depth_) break;
      frames_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      if (!blocking) return false;
      obs::add(obs::Counter::kIngestBackpressure);
      std::this_thread::yield();
    }
  }
  while (!queue_.try_push(event)) {
    if (!blocking) {
      if (is_barrier) frames_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      return false;
    }
    obs::add(obs::Counter::kIngestBackpressure);
    std::this_thread::yield();
  }
  return true;
}

void StreamingService::submit(const api::RideEvent& event) {
  push_with_backpressure(event, /*blocking=*/true);
}

bool StreamingService::try_submit(const api::RideEvent& event) {
  return push_with_backpressure(event, /*blocking=*/false);
}

void StreamingService::close() { closed_.store(true, std::memory_order_release); }

std::optional<api::FrameResponse> StreamingService::next_response() {
  obs::TraceSink* sink = obs::active_sink();
  // Ingest metrics are buffered locally and reported only after
  // begin_frame: the sink zeroes every thread's cells at frame start, so
  // anything recorded before the barrier would be wiped. The buffers
  // accumulate across rejected frames so no ingest work goes uncounted.
  std::uint64_t ingest_ns = 0;
  std::uint64_t events_drained = 0;
  std::uint64_t frames_rejected = 0;
  std::size_t depth_peak = queue_.approx_depth();
  for (;;) {
    std::optional<api::FrameRequest> request;
    {
      obs::ScopedTimer timer(ingest_ns);
      api::RideEvent event;
      while (!request) {
        if (!queue_.try_pop(event)) {
          if (!closed_.load(std::memory_order_acquire)) {
            // Empty ring, stream still open: producers are just slower
            // than the matcher.
            std::this_thread::yield();
            continue;
          }
          // Closed. Events pushed between the failed pop and the close
          // flag must still be drained — only an empty ring ends the
          // stream (a partial frame with no barrier is dropped: no
          // barrier, no snapshot).
          if (!queue_.try_pop(event)) return std::nullopt;
        }
        ++events_drained;
        switch (event.kind) {
          case api::RideEvent::Kind::kOrder:
            open_orders_.push_back(std::move(event.order));
            break;
          case api::RideEvent::Kind::kDriver:
            open_drivers_.push_back(std::move(event.driver));
            break;
          case api::RideEvent::Kind::kEndFrame:
            request.emplace();
            request->frame = event.frame;
            request->timestamp = event.timestamp;
            request->orders = std::move(open_orders_);
            request->drivers = std::move(open_drivers_);
            open_orders_.clear();
            open_drivers_.clear();
            break;
        }
      }
    }

    // The frame left the ring: producers may push the next barrier.
    frames_in_flight_.fetch_sub(1, std::memory_order_acq_rel);

    // Frames that violate the api contract (duplicate order/driver ids)
    // cross a trust boundary in --stdio/--tcp mode: drop them here,
    // before the trace sink opens the frame, and keep serving.
    std::string reject_reason;
    if (!DispatchSession::validate(*request, &reject_reason)) {
      ++frames_rejected;
      continue;
    }

    if (sink != nullptr) sink->begin_frame(request->frame, request->timestamp);
    obs::add_stage_ns(obs::Stage::kIngest, ingest_ns);
    obs::add(obs::Counter::kEventsIngested, events_drained);
    if (frames_rejected != 0) obs::add(obs::Counter::kFramesRejected, frames_rejected);
    obs::gauge_max(obs::Gauge::kQueueDepthPeak, depth_peak);
    std::optional<api::FrameResponse> response = session_.dispatch(*request);
    obs::add(obs::Counter::kFramesStreamed);
    if (sink != nullptr) {
      std::uint64_t idle = 0;
      for (const api::Driver& driver : request->drivers) idle += driver.idle() ? 1 : 0;
      sink->set_frame_context(idle, request->drivers.size() - idle,
                              request->orders.size());
      std::uint64_t assigned = 0;
      for (const api::Assignment& a : response->assignments) {
        assigned += a.order_ids.size();
      }
      sink->add_assignments(assigned);
      sink->end_frame();
    }
    return response;
  }
}

}  // namespace o2o::service
