#include "index/union_find.h"

#include <utility>

namespace o2o::index {

UnionFind::UnionFind(std::size_t size)
    : parent_(size), size_(size, 1), set_count_(size) {
  for (std::size_t i = 0; i < size; ++i) parent_[i] = i;
}

std::size_t UnionFind::find(std::size_t x) noexcept {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::unite(std::size_t a, std::size_t b) noexcept {
  std::size_t ra = find(a);
  std::size_t rb = find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --set_count_;
  return true;
}

std::size_t UnionFind::set_size(std::size_t x) noexcept {
  return size_[find(x)];
}

}  // namespace o2o::index
