// Spatio-temporal index: a spatial grid per time slot over a sliding
// horizon. This is the substrate behind the RAII sharing baseline
// (emulating the spatio-temporal indices of Ma et al.): a taxi is
// registered under the time slots at which its current route will place
// it near each grid cell, so a request probes only the taxis that can
// plausibly reach it soon.
#pragma once

#include <cstdint>
#include <vector>

#include "index/spatial_grid.h"
#include "util/contracts.h"

namespace o2o::index {

class SpatioTemporalIndex {
 public:
  /// `slot_seconds` is the temporal resolution; `horizon_slots` bounds how
  /// far into the future taxis project their positions.
  SpatioTemporalIndex(geo::Rect bounds, double cell_km, double slot_seconds,
                      std::size_t horizon_slots);

  /// Registers (or re-registers) taxi `id` as being at `position` at
  /// absolute time `at_seconds`. Entries older than the horizon are
  /// dropped lazily when the window advances.
  void insert(std::int32_t id, geo::Point position, double at_seconds);

  /// Removes every registration of `id`.
  void remove(std::int32_t id);

  /// Advances the window so slots before `now_seconds` are recycled.
  void advance(double now_seconds);

  /// Taxis registered within `radius_km` of `p` over time slots
  /// [from_seconds, to_seconds]. Duplicates removed.
  std::vector<std::int32_t> query(const geo::Point& p, double radius_km,
                                  double from_seconds, double to_seconds) const;

  double slot_seconds() const noexcept { return slot_seconds_; }
  std::size_t horizon_slots() const noexcept { return slots_.size(); }

 private:
  geo::Rect bounds_;
  double cell_km_;
  double slot_seconds_;
  std::int64_t window_start_slot_ = 0;
  std::vector<SpatialGrid> slots_;  // ring buffer keyed by slot index

  std::int64_t slot_of(double at_seconds) const noexcept;
  std::size_t ring_index(std::int64_t slot) const noexcept;
};

}  // namespace o2o::index
