// Uniform spatial grid over integer-keyed moving objects (taxis). Backs
// the Greedy baseline's nearest-idle-taxi query, preference-list capping,
// and the RAII baseline's spatio-temporal retrieval.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "geo/point.h"
#include "trace/fleet.h"

namespace o2o::index {

class SpatialGrid {
 public:
  /// `bounds` is advisory (objects outside are clamped to edge cells).
  SpatialGrid(geo::Rect bounds, double cell_km);

  /// Bulk-builds a grid over a taxi snapshot, keyed by **span index**
  /// (not `Taxi::id`), so `within_radius` results index straight back
  /// into the span. Bounds are the padded bounding box of the taxi
  /// locations; an empty or degenerate span gets a unit box.
  SpatialGrid(std::span<const trace::Taxi> taxis, double cell_km);

  /// Bulk-builds a grid over raw points, keyed by span index — the shape
  /// the share-group enumerator needs (one point per request pick-up).
  /// Same bounds policy as the taxi constructor.
  SpatialGrid(std::span<const geo::Point> points, double cell_km);

  /// Bulk-builds a grid keyed by caller-supplied ids (one per point) —
  /// the shape the persistent cross-frame indexes need, where entries
  /// are patched in and out by stable id rather than span position.
  SpatialGrid(std::span<const std::int32_t> ids, std::span<const geo::Point> points,
              double cell_km);

  /// Inserts or moves object `id` to `position`.
  void upsert(std::int32_t id, geo::Point position);

  /// Delta-patch API: inserts a *new* object (EXPECTS absent). Prefer
  /// these over upsert in incremental-frame code so typos in the delta
  /// computation trip contracts instead of silently self-healing.
  void insert(std::int32_t id, geo::Point position);

  /// Delta-patch API: relocates an *existing* object (EXPECTS present).
  void move(std::int32_t id, geo::Point position);

  /// Removes `id`; no-op when absent.
  void remove(std::int32_t id);

  /// Mutations (insert/move/remove/upsert) applied since the last
  /// compaction. Bulk construction counts as a compaction.
  std::size_t mutations_since_compact() const noexcept { return mutations_; }

  /// Recomputes bounds from the live objects and re-bins every entry.
  /// Queries stay exact either way (membership is a pure distance
  /// predicate and out-of-bounds objects clamp to edge cells); this
  /// bounds refresh only restores query *speed* after drift. Runs
  /// automatically once the mutation count passes a size-scaled
  /// threshold.
  void compact();

  bool contains(std::int32_t id) const noexcept;
  std::size_t size() const noexcept { return positions_.size(); }
  std::optional<geo::Point> position(std::int32_t id) const;

  /// Nearest object to `p` accepted by `accept` (straight-line metric,
  /// ring search). Returns nullopt when no accepted object exists.
  std::optional<std::int32_t> nearest(
      const geo::Point& p,
      const std::function<bool(std::int32_t)>& accept = nullptr) const;

  /// Up to `k` nearest accepted objects, sorted by distance.
  std::vector<std::int32_t> k_nearest(
      const geo::Point& p, std::size_t k,
      const std::function<bool(std::int32_t)>& accept = nullptr) const;

  /// All objects within `radius_km` of `p` (unsorted).
  std::vector<std::int32_t> within_radius(const geo::Point& p, double radius_km) const;

  /// within_radius appending into a caller-owned buffer (not cleared) —
  /// the share-group enumerator issues one query per request per frame
  /// and reuses a single buffer across them.
  void within_radius_into(const geo::Point& p, double radius_km,
                          std::vector<std::int32_t>& out) const;

 private:
  /// Cells carry the position next to the id so distance checks in the
  /// query loops are straight array reads (no hash lookup per candidate).
  struct CellEntry {
    std::int32_t id;
    geo::Point position;
  };

  geo::Rect bounds_;
  double cell_km_;
  int cols_;
  int rows_;
  std::vector<std::vector<CellEntry>> cells_;
  std::unordered_map<std::int32_t, geo::Point> positions_;
  std::size_t mutations_ = 0;

  std::size_t cell_index(const geo::Point& p) const noexcept;
  void erase_from_cell(std::int32_t id, std::size_t cell);
  /// Keeps cell buckets sorted by id so patched and freshly built grids
  /// emit candidates in the same order (bulk ctors append ascending ids).
  void insert_into_cell(std::size_t cell, std::int32_t id, geo::Point position);
  void note_mutation();
};

}  // namespace o2o::index
