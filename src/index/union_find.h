// Disjoint-set union (union by size + path halving), the component
// extractor behind the sharded stable-dispatch engine: the sparse
// preference candidate graph is bipartite and usually shatters into many
// small components, each of which can be dispatched independently.
#pragma once

#include <cstddef>
#include <vector>

namespace o2o::index {

/// Classic DSU over [0, size). Deterministic: the representative of a set
/// depends only on the sequence of unite() calls, never on timing.
class UnionFind {
 public:
  explicit UnionFind(std::size_t size);

  std::size_t size() const noexcept { return parent_.size(); }

  /// Representative of x's set (with path halving; amortized ~O(α)).
  std::size_t find(std::size_t x) noexcept;

  /// Merges the sets of a and b; returns true when they were distinct.
  bool unite(std::size_t a, std::size_t b) noexcept;

  /// Number of elements in x's set.
  std::size_t set_size(std::size_t x) noexcept;

  /// Number of disjoint sets currently alive.
  std::size_t set_count() const noexcept { return set_count_; }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
  std::size_t set_count_ = 0;
};

}  // namespace o2o::index
