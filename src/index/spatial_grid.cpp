#include "index/spatial_grid.h"

#include <algorithm>
#include <cmath>

#include "obs/obs.h"
#include "util/contracts.h"

namespace o2o::index {

SpatialGrid::SpatialGrid(geo::Rect bounds, double cell_km)
    : bounds_(bounds), cell_km_(cell_km) {
  O2O_EXPECTS(cell_km > 0.0);
  O2O_EXPECTS(bounds.width() > 0.0 && bounds.height() > 0.0);
  cols_ = std::max(1, static_cast<int>(std::ceil(bounds.width() / cell_km)));
  rows_ = std::max(1, static_cast<int>(std::ceil(bounds.height() / cell_km)));
  cells_.resize(static_cast<std::size_t>(cols_) * static_cast<std::size_t>(rows_));
}

namespace {

geo::Rect padded_point_bounds(std::span<const geo::Point> points, double pad_km) {
  if (points.empty()) return geo::Rect{{0.0, 0.0}, {1.0, 1.0}};
  geo::Rect box{points.front(), points.front()};
  for (const geo::Point& p : points) {
    box.lo.x = std::min(box.lo.x, p.x);
    box.lo.y = std::min(box.lo.y, p.y);
    box.hi.x = std::max(box.hi.x, p.x);
    box.hi.y = std::max(box.hi.y, p.y);
  }
  box.lo.x -= pad_km;
  box.lo.y -= pad_km;
  box.hi.x += pad_km;
  box.hi.y += pad_km;
  return box;
}

geo::Rect padded_taxi_bounds(std::span<const trace::Taxi> taxis, double pad_km) {
  std::vector<geo::Point> points;
  points.reserve(taxis.size());
  for (const trace::Taxi& taxi : taxis) points.push_back(taxi.location);
  return padded_point_bounds(points, pad_km);
}

}  // namespace

SpatialGrid::SpatialGrid(std::span<const trace::Taxi> taxis, double cell_km)
    : SpatialGrid(padded_taxi_bounds(taxis, cell_km), cell_km) {
  positions_.reserve(taxis.size());
  for (std::size_t i = 0; i < taxis.size(); ++i) {
    const auto key = static_cast<std::int32_t>(i);
    positions_.emplace(key, taxis[i].location);
    cells_[cell_index(taxis[i].location)].push_back(CellEntry{key, taxis[i].location});
  }
}

SpatialGrid::SpatialGrid(std::span<const geo::Point> points, double cell_km)
    : SpatialGrid(padded_point_bounds(points, cell_km), cell_km) {
  positions_.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto key = static_cast<std::int32_t>(i);
    positions_.emplace(key, points[i]);
    cells_[cell_index(points[i])].push_back(CellEntry{key, points[i]});
  }
}

SpatialGrid::SpatialGrid(std::span<const std::int32_t> ids,
                         std::span<const geo::Point> points, double cell_km)
    : SpatialGrid(padded_point_bounds(points, cell_km), cell_km) {
  O2O_EXPECTS(ids.size() == points.size());
  positions_.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    positions_.emplace(ids[i], points[i]);
    cells_[cell_index(points[i])].push_back(CellEntry{ids[i], points[i]});
  }
  // Caller-supplied ids carry no order guarantee; sort each bucket so
  // queries emit in the same id order as the patched grids.
  for (auto& bucket : cells_) {
    std::sort(bucket.begin(), bucket.end(),
              [](const CellEntry& a, const CellEntry& b) { return a.id < b.id; });
  }
}

std::size_t SpatialGrid::cell_index(const geo::Point& p) const noexcept {
  const int cx = std::clamp(static_cast<int>((p.x - bounds_.lo.x) / cell_km_), 0, cols_ - 1);
  const int cy = std::clamp(static_cast<int>((p.y - bounds_.lo.y) / cell_km_), 0, rows_ - 1);
  return static_cast<std::size_t>(cy) * static_cast<std::size_t>(cols_) +
         static_cast<std::size_t>(cx);
}

void SpatialGrid::erase_from_cell(std::int32_t id, std::size_t cell) {
  auto& bucket = cells_[cell];
  bucket.erase(std::remove_if(bucket.begin(), bucket.end(),
                              [id](const CellEntry& e) { return e.id == id; }),
               bucket.end());
}

void SpatialGrid::insert_into_cell(std::size_t cell, std::int32_t id,
                                   geo::Point position) {
  auto& bucket = cells_[cell];
  const auto it = std::lower_bound(
      bucket.begin(), bucket.end(), id,
      [](const CellEntry& e, std::int32_t key) { return e.id < key; });
  bucket.insert(it, CellEntry{id, position});
}

void SpatialGrid::note_mutation() {
  ++mutations_;
  obs::add(obs::Counter::kGridPatches);
  // Drifted objects clamp into edge cells, so after enough churn the
  // edge buckets fatten and queries slow down; a periodic re-bin keeps
  // the amortized patch cost O(1) while restoring fresh-build layout.
  if (mutations_ >= std::max<std::size_t>(256, 2 * positions_.size())) compact();
}

void SpatialGrid::upsert(std::int32_t id, geo::Point position) {
  const auto it = positions_.find(id);
  const std::size_t new_cell = cell_index(position);
  if (it != positions_.end()) {
    const std::size_t old_cell = cell_index(it->second);
    if (old_cell != new_cell) {
      erase_from_cell(id, old_cell);
      insert_into_cell(new_cell, id, position);
    } else {
      for (CellEntry& e : cells_[new_cell]) {
        if (e.id == id) {
          e.position = position;
          break;
        }
      }
    }
    it->second = position;
    note_mutation();
    return;
  }
  positions_.emplace(id, position);
  insert_into_cell(new_cell, id, position);
  note_mutation();
}

void SpatialGrid::insert(std::int32_t id, geo::Point position) {
  O2O_EXPECTS(!contains(id));
  upsert(id, position);
}

void SpatialGrid::move(std::int32_t id, geo::Point position) {
  O2O_EXPECTS(contains(id));
  upsert(id, position);
}

void SpatialGrid::remove(std::int32_t id) {
  const auto it = positions_.find(id);
  if (it == positions_.end()) return;
  erase_from_cell(id, cell_index(it->second));
  positions_.erase(it);
  note_mutation();
}

void SpatialGrid::compact() {
  std::vector<std::pair<std::int32_t, geo::Point>> live(positions_.begin(),
                                                        positions_.end());
  // Re-bin in ascending id order so buckets come out sorted, matching a
  // fresh bulk build over the same objects.
  std::sort(live.begin(), live.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<geo::Point> points;
  points.reserve(live.size());
  for (const auto& [id, p] : live) points.push_back(p);
  bounds_ = padded_point_bounds(points, cell_km_);
  cols_ = std::max(1, static_cast<int>(std::ceil(bounds_.width() / cell_km_)));
  rows_ = std::max(1, static_cast<int>(std::ceil(bounds_.height() / cell_km_)));
  cells_.assign(static_cast<std::size_t>(cols_) * static_cast<std::size_t>(rows_), {});
  for (const auto& [id, p] : live) {
    cells_[cell_index(p)].push_back(CellEntry{id, p});
  }
  mutations_ = 0;
  obs::add(obs::Counter::kGridCompactions);
}

bool SpatialGrid::contains(std::int32_t id) const noexcept {
  return positions_.find(id) != positions_.end();
}

std::optional<geo::Point> SpatialGrid::position(std::int32_t id) const {
  const auto it = positions_.find(id);
  if (it == positions_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::int32_t> SpatialGrid::nearest(
    const geo::Point& p, const std::function<bool(std::int32_t)>& accept) const {
  const auto best = k_nearest(p, 1, accept);
  if (best.empty()) return std::nullopt;
  return best.front();
}

std::vector<std::int32_t> SpatialGrid::k_nearest(
    const geo::Point& p, std::size_t k,
    const std::function<bool(std::int32_t)>& accept) const {
  std::vector<std::pair<double, std::int32_t>> found;  // (squared distance, id)
  if (k == 0 || positions_.empty()) return {};
  const int cx = std::clamp(static_cast<int>((p.x - bounds_.lo.x) / cell_km_), 0, cols_ - 1);
  const int cy = std::clamp(static_cast<int>((p.y - bounds_.lo.y) / cell_km_), 0, rows_ - 1);
  const int max_ring = std::max(cols_, rows_);
  for (int ring = 0; ring <= max_ring; ++ring) {
    // Once we hold k candidates, a further ring can only help if its
    // guaranteed minimum distance beats our current k-th best.
    if (found.size() >= k) {
      std::nth_element(found.begin(), found.begin() + static_cast<std::ptrdiff_t>(k - 1),
                       found.end());
      const double kth_sq = found[k - 1].first;
      const double safe = (static_cast<double>(ring) - 1.0) * cell_km_;
      if (safe > 0.0 && safe * safe >= kth_sq) break;
    }
    for (int dy = -ring; dy <= ring; ++dy) {
      for (int dx = -ring; dx <= ring; ++dx) {
        if (std::max(std::abs(dx), std::abs(dy)) != ring) continue;
        const int x = cx + dx;
        const int y = cy + dy;
        if (x < 0 || x >= cols_ || y < 0 || y >= rows_) continue;
        for (const CellEntry& e :
             cells_[static_cast<std::size_t>(y) * static_cast<std::size_t>(cols_) +
                    static_cast<std::size_t>(x)]) {
          if (accept && !accept(e.id)) continue;
          found.emplace_back(geo::squared_distance(p, e.position), e.id);
        }
      }
    }
  }
  std::sort(found.begin(), found.end());
  if (found.size() > k) found.resize(k);
  std::vector<std::int32_t> ids;
  ids.reserve(found.size());
  for (const auto& [d, id] : found) ids.push_back(id);
  return ids;
}

std::vector<std::int32_t> SpatialGrid::within_radius(const geo::Point& p,
                                                     double radius_km) const {
  std::vector<std::int32_t> ids;
  within_radius_into(p, radius_km, ids);
  return ids;
}

void SpatialGrid::within_radius_into(const geo::Point& p, double radius_km,
                                     std::vector<std::int32_t>& out) const {
  O2O_EXPECTS(radius_km >= 0.0);
  const double r_sq = radius_km * radius_km;
  const int lo_x = std::clamp(
      static_cast<int>((p.x - radius_km - bounds_.lo.x) / cell_km_), 0, cols_ - 1);
  const int hi_x = std::clamp(
      static_cast<int>((p.x + radius_km - bounds_.lo.x) / cell_km_), 0, cols_ - 1);
  const int lo_y = std::clamp(
      static_cast<int>((p.y - radius_km - bounds_.lo.y) / cell_km_), 0, rows_ - 1);
  const int hi_y = std::clamp(
      static_cast<int>((p.y + radius_km - bounds_.lo.y) / cell_km_), 0, rows_ - 1);
  for (int y = lo_y; y <= hi_y; ++y) {
    for (int x = lo_x; x <= hi_x; ++x) {
      for (const CellEntry& e :
           cells_[static_cast<std::size_t>(y) * static_cast<std::size_t>(cols_) +
                  static_cast<std::size_t>(x)]) {
        if (geo::squared_distance(p, e.position) <= r_sq) out.push_back(e.id);
      }
    }
  }
}

}  // namespace o2o::index
