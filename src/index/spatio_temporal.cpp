#include "index/spatio_temporal.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace o2o::index {

SpatioTemporalIndex::SpatioTemporalIndex(geo::Rect bounds, double cell_km,
                                         double slot_seconds, std::size_t horizon_slots)
    : bounds_(bounds), cell_km_(cell_km), slot_seconds_(slot_seconds) {
  O2O_EXPECTS(slot_seconds > 0.0);
  O2O_EXPECTS(horizon_slots > 0);
  slots_.reserve(horizon_slots);
  for (std::size_t i = 0; i < horizon_slots; ++i) slots_.emplace_back(bounds, cell_km);
}

std::int64_t SpatioTemporalIndex::slot_of(double at_seconds) const noexcept {
  return static_cast<std::int64_t>(std::floor(at_seconds / slot_seconds_));
}

std::size_t SpatioTemporalIndex::ring_index(std::int64_t slot) const noexcept {
  const auto n = static_cast<std::int64_t>(slots_.size());
  return static_cast<std::size_t>(((slot % n) + n) % n);
}

void SpatioTemporalIndex::insert(std::int32_t id, geo::Point position, double at_seconds) {
  const std::int64_t slot = slot_of(at_seconds);
  if (slot < window_start_slot_ ||
      slot >= window_start_slot_ + static_cast<std::int64_t>(slots_.size())) {
    return;  // outside the indexable horizon
  }
  slots_[ring_index(slot)].upsert(id, position);
}

void SpatioTemporalIndex::remove(std::int32_t id) {
  for (auto& grid : slots_) grid.remove(id);
}

void SpatioTemporalIndex::advance(double now_seconds) {
  const std::int64_t new_start = slot_of(now_seconds);
  if (new_start <= window_start_slot_) return;
  const std::int64_t steps =
      std::min<std::int64_t>(new_start - window_start_slot_,
                             static_cast<std::int64_t>(slots_.size()));
  for (std::int64_t i = 0; i < steps; ++i) {
    // Reset the recycled slot by replacing it with an empty grid.
    slots_[ring_index(window_start_slot_ + i)] = SpatialGrid(bounds_, cell_km_);
  }
  window_start_slot_ = new_start;
}

std::vector<std::int32_t> SpatioTemporalIndex::query(const geo::Point& p, double radius_km,
                                                     double from_seconds,
                                                     double to_seconds) const {
  O2O_EXPECTS(from_seconds <= to_seconds);
  std::unordered_set<std::int32_t> seen;
  std::vector<std::int32_t> ids;
  const std::int64_t lo =
      std::max(slot_of(from_seconds), window_start_slot_);
  const std::int64_t hi =
      std::min(slot_of(to_seconds),
               window_start_slot_ + static_cast<std::int64_t>(slots_.size()) - 1);
  for (std::int64_t slot = lo; slot <= hi; ++slot) {
    for (std::int32_t id : slots_[ring_index(slot)].within_radius(p, radius_km)) {
      if (seen.insert(id).second) ids.push_back(id);
    }
  }
  return ids;
}

}  // namespace o2o::index
