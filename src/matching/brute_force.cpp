#include "matching/brute_force.h"

#include <limits>
#include <vector>

namespace o2o::matching {

namespace {

struct SearchState {
  const CostMatrix& costs;
  Assignment current;
  std::vector<bool> used;
  Assignment best;
  std::size_t best_size = 0;
  double best_objective = std::numeric_limits<double>::infinity();
  bool bottleneck = false;

  void consider() {
    const std::size_t size = assignment_size(current);
    const double objective =
        bottleneck ? assignment_bottleneck(costs, current) : assignment_cost(costs, current);
    if (size > best_size || (size == best_size && objective < best_objective)) {
      best_size = size;
      best_objective = objective;
      best = current;
    }
  }

  void recurse(std::size_t row) {
    if (row == costs.rows()) {
      consider();
      return;
    }
    current[row] = -1;
    recurse(row + 1);
    for (std::size_t c = 0; c < costs.cols(); ++c) {
      if (used[c] || costs.forbidden(row, c)) continue;
      used[c] = true;
      current[row] = static_cast<int>(c);
      recurse(row + 1);
      current[row] = -1;
      used[c] = false;
    }
  }
};

Assignment brute_force(const CostMatrix& costs, bool bottleneck) {
  O2O_EXPECTS(costs.rows() <= 9);
  SearchState state{costs,
                    Assignment(costs.rows(), -1),
                    std::vector<bool>(costs.cols(), false),
                    Assignment(costs.rows(), -1),
                    0,
                    std::numeric_limits<double>::infinity(),
                    bottleneck};
  state.recurse(0);
  return state.best;
}

}  // namespace

Assignment brute_force_min_cost(const CostMatrix& costs) { return brute_force(costs, false); }

Assignment brute_force_min_max(const CostMatrix& costs) { return brute_force(costs, true); }

}  // namespace o2o::matching
