#include "matching/hungarian.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace o2o::matching {

namespace {

/// Core solver for rows <= cols with finite surrogate costs. Returns, for
/// each row, the matched column (all rows matched; cols >= rows).
/// Classic potentials formulation: u/v are dual potentials, p[j] is the
/// row matched to column j (0 = none; 1-based internally).
std::vector<int> hungarian_rows_le_cols(std::size_t n, std::size_t m,
                                        const std::vector<double>& a) {
  // a is (n+1) x (m+1), 1-based.
  std::vector<double> u(n + 1, 0.0), v(m + 1, 0.0);
  std::vector<std::size_t> p(m + 1, 0), way(m + 1, 0);
  for (std::size_t i = 1; i <= n; ++i) {
    p[0] = i;
    std::size_t j0 = 0;
    std::vector<double> minv(m + 1, kForbidden);
    std::vector<bool> used(m + 1, false);
    do {
      used[j0] = true;
      const std::size_t i0 = p[j0];
      double delta = kForbidden;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= m; ++j) {
        if (used[j]) continue;
        const double cur = a[i0 * (m + 1) + j] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= m; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const std::size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }
  std::vector<int> row_to_col(n, -1);
  for (std::size_t j = 1; j <= m; ++j) {
    if (p[j] != 0) row_to_col[p[j] - 1] = static_cast<int>(j - 1);
  }
  return row_to_col;
}

}  // namespace

Assignment solve_min_cost(const CostMatrix& costs) {
  const std::size_t rows = costs.rows();
  const std::size_t cols = costs.cols();
  if (rows == 0 || cols == 0) return Assignment(rows, -1);

  // Surrogate cost for forbidden pairs: large enough that the solver
  // prefers any set of finite-cost matches over one forbidden match, which
  // yields the max-cardinality / min-cost behaviour after stripping.
  double max_finite = 0.0;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const double cost = costs.at(r, c);
      if (cost != kForbidden) max_finite = std::max(max_finite, std::abs(cost));
    }
  }
  // `2 *` because costs may be negative (taxi-dissatisfaction scores):
  // the spread between any two all-finite assignments is at most
  // 2 * n * max_finite, and one forbidden edge must exceed that spread.
  const double big =
      2.0 * (max_finite + 1.0) * (static_cast<double>(std::min(rows, cols)) + 1.0);

  const bool transposed = rows > cols;
  const std::size_t n = transposed ? cols : rows;
  const std::size_t m = transposed ? rows : cols;
  std::vector<double> a((n + 1) * (m + 1), 0.0);
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      const double cost = transposed ? costs.at(j - 1, i - 1) : costs.at(i - 1, j - 1);
      a[i * (m + 1) + j] = (cost == kForbidden) ? big : cost;
    }
  }

  const std::vector<int> row_to_col = hungarian_rows_le_cols(n, m, a);

  Assignment assignment(rows, -1);
  for (std::size_t i = 0; i < n; ++i) {
    const int j = row_to_col[i];
    if (j < 0) continue;
    const std::size_t r = transposed ? static_cast<std::size_t>(j) : i;
    const std::size_t c = transposed ? i : static_cast<std::size_t>(j);
    if (!costs.forbidden(r, c)) assignment[r] = static_cast<int>(c);
  }
  O2O_ENSURES(is_valid_assignment(costs, assignment));
  return assignment;
}

}  // namespace o2o::matching
