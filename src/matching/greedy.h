// Greedy sequential assignment: each row, in index order, takes the
// cheapest still-unused feasible column. This is the paper's "Greedy"
// baseline (nearest idle taxi per request, in request-arrival order),
// noted in [3,4] to have excellent average behaviour despite an
// exponential competitive ratio.
#pragma once

#include "matching/cost_matrix.h"

namespace o2o::matching {

Assignment solve_greedy(const CostMatrix& costs);

}  // namespace o2o::matching
