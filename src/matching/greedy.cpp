#include "matching/greedy.h"

#include <vector>

namespace o2o::matching {

Assignment solve_greedy(const CostMatrix& costs) {
  Assignment assignment(costs.rows(), -1);
  std::vector<bool> used(costs.cols(), false);
  for (std::size_t r = 0; r < costs.rows(); ++r) {
    int best = -1;
    double best_cost = kForbidden;
    for (std::size_t c = 0; c < costs.cols(); ++c) {
      if (used[c]) continue;
      const double cost = costs.at(r, c);
      if (cost != kForbidden && cost < best_cost) {
        best_cost = cost;
        best = static_cast<int>(c);
      }
    }
    if (best >= 0) {
      assignment[r] = best;
      used[static_cast<std::size_t>(best)] = true;
    }
  }
  O2O_ENSURES(is_valid_assignment(costs, assignment));
  return assignment;
}

}  // namespace o2o::matching
