// Hungarian algorithm (Kuhn-Munkres with potentials, the O(n^2 m)
// shortest-augmenting-path formulation) for rectangular min-cost
// assignment. This is the substrate of the paper's "MinCost" baseline
// [3,4]: a minimum-cost bipartite matching between passenger requests
// (rows) and taxis (columns) using pick-up distances as costs.
//
// Forbidden pairs (cost == kForbidden) are never matched; among all
// assignments that avoid them, the solver first maximizes cardinality and
// then minimizes total cost.
#pragma once

#include "matching/cost_matrix.h"

namespace o2o::matching {

/// Max-cardinality, then min-total-cost assignment.
Assignment solve_min_cost(const CostMatrix& costs);

}  // namespace o2o::matching
