#include "matching/cost_matrix.h"

#include <limits>

namespace o2o::matching {

double assignment_cost(const CostMatrix& costs, const Assignment& assignment) {
  O2O_EXPECTS(assignment.size() == costs.rows());
  double total = 0.0;
  for (std::size_t r = 0; r < assignment.size(); ++r) {
    const int c = assignment[r];
    if (c < 0) continue;
    total += costs.at(r, static_cast<std::size_t>(c));
  }
  return total;
}

double assignment_bottleneck(const CostMatrix& costs, const Assignment& assignment) {
  O2O_EXPECTS(assignment.size() == costs.rows());
  double worst = -std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < assignment.size(); ++r) {
    const int c = assignment[r];
    if (c < 0) continue;
    const double cost = costs.at(r, static_cast<std::size_t>(c));
    if (cost > worst) worst = cost;
  }
  return worst;
}

std::size_t assignment_size(const Assignment& assignment) {
  std::size_t matched = 0;
  for (int c : assignment) {
    if (c >= 0) ++matched;
  }
  return matched;
}

bool is_valid_assignment(const CostMatrix& costs, const Assignment& assignment) {
  if (assignment.size() != costs.rows()) return false;
  std::vector<bool> used(costs.cols(), false);
  for (std::size_t r = 0; r < assignment.size(); ++r) {
    const int c = assignment[r];
    if (c < 0) continue;
    if (static_cast<std::size_t>(c) >= costs.cols()) return false;
    if (used[static_cast<std::size_t>(c)]) return false;
    used[static_cast<std::size_t>(c)] = true;
    if (costs.forbidden(r, static_cast<std::size_t>(c))) return false;
  }
  return true;
}

}  // namespace o2o::matching
