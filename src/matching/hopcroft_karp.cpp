#include "matching/hopcroft_karp.h"

#include <limits>
#include <queue>

#include "util/contracts.h"

namespace o2o::matching {

BipartiteGraph::BipartiteGraph(std::size_t left_count, std::size_t right_count)
    : right_count_(right_count), adjacency_(left_count) {}

void BipartiteGraph::add_edge(std::size_t left, std::size_t right) {
  O2O_EXPECTS(left < adjacency_.size());
  O2O_EXPECTS(right < right_count_);
  adjacency_[left].push_back(right);
}

const std::vector<std::size_t>& BipartiteGraph::neighbors(std::size_t left) const {
  O2O_EXPECTS(left < adjacency_.size());
  return adjacency_[left];
}

namespace {

constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max();

struct HkState {
  const BipartiteGraph& graph;
  std::vector<int>& left_to_right;
  std::vector<int>& right_to_left;
  std::vector<std::size_t> level;

  bool bfs() {
    std::queue<std::size_t> frontier;
    level.assign(graph.left_count(), kInf);
    for (std::size_t u = 0; u < graph.left_count(); ++u) {
      if (left_to_right[u] < 0) {
        level[u] = 0;
        frontier.push(u);
      }
    }
    bool found_augmenting = false;
    while (!frontier.empty()) {
      const std::size_t u = frontier.front();
      frontier.pop();
      for (std::size_t v : graph.neighbors(u)) {
        const int w = right_to_left[v];
        if (w < 0) {
          found_augmenting = true;
        } else if (level[static_cast<std::size_t>(w)] == kInf) {
          level[static_cast<std::size_t>(w)] = level[u] + 1;
          frontier.push(static_cast<std::size_t>(w));
        }
      }
    }
    return found_augmenting;
  }

  bool dfs(std::size_t u) {
    for (std::size_t v : graph.neighbors(u)) {
      const int w = right_to_left[v];
      if (w < 0 || (level[static_cast<std::size_t>(w)] == level[u] + 1 &&
                    dfs(static_cast<std::size_t>(w)))) {
        left_to_right[u] = static_cast<int>(v);
        right_to_left[v] = static_cast<int>(u);
        return true;
      }
    }
    level[u] = kInf;
    return false;
  }
};

}  // namespace

MatchingResult hopcroft_karp(const BipartiteGraph& graph) {
  MatchingResult result;
  result.left_to_right.assign(graph.left_count(), -1);
  result.right_to_left.assign(graph.right_count(), -1);
  HkState state{graph, result.left_to_right, result.right_to_left, {}};
  while (state.bfs()) {
    for (std::size_t u = 0; u < graph.left_count(); ++u) {
      if (result.left_to_right[u] < 0 && state.dfs(u)) ++result.size;
    }
  }
  return result;
}

}  // namespace o2o::matching
