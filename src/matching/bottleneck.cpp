#include "matching/bottleneck.h"

#include <algorithm>
#include <vector>

#include "matching/hopcroft_karp.h"

namespace o2o::matching {

namespace {

/// Max matching size using only edges with cost <= threshold; fills
/// `matching_out` with the left->right assignment found.
std::size_t matching_under_threshold(const CostMatrix& costs, double threshold,
                                     std::vector<int>& matching_out) {
  BipartiteGraph graph(costs.rows(), costs.cols());
  for (std::size_t r = 0; r < costs.rows(); ++r) {
    for (std::size_t c = 0; c < costs.cols(); ++c) {
      const double cost = costs.at(r, c);
      if (cost != kForbidden && cost <= threshold) graph.add_edge(r, c);
    }
  }
  MatchingResult result = hopcroft_karp(graph);
  matching_out = std::move(result.left_to_right);
  return result.size;
}

}  // namespace

Assignment solve_min_max(const CostMatrix& costs) {
  if (costs.rows() == 0 || costs.cols() == 0) return Assignment(costs.rows(), -1);

  std::vector<double> distinct;
  distinct.reserve(costs.rows() * costs.cols());
  for (std::size_t r = 0; r < costs.rows(); ++r) {
    for (std::size_t c = 0; c < costs.cols(); ++c) {
      const double cost = costs.at(r, c);
      if (cost != kForbidden) distinct.push_back(cost);
    }
  }
  if (distinct.empty()) return Assignment(costs.rows(), -1);
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()), distinct.end());

  std::vector<int> matching;
  const std::size_t target = matching_under_threshold(costs, distinct.back(), matching);
  if (target == 0) return Assignment(costs.rows(), -1);

  // Binary search the smallest threshold that still admits `target`
  // matched pairs.
  std::size_t lo = 0;
  std::size_t hi = distinct.size() - 1;  // known feasible
  Assignment best = matching;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    std::vector<int> candidate;
    if (matching_under_threshold(costs, distinct[mid], candidate) == target) {
      best = std::move(candidate);
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  O2O_ENSURES(is_valid_assignment(costs, best));
  return best;
}

}  // namespace o2o::matching
