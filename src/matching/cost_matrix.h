// Dense row-major cost matrix for assignment problems. Rows are requests,
// columns are taxis in all dispatch uses. `kForbidden` marks pairs that
// must never be matched (e.g. beyond a feasibility threshold).
#pragma once

#include <limits>
#include <vector>

#include "util/contracts.h"

namespace o2o::matching {

inline constexpr double kForbidden = std::numeric_limits<double>::infinity();

class CostMatrix {
 public:
  CostMatrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), cells_(rows * cols, fill) {
    O2O_EXPECTS(rows > 0 || cols > 0);
  }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double& at(std::size_t r, std::size_t c) {
    O2O_EXPECTS(r < rows_ && c < cols_);
    return cells_[r * cols_ + c];
  }
  double at(std::size_t r, std::size_t c) const {
    O2O_EXPECTS(r < rows_ && c < cols_);
    return cells_[r * cols_ + c];
  }

  bool forbidden(std::size_t r, std::size_t c) const { return at(r, c) == kForbidden; }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> cells_;
};

/// An assignment: row r is matched to column assignment[r], or -1 when
/// unmatched. Always respects forbidden cells.
using Assignment = std::vector<int>;

/// Total cost of an assignment (forbidden / unmatched rows contribute 0).
double assignment_cost(const CostMatrix& costs, const Assignment& assignment);

/// Largest single matched-pair cost (-inf when nothing is matched).
double assignment_bottleneck(const CostMatrix& costs, const Assignment& assignment);

/// Number of matched rows.
std::size_t assignment_size(const Assignment& assignment);

/// Checks structural validity: indices in range, no column used twice,
/// no forbidden pair used.
bool is_valid_assignment(const CostMatrix& costs, const Assignment& assignment);

}  // namespace o2o::matching
