// Exhaustive reference solvers for tiny instances. These exist so that
// the property-based tests can check Hungarian / bottleneck / greedy
// against ground truth; they are exponential and guarded by size
// preconditions.
#pragma once

#include "matching/cost_matrix.h"

namespace o2o::matching {

/// Exact max-cardinality then min-total-cost assignment (rows <= 9).
Assignment brute_force_min_cost(const CostMatrix& costs);

/// Exact max-cardinality then min-bottleneck assignment (rows <= 9).
Assignment brute_force_min_max(const CostMatrix& costs);

}  // namespace o2o::matching
