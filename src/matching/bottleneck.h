// Bottleneck assignment: among all maximum-cardinality matchings, find
// one minimizing the largest matched-pair cost. This is the paper's
// "MinMax" baseline (Hanna et al. [3]): minimize the worst pick-up
// distance over all matched request-taxi pairs.
//
// Solved by binary search over the sorted distinct finite costs, using
// Hopcroft-Karp to test whether a threshold still admits a
// maximum-cardinality matching.
#pragma once

#include "matching/cost_matrix.h"

namespace o2o::matching {

/// Max-cardinality matching minimizing the maximum matched cost.
Assignment solve_min_max(const CostMatrix& costs);

}  // namespace o2o::matching
