// Hopcroft-Karp maximum-cardinality bipartite matching in O(E sqrt(V)).
// Substrate for the bottleneck ("MinMax") assignment solver and for
// feasibility checks in tests.
#pragma once

#include <cstddef>
#include <vector>

namespace o2o::matching {

class BipartiteGraph {
 public:
  BipartiteGraph(std::size_t left_count, std::size_t right_count);

  void add_edge(std::size_t left, std::size_t right);

  std::size_t left_count() const noexcept { return adjacency_.size(); }
  std::size_t right_count() const noexcept { return right_count_; }
  const std::vector<std::size_t>& neighbors(std::size_t left) const;

 private:
  std::size_t right_count_;
  std::vector<std::vector<std::size_t>> adjacency_;
};

struct MatchingResult {
  std::vector<int> left_to_right;  ///< -1 when unmatched
  std::vector<int> right_to_left;  ///< -1 when unmatched
  std::size_t size = 0;
};

/// Maximum-cardinality matching via Hopcroft-Karp.
MatchingResult hopcroft_karp(const BipartiteGraph& graph);

}  // namespace o2o::matching
