// The o2o::api frame contract and its ndjson codec: every struct must
// survive an encode/decode round trip bit for bit (doubles included),
// wrong API major versions must be rejected, malformed lines must fail
// with a message instead of crashing, and optional fields must default.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <string>

#include "service/api.h"
#include "service/codec.h"

namespace o2o::service {
namespace {

api::Order sample_order() {
  api::Order order;
  order.order_id = 42;
  order.timestamp = 64800.125;
  order.start = {0.1, -0.2};
  order.finish = {1.0 / 3.0, 2.0 / 7.0};
  order.seats = 2;
  order.reward_units = 12.75;
  return order;
}

api::Driver sample_busy_driver() {
  api::Driver driver;
  driver.driver_id = 7;
  driver.location = {3.25, -4.5};
  driver.seats = 4;
  driver.seats_in_use = 3;
  driver.onboard = {11, 19};
  driver.route = {
      api::DriverStop{23, true, {5.0, 5.0}},
      api::DriverStop{11, false, {6.0, -1.0}},
      api::DriverStop{19, false, {0.0, 0.0}},
      api::DriverStop{23, false, {2.0, 2.0}},
  };
  driver.route_seats = {{11, 1}, {19, 2}, {23, 1}};
  return driver;
}

TEST(ServiceApi, VersionConstantsAreFrozen) {
  EXPECT_EQ(api::kApiVersionMajor, 1);
  EXPECT_EQ(api::kApiVersionMinor, 0);
}

TEST(ServiceApi, OrderEventRoundTrips) {
  const api::RideEvent event = api::RideEvent::make_order(sample_order());
  const auto decoded = decode_event(encode_event(event));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, event);
}

TEST(ServiceApi, BusyDriverEventRoundTrips) {
  const api::RideEvent event = api::RideEvent::make_driver(sample_busy_driver());
  const auto decoded = decode_event(encode_event(event));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, event);
}

TEST(ServiceApi, BarrierEventRoundTrips) {
  const api::RideEvent event =
      api::RideEvent::make_end_frame(std::uint64_t{1} << 53, 86399.9375);
  const auto decoded = decode_event(encode_event(event));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->kind, api::RideEvent::Kind::kEndFrame);
  EXPECT_EQ(decoded->frame, std::uint64_t{1} << 53);
  EXPECT_EQ(decoded->timestamp, 86399.9375);
}

TEST(ServiceApi, AwkwardDoublesRoundTripBitForBit) {
  // %.17g must reproduce the exact IEEE-754 bits: repeating fractions,
  // huge and denormal magnitudes, and negative zero.
  const double cases[] = {0.1,
                          1.0 / 3.0,
                          1e300,
                          -1e-300,
                          std::numeric_limits<double>::denorm_min(),
                          std::numeric_limits<double>::max(),
                          -0.0,
                          123456.78901234567};
  for (const double value : cases) {
    api::Order order = sample_order();
    order.timestamp = value;
    order.start.x = value;
    const auto decoded = decode_event(encode_event(api::RideEvent::make_order(order)));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(std::bit_cast<std::uint64_t>(decoded->order.timestamp),
              std::bit_cast<std::uint64_t>(value))
        << value;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(decoded->order.start.x),
              std::bit_cast<std::uint64_t>(value))
        << value;
  }
}

TEST(ServiceApi, ResponseRoundTrips) {
  api::FrameResponse response;
  response.frame = 17;
  response.timestamp = 1020.0;
  api::Assignment assignment;
  assignment.driver_id = 3;
  assignment.order_ids = {42, 43};
  assignment.start = {0.5, 0.25};
  assignment.route = {api::DriverStop{42, true, {1.0, 1.0}},
                      api::DriverStop{43, true, {1.5, 1.0}},
                      api::DriverStop{42, false, {2.0, 2.0}},
                      api::DriverStop{43, false, {3.0, 2.0}}};
  assignment.pick_up_eta = 90.5;
  response.assignments = {assignment};

  const auto decoded = decode_response(encode_response(response));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, response);
}

TEST(ServiceApi, EmptyResponseRoundTrips) {
  api::FrameResponse response;
  response.frame = 0;
  response.timestamp = 60.0;
  const auto decoded = decode_response(encode_response(response));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, response);
}

TEST(ServiceApi, FrameEventsEndWithTheBarrier) {
  api::FrameRequest request;
  request.frame = 9;
  request.timestamp = 540.0;
  request.orders = {sample_order()};
  request.drivers = {sample_busy_driver()};

  const auto lines = encode_frame_events(request);
  ASSERT_EQ(lines.size(), 3u);  // orders, drivers, barrier

  api::FrameRequest rebuilt;
  for (const std::string& line : lines) {
    const auto event = decode_event(line);
    ASSERT_TRUE(event.has_value()) << line;
    switch (event->kind) {
      case api::RideEvent::Kind::kOrder: rebuilt.orders.push_back(event->order); break;
      case api::RideEvent::Kind::kDriver:
        rebuilt.drivers.push_back(event->driver);
        break;
      case api::RideEvent::Kind::kEndFrame:
        rebuilt.frame = event->frame;
        rebuilt.timestamp = event->timestamp;
        break;
    }
  }
  const auto barrier = decode_event(lines.back());
  ASSERT_TRUE(barrier.has_value());
  EXPECT_EQ(barrier->kind, api::RideEvent::Kind::kEndFrame);
  EXPECT_EQ(rebuilt, request);
}

TEST(ServiceApi, WrongMajorVersionIsRejected) {
  CodecError error;
  const auto decoded = decode_event(
      R"({"v":2,"event":"end_frame","frame":0,"timestamp":0})", &error);
  EXPECT_FALSE(decoded.has_value());
  EXPECT_NE(error.message.find("version"), std::string::npos) << error.message;
}

TEST(ServiceApi, MissingVersionIsRejected) {
  CodecError error;
  const auto decoded =
      decode_event(R"({"event":"end_frame","frame":0,"timestamp":0})", &error);
  EXPECT_FALSE(decoded.has_value());
  EXPECT_FALSE(error.message.empty());
}

TEST(ServiceApi, MalformedLinesFailWithAMessage) {
  const char* bad[] = {
      "",
      "not json",
      "{",
      R"({"v":1})",
      R"({"v":1,"event":"unknown"})",
      R"({"v":1,"event":"order","order_id":1})",
      R"({"v":1,"event":"order","order_id":1,"timestamp":0,"start":[0],"finish":[1,1]})",
  };
  for (const char* line : bad) {
    CodecError error;
    const auto decoded = decode_event(line, &error);
    EXPECT_FALSE(decoded.has_value()) << line;
    EXPECT_FALSE(error.message.empty()) << line;
  }
}

TEST(ServiceApi, OptionalFieldsDefault) {
  const auto order = decode_event(
      R"({"v":1,"event":"order","order_id":5,"timestamp":30,"start":[0,0],"finish":[1,1]})");
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(order->order.seats, 1);
  EXPECT_EQ(order->order.reward_units, 0.0);

  const auto driver =
      decode_event(R"({"v":1,"event":"driver","driver_id":9,"location":[2,3]})");
  ASSERT_TRUE(driver.has_value());
  EXPECT_EQ(driver->driver.seats, 4);
  EXPECT_EQ(driver->driver.seats_in_use, 0);
  EXPECT_TRUE(driver->driver.onboard.empty());
  EXPECT_TRUE(driver->driver.route.empty());
  EXPECT_TRUE(driver->driver.route_seats.empty());
  EXPECT_TRUE(driver->driver.idle());
}

TEST(ServiceApi, PresentButMalformedOptionalFieldsAreRejected) {
  CodecError error;
  const auto decoded = decode_event(
      R"({"v":1,"event":"driver","driver_id":9,"location":[2,3],"route":"nope"})",
      &error);
  EXPECT_FALSE(decoded.has_value());
  EXPECT_FALSE(error.message.empty());
}

TEST(ServiceApi, DeepNestingFailsInsteadOfOverflowingTheStack) {
  std::string hostile(100000, '[');
  CodecError error;
  const auto decoded = decode_event(hostile, &error);
  EXPECT_FALSE(decoded.has_value());
  EXPECT_NE(error.message.find("nesting"), std::string::npos) << error.message;
}

TEST(ServiceApi, NonIntegerIdsAreRejectedNotTruncated) {
  const char* bad[] = {
      // 1.9 must not silently become order 1.
      R"({"v":1,"event":"order","order_id":1.9,"timestamp":0,"start":[0,0],"finish":[1,1]})",
      // Exponent notation is not an id either.
      R"({"v":1,"event":"order","order_id":1e2,"timestamp":0,"start":[0,0],"finish":[1,1]})",
      // Out of int32 range must not wrap into a different valid id.
      R"({"v":1,"event":"order","order_id":99999999999,"timestamp":0,"start":[0,0],"finish":[1,1]})",
      // Frame numbers are unsigned.
      R"({"v":1,"event":"end_frame","frame":-1,"timestamp":0})",
      // Onboard id lists go through the same strict path.
      R"({"v":1,"event":"driver","driver_id":9,"location":[2,3],"onboard":[1.5]})",
      // So do route_seats pairs.
      R"({"v":1,"event":"driver","driver_id":9,"location":[2,3],"route_seats":[[1,2.5]]})",
  };
  for (const char* line : bad) {
    CodecError error;
    const auto decoded = decode_event(line, &error);
    EXPECT_FALSE(decoded.has_value()) << line;
    EXPECT_FALSE(error.message.empty()) << line;
  }
}

TEST(ServiceApi, BoundaryIdsStillDecodeExactly) {
  const auto decoded = decode_event(
      R"({"v":1,"event":"order","order_id":-2147483648,"timestamp":0,)"
      R"("start":[0,0],"finish":[1,1],"seats":1})");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->order.order_id, std::numeric_limits<std::int32_t>::min());

  const auto barrier = decode_event(
      R"({"v":1,"event":"end_frame","frame":18446744073709551615,"timestamp":0})");
  ASSERT_TRUE(barrier.has_value());
  EXPECT_EQ(barrier->frame, std::numeric_limits<std::uint64_t>::max());
}

}  // namespace
}  // namespace o2o::service
