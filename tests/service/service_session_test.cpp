// Streaming-vs-batch differential proof obligations: a full synthetic
// day replayed through the service — wire codec, ingestion ring, and
// DispatchSession — must reproduce the batch Simulator's report bit for
// bit, with the incremental knobs (cross-frame cache, persisted
// candidates, warm-started DA, incremental grid) all off and all on.
#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "core/dispatch_config.h"
#include "service/codec.h"
#include "service/replay.h"
#include "service/service.h"
#include "service/session.h"
#include "sim/simulator.h"
#include "trace/fleet.h"
#include "trace/synthetic.h"
#include "util/contracts.h"

namespace o2o::service {
namespace {

const geo::EuclideanOracle kOracle;

trace::Trace busy_city_trace() {
  trace::CityModel model = trace::CityModel::boston();
  model.base_rate_per_hour = 200.0;
  trace::GenerationOptions options;
  options.duration_seconds = 3600.0;
  options.start_hour = 18.0;
  options.seed = 60601;
  options.max_seats = 2;
  return trace::generate(model, options);
}

std::vector<trace::Taxi> fleet_of(std::size_t count) {
  trace::FleetOptions options;
  options.taxi_count = count;
  options.seed = 11;
  return trace::make_fleet(geo::Rect{{-10, -10}, {10, 10}}, options);
}

DispatchConfig tuned_config(bool incremental) {
  return DispatchConfig{}
      .with_passenger_threshold_km(8.0)
      .with_taxi_threshold_score(6.0)
      .with_detour_threshold_km(5.0)
      .with_cancel_timeout_seconds(1800.0)
      .with_cross_frame_cache(incremental)
      .with_persist_candidates(incremental)
      .with_warm_start_da(incremental)
      .with_incremental_grid(incremental);
}

void expect_identical(const sim::SimulationReport& a, const sim::SimulationReport& b) {
  EXPECT_EQ(a.served, b.served);
  EXPECT_EQ(a.cancelled, b.cancelled);
  EXPECT_DOUBLE_EQ(a.total_taxi_distance_km, b.total_taxi_distance_km);
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    const sim::RequestRecord& ra = a.requests[i];
    const sim::RequestRecord& rb = b.requests[i];
    EXPECT_EQ(ra.id, rb.id);
    EXPECT_EQ(ra.dispatch_time, rb.dispatch_time) << "request " << ra.id;
    EXPECT_EQ(ra.pickup_time, rb.pickup_time) << "request " << ra.id;
    EXPECT_EQ(ra.dropoff_time, rb.dropoff_time) << "request " << ra.id;
    EXPECT_EQ(ra.shared, rb.shared) << "request " << ra.id;
    EXPECT_EQ(ra.cancelled, rb.cancelled) << "request " << ra.id;
    EXPECT_EQ(ra.passenger_dissatisfaction_km, rb.passenger_dissatisfaction_km);
  }
}

sim::SimulationReport batch_run(std::string_view kind, const DispatchConfig& config) {
  const auto dispatcher = make_dispatcher(kind, config);
  const trace::Trace city = busy_city_trace();  // must outlive the simulator
  sim::Simulator simulator(city, fleet_of(30), kOracle, config.simulation());
  return simulator.run(*dispatcher);
}

/// Streams every frame through the wire codec AND the ingestion ring —
/// the exact path a remote ndjson client exercises.
ServeFrameFn ring_codec_server(StreamingService& service) {
  return [&service](const api::FrameRequest& request) {
    for (const std::string& line : encode_frame_events(request)) {
      const auto event = decode_event(line);
      O2O_EXPECTS(event.has_value());
      service.submit(*event);
    }
    const auto response = service.next_response();
    O2O_EXPECTS(response.has_value());
    const auto decoded = decode_response(encode_response(*response));
    O2O_EXPECTS(decoded.has_value());
    return *decoded;
  };
}

void session_differential(std::string_view kind, bool incremental) {
  const DispatchConfig config = tuned_config(incremental);
  const sim::SimulationReport batch = batch_run(kind, config);

  DispatchSession session(kind, config, kOracle);
  const ReplayResult streamed =
      replay_day(busy_city_trace(), fleet_of(30), kOracle, config,
                 codec_round_trip_server(session), kind);

  EXPECT_GT(streamed.frames_served, 0u);
  expect_identical(batch, streamed.report);
}

void ring_differential(std::string_view kind, bool incremental) {
  const DispatchConfig config = tuned_config(incremental);
  const sim::SimulationReport batch = batch_run(kind, config);

  StreamingService service(kind, config, kOracle);
  const ReplayResult streamed = replay_day(busy_city_trace(), fleet_of(30), kOracle,
                                           config, ring_codec_server(service), kind);

  EXPECT_GT(streamed.frames_served, 0u);
  expect_identical(batch, streamed.report);
}

TEST(StreamingSession, NonSharingMatchesBatchCold) {
  session_differential("nstd-p", /*incremental=*/false);
}

TEST(StreamingSession, NonSharingMatchesBatchIncremental) {
  session_differential("nstd-p", /*incremental=*/true);
}

TEST(StreamingSession, SharingMatchesBatchCold) {
  session_differential("std-p", /*incremental=*/false);
}

TEST(StreamingSession, SharingMatchesBatchIncremental) {
  session_differential("std-p", /*incremental=*/true);
}

TEST(StreamingSession, RingPathNonSharingMatchesBatch) {
  ring_differential("nstd-p", /*incremental=*/true);
}

TEST(StreamingSession, RingPathSharingMatchesBatch) {
  ring_differential("std-p", /*incremental=*/true);
}

TEST(StreamingSession, ResetDropsCrossFrameState) {
  const DispatchConfig config = tuned_config(/*incremental=*/true);
  DispatchSession session("std-p", config, kOracle);

  const ReplayResult first =
      replay_day(busy_city_trace(), fleet_of(30), kOracle, config,
                 codec_round_trip_server(session), "std-p");
  session.reset();
  const ReplayResult second =
      replay_day(busy_city_trace(), fleet_of(30), kOracle, config,
                 codec_round_trip_server(session), "std-p");

  EXPECT_EQ(first.frames_served, second.frames_served);
  expect_identical(first.report, second.report);
}

TEST(StreamingSession, SessionNamesTheDispatcher) {
  const DispatchSession session("nstd-t", tuned_config(false), kOracle);
  EXPECT_FALSE(session.dispatcher_name().empty());
  EXPECT_EQ(session.config().service().pipeline_depth, 1u);
}

TEST(StreamingSession, DuplicateIdsFailValidationInsteadOfAborting) {
  api::FrameRequest request;
  request.frame = 0;
  request.timestamp = 60.0;
  // Same order id at *different* timestamps: the ids are not adjacent in
  // the canonical (timestamp, id) barrier order, so a naive adjacency
  // scan would miss them.
  api::Order a;
  a.order_id = 7;
  a.timestamp = 10.0;
  api::Order b;
  b.order_id = 8;
  b.timestamp = 15.0;
  api::Order c = a;
  c.timestamp = 20.0;
  request.orders = {a, b, c};
  api::Driver driver;
  driver.driver_id = 1;
  request.drivers = {driver};

  std::string error;
  EXPECT_FALSE(DispatchSession::validate(request, &error));
  EXPECT_NE(error.find("order_id 7"), std::string::npos) << error;

  DispatchSession session("nstd-p", tuned_config(false), kOracle);
  error.clear();
  EXPECT_FALSE(session.dispatch(request, &error).has_value());
  EXPECT_FALSE(error.empty());

  request.orders = {a, b};
  request.drivers = {driver, driver};
  EXPECT_FALSE(DispatchSession::validate(request, &error));
  EXPECT_NE(error.find("driver_id 1"), std::string::npos) << error;

  // With the duplicates gone the same session serves the frame.
  request.drivers = {driver};
  EXPECT_TRUE(DispatchSession::validate(request));
  EXPECT_TRUE(session.dispatch(request).has_value());
}

}  // namespace
}  // namespace o2o::service
