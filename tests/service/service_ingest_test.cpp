// The lock-free ingestion ring: FIFO per producer, wraparound, full/empty
// edges, and a multi-producer hammer that doubles as the TSan proof of
// the acquire/release stamp protocol. Plus the StreamingService frame
// barrier: arrival order inside a frame must not change the match.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/dispatch_config.h"
#include "geo/distance_oracle.h"
#include "service/api.h"
#include "service/ingest.h"
#include "service/service.h"

namespace o2o::service {
namespace {

TEST(IngestQueue, FifoOrder) {
  IngestQueue<int> queue(128);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(queue.try_push(i));
  int value = -1;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(queue.try_pop(value));
    EXPECT_EQ(value, i);
  }
  EXPECT_FALSE(queue.try_pop(value));
}

TEST(IngestQueue, WrapAroundKeepsOrder) {
  IngestQueue<int> queue(8);
  int next_in = 0;
  int next_out = 0;
  // Push/pop in bursts so the ring wraps many times.
  for (int round = 0; round < 500; ++round) {
    for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.try_push(next_in++));
    int value = -1;
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(queue.try_pop(value));
      EXPECT_EQ(value, next_out++);
    }
  }
}

TEST(IngestQueue, FullRingRejectsUntilDrained) {
  IngestQueue<int> queue(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(queue.try_push(i));
  EXPECT_FALSE(queue.try_push(99));
  int value = -1;
  ASSERT_TRUE(queue.try_pop(value));
  EXPECT_EQ(value, 0);
  EXPECT_TRUE(queue.try_push(99));
  std::vector<int> rest;
  while (queue.try_pop(value)) rest.push_back(value);
  EXPECT_EQ(rest, (std::vector<int>{1, 2, 3, 99}));
}

TEST(IngestQueue, ApproxDepthTracksOccupancy) {
  IngestQueue<int> queue(16);
  EXPECT_EQ(queue.approx_depth(), 0u);
  for (int i = 0; i < 10; ++i) queue.try_push(i);
  EXPECT_EQ(queue.approx_depth(), 10u);
  int value = -1;
  for (int i = 0; i < 4; ++i) queue.try_pop(value);
  EXPECT_EQ(queue.approx_depth(), 6u);
}

// Multi-producer hammer: N threads each push a tagged ascending sequence
// through a deliberately tiny ring while the main thread drains. Checks
// no loss, no duplication, and per-producer FIFO. Run under TSan this is
// the data-race proof for the stamp protocol.
TEST(IngestQueue, MultiProducerNoLossNoDupPerProducerFifo) {
  constexpr int kProducers = 4;
  constexpr std::uint32_t kPerProducer = 20000;
  IngestQueue<std::uint32_t> queue(64);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (std::uint32_t i = 0; i < kPerProducer; ++i) {
        const std::uint32_t tagged = (static_cast<std::uint32_t>(p) << 24) | i;
        while (!queue.try_push(tagged)) std::this_thread::yield();
      }
    });
  }

  std::vector<std::uint32_t> next_expected(kProducers, 0);
  std::uint64_t drained = 0;
  while (drained < static_cast<std::uint64_t>(kProducers) * kPerProducer) {
    std::uint32_t tagged = 0;
    if (!queue.try_pop(tagged)) {
      std::this_thread::yield();
      continue;
    }
    ++drained;
    const int producer = static_cast<int>(tagged >> 24);
    const std::uint32_t sequence = tagged & 0xFFFFFF;
    ASSERT_LT(producer, kProducers);
    // FIFO per producer: each producer's values arrive in push order.
    ASSERT_EQ(sequence, next_expected[producer]) << "producer " << producer;
    ++next_expected[producer];
  }
  for (std::thread& producer : producers) producer.join();

  std::uint32_t leftover = 0;
  EXPECT_FALSE(queue.try_pop(leftover));
  for (int p = 0; p < kProducers; ++p) EXPECT_EQ(next_expected[p], kPerProducer);
}

// ---------------------------------------------------------------------------
// StreamingService barrier semantics.
// ---------------------------------------------------------------------------

const geo::EuclideanOracle kOracle;

api::RideEvent order_event(std::int32_t id, double x, double y) {
  api::Order order;
  order.order_id = id;
  order.timestamp = 10.0 * id;
  order.start = {x, y};
  order.finish = {x + 2.0, y + 2.0};
  return api::RideEvent::make_order(order);
}

api::RideEvent driver_event(std::int32_t id, double x, double y) {
  api::Driver driver;
  driver.driver_id = id;
  driver.location = {x, y};
  return api::RideEvent::make_driver(driver);
}

std::vector<api::RideEvent> frame_events() {
  return {order_event(1, 0.0, 0.0),  order_event(2, 4.0, 4.0),
          order_event(3, -3.0, 1.0), driver_event(10, 0.5, 0.5),
          driver_event(11, 4.5, 4.0), driver_event(12, -2.0, 0.0)};
}

api::FrameResponse serve_one_frame(std::vector<api::RideEvent> events) {
  const DispatchConfig config =
      DispatchConfig{}.with_passenger_threshold_km(10.0).with_taxi_threshold_score(1.0);
  StreamingService service("nstd-p", config, kOracle);
  for (const api::RideEvent& event : events) service.submit(event);
  service.submit(api::RideEvent::make_end_frame(0, 60.0));
  const auto response = service.next_response();
  EXPECT_TRUE(response.has_value());
  return response.value_or(api::FrameResponse{});
}

TEST(StreamingService, ArrivalOrderDoesNotChangeTheMatch) {
  std::vector<api::RideEvent> forward = frame_events();
  std::vector<api::RideEvent> shuffled = frame_events();
  std::reverse(shuffled.begin(), shuffled.end());
  std::vector<api::RideEvent> interleaved = {forward[3], forward[0], forward[4],
                                             forward[1], forward[5], forward[2]};

  const api::FrameResponse a = serve_one_frame(forward);
  const api::FrameResponse b = serve_one_frame(shuffled);
  const api::FrameResponse c = serve_one_frame(interleaved);
  EXPECT_FALSE(a.assignments.empty());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(StreamingService, PipelineDepthHoldsBackExtraBarriers) {
  const DispatchConfig config = DispatchConfig{}
                                    .with_passenger_threshold_km(10.0)
                                    .with_taxi_threshold_score(1.0)
                                    .with_pipeline_depth(1);
  StreamingService service("nstd-p", config, kOracle);
  service.submit(order_event(1, 0.0, 0.0));
  service.submit(driver_event(10, 0.5, 0.5));
  ASSERT_TRUE(service.try_submit(api::RideEvent::make_end_frame(0, 60.0)));
  // One complete frame is already in flight: a second barrier must wait.
  EXPECT_FALSE(service.try_submit(api::RideEvent::make_end_frame(1, 120.0)));
  const auto first = service.next_response();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->frame, 0u);
  // The matcher caught up: the window reopens.
  EXPECT_TRUE(service.try_submit(api::RideEvent::make_end_frame(1, 120.0)));
  const auto second = service.next_response();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->frame, 1u);
  EXPECT_TRUE(second->assignments.empty());
}

TEST(StreamingService, CloseDrainsBufferedFramesThenEnds) {
  const DispatchConfig config = DispatchConfig{}
                                    .with_passenger_threshold_km(10.0)
                                    .with_taxi_threshold_score(1.0)
                                    .with_pipeline_depth(4);
  StreamingService service("nstd-p", config, kOracle);
  for (std::uint64_t frame = 0; frame < 3; ++frame) {
    service.submit(order_event(static_cast<std::int32_t>(frame + 1), 0.0, 0.0));
    service.submit(driver_event(static_cast<std::int32_t>(frame + 10), 0.5, 0.5));
    service.submit(
        api::RideEvent::make_end_frame(frame, 60.0 * static_cast<double>(frame + 1)));
  }
  service.close();
  for (std::uint64_t frame = 0; frame < 3; ++frame) {
    const auto response = service.next_response();
    ASSERT_TRUE(response.has_value()) << "frame " << frame;
    EXPECT_EQ(response->frame, frame);
  }
  EXPECT_FALSE(service.next_response().has_value());
  // A drained+closed service stays ended.
  EXPECT_FALSE(service.next_response().has_value());
}

// Duplicate ids arrive over the wire in --stdio/--tcp mode: the frame
// must be dropped and the service must keep answering later frames, not
// abort the process.
TEST(StreamingService, DuplicateIdFramesAreDroppedNotFatal) {
  const DispatchConfig config = DispatchConfig{}
                                    .with_passenger_threshold_km(10.0)
                                    .with_taxi_threshold_score(1.0)
                                    .with_pipeline_depth(4);
  StreamingService service("nstd-p", config, kOracle);

  // Frame 0: the same order_id twice (different timestamps/locations).
  service.submit(order_event(1, 0.0, 0.0));
  service.submit(order_event(1, 3.0, 3.0));
  service.submit(driver_event(10, 0.5, 0.5));
  service.submit(api::RideEvent::make_end_frame(0, 60.0));
  // Frame 1: duplicate driver_id.
  service.submit(order_event(2, 0.0, 0.0));
  service.submit(driver_event(10, 0.5, 0.5));
  service.submit(driver_event(10, 4.0, 4.0));
  service.submit(api::RideEvent::make_end_frame(1, 120.0));
  // Frame 2 is clean and must still be served.
  service.submit(order_event(3, 0.0, 0.0));
  service.submit(driver_event(11, 0.5, 0.5));
  service.submit(api::RideEvent::make_end_frame(2, 180.0));
  service.close();

  const auto response = service.next_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->frame, 2u);
  EXPECT_EQ(response->assignments.size(), 1u);
  EXPECT_FALSE(service.next_response().has_value());
}

// A producer thread streams frames while the matcher answers them —
// pipelined ingest under TSan exercises the full submit/drain protocol.
TEST(StreamingService, ThreadedProducerAndMatcherAgree) {
  const DispatchConfig config = DispatchConfig{}
                                    .with_passenger_threshold_km(10.0)
                                    .with_taxi_threshold_score(1.0)
                                    .with_pipeline_depth(2)
                                    .with_ingest_capacity(64);
  StreamingService service("nstd-p", config, kOracle);
  constexpr std::uint64_t kFrames = 40;

  std::thread producer([&service] {
    for (std::uint64_t frame = 0; frame < kFrames; ++frame) {
      for (int i = 0; i < 8; ++i) {
        service.submit(order_event(static_cast<std::int32_t>(i + 1),
                                   static_cast<double>(i), 0.0));
      }
      for (int i = 0; i < 8; ++i) {
        service.submit(driver_event(static_cast<std::int32_t>(i + 100),
                                    static_cast<double>(i), 0.25));
      }
      service.submit(
          api::RideEvent::make_end_frame(frame, 60.0 * static_cast<double>(frame + 1)));
    }
    service.close();
  });

  std::uint64_t answered = 0;
  api::FrameResponse first_response;
  while (const auto response = service.next_response()) {
    EXPECT_EQ(response->frame, answered);
    if (answered == 0) {
      first_response = *response;
      EXPECT_FALSE(response->assignments.empty());
    } else {
      // Identical frames must match identically, every time.
      EXPECT_EQ(response->assignments, first_response.assignments);
    }
    ++answered;
  }
  producer.join();
  EXPECT_EQ(answered, kFrames);
}

}  // namespace
}  // namespace o2o::service
