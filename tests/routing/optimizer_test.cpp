#include "routing/optimizer.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/contracts.h"
#include "util/rng.h"

namespace o2o::routing {
namespace {

const geo::EuclideanOracle kOracle;

trace::Request make_request(trace::RequestId id, geo::Point pickup, geo::Point dropoff) {
  trace::Request request;
  request.id = id;
  request.pickup = pickup;
  request.dropoff = dropoff;
  return request;
}

std::vector<trace::Request> random_riders(Rng& rng, int count) {
  std::vector<trace::Request> riders;
  for (int i = 0; i < count; ++i) {
    riders.push_back(make_request(i, {rng.uniform(-10, 10), rng.uniform(-10, 10)},
                                  {rng.uniform(-10, 10), rng.uniform(-10, 10)}));
  }
  return riders;
}

TEST(FeasibleOrderCount, MatchesTheFormula) {
  EXPECT_EQ(feasible_order_count(0), 1);
  EXPECT_EQ(feasible_order_count(1), 1);
  EXPECT_EQ(feasible_order_count(2), 6);
  EXPECT_EQ(feasible_order_count(3), 90);  // the paper's 6!/(2!2!2!)
  EXPECT_EQ(feasible_order_count(4), 2520);
}

TEST(OptimalRoute, SingleRiderIsPickupDropoff) {
  const auto rider = make_request(0, {1, 0}, {2, 0});
  const Route route = optimal_route({&rider, 1}, kOracle, geo::Point{0, 0});
  ASSERT_EQ(route.stop_count(), 2u);
  EXPECT_TRUE(route.stops[0].is_pickup);
  EXPECT_DOUBLE_EQ(route_length(route, kOracle), 2.0);
}

TEST(OptimalRoute, CollinearPairPrefersInterleaving) {
  // A: (0,0)->(3,0), B: (1,0)->(2,0). Optimal: pick A, pick B, drop B,
  // drop A, total length 3 from A's pickup.
  const std::vector<trace::Request> riders{make_request(0, {0, 0}, {3, 0}),
                                           make_request(1, {1, 0}, {2, 0})};
  const Route route = optimal_route(riders, kOracle);
  EXPECT_DOUBLE_EQ(route_length(route, kOracle), 3.0);
  EXPECT_TRUE(respects_precedence(route));
}

TEST(OptimalRoute, AnchorChangesTheBestOrder) {
  // Two riders on opposite sides of the taxi: the route should start with
  // the nearer pickup.
  const std::vector<trace::Request> riders{make_request(0, {1, 0}, {2, 0}),
                                           make_request(1, {-5, 0}, {-6, 0})};
  const Route route = optimal_route(riders, kOracle, geo::Point{0, 0});
  EXPECT_EQ(route.stops.front().request, 0);
}

TEST(OptimalRoute, ExhaustiveEqualsDpOnRandomInstances) {
  Rng rng(21);
  for (int trial = 0; trial < 40; ++trial) {
    const int riders_count = 1 + static_cast<int>(rng.uniform_index(4));
    const auto riders = random_riders(rng, riders_count);
    const std::optional<geo::Point> start =
        rng.bernoulli(0.5) ? std::optional<geo::Point>({rng.uniform(-10, 10),
                                                        rng.uniform(-10, 10)})
                           : std::nullopt;
    const Route exhaustive = optimal_route_exhaustive(riders, kOracle, start);
    const Route dp = optimal_route_dp(riders, kOracle, start);
    EXPECT_NEAR(route_length(exhaustive, kOracle), route_length(dp, kOracle), 1e-9)
        << "trial " << trial;
    EXPECT_TRUE(respects_precedence(dp));
  }
}

TEST(OptimalRoute, BeatsOrTiesRandomFeasibleOrders) {
  Rng rng(22);
  for (int trial = 0; trial < 20; ++trial) {
    const auto riders = random_riders(rng, 3);
    const Route best = optimal_route(riders, kOracle);
    const double best_length = route_length(best, kOracle);
    // Any "pickup all, then drop all" order is feasible; none may beat it.
    std::vector<int> order{0, 1, 2};
    for (int shuffle = 0; shuffle < 6; ++shuffle) {
      rng.shuffle(order);
      Route candidate;
      for (int i : order) {
        candidate.stops.push_back(Stop{riders[static_cast<std::size_t>(i)].id, true,
                                       riders[static_cast<std::size_t>(i)].pickup});
      }
      for (int i : order) {
        candidate.stops.push_back(Stop{riders[static_cast<std::size_t>(i)].id, false,
                                       riders[static_cast<std::size_t>(i)].dropoff});
      }
      EXPECT_LE(best_length, route_length(candidate, kOracle) + 1e-9);
    }
  }
}

TEST(OptimalRoute, DpHandlesFiveRiders) {
  Rng rng(23);
  const auto riders = random_riders(rng, 5);
  const Route route = optimal_route(riders, kOracle, geo::Point{0, 0});
  EXPECT_EQ(route.stop_count(), 10u);
  EXPECT_TRUE(respects_precedence(route));
}

TEST(OptimalRoute, SizeLimitsEnforced) {
  Rng rng(24);
  const auto riders = random_riders(rng, 5);
  EXPECT_THROW(optimal_route_exhaustive(riders, kOracle), o2o::ContractViolation);
  const auto too_many = random_riders(rng, 9);
  EXPECT_THROW(optimal_route_dp(too_many, kOracle), o2o::ContractViolation);
  EXPECT_THROW(optimal_route({}, kOracle), o2o::ContractViolation);
}

TEST(AnchoredSolver, MatchesOptimalRouteAcrossAnchors) {
  Rng rng(25);
  for (int trial = 0; trial < 10; ++trial) {
    const auto riders = random_riders(rng, 1 + static_cast<int>(rng.uniform_index(3)));
    const AnchoredRouteSolver solver(riders, kOracle);
    for (int a = 0; a < 5; ++a) {
      const geo::Point start{rng.uniform(-15, 15), rng.uniform(-15, 15)};
      const Route via_solver = solver.best_route(start);
      const Route direct = optimal_route(riders, kOracle, start);
      EXPECT_NEAR(route_length(via_solver, kOracle), route_length(direct, kOracle), 1e-9);
      EXPECT_NEAR(solver.best_length(start), route_length(direct, kOracle), 1e-9);
    }
  }
}

TEST(AnchoredSolver, ReportsRiderCount) {
  Rng rng(26);
  const AnchoredRouteSolver solver(random_riders(rng, 2), kOracle);
  EXPECT_EQ(solver.rider_count(), 2u);
}

}  // namespace
}  // namespace o2o::routing
