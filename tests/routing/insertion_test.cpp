#include "routing/insertion.h"

#include <gtest/gtest.h>

#include "routing/optimizer.h"
#include "util/rng.h"

namespace o2o::routing {
namespace {

const geo::EuclideanOracle kOracle;

trace::Request make_request(trace::RequestId id, geo::Point pickup, geo::Point dropoff) {
  trace::Request request;
  request.id = id;
  request.pickup = pickup;
  request.dropoff = dropoff;
  return request;
}

TEST(Insertion, IntoEmptyRouteIsTheSoloRoute) {
  Route route;
  route.start = geo::Point{0, 0};
  const auto request = make_request(1, {1, 0}, {2, 0});
  const auto result = cheapest_insertion(route, request, kOracle);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->route.stop_count(), 2u);
  EXPECT_DOUBLE_EQ(result->added_km, 2.0);
  EXPECT_TRUE(respects_precedence(result->route));
}

TEST(Insertion, OnRouteRiderYieldsZeroDetour) {
  // Existing ride goes (0,0)->(10,0); a rider along that segment adds 0.
  Route route;
  route.start = geo::Point{0, 0};
  route.stops = {Stop{1, true, {0, 0}}, Stop{1, false, {10, 0}}};
  const auto request = make_request(2, {3, 0}, {6, 0});
  const auto result = cheapest_insertion(route, request, kOracle);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->added_km, 0.0, 1e-9);
  EXPECT_TRUE(respects_precedence(result->route));
}

TEST(Insertion, KeepsPickupBeforeDropoff) {
  Route route;
  route.start = geo::Point{0, 0};
  route.stops = {Stop{1, true, {1, 1}}, Stop{1, false, {2, 2}}};
  const auto request = make_request(2, {5, 0}, {-5, 0});
  const auto result = cheapest_insertion(route, request, kOracle);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(respects_precedence(result->route));
  EXPECT_LT(result->pickup_index, result->dropoff_index);
}

TEST(Insertion, DuplicateRiderIsRejected) {
  Route route;
  route.start = geo::Point{0, 0};
  route.stops = {Stop{7, true, {1, 0}}, Stop{7, false, {2, 0}}};
  EXPECT_FALSE(cheapest_insertion(route, make_request(7, {0, 0}, {1, 1}), kOracle)
                   .has_value());
}

TEST(Insertion, AddedDistanceIsNonNegativeUnderEuclidean) {
  Rng rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    Route route;
    route.start = geo::Point{rng.uniform(-5, 5), rng.uniform(-5, 5)};
    const auto a = make_request(1, {rng.uniform(-5, 5), rng.uniform(-5, 5)},
                                {rng.uniform(-5, 5), rng.uniform(-5, 5)});
    route.stops = {Stop{1, true, a.pickup}, Stop{1, false, a.dropoff}};
    const auto b = make_request(2, {rng.uniform(-5, 5), rng.uniform(-5, 5)},
                                {rng.uniform(-5, 5), rng.uniform(-5, 5)});
    const auto result = cheapest_insertion(route, b, kOracle);
    ASSERT_TRUE(result.has_value());
    EXPECT_GE(result->added_km, -1e-9);
  }
}

TEST(Insertion, MatchesBruteForceOverPositions) {
  Rng rng(32);
  for (int trial = 0; trial < 20; ++trial) {
    // A 2-rider route plus one new rider: cheapest_insertion must agree
    // with trying every (i, j) by hand.
    Route route;
    route.start = geo::Point{0, 0};
    std::vector<trace::Request> riders;
    for (int i = 0; i < 2; ++i) {
      riders.push_back(make_request(i, {rng.uniform(-8, 8), rng.uniform(-8, 8)},
                                    {rng.uniform(-8, 8), rng.uniform(-8, 8)}));
    }
    route.stops = {Stop{0, true, riders[0].pickup},
                   Stop{1, true, riders[1].pickup},
                   Stop{0, false, riders[0].dropoff},
                   Stop{1, false, riders[1].dropoff}};
    const auto incoming = make_request(9, {rng.uniform(-8, 8), rng.uniform(-8, 8)},
                                       {rng.uniform(-8, 8), rng.uniform(-8, 8)});
    const auto fast = cheapest_insertion(route, incoming, kOracle);
    ASSERT_TRUE(fast.has_value());

    const double base = route_length(route, kOracle);
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i <= route.stops.size(); ++i) {
      for (std::size_t j = i; j <= route.stops.size(); ++j) {
        Route candidate = route;
        candidate.stops.insert(candidate.stops.begin() + static_cast<std::ptrdiff_t>(i),
                               Stop{9, true, incoming.pickup});
        candidate.stops.insert(
            candidate.stops.begin() + static_cast<std::ptrdiff_t>(j + 1),
            Stop{9, false, incoming.dropoff});
        best = std::min(best, route_length(candidate, kOracle) - base);
      }
    }
    EXPECT_NEAR(fast->added_km, best, 1e-9) << "trial " << trial;
  }
}

TEST(Insertion, NeverBeatsJointReoptimization) {
  // Insertion is a restricted move, so the full optimizer is at least as
  // good -- the gap is exactly what STD exploits over SARP.
  Rng rng(33);
  for (int trial = 0; trial < 20; ++trial) {
    const auto a = make_request(0, {rng.uniform(-8, 8), rng.uniform(-8, 8)},
                                {rng.uniform(-8, 8), rng.uniform(-8, 8)});
    const auto b = make_request(1, {rng.uniform(-8, 8), rng.uniform(-8, 8)},
                                {rng.uniform(-8, 8), rng.uniform(-8, 8)});
    const geo::Point start{rng.uniform(-8, 8), rng.uniform(-8, 8)};
    const Route solo = single_rider_route(a, start);
    const auto inserted = cheapest_insertion(solo, b, kOracle);
    ASSERT_TRUE(inserted.has_value());
    const std::vector<trace::Request> both{a, b};
    const Route joint = optimal_route(both, kOracle, start);
    EXPECT_LE(route_length(joint, kOracle),
              route_length(inserted->route, kOracle) + 1e-9);
  }
}

}  // namespace
}  // namespace o2o::routing
