#include "routing/route.h"

#include <gtest/gtest.h>

#include "util/contracts.h"

namespace o2o::routing {
namespace {

const geo::EuclideanOracle kOracle;

trace::Request make_request(trace::RequestId id, geo::Point pickup, geo::Point dropoff) {
  trace::Request request;
  request.id = id;
  request.pickup = pickup;
  request.dropoff = dropoff;
  return request;
}

TEST(Precedence, SingleRiderOrderMatters) {
  Route good;
  good.stops = {Stop{1, true, {0, 0}}, Stop{1, false, {1, 0}}};
  EXPECT_TRUE(respects_precedence(good));

  Route bad;
  bad.stops = {Stop{1, false, {1, 0}}, Stop{1, true, {0, 0}}};
  EXPECT_FALSE(respects_precedence(bad));
}

TEST(Precedence, InterleavedRidersAreFine) {
  Route route;
  route.stops = {Stop{1, true, {0, 0}}, Stop{2, true, {1, 0}}, Stop{1, false, {2, 0}},
                 Stop{2, false, {3, 0}}};
  EXPECT_TRUE(respects_precedence(route));
}

TEST(Precedence, DuplicatePickupRejected) {
  Route route;
  route.stops = {Stop{1, true, {0, 0}}, Stop{1, true, {1, 0}}, Stop{1, false, {2, 0}}};
  EXPECT_FALSE(respects_precedence(route));
}

TEST(Precedence, DropoffOnlyIsRejected) {
  Route route;
  route.stops = {Stop{1, false, {0, 0}}};
  EXPECT_FALSE(respects_precedence(route));
}

TEST(Precedence, EmptyRouteIsTriviallyValid) {
  EXPECT_TRUE(respects_precedence(Route{}));
}

TEST(RouteLength, AnchoredAndUnanchored) {
  Route route;
  route.stops = {Stop{1, true, {0, 0}}, Stop{1, false, {3, 4}}};
  EXPECT_DOUBLE_EQ(route_length(route, kOracle), 5.0);  // no anchor: from first stop
  route.start = geo::Point{0, -1};
  EXPECT_DOUBLE_EQ(route_length(route, kOracle), 6.0);  // 1 + 5
}

TEST(RouteLength, EmptyRouteIsZero) {
  Route route;
  route.start = geo::Point{5, 5};
  EXPECT_DOUBLE_EQ(route_length(route, kOracle), 0.0);
}

TEST(RiderMetrics, SoloRideMatchesDirectDistances) {
  const auto request = make_request(3, {0, 0}, {0, 7});
  const Route route = single_rider_route(request, geo::Point{-2, 0});
  const RiderMetrics metrics = rider_metrics(route, 3, kOracle);
  EXPECT_DOUBLE_EQ(metrics.wait_km, 2.0);
  EXPECT_DOUBLE_EQ(metrics.ride_km, 7.0);
}

TEST(RiderMetrics, SharedRouteAccumulatesLegs) {
  // taxi at (0,0); pickup A (1,0); pickup B (2,0); drop A (3,0); drop B (4,0)
  Route route;
  route.start = geo::Point{0, 0};
  route.stops = {Stop{1, true, {1, 0}}, Stop{2, true, {2, 0}}, Stop{1, false, {3, 0}},
                 Stop{2, false, {4, 0}}};
  const RiderMetrics a = rider_metrics(route, 1, kOracle);
  EXPECT_DOUBLE_EQ(a.wait_km, 1.0);
  EXPECT_DOUBLE_EQ(a.ride_km, 2.0);  // detour through B's pickup
  const RiderMetrics b = rider_metrics(route, 2, kOracle);
  EXPECT_DOUBLE_EQ(b.wait_km, 2.0);
  EXPECT_DOUBLE_EQ(b.ride_km, 2.0);
}

TEST(RiderMetrics, UnanchoredRouteStartsAtFirstStop) {
  Route route;
  route.stops = {Stop{1, true, {5, 5}}, Stop{1, false, {5, 9}}};
  const RiderMetrics metrics = rider_metrics(route, 1, kOracle);
  EXPECT_DOUBLE_EQ(metrics.wait_km, 0.0);
  EXPECT_DOUBLE_EQ(metrics.ride_km, 4.0);
}

TEST(RiderMetrics, MissingRiderThrows) {
  Route route;
  route.stops = {Stop{1, true, {0, 0}}, Stop{1, false, {1, 0}}};
  EXPECT_THROW(rider_metrics(route, 99, kOracle), o2o::ContractViolation);
}

TEST(SingleRiderRoute, BuildsPickupThenDropoff) {
  const auto request = make_request(5, {1, 2}, {3, 4});
  const Route route = single_rider_route(request);
  ASSERT_EQ(route.stop_count(), 2u);
  EXPECT_TRUE(route.stops[0].is_pickup);
  EXPECT_EQ(route.stops[0].request, 5);
  EXPECT_FALSE(route.stops[1].is_pickup);
  EXPECT_FALSE(route.start.has_value());
}

}  // namespace
}  // namespace o2o::routing
