// En-route insertion lifecycle: a dispatcher that adds a second rider to
// a busy taxi mid-ride, exercising the simulator's busy-taxi views,
// onboard-aware validation, and marginal taxi metrics.
#include <gtest/gtest.h>

#include "routing/insertion.h"
#include "sim/simulator.h"

namespace o2o::sim {
namespace {

const geo::EuclideanOracle kOracle;

trace::Request make_request(double time, geo::Point pickup, geo::Point dropoff) {
  trace::Request request;
  request.time_seconds = time;
  request.pickup = pickup;
  request.dropoff = dropoff;
  return request;
}

/// Dispatches the first request to the idle taxi; any later request is
/// inserted into the busy taxi's remaining route.
class InsertingDispatcher final : public Dispatcher {
 public:
  std::string name() const override { return "test-inserting"; }

  std::vector<DispatchAssignment> dispatch(const DispatchContext& context) override {
    std::vector<DispatchAssignment> assignments;
    if (context.pending.empty()) return assignments;
    const trace::Request& request = context.pending.front();
    if (!context.idle_taxis.empty()) {
      DispatchAssignment assignment;
      assignment.taxi = context.idle_taxis.front().id;
      assignment.requests = {request.id};
      assignment.route =
          routing::single_rider_route(request, context.idle_taxis.front().location);
      assignments.push_back(std::move(assignment));
      return assignments;
    }
    if (!context.busy_taxis.empty()) {
      const BusyTaxiView& busy = context.busy_taxis.front();
      routing::Route current;
      current.start = busy.taxi.location;
      current.stops = busy.remaining_stops;
      const auto inserted = routing::cheapest_insertion(current, request, *context.oracle);
      if (!inserted.has_value()) return assignments;
      DispatchAssignment assignment;
      assignment.taxi = busy.taxi.id;
      assignment.requests = {request.id};
      assignment.route = inserted->route;
      assignments.push_back(std::move(assignment));
    }
    return assignments;
  }
};

TEST(EnRoute, SecondRiderJoinsAMovingTaxi) {
  // Taxi starts at 0 and carries rider A (1,0)->(10,0) at 1 km/min.
  // Rider B appears at t=3 min along the same corridor.
  std::vector<trace::Request> requests{make_request(0.0, {1, 0}, {10, 0}),
                                       make_request(180.0, {4, 0}, {8, 0})};
  const trace::Trace city("t", {{-20, -20}, {20, 20}}, std::move(requests));
  trace::Taxi taxi;
  taxi.id = 0;
  taxi.location = {0, 0};
  taxi.seats = 4;

  SimulatorConfig config;
  config.speed_kmh = 60.0;
  InsertingDispatcher dispatcher;
  Simulator simulator(city, {taxi}, kOracle, config);
  const SimulationReport report = simulator.run(dispatcher);

  EXPECT_EQ(report.served, 2u);
  EXPECT_EQ(report.cancelled, 0u);
  EXPECT_EQ(report.dispatched_rides, 2u);
  EXPECT_EQ(report.shared_rides, 1u);  // the insertion ride sees 2 ids

  const RequestRecord& a = report.requests[0];
  const RequestRecord& b = report.requests[1];
  EXPECT_TRUE(a.served());
  EXPECT_TRUE(b.served());
  EXPECT_TRUE(b.shared);
  // A was picked up before B was even requested.
  EXPECT_LT(a.pickup_time, 180.0);
  // B's pickup happens after its dispatch, B is dropped before A (B's
  // drop-off at 8 km precedes A's at 10 km along the corridor).
  EXPECT_GT(b.pickup_time, b.dispatch_time);
  EXPECT_LT(b.dropoff_time, a.dropoff_time);
  // The corridor is straight: zero-detour insertion, total distance 10.
  EXPECT_NEAR(report.total_taxi_distance_km, 10.0, 1e-6);
  // Marginal taxi score of the insertion dispatch:
  // added length 0 - 2 * direct(B) = -8.
  EXPECT_NEAR(report.taxi_cdf.min(), -8.0, 1e-6);
}

TEST(EnRoute, CapacityBlocksOverfullInsertion) {
  std::vector<trace::Request> requests{make_request(0.0, {1, 0}, {10, 0}),
                                       make_request(180.0, {4, 0}, {8, 0})};
  const trace::Trace city("t", {{-20, -20}, {20, 20}}, std::move(requests));
  trace::Taxi taxi;
  taxi.id = 0;
  taxi.location = {0, 0};
  taxi.seats = 1;  // no room for B while A is onboard

  SimulatorConfig config;
  config.speed_kmh = 60.0;
  config.cancel_timeout_seconds = 600.0;
  InsertingDispatcher dispatcher;
  Simulator simulator(city, {taxi}, kOracle, config);
  // The dispatcher blindly inserts; the simulator must reject it.
  EXPECT_THROW(simulator.run(dispatcher), o2o::ContractViolation);
}

TEST(EnRoute, BusyViewExposesConsistentSeatBookkeeping) {
  // Probe the context the simulator hands out mid-ride.
  class ProbingDispatcher final : public Dispatcher {
   public:
    std::string name() const override { return "test-probing"; }
    bool probed = false;

    std::vector<DispatchAssignment> dispatch(const DispatchContext& context) override {
      if (!assigned_ && !context.idle_taxis.empty() && !context.pending.empty()) {
        assigned_ = true;
        DispatchAssignment assignment;
        assignment.taxi = context.idle_taxis.front().id;
        assignment.requests = {context.pending.front().id};
        assignment.route = routing::single_rider_route(
            context.pending.front(), context.idle_taxis.front().location);
        return {assignment};
      }
      if (!context.busy_taxis.empty()) {
        const BusyTaxiView& view = context.busy_taxis.front();
        EXPECT_FALSE(view.remaining_stops.empty());
        EXPECT_EQ(view.route_request_seats.size(), 1u);
        if (!view.onboard.empty()) {
          EXPECT_EQ(view.seats_in_use, 2);  // the rider asked for 2 seats
          probed = true;
        }
      }
      return {};
    }

   private:
    bool assigned_ = false;
  };

  trace::Request request = make_request(0.0, {1, 0}, {10, 0});
  request.seats = 2;
  // A decoy request keeps the pending queue non-empty so the dispatcher
  // is invoked (and can probe the busy view) while the first ride runs.
  const trace::Request decoy = make_request(60.0, {-15, -15}, {-16, -16});
  const trace::Trace city("t", {{-20, -20}, {20, 20}}, {request, decoy});
  trace::Taxi taxi;
  taxi.id = 0;
  taxi.location = {0, 0};
  taxi.seats = 4;

  SimulatorConfig config;
  config.speed_kmh = 60.0;
  ProbingDispatcher dispatcher;
  Simulator simulator(city, {taxi}, kOracle, config);
  (void)simulator.run(dispatcher);
  EXPECT_TRUE(dispatcher.probed);
}

}  // namespace
}  // namespace o2o::sim
